# Empty compiler generated dependencies file for matvec_scratchpad.
# This may be replaced when dependencies are built.
