file(REMOVE_RECURSE
  "CMakeFiles/matvec_scratchpad.dir/matvec_scratchpad.cpp.o"
  "CMakeFiles/matvec_scratchpad.dir/matvec_scratchpad.cpp.o.d"
  "matvec_scratchpad"
  "matvec_scratchpad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matvec_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
