# Empty dependencies file for multi_cpu.
# This may be replaced when dependencies are built.
