file(REMOVE_RECURSE
  "CMakeFiles/multi_cpu.dir/multi_cpu.cpp.o"
  "CMakeFiles/multi_cpu.dir/multi_cpu.cpp.o.d"
  "multi_cpu"
  "multi_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
