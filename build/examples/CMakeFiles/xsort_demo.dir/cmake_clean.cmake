file(REMOVE_RECURSE
  "CMakeFiles/xsort_demo.dir/xsort_demo.cpp.o"
  "CMakeFiles/xsort_demo.dir/xsort_demo.cpp.o.d"
  "xsort_demo"
  "xsort_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsort_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
