# Empty compiler generated dependencies file for xsort_demo.
# This may be replaced when dependencies are built.
