file(REMOVE_RECURSE
  "CMakeFiles/multiprecision.dir/multiprecision.cpp.o"
  "CMakeFiles/multiprecision.dir/multiprecision.cpp.o.d"
  "multiprecision"
  "multiprecision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprecision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
