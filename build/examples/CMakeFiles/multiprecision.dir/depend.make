# Empty dependencies file for multiprecision.
# This may be replaced when dependencies are built.
