file(REMOVE_RECURSE
  "CMakeFiles/dds_waveform.dir/dds_waveform.cpp.o"
  "CMakeFiles/dds_waveform.dir/dds_waveform.cpp.o.d"
  "dds_waveform"
  "dds_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
