# Empty dependencies file for dds_waveform.
# This may be replaced when dependencies are built.
