# Empty dependencies file for custom_fu_histogram.
# This may be replaced when dependencies are built.
