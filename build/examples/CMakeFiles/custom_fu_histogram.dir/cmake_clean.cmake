file(REMOVE_RECURSE
  "CMakeFiles/custom_fu_histogram.dir/custom_fu_histogram.cpp.o"
  "CMakeFiles/custom_fu_histogram.dir/custom_fu_histogram.cpp.o.d"
  "custom_fu_histogram"
  "custom_fu_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fu_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
