file(REMOVE_RECURSE
  "CMakeFiles/saxpy_offload.dir/saxpy_offload.cpp.o"
  "CMakeFiles/saxpy_offload.dir/saxpy_offload.cpp.o.d"
  "saxpy_offload"
  "saxpy_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saxpy_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
