# Empty compiler generated dependencies file for saxpy_offload.
# This may be replaced when dependencies are built.
