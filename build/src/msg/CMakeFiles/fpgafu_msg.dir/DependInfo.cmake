
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/link.cpp" "src/msg/CMakeFiles/fpgafu_msg.dir/link.cpp.o" "gcc" "src/msg/CMakeFiles/fpgafu_msg.dir/link.cpp.o.d"
  "/root/repo/src/msg/message_buffer.cpp" "src/msg/CMakeFiles/fpgafu_msg.dir/message_buffer.cpp.o" "gcc" "src/msg/CMakeFiles/fpgafu_msg.dir/message_buffer.cpp.o.d"
  "/root/repo/src/msg/message_serializer.cpp" "src/msg/CMakeFiles/fpgafu_msg.dir/message_serializer.cpp.o" "gcc" "src/msg/CMakeFiles/fpgafu_msg.dir/message_serializer.cpp.o.d"
  "/root/repo/src/msg/response.cpp" "src/msg/CMakeFiles/fpgafu_msg.dir/response.cpp.o" "gcc" "src/msg/CMakeFiles/fpgafu_msg.dir/response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fpgafu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpgafu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgafu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
