file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_msg.dir/link.cpp.o"
  "CMakeFiles/fpgafu_msg.dir/link.cpp.o.d"
  "CMakeFiles/fpgafu_msg.dir/message_buffer.cpp.o"
  "CMakeFiles/fpgafu_msg.dir/message_buffer.cpp.o.d"
  "CMakeFiles/fpgafu_msg.dir/message_serializer.cpp.o"
  "CMakeFiles/fpgafu_msg.dir/message_serializer.cpp.o.d"
  "CMakeFiles/fpgafu_msg.dir/response.cpp.o"
  "CMakeFiles/fpgafu_msg.dir/response.cpp.o.d"
  "libfpgafu_msg.a"
  "libfpgafu_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
