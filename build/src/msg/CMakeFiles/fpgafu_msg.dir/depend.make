# Empty dependencies file for fpgafu_msg.
# This may be replaced when dependencies are built.
