file(REMOVE_RECURSE
  "libfpgafu_msg.a"
)
