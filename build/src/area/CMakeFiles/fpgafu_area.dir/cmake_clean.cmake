file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_area.dir/area_model.cpp.o"
  "CMakeFiles/fpgafu_area.dir/area_model.cpp.o.d"
  "libfpgafu_area.a"
  "libfpgafu_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
