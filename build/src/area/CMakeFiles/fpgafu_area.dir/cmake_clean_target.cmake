file(REMOVE_RECURSE
  "libfpgafu_area.a"
)
