# Empty compiler generated dependencies file for fpgafu_area.
# This may be replaced when dependencies are built.
