file(REMOVE_RECURSE
  "libfpgafu_sim.a"
)
