# Empty dependencies file for fpgafu_sim.
# This may be replaced when dependencies are built.
