file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_sim.dir/simulator.cpp.o"
  "CMakeFiles/fpgafu_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fpgafu_sim.dir/trace.cpp.o"
  "CMakeFiles/fpgafu_sim.dir/trace.cpp.o.d"
  "CMakeFiles/fpgafu_sim.dir/vcd.cpp.o"
  "CMakeFiles/fpgafu_sim.dir/vcd.cpp.o.d"
  "libfpgafu_sim.a"
  "libfpgafu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
