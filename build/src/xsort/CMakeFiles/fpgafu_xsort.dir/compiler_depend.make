# Empty compiler generated dependencies file for fpgafu_xsort.
# This may be replaced when dependencies are built.
