file(REMOVE_RECURSE
  "libfpgafu_xsort.a"
)
