# Empty dependencies file for fpgafu_xsort.
# This may be replaced when dependencies are built.
