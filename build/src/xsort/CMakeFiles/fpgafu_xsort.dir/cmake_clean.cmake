file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_xsort.dir/algorithm.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/algorithm.cpp.o.d"
  "CMakeFiles/fpgafu_xsort.dir/baseline.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/baseline.cpp.o.d"
  "CMakeFiles/fpgafu_xsort.dir/cell_array.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/cell_array.cpp.o.d"
  "CMakeFiles/fpgafu_xsort.dir/hw_engine.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/hw_engine.cpp.o.d"
  "CMakeFiles/fpgafu_xsort.dir/microcode.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/microcode.cpp.o.d"
  "CMakeFiles/fpgafu_xsort.dir/soft_engine.cpp.o"
  "CMakeFiles/fpgafu_xsort.dir/soft_engine.cpp.o.d"
  "libfpgafu_xsort.a"
  "libfpgafu_xsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_xsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
