
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsort/algorithm.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/algorithm.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/algorithm.cpp.o.d"
  "/root/repo/src/xsort/baseline.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/baseline.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/baseline.cpp.o.d"
  "/root/repo/src/xsort/cell_array.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/cell_array.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/cell_array.cpp.o.d"
  "/root/repo/src/xsort/hw_engine.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/hw_engine.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/hw_engine.cpp.o.d"
  "/root/repo/src/xsort/microcode.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/microcode.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/microcode.cpp.o.d"
  "/root/repo/src/xsort/soft_engine.cpp" "src/xsort/CMakeFiles/fpgafu_xsort.dir/soft_engine.cpp.o" "gcc" "src/xsort/CMakeFiles/fpgafu_xsort.dir/soft_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fu/CMakeFiles/fpgafu_fu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpgafu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpgafu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgafu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
