
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fu/conformance.cpp" "src/fu/CMakeFiles/fpgafu_fu.dir/conformance.cpp.o" "gcc" "src/fu/CMakeFiles/fpgafu_fu.dir/conformance.cpp.o.d"
  "/root/repo/src/fu/stateless_units.cpp" "src/fu/CMakeFiles/fpgafu_fu.dir/stateless_units.cpp.o" "gcc" "src/fu/CMakeFiles/fpgafu_fu.dir/stateless_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fpgafu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpgafu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgafu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
