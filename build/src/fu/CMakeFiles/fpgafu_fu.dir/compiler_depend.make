# Empty compiler generated dependencies file for fpgafu_fu.
# This may be replaced when dependencies are built.
