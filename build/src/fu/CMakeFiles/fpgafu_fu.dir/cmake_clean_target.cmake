file(REMOVE_RECURSE
  "libfpgafu_fu.a"
)
