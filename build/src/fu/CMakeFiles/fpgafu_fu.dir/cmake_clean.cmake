file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_fu.dir/conformance.cpp.o"
  "CMakeFiles/fpgafu_fu.dir/conformance.cpp.o.d"
  "CMakeFiles/fpgafu_fu.dir/stateless_units.cpp.o"
  "CMakeFiles/fpgafu_fu.dir/stateless_units.cpp.o.d"
  "libfpgafu_fu.a"
  "libfpgafu_fu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_fu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
