file(REMOVE_RECURSE
  "libfpgafu_util.a"
)
