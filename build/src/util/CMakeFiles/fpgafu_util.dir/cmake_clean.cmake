file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_util.dir/table.cpp.o"
  "CMakeFiles/fpgafu_util.dir/table.cpp.o.d"
  "libfpgafu_util.a"
  "libfpgafu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
