# Empty dependencies file for fpgafu_util.
# This may be replaced when dependencies are built.
