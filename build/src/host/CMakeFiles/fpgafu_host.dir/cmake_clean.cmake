file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_host.dir/coprocessor.cpp.o"
  "CMakeFiles/fpgafu_host.dir/coprocessor.cpp.o.d"
  "CMakeFiles/fpgafu_host.dir/expr.cpp.o"
  "CMakeFiles/fpgafu_host.dir/expr.cpp.o.d"
  "CMakeFiles/fpgafu_host.dir/multi_host.cpp.o"
  "CMakeFiles/fpgafu_host.dir/multi_host.cpp.o.d"
  "CMakeFiles/fpgafu_host.dir/reference_model.cpp.o"
  "CMakeFiles/fpgafu_host.dir/reference_model.cpp.o.d"
  "CMakeFiles/fpgafu_host.dir/xsort_system_engine.cpp.o"
  "CMakeFiles/fpgafu_host.dir/xsort_system_engine.cpp.o.d"
  "libfpgafu_host.a"
  "libfpgafu_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
