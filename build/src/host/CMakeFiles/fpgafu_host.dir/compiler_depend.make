# Empty compiler generated dependencies file for fpgafu_host.
# This may be replaced when dependencies are built.
