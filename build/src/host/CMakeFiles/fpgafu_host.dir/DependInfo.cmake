
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/coprocessor.cpp" "src/host/CMakeFiles/fpgafu_host.dir/coprocessor.cpp.o" "gcc" "src/host/CMakeFiles/fpgafu_host.dir/coprocessor.cpp.o.d"
  "/root/repo/src/host/expr.cpp" "src/host/CMakeFiles/fpgafu_host.dir/expr.cpp.o" "gcc" "src/host/CMakeFiles/fpgafu_host.dir/expr.cpp.o.d"
  "/root/repo/src/host/multi_host.cpp" "src/host/CMakeFiles/fpgafu_host.dir/multi_host.cpp.o" "gcc" "src/host/CMakeFiles/fpgafu_host.dir/multi_host.cpp.o.d"
  "/root/repo/src/host/reference_model.cpp" "src/host/CMakeFiles/fpgafu_host.dir/reference_model.cpp.o" "gcc" "src/host/CMakeFiles/fpgafu_host.dir/reference_model.cpp.o.d"
  "/root/repo/src/host/xsort_system_engine.cpp" "src/host/CMakeFiles/fpgafu_host.dir/xsort_system_engine.cpp.o" "gcc" "src/host/CMakeFiles/fpgafu_host.dir/xsort_system_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/fpgafu_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpgafu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/xsort/CMakeFiles/fpgafu_xsort.dir/DependInfo.cmake"
  "/root/repo/build/src/fu/CMakeFiles/fpgafu_fu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpgafu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgafu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
