file(REMOVE_RECURSE
  "libfpgafu_host.a"
)
