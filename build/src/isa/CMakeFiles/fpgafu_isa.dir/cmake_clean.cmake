file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_isa.dir/arith.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/arith.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/assembler.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/fp32.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/fp32.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/instruction.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/logic.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/logic.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/muldiv.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/muldiv.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/program.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/program.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/shift.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/shift.cpp.o.d"
  "CMakeFiles/fpgafu_isa.dir/trig.cpp.o"
  "CMakeFiles/fpgafu_isa.dir/trig.cpp.o.d"
  "libfpgafu_isa.a"
  "libfpgafu_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
