file(REMOVE_RECURSE
  "libfpgafu_isa.a"
)
