# Empty compiler generated dependencies file for fpgafu_isa.
# This may be replaced when dependencies are built.
