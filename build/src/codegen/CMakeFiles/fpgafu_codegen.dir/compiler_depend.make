# Empty compiler generated dependencies file for fpgafu_codegen.
# This may be replaced when dependencies are built.
