file(REMOVE_RECURSE
  "CMakeFiles/fpgafu_codegen.dir/vhdl.cpp.o"
  "CMakeFiles/fpgafu_codegen.dir/vhdl.cpp.o.d"
  "libfpgafu_codegen.a"
  "libfpgafu_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgafu_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
