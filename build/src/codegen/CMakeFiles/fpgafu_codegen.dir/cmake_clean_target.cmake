file(REMOVE_RECURSE
  "libfpgafu_codegen.a"
)
