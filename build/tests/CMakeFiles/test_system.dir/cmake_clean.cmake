file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/top/test_multi_host.cpp.o"
  "CMakeFiles/test_system.dir/top/test_multi_host.cpp.o.d"
  "CMakeFiles/test_system.dir/top/test_reconfiguration.cpp.o"
  "CMakeFiles/test_system.dir/top/test_reconfiguration.cpp.o.d"
  "CMakeFiles/test_system.dir/top/test_system.cpp.o"
  "CMakeFiles/test_system.dir/top/test_system.cpp.o.d"
  "CMakeFiles/test_system.dir/top/test_system_xsort.cpp.o"
  "CMakeFiles/test_system.dir/top/test_system_xsort.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
