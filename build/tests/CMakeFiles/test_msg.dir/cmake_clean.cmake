file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/msg/test_buffer_serializer.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_buffer_serializer.cpp.o.d"
  "CMakeFiles/test_msg.dir/msg/test_link.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_link.cpp.o.d"
  "CMakeFiles/test_msg.dir/msg/test_response.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_response.cpp.o.d"
  "test_msg"
  "test_msg.pdb"
  "test_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
