# Empty compiler generated dependencies file for test_xsort.
# This may be replaced when dependencies are built.
