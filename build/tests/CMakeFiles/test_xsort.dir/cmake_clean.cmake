file(REMOVE_RECURSE
  "CMakeFiles/test_xsort.dir/xsort/test_cell_array.cpp.o"
  "CMakeFiles/test_xsort.dir/xsort/test_cell_array.cpp.o.d"
  "CMakeFiles/test_xsort.dir/xsort/test_xsort_algorithm.cpp.o"
  "CMakeFiles/test_xsort.dir/xsort/test_xsort_algorithm.cpp.o.d"
  "CMakeFiles/test_xsort.dir/xsort/test_xsort_unit.cpp.o"
  "CMakeFiles/test_xsort.dir/xsort/test_xsort_unit.cpp.o.d"
  "test_xsort"
  "test_xsort.pdb"
  "test_xsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
