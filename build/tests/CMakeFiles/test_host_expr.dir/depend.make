# Empty dependencies file for test_host_expr.
# This may be replaced when dependencies are built.
