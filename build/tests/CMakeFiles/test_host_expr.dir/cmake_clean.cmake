file(REMOVE_RECURSE
  "CMakeFiles/test_host_expr.dir/host/test_coprocessor.cpp.o"
  "CMakeFiles/test_host_expr.dir/host/test_coprocessor.cpp.o.d"
  "CMakeFiles/test_host_expr.dir/host/test_expr.cpp.o"
  "CMakeFiles/test_host_expr.dir/host/test_expr.cpp.o.d"
  "test_host_expr"
  "test_host_expr.pdb"
  "test_host_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
