
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bits.cpp" "tests/CMakeFiles/test_util.dir/util/test_bits.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bits.cpp.o.d"
  "/root/repo/tests/util/test_ring_buffer.cpp" "tests/CMakeFiles/test_util.dir/util/test_ring_buffer.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_ring_buffer.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fpgafu_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpgafu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fpgafu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/fpgafu_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/fu/CMakeFiles/fpgafu_fu.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fpgafu_host.dir/DependInfo.cmake"
  "/root/repo/build/src/xsort/CMakeFiles/fpgafu_xsort.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/fpgafu_area.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/fpgafu_codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
