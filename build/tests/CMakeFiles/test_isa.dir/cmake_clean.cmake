file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_arith_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_arith_semantics.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_assembler.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_assembler.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_fp32_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_fp32_semantics.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_instruction.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_instruction.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_logic_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_logic_semantics.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_muldiv_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_muldiv_semantics.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_shift_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_shift_semantics.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_trig_semantics.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_trig_semantics.cpp.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
