file(REMOVE_RECURSE
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_burst.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_burst.cpp.o.d"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_differential.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_differential.cpp.o.d"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_extended_units.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_extended_units.cpp.o.d"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_pipeline.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_pipeline.cpp.o.d"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_trace.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_trace.cpp.o.d"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_units.cpp.o"
  "CMakeFiles/test_rtm.dir/rtm/test_rtm_units.cpp.o.d"
  "test_rtm"
  "test_rtm.pdb"
  "test_rtm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
