# Empty compiler generated dependencies file for test_rtm.
# This may be replaced when dependencies are built.
