file(REMOVE_RECURSE
  "CMakeFiles/test_fu.dir/fu/test_conformance_monitor.cpp.o"
  "CMakeFiles/test_fu.dir/fu/test_conformance_monitor.cpp.o.d"
  "CMakeFiles/test_fu.dir/fu/test_scratchpad_unit.cpp.o"
  "CMakeFiles/test_fu.dir/fu/test_scratchpad_unit.cpp.o.d"
  "CMakeFiles/test_fu.dir/fu/test_skeletons.cpp.o"
  "CMakeFiles/test_fu.dir/fu/test_skeletons.cpp.o.d"
  "CMakeFiles/test_fu.dir/fu/test_stateful_units.cpp.o"
  "CMakeFiles/test_fu.dir/fu/test_stateful_units.cpp.o.d"
  "CMakeFiles/test_fu.dir/fu/test_stateless_units.cpp.o"
  "CMakeFiles/test_fu.dir/fu/test_stateless_units.cpp.o.d"
  "test_fu"
  "test_fu.pdb"
  "test_fu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
