# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_fu[1]_include.cmake")
include("/root/repo/build/tests/test_rtm[1]_include.cmake")
include("/root/repo/build/tests/test_xsort[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_area[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_host_expr[1]_include.cmake")
