file(REMOVE_RECURSE
  "CMakeFiles/bench_interconnect.dir/bench_interconnect.cpp.o"
  "CMakeFiles/bench_interconnect.dir/bench_interconnect.cpp.o.d"
  "bench_interconnect"
  "bench_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
