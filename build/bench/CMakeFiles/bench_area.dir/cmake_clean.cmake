file(REMOVE_RECURSE
  "CMakeFiles/bench_area.dir/bench_area.cpp.o"
  "CMakeFiles/bench_area.dir/bench_area.cpp.o.d"
  "bench_area"
  "bench_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
