# Empty compiler generated dependencies file for bench_xsort.
# This may be replaced when dependencies are built.
