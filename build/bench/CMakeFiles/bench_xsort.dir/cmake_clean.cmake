file(REMOVE_RECURSE
  "CMakeFiles/bench_xsort.dir/bench_xsort.cpp.o"
  "CMakeFiles/bench_xsort.dir/bench_xsort.cpp.o.d"
  "bench_xsort"
  "bench_xsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
