file(REMOVE_RECURSE
  "CMakeFiles/bench_rtm_pipeline.dir/bench_rtm_pipeline.cpp.o"
  "CMakeFiles/bench_rtm_pipeline.dir/bench_rtm_pipeline.cpp.o.d"
  "bench_rtm_pipeline"
  "bench_rtm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
