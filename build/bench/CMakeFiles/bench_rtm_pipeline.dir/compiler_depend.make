# Empty compiler generated dependencies file for bench_rtm_pipeline.
# This may be replaced when dependencies are built.
