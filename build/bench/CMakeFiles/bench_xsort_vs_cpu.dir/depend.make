# Empty dependencies file for bench_xsort_vs_cpu.
# This may be replaced when dependencies are built.
