file(REMOVE_RECURSE
  "CMakeFiles/bench_xsort_vs_cpu.dir/bench_xsort_vs_cpu.cpp.o"
  "CMakeFiles/bench_xsort_vs_cpu.dir/bench_xsort_vs_cpu.cpp.o.d"
  "bench_xsort_vs_cpu"
  "bench_xsort_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xsort_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
