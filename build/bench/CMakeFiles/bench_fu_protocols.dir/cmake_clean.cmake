file(REMOVE_RECURSE
  "CMakeFiles/bench_fu_protocols.dir/bench_fu_protocols.cpp.o"
  "CMakeFiles/bench_fu_protocols.dir/bench_fu_protocols.cpp.o.d"
  "bench_fu_protocols"
  "bench_fu_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fu_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
