# Empty compiler generated dependencies file for bench_fu_protocols.
# This may be replaced when dependencies are built.
