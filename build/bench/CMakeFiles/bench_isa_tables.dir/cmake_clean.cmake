file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_tables.dir/bench_isa_tables.cpp.o"
  "CMakeFiles/bench_isa_tables.dir/bench_isa_tables.cpp.o.d"
  "bench_isa_tables"
  "bench_isa_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
