# Empty dependencies file for bench_isa_tables.
# This may be replaced when dependencies are built.
