#include "host/expr.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "host/coprocessor.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace fpgafu::host {
namespace {

struct ExprRig {
  top::System sys;
  Coprocessor copro;
  ExprCompiler compiler;

  ExprRig() : sys({}), copro(sys), compiler(sys.rtm().config()) {}

  isa::Word eval(const Expr& e,
                 const std::map<std::string, isa::Word>& inputs = {}) {
    return compiler.compile(e).run(copro, inputs);
  }
};

TEST(ExprCompiler, LeavesAndSimpleOps) {
  ExprRig rig;
  EXPECT_EQ(rig.eval(Expr::constant(42)), 42u);
  const Expr x = Expr::input("x");
  EXPECT_EQ(rig.eval(x + Expr::constant(5), {{"x", 37}}), 42u);
  EXPECT_EQ(rig.eval(x - Expr::constant(5), {{"x", 47}}), 42u);
  EXPECT_EQ(rig.eval(x * Expr::constant(6), {{"x", 7}}), 42u);
  EXPECT_EQ(rig.eval((x << Expr::constant(4)) | Expr::constant(0xf),
                     {{"x", 0xa}}),
            0xafu);
  EXPECT_EQ(rig.eval(x.udiv(Expr::constant(5)), {{"x", 42}}), 8u);
  EXPECT_EQ(rig.eval(x.urem(Expr::constant(5)), {{"x", 42}}), 2u);
}

TEST(ExprCompiler, SharedSubexpressionComputedOnce) {
  ExprRig rig;
  const Expr x = Expr::input("x"), y = Expr::input("y");
  const Expr t = (x + y) * (x + y);  // structural CSE: one ADD, one MUL
  const CompiledExpr c = rig.compiler.compile(t);
  EXPECT_EQ(c.operation_count(), 2u);
  EXPECT_EQ(c.run(rig.copro, {{"x", 3}, {"y", 4}}), 49u);
}

TEST(ExprCompiler, RegisterReuseBoundsPressure) {
  // A long left-leaning sum: x + 1 + 2 + ... + 32.  With liveness-based
  // reuse this needs O(1) registers, far fewer than one per node.
  ExprRig rig;
  Expr sum = Expr::input("x");
  isa::Word expect = 10;
  for (isa::Word i = 1; i <= 32; ++i) {
    sum = sum + Expr::constant(i);
    expect += i;
  }
  const CompiledExpr c = rig.compiler.compile(sum);
  EXPECT_LE(c.registers_used(), 6u);
  EXPECT_EQ(c.run(rig.copro, {{"x", 10}}), expect);
}

TEST(ExprCompiler, BalancedTreePressureIsDepthPlusOne) {
  // Postorder scheduling keeps only one value per tree level live: a
  // 64-leaf balanced tree of distinct inputs needs just depth+1 = 7
  // registers.
  rtm::RtmConfig cfg;
  cfg.data_regs = 32;
  ExprCompiler compiler(cfg);
  std::vector<Expr> layer;
  for (int i = 0; i < 64; ++i) {
    layer.push_back(Expr::input("v" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<Expr> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(layer[i] + layer[i + 1]);
    }
    layer = std::move(next);
  }
  // depth+1 live values, plus the destination is allocated before its
  // operands die (conservative): depth+2 = 8.
  EXPECT_LE(compiler.compile(layer[0]).registers_used(), 8u);
}

TEST(ExprCompiler, RegisterExhaustionThrows) {
  // With only 4 data registers (3 allocatable), even a depth-3 tree of
  // distinct inputs cannot fit, and the compiler must say so rather than
  // emit a corrupt program.
  rtm::RtmConfig cfg;
  cfg.data_regs = 4;
  ExprCompiler compiler(cfg);
  std::vector<Expr> layer;
  for (int i = 0; i < 8; ++i) {
    layer.push_back(Expr::input("v" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<Expr> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(layer[i] + layer[i + 1]);
    }
    layer = std::move(next);
  }
  EXPECT_THROW(compiler.compile(layer[0]), SimError);
}

TEST(ExprCompiler, UnboundInputRejected) {
  ExprRig rig;
  const CompiledExpr c = rig.compiler.compile(Expr::input("missing") +
                                              Expr::constant(1));
  EXPECT_THROW(c.program({}), SimError);
}

TEST(ExprCompiler, FloatingPointExpression) {
  ExprRig rig;
  auto f2u = [](float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return isa::Word{u};
  };
  // (a + b) * (a - b) for a=3.0, b=1.5 -> 4.5 * 1.5 = 6.75
  const Expr a = Expr::input("a"), b = Expr::input("b");
  const Expr e = Expr::fmul(Expr::fadd(a, b), Expr::fsub(a, b));
  const isa::Word raw =
      rig.eval(e, {{"a", f2u(3.0f)}, {"b", f2u(1.5f)}});
  float result;
  const auto raw32 = static_cast<std::uint32_t>(raw);
  std::memcpy(&result, &raw32, 4);
  EXPECT_EQ(result, 6.75f);
}

TEST(ExprCompiler, RandomExpressionsMatchInterpreter) {
  // Property: random integer expression DAGs evaluate identically on the
  // coprocessor and in a direct host-side interpretation.
  Xoshiro256 rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    ExprRig rig;
    const isa::Word xv = rng.below(1000) + 1;
    const isa::Word yv = rng.below(1000) + 1;
    const isa::Word zv = rng.below(1000) + 1;

    // Parallel build: expression + expected value (32-bit semantics).
    struct Val {
      Expr e;
      std::uint64_t v;
    };
    const std::uint64_t mask = 0xffffffffu;
    std::vector<Val> pool = {{Expr::input("x"), xv},
                             {Expr::input("y"), yv},
                             {Expr::input("z"), zv},
                             {Expr::constant(7), 7}};
    for (int step = 0; step < 12; ++step) {
      const Val& a = pool[rng.below(pool.size())];
      const Val& b = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0: pool.push_back({a.e + b.e, (a.v + b.v) & mask}); break;
        case 1: pool.push_back({a.e - b.e, (a.v - b.v) & mask}); break;
        case 2: pool.push_back({a.e * b.e, (a.v * b.v) & mask}); break;
        case 3: pool.push_back({a.e & b.e, a.v & b.v}); break;
        case 4: pool.push_back({a.e ^ b.e, a.v ^ b.v}); break;
        default:
          pool.push_back(
              {a.e.udiv(b.e), b.v == 0 ? mask : (a.v / b.v)});
          break;
      }
    }
    const Val& root = pool.back();
    const isa::Word got =
        rig.eval(root.e, {{"x", xv}, {"y", yv}, {"z", zv}});
    ASSERT_EQ(got, root.v) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fpgafu::host
