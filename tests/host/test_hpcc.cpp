#include "host/hpcc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fpgafu::host::hpcc {
namespace {

// Small configs so the full 3-kernel sweep stays fast; the checked-in
// BENCH_hpcc.json uses the bigger bench/bench_hpcc.cpp sizes.
StreamConfig small_stream() {
  StreamConfig cfg;
  cfg.elements = 32;
  cfg.block = 8;
  return cfg;
}

RandomAccessConfig small_ra() {
  RandomAccessConfig cfg;
  cfg.table_words = 32;
  cfg.updates = 64;
  cfg.sample_every = 8;
  return cfg;
}

GemmConfig small_gemm() {
  GemmConfig cfg;
  cfg.n = 8;
  cfg.block = 4;
  return cfg;
}

BeffConfig small_beff(bool faulty) {
  BeffConfig cfg;
  cfg.message_words = {1, 4, 16};
  cfg.repeats = 2;
  cfg.faulty = faulty;
  return cfg;
}

TEST(HpccStream, ValidatesAgainstOracleUnderAllKernels) {
  std::vector<std::uint64_t> cycles_by_kernel;
  for (const auto kernel : all_kernels()) {
    const auto results = run_stream(kernel, small_stream());
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].name, "stream_copy");
    EXPECT_EQ(results[3].name, "stream_triad");
    std::uint64_t total = 0;
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.name << " under " << kernel_name(kernel)
                          << ": " << r.mismatches << " mismatches";
      EXPECT_GT(r.jobs, 0u);
      EXPECT_GT(r.cycles, 0u);
      EXPECT_GT(r.verified, 0u);
      total += r.cycles;
    }
    cycles_by_kernel.push_back(total);
  }
  // The three settle kernels are pinned bit-identical, so the simulated
  // cycle counts must agree exactly.
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[1]);
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[2]);
}

TEST(HpccStream, RejectsBadBlocking) {
  StreamConfig cfg;
  cfg.elements = 30;  // not a multiple of block
  cfg.block = 8;
  EXPECT_THROW(run_stream(Kernel::kEvent, cfg), SimError);
}

TEST(HpccRandomAccess, ValidatesAgainstOracleUnderAllKernels) {
  std::vector<std::uint64_t> cycles_by_kernel;
  for (const auto kernel : all_kernels()) {
    const auto out = run_random_access(kernel, small_ra());
    EXPECT_TRUE(out.result.ok()) << kernel_name(kernel);
    EXPECT_EQ(out.result.jobs, 64u);
    EXPECT_EQ(out.final_table.size(), 32u);
    EXPECT_EQ(out.sampled_state.size(), 64u / 8u);
    cycles_by_kernel.push_back(out.result.cycles);
  }
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[1]);
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[2]);
}

TEST(HpccRandomAccess, DeterministicForAFixedSeed) {
  const auto a = run_random_access(Kernel::kEvent, small_ra());
  const auto b = run_random_access(Kernel::kBruteForce, small_ra());
  ASSERT_TRUE(a.result.ok());
  ASSERT_TRUE(b.result.ok());
  // Same seed -> identical update sequence, state samples, final table and
  // cycle count, even across settle kernels.
  EXPECT_EQ(a.sampled_state, b.sampled_state);
  EXPECT_EQ(a.final_table, b.final_table);
  EXPECT_EQ(a.result.cycles, b.result.cycles);

  auto other = small_ra();
  other.seed = 12345;
  const auto c = run_random_access(Kernel::kEvent, other);
  ASSERT_TRUE(c.result.ok());
  EXPECT_NE(a.sampled_state, c.sampled_state);
  EXPECT_NE(a.final_table, c.final_table);
}

TEST(HpccRandomAccess, OutOfRangeProbeRaisesScratchpadErrorFlag) {
  auto cfg = small_ra();
  cfg.probe_out_of_range = true;
  const auto out = run_random_access(Kernel::kEvent, cfg);
  // The probe is an error-path check, not part of the measured workload:
  // the updates themselves still verify...
  EXPECT_TRUE(out.result.ok());
  // ...and both the out-of-range read and write came back with
  // flag::kError observed through GETF.
  EXPECT_TRUE(out.error_flag_seen);

  cfg.probe_out_of_range = false;
  EXPECT_FALSE(run_random_access(Kernel::kEvent, cfg).error_flag_seen);
}

TEST(HpccGemm, ValidatesAgainstHostOracleUnderAllKernels) {
  std::vector<std::uint64_t> cycles_by_kernel;
  for (const auto kernel : all_kernels()) {
    const auto r = run_gemm(kernel, small_gemm());
    EXPECT_TRUE(r.ok()) << kernel_name(kernel) << ": " << r.mismatches
                        << " of " << r.verified << " mismatched";
    EXPECT_EQ(r.jobs, 8u * 8u * 8u);  // n^3 MACs
    EXPECT_EQ(r.verified, 8u * 8u);   // every C element checked
    cycles_by_kernel.push_back(r.cycles);
  }
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[1]);
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[2]);
}

TEST(HpccGemm, RejectsBadBlocking) {
  GemmConfig cfg;
  cfg.n = 10;  // not a multiple of block
  cfg.block = 4;
  EXPECT_THROW(run_gemm(Kernel::kEvent, cfg), SimError);
}

TEST(HpccBeff, CleanLinkMatchesReferenceWithNoRetries) {
  const auto out = run_beff(Kernel::kEvent, small_beff(false));
  EXPECT_TRUE(out.result.ok());
  EXPECT_EQ(out.transport_retries, 0u);
  ASSERT_EQ(out.points.size(), 3u);
  // Bigger messages amortise framing overhead: efficiency is monotone here.
  EXPECT_GT(out.points[2].payload_words_per_cycle,
            out.points[0].payload_words_per_cycle);
}

TEST(HpccBeff, FaultyLinkStillMatchesReferenceViaRetries) {
  auto cfg = small_beff(true);
  cfg.fault_ppm = 50000;  // 5% per word per fault class: retries guaranteed
  const auto out = run_beff(Kernel::kEvent, cfg);
  // The reliable transport hides every injected fault: payloads still match
  // the reference model exactly; the cost shows up as retries and cycles.
  EXPECT_TRUE(out.result.ok());
  EXPECT_GT(out.transport_retries, 0u);
  const auto clean = run_beff(Kernel::kEvent, small_beff(false));
  EXPECT_GT(out.result.cycles, clean.result.cycles);
}

TEST(HpccBeff, CyclesAgreeAcrossKernels) {
  std::vector<std::uint64_t> cycles_by_kernel;
  for (const auto kernel : all_kernels()) {
    const auto out = run_beff(kernel, small_beff(true));
    EXPECT_TRUE(out.result.ok()) << kernel_name(kernel);
    cycles_by_kernel.push_back(out.result.cycles);
  }
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[1]);
  EXPECT_EQ(cycles_by_kernel[0], cycles_by_kernel[2]);
}

}  // namespace
}  // namespace fpgafu::host::hpcc
