#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/reference_model.hpp"
#include "host/reliable_transport.hpp"
#include "isa/assembler.hpp"
#include "support/program_gen.hpp"
#include "util/error.hpp"

namespace fpgafu::host {
namespace {

using isa::Assembler;

rtm::RtmConfig small_rtm() {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  return rcfg;
}

std::vector<ReliableTransport::CoalescedItem> items_of(
    const std::vector<isa::Program>& programs) {
  std::vector<ReliableTransport::CoalescedItem> items;
  for (const isa::Program& p : programs) {
    items.push_back({&p, std::nullopt, false});
  }
  return items;
}

/// Submit one coalesced frame and pump it to completion, returning each
/// member's responses in submission order.
std::vector<std::vector<msg::Response>> run_frame(
    top::System& sys, Coprocessor& copro, ReliableTransport& transport,
    const std::vector<isa::Program>& programs) {
  const std::vector<ReliableTransport::ProgramId> ids =
      transport.submit_coalesced(items_of(programs));
  std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
  copro.pump().run_until(
      [&] {
        transport.service();
        while (auto c = transport.poll_completed()) {
          got[c->id] = std::move(c->responses);
        }
        return got.size() == ids.size();
      },
      Deadline(sys.simulator(), 100'000'000), "coalesced frame test");
  std::vector<std::vector<msg::Response>> out;
  for (const auto id : ids) {
    out.push_back(std::move(got[id]));
  }
  return out;
}

// -- Frame layout -------------------------------------------------------------

TEST(FrameLayout, MembersCoverConcatenatedGroupsExactly) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);

  const isa::Program a = Assembler::assemble("PUT r1, #5\nGET r1");
  const isa::Program empty;  // zero groups, zero responses
  const isa::Program b = Assembler::assemble("GETV r2, 3\nPUT r3, #7");

  const FrameLayout frame =
      split_frame({&a, &empty, &b}, sys.rtm().config(), sys.rtm().table());
  ASSERT_EQ(frame.members.size(), 3u);
  ASSERT_EQ(frame.groups.size(), 4u);
  ASSERT_EQ(frame.predictions.size(), frame.groups.size());
  ASSERT_EQ(frame.effects.size(), frame.groups.size());

  EXPECT_EQ(frame.members[0].first_group, 0u);
  EXPECT_EQ(frame.members[0].group_count, 2u);
  EXPECT_EQ(frame.members[0].response_count, 1u);  // PUT 0 + GET 1

  // An empty member is a zero-width range between its neighbours.
  EXPECT_EQ(frame.members[1].first_group, 2u);
  EXPECT_EQ(frame.members[1].group_count, 0u);
  EXPECT_EQ(frame.members[1].response_count, 0u);

  EXPECT_EQ(frame.members[2].first_group, 2u);
  EXPECT_EQ(frame.members[2].group_count, 2u);
  EXPECT_EQ(frame.members[2].response_count, 3u);  // GETV burst of 3

  // Effects line up with the groups: member b's GETV reads r2..r4, its PUT
  // writes r3 — the write-read conflict the frame barrier must see.
  const GroupEffects& getv = frame.effects[2];
  const GroupEffects& put = frame.effects[3];
  ASSERT_TRUE(getv.exact);
  ASSERT_TRUE(put.exact);
  EXPECT_TRUE(getv.data_reads.test(2));
  EXPECT_TRUE(getv.data_reads.test(3));
  EXPECT_TRUE(getv.data_reads.test(4));
  EXPECT_TRUE(put.data_writes.test(3));
  EXPECT_TRUE(put.writes_conflict_with_reads_of(getv));
}

TEST(FrameLayout, PredictionsMatchReferenceCountsPerMember) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  std::vector<isa::Program> programs;
  for (std::uint64_t seed = 301; seed <= 306; ++seed) {
    programs.push_back(fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 12, .include_errors = true}));
  }
  std::vector<const isa::Program*> ptrs;
  for (const auto& p : programs) {
    ptrs.push_back(&p);
  }
  const FrameLayout frame =
      split_frame(ptrs, sys.rtm().config(), sys.rtm().table());
  ASSERT_EQ(frame.members.size(), programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    // Each member's predicted response total equals what a fresh reference
    // machine produces for that program alone (counts are state-free).
    const auto expected = ReferenceModel(small_rtm()).run(programs[i]);
    EXPECT_EQ(frame.members[i].response_count, expected.size())
        << "member " << i;
  }
}

// -- Coalesced frames on a clean link ----------------------------------------

TEST(Coalescing, FrameMatchesSequentialCallsIncludingEmptyAndErrorMembers) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);

  top::System seq_sys(cfg);
  Coprocessor seq_copro(seq_sys);
  ReliableTransport seq_transport(seq_copro);

  std::vector<isa::Program> programs;
  programs.push_back(Assembler::assemble("PUT r1, #11\nGET r1"));
  programs.push_back(isa::Program{});  // empty member mid-frame
  // An erroring member mid-frame: GET of an out-of-range register answers
  // with exactly one error response and must not desynchronise demux.
  {
    isa::Instruction bad;
    bad.function = isa::fc::kRtm;
    bad.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    bad.src1 = 100;  // >= data_regs
    isa::Program p;
    p.emit(bad);
    programs.push_back(std::move(p));
  }
  programs.push_back(Assembler::assemble("PUT r2, #7\nADD r3, r1, r2\nGET r3"));

  std::vector<std::vector<msg::Response>> expected;
  for (const isa::Program& p : programs) {
    expected.push_back(seq_transport.call(p));
  }
  const auto got = run_frame(sys, copro, transport, programs);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "member " << i;
  }
  EXPECT_EQ(transport.in_flight(), 0u);
  EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
}

TEST(Coalescing, GetvBurstAtMemberBoundaryStaysAligned) {
  // Member A ends in a GETV burst, member B immediately writes into the
  // burst's source range: the per-register barrier must hold B's PUT until
  // A's reads retire, and demux must split the burst from B's responses.
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);

  top::System seq_sys(cfg);
  Coprocessor seq_copro(seq_sys);
  ReliableTransport seq_transport(seq_copro);

  std::vector<isa::Program> programs;
  programs.push_back(Assembler::assemble(R"(
    PUTV r2, 3
    .word #10
    .word #20
    .word #30
    GETV r2, 3
  )"));
  programs.push_back(Assembler::assemble("PUT r3, #99\nGET r3"));

  std::vector<std::vector<msg::Response>> expected;
  for (const isa::Program& p : programs) {
    expected.push_back(seq_transport.call(p));
  }
  const auto got = run_frame(sys, copro, transport, programs);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], expected[0]);
  EXPECT_EQ(got[1], expected[1]);
  ASSERT_EQ(got[1].size(), 1u);
  EXPECT_EQ(got[1][0].payload, 99u);  // B's write really landed after A read
}

TEST(Coalescing, IntraFrameWriteOrderIsPreservedOnConflicts) {
  // Writer then reader of the SAME register as two members of one frame:
  // the reader must observe the writer's value (the relaxed barrier only
  // reorders register-disjoint traffic).
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);

  std::vector<isa::Program> programs;
  programs.push_back(Assembler::assemble("GET r1"));         // reads old r1
  programs.push_back(Assembler::assemble("PUT r1, #42"));    // conflicts
  programs.push_back(Assembler::assemble("GET r1"));         // reads 42

  const auto got = run_frame(sys, copro, transport, programs);
  ASSERT_EQ(got.size(), 3u);
  ASSERT_EQ(got[0].size(), 1u);
  EXPECT_EQ(got[0][0].payload, 0u);  // pre-write value
  EXPECT_TRUE(got[1].empty());       // pure write: response-free completion
  ASSERT_EQ(got[2].size(), 1u);
  EXPECT_EQ(got[2][0].payload, 42u);
}

TEST(Coalescing, StreamedMemberInterleavesWithItsNeighbours) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);

  const isa::Program a = Assembler::assemble("PUT r1, #3\nGET r1");
  const isa::Program b = Assembler::assemble("PUT r2, #4\nGET r2\nGET r2");
  const std::vector<ReliableTransport::ProgramId> ids =
      transport.submit_coalesced({{&a, std::nullopt, false},
                                  {&b, std::nullopt, /*stream=*/true}});
  std::vector<msg::Response> streamed;
  std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
  copro.pump().run_until(
      [&] {
        transport.service();
        while (auto e = transport.poll_stream()) {
          EXPECT_EQ(e->id, ids[1]);  // only the streaming member surfaces
          streamed.push_back(e->response);
        }
        while (auto c = transport.poll_completed()) {
          got[c->id] = std::move(c->responses);
        }
        return got.size() == 2;
      },
      Deadline(sys.simulator(), 10'000'000), "coalesced stream test");
  EXPECT_EQ(streamed, got[ids[1]]);
  ASSERT_EQ(got[ids[0]].size(), 1u);
  EXPECT_EQ(got[ids[0]][0].payload, 3u);
}

// -- Coalesced frames under faults --------------------------------------------

TEST(Coalescing, FaultyLinkRecoversBitExactAcrossConflictingMembers) {
  // Members deliberately chain through the SAME registers, so retried reads
  // are only correct if the frame barrier really held conflicting writes.
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 501; seed <= 505; ++seed) {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    msg::FaultConfig f;
    f.seed = seed;
    f.up.drop_ppm = 50'000;
    f.up.corrupt_ppm = 50'000;
    f.up.duplicate_ppm = 50'000;
    cfg.link_faults = f;
    top::System sys(cfg);
    Coprocessor copro(sys);
    TransportConfig tcfg;
    tcfg.response_timeout = 500;
    tcfg.max_attempts = 25;
    ReliableTransport transport(copro, tcfg);

    top::SystemConfig clean_cfg;
    clean_cfg.rtm = small_rtm();
    top::System seq_sys(clean_cfg);
    Coprocessor seq_copro(seq_sys);
    ReliableTransport seq_transport(seq_copro);

    std::vector<isa::Program> programs;
    for (int i = 0; i < 6; ++i) {
      programs.push_back(Assembler::assemble(
          "PUT r1, #" + std::to_string(10 + i) +
          "\nADD r2, r1, r1\nGET r2\nGET r1"));
    }
    std::vector<std::vector<msg::Response>> expected;
    for (const isa::Program& p : programs) {
      expected.push_back(seq_transport.call(p));
    }
    const auto got = run_frame(sys, copro, transport, programs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " member " << i;
    }
    EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
    total_retries += transport.counters().get("transport.retries") +
                     transport.counters().get("transport.dup_dropped") +
                     transport.counters().get("transport.stale_dropped");
  }
  EXPECT_GT(total_retries, 0u);  // the fault machinery actually fired
}

// -- The point of the exercise ------------------------------------------------

TEST(Coalescing, DisjointMembersBeatTheUncoalescedWindowOnCycles) {
  // The same 12 register-disjoint write+compute+read jobs, once as 12
  // windowed frames (the cross-program write barrier serialises them at
  // about one round trip each) and once as a single coalesced frame (the
  // per-register barrier finds no conflicts and streams them back to
  // back).  Both must produce identical responses; the coalesced run must
  // finish in measurably fewer simulated cycles.
  top::SystemConfig cfg;  // default RTM: 32 data registers
  std::vector<isa::Program> programs;
  for (int i = 0; i < 12; ++i) {
    const int a = 1 + 2 * i;
    const int b = a + 1;
    programs.push_back(Assembler::assemble(
        "PUT r" + std::to_string(a) + ", #" + std::to_string(100 + i) +
        "\nADD r" + std::to_string(b) + ", r" + std::to_string(a) + ", r" +
        std::to_string(a) + "\nGET r" + std::to_string(b)));
  }

  // Uncoalesced: one frame per program through a deep window.
  std::uint64_t windowed_cycles = 0;
  std::vector<std::vector<msg::Response>> windowed;
  {
    top::System sys(cfg);
    Coprocessor copro(sys);
    TransportConfig tcfg;
    tcfg.window = 16;
    ReliableTransport transport(copro, tcfg);
    std::vector<ReliableTransport::ProgramId> ids;
    std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
    std::size_t next = 0;
    const std::uint64_t start = sys.simulator().cycle();
    copro.pump().run_until(
        [&] {
          while (next < programs.size() && !transport.window_full()) {
            ids.push_back(transport.submit(programs[next++]));
          }
          transport.service();
          while (auto c = transport.poll_completed()) {
            got[c->id] = std::move(c->responses);
          }
          return got.size() == programs.size();
        },
        Deadline(sys.simulator(), 100'000'000), "windowed baseline");
    windowed_cycles = sys.simulator().cycle() - start;
    for (const auto id : ids) {
      windowed.push_back(std::move(got[id]));
    }
  }

  // Coalesced: all 12 in one frame.
  std::uint64_t coalesced_cycles = 0;
  std::vector<std::vector<msg::Response>> coalesced;
  {
    top::System sys(cfg);
    Coprocessor copro(sys);
    ReliableTransport transport(copro);
    const std::uint64_t start = sys.simulator().cycle();
    coalesced = run_frame(sys, copro, transport, programs);
    coalesced_cycles = sys.simulator().cycle() - start;
  }

  ASSERT_EQ(coalesced.size(), windowed.size());
  for (std::size_t i = 0; i < coalesced.size(); ++i) {
    EXPECT_EQ(coalesced[i], windowed[i]) << "member " << i;
  }
  EXPECT_LT(coalesced_cycles, windowed_cycles)
      << "coalescing must beat the barrier-serialised window";
  // The headline claim: at least 1.5x fewer simulated cycles end to end.
  EXPECT_GE(windowed_cycles * 2, coalesced_cycles * 3)
      << "windowed " << windowed_cycles << " vs coalesced "
      << coalesced_cycles;
}

TEST(Coalescing, RejectsEmptyAndOversubmission) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.window = 1;
  ReliableTransport transport(copro, tcfg);
  EXPECT_THROW(transport.submit_coalesced({}), SimError);
  const isa::Program p = Assembler::assemble("PUT r1, #1");
  transport.submit_coalesced({{&p, std::nullopt, false}});
  EXPECT_TRUE(transport.window_full());
  EXPECT_THROW(transport.submit_coalesced({{&p, std::nullopt, false}}),
               SimError);
  transport.abort_in_flight();
}

}  // namespace
}  // namespace fpgafu::host
