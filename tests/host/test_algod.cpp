#include "host/algod.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "fu/stateless_units.hpp"
#include "host/coprocessor.hpp"
#include "host/farm.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace fpgafu::host {
namespace {

using isa::Assembler;
using msg::Response;

/// A System with no built-in units: every function code on it is served
/// through the algorithm-on-demand manager (or not at all).
top::SystemConfig bare_system() {
  top::SystemConfig sc;
  sc.with_arithmetic = false;
  sc.with_logic = false;
  sc.with_shift = false;
  sc.with_muldiv = false;
  sc.with_float = false;
  sc.with_trig = false;
  return sc;
}

/// Factory covering the six stateless case-study units, so images can be
/// declared over codes the ReferenceModel knows the semantics of.
std::unique_ptr<fu::FunctionalUnit> make_unit_for(sim::Simulator& sim,
                                                  isa::FunctionCode code) {
  fu::StatelessConfig ucfg;
  ucfg.width = 32;
  switch (code) {
    case isa::fc::kArith:
      return fu::make_arithmetic_unit(sim, ucfg);
    case isa::fc::kLogic:
      return fu::make_logic_unit(sim, ucfg);
    case isa::fc::kShift:
      return fu::make_shift_unit(sim, ucfg);
    case isa::fc::kMulDiv:
      ucfg.skeleton = fu::Skeleton::kFsm;
      ucfg.execute_cycles = 0;
      return fu::make_muldiv_unit(sim, ucfg);
    case isa::fc::kFloat:
      return fu::make_fp32_unit(sim, ucfg);
    case isa::fc::kTrig:
      ucfg.skeleton = fu::Skeleton::kFsm;
      ucfg.execute_cycles = 0;
      return fu::make_trig_unit(sim, ucfg);
    default:
      return nullptr;
  }
}

AlgorithmImage image_of(const std::string& name, isa::FunctionCode code,
                        std::uint64_t load_cycles) {
  AlgorithmImage img;
  img.name = name;
  img.codes = {code};
  img.load_cycles = load_cycles;
  img.factory = make_unit_for;
  return img;
}

/// The six-image catalogue the multi-tenant tests schedule over, with
/// deliberately unequal load costs so the cost-aware policy has something
/// to be aware of.
std::vector<AlgorithmImage> catalogue() {
  return {image_of("arith", isa::fc::kArith, 100),
          image_of("logic", isa::fc::kLogic, 200),
          image_of("shift", isa::fc::kShift, 300),
          image_of("muldiv", isa::fc::kMulDiv, 400),
          image_of("float", isa::fc::kFloat, 500),
          image_of("trig", isa::fc::kTrig, 600)};
}

/// A self-contained program exercising exactly the given images: writes
/// every register it reads, so a fresh ReferenceModel predicts its
/// responses regardless of shard placement or earlier tenants.
isa::Program program_for(const std::vector<std::string>& images,
                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  src += "PUT r1, #" + std::to_string(rng.below(1u << 20)) + "\n";
  src += "PUT r2, #" + std::to_string(1 + rng.below(1u << 10)) + "\n";
  for (const std::string& name : images) {
    if (name == "arith") {
      src += "ADD r3, r1, r2\nGET r3\n";
    } else if (name == "logic") {
      src += "XOR r4, r1, r2\nGET r4\n";
    } else if (name == "shift") {
      src += "SHR r5, r1, r2\nGET r5\n";
    } else if (name == "muldiv") {
      src += "MUL r6, r1, r2\nGET r6\n";
    } else if (name == "float") {
      src += "FMUL r7, r1, r2\nGET r7\n";
    } else if (name == "trig") {
      src += "SIN r3, r1\nGET r3\n";
    }
  }
  return Assembler::assemble(src);
}

std::vector<msg::Response> reference_run(const isa::Program& p) {
  return ReferenceModel(top::SystemConfig{}.rtm).run(p);
}

// -- FuManager unit tests -----------------------------------------------------

TEST(Algod, MissLoadsHitReusesAndCountersTrack) {
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 2;
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("arith", isa::fc::kArith, 250));
  mgr.register_image(image_of("logic", isa::fc::kLogic, 250));

  EXPECT_FALSE(mgr.resident("arith"));
  const std::uint64_t before = sys.simulator().cycle();
  mgr.ensure_resident("arith");
  EXPECT_TRUE(mgr.resident("arith"));
  // The load latency is charged on the simulated clock, not host-side.
  EXPECT_GE(sys.simulator().cycle() - before, 250u);
  EXPECT_EQ(mgr.counters().get("algod.misses"), 1u);
  EXPECT_EQ(mgr.counters().get("algod.loads"), 1u);
  EXPECT_GE(mgr.counters().get("algod.load_cycles"), 250u);

  // A hit is free: no clock movement, no load.
  const std::uint64_t after_load = sys.simulator().cycle();
  mgr.ensure_resident("arith");
  EXPECT_EQ(sys.simulator().cycle(), after_load);
  EXPECT_EQ(mgr.counters().get("algod.hits"), 1u);
  EXPECT_EQ(mgr.counters().get("algod.loads"), 1u);

  // And the loaded unit actually serves instructions.
  auto r = copro.call(Assembler::assemble(R"(
    PUTI r1, 6
    PUTI r2, 7
    ADD r3, r1, r2
    GET r3
  )"));
  EXPECT_EQ(r[0].payload, 13u);
}

TEST(Algod, EvictionSwapsUnderSlotPressure) {
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 1;
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("arith", isa::fc::kArith, 100));
  mgr.register_image(image_of("logic", isa::fc::kLogic, 100));

  mgr.ensure_resident("arith");
  mgr.ensure_resident("logic");  // evicts arith: one slot
  EXPECT_FALSE(mgr.resident("arith"));
  EXPECT_TRUE(mgr.resident("logic"));
  EXPECT_EQ(mgr.counters().get("algod.evictions"), 1u);

  // Swap back and forth; the units are cached (no re-construction), but
  // every reload pays the modelled latency again.
  const std::uint64_t before = sys.simulator().cycle();
  mgr.ensure_resident("arith");
  EXPECT_GE(sys.simulator().cycle() - before, 100u);
  EXPECT_EQ(mgr.counters().get("algod.evictions"), 2u);
  auto r = copro.call(
      Assembler::assemble("PUTI r1, 3\nPUTI r2, 4\nADD r3, r1, r2\nGET r3"));
  EXPECT_EQ(r[0].payload, 7u);
}

TEST(Algod, DeclaredButNotLoadedIsUnavailableNotUnknown) {
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 1;
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("arith", isa::fc::kArith, 100));

  // Registered (never loaded): typed retryable error.
  auto r1 = copro.call(Assembler::assemble("ADD r3, r1, r2\nSYNC"));
  EXPECT_EQ(r1[0].type, Response::Type::kError);
  EXPECT_EQ(r1[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnitUnavailable));
  // Unregistered code: permanent unknown-function error.
  auto r2 = copro.call(Assembler::assemble("MUL r3, r1, r2\nSYNC"));
  EXPECT_EQ(r2[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnknownFunction));
  // After the retryable error, loading and retrying succeeds.
  mgr.ensure_resident("arith");
  auto r3 = copro.call(
      Assembler::assemble("PUTI r1, 2\nPUTI r2, 9\nADD r3, r1, r2\nGET r3"));
  EXPECT_EQ(r3[0].payload, 11u);
}

TEST(Algod, LruEvictsLeastRecentCostAwareKeepsExpensive) {
  // Same access sequence under both policies; they must pick different
  // victims.  A is dirt cheap to reload, B is expensive; both are touched,
  // A most recently.
  const auto sequence = [](FuManager& mgr) {
    mgr.ensure_resident("cheap");
    mgr.ensure_resident("dear");
    mgr.ensure_resident("cheap");   // cheap is now the most recent
    mgr.ensure_resident("third");   // forces one eviction
  };

  top::System s1(bare_system());
  Coprocessor c1(s1);
  FuManagerConfig lru_cfg;
  lru_cfg.slots = 2;
  lru_cfg.policy = std::make_shared<LruPolicy>();
  FuManager lru(c1, lru_cfg);
  lru.register_image(image_of("cheap", isa::fc::kArith, 10));
  lru.register_image(image_of("dear", isa::fc::kFloat, 10000));
  lru.register_image(image_of("third", isa::fc::kLogic, 10));
  sequence(lru);
  // LRU ignores cost: evicts `dear` (least recently touched).
  EXPECT_TRUE(lru.resident("cheap"));
  EXPECT_FALSE(lru.resident("dear"));

  top::System s2(bare_system());
  Coprocessor c2(s2);
  FuManagerConfig cost_cfg;
  cost_cfg.slots = 2;
  cost_cfg.policy = std::make_shared<CostAwarePolicy>();
  FuManager cost(c2, cost_cfg);
  cost.register_image(image_of("cheap", isa::fc::kArith, 10));
  cost.register_image(image_of("dear", isa::fc::kFloat, 10000));
  cost.register_image(image_of("third", isa::fc::kLogic, 10));
  sequence(cost);
  // Cost-aware keeps the expensive bitstream despite its age.
  EXPECT_FALSE(cost.resident("cheap"));
  EXPECT_TRUE(cost.resident("dear"));
}

TEST(Algod, CostAwareAgesOutStaleExpensiveImages) {
  // GreedyDual aging regression: the eviction level L rises to the evicted
  // credit, so an expensive image that stops being touched is overtaken by
  // a stream of fresh cheap ones instead of squatting on its slot forever.
  // Under the pre-aging policy (credit = touch_tick + cost, ticks +1 per
  // touch) `dear` would outrank the cheap pair for ~500 touches.
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 2;
  mcfg.policy = std::make_shared<CostAwarePolicy>();
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("dear", isa::fc::kFloat, 500));
  mgr.register_image(image_of("a", isa::fc::kArith, 100));
  mgr.register_image(image_of("b", isa::fc::kLogic, 100));

  mgr.ensure_resident("dear");  // credit 500; never touched again
  mgr.ensure_resident("a");     // credit 100
  // Each alternation evicts the other cheap image and lifts L by its
  // credit: b@200, a@300, b@400, a@500 — sixth load ties dear at 500 and
  // the touch-tick tie-break evicts the stale one.
  for (const char* name : {"b", "a", "b", "a", "b"}) {
    mgr.ensure_resident(name);
  }
  EXPECT_FALSE(mgr.resident("dear")) << "stale expensive image must age out";
  EXPECT_TRUE(mgr.resident("a"));
  EXPECT_TRUE(mgr.resident("b"));
}

TEST(Algod, CostAwareDegeneratesToLruAtEqualCosts) {
  // With uniform costs, credits tie and the touch-tick tie-break must
  // reproduce LRU's exact victim order.
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 2;
  mcfg.policy = std::make_shared<CostAwarePolicy>();
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("x", isa::fc::kArith, 100));
  mgr.register_image(image_of("y", isa::fc::kLogic, 100));
  mgr.register_image(image_of("z", isa::fc::kShift, 100));

  mgr.ensure_resident("x");
  mgr.ensure_resident("y");
  mgr.ensure_resident("x");  // x is now the most recent
  mgr.ensure_resident("z");  // must evict y, the least recently touched
  EXPECT_TRUE(mgr.resident("x"));
  EXPECT_FALSE(mgr.resident("y"));
  EXPECT_TRUE(mgr.resident("z"));
}

TEST(Algod, CoScheduledImagesAreNotVictimsOfEachOther) {
  top::System sys(bare_system());
  Coprocessor copro(sys);
  FuManagerConfig mcfg;
  mcfg.slots = 2;
  FuManager mgr(copro, mcfg);
  mgr.register_image(image_of("arith", isa::fc::kArith, 50));
  mgr.register_image(image_of("logic", isa::fc::kLogic, 50));
  mgr.register_image(image_of("shift", isa::fc::kShift, 50));

  mgr.ensure_resident_all({"arith", "logic"});
  EXPECT_EQ(mgr.swap_cost({"arith", "logic"}), 0u);
  EXPECT_EQ(mgr.swap_cost({"shift"}), 50u);
  // {logic, shift}: shift's load must evict arith, never its co-scheduled
  // peer logic.
  mgr.ensure_resident_all({"logic", "shift"});
  EXPECT_TRUE(mgr.resident("logic"));
  EXPECT_TRUE(mgr.resident("shift"));
  EXPECT_FALSE(mgr.resident("arith"));

  // A set that cannot fit the budget is refused (typed SimError), with the
  // resident set untouched.
  EXPECT_THROW(mgr.ensure_resident_all({"arith", "logic", "shift"}),
               SimError);
  EXPECT_TRUE(mgr.resident("logic"));
  EXPECT_TRUE(mgr.resident("shift"));
}

// -- Farm integration ---------------------------------------------------------

TEST(AlgodFarm, SessionsRouteByAffinityAndSwapOnDemand) {
  FarmConfig fc;
  fc.shards = 2;
  fc.system = bare_system();
  fc.fu_images = catalogue();
  fc.fu_slots = 2;
  Farm farm(fc);

  const Farm::SessionId a1 = farm.create_session({"arith"});
  const Farm::SessionId f1 = farm.create_session({"float"});
  const Farm::SessionId a2 = farm.create_session({"arith"});
  // Affinity: the two arith tenants share a shard; the float tenant got
  // the other one (load balance at zero overlap).
  EXPECT_EQ(farm.shard_of(a1), farm.shard_of(a2));
  EXPECT_NE(farm.shard_of(a1), farm.shard_of(f1));

  const isa::Program pa = program_for({"arith"}, 7);
  const isa::Program pf = program_for({"float"}, 8);
  EXPECT_EQ(farm.submit(a1, pa).get(), reference_run(pa));
  EXPECT_EQ(farm.submit(f1, pf).get(), reference_run(pf));
  EXPECT_EQ(farm.submit(a2, pa).get(), reference_run(pa));

  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_GE(totals.get("algod.loads"), 2u);
  EXPECT_GE(totals.get("algod.hits"), 1u);  // a2 reused a1's image
}

TEST(AlgodFarm, UndeclaredCodeFailsTypedAndRetriesOnDeclaringSession) {
  FarmConfig fc;
  fc.shards = 1;
  fc.system = bare_system();
  fc.fu_images = catalogue();
  fc.fu_slots = 1;
  Farm farm(fc);

  const Farm::SessionId arith_only = farm.create_session({"arith"});
  // Warm the shard with the declared image.
  const isa::Program ok = program_for({"arith"}, 21);
  EXPECT_EQ(farm.submit(arith_only, ok).get(), reference_run(ok));

  // The same session now uses a code it never declared: the muldiv image
  // is registered (so the error is the retryable kUnitUnavailable, not
  // unknown-function) but not resident, and this session does not request
  // it.  The job fails typed.
  const isa::Program probe = program_for({"muldiv"}, 22);
  auto fut = farm.submit(arith_only, probe);
  try {
    fut.get();
    FAIL() << "expected FarmError{kUnitUnavailable}";
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kUnitUnavailable);
  }
  // Bounded retry on a session that declares the image: succeeds.
  const Farm::SessionId muldiv_ok = farm.create_session({"muldiv"});
  EXPECT_EQ(farm.submit(muldiv_ok, probe).get(), reference_run(probe));

  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.shard_resets"), 0u)
      << "a typed unit-unavailable failure must not reset the shard";
  EXPECT_GE(totals.get("algod.evictions"), 1u);
}

TEST(AlgodFarm, InlineManagedFarmMatchesReference) {
  FarmConfig fc;
  fc.shards = 0;  // inline: no threads
  fc.system = bare_system();
  fc.fu_images = catalogue();
  fc.fu_slots = 2;
  Farm farm(fc);
  const Farm::SessionId s = farm.create_session({"logic", "shift"});
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const isa::Program p = program_for({"logic", "shift"}, seed);
    EXPECT_EQ(farm.submit(s, p).get(), reference_run(p)) << "seed " << seed;
  }
  farm.shutdown();  // counters are published amortised; exact after shutdown
  const sim::Counters totals = farm.counters();
  EXPECT_GE(totals.get("algod.loads"), 2u);
  EXPECT_GE(totals.get("algod.hits"), 1u);
}

TEST(AlgodFarm, CoalescedFramesSwapImagesOnlyAtFrameBoundaries) {
  // Mixed-demand sessions under coalescing: jobs that share a resident set
  // may ride one frame, a job needing a swap must cut the frame and still
  // complete correctly after the boundary swap.  Every response stays
  // bit-identical to the reference.
  FarmConfig fc;
  fc.shards = 1;
  fc.system = bare_system();
  fc.transport.window = 4;
  fc.coalesce_max_programs = 8;
  fc.coalesce_flush_cycles = 64;
  fc.fu_images = catalogue();
  fc.fu_slots = 2;  // arith+logic resident means trig forces an eviction
  Farm farm(fc);
  const Farm::SessionId hot = farm.create_session({"arith", "logic"});
  const Farm::SessionId cold = farm.create_session({"trig"});

  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 70; seed < 82; ++seed) {
    // Every 4th job demands the cold image, forcing swap-at-boundary cuts
    // in the middle of what would otherwise be one big frame.
    const bool is_cold = seed % 4 == 1;
    programs.push_back(program_for(
        is_cold ? std::vector<std::string>{"trig"}
                : std::vector<std::string>{"arith", "logic"},
        seed));
    futures.push_back(farm.submit(is_cold ? cold : hot, programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_GT(totals.get("algod.evictions"), 0u) << "swaps must have happened";
}

// -- Multi-tenant soak --------------------------------------------------------

/// Tenant count for the soak; CI exports FPGAFU_ALGOD_TENANTS to scale it.
/// The acceptance bar is >= 200.
std::size_t algod_tenants() {
  if (const char* env = std::getenv("FPGAFU_ALGOD_TENANTS")) {
    const long n = std::atol(env);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 200;
}

/// The acceptance soak: hundreds of tenants with skewed, phase-shifting
/// image demand over a slot budget far below the union of their needs.
/// Every job must stay bit-identical to a fresh ReferenceModel; undeclared
/// probes must fail typed and succeed on one bounded retry; no shard may
/// wedge or reset; and the replacement machinery must demonstrably cycle
/// (nonzero hits, misses and evictions).
TEST(AlgodSoak, MultiTenantSkewedShiftingMixStaysReferenceCorrect) {
  const std::size_t tenants = algod_tenants();
  const std::vector<std::string> names = {"arith",  "logic", "shift",
                                          "muldiv", "float", "trig"};
  FarmConfig fc;
  fc.shards = 4;
  fc.system = bare_system();
  fc.transport.window = 4;
  fc.fu_images = catalogue();
  fc.fu_slots = 2;  // union of demands is 6 codes: constant pressure
  Farm farm(fc);

  struct Tenant {
    Farm::SessionId session;
    std::vector<std::string> required;
  };
  Xoshiro256 rng(0xa190d);
  std::vector<Tenant> roster;
  roster.reserve(tenants);
  const std::size_t phases = 4;
  for (std::size_t i = 0; i < tenants; ++i) {
    // Skewed, shifting mix: each phase of the tenant sequence favours a
    // different pair of images (80% of picks), with a uniform tail.
    const std::size_t phase = i * phases / tenants;
    auto pick = [&]() -> std::string {
      if (rng.below(10) < 8) {
        return names[(phase * 2 + rng.below(2)) % names.size()];
      }
      return names[rng.below(static_cast<std::uint32_t>(names.size()))];
    };
    std::vector<std::string> required = {pick()};
    if (rng.below(2) == 0) {
      const std::string second = pick();
      if (second != required[0]) {
        required.push_back(second);
      }
    }
    roster.push_back({farm.create_session(required), std::move(required)});
  }

  // Two jobs per tenant, all in flight across the farm at once.
  struct Pending {
    std::future<std::vector<msg::Response>> future;
    isa::Program program;
    std::size_t tenant;
  };
  std::vector<Pending> pending;
  pending.reserve(tenants * 2);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      isa::Program p =
          program_for(roster[i].required, 0x5eed + i * 7 + 1000 * j);
      auto fut = farm.submit(roster[i].session, p);
      pending.push_back({std::move(fut), std::move(p), i});
    }
  }
  // Every 16th tenant also probes a code it never declared — the eviction
  // race surfaced as a typed, retryable error.
  struct Probe {
    std::future<std::vector<msg::Response>> future;
    isa::Program program;
    std::string image;
  };
  std::vector<Probe> probes;
  for (std::size_t i = 0; i < roster.size(); i += 16) {
    std::string undeclared;
    for (const std::string& n : names) {
      if (std::find(roster[i].required.begin(), roster[i].required.end(),
                    n) == roster[i].required.end()) {
        undeclared = n;
        break;
      }
    }
    if (undeclared.empty()) {
      continue;
    }
    isa::Program p = program_for({undeclared}, 0xbeef + i);
    auto fut = farm.submit(roster[i].session, p);
    probes.push_back({std::move(fut), std::move(p), undeclared});
  }

  for (Pending& p : pending) {
    ASSERT_EQ(p.future.get(), reference_run(p.program))
        << "tenant " << p.tenant << " required set size "
        << roster[p.tenant].required.size();
  }
  std::size_t probe_failures = 0;
  for (Probe& p : probes) {
    try {
      // The undeclared image may have been resident by luck; then the job
      // simply succeeds and must still match the reference.
      EXPECT_EQ(p.future.get(), reference_run(p.program));
    } catch (const FarmError& e) {
      ASSERT_EQ(e.kind(), FarmError::Kind::kUnitUnavailable);
      ++probe_failures;
      // Bounded retry: one resubmission on a declaring session succeeds.
      const Farm::SessionId retry_on = farm.create_session({p.image});
      EXPECT_EQ(farm.submit(retry_on, p.program).get(),
                reference_run(p.program));
    }
  }

  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.shard_resets"), 0u) << "zero wedged shards";
  EXPECT_EQ(totals.get("farm.jobs_failed"), probe_failures)
      << "only undeclared probes may fail, and only typed";
  // The soak must actually exercise the replacement machinery.
  EXPECT_GT(totals.get("algod.hits"), 0u);
  EXPECT_GT(totals.get("algod.misses"), 0u);
  EXPECT_GT(totals.get("algod.evictions"), 0u);
  EXPECT_GT(totals.get("algod.load_cycles"), 0u);

  // Job latency (simulated cycles, enqueue -> completion) must have a
  // bounded tail: with round-robin fairness and frame-boundary-only swaps
  // no tenant's job may wait pathologically longer than the median.  The
  // 50x bound is deliberately loose — FIFO drain of this load predicts
  // p99/p50 of roughly 2 — so it only catches real starvation.
  const LatencyPercentiles lat =
      latency_percentiles(farm.job_latency_samples());
  EXPECT_GE(lat.samples, pending.size())
      << "every soak job must contribute a latency sample";
  EXPECT_GT(lat.p50, 0u);
  EXPECT_LE(lat.p50, lat.p95);
  EXPECT_LE(lat.p95, lat.p99);
  EXPECT_LE(lat.p99, lat.p50 * 50) << "latency tail unbounded: p99 "
                                   << lat.p99 << " vs p50 " << lat.p50;
}

}  // namespace
}  // namespace fpgafu::host
