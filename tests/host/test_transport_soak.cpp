#include <cstdlib>
#include <map>

#include <gtest/gtest.h>

#include "host/reference_model.hpp"
#include "host/reliable_transport.hpp"
#include "support/program_gen.hpp"

namespace fpgafu::host {
namespace {

/// Iteration count: default 100 random programs; CI jobs export
/// FPGAFU_SOAK_PROGRAMS to abbreviate the run.
std::size_t soak_programs() {
  if (const char* env = std::getenv("FPGAFU_SOAK_PROGRAMS")) {
    const long n = std::atol(env);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 100;
}

/// End-to-end fault soak (the PR's acceptance test): random programs over a
/// link that drops, corrupts and duplicates 5% of upstream words each and
/// jitters both directions, must still produce exactly the reference
/// model's responses through the retry layer.
TEST(TransportSoak, RandomProgramsSurviveFivePercentFaultRates) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  constexpr std::uint64_t kBaseSeed = 0xf00d0000;

  const std::size_t programs = soak_programs();
  std::map<std::string, std::uint64_t> transport_totals;
  std::map<std::string, std::uint64_t> fault_totals;

  for (std::size_t i = 0; i < programs; ++i) {
    top::SystemConfig cfg;
    cfg.rtm = rcfg;
    msg::FaultConfig f;
    f.seed = kBaseSeed + i;
    f.up.drop_ppm = 50'000;
    f.up.corrupt_ppm = 50'000;
    f.up.duplicate_ppm = 50'000;
    f.up.jitter_max = 3;
    f.down.jitter_max = 2;
    cfg.link_faults = f;
    top::System sys(cfg);
    Coprocessor copro(sys);
    TransportConfig tcfg;
    tcfg.response_timeout = 500;
    // At 5% loss per word a long GETV needs many incremental attempts.
    tcfg.max_attempts = 25;
    ReliableTransport transport(copro, tcfg);

    const isa::Program p = fpgafu::testing::random_program(
        rcfg, kBaseSeed ^ (i * 2654435761u), {.instructions = 30});
    const auto got = transport.call(p);
    const auto expected = ReferenceModel(rcfg).run(p);
    ASSERT_EQ(got, expected) << "program " << i;

    for (const auto& [name, value] : transport.counters().all()) {
      transport_totals[name] += value;
    }
    for (const auto& [name, value] :
         sys.faulty_link()->fault_counters().all()) {
      fault_totals[name] += value;
    }
  }

  // The run must actually have exercised the machinery it claims to test.
  EXPECT_GT(fault_totals["link.up_dropped"], 0u);
  EXPECT_GT(fault_totals["link.up_corrupted"], 0u);
  EXPECT_GT(fault_totals["link.up_duplicated"], 0u);
  EXPECT_GT(transport_totals["transport.retries"], 0u);
  EXPECT_EQ(transport_totals["transport.failures"], 0u);
}

}  // namespace
}  // namespace fpgafu::host
