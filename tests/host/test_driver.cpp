#include "host/driver.hpp"

#include <gtest/gtest.h>

#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/error.hpp"

namespace fpgafu::host {
namespace {

isa::Instruction make_get(isa::RegNum reg) {
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = reg;
  return get;
}

TEST(Deadline, BudgetAccounting) {
  top::System sys({});
  sim::Simulator& sim = sys.simulator();
  Deadline d(sim, 10);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), 10u);
  sim.run(4);
  EXPECT_EQ(d.spent(), 4u);
  EXPECT_EQ(d.remaining(), 6u);
  sim.run(6);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0u);
  EXPECT_THROW(d.enforce("test"), SimError);
}

TEST(Deadline, UnboundedNeverExpires) {
  top::System sys({});
  Deadline d = Deadline::unbounded(sys.simulator());
  EXPECT_TRUE(d.unlimited());
  sys.simulator().run(1000);
  EXPECT_FALSE(d.expired());
  d.enforce("test");  // no throw
}

TEST(Deadline, SurvivesSimulatorReset) {
  // A reset rewinds the cycle counter; a deadline observed across the
  // rewind keeps the budget already consumed instead of re-arming.
  top::System sys({});
  sim::Simulator& sim = sys.simulator();
  Deadline d(sim, 100);
  sim.run(60);
  d.observe();
  EXPECT_EQ(d.spent(), 60u);
  sim.reset();
  d.observe();  // cycle counter is 0 again; spent must still be 60
  EXPECT_EQ(d.spent(), 60u);
  sim.run(40);
  d.observe();
  EXPECT_TRUE(d.expired());
}

TEST(Driver, EnqueueIsNonBlockingAndServiceDrains) {
  // A downstream buffer of 2 link words cannot hold one 2-stream-word PUT
  // (4 link words); enqueue must still return immediately and service must
  // move words out as the link drains — the Driver never steps the clock.
  top::SystemConfig cfg;
  cfg.link_down_capacity = 2;
  top::System sys(cfg);
  Driver driver(sys);

  isa::Program p;
  p.emit_put(1, 0xbeef);
  driver.enqueue(p);
  EXPECT_EQ(driver.tx_pending(), 4u);

  driver.service();
  EXPECT_EQ(driver.tx_pending(), 2u);  // link accepted its 2-word capacity
  const std::uint64_t before = sys.simulator().cycle();
  driver.service();  // idempotent: no space freed, nothing moves
  EXPECT_EQ(driver.tx_pending(), 2u);
  EXPECT_EQ(sys.simulator().cycle(), before);  // never advanced the clock

  // Let the link move words and the driver finish the transfer.
  Pump pump(sys.simulator(), driver);
  pump.flush(Deadline(sys.simulator(), 1000), "test flush");
  EXPECT_TRUE(driver.tx_drained());

  // The PUT lands: read it back through a second driver exchange.
  driver.enqueue_word(make_get(1).encode());
  std::optional<msg::Response> r;
  pump.run_until([&] { return (r = driver.poll()).has_value(); },
                 Deadline(sys.simulator(), 100000), "test get");
  EXPECT_EQ(r->payload, 0xbeefu);
  EXPECT_EQ(driver.responses_received(), 1u);
}

TEST(Driver, ResetDropsQueuedAndPartialWords) {
  top::SystemConfig cfg;
  cfg.link_down_capacity = 1;
  top::System sys(cfg);
  Driver driver(sys);
  driver.enqueue_word(0x1234);
  driver.service();
  EXPECT_GT(driver.tx_pending(), 0u);
  driver.reset();
  EXPECT_TRUE(driver.tx_drained());
}

TEST(Driver, SystemResetDiscardsStaleState) {
  // A simulator reset under the driver must clear both directions: unsent
  // tx words would desynchronise the 64-bit stream pairing, and partially
  // deframed rx words would shift every later frame.
  top::SystemConfig cfg;
  cfg.link_down_capacity = 1;
  top::System sys(cfg);
  Driver driver(sys);
  driver.enqueue_word(0xdead);
  driver.service();
  EXPECT_FALSE(driver.tx_drained());
  sys.simulator().reset();
  sys.rtm().clear_state();
  driver.service();  // notices the reset generation bump
  EXPECT_TRUE(driver.tx_drained());
}

TEST(Pump, RunUntilCountsCyclesAndEnforcesDeadline) {
  top::System sys({});
  Driver driver(sys);
  Pump pump(sys.simulator(), driver);

  const std::uint64_t start = sys.simulator().cycle();
  const std::uint64_t spent = pump.run_until(
      [&] { return sys.simulator().cycle() >= start + 7; },
      Deadline(sys.simulator(), 100), "test");
  EXPECT_EQ(spent, 7u);

  EXPECT_THROW(pump.run_until([] { return false; },
                              Deadline(sys.simulator(), 25), "wedge"),
               SimError);
}

TEST(Pump, DeadlineDiagnosticNamesTheOperation) {
  top::System sys({});
  Driver driver(sys);
  Pump pump(sys.simulator(), driver);
  try {
    pump.run_until([] { return false; }, Deadline(sys.simulator(), 3),
                   "MyOperation");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("MyOperation"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3 cycles"), std::string::npos);
  }
}

TEST(Pump, PredicateExceptionStopsTheClockInPlace) {
  top::System sys({});
  Driver driver(sys);
  Pump pump(sys.simulator(), driver);
  int calls = 0;
  EXPECT_THROW(pump.run_until(
                   [&] {
                     if (++calls == 3) {
                       throw SimError("predicate abort");
                     }
                     return false;
                   },
                   Deadline(sys.simulator(), 1000), "test"),
               SimError);
  EXPECT_EQ(sys.simulator().cycle(), 2u);  // stepped twice before the throw
}

TEST(CoprocessorFacade, SharedDriverAndPumpSeeTheSameTraffic) {
  // The Coprocessor is a façade: its driver()/pump() accessors expose the
  // same state machine the blocking conveniences use.
  top::System sys({});
  Coprocessor copro(sys);
  copro.write_reg(2, 55);
  EXPECT_TRUE(copro.driver().tx_drained());
  EXPECT_EQ(copro.read_reg(2), 55u);
  EXPECT_EQ(copro.driver().responses_received(), copro.responses_received());
}

TEST(SystemConfigValidate, RejectsDegenerateConfigs) {
  {
    top::SystemConfig cfg;
    cfg.clock_mhz = 0.0;
    EXPECT_THROW(top::System{cfg}, SimError);
    EXPECT_THROW(cfg.validate(), SimError);
  }
  {
    top::SystemConfig cfg;
    cfg.clock_mhz = -50.0;
    EXPECT_THROW(top::System{cfg}, SimError);
  }
  {
    top::SystemConfig cfg;
    cfg.message_buffer_depth = 0;
    EXPECT_THROW(top::System{cfg}, SimError);
  }
  {
    top::SystemConfig cfg;
    cfg.serializer_depth = 0;
    EXPECT_THROW(top::System{cfg}, SimError);
  }
  // The default configuration stays valid.
  top::SystemConfig{}.validate();
}

TEST(SystemConfigValidate, ErrorNamesTheField) {
  top::SystemConfig cfg;
  cfg.message_buffer_depth = 0;
  try {
    cfg.validate();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("message_buffer_depth"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fpgafu::host
