#include "host/reliable_transport.hpp"

#include <gtest/gtest.h>

#include "host/reference_model.hpp"
#include "support/program_gen.hpp"
#include "util/error.hpp"

namespace fpgafu::host {
namespace {

rtm::RtmConfig small_rtm() {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  return rcfg;
}

/// The host-side prediction must agree with the reference model on the
/// response count of every instruction, across random programs including
/// deliberate faults.
TEST(Framing, PredictMatchesReferenceModelCounts) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);  // provides the attached-unit table
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 50, .include_errors = true});
    std::size_t predicted = 0;
    for (const InstructionGroup& g : split_groups(p)) {
      predicted += predict(g.inst, sys.rtm().config(), sys.rtm().table()).count;
    }
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(predicted, expected.size()) << "seed " << seed;
  }
}

TEST(ReliableTransport, CleanLinkIsAPassthrough) {
  // Fresh machine per program: the reference model starts from zeroed
  // registers.
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    top::System sys(cfg);
    Coprocessor copro(sys);
    ReliableTransport transport(copro);
    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 30});
    const auto got = transport.call(p);
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(transport.counters().get("transport.retries"), 0u);
    EXPECT_EQ(transport.counters().get("transport.timeouts"), 0u);
    EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
  }
}

TEST(ReliableTransport, RecoversFromUpstreamFaults) {
  std::uint64_t total_faults = 0;
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    msg::FaultConfig f;
    f.seed = seed;
    f.up.drop_ppm = 40'000;
    f.up.corrupt_ppm = 40'000;
    f.up.duplicate_ppm = 40'000;
    cfg.link_faults = f;
    top::System sys(cfg);
    Coprocessor copro(sys);
    TransportConfig tcfg;
    tcfg.response_timeout = 500;
    ReliableTransport transport(copro, tcfg);

    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 25});
    const auto got = transport.call(p);
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
    total_faults += sys.faulty_link()->fault_counters().get("link.up_dropped") +
                    sys.faulty_link()->fault_counters().get("link.up_corrupted");
    total_retries += transport.counters().get("transport.retries");
  }
  // At these rates faults certainly occurred and were recovered from.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_retries, 0u);
}

TEST(ReliableTransport, GivesUpAfterMaxAttempts) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  msg::FaultConfig f;
  f.up.drop_ppm = 1'000'000;  // the FPGA's answers never get through
  cfg.link_faults = f;
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.response_timeout = 50;
  tcfg.max_attempts = 3;
  ReliableTransport transport(copro, tcfg);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  p.emit(get);
  EXPECT_THROW(transport.call(p), SimError);
  EXPECT_EQ(transport.counters().get("transport.retries"), 2u);
  EXPECT_EQ(transport.counters().get("transport.failures"), 1u);
}

/// Regression for the frame-state reset hole: a system reset (or watchdog
/// abort) used to leave partially deframed link words in the driver, so the
/// next exchange reassembled responses shifted by the leftover words.
TEST(Coprocessor, ResetMidFrameDiscardsPartialFrame) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  cfg.link_up = {1, 16};  // response words trickle out 16 cycles apart
  top::System sys(cfg);
  Coprocessor copro(sys);

  copro.write_reg(3, 42);
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 3;
  copro.submit_word(get.encode());
  // Let exactly part of the 4-word response frame reach the driver.
  sys.simulator().run_until([&] { return sys.link().host_available() == 2; },
                            100000);
  EXPECT_FALSE(copro.poll().has_value());  // 2 words now buffered host-side

  sys.simulator().reset();
  sys.rtm().clear_state();

  // The driver must notice the reset and discard the torn frame; the next
  // exchange must parse cleanly.
  copro.write_reg(5, 77);
  EXPECT_EQ(copro.read_reg(5), 77u);
}

/// A watchdog timeout mid-call leaves an unknown amount of a frame
/// consumed; the driver clears its window so later exchanges stay aligned.
TEST(Coprocessor, WatchdogMidCallRealignsFraming) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  cfg.link_up = {1, 40};  // slow enough that a tight deadline splits a frame
  top::System sys(cfg);
  Coprocessor copro(sys);

  copro.write_reg(2, 9);
  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 2;
  p.emit(get);
  EXPECT_THROW(copro.call(p, /*max_cycles=*/60), SimError);

  // The remaining words of the aborted frame still arrive and mix with the
  // next response's frame; the CRC window must slide past them.
  const isa::Word v = copro.read_reg(2);
  EXPECT_EQ(v, 9u);
}

}  // namespace
}  // namespace fpgafu::host
