#include "host/reliable_transport.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "support/program_gen.hpp"
#include "util/error.hpp"

namespace fpgafu::host {
namespace {

rtm::RtmConfig small_rtm() {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  return rcfg;
}

/// The host-side prediction must agree with the reference model on the
/// response count of every instruction, across random programs including
/// deliberate faults.
TEST(Framing, PredictMatchesReferenceModelCounts) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);  // provides the attached-unit table
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 50, .include_errors = true});
    std::size_t predicted = 0;
    for (const InstructionGroup& g : split_groups(p)) {
      predicted += predict(g.inst, sys.rtm().config(), sys.rtm().table()).count;
    }
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(predicted, expected.size()) << "seed " << seed;
  }
}

TEST(ReliableTransport, CleanLinkIsAPassthrough) {
  // Fresh machine per program: the reference model starts from zeroed
  // registers.
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    top::System sys(cfg);
    Coprocessor copro(sys);
    ReliableTransport transport(copro);
    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 30});
    const auto got = transport.call(p);
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(transport.counters().get("transport.retries"), 0u);
    EXPECT_EQ(transport.counters().get("transport.timeouts"), 0u);
    EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
  }
}

TEST(ReliableTransport, RecoversFromUpstreamFaults) {
  std::uint64_t total_faults = 0;
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    msg::FaultConfig f;
    f.seed = seed;
    f.up.drop_ppm = 40'000;
    f.up.corrupt_ppm = 40'000;
    f.up.duplicate_ppm = 40'000;
    cfg.link_faults = f;
    top::System sys(cfg);
    Coprocessor copro(sys);
    TransportConfig tcfg;
    tcfg.response_timeout = 500;
    ReliableTransport transport(copro, tcfg);

    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 25});
    const auto got = transport.call(p);
    const auto expected = ReferenceModel(small_rtm()).run(p);
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
    total_faults += sys.faulty_link()->fault_counters().get("link.up_dropped") +
                    sys.faulty_link()->fault_counters().get("link.up_corrupted");
    total_retries += transport.counters().get("transport.retries");
  }
  // At these rates faults certainly occurred and were recovered from.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_retries, 0u);
}

TEST(ReliableTransport, GivesUpAfterMaxAttempts) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  msg::FaultConfig f;
  f.up.drop_ppm = 1'000'000;  // the FPGA's answers never get through
  cfg.link_faults = f;
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.response_timeout = 50;
  tcfg.max_attempts = 3;
  ReliableTransport transport(copro, tcfg);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  p.emit(get);
  EXPECT_THROW(transport.call(p), SimError);
  EXPECT_EQ(transport.counters().get("transport.retries"), 2u);
  EXPECT_EQ(transport.counters().get("transport.failures"), 1u);
}

/// Pins the backoff schedule formula:
///   min(response_timeout * backoff_multiplier^(attempts-1),
///       response_timeout * max_backoff_factor)
/// Regression: the cap used to be hardcoded as "seven doublings", which only
/// matched the documented 64x when backoff_multiplier == 2.
TEST(Backoff, FormulaIsCappedByConfiguredFactor) {
  TransportConfig c;
  c.response_timeout = 100;
  c.backoff_multiplier = 2;
  c.max_backoff_factor = 64;
  EXPECT_EQ(backoff_timeout(c, 1), 100u);
  EXPECT_EQ(backoff_timeout(c, 2), 200u);
  EXPECT_EQ(backoff_timeout(c, 7), 6'400u);
  EXPECT_EQ(backoff_timeout(c, 8), 6'400u);   // 2^7 = 128: capped at 64x
  EXPECT_EQ(backoff_timeout(c, 40), 6'400u);  // stays capped forever

  // A larger multiplier reaches the same cap, not multiplier^7.
  c.backoff_multiplier = 8;
  EXPECT_EQ(backoff_timeout(c, 2), 800u);
  EXPECT_EQ(backoff_timeout(c, 3), 6'400u);  // 8^2 = 64: exactly the cap
  EXPECT_EQ(backoff_timeout(c, 4), 6'400u);

  // A cap that is not a power of the multiplier still bounds the timeout.
  c.backoff_multiplier = 3;
  c.max_backoff_factor = 10;
  EXPECT_EQ(backoff_timeout(c, 3), 900u);
  EXPECT_EQ(backoff_timeout(c, 4), 1'000u);  // min(27, 10) * 100
}

/// Regression for the runaway-backoff bug: with backoff_multiplier = 4 the
/// old seven-multiplications cap armed deadlines of up to 4^7x the base
/// timeout, so a dead link blew the per-call watchdog *before* the retry
/// chain could reach max_attempts (retries stopped at 4 here and the clean
/// give-up accounting never ran).  With the configured cap and the
/// remaining-budget clamp, every attempt fits inside the budget:
/// 1000 + 4000 + 16000 + 64000 = 85000 < 200000.
TEST(Backoff, LargeMultiplierStillGivesUpInsideTheWatchdogBudget) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  msg::FaultConfig f;
  f.up.drop_ppm = 1'000'000;  // the FPGA's answers never get through
  cfg.link_faults = f;
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.response_timeout = 1000;
  tcfg.backoff_multiplier = 4;
  tcfg.max_attempts = 5;
  ReliableTransport transport(copro, tcfg);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  p.emit(get);
  EXPECT_THROW(transport.call(p, /*budget_cycles=*/200'000), SimError);
  EXPECT_EQ(transport.counters().get("transport.retries"), 4u);
  EXPECT_EQ(transport.counters().get("transport.timeouts"), 5u);
  EXPECT_EQ(transport.counters().get("transport.failures"), 1u);
}

/// Regression for the clamp: a base timeout larger than the whole watchdog
/// budget used to mean the transport never probed at all — the watchdog
/// fired with zero timeouts recorded.  Each armed deadline is now clamped
/// to the program's remaining budget, so the retry machinery still runs.
TEST(Backoff, ArmedDeadlineIsClampedToRemainingWatchdogBudget) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  msg::FaultConfig f;
  f.up.drop_ppm = 1'000'000;
  cfg.link_faults = f;
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.response_timeout = 50'000;  // 5x the whole budget below
  ReliableTransport transport(copro, tcfg);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  p.emit(get);
  EXPECT_THROW(transport.call(p, /*budget_cycles=*/10'000), SimError);
  EXPECT_GE(transport.counters().get("transport.timeouts"), 1u);
}

/// The pipelined window must produce exactly what sequential call()s would:
/// one System with several programs in flight, each completion bit-identical
/// to a second, identical System running the same programs one call at a
/// time (call() itself is pinned against the reference model elsewhere).
TEST(ReliableTransport, PipelinedWindowMatchesSequentialCalls) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.window = 4;
  ReliableTransport transport(copro, tcfg);

  top::System seq_sys(cfg);
  Coprocessor seq_copro(seq_sys);
  ReliableTransport seq_transport(seq_copro);

  std::vector<isa::Program> programs;
  std::vector<std::vector<msg::Response>> expected;
  for (std::uint64_t seed = 41; seed <= 48; ++seed) {
    programs.push_back(fpgafu::testing::random_program(small_rtm(), seed,
                                                       {.instructions = 20}));
    expected.push_back(seq_transport.call(programs.back()));
  }

  std::vector<ReliableTransport::ProgramId> ids;
  std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
  std::size_t next = 0;
  copro.pump().run_until(
      [&] {
        while (next < programs.size() && !transport.window_full()) {
          ids.push_back(transport.submit(programs[next++]));
        }
        transport.service();
        while (auto c = transport.poll_completed()) {
          got[c->id] = std::move(c->responses);
        }
        return got.size() == programs.size();
      },
      Deadline(sys.simulator(), 10'000'000), "pipelined window test");

  EXPECT_EQ(transport.in_flight(), 0u);
  for (std::size_t i = 0; i < programs.size(); ++i) {
    EXPECT_EQ(got[ids[i]], expected[i]) << "program " << i;
  }
}

/// The write barrier spans programs: a later program's read must observe an
/// earlier program's (response-less) write, even though both are in flight
/// at once — and a pure-write program still surfaces a (response-free)
/// completion.
TEST(ReliableTransport, WindowPreservesCrossProgramWriteOrder) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.window = 2;
  ReliableTransport transport(copro, tcfg);

  // PUT produces zero responses; GET reads the value back.
  const isa::Program writer = isa::Assembler::assemble("PUT r1, #42");
  const isa::Program reader = isa::Assembler::assemble("GET r1");

  const auto id_w = transport.submit(writer);
  const auto id_r = transport.submit(reader);
  std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
  copro.pump().run_until(
      [&] {
        transport.service();
        while (auto c = transport.poll_completed()) {
          got[c->id] = std::move(c->responses);
        }
        return got.size() == 2;
      },
      Deadline(sys.simulator(), 1'000'000), "write order test");

  EXPECT_TRUE(got[id_w].empty());  // writes produce no responses
  ASSERT_EQ(got[id_r].size(), 1u);
  EXPECT_EQ(got[id_r][0].payload, 42u);
}

/// Streamed responses arrive in program order, begin before the program
/// completes, and in total equal the completion's responses.
TEST(ReliableTransport, StreamedResponsesMatchTheCompletion) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  top::System sys(cfg);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);
  const isa::Program p = fpgafu::testing::random_program(small_rtm(), 55,
                                                         {.instructions = 25});
  const auto id = transport.submit(p, std::nullopt, /*stream=*/true);
  std::vector<msg::Response> streamed;
  std::optional<ReliableTransport::Completion> done;
  bool streamed_before_completion = false;
  copro.pump().run_until(
      [&] {
        transport.service();
        while (auto e = transport.poll_stream()) {
          EXPECT_EQ(e->id, id);
          streamed.push_back(e->response);
          if (transport.in_flight() > 0) {
            streamed_before_completion = true;
          }
        }
        if (auto c = transport.poll_completed()) {
          done = std::move(*c);
        }
        return done.has_value();
      },
      Deadline(sys.simulator(), 10'000'000), "stream test");

  EXPECT_EQ(streamed, done->responses);
  EXPECT_EQ(streamed, ReferenceModel(small_rtm()).run(p));
  EXPECT_TRUE(streamed_before_completion);
}

/// The windowed retry machinery (gap detection, burst re-reads, backoff)
/// still recovers to bit-exact results when several programs share the
/// lossy wire.
TEST(ReliableTransport, PipelinedWindowRecoversFromFaults) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  msg::FaultConfig f;
  f.seed = 97;
  f.up.drop_ppm = 40'000;
  f.up.corrupt_ppm = 40'000;
  f.up.duplicate_ppm = 40'000;
  cfg.link_faults = f;
  top::System sys(cfg);
  Coprocessor copro(sys);
  TransportConfig tcfg;
  tcfg.window = 4;
  tcfg.response_timeout = 500;
  tcfg.max_attempts = 25;
  ReliableTransport transport(copro, tcfg);

  // The oracle: the same programs run sequentially over a clean link.
  top::SystemConfig clean_cfg;
  clean_cfg.rtm = small_rtm();
  top::System seq_sys(clean_cfg);
  Coprocessor seq_copro(seq_sys);
  ReliableTransport seq_transport(seq_copro);

  std::vector<isa::Program> programs;
  std::vector<std::vector<msg::Response>> expected;
  for (std::uint64_t seed = 61; seed <= 72; ++seed) {
    programs.push_back(fpgafu::testing::random_program(small_rtm(), seed,
                                                       {.instructions = 15}));
    expected.push_back(seq_transport.call(programs.back()));
  }
  std::vector<ReliableTransport::ProgramId> ids;
  std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> got;
  std::size_t next = 0;
  copro.pump().run_until(
      [&] {
        while (next < programs.size() && !transport.window_full()) {
          ids.push_back(transport.submit(programs[next++]));
        }
        transport.service();
        while (auto c = transport.poll_completed()) {
          got[c->id] = std::move(c->responses);
        }
        return got.size() == programs.size();
      },
      Deadline(sys.simulator(), 100'000'000), "faulty window test");

  for (std::size_t i = 0; i < programs.size(); ++i) {
    EXPECT_EQ(got[ids[i]], expected[i]) << "program " << i;
  }
  EXPECT_EQ(transport.counters().get("transport.failures"), 0u);
  EXPECT_GT(transport.counters().get("transport.retries") +
                transport.counters().get("transport.dup_dropped") +
                transport.counters().get("transport.stale_dropped"),
            0u);
}

/// Regression for the frame-state reset hole: a system reset (or watchdog
/// abort) used to leave partially deframed link words in the driver, so the
/// next exchange reassembled responses shifted by the leftover words.
TEST(Coprocessor, ResetMidFrameDiscardsPartialFrame) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  cfg.link_up = {1, 16};  // response words trickle out 16 cycles apart
  top::System sys(cfg);
  Coprocessor copro(sys);

  copro.write_reg(3, 42);
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 3;
  copro.submit_word(get.encode());
  // Let exactly part of the 4-word response frame reach the driver.
  sys.simulator().run_until([&] { return sys.link().host_available() == 2; },
                            100000);
  EXPECT_FALSE(copro.poll().has_value());  // 2 words now buffered host-side

  sys.simulator().reset();
  sys.rtm().clear_state();

  // The driver must notice the reset and discard the torn frame; the next
  // exchange must parse cleanly.
  copro.write_reg(5, 77);
  EXPECT_EQ(copro.read_reg(5), 77u);
}

/// A watchdog timeout mid-call leaves an unknown amount of a frame
/// consumed; the driver clears its window so later exchanges stay aligned.
TEST(Coprocessor, WatchdogMidCallRealignsFraming) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  cfg.link_up = {1, 40};  // slow enough that a tight deadline splits a frame
  top::System sys(cfg);
  Coprocessor copro(sys);

  copro.write_reg(2, 9);
  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 2;
  p.emit(get);
  EXPECT_THROW(copro.call(p, /*max_cycles=*/60), SimError);

  // The remaining words of the aborted frame still arrive and mix with the
  // next response's frame; the CRC window must slide past them.
  const isa::Word v = copro.read_reg(2);
  EXPECT_EQ(v, 9u);
}

}  // namespace
}  // namespace fpgafu::host
