#include "host/farm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace fpgafu::host {
namespace {

/// A random program that writes every register it later reads, so its
/// response stream is independent of whatever earlier jobs left in the
/// shard's register file — the property that lets every farm job be
/// checked against a *fresh* ReferenceModel regardless of which shard it
/// lands on.
isa::Program selfcontained_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  for (int r = 1; r <= 4; ++r) {
    src += "PUT r" + std::to_string(r) + ", #" +
           std::to_string(rng.below(1u << 20)) + "\n";
  }
  src += "ADD r5, r1, r2\n";
  src += "SUB r6, r3, r4\n";
  src += "ADD r7, r5, r6\n";
  src += "GET r5\nGET r6\nGET r7\n";
  return isa::Assembler::assemble(src);
}

std::vector<msg::Response> reference_run(const isa::Program& p) {
  return ReferenceModel(top::SystemConfig{}.rtm).run(p);
}

TEST(Farm, InlineFarmMatchesPlainCoprocessorCallExactly) {
  FarmConfig fc;
  fc.shards = 0;  // inline: no threads, caller-owned shard
  Farm farm(fc);
  EXPECT_TRUE(farm.inline_mode());
  EXPECT_EQ(farm.shard_count(), 1u);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const isa::Program p = selfcontained_program(seed);
    const std::vector<msg::Response> got = farm.submit(p).get();

    top::System sys({});
    Coprocessor copro(sys);
    const std::vector<msg::Response> plain = copro.call(p);

    EXPECT_EQ(got, plain) << "seed " << seed;
    EXPECT_EQ(got, reference_run(p)) << "seed " << seed;
  }
}

TEST(Farm, SingleShardFarmMatchesPlainCoprocessorCallExactly) {
  FarmConfig fc;
  fc.shards = 1;
  Farm farm(fc);
  EXPECT_FALSE(farm.inline_mode());

  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const isa::Program p = selfcontained_program(seed);
    const std::vector<msg::Response> got = farm.submit(p).get();

    top::System sys({});
    Coprocessor copro(sys);
    EXPECT_EQ(got, copro.call(p)) << "seed " << seed;
    EXPECT_EQ(got, reference_run(p)) << "seed " << seed;
  }
}

TEST(Farm, MultiShardJobsAllMatchTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 4;
  Farm farm(fc);

  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  // Counter snapshots are published after the future resolves; shutdown()
  // joins the workers, after which the fleet view is exact.
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), futures.size());
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_EQ(totals.get("farm.shard_resets"), 0u);
}

TEST(Farm, StickySessionsKeepRegisterStateOnTheirShard) {
  FarmConfig fc;
  fc.shards = 2;
  Farm farm(fc);
  const Farm::SessionId a = farm.create_session();
  const Farm::SessionId b = farm.create_session();
  ASSERT_NE(farm.shard_of(a), farm.shard_of(b));

  // A writes r1 on its shard (a response-less job), then reads it back —
  // sticky affinity means the second job sees the first one's write.
  farm.submit(a, isa::Assembler::assemble("PUT r1, #42")).get();
  const auto got_a = farm.submit(a, isa::Assembler::assemble("GET r1")).get();
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_EQ(got_a[0].payload, 42u);

  // B's shard never saw the write: its register file still reads zero.
  const auto got_b = farm.submit(b, isa::Assembler::assemble("GET r1")).get();
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0].payload, 0u);

  // The mapping is stable: the same session always lands on one shard.
  EXPECT_EQ(farm.shard_of(a), farm.shard_of(a));
}

TEST(Farm, WatchdogTripFailsOnlyThatShardAndItRecovers) {
  FarmConfig fc;
  fc.shards = 2;
  Farm farm(fc);
  const Farm::SessionId sick = farm.create_session();   // shard 0
  const Farm::SessionId healthy = farm.create_session();  // shard 1
  ASSERT_NE(farm.shard_of(sick), farm.shard_of(healthy));

  // Shard 0: a chunky-but-correct job first (keeps the worker busy while
  // the rest of the queue forms), then a job whose 4-cycle budget cannot
  // possibly cover a GET round trip, then two more queued behind it.
  std::string chunky_src;
  for (int i = 0; i < 120; ++i) {
    chunky_src += "PUT r1, #" + std::to_string(i) + "\nGET r1\n";
  }
  const isa::Program chunky = isa::Assembler::assemble(chunky_src);
  const isa::Program poison = isa::Assembler::assemble("GET r2");
  const isa::Program follower = selfcontained_program(77);

  auto fut_chunky = farm.submit(sick, chunky);
  auto fut_poison = farm.submit(sick, poison, /*budget_cycles=*/4);
  auto fut_f1 = farm.submit(sick, follower);
  auto fut_f2 = farm.submit(sick, follower);

  // Shard 1 keeps serving normally throughout.
  std::vector<isa::Program> other_programs;
  std::vector<std::future<std::vector<msg::Response>>> other;
  for (std::uint64_t seed = 300; seed < 308; ++seed) {
    other_programs.push_back(selfcontained_program(seed));
    other.push_back(farm.submit(healthy, other_programs.back()));
  }

  EXPECT_EQ(fut_chunky.get(), reference_run(chunky));

  try {
    fut_poison.get();
    FAIL() << "poison job must fail";
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
    EXPECT_EQ(e.shard(), farm.shard_of(sick));
  }

  // Jobs queued behind the poison at trip time are failed with the same
  // typed error (their register state died with the recovery reset).  If
  // the worker happened to drain them after the reset instead, they must
  // still produce correct (self-contained) results — never hang.
  for (auto* fut : {&fut_f1, &fut_f2}) {
    try {
      EXPECT_EQ(fut->get(), reference_run(follower));
    } catch (const FarmError& e) {
      EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
      EXPECT_EQ(e.shard(), farm.shard_of(sick));
    }
  }

  // Fault isolation: every job on the healthy shard is untouched.
  for (std::size_t i = 0; i < other.size(); ++i) {
    EXPECT_EQ(other[i].get(), reference_run(other_programs[i]))
        << "healthy job " << i;
  }

  // The tripped shard was reset and keeps serving new submissions.
  const isa::Program after = selfcontained_program(999);
  EXPECT_EQ(farm.submit(sick, after).get(), reference_run(after));

  const sim::Counters totals = farm.counters();
  EXPECT_GE(totals.get("farm.shard_resets"), 1u);
  EXPECT_GE(totals.get("farm.jobs_failed"), 1u);
}

TEST(Farm, DestructionDrainsQueuedJobsCleanly) {
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  {
    FarmConfig fc;
    fc.shards = 2;
    Farm farm(fc);
    for (std::uint64_t seed = 500; seed < 524; ++seed) {
      programs.push_back(selfcontained_program(seed));
      futures.push_back(farm.submit(programs.back()));
    }
    // The farm is destroyed here with most jobs still queued: graceful
    // shutdown drains them rather than abandoning their futures.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
}

TEST(Farm, ShutdownRefusesNewSubmissions) {
  FarmConfig fc;
  fc.shards = 1;
  Farm farm(fc);
  farm.shutdown();
  EXPECT_THROW(farm.submit(selfcontained_program(1)), FarmError);
  try {
    farm.submit(selfcontained_program(1));
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kShutdown);
  }
  farm.shutdown();  // idempotent
}

TEST(Farm, InlineShutdownRefusesNewSubmissions) {
  FarmConfig fc;
  fc.shards = 0;
  Farm farm(fc);
  farm.submit(selfcontained_program(3)).get();
  farm.shutdown();
  EXPECT_THROW(farm.submit(selfcontained_program(4)), FarmError);
}

TEST(Farm, BackpressureQueueStillCompletesEverything) {
  // A 2-deep queue forces submit() to block (backpressure) instead of
  // growing without bound; every job still completes correctly.
  FarmConfig fc;
  fc.shards = 1;
  fc.queue_capacity = 2;
  Farm farm(fc);
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 700; seed < 716; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  // Counter snapshots are published after the future resolves; shutdown()
  // joins the worker, after which the fleet view is exact.
  farm.shutdown();
  EXPECT_EQ(farm.counters().get("farm.jobs_completed"), futures.size());
}

TEST(Farm, AggregatedCountersMergeEveryShard) {
  FarmConfig fc;
  fc.shards = 3;
  Farm farm(fc);
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 900; seed < 912; ++seed) {
    futures.push_back(farm.submit(selfcontained_program(seed)));
  }
  for (auto& f : futures) {
    f.get();
  }
  farm.shutdown();  // workers publish their final snapshots before joining
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), 12u);
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  // Per-shard transport and framing statistics participate in the merge
  // (zero on a clean link, but the names must be present fleet-wide —
  // all() materialises only counters that exist).
  const auto names = totals.all();
  EXPECT_EQ(names.count("transport.retries"), 1u);
  EXPECT_EQ(names.count("host.crc_resyncs"), 1u);
  EXPECT_EQ(totals.get("transport.retries"), 0u);
}

TEST(Farm, RejectsDegenerateConfiguration) {
  {
    FarmConfig fc;
    fc.queue_capacity = 0;
    EXPECT_THROW(Farm{fc}, SimError);
  }
  {
    FarmConfig fc;
    fc.system.message_buffer_depth = 0;  // surfaced on the caller's thread
    EXPECT_THROW(Farm{fc}, SimError);
  }
  {
    FarmConfig fc;
    fc.transport.window = 0;
    EXPECT_THROW(Farm{fc}, SimError);
  }
  {
    FarmConfig fc;
    fc.transport.max_backoff_factor = 0;
    EXPECT_THROW(Farm{fc}, SimError);
  }
  {
    FarmConfig fc;
    fc.stats_publish_interval = 0;
    EXPECT_THROW(Farm{fc}, SimError);
  }
}

/// A long-but-correct program that keeps a worker busy for a while, so the
/// tests below can deterministically form queues behind it.
isa::Program chunky_program(int pairs) {
  std::string src;
  for (int i = 0; i < pairs; ++i) {
    src += "PUT r1, #" + std::to_string(i) + "\nGET r1\n";
  }
  return isa::Assembler::assemble(src);
}

TEST(Farm, WindowedShardsMatchTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 8;  // pipelined: up to 8 jobs in flight per shard
  Farm farm(fc);

  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 1300; seed < 1332; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), futures.size());
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_EQ(totals.get("farm.shard_resets"), 0u);
}

TEST(Farm, AsyncCallbacksDeliverEveryResult) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 4;
  Farm farm(fc);

  constexpr std::size_t kJobs = 24;
  std::vector<isa::Program> programs;
  for (std::uint64_t seed = 1400; seed < 1400 + kJobs; ++seed) {
    programs.push_back(selfcontained_program(seed));
  }
  std::mutex m;
  std::condition_variable cv;
  std::size_t resolved = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    farm.submit_async(
        programs[i],
        [&, i](std::vector<msg::Response> rs, std::exception_ptr err) {
          std::lock_guard<std::mutex> lk(m);
          if (!err && rs == reference_run(programs[i])) {
            ++correct;
          }
          ++resolved;
          cv.notify_all();
        });
  }
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return resolved == kJobs; });
  EXPECT_EQ(correct, kJobs);
}

TEST(Farm, StreamingDeliversResponsesInProgramOrder) {
  FarmConfig fc;
  fc.shards = 1;
  fc.transport.window = 2;
  Farm farm(fc);

  const isa::Program p = selfcontained_program(5);
  std::mutex m;
  std::condition_variable cv;
  std::vector<msg::Response> streamed;
  bool finished = false;
  std::exception_ptr failure;
  farm.submit_stream(
      p,
      [&](const msg::Response& r) {
        std::lock_guard<std::mutex> lk(m);
        streamed.push_back(r);
      },
      [&](std::exception_ptr err) {
        std::lock_guard<std::mutex> lk(m);
        failure = err;
        finished = true;
        cv.notify_all();
      });
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return finished; });
  EXPECT_EQ(failure, nullptr);
  EXPECT_EQ(streamed, reference_run(p));
}

/// Bugfix regression (stats publishing): snapshots used to be copied under
/// the shard mutex after *every* job.  They are now amortised to one per
/// stats_publish_interval jobs (plus idle/final flushes), while the job
/// totals stay exact after shutdown.
TEST(Farm, StatsPublishingIsAmortisedAcrossJobs) {
  FarmConfig fc;
  fc.shards = 1;
  fc.stats_publish_interval = 16;
  fc.queue_capacity = 64;
  Farm farm(fc);
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 1500; seed < 1564; ++seed) {
    futures.push_back(farm.submit(selfcontained_program(seed)));
  }
  for (auto& f : futures) {
    f.get();
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), 64u);
  const std::uint64_t publishes = totals.get("farm.stats_publishes");
  EXPECT_GE(publishes, 1u);
  // 64 jobs / interval 16 = 4 interval publishes, plus a handful of
  // idle/final flushes — far fewer than the old one-per-job.
  EXPECT_LE(publishes, 16u);
}

/// Bugfix regression (admission unification): the inline path used to
/// bypass queue_capacity and session accounting entirely.  It now refuses
/// with the same typed errors as the threaded path — and, having no worker
/// to wait for, sheds instead of blocking.
TEST(Farm, InlineAdmissionEnforcesSessionBoundsAndCapacity) {
  FarmConfig fc;
  fc.shards = 0;  // inline
  fc.max_inflight_per_session = 1;
  fc.queue_capacity = 1;
  Farm farm(fc);
  const Farm::SessionId s = farm.create_session();
  const isa::Program p = selfcontained_program(8);

  bool session_overload = false;
  bool capacity_overload = false;
  std::size_t nested_runs = 0;
  farm.submit_async(s, p, [&](std::vector<msg::Response> rs,
                              std::exception_ptr err) {
    EXPECT_EQ(err, nullptr);
    EXPECT_EQ(rs, reference_run(p));
    // The outer job is still unresolved while its callback runs, so the
    // session is at its bound of 1.
    EXPECT_EQ(farm.in_flight(s), 1u);
    try {
      farm.submit_async(s, p, [](std::vector<msg::Response>,
                                 std::exception_ptr) {});
    } catch (const FarmError& e) {
      session_overload = e.kind() == FarmError::Kind::kOverload;
    }
    // Session-less jobs dodge the session bound; the 1-deep queue then
    // sheds the second one.
    try {
      farm.submit_async(p, [&](std::vector<msg::Response>,
                               std::exception_ptr) { ++nested_runs; });
      farm.submit_async(p, [&](std::vector<msg::Response>,
                               std::exception_ptr) { ++nested_runs; });
    } catch (const FarmError& e) {
      capacity_overload = e.kind() == FarmError::Kind::kOverload;
    }
  });
  EXPECT_TRUE(session_overload);
  EXPECT_TRUE(capacity_overload);
  EXPECT_EQ(nested_runs, 1u);  // the queued reentrant job did run
  EXPECT_EQ(farm.in_flight(s), 0u);
  EXPECT_EQ(farm.counters().get("farm.jobs_shed"), 2u);
}

TEST(Farm, SessionInFlightBoundShedsWithTypedOverload) {
  FarmConfig fc;
  fc.shards = 1;
  fc.max_inflight_per_session = 2;
  Farm farm(fc);
  const Farm::SessionId s = farm.create_session();

  // The chunky job occupies the worker (1 unresolved), a second waits in
  // the queue (2 unresolved = the bound), so a third is refused.
  const isa::Program chunky = chunky_program(1000);
  const isa::Program small = selfcontained_program(9);
  auto f1 = farm.submit(s, chunky);
  auto f2 = farm.submit(s, small);
  try {
    farm.submit(s, small);
    FAIL() << "third submission must be refused at the session bound";
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kOverload);
  }
  EXPECT_EQ(f1.get(), reference_run(chunky));
  EXPECT_EQ(f2.get(), reference_run(small));
  // Both resolved: the bound has space again.
  EXPECT_EQ(farm.submit(s, small).get(), reference_run(small));
  EXPECT_GE(farm.counters().get("farm.jobs_shed"), 1u);
}

/// Satellite test: shutting down while a producer is blocked on
/// backpressure must wake it with kShutdown (or let its job through if the
/// race resolves first) — never deadlock — and every queued future still
/// resolves.
TEST(Farm, ShutdownWakesProducersBlockedOnBackpressure) {
  FarmConfig fc;
  fc.shards = 1;
  fc.queue_capacity = 1;
  Farm farm(fc);
  const isa::Program chunky = chunky_program(1000);

  auto f1 = farm.submit(chunky);  // worker takes it
  auto f2 = farm.submit(chunky);  // fills the 1-deep queue
  std::promise<void> started;
  std::atomic<bool> refused_with_shutdown{false};
  std::atomic<bool> producer_resolved{false};
  std::thread producer([&] {
    started.set_value();
    try {
      auto f3 = farm.submit(chunky);  // blocks: the queue is full
      f3.get();
      producer_resolved.store(true);
    } catch (const FarmError& e) {
      refused_with_shutdown.store(e.kind() == FarmError::Kind::kShutdown);
    }
  });
  started.get_future().wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  farm.shutdown();  // must wake the blocked producer
  producer.join();  // and never deadlock
  EXPECT_TRUE(refused_with_shutdown.load() || producer_resolved.load());
  // No broken promises: the accepted jobs drain normally.
  EXPECT_EQ(f1.get(), reference_run(chunky));
  EXPECT_EQ(f2.get(), reference_run(chunky));
}

/// Satellite test: a fault with a full window in flight fails that whole
/// window (and the queue behind it) with kShardFault, while the other
/// shard's concurrent in-flight work is undisturbed and the sick shard
/// recovers.
TEST(Farm, ShardFaultDuringWindowFailsOnlyThatWindow) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 4;
  Farm farm(fc);
  const Farm::SessionId sick = farm.create_session();
  const Farm::SessionId healthy = farm.create_session();
  ASSERT_NE(farm.shard_of(sick), farm.shard_of(healthy));

  const isa::Program chunky = chunky_program(120);
  const isa::Program poison = isa::Assembler::assemble("GET r2");
  const isa::Program follower = selfcontained_program(77);

  // One window's worth lands together: chunky + poison + two followers.
  auto fut_chunky = farm.submit(sick, chunky);
  auto fut_poison = farm.submit(sick, poison, /*budget_cycles=*/4);
  auto fut_f1 = farm.submit(sick, follower);
  auto fut_f2 = farm.submit(sick, follower);

  std::vector<isa::Program> other_programs;
  std::vector<std::future<std::vector<msg::Response>>> other;
  for (std::uint64_t seed = 1600; seed < 1608; ++seed) {
    other_programs.push_back(selfcontained_program(seed));
    other.push_back(farm.submit(healthy, other_programs.back()));
  }

  try {
    fut_poison.get();
    FAIL() << "poison job must fail";
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
    EXPECT_EQ(e.shard(), farm.shard_of(sick));
  }
  // Window-mates and queued jobs at trip time die with the same typed
  // error; any that happened to run before (or were re-queued after) the
  // reset must produce correct results — never hang.
  for (auto* fut : {&fut_chunky, &fut_f1, &fut_f2}) {
    try {
      const auto rs = fut->get();
      EXPECT_TRUE(rs == reference_run(chunky) || rs == reference_run(follower));
    } catch (const FarmError& e) {
      EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
      EXPECT_EQ(e.shard(), farm.shard_of(sick));
    }
  }
  // Fault isolation: the healthy shard's windowed work is all intact.
  for (std::size_t i = 0; i < other.size(); ++i) {
    EXPECT_EQ(other[i].get(), reference_run(other_programs[i]))
        << "healthy job " << i;
  }
  // The sick shard was reset and keeps serving.
  const isa::Program after = selfcontained_program(999);
  EXPECT_EQ(farm.submit(sick, after).get(), reference_run(after));
  EXPECT_GE(farm.counters().get("farm.shard_resets"), 1u);
}

/// Queued jobs are dequeued round-robin across sessions (FIFO within one),
/// so a small tenant's jobs complete interleaved with a flooding tenant's
/// burst instead of behind all of it.
TEST(Farm, RoundRobinDequeueKeepsTenantsFair) {
  FarmConfig fc;
  fc.shards = 1;  // both sessions share the one shard
  Farm farm(fc);
  const Farm::SessionId a = farm.create_session();
  const Farm::SessionId b = farm.create_session();

  // Occupy the worker so the queue forms behind it.
  auto stall = farm.submit(chunky_program(300));

  std::mutex m;
  std::condition_variable cv;
  std::vector<char> order;
  auto record = [&](char tag) {
    return [&, tag](std::vector<msg::Response>, std::exception_ptr) {
      std::lock_guard<std::mutex> lk(m);
      order.push_back(tag);
      cv.notify_all();
    };
  };
  for (std::uint64_t seed = 1700; seed < 1706; ++seed) {
    farm.submit_async(a, selfcontained_program(seed), record('a'));
  }
  farm.submit_async(b, selfcontained_program(1710), record('b'));
  farm.submit_async(b, selfcontained_program(1711), record('b'));

  stall.get();
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return order.size() == 8; });
  // Round-robin: b's second job lands within the first ~4 completions.
  // Pure FIFO would have put it dead last (index 7).
  std::size_t last_b = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 'b') {
      last_b = i;
    }
  }
  EXPECT_LE(last_b, 4u) << std::string(order.begin(), order.end());
}

/// Iteration count for the windowed farm soak; CI exports
/// FPGAFU_FARM_SOAK_JOBS to scale it.
std::size_t farm_soak_jobs() {
  if (const char* env = std::getenv("FPGAFU_FARM_SOAK_JOBS")) {
    const long n = std::atol(env);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 24;
}

/// Acceptance soak: windowed shards over a link that drops, corrupts and
/// duplicates 5% of upstream words each must stay bit-identical to the
/// reference model.  Runs inside test_farm so the TSan CI job exercises it
/// under every settle kernel (FPGAFU_KERNEL=levelized included).
TEST(Farm, WindowedFaultSoakIsBitIdenticalToTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 8;
  fc.transport.response_timeout = 500;
  fc.transport.max_attempts = 25;
  msg::FaultConfig f;
  f.seed = 0xfa54;
  f.up.drop_ppm = 50'000;
  f.up.corrupt_ppm = 50'000;
  f.up.duplicate_ppm = 50'000;
  f.up.jitter_max = 3;
  f.down.jitter_max = 2;
  fc.system.link_faults = f;
  Farm farm(fc);

  const std::size_t jobs = farm_soak_jobs();
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 2000; seed < 2000 + jobs; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), jobs);
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  // The soak must actually have exercised the retry machinery.
  EXPECT_GT(totals.get("transport.retries"), 0u);
}

// -- Coalesced submission frames ---------------------------------------------

TEST(Farm, CoalescedShardsMatchTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 4;
  fc.coalesce_max_programs = 8;
  fc.coalesce_flush_cycles = 64;
  Farm farm(fc);
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 2100; seed < 2124; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), programs.size());
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
}

TEST(Farm, CoalescedPartialFrameFlushesOnTimerNotLivelock) {
  // One lonely job with a large member cap: the worker holds the partial
  // frame open for coalesce_flush_cycles, then must flush it — the future
  // resolves instead of the shard spinning on an empty window forever.
  FarmConfig fc;
  fc.shards = 1;
  fc.coalesce_max_programs = 16;
  fc.coalesce_flush_cycles = 256;
  Farm farm(fc);
  const isa::Program p = selfcontained_program(3001);
  EXPECT_EQ(farm.submit(p).get(), reference_run(p));
  // And the shard stays healthy for the next lonely job.
  const isa::Program q = selfcontained_program(3002);
  EXPECT_EQ(farm.submit(q).get(), reference_run(q));
  farm.shutdown();
  EXPECT_EQ(farm.counters().get("farm.jobs_completed"), 2u);
}

TEST(Farm, CoalescedInlineFarmDrainsReentrantSubmitsAsOneFrame) {
  FarmConfig fc;
  fc.shards = 0;  // inline
  fc.coalesce_max_programs = 4;
  Farm farm(fc);
  const isa::Program a = selfcontained_program(3101);
  const isa::Program b = selfcontained_program(3102);
  const isa::Program c = selfcontained_program(3103);
  std::vector<std::vector<msg::Response>> got(3);
  // b and c are submitted from inside a's callback, so the outer drain
  // frame pops them together — the inline coalescing path proper.
  std::future<std::vector<msg::Response>> fb, fc_;
  farm.submit_async(a, [&](std::vector<msg::Response> r, std::exception_ptr) {
    got[0] = std::move(r);
    fb = farm.submit(b);
    fc_ = farm.submit(c);
  });
  got[1] = fb.get();
  got[2] = fc_.get();
  EXPECT_EQ(got[0], reference_run(a));
  EXPECT_EQ(got[1], reference_run(b));
  EXPECT_EQ(got[2], reference_run(c));
  farm.shutdown();
  EXPECT_EQ(farm.counters().get("farm.jobs_completed"), 3u);
}

/// The coalesced counterpart of the windowed fault soak: members of one
/// frame chain through the SAME registers (selfcontained_program reuses
/// r1..r7), so bit-identical results prove the per-register write barrier
/// holds inside frames while the retry machinery hammers the wire.  Runs
/// inside test_farm so the TSan CI job exercises it under every settle
/// kernel.
TEST(Farm, CoalescedFaultSoakIsBitIdenticalToTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 2;
  fc.transport.window = 4;
  fc.transport.response_timeout = 500;
  fc.transport.max_attempts = 25;
  fc.coalesce_max_programs = 8;
  fc.coalesce_flush_cycles = 64;
  msg::FaultConfig f;
  f.seed = 0xc0a1;
  f.up.drop_ppm = 50'000;
  f.up.corrupt_ppm = 50'000;
  f.up.duplicate_ppm = 50'000;
  f.up.jitter_max = 3;
  f.down.jitter_max = 2;
  fc.system.link_faults = f;
  Farm farm(fc);

  const std::size_t jobs = farm_soak_jobs();
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 2200; seed < 2200 + jobs; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), jobs);
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_GT(totals.get("transport.retries"), 0u);
}

}  // namespace
}  // namespace fpgafu::host
