#include "host/farm.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace fpgafu::host {
namespace {

/// A random program that writes every register it later reads, so its
/// response stream is independent of whatever earlier jobs left in the
/// shard's register file — the property that lets every farm job be
/// checked against a *fresh* ReferenceModel regardless of which shard it
/// lands on.
isa::Program selfcontained_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  for (int r = 1; r <= 4; ++r) {
    src += "PUT r" + std::to_string(r) + ", #" +
           std::to_string(rng.below(1u << 20)) + "\n";
  }
  src += "ADD r5, r1, r2\n";
  src += "SUB r6, r3, r4\n";
  src += "ADD r7, r5, r6\n";
  src += "GET r5\nGET r6\nGET r7\n";
  return isa::Assembler::assemble(src);
}

std::vector<msg::Response> reference_run(const isa::Program& p) {
  return ReferenceModel(top::SystemConfig{}.rtm).run(p);
}

TEST(Farm, InlineFarmMatchesPlainCoprocessorCallExactly) {
  FarmConfig fc;
  fc.shards = 0;  // inline: no threads, caller-owned shard
  Farm farm(fc);
  EXPECT_TRUE(farm.inline_mode());
  EXPECT_EQ(farm.shard_count(), 1u);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const isa::Program p = selfcontained_program(seed);
    const std::vector<msg::Response> got = farm.submit(p).get();

    top::System sys({});
    Coprocessor copro(sys);
    const std::vector<msg::Response> plain = copro.call(p);

    EXPECT_EQ(got, plain) << "seed " << seed;
    EXPECT_EQ(got, reference_run(p)) << "seed " << seed;
  }
}

TEST(Farm, SingleShardFarmMatchesPlainCoprocessorCallExactly) {
  FarmConfig fc;
  fc.shards = 1;
  Farm farm(fc);
  EXPECT_FALSE(farm.inline_mode());

  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const isa::Program p = selfcontained_program(seed);
    const std::vector<msg::Response> got = farm.submit(p).get();

    top::System sys({});
    Coprocessor copro(sys);
    EXPECT_EQ(got, copro.call(p)) << "seed " << seed;
    EXPECT_EQ(got, reference_run(p)) << "seed " << seed;
  }
}

TEST(Farm, MultiShardJobsAllMatchTheReferenceModel) {
  FarmConfig fc;
  fc.shards = 4;
  Farm farm(fc);

  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  // Counter snapshots are published after the future resolves; shutdown()
  // joins the workers, after which the fleet view is exact.
  farm.shutdown();
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), futures.size());
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  EXPECT_EQ(totals.get("farm.shard_resets"), 0u);
}

TEST(Farm, StickySessionsKeepRegisterStateOnTheirShard) {
  FarmConfig fc;
  fc.shards = 2;
  Farm farm(fc);
  const Farm::SessionId a = farm.create_session();
  const Farm::SessionId b = farm.create_session();
  ASSERT_NE(farm.shard_of(a), farm.shard_of(b));

  // A writes r1 on its shard (a response-less job), then reads it back —
  // sticky affinity means the second job sees the first one's write.
  farm.submit(a, isa::Assembler::assemble("PUT r1, #42")).get();
  const auto got_a = farm.submit(a, isa::Assembler::assemble("GET r1")).get();
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_EQ(got_a[0].payload, 42u);

  // B's shard never saw the write: its register file still reads zero.
  const auto got_b = farm.submit(b, isa::Assembler::assemble("GET r1")).get();
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0].payload, 0u);

  // The mapping is stable: the same session always lands on one shard.
  EXPECT_EQ(farm.shard_of(a), farm.shard_of(a));
}

TEST(Farm, WatchdogTripFailsOnlyThatShardAndItRecovers) {
  FarmConfig fc;
  fc.shards = 2;
  Farm farm(fc);
  const Farm::SessionId sick = farm.create_session();   // shard 0
  const Farm::SessionId healthy = farm.create_session();  // shard 1
  ASSERT_NE(farm.shard_of(sick), farm.shard_of(healthy));

  // Shard 0: a chunky-but-correct job first (keeps the worker busy while
  // the rest of the queue forms), then a job whose 4-cycle budget cannot
  // possibly cover a GET round trip, then two more queued behind it.
  std::string chunky_src;
  for (int i = 0; i < 120; ++i) {
    chunky_src += "PUT r1, #" + std::to_string(i) + "\nGET r1\n";
  }
  const isa::Program chunky = isa::Assembler::assemble(chunky_src);
  const isa::Program poison = isa::Assembler::assemble("GET r2");
  const isa::Program follower = selfcontained_program(77);

  auto fut_chunky = farm.submit(sick, chunky);
  auto fut_poison = farm.submit(sick, poison, /*budget_cycles=*/4);
  auto fut_f1 = farm.submit(sick, follower);
  auto fut_f2 = farm.submit(sick, follower);

  // Shard 1 keeps serving normally throughout.
  std::vector<isa::Program> other_programs;
  std::vector<std::future<std::vector<msg::Response>>> other;
  for (std::uint64_t seed = 300; seed < 308; ++seed) {
    other_programs.push_back(selfcontained_program(seed));
    other.push_back(farm.submit(healthy, other_programs.back()));
  }

  EXPECT_EQ(fut_chunky.get(), reference_run(chunky));

  try {
    fut_poison.get();
    FAIL() << "poison job must fail";
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
    EXPECT_EQ(e.shard(), farm.shard_of(sick));
  }

  // Jobs queued behind the poison at trip time are failed with the same
  // typed error (their register state died with the recovery reset).  If
  // the worker happened to drain them after the reset instead, they must
  // still produce correct (self-contained) results — never hang.
  for (auto* fut : {&fut_f1, &fut_f2}) {
    try {
      EXPECT_EQ(fut->get(), reference_run(follower));
    } catch (const FarmError& e) {
      EXPECT_EQ(e.kind(), FarmError::Kind::kShardFault);
      EXPECT_EQ(e.shard(), farm.shard_of(sick));
    }
  }

  // Fault isolation: every job on the healthy shard is untouched.
  for (std::size_t i = 0; i < other.size(); ++i) {
    EXPECT_EQ(other[i].get(), reference_run(other_programs[i]))
        << "healthy job " << i;
  }

  // The tripped shard was reset and keeps serving new submissions.
  const isa::Program after = selfcontained_program(999);
  EXPECT_EQ(farm.submit(sick, after).get(), reference_run(after));

  const sim::Counters totals = farm.counters();
  EXPECT_GE(totals.get("farm.shard_resets"), 1u);
  EXPECT_GE(totals.get("farm.jobs_failed"), 1u);
}

TEST(Farm, DestructionDrainsQueuedJobsCleanly) {
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  {
    FarmConfig fc;
    fc.shards = 2;
    Farm farm(fc);
    for (std::uint64_t seed = 500; seed < 524; ++seed) {
      programs.push_back(selfcontained_program(seed));
      futures.push_back(farm.submit(programs.back()));
    }
    // The farm is destroyed here with most jobs still queued: graceful
    // shutdown drains them rather than abandoning their futures.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
}

TEST(Farm, ShutdownRefusesNewSubmissions) {
  FarmConfig fc;
  fc.shards = 1;
  Farm farm(fc);
  farm.shutdown();
  EXPECT_THROW(farm.submit(selfcontained_program(1)), FarmError);
  try {
    farm.submit(selfcontained_program(1));
  } catch (const FarmError& e) {
    EXPECT_EQ(e.kind(), FarmError::Kind::kShutdown);
  }
  farm.shutdown();  // idempotent
}

TEST(Farm, InlineShutdownRefusesNewSubmissions) {
  FarmConfig fc;
  fc.shards = 0;
  Farm farm(fc);
  farm.submit(selfcontained_program(3)).get();
  farm.shutdown();
  EXPECT_THROW(farm.submit(selfcontained_program(4)), FarmError);
}

TEST(Farm, BackpressureQueueStillCompletesEverything) {
  // A 2-deep queue forces submit() to block (backpressure) instead of
  // growing without bound; every job still completes correctly.
  FarmConfig fc;
  fc.shards = 1;
  fc.queue_capacity = 2;
  Farm farm(fc);
  std::vector<isa::Program> programs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 700; seed < 716; ++seed) {
    programs.push_back(selfcontained_program(seed));
    futures.push_back(farm.submit(programs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference_run(programs[i])) << "job " << i;
  }
  // Counter snapshots are published after the future resolves; shutdown()
  // joins the worker, after which the fleet view is exact.
  farm.shutdown();
  EXPECT_EQ(farm.counters().get("farm.jobs_completed"), futures.size());
}

TEST(Farm, AggregatedCountersMergeEveryShard) {
  FarmConfig fc;
  fc.shards = 3;
  Farm farm(fc);
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint64_t seed = 900; seed < 912; ++seed) {
    futures.push_back(farm.submit(selfcontained_program(seed)));
  }
  for (auto& f : futures) {
    f.get();
  }
  farm.shutdown();  // workers publish their final snapshots before joining
  const sim::Counters totals = farm.counters();
  EXPECT_EQ(totals.get("farm.jobs_completed"), 12u);
  EXPECT_EQ(totals.get("farm.jobs_failed"), 0u);
  // Per-shard transport and framing statistics participate in the merge
  // (zero on a clean link, but the names must be present fleet-wide —
  // all() materialises only counters that exist).
  const auto names = totals.all();
  EXPECT_EQ(names.count("transport.retries"), 1u);
  EXPECT_EQ(names.count("host.crc_resyncs"), 1u);
  EXPECT_EQ(totals.get("transport.retries"), 0u);
}

TEST(Farm, RejectsDegenerateConfiguration) {
  {
    FarmConfig fc;
    fc.queue_capacity = 0;
    EXPECT_THROW(Farm{fc}, SimError);
  }
  {
    FarmConfig fc;
    fc.system.message_buffer_depth = 0;  // surfaced on the caller's thread
    EXPECT_THROW(Farm{fc}, SimError);
  }
}

}  // namespace
}  // namespace fpgafu::host
