#include "host/coprocessor.hpp"

#include <gtest/gtest.h>

#include "fu/cam_unit.hpp"
#include "fu/prng_unit.hpp"
#include "isa/assembler.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace fpgafu::host {
namespace {

TEST(Coprocessor, ScalarRegisterHelpers) {
  top::System sys({});
  Coprocessor copro(sys);
  copro.write_reg(3, 0xabcdef);
  copro.write_reg(4, 0x123456);
  EXPECT_EQ(copro.read_reg(3), 0xabcdefu);
  EXPECT_EQ(copro.read_reg(4), 0x123456u);
}

TEST(Coprocessor, BurstRegisterHelpers) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 64;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  Coprocessor copro(sys);
  Xoshiro256 rng(14);
  std::vector<isa::Word> values(20);
  for (auto& v : values) {
    v = rng.below(1u << 31);
  }
  copro.write_regs(10, values);
  EXPECT_EQ(copro.read_regs(10, 20), values);
  // Mixed access: scalar read of a burst-written register.
  EXPECT_EQ(copro.read_reg(15), values[5]);
}

TEST(Coprocessor, ReadRegOfBadRegisterThrows) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 8;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  Coprocessor copro(sys);
  // The error response does not match the expected data record.
  EXPECT_THROW(copro.read_reg(200), SimError);
}

TEST(Coprocessor, AsyncSubmitPollOverlap) {
  // submit() is fire-and-forget; poll() drains responses as the simulation
  // advances — the host can overlap issue with completion.
  top::System sys({});
  Coprocessor copro(sys);
  isa::Program p;
  for (int i = 0; i < 10; ++i) {
    p.emit_put(1, static_cast<isa::Word>(100 + i));
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = 1;
    p.emit(get);
  }
  copro.submit(p);
  std::vector<isa::Word> got;
  while (got.size() < 10) {
    sys.simulator().step();
    while (auto r = copro.poll()) {
      got.push_back(r->payload);
    }
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              static_cast<isa::Word>(100 + i));
  }
  EXPECT_EQ(copro.responses_received(), 10u);
}

TEST(Coprocessor, StatefulLibraryUnitsThroughTheSystem) {
  // The paper's three named stateful families, attached side by side and
  // driven purely through instructions.
  top::System sys({});
  fu::PrngUnit prng(sys.simulator(), "prng", 32);
  fu::CamUnit cam(sys.simulator(), "cam", 16);
  sys.attach(isa::fc::kUserBase + 3, prng);
  sys.attach(isa::fc::kUserBase + 4, cam);
  Coprocessor copro(sys);

  auto unit_op = [&](isa::FunctionCode f, isa::VarietyCode v, isa::RegNum src1,
                     isa::RegNum src2, isa::RegNum dst) {
    isa::Instruction inst;
    inst.function = f;
    inst.variety = v;
    inst.src1 = src1;
    inst.src2 = src2;
    inst.dst1 = dst;
    return inst;
  };

  // Seed the PRNG, draw a value into r2, store it in the CAM under key 7,
  // and look it up again.
  isa::Program p;
  p.emit_put(1, 42);  // seed / key material
  p.emit(unit_op(isa::fc::kUserBase + 3, fu::PrngUnit::kSeed, 1, 0, 2));
  p.emit(unit_op(isa::fc::kUserBase + 3, fu::PrngUnit::kNext, 0, 0, 2));
  p.emit_put(3, 7);  // CAM key
  p.emit(unit_op(isa::fc::kUserBase + 4, fu::CamUnit::kInsert, 3, 2, 4));
  p.emit(unit_op(isa::fc::kUserBase + 4, fu::CamUnit::kLookup, 3, 0, 5));
  isa::Instruction get2, get5;
  get2.function = get5.function = isa::fc::kRtm;
  get2.variety = get5.variety =
      static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get2.src1 = 2;
  get5.src1 = 5;
  p.emit(get2);
  p.emit(get5);
  const auto responses = copro.call(p);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].payload, 0u);                 // the drawn value
  EXPECT_EQ(responses[1].payload, responses[0].payload);  // CAM returned it
}

}  // namespace
}  // namespace fpgafu::host
