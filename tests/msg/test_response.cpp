#include "msg/response.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fpgafu::msg {
namespace {

TEST(Response, LinkWordRoundTrip) {
  Xoshiro256 rng(21);
  const Response::Type types[] = {Response::Type::kData, Response::Type::kFlags,
                                  Response::Type::kSyncDone,
                                  Response::Type::kError};
  for (int i = 0; i < 5000; ++i) {
    Response r;
    r.type = types[rng.below(4)];
    r.code = static_cast<std::uint8_t>(rng.below(256));
    r.seq = static_cast<std::uint16_t>(rng.below(65536));
    r.payload = rng.next();
    EXPECT_EQ(Response::from_link_words(r.to_link_words()), r);
  }
}

TEST(Response, HeaderLayout) {
  Response r;
  r.type = Response::Type::kError;
  r.code = 0x12;
  r.seq = 0x3456;
  r.payload = 0xaabbccdd00112233ULL;
  const auto words = r.to_link_words();
  EXPECT_EQ(words[0], 0x7f123456u);
  EXPECT_EQ(words[1], 0xaabbccddu);
  EXPECT_EQ(words[2], 0x00112233u);
}

TEST(Response, ToStringNamesType) {
  Response r;
  r.type = Response::Type::kFlags;
  r.seq = 7;
  const std::string s = to_string(r);
  EXPECT_NE(s.find("FLAGS"), std::string::npos);
  EXPECT_NE(s.find("seq=7"), std::string::npos);
}

}  // namespace
}  // namespace fpgafu::msg
