#include "msg/response.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fpgafu::msg {
namespace {

TEST(Response, LinkWordRoundTrip) {
  Xoshiro256 rng(21);
  const Response::Type types[] = {Response::Type::kData, Response::Type::kFlags,
                                  Response::Type::kSyncDone,
                                  Response::Type::kError};
  for (int i = 0; i < 5000; ++i) {
    Response r;
    r.type = types[rng.below(4)];
    r.code = static_cast<std::uint8_t>(rng.below(256));
    r.seq = static_cast<std::uint16_t>(rng.below(65536));
    r.burst = static_cast<std::uint16_t>(rng.below(256));
    r.payload = rng.next();
    const auto words = r.to_link_words();
    EXPECT_TRUE(Response::frame_ok(words));
    EXPECT_EQ(Response::from_link_words(words), r);
  }
}

TEST(Response, HeaderLayout) {
  Response r;
  r.type = Response::Type::kError;
  r.code = 0x12;
  r.seq = 0x3456;
  r.burst = 0x789a;
  r.payload = 0xaabbccdd00112233ULL;
  const auto words = r.to_link_words();
  EXPECT_EQ(words[0], 0x7f123456u);
  EXPECT_EQ(words[1], 0xaabbccddu);
  EXPECT_EQ(words[2], 0x00112233u);
  // Check word: burst index in the high half, CRC-16 in the low half.
  EXPECT_EQ(words[3] >> 16, 0x789au);
  EXPECT_EQ(words[3],
            Response::check_word(words[0], words[1], words[2], 0x789a));
}

TEST(Response, SingleBitCorruptionFailsTheCheck) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 2000; ++i) {
    Response r;
    r.type = Response::Type::kData;
    r.seq = static_cast<std::uint16_t>(rng.below(65536));
    r.burst = static_cast<std::uint16_t>(rng.below(16));
    r.payload = rng.next();
    auto words = r.to_link_words();
    words[rng.below(4)] ^= LinkWord{1} << rng.below(32);
    EXPECT_FALSE(Response::frame_ok(words));
  }
}

TEST(Response, TornFrameFailsTheCheck) {
  // A dropped link word shifts the window by one: the deframer sees the
  // tail of one frame followed by the head of the next.  That misaligned
  // window must not check out.
  Response a, b;
  a.type = Response::Type::kData;
  a.seq = 1;
  a.payload = 0x1111111122222222ULL;
  b.type = Response::Type::kData;
  b.seq = 2;
  b.payload = 0x3333333344444444ULL;
  const auto wa = a.to_link_words();
  const auto wb = b.to_link_words();
  // Window starting at wa[1] (wa[0] was dropped in flight).
  const std::array<LinkWord, 4> torn{wa[1], wa[2], wa[3], wb[0]};
  EXPECT_FALSE(Response::frame_ok(torn));
}

TEST(Response, ToStringNamesType) {
  Response r;
  r.type = Response::Type::kFlags;
  r.seq = 7;
  const std::string s = to_string(r);
  EXPECT_NE(s.find("FLAGS"), std::string::npos);
  EXPECT_NE(s.find("seq=7"), std::string::npos);
}

}  // namespace
}  // namespace fpgafu::msg
