#include "msg/link.hpp"

#include <gtest/gtest.h>

#include "support/handshake_harness.hpp"

namespace fpgafu::msg {
namespace {

using fpgafu::testing::Consumer;
using fpgafu::testing::Producer;

TEST(Link, DownstreamDeliversInOrderWithLatency) {
  sim::Simulator sim;
  Link link(sim, "link", {/*latency=*/5, /*interval=*/1}, {1, 1});
  Consumer<LinkWord> cons(sim, "cons");
  cons.bind(link.rx);

  link.host_send(10);
  link.host_send(11);
  link.host_send(12);
  // Nothing arrives before the flight latency has elapsed.
  sim.run(5);
  EXPECT_TRUE(cons.received().empty());
  sim.run(10);
  EXPECT_EQ(cons.received(), (std::vector<LinkWord>{10, 11, 12}));
}

TEST(Link, DownstreamIntervalLimitsRate) {
  sim::Simulator sim;
  Link link(sim, "link", {/*latency=*/1, /*interval=*/10}, {1, 1});
  Consumer<LinkWord> cons(sim, "cons");
  cons.bind(link.rx);
  for (LinkWord w = 0; w < 5; ++w) {
    link.host_send(w);
  }
  const auto cycles =
      sim.run_until([&] { return cons.received().size() == 5; }, 200);
  // Words depart every 10 cycles: the last departs at t=40 and lands ~41.
  EXPECT_GE(cycles, 41u);
  EXPECT_LE(cycles, 45u);
}

TEST(Link, UpstreamRoundTrip) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {/*latency=*/3, /*interval=*/1});
  Producer<LinkWord> prod(sim, "prod", {100, 101, 102});
  prod.bind(link.tx);
  sim.run(10);
  std::vector<LinkWord> got;
  while (auto w = link.host_receive()) {
    got.push_back(*w);
  }
  EXPECT_EQ(got, (std::vector<LinkWord>{100, 101, 102}));
  EXPECT_TRUE(link.drained());
}

TEST(Link, UpstreamIntervalBackpressuresSender) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {/*latency=*/1, /*interval=*/8});
  Producer<LinkWord> prod(sim, "prod", {1, 2, 3, 4});
  prod.bind(link.tx);
  // 4 words at one per 8 cycles: needs ~32 cycles, not 4.
  sim.run(16);
  EXPECT_LT(link.words_up(), 4u);
  sim.run(32);
  EXPECT_EQ(link.words_up(), 4u);
}

TEST(Link, HostAvailableCountsOnlyArrived) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {/*latency=*/10, /*interval=*/1});
  Producer<LinkWord> prod(sim, "prod", {5});
  prod.bind(link.tx);
  sim.run(3);
  EXPECT_EQ(link.host_available(), 0u);
  EXPECT_FALSE(link.host_receive().has_value());
  sim.run(15);
  EXPECT_EQ(link.host_available(), 1u);
}

TEST(Link, SerialPresetIsMuchSlowerThanTight) {
  auto run_words = [](const LinkPreset& preset, int n) {
    sim::Simulator sim;
    Link link(sim, "link", preset.timing, preset.timing);
    Consumer<LinkWord> cons(sim, "cons");
    cons.bind(link.rx);
    for (int i = 0; i < n; ++i) {
      link.host_send(static_cast<LinkWord>(i));
    }
    return sim.run_until(
        [&] { return cons.received().size() == static_cast<std::size_t>(n); },
        100000);
  };
  const auto tight = run_words(kTightLink, 32);
  const auto serial = run_words(kSerialLink, 32);
  EXPECT_GT(serial, tight * 10);
}

TEST(Link, ResetDropsInFlightWords) {
  sim::Simulator sim;
  Link link(sim, "link", {5, 1}, {5, 1});
  link.host_send(1);
  sim.run(2);
  sim.reset();
  EXPECT_TRUE(link.drained());
  sim.run(20);
  EXPECT_EQ(link.host_available(), 0u);
}

}  // namespace
}  // namespace fpgafu::msg
