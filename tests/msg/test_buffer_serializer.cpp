#include <gtest/gtest.h>

#include "msg/link.hpp"
#include "msg/message_buffer.hpp"
#include "msg/message_serializer.hpp"
#include "support/handshake_harness.hpp"
#include "util/rng.hpp"

namespace fpgafu::msg {
namespace {

using fpgafu::testing::Consumer;
using fpgafu::testing::Producer;

/// Host -> link -> message buffer: 64-bit words are reassembled in order.
TEST(MessageBuffer, ReassemblesStreamWords) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {1, 1});
  MessageBuffer mb(sim, "mb");
  mb.bind(link.rx);
  Consumer<isa::Word> cons(sim, "cons");
  cons.bind(mb.out);

  Xoshiro256 rng(3);
  std::vector<isa::Word> sent;
  for (int i = 0; i < 64; ++i) {
    const isa::Word w = rng.next();
    sent.push_back(w);
    link.host_send(static_cast<LinkWord>(w >> 32));
    link.host_send(static_cast<LinkWord>(w & 0xffffffffu));
  }
  sim.run_until([&] { return cons.received().size() == sent.size(); }, 2000);
  EXPECT_EQ(cons.received(), sent);
}

TEST(MessageBuffer, AbsorbsBurstWhileConsumerStalled) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {1, 1});
  MessageBuffer mb(sim, "mb", /*depth=*/4);
  mb.bind(link.rx);
  Consumer<isa::Word> cons(sim, "cons", /*duty=*/0, 1, 5);  // never ready after cycle 1
  cons.bind(mb.out);
  for (int i = 0; i < 16; ++i) {
    link.host_send(static_cast<LinkWord>(i));
  }
  sim.run(100);
  // The FIFO holds `depth` words and backpressures the link; nothing lost.
  EXPECT_LE(mb.buffered_words(), 4u);
  EXPECT_FALSE(link.drained());
}

TEST(MessageBuffer, SlowLinkTricklesWords) {
  sim::Simulator sim;
  Link link(sim, "link", kSerialLink.timing, kSerialLink.timing);
  MessageBuffer mb(sim, "mb");
  mb.bind(link.rx);
  Consumer<isa::Word> cons(sim, "cons");
  cons.bind(mb.out);
  link.host_send(0x11111111);
  link.host_send(0x22222222);
  const auto cycles =
      sim.run_until([&] { return cons.received().size() == 1; }, 1000);
  // Two link words at a 32-cycle interval: the stream word needs >= 32 cycles.
  EXPECT_GE(cycles, 32u);
  EXPECT_EQ(cons.received().front(), 0x1111111122222222ULL);
}

/// Message encoder -> serialiser -> link -> host: responses survive intact.
TEST(MessageSerializer, SplitsResponsesToLinkWords) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {1, 1});
  MessageSerializer ser(sim, "ser");
  ser.bind(link.tx);
  Producer<Response> prod(sim, "prod", {});
  prod.bind(ser.in);

  Xoshiro256 rng(5);
  std::vector<Response> sent;
  for (int i = 0; i < 32; ++i) {
    Response r;
    r.type = Response::Type::kData;
    r.seq = static_cast<std::uint16_t>(i);
    r.payload = rng.next();
    sent.push_back(r);
    prod.push(r);
  }
  sim.run(400);

  std::vector<Response> got;
  std::array<LinkWord, kLinkWordsPerResponse> frame{};
  unsigned have = 0;
  while (auto w = link.host_receive()) {
    frame[have++] = *w;
    if (have == kLinkWordsPerResponse) {
      EXPECT_TRUE(Response::frame_ok(frame));
      got.push_back(Response::from_link_words(frame));
      have = 0;
    }
  }
  EXPECT_EQ(have, 0u);
  EXPECT_EQ(got, sent);
}

TEST(MessageSerializer, BackpressureFromSlowLink) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {/*latency=*/1, /*interval=*/16});
  MessageSerializer ser(sim, "ser", /*depth=*/2);
  ser.bind(link.tx);
  Producer<Response> prod(sim, "prod", {});
  prod.bind(ser.in);
  for (int i = 0; i < 8; ++i) {
    Response r;
    r.seq = static_cast<std::uint16_t>(i);
    prod.push(r);
  }
  // 8 responses * 4 link words * 16 cycles/word ~= 512 cycles; after only
  // 100 cycles the producer must still be blocked on the serialiser.
  sim.run(100);
  EXPECT_LT(prod.sent(), 8u);
  sim.run(600);
  EXPECT_EQ(prod.sent(), 8u);
}

}  // namespace
}  // namespace fpgafu::msg
