#include "msg/faulty_link.hpp"

#include <gtest/gtest.h>

#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "support/handshake_harness.hpp"
#include "support/program_gen.hpp"
#include "top/system.hpp"

namespace fpgafu::msg {
namespace {

rtm::RtmConfig small_rtm() {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  return rcfg;
}

/// A FaultyLink with every rate at zero must be indistinguishable from the
/// plain Link: same responses, same cycle counts, same word counts, and no
/// fault counter may tick.
TEST(FaultyLink, ZeroRatesAreBitIdenticalToPlainLink) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const isa::Program p = fpgafu::testing::random_program(
        small_rtm(), seed, {.instructions = 40});

    top::SystemConfig plain_cfg;
    plain_cfg.rtm = small_rtm();
    plain_cfg.link_down = kSerialLink.timing;
    plain_cfg.link_up = kSerialLink.timing;
    top::System plain(plain_cfg);
    host::Coprocessor plain_host(plain);
    const auto plain_responses = plain_host.call(p);
    const std::uint64_t plain_cycles = plain.simulator().cycle();

    top::SystemConfig faulty_cfg = plain_cfg;
    faulty_cfg.link_faults = FaultConfig{};  // all rates zero
    top::System faulty(faulty_cfg);
    ASSERT_NE(faulty.faulty_link(), nullptr);
    host::Coprocessor faulty_host(faulty);
    const auto faulty_responses = faulty_host.call(p);

    EXPECT_EQ(faulty_responses, plain_responses) << "seed " << seed;
    EXPECT_EQ(faulty.simulator().cycle(), plain_cycles) << "seed " << seed;
    EXPECT_EQ(faulty.link().words_down(), plain.link().words_down());
    EXPECT_EQ(faulty.link().words_up(), plain.link().words_up());
    for (const auto& [name, value] : faulty.faulty_link()->fault_counters().all()) {
      EXPECT_EQ(value, 0u) << name;
    }
  }
}

TEST(FaultyLink, FullUpstreamDropDeliversNothing) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  FaultConfig f;
  f.up.drop_ppm = 1'000'000;
  cfg.link_faults = f;
  top::System sys(cfg);
  host::Coprocessor copro(sys);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 2;
  p.emit(get);
  copro.submit(p);
  sys.simulator().run(300);
  EXPECT_FALSE(copro.poll().has_value());
  EXPECT_GE(sys.faulty_link()->fault_counters().get("link.up_dropped"), 4u);
  EXPECT_EQ(sys.faulty_link()->fault_counters().get("link.down_dropped"), 0u);
}

TEST(FaultyLink, FullUpstreamCorruptionIsCaughtByTheFrameCheck) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  FaultConfig f;
  f.up.corrupt_ppm = 1'000'000;
  cfg.link_faults = f;
  top::System sys(cfg);
  host::Coprocessor copro(sys);

  isa::Program p;
  for (int i = 0; i < 4; ++i) {
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = static_cast<isa::RegNum>(i);
    p.emit(get);
  }
  copro.submit(p);
  sys.simulator().run(400);
  // Every link word was bit-flipped: no frame may parse, and the deframer
  // must have slid its window looking for alignment.
  EXPECT_FALSE(copro.poll().has_value());
  EXPECT_GE(sys.faulty_link()->fault_counters().get("link.up_corrupted"), 16u);
  EXPECT_GT(copro.counters().get("host.crc_resyncs"), 0u);
}

TEST(FaultyLink, DuplicationDoublesDeliveredWords) {
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  FaultConfig f;
  f.up.duplicate_ppm = 1'000'000;
  cfg.link_faults = f;
  top::System sys(cfg);
  host::Coprocessor copro(sys);

  isa::Program p;
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  p.emit(get);
  copro.submit(p);
  sys.simulator().run(300);
  // One response = 4 frame words, each sent twice.
  EXPECT_EQ(sys.link().host_available(), 8u);
  EXPECT_EQ(sys.faulty_link()->fault_counters().get("link.up_duplicated"), 4u);
}

TEST(FaultyLink, SameSeedReplaysTheSameFaultPattern) {
  const isa::Program p = fpgafu::testing::random_program(
      small_rtm(), 11, {.instructions = 20});
  auto run_once = [&] {
    top::SystemConfig cfg;
    cfg.rtm = small_rtm();
    FaultConfig f;
    f.seed = 99;
    f.down.jitter_max = 3;
    f.up.jitter_max = 3;
    f.up.duplicate_ppm = 100'000;
    cfg.link_faults = f;
    top::System sys(cfg);
    host::Coprocessor copro(sys);
    copro.submit(p);
    sys.simulator().run(5000);
    std::vector<LinkWord> words;
    while (auto w = sys.link().host_receive()) {
      words.push_back(*w);
    }
    return words;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultyLink, JitterNeverReordersTheStream) {
  // Heavy jitter, no loss: the response stream must arrive intact and in
  // order (arrival times are clamped monotonic).
  top::SystemConfig cfg;
  cfg.rtm = small_rtm();
  FaultConfig f;
  f.up.jitter_max = 9;
  f.down.jitter_max = 9;
  cfg.link_faults = f;
  top::System sys(cfg);
  host::Coprocessor copro(sys);
  const isa::Program p = fpgafu::testing::random_program(
      small_rtm(), 17, {.instructions = 30});
  const auto responses = copro.call(p);
  const auto expected = host::ReferenceModel(small_rtm()).run(p);
  EXPECT_EQ(responses, expected);
}

TEST(Link, BoundedDownstreamQueueRejectsWhenFull) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {1, 1}, /*down_capacity=*/2,
            /*up_capacity=*/0);
  // Nothing consumes rx, so the queue only fills.
  EXPECT_TRUE(link.host_ready());
  EXPECT_EQ(link.host_space(), 2u);
  EXPECT_TRUE(link.host_send(1));
  EXPECT_TRUE(link.host_send(2));
  EXPECT_EQ(link.host_space(), 0u);
  EXPECT_FALSE(link.host_ready());
  EXPECT_FALSE(link.host_send(3));
  EXPECT_EQ(link.send_rejects(), 1u);
}

TEST(Link, BoundedUpstreamQueueBackpressuresTheTransmitter) {
  sim::Simulator sim;
  Link link(sim, "link", {1, 1}, {1, 1}, /*down_capacity=*/0,
            /*up_capacity=*/1);
  fpgafu::testing::Producer<LinkWord> prod(sim, "prod", {});
  prod.bind(link.tx);
  for (LinkWord w = 0; w < 4; ++w) {
    prod.push(w);
  }
  sim.run(50);
  // The host never receives, so only one word fits the bounded buffer.
  EXPECT_EQ(prod.sent(), 1u);
  EXPECT_EQ(link.host_receive(), std::optional<LinkWord>{0});
  sim.run(50);
  EXPECT_EQ(prod.sent(), 2u);
}

}  // namespace
}  // namespace fpgafu::msg
