// Differential pinning of the settle kernels (sim::Simulator::Kernel): every
// scheduled kernel — sensitivity, event, levelized — must be *bit-identical*
// to the brute-force reference in everything architecturally observable —
// same responses, same register/flag files, same cycle counts, same
// statistics counters, byte-identical waveforms.  The scheduled kernels are
// allowed to differ only in how much work they perform (fewer eval() calls),
// and the event kernel must not do more work than the sensitivity kernel it
// extends.
//
// The kernel list lives in ONE place — sim::Simulator::kAllKernels — so a
// fifth kernel is pinned by this whole file the moment it is added there.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "host/reference_model.hpp"
#include "host/reliable_transport.hpp"
#include "host/xsort_system_engine.hpp"
#include "sim/vcd.hpp"
#include "support/program_gen.hpp"
#include "support/rtm_harness.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"
#include "xsort/algorithm.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::ProgramGenOptions;
using fpgafu::testing::random_program;
using fpgafu::testing::RtmRig;

using sim::Simulator;

const char* kernel_name(Simulator::Kernel k) { return Simulator::kernel_name(k); }

/// Every kernel except the brute-force reference, in Simulator::kAllKernels
/// order.  All matrix tests iterate this, so a new kernel is covered by the
/// entire file as soon as it appears in kAllKernels.
std::vector<Simulator::Kernel> scheduled_kernels() {
  std::vector<Simulator::Kernel> out;
  for (const auto k : Simulator::kAllKernels) {
    if (k != Simulator::Kernel::kBruteForce) {
      out.push_back(k);
    }
  }
  return out;
}

struct KernelRun {
  std::vector<msg::Response> responses;
  std::vector<isa::Word> regs;
  std::vector<isa::FlagWord> flags;
  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  std::map<std::string, std::uint64_t> counters;
  std::string vcd;
};

KernelRun run_under(sim::Simulator::Kernel kernel, const rtm::RtmConfig& cfg,
                    fu::Skeleton skeleton, const isa::Program& program,
                    bool with_vcd = false) {
  RtmRig rig(cfg, skeleton);
  rig.sim.set_kernel(kernel);
  KernelRun out;
  std::ostringstream vcd_os;
  std::unique_ptr<sim::VcdWriter> vcd;
  if (with_vcd) {
    vcd = std::make_unique<sim::VcdWriter>(rig.sim, vcd_os, 20);
    vcd->probe("instr_valid", 1,
               [&] { return rig.instr_ch.valid.get() ? 1u : 0u; });
    vcd->probe("instr_ready", 1,
               [&] { return rig.instr_ch.ready.get() ? 1u : 0u; });
    vcd->probe("resp_valid", 1,
               [&] { return rig.resp_ch.valid.get() ? 1u : 0u; });
    vcd->probe("resp_ready", 1,
               [&] { return rig.resp_ch.ready.get() ? 1u : 0u; });
    vcd->probe("r3", 32, [&] { return rig.rtm.regs().read(3); });
  }
  out.responses = rig.run_program(program);
  for (std::size_t r = 0; r < cfg.data_regs; ++r) {
    out.regs.push_back(rig.rtm.regs().read(static_cast<isa::RegNum>(r)));
  }
  for (std::size_t r = 0; r < cfg.flag_regs; ++r) {
    out.flags.push_back(rig.rtm.flags().read(static_cast<isa::RegNum>(r)));
  }
  out.cycles = rig.sim.cycle();
  out.evals = rig.sim.evals_performed();
  out.counters = rig.rtm.counters().all();
  out.vcd = vcd_os.str();
  return out;
}

void expect_identical(const KernelRun& got, const KernelRun& ref,
                      sim::Simulator::Kernel kernel) {
  const std::string who = kernel_name(kernel);
  ASSERT_EQ(got.responses.size(), ref.responses.size()) << who;
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    EXPECT_EQ(got.responses[i], ref.responses[i])
        << "response " << i << ": " << who << " "
        << msg::to_string(got.responses[i]) << " vs brute-force "
        << msg::to_string(ref.responses[i]);
  }
  EXPECT_EQ(got.regs, ref.regs) << who;
  EXPECT_EQ(got.flags, ref.flags) << who;
  EXPECT_EQ(got.cycles, ref.cycles) << who;
  EXPECT_EQ(got.counters, ref.counters) << who;
  // Scheduled kernels must not do MORE work than evaluate-everything.
  EXPECT_LE(got.evals, ref.evals) << who;
}

struct KernelDiffCase {
  std::uint64_t seed;
  fu::Skeleton skeleton;
  bool errors;
};

class KernelDifferential : public ::testing::TestWithParam<KernelDiffCase> {};

TEST_P(KernelDifferential, ScheduledKernelsMatchBruteForce) {
  const KernelDiffCase c = GetParam();
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;

  ProgramGenOptions opt;
  opt.instructions = 200;
  opt.include_errors = c.errors;
  const isa::Program program = random_program(cfg, c.seed, opt);

  const KernelRun brute = run_under(Simulator::Kernel::kBruteForce, cfg,
                                    c.skeleton, program);
  const KernelRun sens = run_under(Simulator::Kernel::kSensitivity, cfg,
                                   c.skeleton, program);
  for (const auto kernel : scheduled_kernels()) {
    if (kernel == Simulator::Kernel::kSensitivity) {
      expect_identical(sens, brute, kernel);
      continue;
    }
    const KernelRun got = run_under(kernel, cfg, c.skeleton, program);
    expect_identical(got, brute, kernel);
    // The event and levelized kernels extend the sensitivity kernel's
    // bookkeeping across the clock edge; they must never evaluate more than
    // within-cycle scheduling alone does.
    EXPECT_LE(got.evals, sens.evals) << kernel_name(kernel);
  }
}

std::vector<KernelDiffCase> make_cases() {
  std::vector<KernelDiffCase> cases;
  const fu::Skeleton skeletons[] = {fu::Skeleton::kMinimal,
                                    fu::Skeleton::kMinimalFwd,
                                    fu::Skeleton::kFsm,
                                    fu::Skeleton::kPipelined};
  std::uint64_t seed = 42;
  for (const auto sk : skeletons) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back({seed++, sk, /*errors=*/(i % 2) == 1});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, KernelDifferential, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<KernelDiffCase>& pinfo) {
      const char* sk = "";
      switch (pinfo.param.skeleton) {
        case fu::Skeleton::kMinimal: sk = "Minimal"; break;
        case fu::Skeleton::kMinimalFwd: sk = "MinimalFwd"; break;
        case fu::Skeleton::kFsm: sk = "Fsm"; break;
        case fu::Skeleton::kPipelined: sk = "Pipelined"; break;
      }
      return std::string(sk) + "_seed" + std::to_string(pinfo.param.seed) +
             (pinfo.param.errors ? "_faulty" : "");
    });

// The waveform is the strictest observer: every probed net, every cycle it
// changes.  All kernels must produce byte-identical VCD output.
TEST(KernelDifferential, VcdWaveformsAreByteIdenticalAcrossKernels) {
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;
  const isa::Program program =
      random_program(cfg, 0xace, {.instructions = 120});

  const KernelRun brute =
      run_under(Simulator::Kernel::kBruteForce, cfg,
                fu::Skeleton::kFsm, program, /*with_vcd=*/true);
  for (const auto kernel : scheduled_kernels()) {
    const KernelRun got =
        run_under(kernel, cfg, fu::Skeleton::kFsm, program, /*with_vcd=*/true);
    ASSERT_FALSE(got.vcd.empty());
    EXPECT_EQ(got.vcd, brute.vcd) << kernel_name(kernel);
  }
}

// Full-system differential: host driver, CRC framing, fault-injecting link
// with retries, message buffers, RTM and units.  Responses, cycle counts and
// both the host-side transport.* and device-side rtm counters must agree
// across all kernels.
TEST(KernelDifferential, FullSystemWithFaultyLinkMatchesAcrossKernels) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;

  struct SystemRun {
    std::vector<msg::Response> responses;
    std::uint64_t cycles = 0;
    std::map<std::string, std::uint64_t> transport;
    std::map<std::string, std::uint64_t> rtm;
  };
  const auto run_system = [&](Simulator::Kernel kernel) {
    top::SystemConfig cfg;
    cfg.rtm = rcfg;
    msg::FaultConfig f;
    f.seed = 0xfee1;
    f.up.drop_ppm = 30'000;
    f.up.corrupt_ppm = 30'000;
    f.up.duplicate_ppm = 30'000;
    f.up.jitter_max = 3;
    f.down.jitter_max = 2;
    cfg.link_faults = f;
    top::System sys(cfg);
    sys.simulator().set_kernel(kernel);
    host::Coprocessor copro(sys);
    host::ReliableTransport transport(copro);
    const isa::Program program = random_program(rcfg, 0xcafe,
                                                {.instructions = 60});
    SystemRun out;
    out.responses = transport.call(program);
    out.cycles = sys.simulator().cycle();
    out.transport = transport.counters().all();
    out.rtm = sys.rtm().counters().all();
    return out;
  };

  const SystemRun brute = run_system(Simulator::Kernel::kBruteForce);
  ASSERT_FALSE(brute.responses.empty());
  for (const auto kernel : scheduled_kernels()) {
    const SystemRun got = run_system(kernel);
    EXPECT_EQ(got.responses, brute.responses) << kernel_name(kernel);
    EXPECT_EQ(got.cycles, brute.cycles) << kernel_name(kernel);
    EXPECT_EQ(got.transport, brute.transport) << kernel_name(kernel);
    EXPECT_EQ(got.rtm, brute.rtm) << kernel_name(kernel);
  }
}

// The χ-sort system is the stateful-unit stress case: a cell array whose
// components mostly sit idle between operations — exactly what the event
// kernel skips.  Results, cycle counts and rtm counters must be identical.
TEST(KernelDifferential, XsortSystemMatchesAcrossKernels) {
  struct XsortRun {
    std::vector<std::uint64_t> sorted;
    std::uint64_t median = 0;
    std::uint64_t cycles = 0;
    std::map<std::string, std::uint64_t> rtm;
  };
  const auto run_xsort = [](Simulator::Kernel kernel) {
    top::SystemConfig cfg;
    cfg.with_xsort = true;
    cfg.xsort.cells = 32;
    cfg.xsort.interval_bits = 16;
    top::System sys(cfg);
    sys.simulator().set_kernel(kernel);
    host::SystemXsortEngine eng(sys);
    xsort::XsortAlgorithm algo(eng);
    Xoshiro256 rng(0xbeef);
    std::vector<std::uint64_t> vals(32);
    for (auto& v : vals) {
      v = rng.below(10'000);
    }
    XsortRun out;
    out.sorted = algo.sort(vals);
    algo.load(vals);
    out.median = algo.select(16);
    out.cycles = sys.simulator().cycle();
    out.rtm = sys.rtm().counters().all();
    return out;
  };

  const XsortRun brute = run_xsort(Simulator::Kernel::kBruteForce);
  for (const auto kernel : scheduled_kernels()) {
    const XsortRun got = run_xsort(kernel);
    EXPECT_EQ(got.sorted, brute.sorted) << kernel_name(kernel);
    EXPECT_EQ(got.median, brute.median) << kernel_name(kernel);
    EXPECT_EQ(got.cycles, brute.cycles) << kernel_name(kernel);
    EXPECT_EQ(got.rtm, brute.rtm) << kernel_name(kernel);
  }
}

// Randomized soak: the aggressive kernels (event, levelized) alone against
// the host-side reference model, across more seeds and larger programs than
// the full matrix (one simulation per seed per kernel keeps it cheap).
TEST(KernelDifferential, AggressiveKernelSoakAgainstReferenceModel) {
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;
  for (std::uint64_t seed = 0x900; seed < 0x908; ++seed) {
    ProgramGenOptions opt;
    opt.instructions = 300;
    opt.include_errors = (seed % 2) == 1;
    const isa::Program program = random_program(cfg, seed, opt);
    const auto expected = host::ReferenceModel(cfg).run(program);
    for (const auto kernel : {Simulator::Kernel::kEvent,
                              Simulator::Kernel::kLevelized}) {
      const KernelRun got = run_under(kernel, cfg, fu::Skeleton::kFsm, program);
      EXPECT_EQ(got.responses, expected)
          << kernel_name(kernel) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace fpgafu::rtm
