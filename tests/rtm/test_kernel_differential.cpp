// Differential pinning of the two settle kernels (sim::Simulator::Kernel):
// the sensitivity-scheduled kernel must be *bit-identical* to the
// brute-force reference in everything architecturally observable — same
// responses, same register/flag files, same cycle counts, same statistics
// counters.  The sensitivity kernel is allowed to differ only in how much
// work it performs (fewer eval() calls).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/program_gen.hpp"
#include "support/rtm_harness.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::ProgramGenOptions;
using fpgafu::testing::random_program;
using fpgafu::testing::RtmRig;

struct KernelRun {
  std::vector<msg::Response> responses;
  std::vector<isa::Word> regs;
  std::vector<isa::FlagWord> flags;
  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  std::map<std::string, std::uint64_t> counters;
};

KernelRun run_under(sim::Simulator::Kernel kernel, const rtm::RtmConfig& cfg,
                    fu::Skeleton skeleton, const isa::Program& program) {
  RtmRig rig(cfg, skeleton);
  rig.sim.set_kernel(kernel);
  KernelRun out;
  out.responses = rig.run_program(program);
  for (std::size_t r = 0; r < cfg.data_regs; ++r) {
    out.regs.push_back(rig.rtm.regs().read(static_cast<isa::RegNum>(r)));
  }
  for (std::size_t r = 0; r < cfg.flag_regs; ++r) {
    out.flags.push_back(rig.rtm.flags().read(static_cast<isa::RegNum>(r)));
  }
  out.cycles = rig.sim.cycle();
  out.evals = rig.sim.evals_performed();
  out.counters = rig.rtm.counters().all();
  return out;
}

struct KernelDiffCase {
  std::uint64_t seed;
  fu::Skeleton skeleton;
  bool errors;
};

class KernelDifferential : public ::testing::TestWithParam<KernelDiffCase> {};

TEST_P(KernelDifferential, SensitivityKernelMatchesBruteForce) {
  const KernelDiffCase c = GetParam();
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;

  ProgramGenOptions opt;
  opt.instructions = 200;
  opt.include_errors = c.errors;
  const isa::Program program = random_program(cfg, c.seed, opt);

  const KernelRun sens = run_under(sim::Simulator::Kernel::kSensitivity, cfg,
                                   c.skeleton, program);
  const KernelRun brute = run_under(sim::Simulator::Kernel::kBruteForce, cfg,
                                    c.skeleton, program);

  ASSERT_EQ(sens.responses.size(), brute.responses.size());
  for (std::size_t i = 0; i < sens.responses.size(); ++i) {
    EXPECT_EQ(sens.responses[i], brute.responses[i])
        << "response " << i << ": sensitivity "
        << msg::to_string(sens.responses[i]) << " vs brute-force "
        << msg::to_string(brute.responses[i]);
  }
  EXPECT_EQ(sens.regs, brute.regs);
  EXPECT_EQ(sens.flags, brute.flags);
  EXPECT_EQ(sens.cycles, brute.cycles);
  EXPECT_EQ(sens.counters, brute.counters);
  // The scheduled kernel must not do MORE work than evaluate-everything.
  EXPECT_LE(sens.evals, brute.evals);
}

std::vector<KernelDiffCase> make_cases() {
  std::vector<KernelDiffCase> cases;
  const fu::Skeleton skeletons[] = {fu::Skeleton::kMinimal,
                                    fu::Skeleton::kMinimalFwd,
                                    fu::Skeleton::kFsm,
                                    fu::Skeleton::kPipelined};
  std::uint64_t seed = 42;
  for (const auto sk : skeletons) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back({seed++, sk, /*errors=*/(i % 2) == 1});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, KernelDifferential, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<KernelDiffCase>& pinfo) {
      const char* sk = "";
      switch (pinfo.param.skeleton) {
        case fu::Skeleton::kMinimal: sk = "Minimal"; break;
        case fu::Skeleton::kMinimalFwd: sk = "MinimalFwd"; break;
        case fu::Skeleton::kFsm: sk = "Fsm"; break;
        case fu::Skeleton::kPipelined: sk = "Pipelined"; break;
      }
      return std::string(sk) + "_seed" + std::to_string(pinfo.param.seed) +
             (pinfo.param.errors ? "_faulty" : "");
    });

}  // namespace
}  // namespace fpgafu::rtm
