// Regression coverage for the quiescence-detection hole: an instruction
// stalled *pre-dispatch* (offered to the dispatcher but not yet routed) on
// a busy functional unit while ZERO register locks are held was invisible
// to every term of the original Rtm::quiescent() except the decoder's —
// and only because today's decoder happens to buffer the stalled
// instruction.  quiescent() now composes per-stage state including
// Dispatcher::busy(); this file does not compile against the old interface
// (no Dispatcher::busy(), no Rtm::dispatcher()), which is the point: the
// contract is part of the API now.

#include <gtest/gtest.h>

#include "fu/functional_unit.hpp"
#include "isa/assembler.hpp"
#include "support/rtm_harness.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::RtmRig;
using isa::Assembler;

/// A single-operation adder that stays busy (idle deasserted) for
/// `cooldown` cycles *after* its completion retires.  During the cooldown
/// the unit holds no locks — its write has landed — yet it cannot accept a
/// dispatch, so a following instruction for it waits pre-dispatch with
/// locks().held() == 0.  Real units behave like this too (e.g. a unit
/// draining an internal pipeline or recharging a resource); the cooldown
/// just widens the window enough to assert on.
class CooldownFu : public fu::FunctionalUnit {
 public:
  CooldownFu(sim::Simulator& sim, unsigned cooldown)
      : FunctionalUnit(sim, "cooldown_fu"), cooldown_(cooldown) {}

  void eval() override {
    ports.idle.set(state_ == State::kIdle);
    ports.data_ready.set(state_ == State::kOutput);
    if (state_ == State::kOutput) {
      fu::FuResult r;
      r.data = req_.operand1 + req_.operand2;
      r.dst_reg = req_.dst_reg;
      r.dst_flag_reg = req_.dst_flag_reg;
      r.write_data = true;
      r.write_flags = true;
      ports.result.set(r);
    }
  }

  void commit() override {
    if (state_ != State::kIdle || ports.dispatch.get()) {
      mark_active();  // FSM state lives in plain members
    }
    switch (state_) {
      case State::kIdle:
        if (ports.dispatch.get()) {
          req_ = ports.request.get();
          state_ = State::kOutput;
        }
        break;
      case State::kOutput:
        if (ports.data_acknowledge.get()) {
          ++completed_;
          timer_ = cooldown_;
          state_ = cooldown_ > 0 ? State::kCooldown : State::kIdle;
        }
        break;
      case State::kCooldown:
        if (--timer_ == 0) {
          state_ = State::kIdle;
        }
        break;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    state_ = State::kIdle;
    timer_ = 0;
    req_ = {};
  }

 private:
  enum class State { kIdle, kOutput, kCooldown };
  unsigned cooldown_;
  State state_ = State::kIdle;
  unsigned timer_ = 0;
  fu::FuRequest req_;
};

TEST(RtmQuiescent, StalledDispatchWithZeroLocksIsNotQuiescent) {
  RtmRig rig({}, fu::Skeleton::kMinimal, /*attach_units=*/false);
  CooldownFu unit(rig.sim, /*cooldown=*/8);
  rig.rtm.attach(isa::fc::kArith, unit);

  // Back-to-back operations on the same unit (distinct destination data
  // and flag registers, so no lock hazard between them): the first
  // completes and retires; the second then sits at the dispatcher for the
  // whole cooldown with zero locks held.
  const isa::Program program = Assembler::assemble(R"(
    PUTI r1, 40
    PUTI r2, 2
    ADD r3, r1, r2, f1
    ADD r4, r1, r2, f2
    GET r3
    GET r4
  )");
  for (const isa::Word w : program.words()) {
    rig.prod.push(w);
  }

  bool saw_stall_window = false;
  std::uint64_t guard = 0;
  while (!(rig.prod.done() && rig.cons.received().size() >= 2 &&
           rig.rtm.quiescent())) {
    ASSERT_LT(++guard, 10000u) << "pipeline failed to drain";
    rig.sim.step();
    if (rig.rtm.dispatcher().busy() && rig.rtm.locks().held() == 0) {
      saw_stall_window = true;
      // The hole this test pins shut: with an instruction pending
      // pre-dispatch, the machine is NOT quiescent, even though no lock
      // is held and the downstream stages are empty.
      EXPECT_FALSE(rig.rtm.quiescent());
    }
  }
  EXPECT_TRUE(saw_stall_window)
      << "scenario failed to reach the pre-dispatch stall window";
  EXPECT_GT(rig.rtm.counters().get("stall.unit_busy"), 0u);

  ASSERT_EQ(rig.cons.received().size(), 2u);
  EXPECT_EQ(rig.cons.received()[0].payload, 42u);
  EXPECT_EQ(rig.cons.received()[1].payload, 42u);
  EXPECT_TRUE(rig.rtm.quiescent());
  EXPECT_FALSE(rig.rtm.dispatcher().busy());
}

TEST(RtmQuiescent, DispatcherBusyTracksPendingInput) {
  // busy() is simply "an instruction is offered on my input": true while
  // anything pre-dispatch exists, false once the pipeline drains.
  RtmRig rig;
  EXPECT_FALSE(rig.rtm.dispatcher().busy());
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #7
    GET r1
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 7u);
  EXPECT_FALSE(rig.rtm.dispatcher().busy());
  EXPECT_TRUE(rig.rtm.quiescent());
}

}  // namespace
}  // namespace fpgafu::rtm
