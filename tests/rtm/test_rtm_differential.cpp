#include <gtest/gtest.h>

#include "host/reference_model.hpp"
#include "support/program_gen.hpp"
#include "support/rtm_harness.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::ProgramGenOptions;
using fpgafu::testing::random_program;
using fpgafu::testing::RtmRig;

struct DiffCase {
  std::uint64_t seed;
  fu::Skeleton skeleton;
  bool errors;
};

class RtmDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(RtmDifferential, MatchesSequentialReference) {
  const DiffCase c = GetParam();
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;

  ProgramGenOptions opt;
  opt.instructions = 150;
  opt.include_errors = c.errors;
  const isa::Program program = random_program(cfg, c.seed, opt);

  RtmRig rig(cfg, c.skeleton);
  const auto hw = rig.run_program(program);

  host::ReferenceModel model(cfg);
  const auto expect = model.run(program);

  ASSERT_EQ(hw.size(), expect.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    EXPECT_EQ(hw[i], expect[i]) << "response " << i << ": hw "
                                << msg::to_string(hw[i]) << " vs ref "
                                << msg::to_string(expect[i]);
  }
  // Architectural state must also agree.
  for (std::size_t r = 0; r < cfg.data_regs; ++r) {
    EXPECT_EQ(rig.rtm.regs().read(static_cast<isa::RegNum>(r)),
              model.reg(static_cast<isa::RegNum>(r)))
        << "r" << r;
  }
  for (std::size_t r = 0; r < cfg.flag_regs; ++r) {
    EXPECT_EQ(rig.rtm.flags().read(static_cast<isa::RegNum>(r)),
              model.flag_reg(static_cast<isa::RegNum>(r)))
        << "f" << r;
  }
  EXPECT_EQ(rig.rtm.locks().held(), 0u);
}

std::vector<DiffCase> make_cases() {
  std::vector<DiffCase> cases;
  const fu::Skeleton skeletons[] = {fu::Skeleton::kMinimal,
                                    fu::Skeleton::kMinimalFwd, fu::Skeleton::kFsm,
                                    fu::Skeleton::kPipelined};
  std::uint64_t seed = 1000;
  for (const auto sk : skeletons) {
    for (int i = 0; i < 6; ++i) {
      cases.push_back({seed++, sk, /*errors=*/(i % 2) == 1});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, RtmDifferential, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<DiffCase>& pinfo) {
      const char* sk = "";
      switch (pinfo.param.skeleton) {
        case fu::Skeleton::kMinimal: sk = "Minimal"; break;
        case fu::Skeleton::kMinimalFwd: sk = "MinimalFwd"; break;
        case fu::Skeleton::kFsm: sk = "Fsm"; break;
        case fu::Skeleton::kPipelined: sk = "Pipelined"; break;
      }
      return std::string(sk) + "_seed" + std::to_string(pinfo.param.seed) +
             (pinfo.param.errors ? "_faulty" : "");
    });

TEST(RtmDifferential, LongProgramSingleSeed) {
  // One long soak: 2000 instructions with faults and syncs.
  rtm::RtmConfig cfg;
  ProgramGenOptions opt;
  opt.instructions = 2000;
  opt.include_errors = true;
  const isa::Program program = random_program(cfg, 777, opt);

  RtmRig rig(cfg, fu::Skeleton::kPipelined);
  const auto hw = rig.run_program(program, 2000000);
  host::ReferenceModel model(cfg);
  const auto expect = model.run(program);
  ASSERT_EQ(hw.size(), expect.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    ASSERT_EQ(hw[i], expect[i]) << "response " << i;
  }
}

}  // namespace
}  // namespace fpgafu::rtm
