// Randomized-topology differential fuzzer for the settle kernels.
//
// The fixed differential matrix (test_kernel_differential.cpp) pins the
// kernels on hand-picked systems; this fuzzer pins them on *hundreds* of
// generated ones.  A seeded generator elaborates random Systems — random FU
// mixes and skeletons, random register-file and FIFO geometries, faulty or
// clean links, optional χ-sort cell arrays and scratchpad units, mid-run
// attach/detach churn and full simulator resets — and replays the exact same
// host-side instruction stream under every kernel in Simulator::kAllKernels.
// Everything architecturally observable must be byte-identical to the
// brute-force reference: responses, final register/flag files, cycle counts,
// device and transport counters, VCD waveform bytes.
//
// Every decision is drawn from one Xoshiro256 stream per System seed, so a
// failure report ("seed N diverged") replays exactly.  `FPGAFU_FUZZ_SYSTEMS`
// scales the System count (default 200; CI runs an abbreviated count under
// the sanitizers, local soaks can run thousands).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fu/scratchpad_unit.hpp"
#include "host/algod.hpp"
#include "host/coprocessor.hpp"
#include "host/reliable_transport.hpp"
#include "sim/vcd.hpp"
#include "support/program_gen.hpp"
#include "top/system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::ProgramGenOptions;
using fpgafu::testing::random_program;
using sim::Simulator;

/// Function code the fuzzer's scratchpad unit attaches under.
constexpr isa::FunctionCode kScratchCode = isa::fc::kUserBase;

std::size_t fuzz_system_count() {
  if (const char* env = std::getenv("FPGAFU_FUZZ_SYSTEMS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 200;
}

/// What happens between two program segments of one fuzzed System.
enum class Churn : std::uint8_t {
  kNone,
  kDetachScratch,   ///< partial-reconfiguration analogue: unit goes away
  kAttachScratch,   ///< ... and comes back
  kSimulatorReset,  ///< full reset mid-activity (schedule state must drop)
};

/// One fuzzed System, decided entirely up front from the seed so the same
/// elaboration + instruction stream replays under every kernel.
struct FuzzSpec {
  std::uint64_t seed = 0;
  top::SystemConfig config;
  std::size_t scratch_words = 0;  ///< 0 = no scratchpad unit
  std::vector<isa::Program> segments;
  std::vector<Churn> churn;  ///< churn[i] runs after segments[i]
  bool with_vcd = false;
  unsigned levelized_threads = 0;  ///< settle threads for the levelized run
};

/// A few scratchpad operations: set up address/data registers with PUTs,
/// then dispatch to the user-code unit.  Addresses are mostly in range,
/// sometimes deliberately past the end (error-flag path).
void append_scratch_ops(isa::Program& p, Xoshiro256& rng,
                        const rtm::RtmConfig& rcfg, std::size_t words,
                        isa::FunctionCode code = kScratchCode) {
  const auto data_reg = [&] {
    return static_cast<isa::RegNum>(rng.below(rcfg.data_regs));
  };
  const auto flag_reg = [&] {
    return static_cast<isa::RegNum>(rng.below(rcfg.flag_regs));
  };
  const auto ops = rng.range(3, 10);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const isa::RegNum addr_reg = data_reg();
    const isa::RegNum value_reg = data_reg();
    const isa::Word addr = rng.chance(1, 5) ? words + rng.below(3)
                                            : rng.below(words);
    p.emit_put(addr_reg, addr);
    p.emit_put(value_reg, rng.next());
    isa::Instruction inst;
    inst.function = code;
    switch (rng.below(5)) {
      case 0: inst.variety = fu::ScratchpadUnit::kRead; break;
      case 1: inst.variety = fu::ScratchpadUnit::kFill; break;
      case 2: inst.variety = fu::ScratchpadUnit::kSize; break;
      default: inst.variety = fu::ScratchpadUnit::kWrite; break;
    }
    inst.src1 = addr_reg;
    inst.src2 = value_reg;
    inst.dst1 = data_reg();
    inst.src_flag = flag_reg();
    inst.dst_flag = flag_reg();
    p.emit(inst);
  }
}

FuzzSpec make_spec(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzSpec s;
  s.seed = seed;
  top::SystemConfig& cfg = s.config;

  // Register-file and FIFO geometry.
  cfg.rtm.data_regs = rng.range(8, 24);
  cfg.rtm.flag_regs = rng.range(2, 8);
  cfg.rtm.round_robin_arbiter = rng.chance(1, 2);
  cfg.message_buffer_depth = rng.range(1, 8);
  cfg.serializer_depth = rng.range(1, 4);

  // Link shape: latency/interval and optional bounded transfer buffers.
  cfg.link_down = {static_cast<std::uint32_t>(rng.range(1, 3)),
                   static_cast<std::uint32_t>(rng.range(1, 2))};
  cfg.link_up = {static_cast<std::uint32_t>(rng.range(1, 3)),
                 static_cast<std::uint32_t>(rng.range(1, 2))};
  if (rng.chance(1, 2)) {
    cfg.link_down_capacity = rng.range(2, 8);
  }
  if (rng.chance(1, 2)) {
    cfg.link_up_capacity = rng.range(2, 8);
  }

  // Roughly half the Systems run over a fault-injecting link (each upstream
  // fault class up to 3%, downstream jitter only — downstream losses are
  // beyond what the transport's retry protocol recovers); ReliableTransport
  // recovers, and every retry must play out identically under every kernel.
  if (rng.chance(1, 2)) {
    msg::FaultConfig f;
    f.seed = rng.next();
    f.up.drop_ppm = static_cast<std::uint32_t>(rng.below(30'001));
    f.up.corrupt_ppm = static_cast<std::uint32_t>(rng.below(30'001));
    f.up.duplicate_ppm = static_cast<std::uint32_t>(rng.below(30'001));
    f.up.jitter_max = static_cast<std::uint32_t>(rng.below(4));
    f.down.jitter_max = static_cast<std::uint32_t>(rng.below(3));
    cfg.link_faults = f;
  }

  // FU mix: arithmetic always attached so programs do real work; every
  // other unit is a coin toss (ops aimed at a missing unit come back as
  // error responses — which must also be identical across kernels).
  cfg.with_arithmetic = true;
  cfg.with_logic = rng.chance(3, 4);
  cfg.with_shift = rng.chance(3, 4);
  cfg.with_muldiv = rng.chance(2, 3);
  cfg.with_float = rng.chance(2, 3);
  cfg.with_trig = rng.chance(1, 2);
  const fu::Skeleton skeletons[] = {fu::Skeleton::kMinimal,
                                    fu::Skeleton::kMinimalFwd,
                                    fu::Skeleton::kFsm,
                                    fu::Skeleton::kPipelined};
  cfg.stateless_skeleton = skeletons[rng.below(4)];

  // A quarter of the Systems carry the χ-sort cell array: a wide, mostly
  // idle component population that stresses level construction.
  if (rng.chance(1, 4)) {
    cfg.with_xsort = true;
    cfg.xsort.cells = static_cast<std::size_t>(rng.range(4, 32));
    cfg.xsort.interval_bits = 16;
  }

  // Half carry a scratchpad unit at a user function code.
  if (rng.chance(1, 2)) {
    s.scratch_words = rng.range(4, 64);
  }

  // 1..3 program segments with churn in the gaps.
  const std::uint64_t segments = rng.range(1, 3);
  bool attached = s.scratch_words > 0;
  for (std::uint64_t i = 0; i < segments; ++i) {
    ProgramGenOptions opt;
    opt.instructions = rng.range(30, 120);
    opt.include_errors = rng.chance(1, 3);
    isa::Program p = random_program(cfg.rtm, rng.next(), opt);
    if (attached) {
      append_scratch_ops(p, rng, cfg.rtm, s.scratch_words);
    }
    s.segments.push_back(std::move(p));
    if (i + 1 == segments) {
      break;
    }
    Churn churn = Churn::kNone;
    if (rng.chance(1, 4)) {
      churn = Churn::kSimulatorReset;
    } else if (s.scratch_words > 0 && rng.chance(1, 2)) {
      churn = attached ? Churn::kDetachScratch : Churn::kAttachScratch;
      attached = !attached;
    }
    s.churn.push_back(churn);
  }

  s.with_vcd = (seed % 4) == 0;
  // Every eighth System exercises the multi-threaded levelized settle path;
  // architectural results must not depend on the lane count.
  s.levelized_threads = (seed % 8) == 0 ? 2u : 0u;
  return s;
}

/// Everything architecturally observable from one replay of a FuzzSpec.
struct FuzzRun {
  std::vector<msg::Response> responses;
  std::vector<isa::Word> regs;
  std::vector<isa::FlagWord> flags;
  std::uint64_t cycles = 0;
  std::map<std::string, std::uint64_t> rtm_counters;
  std::map<std::string, std::uint64_t> transport_counters;
  std::string vcd;
};

FuzzRun run_spec_or_throw(const FuzzSpec& s, Simulator::Kernel kernel) {
  top::System sys(s.config);
  sys.simulator().set_kernel(kernel);
  if (kernel == Simulator::Kernel::kLevelized && s.levelized_threads > 1) {
    sys.simulator().set_settle_threads(s.levelized_threads);
  }
  std::unique_ptr<fu::ScratchpadUnit> scratch;
  if (s.scratch_words > 0) {
    scratch = std::make_unique<fu::ScratchpadUnit>(
        sys.simulator(), "scratch", s.scratch_words, s.config.rtm.word_width);
    sys.attach(kScratchCode, *scratch);
  }
  host::Coprocessor copro(sys);
  host::TransportConfig tcfg;
  tcfg.response_timeout = 500;
  tcfg.max_attempts = 25;
  host::ReliableTransport transport(copro, tcfg);

  std::ostringstream vcd_os;
  std::unique_ptr<sim::VcdWriter> vcd;
  if (s.with_vcd) {
    vcd = std::make_unique<sim::VcdWriter>(sys.simulator(), vcd_os, 20);
    vcd->probe("r0", 32, [&] { return sys.rtm().regs().read(0); });
    vcd->probe("r1", 32, [&] { return sys.rtm().regs().read(1); });
    vcd->probe("f0", 8, [&] { return sys.rtm().flags().read(0); });
  }

  FuzzRun out;
  for (std::size_t i = 0; i < s.segments.size(); ++i) {
    const std::vector<msg::Response> resp = transport.call(s.segments[i]);
    out.responses.insert(out.responses.end(), resp.begin(), resp.end());
    if (i >= s.churn.size()) {
      continue;
    }
    switch (s.churn[i]) {
      case Churn::kNone:
        break;
      case Churn::kDetachScratch:
        // call() drained the system, so the unit is quiescent; subsequent
        // scratch ops come back as unknown-function error responses.
        sys.detach(kScratchCode);
        break;
      case Churn::kAttachScratch:
        sys.attach(kScratchCode, *scratch);
        break;
      case Churn::kSimulatorReset:
        // Full reset mid-run: every component back to power-on state, any
        // compiled schedule / activity bookkeeping dropped.  The host driver
        // notices via reset_generation and discards torn frames.
        sys.simulator().reset();
        sys.rtm().clear_state();
        break;
    }
  }

  for (std::size_t r = 0; r < s.config.rtm.data_regs; ++r) {
    out.regs.push_back(sys.rtm().regs().read(static_cast<isa::RegNum>(r)));
  }
  for (std::size_t r = 0; r < s.config.rtm.flag_regs; ++r) {
    out.flags.push_back(sys.rtm().flags().read(static_cast<isa::RegNum>(r)));
  }
  out.cycles = sys.simulator().cycle();
  out.rtm_counters = sys.rtm().counters().all();
  out.transport_counters = transport.counters().all();
  out.vcd = vcd_os.str();
  return out;
}

/// run_spec_or_throw with the replay coordinates (seed, kernel) stitched
/// into any simulation error, so a fuzzer failure is reproducible from the
/// gtest output alone.
FuzzRun run_spec(const FuzzSpec& s, Simulator::Kernel kernel) {
  try {
    return run_spec_or_throw(s, kernel);
  } catch (const SimError& e) {
    throw SimError("fuzz seed " + std::to_string(s.seed) + " under kernel " +
                   Simulator::kernel_name(kernel) + ": " + e.what());
  }
}

TEST(KernelFuzz, RandomTopologiesAgreeAcrossAllKernels) {
  const std::size_t systems = fuzz_system_count();
  for (std::size_t i = 0; i < systems; ++i) {
    const std::uint64_t seed = 0xF0220000ULL + i;
    const FuzzSpec spec = make_spec(seed);
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));

    const FuzzRun ref = run_spec(spec, Simulator::Kernel::kBruteForce);
    ASSERT_FALSE(ref.responses.empty());
    for (const auto kernel : Simulator::kAllKernels) {
      if (kernel == Simulator::Kernel::kBruteForce) {
        continue;
      }
      const FuzzRun got = run_spec(spec, kernel);
      const char* who = Simulator::kernel_name(kernel);
      ASSERT_EQ(got.responses.size(), ref.responses.size()) << who;
      for (std::size_t r = 0; r < got.responses.size(); ++r) {
        ASSERT_EQ(got.responses[r], ref.responses[r])
            << who << " response " << r << ": "
            << msg::to_string(got.responses[r]) << " vs brute "
            << msg::to_string(ref.responses[r]);
      }
      EXPECT_EQ(got.regs, ref.regs) << who;
      EXPECT_EQ(got.flags, ref.flags) << who;
      EXPECT_EQ(got.cycles, ref.cycles) << who;
      EXPECT_EQ(got.rtm_counters, ref.rtm_counters) << who;
      EXPECT_EQ(got.transport_counters, ref.transport_counters) << who;
      EXPECT_EQ(got.vcd, ref.vcd) << who;
    }
  }
}

// ---------------------------------------------------------------------------
// Managed-mode churn: the same differential pin, but with mid-program
// attach/detach driven through host::FuManager instead of raw System calls.
// Two single-code images compete for a one-slot budget, so every swap in the
// schedule exercises the full drain → finish_detach → loader → attach path;
// ops aimed at the non-resident image must come back as kUnitUnavailable
// (identically, under every kernel), and the manager's own counters — which
// include clock-charged load/drain cycles — must match byte-for-byte too.

/// Second managed function code, competing with kScratchCode for the slot.
constexpr isa::FunctionCode kAltCode = isa::fc::kUserBase + 1;

/// One managed-churn fuzz case, decided up front from the seed.
struct ManagedSpec {
  std::uint64_t seed = 0;
  top::SystemConfig config;
  std::size_t scratch_words = 8;
  std::size_t alt_words = 8;
  std::uint64_t scratch_load_cycles = 0;
  std::uint64_t alt_load_cycles = 0;
  std::vector<isa::Program> segments;
  /// resident[i] is ensured through the manager before segments[i] runs; a
  /// repeat is a cache hit, a change is an evict+load swap.
  std::vector<std::string> resident;
  bool with_vcd = false;
};

ManagedSpec make_managed_spec(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ManagedSpec s;
  s.seed = seed;
  top::SystemConfig& cfg = s.config;

  cfg.rtm.data_regs = rng.range(8, 16);
  cfg.rtm.flag_regs = rng.range(2, 6);
  cfg.rtm.round_robin_arbiter = rng.chance(1, 2);
  cfg.message_buffer_depth = rng.range(1, 6);
  cfg.link_down = {static_cast<std::uint32_t>(rng.range(1, 3)),
                   static_cast<std::uint32_t>(rng.range(1, 2))};
  cfg.link_up = {static_cast<std::uint32_t>(rng.range(1, 3)),
                 static_cast<std::uint32_t>(rng.range(1, 2))};
  cfg.with_arithmetic = true;
  cfg.with_logic = rng.chance(1, 2);

  s.scratch_words = rng.range(4, 32);
  s.alt_words = rng.range(4, 32);
  s.scratch_load_cycles = rng.range(0, 400);
  s.alt_load_cycles = rng.range(0, 400);

  const std::uint64_t segments = rng.range(2, 4);
  std::string resident = rng.chance(1, 2) ? "scratch" : "alt";
  for (std::uint64_t i = 0; i < segments; ++i) {
    s.resident.push_back(resident);
    ProgramGenOptions opt;
    opt.instructions = rng.range(20, 60);
    opt.include_errors = rng.chance(1, 3);
    isa::Program p = random_program(cfg.rtm, rng.next(), opt);
    const isa::FunctionCode here =
        resident == "scratch" ? kScratchCode : kAltCode;
    const std::size_t words =
        resident == "scratch" ? s.scratch_words : s.alt_words;
    append_scratch_ops(p, rng, cfg.rtm, words, here);
    if (rng.chance(1, 3)) {
      // A few ops for the image that is NOT resident: these must drain out
      // as kUnitUnavailable error responses under every kernel.
      append_scratch_ops(p, rng, cfg.rtm, words,
                         here == kScratchCode ? kAltCode : kScratchCode);
    }
    s.segments.push_back(std::move(p));
    if (rng.chance(2, 3)) {
      resident = resident == "scratch" ? "alt" : "scratch";
    }
  }
  s.with_vcd = (seed % 4) == 0;
  return s;
}

FuzzRun run_managed_or_throw(const ManagedSpec& s, Simulator::Kernel kernel) {
  top::System sys(s.config);
  sys.simulator().set_kernel(kernel);
  host::Coprocessor copro(sys);
  host::TransportConfig tcfg;
  tcfg.response_timeout = 500;
  tcfg.max_attempts = 25;
  host::ReliableTransport transport(copro, tcfg);

  host::FuManagerConfig mcfg;
  mcfg.slots = 1;  // one physical slot: every image change is a full swap
  host::FuManager manager(copro, mcfg);
  const auto scratch_factory = [words = s.scratch_words, &cfg = s.config](
                                   sim::Simulator& sim,
                                   isa::FunctionCode) {
    return std::unique_ptr<fu::FunctionalUnit>(new fu::ScratchpadUnit(
        sim, "scratch", words, cfg.rtm.word_width));
  };
  const auto alt_factory = [words = s.alt_words, &cfg = s.config](
                               sim::Simulator& sim, isa::FunctionCode) {
    return std::unique_ptr<fu::FunctionalUnit>(
        new fu::ScratchpadUnit(sim, "alt", words, cfg.rtm.word_width));
  };
  host::AlgorithmImage scratch_img;
  scratch_img.name = "scratch";
  scratch_img.codes = {kScratchCode};
  scratch_img.load_cycles = s.scratch_load_cycles;
  scratch_img.factory = scratch_factory;
  manager.register_image(std::move(scratch_img));
  host::AlgorithmImage alt_img;
  alt_img.name = "alt";
  alt_img.codes = {kAltCode};
  alt_img.load_cycles = s.alt_load_cycles;
  alt_img.factory = alt_factory;
  manager.register_image(std::move(alt_img));

  std::ostringstream vcd_os;
  std::unique_ptr<sim::VcdWriter> vcd;
  if (s.with_vcd) {
    vcd = std::make_unique<sim::VcdWriter>(sys.simulator(), vcd_os, 20);
    vcd->probe("r0", 32, [&] { return sys.rtm().regs().read(0); });
    vcd->probe("f0", 8, [&] { return sys.rtm().flags().read(0); });
  }

  FuzzRun out;
  for (std::size_t i = 0; i < s.segments.size(); ++i) {
    manager.ensure_resident(s.resident[i]);
    const std::vector<msg::Response> resp = transport.call(s.segments[i]);
    out.responses.insert(out.responses.end(), resp.begin(), resp.end());
  }

  for (std::size_t r = 0; r < s.config.rtm.data_regs; ++r) {
    out.regs.push_back(sys.rtm().regs().read(static_cast<isa::RegNum>(r)));
  }
  for (std::size_t r = 0; r < s.config.rtm.flag_regs; ++r) {
    out.flags.push_back(sys.rtm().flags().read(static_cast<isa::RegNum>(r)));
  }
  out.cycles = sys.simulator().cycle();
  out.rtm_counters = sys.rtm().counters().all();
  // Fold in the manager's counters (keys are "algod."-prefixed, so they
  // cannot collide): swap accounting must also be kernel-independent.
  for (const auto& [key, value] : manager.counters().all()) {
    out.rtm_counters[key] = value;
  }
  out.transport_counters = transport.counters().all();
  out.vcd = vcd_os.str();
  return out;
}

FuzzRun run_managed(const ManagedSpec& s, Simulator::Kernel kernel) {
  try {
    return run_managed_or_throw(s, kernel);
  } catch (const SimError& e) {
    throw SimError("managed fuzz seed " + std::to_string(s.seed) +
                   " under kernel " + Simulator::kernel_name(kernel) + ": " +
                   e.what());
  }
}

TEST(KernelFuzz, ManagedSwapChurnAgreesAcrossAllKernels) {
  // Managed runs carry 2-4 segments with swaps in most gaps, so a quarter
  // of the plain-fuzz case count still yields hundreds of manager swaps.
  const std::size_t systems =
      std::max<std::size_t>(fuzz_system_count() / 4, 16);
  bool saw_unavailable = false;
  for (std::size_t i = 0; i < systems; ++i) {
    const std::uint64_t seed = 0xA190D000ULL + i;
    const ManagedSpec spec = make_managed_spec(seed);
    SCOPED_TRACE("managed fuzz seed " + std::to_string(seed));

    const FuzzRun ref = run_managed(spec, Simulator::Kernel::kBruteForce);
    ASSERT_FALSE(ref.responses.empty());
    ASSERT_GT(ref.rtm_counters.at("algod.loads"), 0u);
    for (const auto& resp : ref.responses) {
      if (resp.type == msg::Response::Type::kError &&
          resp.code ==
              static_cast<std::uint8_t>(msg::ErrorCode::kUnitUnavailable)) {
        saw_unavailable = true;
      }
    }
    for (const auto kernel : Simulator::kAllKernels) {
      if (kernel == Simulator::Kernel::kBruteForce) {
        continue;
      }
      const FuzzRun got = run_managed(spec, kernel);
      const char* who = Simulator::kernel_name(kernel);
      ASSERT_EQ(got.responses.size(), ref.responses.size()) << who;
      for (std::size_t r = 0; r < got.responses.size(); ++r) {
        ASSERT_EQ(got.responses[r], ref.responses[r])
            << who << " response " << r << ": "
            << msg::to_string(got.responses[r]) << " vs brute "
            << msg::to_string(ref.responses[r]);
      }
      EXPECT_EQ(got.regs, ref.regs) << who;
      EXPECT_EQ(got.flags, ref.flags) << who;
      EXPECT_EQ(got.cycles, ref.cycles) << who;
      EXPECT_EQ(got.rtm_counters, ref.rtm_counters) << who;
      EXPECT_EQ(got.transport_counters, ref.transport_counters) << who;
      EXPECT_EQ(got.vcd, ref.vcd) << who;
    }
  }
  // The schedule mixes in ops for the swapped-out image often enough that
  // the typed-unavailable path must have been exercised at least once.
  EXPECT_TRUE(saw_unavailable);
}

}  // namespace
}  // namespace fpgafu::rtm
