#include <gtest/gtest.h>

#include "rtm/fu_table.hpp"
#include "rtm/lock_manager.hpp"
#include "rtm/register_file.hpp"

namespace fpgafu::rtm {
namespace {

TEST(RegisterFile, MasksToConfiguredWidth) {
  RegisterFile rf(8, 32);
  rf.write(3, 0x1122334455667788ULL);
  EXPECT_EQ(rf.read(3), 0x55667788u);
  RegisterFile rf64(8, 64);
  rf64.write(3, 0x1122334455667788ULL);
  EXPECT_EQ(rf64.read(3), 0x1122334455667788ULL);
}

TEST(RegisterFile, RejectsBadGeometry) {
  EXPECT_THROW(RegisterFile(8, 16), SimError);   // not a multiple of 32
  EXPECT_THROW(RegisterFile(8, 96), SimError);   // beyond model support
  EXPECT_THROW(RegisterFile(1, 32), SimError);   // too few registers
  EXPECT_THROW(RegisterFile(300, 32), SimError); // 8-bit register numbers
}

TEST(RegisterFile, BoundsChecked) {
  RegisterFile rf(4, 32);
  EXPECT_TRUE(rf.valid(3));
  EXPECT_FALSE(rf.valid(4));
  EXPECT_THROW(rf.read(4), SimError);
  EXPECT_THROW(rf.write(4, 0), SimError);
}

TEST(FlagRegisterFile, StoresFlagVectors) {
  FlagRegisterFile ff(4);
  ff.write(2, 0x1f);
  EXPECT_EQ(ff.read(2), 0x1f);
  ff.clear();
  EXPECT_EQ(ff.read(2), 0);
}

TEST(LockManager, TracksOwnersAndCount) {
  LockManager lm(8, 4);
  EXPECT_EQ(lm.held(), 0u);
  lm.lock_data(3, 1);
  lm.lock_flag(2, 1);
  EXPECT_TRUE(lm.data_locked(3));
  EXPECT_TRUE(lm.flag_locked(2));
  EXPECT_FALSE(lm.data_locked(2));
  EXPECT_EQ(lm.data_owner(3), 1u);
  EXPECT_EQ(lm.held(), 2u);
  lm.unlock_data(3);
  lm.unlock_flag(2);
  EXPECT_EQ(lm.held(), 0u);
}

TEST(LockManager, DoubleLockAndSpuriousUnlockThrow) {
  LockManager lm(8, 4);
  lm.lock_data(1, 0);
  EXPECT_THROW(lm.lock_data(1, 2), SimError);
  EXPECT_THROW(lm.unlock_data(5), SimError);
  EXPECT_THROW(lm.unlock_flag(0), SimError);
}

TEST(FunctionalUnitTable, AttachAndLookup) {
  sim::Simulator sim;
  class Dummy : public fu::FunctionalUnit {
   public:
    using FunctionalUnit::FunctionalUnit;
  };
  Dummy a(sim, "a"), b(sim, "b");
  FunctionalUnitTable t;
  EXPECT_EQ(t.attach(0x10, a), 0u);
  EXPECT_EQ(t.attach(0x11, b), 1u);
  EXPECT_EQ(t.find(0x10), &a);
  EXPECT_EQ(t.find(0x12), nullptr);
  EXPECT_EQ(t.index_of(0x11), 1u);
  EXPECT_EQ(&t.unit(0), &a);
  EXPECT_THROW(t.attach(0x10, b), SimError);  // duplicate code
  EXPECT_THROW(t.attach(isa::fc::kRtm, b), SimError);
  EXPECT_THROW(t.index_of(0x55), SimError);
}

}  // namespace
}  // namespace fpgafu::rtm
