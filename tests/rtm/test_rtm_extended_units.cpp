#include <gtest/gtest.h>

#include <cstring>

#include "isa/assembler.hpp"
#include "isa/fp32.hpp"
#include "support/rtm_harness.hpp"
#include "util/bits.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::RtmRig;
using isa::Assembler;

std::uint32_t f2u(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}
float u2f(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, 4);
  return f;
}

TEST(RtmExtendedUnits, MultiplyDivideThroughPipeline) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #1000003
    PUT r2, #97
    MUL r3, r1, r2
    DIV r4, r1, r2
    REM r5, r1, r2
    GET r3
    GET r4
    GET r5
  )"));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].payload, 1000003ull * 97);
  EXPECT_EQ(responses[1].payload, 1000003ull / 97);
  EXPECT_EQ(responses[2].payload, 1000003ull % 97);
}

TEST(RtmExtendedUnits, MulDivIsMultiCycle) {
  // The FSM-based unit iterates one bit per clock: a MUL takes ~width
  // cycles, so the sequence stalls the pipeline measurably compared to a
  // single ADD.
  RtmRig rig;
  rig.run_program(Assembler::assemble(R"(
    PUT r1, #3
    PUT r2, #5
    MUL r3, r1, r2
    GET r3
  )"));
  // 32 execute cycles must have elapsed somewhere in there.
  EXPECT_GE(rig.sim.cycle(), 32u);
  EXPECT_GT(rig.rtm.counters().get("stall.lock") +
                rig.rtm.counters().get("stall.unit_busy"),
            0u);
}

TEST(RtmExtendedUnits, DivisionByZeroErrorFlagReachesHost) {
  // The thesis' §3.2.1 convention end to end: the error flag lands in the
  // destination flag register and the host reads it back.
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #42
    PUTI r2, 0
    DIV r3, r1, r2, f2
    GETF f2
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(bits::bit(responses[0].code, isa::flag::kError));
}

TEST(RtmExtendedUnits, FloatingPointThroughPipeline) {
  RtmRig rig;
  isa::Program p;
  p.emit_put(1, f2u(1.5f));
  p.emit_put(2, f2u(2.25f));
  Assembler::assemble_line("FADD r3, r1, r2", p);
  Assembler::assemble_line("FMUL r4, r1, r2", p);
  Assembler::assemble_line("FDIV r5, r2, r1", p);
  Assembler::assemble_line("GET r3", p);
  Assembler::assemble_line("GET r4", p);
  Assembler::assemble_line("GET r5", p);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(u2f(static_cast<std::uint32_t>(responses[0].payload)), 3.75f);
  EXPECT_EQ(u2f(static_cast<std::uint32_t>(responses[1].payload)), 3.375f);
  EXPECT_EQ(u2f(static_cast<std::uint32_t>(responses[2].payload)), 1.5f);
}

TEST(RtmExtendedUnits, DivmodWritesQuotientAndRemainder) {
  // The dual-output path (thesis Fig. 2.18 "Send Data 1 / Send Data 2"):
  // one DIVMOD retires through two write-arbiter transactions.
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #1000003
    PUT r2, #97
    DIVMOD r3, r4, r1, r2
    GET r3
    GET r4
  )"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].payload, 1000003ull / 97);
  EXPECT_EQ(responses[1].payload, 1000003ull % 97);
  EXPECT_EQ(rig.rtm.locks().held(), 0u);  // both locks released
}

TEST(RtmExtendedUnits, DivmodRemainderReadStallsUntilSecondRecord) {
  // A GET of the remainder register issued right behind the DIVMOD must
  // observe the value (the dst2 lock holds it back until Send Data 2).
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 47
    PUTI r2, 10
    DIVMOD r3, r4, r1, r2
    GET r4
    GET r3
  )"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].payload, 7u);
  EXPECT_EQ(responses[1].payload, 4u);
}

TEST(RtmExtendedUnits, DivmodSameDestinationIsAnError) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 9
    PUTI r2, 2
    DIVMOD r3, r3, r1, r2
    SYNC
  )"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, msg::Response::Type::kError);
  EXPECT_EQ(responses[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kBadRegister));
  EXPECT_EQ(responses[1].type, msg::Response::Type::kSyncDone);
}

TEST(RtmExtendedUnits, DivmodByZeroSetsErrorFlag) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 9
    PUTI r2, 0
    DIVMOD r3, r4, r1, r2, f2
    GETF f2
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(bits::bit(responses[0].code, isa::flag::kError));
}

TEST(RtmExtendedUnits, CordicSineThroughPipeline) {
  RtmRig rig;
  isa::Program p;
  p.emit_put(1, 0x40000000u);  // 90 degrees in BAM
  Assembler::assemble_line("SIN r2, r1", p);
  Assembler::assemble_line("COS r3, r1", p);
  Assembler::assemble_line("GET r2", p);
  Assembler::assemble_line("GET r3", p);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 2u);
  // sin(90 deg) = 1.0 in Q1.30; cos ~ 0.
  EXPECT_NEAR(static_cast<double>(
                  static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(responses[0].payload))),
              1073741824.0, 8.0);
  EXPECT_NEAR(static_cast<double>(
                  static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(responses[1].payload))),
              0.0, 8.0);
  // The CORDIC FSM iterates one rotation per clock: >= 30 cycles elapsed.
  EXPECT_GE(rig.sim.cycle(), 30u);
}

TEST(RtmExtendedUnits, FcmpSetsFlagsOnly) {
  RtmRig rig;
  isa::Program p;
  p.emit_put(1, f2u(-2.0f));
  p.emit_put(2, f2u(3.0f));
  p.emit_put(3, 0xdead);  // canary: FCMP must not write data registers
  Assembler::assemble_line("FCMP r1, r2, f1", p);
  Assembler::assemble_line("GETF f1", p);
  Assembler::assemble_line("GET r3", p);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(bits::bit(responses[0].code, isa::flag::kNegative));
  EXPECT_EQ(responses[1].payload, 0xdeadu);
}

}  // namespace
}  // namespace fpgafu::rtm
