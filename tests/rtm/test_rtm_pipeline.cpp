#include <gtest/gtest.h>

#include "fu/fsm_fu.hpp"
#include "isa/arith.hpp"
#include "isa/assembler.hpp"
#include "support/rtm_harness.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::RtmRig;
using isa::Assembler;
using msg::Response;

TEST(RtmPipeline, PutGetRoundTrip) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #0xcafef00d
    GET r1
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, Response::Type::kData);
  EXPECT_EQ(responses[0].payload, 0xcafef00du);
}

TEST(RtmPipeline, WordWidthMasksPutData) {
  RtmRig rig;  // 32-bit word width by default
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #0x1122334455667788
    GET r1
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 0x55667788u);
}

TEST(RtmPipeline, CopyAndImmediates) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r2, 200
    COPY r3, r2
    PUTF f1, 5
    COPYF f2, f1
    GET r3
    GETF f2
  )"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, Response::Type::kData);
  EXPECT_EQ(responses[0].payload, 200u);
  EXPECT_EQ(responses[1].type, Response::Type::kFlags);
  EXPECT_EQ(responses[1].code, 5);
}

TEST(RtmPipeline, ArithmeticThroughUnit) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUT r1, #1000
    PUT r2, #234
    ADD r3, r1, r2, f1
    SUB r4, r1, r2, f2
    GET r3
    GET r4
    GETF f1
  )"));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].payload, 1234u);
  EXPECT_EQ(responses[1].payload, 766u);
  // 1000 + 234 on 32 bits: no carry, not zero, not negative, no overflow.
  EXPECT_EQ(responses[2].code, 0);
}

TEST(RtmPipeline, MultiWordAddViaCarryChain) {
  // 64-bit addition on the 32-bit datapath, exactly the thesis' multi-word
  // usage of ADC with an externally provided carry.
  const std::uint64_t x = 0xffffffff12345678ULL;
  const std::uint64_t y = 0x00000001f0000088ULL;
  RtmRig rig;
  char src[512];
  std::snprintf(src, sizeof src, R"(
    PUT r1, #%llu
    PUT r2, #%llu
    PUT r3, #%llu
    PUT r4, #%llu
    ADD r5, r1, r3, f1     ; low halves, carry into f1
    ADC r6, r2, r4, f1, f2 ; high halves consume the carry
    GET r5
    GET r6
  )",
                static_cast<unsigned long long>(x & 0xffffffff),
                static_cast<unsigned long long>(x >> 32),
                static_cast<unsigned long long>(y & 0xffffffff),
                static_cast<unsigned long long>(y >> 32));
  const auto responses = rig.run_program(Assembler::assemble(src));
  ASSERT_EQ(responses.size(), 2u);
  const std::uint64_t sum =
      (responses[1].payload << 32) | responses[0].payload;
  EXPECT_EQ(sum, x + y);
}

TEST(RtmPipeline, RawHazardStallsUntilUnitWritesBack) {
  // ADD writes r3; the COPY reading r3 must observe the sum, not stale data.
  RtmRig rig({}, fu::Skeleton::kFsm);  // slow unit -> hazard window is real
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 40
    PUTI r2, 2
    ADD r3, r1, r2
    COPY r4, r3
    GET r4
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 42u);
  EXPECT_GT(rig.rtm.counters().get("stall.lock"), 0u);
}

TEST(RtmPipeline, WawHazardKeepsFinalValue) {
  RtmRig rig({}, fu::Skeleton::kFsm);
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 10
    PUTI r2, 3
    ADD r3, r1, r2     ; r3 = 13
    SUB r3, r1, r2     ; r3 = 7 (must be the final value)
    GET r3
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 7u);
}

TEST(RtmPipeline, GetObservesPrecedingComputeInIssueOrder) {
  // GET is issued immediately after the ADD with no SYNC: the lock on r3
  // must make the GET wait, so the host always sees the computed value.
  RtmRig rig({}, fu::Skeleton::kFsm);
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 5
    PUTI r2, 6
    ADD r3, r1, r2
    GET r3
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 11u);
}

TEST(RtmPipeline, SyncDrainsAllInFlightWrites) {
  RtmRig rig({}, fu::Skeleton::kFsm);
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 1
    PUTI r2, 2
    ADD r3, r1, r2
    ADD r4, r2, r2
    SYNC
    GET r3
    GET r4
  )"));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].type, Response::Type::kSyncDone);
  EXPECT_EQ(responses[1].payload, 3u);
  EXPECT_EQ(responses[2].payload, 4u);
  EXPECT_EQ(rig.rtm.locks().held(), 0u);
}

TEST(RtmPipeline, ResponsesArriveInIssueOrderWithMonotonicSeq) {
  RtmRig rig;
  isa::Program p;
  for (int i = 0; i < 30; ++i) {
    p.emit_put(1, static_cast<isa::Word>(i));
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = 1;
    p.emit(get);
  }
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 30u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].payload, i);
    if (i > 0) {
      EXPECT_GT(responses[i].seq, responses[i - 1].seq);
    }
  }
}

TEST(RtmPipeline, BadRegisterYieldsErrorResponseInOrder) {
  rtm::RtmConfig cfg;
  cfg.data_regs = 8;
  RtmRig rig(cfg);
  isa::Program p;
  p.emit_put(1, 77);
  isa::Instruction bad;
  bad.function = isa::fc::kRtm;
  bad.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  bad.src1 = 200;  // out of range
  p.emit(bad);
  isa::Instruction good;
  good.function = isa::fc::kRtm;
  good.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  good.src1 = 1;
  p.emit(good);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, Response::Type::kError);
  EXPECT_EQ(responses[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kBadRegister));
  EXPECT_EQ(responses[1].type, Response::Type::kData);
  EXPECT_EQ(responses[1].payload, 77u);
}

TEST(RtmPipeline, UnknownFunctionCodeYieldsError) {
  RtmRig rig;
  isa::Program p;
  isa::Instruction weird;
  weird.function = 0x66;  // nothing attached
  weird.dst1 = 1;
  p.emit(weird);
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, Response::Type::kError);
  EXPECT_EQ(responses[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnknownFunction));
  EXPECT_EQ(responses[1].type, Response::Type::kSyncDone);
}

TEST(RtmPipeline, OutOfOrderCompletionIsArchitecturallyInvisible) {
  // A slow FSM-based unit and a fast minimal unit complete out of order,
  // but the response stream (GETs) reflects issue order and correct values.
  rtm::RtmConfig cfg;
  RtmRig rig(cfg, fu::Skeleton::kMinimal, /*attach_units=*/false);
  fu::StatelessConfig slow_cfg{.width = 32,
                               .skeleton = fu::Skeleton::kFsm,
                               .execute_cycles = 16};
  fu::StatelessConfig fast_cfg{.width = 32,
                               .skeleton = fu::Skeleton::kMinimal};
  rig.units.push_back(fu::make_arithmetic_unit(rig.sim, slow_cfg, "slow"));
  rig.units.push_back(fu::make_logic_unit(rig.sim, fast_cfg, "fast"));
  rig.rtm.attach(isa::fc::kArith, *rig.units[0]);
  rig.rtm.attach(isa::fc::kLogic, *rig.units[1]);

  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTI r1, 9
    PUTI r2, 5
    ADD r3, r1, r2     ; slow unit: completes late
    AND r4, r1, r2     ; fast unit: completes first (different dst -> no stall)
    GET r3
    GET r4
  )"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].payload, 14u);  // issue order preserved
  EXPECT_EQ(responses[1].payload, 1u);   // 9 & 5
  // The fast unit really did finish before the slow one: its write happened
  // while the slow unit still held its lock (observable via the counters —
  // at least one lock stall was taken by the GET on r3).
  EXPECT_GT(rig.rtm.counters().get("stall.lock"), 0u);
}

TEST(RtmPipeline, NopsFlowThroughWithoutResponses) {
  RtmRig rig;
  isa::Program p;
  for (int i = 0; i < 50; ++i) {
    p.emit(isa::Instruction{});  // all-zero word = NOP
  }
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, Response::Type::kSyncDone);
}

TEST(RtmPipeline, PipelinedUnitSustainsOneInstructionPerCycle) {
  rtm::RtmConfig cfg;
  RtmRig rig(cfg, fu::Skeleton::kPipelined);
  // Fill two source registers, then issue a burst of independent ADDs
  // cycling across destination registers.
  isa::Program p;
  p.emit_put(1, 11);
  p.emit_put(2, 22);
  const int kOps = 64;
  for (int i = 0; i < kOps; ++i) {
    isa::Instruction add;
    add.function = isa::fc::kArith;
    add.variety = isa::arith::variety(isa::arith::Op::kAdd);
    add.dst1 = static_cast<isa::RegNum>(3 + (i % 8));
    add.dst_flag = static_cast<isa::RegNum>(i % 4);
    add.src1 = 1;
    add.src2 = 2;
    p.emit(add);
  }
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);

  for (const isa::Word w : p.words()) {
    rig.prod.push(w);
  }
  const auto cycles = rig.sim.run_until(
      [&] { return rig.cons.received().size() == 1; }, 5000);
  // Sustained dispatch of 64 ADDs with periodic WAW stalls (8 destination
  // registers, depth-3 pipeline) finishes in a small multiple of kOps —
  // not the ~4x a non-pipelined unit needs.
  EXPECT_LE(cycles, static_cast<std::uint64_t>(kOps) * 2 + 40);
  EXPECT_EQ(rig.rtm.regs().read(5), 33u);
}

TEST(RtmPipeline, SettleIterationsStayBounded) {
  RtmRig rig;
  rig.run_program(Assembler::assemble(R"(
    PUT r1, #3
    PUT r2, #4
    ADD r3, r1, r2
    GET r3
  )"));
  // The combinational chains (decoder -> dispatcher -> execution -> encoder
  // ready/valid) settle quickly; a blow-up here means an accidental
  // combinational cycle somewhere.
  EXPECT_LE(rig.sim.max_settle_iterations(), 12u);
}

}  // namespace
}  // namespace fpgafu::rtm
