#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "support/rtm_harness.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::RtmRig;
using isa::Assembler;

TEST(RtmTrace, RecordsDispatchesAndWritebacks) {
  RtmRig rig;
  sim::EventTrace trace;
  rig.rtm.set_trace(&trace);
  rig.run_program(Assembler::assemble(R"(
    PUT r1, #5
    PUT r2, #6
    ADD r3, r1, r2
    GET r3
  )"));

  std::size_t unit_dispatches = 0, exec_dispatches = 0;
  std::size_t hp_writebacks = 0, unit_writebacks = 0;
  for (const auto& e : trace.entries()) {
    if (e.signal.rfind("dispatch.unit", 0) == 0) {
      ++unit_dispatches;
    } else if (e.signal == "dispatch.exec") {
      ++exec_dispatches;
    } else if (e.signal == "writeback.hp") {
      ++hp_writebacks;
    } else if (e.signal.rfind("writeback.unit", 0) == 0) {
      ++unit_writebacks;
      EXPECT_EQ(e.value, 3u);  // the ADD's destination register
    }
  }
  EXPECT_EQ(unit_dispatches, 1u);   // the ADD
  EXPECT_EQ(exec_dispatches, 3u);   // two PUTs + the GET
  EXPECT_EQ(hp_writebacks, 2u);     // the two PUT register writes
  EXPECT_EQ(unit_writebacks, 1u);

  // Events are in nondecreasing cycle order, and each unit dispatch
  // precedes its writeback.
  for (std::size_t i = 1; i < trace.entries().size(); ++i) {
    EXPECT_LE(trace.entries()[i - 1].cycle, trace.entries()[i].cycle);
  }

  // Detach: no further events recorded.
  rig.rtm.set_trace(nullptr);
  const std::size_t before = trace.entries().size();
  rig.run_program(Assembler::assemble("PUT r4, #9\nGET r4"));
  EXPECT_EQ(trace.entries().size(), before);
}

TEST(RtmTrace, CapsAndCountsDrops) {
  sim::EventTrace tiny(/*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    tiny.event(static_cast<std::uint64_t>(i), "sig", 0);
  }
  EXPECT_EQ(tiny.entries().size(), 4u);
  EXPECT_EQ(tiny.dropped(), 6u);
  tiny.clear();
  EXPECT_TRUE(tiny.entries().empty());
  EXPECT_EQ(tiny.dropped(), 0u);
}

}  // namespace
}  // namespace fpgafu::rtm
