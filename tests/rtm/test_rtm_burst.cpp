#include <gtest/gtest.h>

#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "support/program_gen.hpp"
#include "support/rtm_harness.hpp"
#include "util/rng.hpp"

namespace fpgafu::rtm {
namespace {

using fpgafu::testing::RtmRig;
using isa::Assembler;
using msg::Response;

TEST(RtmBurst, PutVecGetVecRoundTrip) {
  RtmRig rig;
  Xoshiro256 rng(3);
  std::vector<isa::Word> values(10);
  for (auto& v : values) {
    v = rng.below(1u << 30);
  }
  isa::Program p;
  p.emit_put_vec(4, values);
  p.emit_get_vec(4, 10);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(responses[i].type, Response::Type::kData);
    EXPECT_EQ(responses[i].payload, values[i]) << "element " << i;
    EXPECT_EQ(responses[i].seq, responses[0].seq);  // one instruction
  }
}

TEST(RtmBurst, BurstHalvesLinkTraffic) {
  // n scalar PUTs cost 2n stream words; one PUTV costs 1 + n.
  std::vector<isa::Word> values(16, 7);
  isa::Program scalar;
  for (std::size_t i = 0; i < values.size(); ++i) {
    scalar.emit_put(static_cast<isa::RegNum>(1 + i), values[i]);
  }
  isa::Program burst;
  burst.emit_put_vec(1, values);
  EXPECT_EQ(scalar.size_words(), 32u);
  EXPECT_EQ(burst.size_words(), 17u);
}

TEST(RtmBurst, OutOfRangePutVecReportsOnceAndKeepsAlignment) {
  rtm::RtmConfig cfg;
  cfg.data_regs = 8;
  RtmRig rig(cfg);
  isa::Program p;
  p.emit_put_vec(6, {1, 2, 3});  // r6, r7, r8: r8 does not exist
  p.emit_put(2, 99);             // must still decode correctly afterwards
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 2;
  p.emit(get);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, Response::Type::kError);
  EXPECT_EQ(responses[1].payload, 99u);
  // The faulting burst wrote nothing.
  EXPECT_EQ(rig.rtm.regs().read(6), 0u);
  EXPECT_EQ(rig.rtm.regs().read(7), 0u);
}

TEST(RtmBurst, GetVecAcrossFileEndMixesDataAndErrors) {
  rtm::RtmConfig cfg;
  cfg.data_regs = 8;
  RtmRig rig(cfg);
  isa::Program p;
  p.emit_put(6, 66);
  p.emit_put(7, 77);
  p.emit_get_vec(6, 4);  // r6, r7 valid; r8, r9 out of range
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].payload, 66u);
  EXPECT_EQ(responses[1].payload, 77u);
  EXPECT_EQ(responses[2].type, Response::Type::kError);
  EXPECT_EQ(responses[3].type, Response::Type::kError);
}

TEST(RtmBurst, ZeroLengthBurstsAreNops) {
  RtmRig rig;
  isa::Program p;
  p.emit_put_vec(1, {});
  p.emit_get_vec(1, 0);
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  const auto responses = rig.run_program(p);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, Response::Type::kSyncDone);
}

TEST(RtmBurst, AssemblerPutvWordSyntax) {
  RtmRig rig;
  const auto responses = rig.run_program(Assembler::assemble(R"(
    PUTV r3, 3
    .word #10
    .word #0x14
    .word #30
    GETV r3, 3
  )"));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].payload, 10u);
  EXPECT_EQ(responses[1].payload, 20u);
  EXPECT_EQ(responses[2].payload, 30u);
}

TEST(RtmBurst, DisassembleRoundTripWithBursts) {
  isa::Program p;
  p.emit_put_vec(2, {0x11, 0x22});
  p.emit_get_vec(2, 2);
  const auto lines = isa::disassemble(p.words());
  std::string rejoined;
  for (const auto& line : lines) {
    rejoined += line + "\n";
  }
  const isa::Program p2 = Assembler::assemble(rejoined);
  EXPECT_EQ(p2.words(), p.words());
}

TEST(RtmBurst, BurstsInterleavedWithComputeMatchReference) {
  // Differential soak with bursts enabled (program_gen emits PUTV/GETV).
  rtm::RtmConfig cfg;
  cfg.data_regs = 16;
  cfg.flag_regs = 4;
  for (const std::uint64_t seed : {7100u, 7101u, 7102u, 7103u}) {
    fpgafu::testing::ProgramGenOptions opt;
    opt.instructions = 150;
    opt.include_errors = seed % 2 == 1;
    const isa::Program program =
        fpgafu::testing::random_program(cfg, seed, opt);
    RtmRig rig(cfg, fu::Skeleton::kPipelined);
    const auto hw = rig.run_program(program);
    host::ReferenceModel model(cfg);
    const auto expect = model.run(program);
    ASSERT_EQ(hw.size(), expect.size()) << "seed " << seed;
    for (std::size_t i = 0; i < hw.size(); ++i) {
      ASSERT_EQ(hw[i], expect[i]) << "seed " << seed << " response " << i;
    }
  }
}

}  // namespace
}  // namespace fpgafu::rtm
