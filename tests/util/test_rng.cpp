#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fpgafu {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit in 1000 draws
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.chance(1, 4) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

}  // namespace
}  // namespace fpgafu
