#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace fpgafu::sim {
namespace {

TEST(Counters, MergeAddsByNameAndCreatesMissing) {
  Counters a;
  a.bump("shared", 3);
  a.bump("only_a", 1);

  Counters b;
  b.bump("shared", 4);
  b.bump("only_b", 7);

  a.merge(b);
  EXPECT_EQ(a.get("shared"), 7u);
  EXPECT_EQ(a.get("only_a"), 1u);
  EXPECT_EQ(a.get("only_b"), 7u);
  // The source is untouched.
  EXPECT_EQ(b.get("shared"), 4u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(Counters, HandlesStayValidAcrossMerges) {
  Counters a;
  const Counters::Handle shared = a.handle("shared");
  const Counters::Handle mine = a.handle("mine");
  a.bump(shared, 2);
  a.bump(mine, 5);

  // Merge a peer whose name table is larger, differently ordered, and
  // overlapping — pre-merge handles must keep their names and accumulate
  // in place (merge only appends to the name table).
  Counters b;
  b.bump("zeta", 9);
  b.bump("shared", 10);
  b.bump("alpha", 1);
  a.merge(b);

  EXPECT_EQ(a.name(shared), "shared");
  EXPECT_EQ(a.name(mine), "mine");
  EXPECT_EQ(a.get(shared), 12u);
  EXPECT_EQ(a.get(mine), 5u);
  EXPECT_EQ(a.get("zeta"), 9u);
  EXPECT_EQ(a.get("alpha"), 1u);

  // Interning after the merge still works and still keeps old handles.
  const Counters::Handle late = a.handle("late");
  a.bump(late, 1);
  a.bump(shared);
  EXPECT_EQ(a.get(shared), 13u);
  EXPECT_EQ(a.get("late"), 1u);
}

TEST(Counters, RepeatedMergeAccumulates) {
  // The farm merges fresh per-shard snapshots into a new aggregate each
  // time; merging the same source twice doubles — callers rebuild the
  // aggregate from snapshots instead of re-merging in place.
  Counters total;
  Counters shard;
  shard.bump("transport.retries", 2);
  total.merge(shard);
  total.merge(shard);
  EXPECT_EQ(total.get("transport.retries"), 4u);
}

TEST(Counters, SnapshotIsIndependent) {
  Counters live;
  const Counters::Handle h = live.handle("x");
  live.bump(h, 3);

  const Counters snap = live.snapshot();
  live.bump(h, 10);

  EXPECT_EQ(snap.get("x"), 3u);
  EXPECT_EQ(live.get("x"), 13u);
  // The snapshot's name table is a deep copy: its own handle resolution
  // works without touching the live object.
  EXPECT_EQ(snap.name(h), "x");
}

TEST(Counters, MergeEmptyIsANoOp) {
  Counters a;
  a.bump("k", 1);
  a.merge(Counters{});
  EXPECT_EQ(a.get("k"), 1u);
  EXPECT_EQ(a.size(), 1u);

  Counters empty;
  empty.merge(a);
  EXPECT_EQ(empty.get("k"), 1u);
}

}  // namespace
}  // namespace fpgafu::sim
