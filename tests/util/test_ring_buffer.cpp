#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/error.hpp"

namespace fpgafu {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.front(), i);
    EXPECT_EQ(rb.pop(), i);
  }
}

TEST(RingBuffer, RandomAccessAt) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(11);
  rb.push(12);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(1), 11);
  EXPECT_EQ(rb.at(2), 12);
  EXPECT_THROW(rb.at(3), SimError);
}

TEST(RingBuffer, OverflowUnderflowThrow) {
  RingBuffer<int> rb(1);
  EXPECT_THROW(rb.pop(), SimError);
  EXPECT_THROW(rb.front(), SimError);
  rb.push(1);
  EXPECT_THROW(rb.push(2), SimError);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), SimError);
}

TEST(RingBuffer, MoveOnlyFriendly) {
  RingBuffer<std::string> rb(2);
  rb.push("hello");
  rb.push("world");
  EXPECT_EQ(rb.pop(), "hello");
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, ClearReleasesStoredPayloads) {
  // clear() must not merely rewind head/size: the slots would then keep
  // the old payloads alive (a silent leak for resource-owning elements)
  // until the slot happens to be overwritten.
  RingBuffer<std::shared_ptr<int>> rb(4);
  auto p = std::make_shared<int>(42);
  std::weak_ptr<int> alive = p;
  rb.push(std::move(p));
  ASSERT_FALSE(alive.expired());
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(alive.expired());
}

TEST(RingBuffer, PopReleasesThePoppedSlot) {
  RingBuffer<std::shared_ptr<int>> rb(2);
  auto p = std::make_shared<int>(1);
  std::weak_ptr<int> alive = p;
  rb.push(std::move(p));
  rb.pop();
  EXPECT_TRUE(alive.expired());
}

TEST(RingBuffer, ClearWorksWithMoveOnlyPayloads) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(1));
  rb.push(std::make_unique<int>(2));
  EXPECT_EQ(*rb.pop(), 1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(std::make_unique<int>(3));
  EXPECT_EQ(*rb.pop(), 3);
}

}  // namespace
}  // namespace fpgafu
