#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace fpgafu::bits {
namespace {

TEST(Bits, MaskWidths) {
  EXPECT_EQ(mask(0), 0u);
  EXPECT_EQ(mask(1), 1u);
  EXPECT_EQ(mask(8), 0xffu);
  EXPECT_EQ(mask(32), 0xffffffffu);
  EXPECT_EQ(mask(63), 0x7fffffffffffffffu);
  EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, FieldExtract) {
  const std::uint64_t w = 0xdeadbeefcafef00dULL;
  EXPECT_EQ(field(w, 63, 56), 0xdeu);
  EXPECT_EQ(field(w, 7, 0), 0x0du);
  EXPECT_EQ(field(w, 31, 0), 0xcafef00du);
  EXPECT_EQ(field(w, 63, 0), w);
}

TEST(Bits, WithFieldRoundTrip) {
  std::uint64_t w = 0;
  w = with_field(w, 63, 56, 0xab);
  w = with_field(w, 15, 8, 0xcd);
  EXPECT_EQ(field(w, 63, 56), 0xabu);
  EXPECT_EQ(field(w, 15, 8), 0xcdu);
  // Overwriting a field does not disturb neighbours.
  w = with_field(w, 15, 8, 0x11);
  EXPECT_EQ(field(w, 63, 56), 0xabu);
  EXPECT_EQ(field(w, 15, 8), 0x11u);
  // Values wider than the field are truncated.
  w = with_field(w, 11, 8, 0xff);
  EXPECT_EQ(field(w, 11, 8), 0xfu);
  EXPECT_EQ(field(w, 15, 12), 0x1u);
}

TEST(Bits, SingleBit) {
  EXPECT_TRUE(bit(0x8000000000000000u, 63));
  EXPECT_FALSE(bit(0x8000000000000000u, 62));
  EXPECT_EQ(with_bit(0, 5, true), 32u);
  EXPECT_EQ(with_bit(0xffu, 0, false), 0xfeu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
  EXPECT_EQ(sign_extend(0x00000001, 32), 1);
}

TEST(Bits, Clog2) {
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(4), 2u);
  EXPECT_EQ(clog2(5), 3u);
  EXPECT_EQ(clog2(1024), 10u);
  EXPECT_EQ(clog2(1025), 11u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(255, 8));
  EXPECT_FALSE(fits_unsigned(256, 8));
  EXPECT_TRUE(fits_unsigned(~std::uint64_t{0}, 64));
}

TEST(Bits, PopcountWindowed) {
  EXPECT_EQ(popcount(0xff, 4), 4u);
  EXPECT_EQ(popcount(0xff, 64), 8u);
  EXPECT_EQ(popcount(0, 64), 0u);
}

}  // namespace
}  // namespace fpgafu::bits
