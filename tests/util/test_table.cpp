#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace fpgafu {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"op", "cycles"});
  t.add_row({"ADD", "1"});
  t.add_row({"CMPB", "12"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("op    cycles"), std::string::npos);
  EXPECT_NE(out.find("ADD   1"), std::string::npos);
  EXPECT_NE(out.find("CMPB  12"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), SimError);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), SimError);
}

TEST(FormatHelpers, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatHelpers, Bits) {
  EXPECT_EQ(format_bits(0b1010, 4), "1010");
  EXPECT_EQ(format_bits(1, 3), "001");
  EXPECT_EQ(format_bits(0xff, 8), "11111111");
}

}  // namespace
}  // namespace fpgafu
