#include "area/area_model.hpp"

#include <gtest/gtest.h>

namespace fpgafu::area {
namespace {

TEST(AreaModel, EstimatesCompose) {
  const Estimate a{10, 20, 30};
  const Estimate b{1, 2, 3};
  const Estimate sum = a + b;
  EXPECT_EQ(sum.luts, 11u);
  EXPECT_EQ(sum.ffs, 22u);
  EXPECT_EQ(sum.bram_bits, 33u);
}

TEST(AreaModel, M4kRoundsUp) {
  EXPECT_EQ((Estimate{0, 0, 0}.m4k_blocks()), 0u);
  EXPECT_EQ((Estimate{0, 0, 1}.m4k_blocks()), 1u);
  EXPECT_EQ((Estimate{0, 0, 4096}.m4k_blocks()), 1u);
  EXPECT_EQ((Estimate{0, 0, 4097}.m4k_blocks()), 2u);
}

TEST(AreaModel, PipelinedSkeletonConsumesBram) {
  // Thesis §2.3.4: "The skeleton presented uses a lot of FPGA resources and
  // especially on-chip SRAM blocks consumed by the FIFO buffers."
  fu::StatelessConfig minimal{.width = 32, .skeleton = fu::Skeleton::kMinimal};
  fu::StatelessConfig pipelined{.width = 32,
                                .skeleton = fu::Skeleton::kPipelined,
                                .pipeline_depth = 4,
                                .fifo_capacity = 16};
  const Estimate m = stateless_unit(minimal);
  const Estimate p = stateless_unit(pipelined);
  EXPECT_EQ(m.bram_bits, 0u);
  EXPECT_GT(p.bram_bits, 0u);
  EXPECT_GT(p.ffs, m.ffs);
}

TEST(AreaModel, FifoDepthScalesBramLinearly) {
  const Estimate d8 = fifo(8, 32);
  const Estimate d64 = fifo(64, 32);
  EXPECT_EQ(d64.bram_bits, 8 * d8.bram_bits);
}

TEST(AreaModel, XsortGrowsLinearlyInCells) {
  xsort::XsortConfig small{.cells = 64, .interval_bits = 16};
  xsort::XsortConfig large{.cells = 512, .interval_bits = 16};
  const Estimate s = xsort_unit(small);
  const Estimate l = xsort_unit(large);
  const double ratio =
      static_cast<double>(l.luts) / static_cast<double>(s.luts);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(AreaModel, WiderWordsCostMoreRtm) {
  rtm::RtmConfig w32;
  w32.word_width = 32;
  rtm::RtmConfig w64;
  w64.word_width = 64;
  EXPECT_GT(rtm(w64).ffs, rtm(w32).ffs);
}

TEST(AreaModel, SystemReportEndsWithTotal) {
  rtm::RtmConfig rcfg;
  std::vector<fu::StatelessConfig> units(2);
  xsort::XsortConfig xcfg{.cells = 32};
  const auto lines = system_report(rcfg, units, &xcfg);
  ASSERT_EQ(lines.size(), 5u);  // rtm + 2 units + xsort + total
  EXPECT_EQ(lines.back().component, "total");
  Estimate sum;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    sum += lines[i].estimate;
  }
  EXPECT_EQ(sum, lines.back().estimate);
}

}  // namespace
}  // namespace fpgafu::area
