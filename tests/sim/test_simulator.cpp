#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>
#include "sim/trace.hpp"

#include "sim/component.hpp"
#include "sim/signal.hpp"

namespace fpgafu::sim {
namespace {

/// A registered up-counter with a combinational "next" output.
class Counter : public Component {
 public:
  explicit Counter(Simulator& sim) : Component(sim, "counter"), next(sim) {}

  Wire<std::uint64_t> next;

  void eval() override { next.set(value_.q() + 1); }
  void commit() override {
    value_.set_d(next.get());
    value_.tick();
  }
  void reset() override { value_.reset(); }

  std::uint64_t value() const { return value_.q(); }

 private:
  Reg<std::uint64_t> value_{*this, 0};
};

/// A two-stage combinational chain: doubles the counter's next output.
class Doubler : public Component {
 public:
  Doubler(Simulator& sim, Wire<std::uint64_t>& input)
      : Component(sim, "doubler"), out(sim), in_(&input) {}

  Wire<std::uint64_t> out;

  void eval() override { out.set(in_->get() * 2); }

 private:
  Wire<std::uint64_t>* in_;
};

TEST(Simulator, CounterCounts) {
  Simulator sim;
  Counter c(sim);
  sim.run(5);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(Simulator, CombinationalChainSettlesRegardlessOfOrder) {
  // The doubler is registered after the counter but reads the counter's
  // combinational output; the fixed-point settle must propagate it within
  // the same cycle.
  Simulator sim;
  Counter c(sim);
  Doubler d(sim, c.next);
  sim.step();
  // After one cycle the counter committed 1; during that cycle next=1 so
  // the doubler output settled to 2.
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(d.out.get(), 2u);
  EXPECT_GE(sim.max_settle_iterations(), 1u);
}

TEST(Simulator, ResetRestoresPowerOnState) {
  Simulator sim;
  Counter c(sim);
  sim.run(7);
  sim.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(sim.cycle(), 0u);
  sim.run(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  Counter c(sim);
  const auto used = sim.run_until([&] { return c.value() >= 3; }, 100);
  EXPECT_EQ(used, 3u);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Simulator, RunUntilWatchdogThrows) {
  Simulator sim;
  Counter c(sim);
  EXPECT_THROW(sim.run_until([] { return false; }, 10), SimError);
}

/// Two wires driven as a ring oscillator: a genuine combinational loop.
class Oscillator : public Component {
 public:
  explicit Oscillator(Simulator& sim)
      : Component(sim, "osc"), a(sim), b(sim) {}
  Wire<bool> a, b;
  void eval() override {
    a.set(!b.get());
    b.set(a.get());
  }
};

TEST(Simulator, CombinationalLoopDetected) {
  Simulator sim;
  Oscillator osc(sim);
  EXPECT_THROW(sim.step(), SimError);
}

TEST(Simulator, SettleLimitIsConfigurable) {
  // A long combinational chain (each stage reads the previous stage's
  // wire) needs one settle pass per stage in the worst registration order;
  // a tight limit must reject it, a generous one accept it.
  class Stage : public Component {
   public:
    Stage(Simulator& s, Wire<int>* input)
        : Component(s, "stage"), out(s), in_(input) {}
    Wire<int> out;
    void eval() override { out.set(in_ == nullptr ? 1 : in_->get() + 1); }
   private:
    Wire<int>* in_;
  };
  // Build the chain so evaluation order opposes data flow: later-registered
  // components feed earlier-registered ones is impossible with this ctor
  // order, so register stages in reverse via two simulators.
  Simulator strict;
  strict.set_settle_limit(2);
  std::vector<std::unique_ptr<Stage>> chain;
  Wire<int>* prev = nullptr;
  for (int i = 0; i < 8; ++i) {
    chain.push_back(std::make_unique<Stage>(strict, prev));
    prev = &chain.back()->out;
  }
  // Forward registration order settles in ~2 passes: fine even when strict.
  strict.step();
  EXPECT_EQ(chain.back()->out.get(), 8);
}

TEST(EventTracePrint, RendersEntries) {
  EventTrace trace(2);
  trace.event(1, "a", 5);
  trace.event(2, "b", 6);
  trace.event(3, "c", 7);  // dropped (cap 2)
  std::ostringstream os;
  trace.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1  a = 5"), std::string::npos);
  EXPECT_NE(out.find("2  b = 6"), std::string::npos);
  EXPECT_NE(out.find("(1 events dropped)"), std::string::npos);
}

TEST(Simulator, ComponentUnregistersOnDestruction) {
  Simulator sim;
  {
    Counter c(sim);
    sim.step();
  }
  // Stepping after the component died must not touch freed memory.
  sim.step();
  EXPECT_EQ(sim.cycle(), 2u);
}

TEST(Simulator, WireChangeDetectionOnlyOnValueChange) {
  Simulator sim;
  // A component that drives a constant settles in exactly one iteration
  // (plus the iteration that observes no change).
  class Const : public Component {
   public:
    explicit Const(Simulator& s) : Component(s, "const"), out(s) {}
    Wire<int> out;
    void eval() override { out.set(42); }
  };
  Const k(sim);
  sim.step();
  sim.step();
  EXPECT_LE(sim.max_settle_iterations(), 2u);
}

/// Drives a constant: settles immediately, never needs re-evaluation.
class Quiet : public Component {
 public:
  explicit Quiet(Simulator& sim) : Component(sim, "quiet"), out(sim) {}
  Wire<int> out;
  void eval() override { out.set(7); }
};

TEST(Simulator, KernelFlagSelectsSettleStrategy) {
  Simulator sim;
  // The construction default follows FPGAFU_KERNEL; without it the
  // sensitivity kernel is the default.
  if (std::getenv("FPGAFU_KERNEL") == nullptr) {
    EXPECT_EQ(sim.kernel(), Simulator::Kernel::kSensitivity);
  }
  sim.set_kernel(Simulator::Kernel::kBruteForce);
  EXPECT_EQ(sim.kernel(), Simulator::Kernel::kBruteForce);
  Counter c(sim);
  Doubler d(sim, c.next);
  sim.run(4);
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(d.out.peek(), 8u);
}

TEST(Simulator, SensitivityKernelReachesSameFixedPointWithFewerEvals) {
  // Counter -> Doubler plus eight quiet components.  Both kernels must
  // settle to the same values; the sensitivity kernel must get there
  // without re-running the quiet components on every pass.
  const auto run = [](Simulator::Kernel k) {
    Simulator sim;
    sim.set_kernel(k);
    Counter c(sim);
    Doubler d(sim, c.next);
    std::vector<std::unique_ptr<Quiet>> quiet;
    for (int i = 0; i < 8; ++i) {
      quiet.push_back(std::make_unique<Quiet>(sim));
    }
    sim.run(50);
    return std::pair<std::uint64_t, std::uint64_t>(sim.evals_performed(),
                                                   d.out.peek());
  };
  const auto [evals_sens, out_sens] = run(Simulator::Kernel::kSensitivity);
  const auto [evals_brute, out_brute] = run(Simulator::Kernel::kBruteForce);
  EXPECT_EQ(out_sens, out_brute);
  EXPECT_EQ(out_sens, 100u);  // next == 50 on the last settle, doubled
  EXPECT_LT(evals_sens, evals_brute);
}

TEST(Simulator, PendingReevalsZeroAtEveryCycleBoundary) {
  Simulator sim;
  Counter c(sim);
  Doubler d(sim, c.next);
  for (int i = 0; i < 5; ++i) {
    sim.step();
    EXPECT_EQ(sim.pending_reevals(), 0u);
  }
}

TEST(Simulator, ResetDropsPendingDirtyState) {
  Simulator sim;
  Counter c(sim);
  Doubler d(sim, c.next);
  sim.run(3);
  ASSERT_EQ(sim.pending_reevals(), 0u);
  // A stray wire write between cycles queues the recorded readers; reset()
  // must drop that queue (and the dirty flag) so the first settle after
  // reset starts clean.
  c.next.set(999);
  if (sim.kernel() == Simulator::Kernel::kSensitivity) {
    // Under the event kernel the stray write lands in the cross-cycle wake
    // set rather than the settle queue, so only the sensitivity kernel
    // observes it here.
    EXPECT_GT(sim.pending_reevals(), 0u);
  }
  sim.reset();
  EXPECT_EQ(sim.pending_reevals(), 0u);
  sim.run(2);
  EXPECT_EQ(c.value(), 2u);
  // Cycle 2's settle saw next == 2, doubled.
  EXPECT_EQ(d.out.peek(), 4u);
}

TEST(Simulator, ConditionalReadSubscribesMidSettle) {
  // Q reads `data` only while `sel` is true.  `sel` flips mid-settle
  // (Q is registered first, its driver last), so Q's subscription to
  // `data` is created by the re-evaluation pass — the fixed point must
  // still pick up the live `data` value within the same cycle.
  class Selector : public Component {
   public:
    Selector(Simulator& s, Wire<bool>& sel, Wire<int>& data)
        : Component(s, "selector"), out(s), sel_(&sel), data_(&data) {}
    Wire<int> out;
    void eval() override { out.set(sel_->get() ? data_->get() : -1); }
   private:
    Wire<bool>* sel_;
    Wire<int>* data_;
  };
  class SelDriver : public Component {
   public:
    explicit SelDriver(Simulator& s) : Component(s, "sel_driver"), sel(s) {}
    Wire<bool> sel;
    void eval() override { sel.set(enable_.q()); }
    void commit() override {
      enable_.set_d(true);
      enable_.tick();
    }
    void reset() override { enable_.reset(); }
   private:
    Reg<bool> enable_{*this, false};
  };
  Simulator sim;
  Wire<bool>* sel_wire = nullptr;
  Quiet data_src(sim);
  SelDriver drv(sim);
  sel_wire = &drv.sel;
  Selector q(sim, *sel_wire, data_src.out);
  sim.step();  // sel still false this cycle
  EXPECT_EQ(q.out.peek(), -1);
  sim.step();  // sel true: Q must read data (7) in the same settle
  EXPECT_EQ(q.out.peek(), 7);
}

TEST(Simulator, ExplicitSensitivityCoversPeekReaders) {
  // A monitor that observes through peek() leaves no automatic footprint;
  // sensitive_to() must still get it re-evaluated when the wire moves
  // late in the settle (the monitor is registered before the driver).
  class Monitor : public Component {
   public:
    explicit Monitor(Simulator& s) : Component(s, "monitor"), out(s) {}
    Wire<std::uint64_t> out;
    void bind(Wire<std::uint64_t>& watched) { watched_ = &watched; }
    void eval() override {
      out.set(watched_ == nullptr ? std::uint64_t{0} : watched_->peek());
    }
   private:
    Wire<std::uint64_t>* watched_ = nullptr;
  };
  Simulator sim;
  Monitor mon(sim);  // registered before the driver: without a recorded
  Counter c(sim);    // sensitivity the peeked value would settle one pass
  mon.bind(c.next);  // stale under the dirty-queue kernel
  c.next.sensitive_to(mon);
  sim.step();
  EXPECT_EQ(mon.out.peek(), 1u);
  sim.step();
  EXPECT_EQ(mon.out.peek(), 2u);
}

TEST(Simulator, NoteChangeFallsBackToFullReevaluation) {
  // A producer publishing through a plain member (no Wire) reports changes
  // with note_change(); consumers of the side channel must still converge
  // within the same cycle under the sensitivity kernel.
  class SideProducer : public Component {
   public:
    SideProducer(Simulator& s, Wire<std::uint64_t>& in)
        : Component(s, "side_prod"), in_(&in) {}
    std::uint64_t side = 0;
    void eval() override {
      const std::uint64_t v = in_->get() * 3;
      if (v != side) {
        side = v;
        simulator().note_change();
      }
    }
   private:
    Wire<std::uint64_t>* in_;
  };
  class SideConsumer : public Component {
   public:
    explicit SideConsumer(Simulator& s) : Component(s, "side_cons"), out(s) {}
    Wire<std::uint64_t> out;
    void bind(const SideProducer& p) { p_ = &p; }
    void eval() override { out.set(p_ == nullptr ? std::uint64_t{0} : p_->side); }
   private:
    const SideProducer* p_ = nullptr;
  };
  Simulator sim;
  // Consumer registered first: only a full re-evaluation pass reaches it,
  // because nothing records it as a reader of the side channel.
  SideConsumer cons(sim);
  Counter c(sim);
  SideProducer prod(sim, c.next);
  cons.bind(prod);
  sim.step();
  EXPECT_EQ(cons.out.peek(), 3u);
  sim.step();
  EXPECT_EQ(cons.out.peek(), 6u);
}

TEST(Simulator, CombinationalLoopDetectedUnderBruteForce) {
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kBruteForce);
  Oscillator osc(sim);
  EXPECT_THROW(sim.step(), SimError);
}

TEST(Simulator, CombinationalLoopLeavesNoQueuedWork) {
  Simulator sim;
  Oscillator osc(sim);
  EXPECT_THROW(sim.step(), SimError);
  // The failed settle must not leave components queued (they would dangle
  // if destroyed, and would corrupt the next settle's accounting).
  EXPECT_EQ(sim.pending_reevals(), 0u);
}

/// A registered counter that only advances while its enable wire is high.
/// Exercises the event kernel's commit demotion (enable low: registers
/// stop changing) and re-promotion (a recorded input wire changes).
class GatedCounter : public Component {
 public:
  GatedCounter(Simulator& sim, Wire<bool>& enable)
      : Component(sim, "gated"), en_(&enable) {}
  void eval() override {}
  void commit() override {
    value_.set_d(en_->get() ? value_.q() + 1 : value_.q());
    value_.tick();
  }
  void reset() override { value_.reset(); }
  std::uint64_t value() const { return value_.q(); }

 private:
  Wire<bool>* en_;
  Reg<std::uint64_t> value_{*this, 0};
};

TEST(EventKernel, SkipsIdleComponentsInSettleAndCommit) {
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kEvent);
  Wire<bool> en(sim);
  GatedCounter g(sim, en);
  en.set(true);
  sim.run(3);
  EXPECT_EQ(g.value(), 3u);
  en.set(false);
  sim.step();  // last commit leaves the register unchanged: demotion
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(sim.commit_set_size(), 0u);
  const std::uint64_t evals_before = sim.evals_performed();
  sim.run(5);  // fully idle: no evals, no commits
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(sim.evals_performed(), evals_before);
  en.set(true);  // recorded commit-time read: the wire change re-promotes
  sim.run(2);
  EXPECT_EQ(g.value(), 5u);
}

TEST(EventKernel, ExplicitWakeSchedulesOneEvaluation) {
  class EvalCounting : public Component {
   public:
    explicit EvalCounting(Simulator& s) : Component(s, "ec") {}
    void eval() override { ++evals; }
    int evals = 0;
  };
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kEvent);
  EvalCounting ec(sim);
  sim.run(3);  // settles once at construction, then goes quiet
  const int evals_idle = ec.evals;
  sim.run(3);
  EXPECT_EQ(ec.evals, evals_idle);
  ec.wake();
  sim.step();
  EXPECT_EQ(ec.evals, evals_idle + 1);
}

TEST(EventKernel, MatchesBruteForceWithFewerEvalsThanSensitivity) {
  // Counter -> Doubler plus eight quiet components: all three kernels must
  // reach the same fixed point; the event kernel must beat within-cycle
  // sensitivity scheduling because the quiet components stay skipped at
  // the start of every settle.
  const auto run = [](Simulator::Kernel k) {
    Simulator sim;
    sim.set_kernel(k);
    Counter c(sim);
    Doubler d(sim, c.next);
    std::vector<std::unique_ptr<Quiet>> quiet;
    for (int i = 0; i < 8; ++i) {
      quiet.push_back(std::make_unique<Quiet>(sim));
    }
    sim.run(50);
    return std::pair<std::uint64_t, std::uint64_t>(sim.evals_performed(),
                                                   d.out.peek());
  };
  const auto [evals_brute, out_brute] = run(Simulator::Kernel::kBruteForce);
  const auto [evals_sens, out_sens] = run(Simulator::Kernel::kSensitivity);
  const auto [evals_event, out_event] = run(Simulator::Kernel::kEvent);
  EXPECT_EQ(out_event, out_brute);
  EXPECT_EQ(out_event, out_sens);
  EXPECT_LT(evals_event, evals_sens);
  EXPECT_LT(evals_sens, evals_brute);
}

TEST(EventKernel, PendingReevalsZeroAtEveryCycleBoundary) {
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kEvent);
  Counter c(sim);
  Doubler d(sim, c.next);
  for (int i = 0; i < 5; ++i) {
    sim.step();
    EXPECT_EQ(sim.pending_reevals(), 0u);
  }
}

TEST(EventKernel, ResetMidActivityMatchesBruteForceFixedPoint) {
  // Reset while activity is in flight (including a stray host-side wire
  // write) must drop every piece of carried-over activity state and
  // reprime the wake set, so the first post-reset cycle reaches exactly
  // the brute-force fixed point — not a stale quiet set's.
  const auto run = [](Simulator::Kernel k) {
    Simulator sim;
    sim.set_kernel(k);
    Counter c(sim);
    Doubler d(sim, c.next);
    sim.run(3);
    c.next.set(999);  // stray write mid-activity
    sim.reset();
    sim.step();
    return std::pair<std::uint64_t, std::uint64_t>(c.value(), d.out.peek());
  };
  const auto brute = run(Simulator::Kernel::kBruteForce);
  const auto event = run(Simulator::Kernel::kEvent);
  EXPECT_EQ(event, brute);
  EXPECT_EQ(event.first, 1u);
  EXPECT_EQ(event.second, 2u);
}

TEST(KernelNames, ParseRoundTripsEveryPinnedKernel) {
  for (const auto kernel : Simulator::kAllKernels) {
    EXPECT_EQ(Simulator::parse_kernel(Simulator::kernel_name(kernel)), kernel);
  }
}

TEST(KernelNames, ParseRejectsUnknownNameWithTypedError) {
  try {
    Simulator::parse_kernel("bogus");
    FAIL() << "parse_kernel accepted an unknown name";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown settle kernel"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(KernelNames, EnvFallsBackToSensitivityWhenUnset) {
  EXPECT_EQ(Simulator::kernel_from_env(nullptr),
            Simulator::Kernel::kSensitivity);
}

TEST(KernelNames, EnvAcceptsEveryPinnedName) {
  for (const auto kernel : Simulator::kAllKernels) {
    EXPECT_EQ(Simulator::kernel_from_env(Simulator::kernel_name(kernel)),
              kernel);
  }
}

TEST(KernelNames, EnvRejectsUnknownValueNamingTheVariable) {
  // A typo in FPGAFU_KERNEL must fail loudly (naming the variable so the
  // message is actionable), never silently fall back to the default.
  try {
    Simulator::kernel_from_env("levelised");
    FAIL() << "kernel_from_env accepted an unknown value";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("FPGAFU_KERNEL"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("levelised"), std::string::npos);
  }
}

TEST(LevelizedKernel, MatchesOtherKernelsWithNoMoreEvalsThanSensitivity) {
  const auto run = [](Simulator::Kernel k) {
    Simulator sim;
    sim.set_kernel(k);
    Counter c(sim);
    Doubler d(sim, c.next);
    std::vector<std::unique_ptr<Quiet>> quiet;
    for (int i = 0; i < 8; ++i) {
      quiet.push_back(std::make_unique<Quiet>(sim));
    }
    sim.run(50);
    return std::pair<std::uint64_t, std::uint64_t>(sim.evals_performed(),
                                                   d.out.peek());
  };
  const auto [evals_brute, out_brute] = run(Simulator::Kernel::kBruteForce);
  const auto [evals_sens, out_sens] = run(Simulator::Kernel::kSensitivity);
  const auto [evals_lvl, out_lvl] = run(Simulator::Kernel::kLevelized);
  EXPECT_EQ(out_lvl, out_brute);
  EXPECT_EQ(out_lvl, out_sens);
  EXPECT_LE(evals_lvl, evals_sens);
  EXPECT_LT(evals_lvl, evals_brute);
}

TEST(LevelizedKernel, ResetMidActivityDropsScheduleStateCorrectly) {
  // Reset while a sweep's cross-cycle state is hot (wake/commit sets
  // populated, a stray host-side wire write in flight) must drop every
  // pre-placed bucket entry and re-prime the wake set, so the first
  // post-reset cycle reaches exactly the brute-force fixed point.
  const auto run = [](Simulator::Kernel k) {
    Simulator sim;
    sim.set_kernel(k);
    Counter c(sim);
    Doubler d(sim, c.next);
    sim.run(3);
    c.next.set(999);  // stray write mid-activity
    sim.reset();
    EXPECT_EQ(sim.pending_reevals(), 0u);
    sim.step();
    return std::pair<std::uint64_t, std::uint64_t>(c.value(), d.out.peek());
  };
  const auto brute = run(Simulator::Kernel::kBruteForce);
  const auto lvl = run(Simulator::Kernel::kLevelized);
  EXPECT_EQ(lvl, brute);
  EXPECT_EQ(lvl.first, 1u);
  EXPECT_EQ(lvl.second, 2u);
}

TEST(LevelizedKernel, ScheduleRebuildsWhenTopologyChangesMidRun) {
  // Components added after the first levelized elaboration invalidate the
  // compiled schedule (graph epoch bump); the next settle must re-levelize
  // and place the newcomer after its producer.
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kLevelized);
  Counter c(sim);
  sim.run(3);
  EXPECT_EQ(c.value(), 3u);
  Doubler d(sim, c.next);
  sim.run(2);
  EXPECT_EQ(c.value(), 5u);
  // Cycle 5's settle saw next == 5, doubled in the same cycle.
  EXPECT_EQ(d.out.peek(), 10u);
}

TEST(LevelizedKernel, KernelSwitchMidRunContinuesFromLiveState) {
  Simulator sim;
  Counter c(sim);
  Doubler d(sim, c.next);
  sim.run(3);  // default (sensitivity) kernel
  sim.set_kernel(Simulator::Kernel::kLevelized);
  sim.run(3);
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(d.out.peek(), 12u);
  sim.set_kernel(Simulator::Kernel::kEvent);
  sim.run(3);
  EXPECT_EQ(c.value(), 9u);
  EXPECT_EQ(d.out.peek(), 18u);
}

TEST(LevelizedKernel, CombinationalLoopDetected) {
  // The ring oscillator never converges; the dirty-queue fallback drain
  // must hit the settle limit and report it, leaving no queued work.
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kLevelized);
  Oscillator osc(sim);
  EXPECT_THROW(sim.step(), SimError);
  EXPECT_EQ(sim.pending_reevals(), 0u);
}

TEST(LevelizedKernel, ParallelSettleMatchesSingleThreaded) {
  // A level wide enough to cross kParallelLevelThreshold: one counter
  // fanning out to 2x-threshold doublers, all in the same level.  The
  // pooled sweep must reach the identical fixed point, and turning the
  // pool off again must too.
  const auto run = [](unsigned threads) {
    Simulator sim;
    sim.set_kernel(Simulator::Kernel::kLevelized);
    sim.set_settle_threads(threads);
    Counter c(sim);
    std::vector<std::unique_ptr<Doubler>> fan;
    for (std::size_t i = 0; i < 2 * Simulator::kParallelLevelThreshold; ++i) {
      fan.push_back(std::make_unique<Doubler>(sim, c.next));
    }
    sim.run(20);
    std::vector<std::uint64_t> outs;
    for (const auto& d : fan) {
      outs.push_back(d->out.peek());
    }
    return std::pair<std::uint64_t, std::vector<std::uint64_t>>(c.value(),
                                                                outs);
  };
  const auto serial = run(0);
  const auto pooled = run(3);
  EXPECT_EQ(pooled, serial);
  EXPECT_EQ(serial.first, 20u);
  EXPECT_EQ(serial.second.front(), 40u);

  // Disabling the pool mid-run hands the sweep back to the owner thread.
  Simulator sim;
  sim.set_kernel(Simulator::Kernel::kLevelized);
  sim.set_settle_threads(2);
  EXPECT_EQ(sim.settle_threads(), 2u);
  Counter c(sim);
  sim.run(2);
  sim.set_settle_threads(0);
  EXPECT_EQ(sim.settle_threads(), 0u);
  sim.run(2);
  EXPECT_EQ(c.value(), 4u);
}

TEST(Counters, HandleInterningAndBump) {
  Counters c;
  const Counters::Handle h = c.handle("dispatch.unit");
  EXPECT_EQ(c.handle("dispatch.unit"), h);  // idempotent
  c.bump(h);
  c.bump(h, 4);
  EXPECT_EQ(c.get(h), 5u);
  EXPECT_EQ(c.get("dispatch.unit"), 5u);
  EXPECT_EQ(c.name(h), "dispatch.unit");
  c.bump("other");  // string compatibility path
  EXPECT_EQ(c.get("other"), 1u);
  EXPECT_EQ(c.size(), 2u);
  const auto snapshot = c.all();
  EXPECT_EQ(snapshot.at("dispatch.unit"), 5u);
  EXPECT_EQ(snapshot.at("other"), 1u);
  EXPECT_EQ(c.get("never_bumped"), 0u);
}

TEST(Counters, ClearZeroesValuesButKeepsHandles) {
  Counters c;
  const Counters::Handle h = c.handle("stall.lock");
  c.bump(h, 9);
  c.clear();
  EXPECT_EQ(c.get(h), 0u);
  c.bump(h, 2);  // handle still valid after clear
  EXPECT_EQ(c.get(h), 2u);
  EXPECT_EQ(c.handle("stall.lock"), h);
}

TEST(Reg, DQSplit) {
  Reg<int> r{5};
  EXPECT_EQ(r.q(), 5);
  r.set_d(9);
  EXPECT_EQ(r.q(), 5);  // not visible until tick
  r.tick();
  EXPECT_EQ(r.q(), 9);
  r.reset();
  EXPECT_EQ(r.q(), 5);
}

}  // namespace
}  // namespace fpgafu::sim
