#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>
#include "sim/trace.hpp"

#include "sim/component.hpp"
#include "sim/signal.hpp"

namespace fpgafu::sim {
namespace {

/// A registered up-counter with a combinational "next" output.
class Counter : public Component {
 public:
  explicit Counter(Simulator& sim) : Component(sim, "counter"), next(sim) {}

  Wire<std::uint64_t> next;

  void eval() override { next.set(value_.q() + 1); }
  void commit() override {
    value_.set_d(next.get());
    value_.tick();
  }
  void reset() override { value_.reset(); }

  std::uint64_t value() const { return value_.q(); }

 private:
  Reg<std::uint64_t> value_{0};
};

/// A two-stage combinational chain: doubles the counter's next output.
class Doubler : public Component {
 public:
  Doubler(Simulator& sim, Wire<std::uint64_t>& input)
      : Component(sim, "doubler"), out(sim), in_(&input) {}

  Wire<std::uint64_t> out;

  void eval() override { out.set(in_->get() * 2); }

 private:
  Wire<std::uint64_t>* in_;
};

TEST(Simulator, CounterCounts) {
  Simulator sim;
  Counter c(sim);
  sim.run(5);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(Simulator, CombinationalChainSettlesRegardlessOfOrder) {
  // The doubler is registered after the counter but reads the counter's
  // combinational output; the fixed-point settle must propagate it within
  // the same cycle.
  Simulator sim;
  Counter c(sim);
  Doubler d(sim, c.next);
  sim.step();
  // After one cycle the counter committed 1; during that cycle next=1 so
  // the doubler output settled to 2.
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(d.out.get(), 2u);
  EXPECT_GE(sim.max_settle_iterations(), 1u);
}

TEST(Simulator, ResetRestoresPowerOnState) {
  Simulator sim;
  Counter c(sim);
  sim.run(7);
  sim.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(sim.cycle(), 0u);
  sim.run(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  Counter c(sim);
  const auto used = sim.run_until([&] { return c.value() >= 3; }, 100);
  EXPECT_EQ(used, 3u);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Simulator, RunUntilWatchdogThrows) {
  Simulator sim;
  Counter c(sim);
  EXPECT_THROW(sim.run_until([] { return false; }, 10), SimError);
}

/// Two wires driven as a ring oscillator: a genuine combinational loop.
class Oscillator : public Component {
 public:
  explicit Oscillator(Simulator& sim)
      : Component(sim, "osc"), a(sim), b(sim) {}
  Wire<bool> a, b;
  void eval() override {
    a.set(!b.get());
    b.set(a.get());
  }
};

TEST(Simulator, CombinationalLoopDetected) {
  Simulator sim;
  Oscillator osc(sim);
  EXPECT_THROW(sim.step(), SimError);
}

TEST(Simulator, SettleLimitIsConfigurable) {
  // A long combinational chain (each stage reads the previous stage's
  // wire) needs one settle pass per stage in the worst registration order;
  // a tight limit must reject it, a generous one accept it.
  class Stage : public Component {
   public:
    Stage(Simulator& s, Wire<int>* input)
        : Component(s, "stage"), out(s), in_(input) {}
    Wire<int> out;
    void eval() override { out.set(in_ == nullptr ? 1 : in_->get() + 1); }
   private:
    Wire<int>* in_;
  };
  // Build the chain so evaluation order opposes data flow: later-registered
  // components feed earlier-registered ones is impossible with this ctor
  // order, so register stages in reverse via two simulators.
  Simulator strict;
  strict.set_settle_limit(2);
  std::vector<std::unique_ptr<Stage>> chain;
  Wire<int>* prev = nullptr;
  for (int i = 0; i < 8; ++i) {
    chain.push_back(std::make_unique<Stage>(strict, prev));
    prev = &chain.back()->out;
  }
  // Forward registration order settles in ~2 passes: fine even when strict.
  strict.step();
  EXPECT_EQ(chain.back()->out.get(), 8);
}

TEST(EventTracePrint, RendersEntries) {
  EventTrace trace(2);
  trace.event(1, "a", 5);
  trace.event(2, "b", 6);
  trace.event(3, "c", 7);  // dropped (cap 2)
  std::ostringstream os;
  trace.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1  a = 5"), std::string::npos);
  EXPECT_NE(out.find("2  b = 6"), std::string::npos);
  EXPECT_NE(out.find("(1 events dropped)"), std::string::npos);
}

TEST(Simulator, ComponentUnregistersOnDestruction) {
  Simulator sim;
  {
    Counter c(sim);
    sim.step();
  }
  // Stepping after the component died must not touch freed memory.
  sim.step();
  EXPECT_EQ(sim.cycle(), 2u);
}

TEST(Simulator, WireChangeDetectionOnlyOnValueChange) {
  Simulator sim;
  // A component that drives a constant settles in exactly one iteration
  // (plus the iteration that observes no change).
  class Const : public Component {
   public:
    explicit Const(Simulator& s) : Component(s, "const"), out(s) {}
    Wire<int> out;
    void eval() override { out.set(42); }
  };
  Const k(sim);
  sim.step();
  sim.step();
  EXPECT_LE(sim.max_settle_iterations(), 2u);
}

TEST(Reg, DQSplit) {
  Reg<int> r{5};
  EXPECT_EQ(r.q(), 5);
  r.set_d(9);
  EXPECT_EQ(r.q(), 5);  // not visible until tick
  r.tick();
  EXPECT_EQ(r.q(), 9);
  r.reset();
  EXPECT_EQ(r.q(), 5);
}

}  // namespace
}  // namespace fpgafu::sim
