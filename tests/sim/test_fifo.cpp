#include "sim/fifo.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/handshake_harness.hpp"

namespace fpgafu::sim {
namespace {

using fpgafu::testing::Consumer;
using fpgafu::testing::Producer;

std::vector<int> iota_items(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

struct Rig {
  Simulator sim;
  HwFifo<int> fifo;
  Producer<int> prod;
  Consumer<int> cons;

  Rig(std::size_t depth, bool forward, int items, std::uint64_t pnum = 1,
      std::uint64_t pden = 1, std::uint64_t cnum = 1, std::uint64_t cden = 1)
      : fifo(sim, "fifo", depth, forward),
        prod(sim, "prod", iota_items(items), pnum, pden, 99),
        cons(sim, "cons", cnum, cden, 17) {
    prod.bind(fifo.in);
    cons.bind(fifo.out);
  }
};

TEST(HwFifo, PassesAllItemsInOrder) {
  Rig rig(4, false, 50);
  rig.sim.run_until([&] { return rig.cons.received().size() == 50; }, 1000);
  EXPECT_EQ(rig.cons.received(), iota_items(50));
}

TEST(HwFifo, FullThroughputIsOneItemPerCycle) {
  Rig rig(4, false, 100);
  const auto cycles = rig.sim.run_until(
      [&] { return rig.cons.received().size() == 100; }, 1000);
  // 1/cycle steady state plus small fill latency.
  EXPECT_LE(cycles, 105u);
}

TEST(HwFifo, SurvivesRandomStallPatterns) {
  for (const auto& [pnum, cnum] :
       {std::pair<std::uint64_t, std::uint64_t>{1, 3}, {2, 3}, {1, 2}}) {
    Rig rig(2, false, 200, pnum, 3, cnum, 3);
    rig.sim.run_until([&] { return rig.cons.received().size() == 200; },
                      20000);
    EXPECT_EQ(rig.cons.received(), iota_items(200));
  }
}

TEST(HwFifo, NeverExceedsCapacity) {
  Rig rig(3, false, 50, 1, 1, 1, 4);  // slow consumer
  for (int i = 0; i < 1000 && rig.cons.received().size() < 50; ++i) {
    rig.sim.step();
    ASSERT_LE(rig.fifo.size(), 3u);
  }
  EXPECT_EQ(rig.cons.received().size(), 50u);
}

TEST(HwFifo, CombinationalForwardSustainsRateAtDepthOne) {
  Rig fwd(1, true, 20);
  const auto cycles = fwd.sim.run_until(
      [&] { return fwd.cons.received().size() == 20; }, 200);
  EXPECT_LE(cycles, 25u);
  EXPECT_EQ(fwd.cons.received(), iota_items(20));

  // Without forwarding a depth-1 FIFO alternates push/pop: ~2 cycles/item —
  // exactly the thesis' "able to accept an instruction every second clock
  // cycle" behaviour.
  Rig plain(1, false, 20);
  const auto cycles2 = plain.sim.run_until(
      [&] { return plain.cons.received().size() == 20; }, 200);
  EXPECT_GE(cycles2, 38u);
}

TEST(HwFifo, ResetClears) {
  Rig rig(4, false, 3, 1, 1, 0, 1);  // consumer never ready
  rig.sim.run(10);
  EXPECT_GT(rig.fifo.size(), 0u);
  rig.sim.reset();
  EXPECT_EQ(rig.fifo.size(), 0u);
}

TEST(HwFifo, BackToBackSingleItem) {
  Rig rig(4, false, 1);
  rig.sim.run_until([&] { return rig.cons.received().size() == 1; }, 10);
  EXPECT_EQ(rig.cons.received().front(), 0);
}

}  // namespace
}  // namespace fpgafu::sim
