#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/signal.hpp"

namespace fpgafu::sim {
namespace {

/// A counter with a strobe that pulses every 4th cycle.
class Strober : public Component {
 public:
  explicit Strober(Simulator& sim)
      : Component(sim, "strober"), strobe(sim), count(sim) {}
  Wire<bool> strobe;
  Wire<std::uint64_t> count;
  void eval() override {
    strobe.set(value_ % 4 == 3);
    count.set(value_);
  }
  void commit() override {
    ++value_;
    mark_active();  // value_ is plain state the tracker cannot see
  }
  void reset() override { value_ = 0; }
  std::uint64_t value_ = 0;
};

TEST(Vcd, HeaderDeclaresProbes) {
  Simulator sim;
  std::ostringstream os;
  VcdWriter vcd(sim, os, 20);
  Strober s(sim);
  vcd.probe("strobe", 1, [&] { return s.strobe.get() ? 1u : 0u; });
  vcd.probe("count", 8, [&] { return s.count.get(); });
  sim.run(1);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 20ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! strobe $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 \" count $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  Simulator sim;
  std::ostringstream os;
  VcdWriter vcd(sim, os, 10);
  Strober s(sim);
  vcd.probe("strobe", 1, [&] { return s.strobe.get() ? 1u : 0u; });
  sim.run(16);
  // Strobe asserted during cycles 3, 7, 11, 15; deasserted at 4, 8, 12.
  // That is 7 transitions plus the initial sample at #0.
  EXPECT_EQ(vcd.changes_written(), 8u);
  // Timestamps use cycle numbers.
  EXPECT_NE(os.str().find("#0"), std::string::npos);
  EXPECT_NE(os.str().find("1!"), std::string::npos);
  EXPECT_NE(os.str().find("0!"), std::string::npos);
}

TEST(Vcd, VectorValuesInBinary) {
  Simulator sim;
  std::ostringstream os;
  VcdWriter vcd(sim, os, 10);
  Strober s(sim);
  vcd.probe("count", 8, [&] { return s.count.get(); });
  sim.run(6);
  const std::string out = os.str();
  EXPECT_NE(out.find("b0 !"), std::string::npos);    // initial zero
  EXPECT_NE(out.find("b101 !"), std::string::npos);  // count = 5
}

TEST(Vcd, LateProbeRejected) {
  Simulator sim;
  std::ostringstream os;
  VcdWriter vcd(sim, os, 10);
  Strober s(sim);
  vcd.probe("a", 1, [] { return 0u; });
  sim.run(1);
  EXPECT_THROW(vcd.probe("b", 1, [] { return 0u; }), SimError);
  EXPECT_THROW(VcdWriter(sim, os, 10).probe("w", 65, [] { return 0u; }),
               SimError);
}

}  // namespace
}  // namespace fpgafu::sim
