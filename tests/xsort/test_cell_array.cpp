#include "xsort/cell_array.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::xsort {
namespace {

CellCmd cmd_load() { return {.load = true}; }
CellCmd cmd_select_all() { return {.select_all = true}; }

TEST(CellArray, ShiftLoadMovesDataToFollowingCell) {
  CellArray cells({.cells = 4});
  cells.apply(cmd_load(), 10);
  cells.apply(cmd_load(), 11);
  cells.apply(cmd_load(), 12);
  EXPECT_EQ(cells.data(0), 12u);
  EXPECT_EQ(cells.data(1), 11u);
  EXPECT_EQ(cells.data(2), 10u);
  EXPECT_EQ(cells.data(3), 0u);
}

TEST(CellArray, DataMaskApplied) {
  CellArray cells({.cells = 2, .data_bits = 8});
  cells.apply(cmd_load(), 0x1ff);
  EXPECT_EQ(cells.data(0), 0xffu);
}

TEST(CellArray, SelectAllAndMatches) {
  CellArray cells({.cells = 4});
  for (const std::uint64_t v : {30u, 20u, 10u, 20u}) {
    cells.apply(cmd_load(), v);
  }
  // Data layout after loads: cell0=20, cell1=10, cell2=20, cell3=30.
  cells.apply(cmd_select_all(), 0);
  EXPECT_EQ(cells.count_selected(), 4u);
  cells.apply({.match_data_eq = true}, 20);
  EXPECT_EQ(cells.count_selected(), 2u);
  EXPECT_TRUE(cells.selected(0));
  EXPECT_FALSE(cells.selected(1));
  EXPECT_TRUE(cells.selected(2));
  EXPECT_FALSE(cells.selected(3));

  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_lt = true}, 20);
  EXPECT_EQ(cells.count_selected(), 1u);
  EXPECT_TRUE(cells.selected(1));

  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_gt = true}, 20);
  EXPECT_EQ(cells.count_selected(), 1u);
  EXPECT_TRUE(cells.selected(3));
}

TEST(CellArray, MatchesNarrowNotWiden) {
  // A match command ANDs into the current selection (the schematic gates
  // the comparator output with the existing flag).
  CellArray cells({.cells = 3});
  cells.apply(cmd_load(), 5);
  cells.apply(cmd_load(), 5);
  cells.apply(cmd_load(), 5);
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_eq = true}, 5);
  EXPECT_EQ(cells.count_selected(), 3u);
  // Deselect everything via an impossible bound match, then try to match
  // data again: nothing may come back.
  cells.apply({.match_lower = true}, 7);  // bounds are 0 -> nothing matches
  EXPECT_EQ(cells.count_selected(), 0u);
  cells.apply({.match_data_eq = true}, 5);
  EXPECT_EQ(cells.count_selected(), 0u);
}

TEST(CellArray, BoundSetsAreGatedBySelection) {
  CellArray cells({.cells = 4});
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_lower = true}, 0);  // all: lower == 0
  // Select only cells with data == 0 (all), then deselect two via bounds.
  cells.apply({.set_upper = true}, 9);    // all cells: upper <- 9
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_upper = true}, 9);
  EXPECT_EQ(cells.count_selected(), 4u);

  // Narrow selection to cell pattern, then set bounds only there.
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_eq = true}, 0);  // still all (data are zero)
  cells.apply({.set_lower = true}, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cells.lower(i), 3u);
  }
}

TEST(CellArray, SaveRestoreRoundTrip) {
  CellArray cells({.cells = 4});
  for (const std::uint64_t v : {1u, 2u, 3u, 4u}) {
    cells.apply(cmd_load(), v);
  }
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_lt = true}, 3);  // selects data 1 and 2
  EXPECT_EQ(cells.count_selected(), 2u);
  cells.apply({.save = true}, 0);
  cells.apply(cmd_select_all(), 0);
  EXPECT_EQ(cells.count_selected(), 4u);
  cells.apply({.restore = true}, 0);
  EXPECT_EQ(cells.count_selected(), 2u);
}

TEST(CellArray, SelectImpreciseTracksIntervals) {
  CellArray cells({.cells = 4, .interval_bits = 8});
  cells.apply(cmd_select_all(), 0);
  cells.apply({.set_lower = true}, 0);
  cells.apply({.set_upper = true}, 3);
  cells.apply({.select_imprecise = true}, 0);
  EXPECT_EQ(cells.count_selected(), 4u);
  EXPECT_EQ(cells.count_imprecise(), 4u);
  // Make two cells precise.
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_eq = true}, 0);  // all cells
  cells.apply({.rank_selected = true}, 0);  // ranks 0..3, all precise
  EXPECT_EQ(cells.count_imprecise(), 0u);
  cells.apply({.select_imprecise = true}, 0);
  EXPECT_EQ(cells.count_selected(), 0u);
}

TEST(CellArray, RankSelectedHandsOutConsecutiveRanks) {
  CellArray cells({.cells = 5});
  for (const std::uint64_t v : {9u, 9u, 1u, 9u, 9u}) {
    cells.apply(cmd_load(), v);
  }
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_eq = true}, 9);
  EXPECT_EQ(cells.count_selected(), 4u);
  cells.apply({.rank_selected = true}, 10);
  std::vector<std::uint64_t> ranks;
  for (std::size_t i = 0; i < 5; ++i) {
    if (cells.selected(i)) {
      EXPECT_EQ(cells.lower(i), cells.upper(i));
      ranks.push_back(cells.lower(i));
    }
  }
  EXPECT_EQ(ranks, (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

TEST(CellArray, TreeQueriesFindLeftmost) {
  CellArray cells({.cells = 8});
  for (int i = 0; i < 8; ++i) {
    cells.apply(cmd_load(), static_cast<std::uint64_t>(100 - i));
  }
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_gt = true}, 95);
  // Data layout: cell0=93 ... cell7=100; >95 selects cells 3..7.
  const Leftmost first = cells.first_selected();
  ASSERT_TRUE(first.valid);
  EXPECT_EQ(first.index, 3u);
  EXPECT_EQ(first.data, 96u);

  // first_imprecise: make cells 5.. imprecise.
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_gt = true}, 97);  // cells 5..7
  cells.apply({.set_upper = true}, 7);
  const Leftmost imp = cells.first_imprecise();
  ASSERT_TRUE(imp.valid);
  EXPECT_EQ(imp.index, 5u);
  EXPECT_EQ(imp.upper, 7u);
}

TEST(CellArray, LoadSelectedWritesOnlySelectedCells) {
  CellArray cells({.cells = 4});
  for (const std::uint64_t v : {1u, 2u, 3u, 4u}) {
    cells.apply(cmd_load(), v);
  }
  cells.apply(cmd_select_all(), 0);
  cells.apply({.match_data_eq = true}, 2);
  cells.apply({.load_selected = true}, 99);
  EXPECT_EQ(cells.data(0), 4u);
  EXPECT_EQ(cells.data(1), 3u);
  EXPECT_EQ(cells.data(2), 99u);
  EXPECT_EQ(cells.data(3), 1u);
}

TEST(CellArray, GeometryValidation) {
  EXPECT_THROW(CellArray({.cells = 0}), SimError);
  EXPECT_THROW(CellArray({.cells = 8, .data_bits = 0}), SimError);
  EXPECT_THROW(CellArray({.cells = 8, .interval_bits = 40}), SimError);
  // 2 interval bits cannot index 8 cells.
  EXPECT_THROW(CellArray({.cells = 8, .interval_bits = 2}), SimError);
  // ... but can index 4.
  CellArray ok({.cells = 4, .interval_bits = 2});
  EXPECT_EQ(ok.size(), 4u);
}

TEST(TreeFold, DepthIsLogarithmic) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 64u, 1000u}) {
    CellArray cells({.cells = n, .interval_bits = 16});
    const unsigned depth = cells.tree_depth();
    EXPECT_EQ(depth, bits::clog2(n)) << "n=" << n;
  }
}

TEST(TreeFold, CountMatchesNaiveSum) {
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> leaves;
  for (int i = 0; i < 1000; ++i) {
    leaves.push_back(rng.below(2));
  }
  std::uint64_t naive = 0;
  for (const auto v : leaves) {
    naive += v;
  }
  const auto tree = tree_fold<std::uint64_t>(
      leaves, 0, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(tree, naive);
}

}  // namespace
}  // namespace fpgafu::xsort
