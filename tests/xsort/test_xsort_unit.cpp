#include "xsort/unit.hpp"

#include <gtest/gtest.h>

#include "fu/conformance.hpp"
#include "support/fu_harness.hpp"
#include "util/rng.hpp"
#include "xsort/hw_engine.hpp"

namespace fpgafu::xsort {
namespace {

using fpgafu::testing::FuDriver;

fu::FuRequest xreq(XsortOp op, std::uint64_t operand, isa::RegNum dst = 1) {
  fu::FuRequest r;
  r.variety = static_cast<isa::VarietyCode>(op);
  r.operand1 = operand;
  r.dst_reg = dst;
  return r;
}

TEST(XsortUnit, SpeaksTheFuProtocol) {
  sim::Simulator sim;
  XsortUnit unit(sim, "xs", {.cells = 8});
  FuDriver drv(sim, "drv", unit.ports);
  fu::ConformanceMonitor mon(sim, "mon", unit.ports);
  drv.enqueue(xreq(XsortOp::kReset, 7));
  drv.enqueue(xreq(XsortOp::kLoad, 42));
  drv.enqueue(xreq(XsortOp::kCount, 0));
  sim.run_until([&] { return drv.completions().size() == 3; }, 500);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(XsortUnit, UndefinedVarietySetsErrorFlag) {
  sim::Simulator sim;
  XsortUnit unit(sim, "xs", {.cells = 8});
  FuDriver drv(sim, "drv", unit.ports);
  fu::FuRequest bad;
  bad.variety = 0x7e;  // not a defined xsort op
  drv.enqueue(bad);
  sim.run_until([&] { return drv.completions().size() == 1; }, 100);
  const auto flags = drv.completions().front().result.flags;
  EXPECT_TRUE((flags & (isa::FlagWord{1} << isa::flag::kError)) != 0);
}

TEST(XsortUnit, OperationCyclesAreFixedRegardlessOfArraySize) {
  // The paper's claim: each operation takes a fixed number of clock cycles
  // with the FPGA.  Measure dispatch-to-completion for several ops at
  // n = 8 and n = 1024 — they must be identical.
  auto cycles_for = [](std::size_t cells, XsortOp op, std::uint64_t operand) {
    sim::Simulator sim;
    XsortUnit unit(sim, "xs", {.cells = cells});
    FuDriver drv(sim, "drv", unit.ports);
    drv.enqueue(xreq(XsortOp::kReset, cells - 1));
    drv.enqueue(xreq(op, operand));
    sim.run_until([&] { return drv.completions().size() == 2; }, 1000);
    return drv.completions()[1].cycle - drv.completions()[0].cycle;
  };
  for (const XsortOp op : {XsortOp::kLoad, XsortOp::kCount,
                           XsortOp::kMatchLt, XsortOp::kPivotData,
                           XsortOp::kReadRank, XsortOp::kRankSelected}) {
    const auto small = cycles_for(8, op, 3);
    const auto large = cycles_for(1024, op, 3);
    EXPECT_EQ(small, large) << to_string(op);
  }
}

TEST(XsortUnit, MicroprogramLengthSetsLatency) {
  // dispatch (1) + microprogram length + output handoff (1).
  sim::Simulator sim;
  XsortUnit unit(sim, "xs", {.cells = 8});
  FuDriver drv(sim, "drv", unit.ports);
  drv.enqueue(xreq(XsortOp::kLoad, 5));      // 1 uop
  drv.enqueue(xreq(XsortOp::kReadRank, 0));  // 3 uops
  sim.run_until([&] { return drv.completions().size() == 2; }, 200);
  const auto d = drv.dispatch_cycles();
  const auto& c = drv.completions();
  EXPECT_EQ(c[0].cycle - d[0], 1u + unit.rom().length(XsortOp::kLoad));
  EXPECT_EQ(c[1].cycle - d[1], 1u + unit.rom().length(XsortOp::kReadRank));
}

TEST(HwXsortEngine, CommandsReturnSelectedCount) {
  HwXsortEngine eng({.cells = 4});
  eng.op(XsortOp::kReset, 3);
  eng.op(XsortOp::kLoad, 10);
  eng.op(XsortOp::kLoad, 20);
  eng.op(XsortOp::kLoad, 30);
  eng.op(XsortOp::kLoad, 40);
  EXPECT_EQ(eng.op(XsortOp::kSelectAll), 4u);
  EXPECT_EQ(eng.op(XsortOp::kMatchLt, 25), 2u);
  EXPECT_EQ(eng.op(XsortOp::kCount), 2u);
  EXPECT_EQ(eng.op(XsortOp::kCountImprecise), 4u);
}

TEST(HwXsortEngine, PivotQueries) {
  HwXsortEngine eng({.cells = 4});
  eng.op(XsortOp::kReset, 3);
  for (const std::uint64_t v : {7u, 5u, 9u, 5u}) {
    eng.op(XsortOp::kLoad, v);
  }
  // All cells imprecise <0,3>; leftmost imprecise is cell 0 (data 5 after
  // reversal-free loads: last loaded value sits in cell 0).
  EXPECT_EQ(eng.op(XsortOp::kPivotData), 5u);
  EXPECT_EQ(eng.op(XsortOp::kPivotLower), 0u);
  EXPECT_EQ(eng.op(XsortOp::kPivotUpper), 3u);
}

TEST(XsortUnit, PipelinedTreeAddsLogNToQueryLatency) {
  // DESIGN.md §6 ablation: a registered tree costs ceil(log2 n) extra
  // cycles per query microinstruction; command microinstructions are
  // unaffected.
  auto cycles_for = [](std::size_t cells, bool pipelined, XsortOp op) {
    sim::Simulator sim;
    XsortUnit unit(sim, "xs",
                   {.cells = cells, .pipelined_tree = pipelined});
    FuDriver drv(sim, "drv", unit.ports);
    drv.enqueue(xreq(op, 3));
    sim.run_until([&] { return drv.completions().size() == 1; }, 1000);
    return drv.completions()[0].cycle - drv.dispatch_cycles()[0];
  };
  // Query op: +log2(256) = +8 cycles.
  EXPECT_EQ(cycles_for(256, true, XsortOp::kCount),
            cycles_for(256, false, XsortOp::kCount) + 8);
  // Command op: unchanged.
  EXPECT_EQ(cycles_for(256, true, XsortOp::kSelectAll),
            cycles_for(256, false, XsortOp::kSelectAll));
}

TEST(XsortUnit, PipelinedTreeResultsIdentical) {
  HwXsortEngine combinational({.cells = 32});
  HwXsortEngine pipelined({.cells = 32, .pipelined_tree = true});
  Xoshiro256 rng(5);
  auto both = [&](XsortOp op, std::uint64_t operand) {
    ASSERT_EQ(combinational.op(op, operand), pipelined.op(op, operand))
        << to_string(op);
  };
  both(XsortOp::kReset, 31);
  for (int i = 0; i < 32; ++i) {
    both(XsortOp::kLoad, rng.below(100));
  }
  both(XsortOp::kSelectAll, 0);
  both(XsortOp::kCount, 0);
  both(XsortOp::kMatchLt, 50);
  both(XsortOp::kPivotData, 0);
  both(XsortOp::kReadRank, 0);
}

TEST(HwXsortEngine, CostCyclesAdvanceWithOps) {
  HwXsortEngine eng({.cells = 16});
  eng.reset_cost();
  eng.op(XsortOp::kReset, 15);
  const auto after_reset = eng.cost_cycles();
  EXPECT_GT(after_reset, 0u);
  eng.op(XsortOp::kLoad, 1);
  EXPECT_GT(eng.cost_cycles(), after_reset);
  EXPECT_EQ(eng.ops_issued(), 2u);
}

}  // namespace
}  // namespace fpgafu::xsort
