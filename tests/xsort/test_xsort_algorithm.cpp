#include "xsort/algorithm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "xsort/baseline.hpp"
#include "xsort/hw_engine.hpp"
#include "xsort/soft_engine.hpp"

namespace fpgafu::xsort {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed,
                                         std::uint64_t range) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) {
    x = rng.below(range);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Software engine first (fast), then the cycle-accurate hardware engine.

TEST(XsortAlgorithmSoft, SortsDistinctValues) {
  SoftXsortEngine eng({.cells = 32});
  XsortAlgorithm algo(eng);
  std::vector<std::uint64_t> vals;
  for (std::uint64_t i = 0; i < 32; ++i) {
    vals.push_back((31 - i) * 7 + 1);
  }
  const auto sorted = algo.sort(vals);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(XsortAlgorithmSoft, SortsWithHeavyDuplicates) {
  SoftXsortEngine eng({.cells = 64});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(64, 99, /*range=*/4);  // many duplicates
  const auto sorted = algo.sort(vals);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(XsortAlgorithmSoft, SortsAllEqual) {
  SoftXsortEngine eng({.cells = 16});
  XsortAlgorithm algo(eng);
  const std::vector<std::uint64_t> vals(16, 5);
  EXPECT_EQ(algo.sort(vals), vals);
  // All-equal resolves in a single refinement round.
  EXPECT_EQ(algo.stats().rounds, 1u);
}

TEST(XsortAlgorithmSoft, SortsAlreadySortedAndReversed) {
  for (const bool reversed : {false, true}) {
    SoftXsortEngine eng({.cells = 32});
    XsortAlgorithm algo(eng);
    std::vector<std::uint64_t> vals;
    for (std::uint64_t i = 0; i < 32; ++i) {
      vals.push_back(reversed ? 31 - i : i);
    }
    auto expect = vals;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(algo.sort(vals), expect);
  }
}

TEST(XsortAlgorithmSoft, SingleCellArray) {
  SoftXsortEngine eng({.cells = 1});
  XsortAlgorithm algo(eng);
  EXPECT_EQ(algo.sort({42}), (std::vector<std::uint64_t>{42}));
}

class XsortSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(XsortSortSweep, MatchesStdSort) {
  const auto [n, seed] = GetParam();
  SoftXsortEngine eng({.cells = n, .interval_bits = 16});
  XsortAlgorithm algo(eng);
  // Mix ranges: sparse and duplicate-heavy.
  const auto vals = random_values(n, seed, seed % 2 == 0 ? 1u << 30 : n / 2 + 1);
  const auto sorted = algo.sort(vals);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect) << "n=" << n << " seed=" << seed;
  // Rounds are bounded by the number of partitions, which is at most n.
  EXPECT_LE(algo.stats().rounds, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, XsortSortSweep,
    ::testing::Combine(::testing::Values(2, 3, 8, 17, 64, 129, 256),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>&
           pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_s" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(XsortAlgorithmSoft, SortPaddedHandlesPartialArrays) {
  SoftXsortEngine eng({.cells = 32});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(20, 7, 1000);
  const auto sorted = algo.sort_padded(vals, 32);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(XsortAlgorithmSoft, SelectMatchesNthElement) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    SoftXsortEngine eng({.cells = 128});
    XsortAlgorithm algo(eng);
    const auto vals = random_values(128, seed, 500);  // duplicates likely
    for (const std::uint64_t k : {0u, 1u, 63u, 126u, 127u}) {
      SoftXsortEngine fresh({.cells = 128});
      XsortAlgorithm a2(fresh);
      a2.load(vals);
      const auto got = a2.select(k);
      EXPECT_EQ(got, cpu_select(vals, k)) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(XsortAlgorithmSoft, SelectionRoundsAreLogarithmicOnAverage) {
  SoftXsortEngine eng({.cells = 1024, .interval_bits = 16});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(1024, 3, 1u << 30);
  algo.load(vals);
  algo.reset_stats();
  algo.select(512);
  // Expected ~2 log2(n) ~= 20 rounds; allow generous slack but far below n.
  EXPECT_LE(algo.stats().rounds, 64u);
}

TEST(XsortAlgorithmSoft, PerOpCostScalesLinearlyWithN) {
  // The Θ(n)-per-op software cost model: one primitive on an 8x bigger
  // array costs ~8x more modelled cycles (the hardware engine, by contrast,
  // is flat — see XsortUnit.OperationCyclesAreFixedRegardlessOfArraySize).
  auto cost_of_one_op = [](std::size_t n) {
    SoftXsortEngine eng({.cells = n, .interval_bits = 16});
    eng.reset_cost();
    eng.op(XsortOp::kCount);
    return static_cast<double>(eng.cost_cycles());
  };
  const double small = cost_of_one_op(64);
  const double large = cost_of_one_op(512);
  EXPECT_NEAR(large / small, 8.0, 1.0);
}

TEST(XsortAlgorithmSoft, PartialSortReturnsSmallestKInOrder) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    SoftXsortEngine eng({.cells = 256, .interval_bits = 16});
    XsortAlgorithm algo(eng);
    const auto vals = random_values(256, seed, 300);  // with duplicates
    algo.load(vals);
    auto expect = vals;
    std::sort(expect.begin(), expect.end());
    for (const std::uint64_t k : {0u, 1u, 10u, 255u, 256u}) {
      SoftXsortEngine fresh({.cells = 256, .interval_bits = 16});
      XsortAlgorithm a2(fresh);
      a2.load(vals);
      const auto got = a2.partial_sort(k);
      ASSERT_EQ(got.size(), k);
      for (std::uint64_t i = 0; i < k; ++i) {
        ASSERT_EQ(got[i], expect[i]) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(XsortAlgorithmSoft, PartialSortUsesFarFewerRoundsThanFullSort) {
  const std::size_t n = 1024;
  const auto vals = random_values(n, 77, 1u << 30);
  SoftXsortEngine full_eng({.cells = n, .interval_bits = 16});
  XsortAlgorithm full(full_eng);
  full.sort(vals);
  SoftXsortEngine part_eng({.cells = n, .interval_bits = 16});
  XsortAlgorithm part(part_eng);
  part.load(vals);
  part.reset_stats();
  part.partial_sort(8);
  EXPECT_LT(part.stats().rounds, full.stats().rounds / 3);
}

TEST(XsortAlgorithmSoft, RankOfMatchesLinearScan) {
  SoftXsortEngine eng({.cells = 128});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(128, 41, 200);
  algo.load(vals);
  for (const std::uint64_t probe : {0u, 50u, 100u, 199u, 500u}) {
    std::uint64_t expect = 0;
    for (const auto v : vals) {
      expect += v < probe ? 1 : 0;
    }
    EXPECT_EQ(algo.rank_of(probe), expect) << "probe " << probe;
  }
}

TEST(XsortAlgorithmSoft, MinMaxViaSelection) {
  SoftXsortEngine eng({.cells = 64});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(64, 51, 10000);
  algo.load(vals);
  EXPECT_EQ(algo.min(), *std::min_element(vals.begin(), vals.end()));
  SoftXsortEngine eng2({.cells = 64});
  XsortAlgorithm algo2(eng2);
  algo2.load(vals);
  EXPECT_EQ(algo2.max(), *std::max_element(vals.begin(), vals.end()));
}

// ---------------------------------------------------------------------------
// Hardware engine: identical algorithm, cycle-accurate unit.

TEST(XsortAlgorithmHw, SortsAgainstStdSort) {
  for (const std::size_t n : {4u, 16u, 33u}) {
    HwXsortEngine eng({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(eng);
    const auto vals = random_values(n, n * 31 + 7, 100);
    const auto sorted = algo.sort(vals);
    auto expect = vals;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sorted, expect) << "n=" << n;
  }
}

TEST(XsortAlgorithmHw, SelectAgainstNthElement) {
  HwXsortEngine eng({.cells = 32});
  XsortAlgorithm algo(eng);
  const auto vals = random_values(32, 55, 64);
  algo.load(vals);
  EXPECT_EQ(algo.select(10), cpu_select(vals, 10));
}

TEST(XsortAlgorithmHw, AgreesWithSoftEngineOpForOp) {
  // Differential: the cycle-accurate unit and the software emulation return
  // identical results for an arbitrary op sequence.
  HwXsortEngine hw({.cells = 16});
  SoftXsortEngine soft({.cells = 16});
  Xoshiro256 rng(21);
  auto both = [&](XsortOp op, std::uint64_t operand) {
    const auto a = hw.op(op, operand);
    const auto b = soft.op(op, operand);
    ASSERT_EQ(a, b) << to_string(op) << " operand=" << operand;
  };
  both(XsortOp::kReset, 15);
  for (int i = 0; i < 16; ++i) {
    both(XsortOp::kLoad, rng.below(40));
  }
  for (int i = 0; i < 300; ++i) {
    const XsortOp ops[] = {
        XsortOp::kSelectAll,   XsortOp::kSelectImprecise, XsortOp::kMatchLt,
        XsortOp::kMatchEq,     XsortOp::kMatchGt,         XsortOp::kMatchLower,
        XsortOp::kMatchUpper,  XsortOp::kMatchLowerI,     XsortOp::kMatchUpperI,
        XsortOp::kSetLower,    XsortOp::kSetUpper,        XsortOp::kSetBounds,
        XsortOp::kSave,        XsortOp::kRestore,         XsortOp::kCount,
        XsortOp::kCountImprecise, XsortOp::kReadFirst,    XsortOp::kPivotData,
        XsortOp::kPivotLower,  XsortOp::kPivotUpper,      XsortOp::kReadRank,
        XsortOp::kLoadSelected, XsortOp::kRankSelected};
    const XsortOp op = ops[rng.below(std::size(ops))];
    both(op, rng.below(16));
  }
}

// ---------------------------------------------------------------------------
// Baselines sanity.

TEST(Baselines, CountedQuicksortSorts) {
  BaselineStats stats;
  const auto vals = random_values(500, 3, 100);
  const auto sorted = counted_quicksort(vals, stats);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
  EXPECT_GT(stats.comparisons, 500u);
}

TEST(Baselines, CountedQuickselectMatches) {
  const auto vals = random_values(300, 9, 1000);
  for (const std::uint64_t k : {0u, 150u, 299u}) {
    BaselineStats stats;
    EXPECT_EQ(counted_quickselect(vals, k, stats), cpu_select(vals, k));
  }
}

TEST(Baselines, QuicksortComparisonsGrowLoglinearly) {
  BaselineStats s1, s2;
  counted_quicksort(random_values(1000, 5, 1u << 30), s1);
  counted_quicksort(random_values(8000, 5, 1u << 30), s2);
  const double ratio = static_cast<double>(s2.comparisons) /
                       static_cast<double>(s1.comparisons);
  // n log n growth for 8x n: ~8 * log(8000)/log(1000) ~= 10.4.
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 16.0);
}

}  // namespace
}  // namespace fpgafu::xsort
