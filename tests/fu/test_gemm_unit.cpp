#include "fu/gemm_unit.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fu/conformance.hpp"
#include "support/fu_harness.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

struct GemmRig {
  sim::Simulator sim;
  GemmUnit gemm;
  FuDriver drv;

  GemmRig(std::size_t max_m, std::size_t max_n, std::size_t max_k,
          std::uint32_t depth = 4, std::size_t fifo = 8)
      : gemm(sim, "gemm", max_m, max_n, max_k, depth, fifo),
        drv(sim, "drv", gemm.ports) {}

  FuResult op(isa::VarietyCode v, isa::Word addr, isa::Word data = 0) {
    FuRequest r;
    r.variety = v;
    r.operand1 = addr;
    r.operand2 = data;
    r.dst_reg = 1;
    const std::size_t before = drv.completions().size();
    drv.enqueue(r);
    sim.run_until([&] { return drv.completions().size() == before + 1; },
                  100000);
    return drv.completions().back().result;
  }
};

bool err(const FuResult& r) { return bits::bit(r.flags, isa::flag::kError); }

TEST(GemmUnit, ConfigLoadStartReadRoundTrip) {
  GemmRig rig(4, 4, 4);
  ASSERT_FALSE(err(rig.op(GemmUnit::kConfig, GemmUnit::config_word(2, 3, 2))));
  // A = [[1 2], [3 4]] (2x2), B = [[5 6 7], [8 9 10]] (2x3).
  const isa::Word a[] = {1, 2, 3, 4};
  const isa::Word b[] = {5, 6, 7, 8, 9, 10};
  for (isa::Word i = 0; i < 4; ++i) rig.op(GemmUnit::kLoadA, i, a[i]);
  for (isa::Word i = 0; i < 6; ++i) rig.op(GemmUnit::kLoadB, i, b[i]);
  const auto start = rig.op(GemmUnit::kStart, 0);
  ASSERT_FALSE(err(start));
  EXPECT_EQ(start.data, 2u * 3u * 2u);  // reports MACs performed
  const isa::Word want[] = {21, 24, 27, 47, 54, 61};
  for (isa::Word i = 0; i < 6; ++i) {
    EXPECT_EQ(rig.op(GemmUnit::kReadC, i).data, want[i]) << "C[" << i << "]";
  }
}

TEST(GemmUnit, AccumulatesAcrossStartsAndClears) {
  GemmRig rig(2, 2, 2);
  rig.op(GemmUnit::kConfig, GemmUnit::config_word(1, 1, 1));
  rig.op(GemmUnit::kLoadA, 0, 3);
  rig.op(GemmUnit::kLoadB, 0, 5);
  rig.op(GemmUnit::kStart, 0);
  EXPECT_EQ(rig.op(GemmUnit::kReadC, 0).data, 15u);
  rig.op(GemmUnit::kStart, 0);  // C += A*B again
  EXPECT_EQ(rig.op(GemmUnit::kReadC, 0).data, 30u);
  const auto clr = rig.op(GemmUnit::kClearC, 0);
  ASSERT_FALSE(err(clr));
  EXPECT_EQ(rig.op(GemmUnit::kReadC, 0).data, 0u);
}

TEST(GemmUnit, RejectsBadConfigAndOutOfRange) {
  GemmRig rig(3, 3, 3);
  EXPECT_TRUE(err(rig.op(GemmUnit::kConfig, GemmUnit::config_word(0, 1, 1))));
  EXPECT_TRUE(err(rig.op(GemmUnit::kConfig, GemmUnit::config_word(4, 1, 1))));
  // Failed configs leave the active dims at full capacity.
  EXPECT_EQ(rig.gemm.m(), 3u);
  ASSERT_FALSE(err(rig.op(GemmUnit::kConfig, GemmUnit::config_word(2, 2, 2))));
  EXPECT_TRUE(err(rig.op(GemmUnit::kLoadA, 4, 1)));   // m*k == 4
  EXPECT_TRUE(err(rig.op(GemmUnit::kLoadB, 4, 1)));   // k*n == 4
  EXPECT_TRUE(err(rig.op(GemmUnit::kReadC, 4)));      // m*n == 4
  EXPECT_TRUE(err(rig.op(0x7f, 0)));                  // unknown variety
  EXPECT_FALSE(err(rig.op(GemmUnit::kLoadA, 3, 1)));
}

TEST(GemmUnit, StartLatencyIsDepthPlusMacs) {
  GemmRig rig(2, 2, 2, /*depth=*/3, /*fifo=*/8);
  rig.op(GemmUnit::kConfig, GemmUnit::config_word(2, 2, 2));
  FuRequest r;
  r.variety = GemmUnit::kStart;
  r.dst_reg = 1;
  rig.drv.enqueue(r);
  rig.sim.run_until([&] { return rig.drv.completions().size() == 2; }, 1000);
  const auto dispatched = rig.drv.dispatch_cycles().back();
  const auto completed = rig.drv.completions().back().cycle;
  // Fill (depth) + one MAC per clock (m*n*k = 8), plus the ack handshake.
  EXPECT_GE(completed - dispatched, 3u + 8u);
  EXPECT_LE(completed - dispatched, 3u + 8u + 2u);
}

TEST(GemmUnit, LoadsStreamAtInitiationIntervalOne) {
  GemmRig rig(4, 4, 4, /*depth=*/4, /*fifo=*/16);
  for (isa::Word i = 0; i < 12; ++i) {
    FuRequest r;
    r.variety = GemmUnit::kLoadA;
    r.operand1 = i;
    r.operand2 = i + 1;
    r.dst_reg = 1;
    rig.drv.enqueue(r);
  }
  rig.sim.run_until([&] { return rig.drv.completions().size() == 12; }, 1000);
  // Back-to-back loads retire one per cycle once the pipeline is full.
  const auto& comps = rig.drv.completions();
  for (std::size_t i = 1; i < comps.size(); ++i) {
    EXPECT_EQ(comps[i].cycle - comps[i - 1].cycle, 1u) << "gap before " << i;
  }
}

TEST(GemmUnit, InOrderRetirementGivesSequentialConsistency) {
  GemmRig rig(2, 2, 2, /*depth=*/2, /*fifo=*/8);
  rig.op(GemmUnit::kConfig, GemmUnit::config_word(1, 1, 1));
  rig.op(GemmUnit::kLoadA, 0, 10);
  rig.op(GemmUnit::kLoadB, 0, 1);
  // Issue a sweep immediately followed by a load that overwrites A.  The
  // load's latency (depth) is far shorter than the sweep's, but in-order
  // retirement means the sweep still sees A == 10.
  FuRequest start;
  start.variety = GemmUnit::kStart;
  start.dst_reg = 1;
  FuRequest load;
  load.variety = GemmUnit::kLoadA;
  load.operand1 = 0;
  load.operand2 = 999;
  load.dst_reg = 2;
  rig.drv.enqueue(start);
  rig.drv.enqueue(load);
  rig.sim.run_until([&] { return rig.drv.completions().size() == 5; }, 1000);
  EXPECT_EQ(rig.op(GemmUnit::kReadC, 0).data, 10u);
  EXPECT_EQ(rig.gemm.peek_a(0), 999u);
}

TEST(GemmUnit, DifferentialAgainstHostOracle) {
  GemmRig rig(3, 3, 3, /*depth=*/4, /*fifo=*/9);
  std::vector<isa::Word> a(9, 0), b(9, 0), c(9, 0);
  std::size_t m = 3, n = 3, k = 3;
  Xoshiro256 rng(2026);
  for (int i = 0; i < 400; ++i) {
    switch (rng.below(6)) {
      case 0: {
        const std::size_t nm = 1 + rng.below(3);
        const std::size_t nn = 1 + rng.below(3);
        const std::size_t nk = 1 + rng.below(3);
        const auto r =
            rig.op(GemmUnit::kConfig, GemmUnit::config_word(nm, nn, nk));
        ASSERT_FALSE(err(r));
        m = nm;
        n = nn;
        k = nk;
        break;
      }
      case 1: {
        const isa::Word addr = rng.below(m * k);
        const isa::Word data = rng.next() & 0xffff;
        rig.op(GemmUnit::kLoadA, addr, data);
        a[addr] = data;
        break;
      }
      case 2: {
        const isa::Word addr = rng.below(k * n);
        const isa::Word data = rng.next() & 0xffff;
        rig.op(GemmUnit::kLoadB, addr, data);
        b[addr] = data;
        break;
      }
      case 3: {
        rig.op(GemmUnit::kStart, 0);
        for (std::size_t ii = 0; ii < m; ++ii) {
          for (std::size_t jj = 0; jj < n; ++jj) {
            isa::Word acc = c[ii * n + jj];
            for (std::size_t pp = 0; pp < k; ++pp) {
              acc += a[ii * k + pp] * b[pp * n + jj];
            }
            c[ii * n + jj] = acc;
          }
        }
        break;
      }
      case 4: {
        const isa::Word addr = rng.below(m * n);
        const auto r = rig.op(GemmUnit::kReadC, addr);
        ASSERT_EQ(r.data, c[addr]) << "C[" << addr << "] step " << i;
        break;
      }
      default:
        rig.op(GemmUnit::kClearC, 0);
        c.assign(9, 0);
        break;
    }
  }
}

TEST(GemmUnit, ConformsToProtocolUnderStalls) {
  sim::Simulator sim;
  GemmUnit gemm(sim, "gemm", 2, 2, 2, /*pipeline_depth=*/3,
                /*fifo_capacity=*/6);
  FuDriver drv(sim, "drv", gemm.ports, 2, 3, 99);  // 2/3 ack duty
  ConformanceMonitor mon(sim, "mon", gemm.ports);
  Xoshiro256 rng(11);
  for (int i = 0; i < 80; ++i) {
    FuRequest r;
    r.variety = static_cast<isa::VarietyCode>(1 + rng.below(6));
    r.operand1 = rng.below(6);  // sometimes out of range
    r.operand2 = rng.next();
    r.dst_reg = static_cast<isa::RegNum>(rng.below(8));
    drv.enqueue(r);
  }
  sim.run_until([&] { return drv.completions().size() == 80; }, 100000);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(GemmUnit, RejectsBadConstructionSizing) {
  sim::Simulator sim;
  EXPECT_THROW(GemmUnit(sim, "g", 0, 1, 1), fpgafu::SimError);
  EXPECT_THROW(GemmUnit(sim, "g", 256, 1, 1), fpgafu::SimError);
  // FIFO must out-size the pipeline (thesis 2.3.4 sizing rule).
  EXPECT_THROW(GemmUnit(sim, "g", 2, 2, 2, 4, 4), fpgafu::SimError);
}

}  // namespace
}  // namespace fpgafu::fu
