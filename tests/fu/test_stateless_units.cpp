#include <gtest/gtest.h>

#include "fu/conformance.hpp"
#include "fu/stateless_units.hpp"
#include "isa/arith.hpp"
#include "isa/logic.hpp"
#include "isa/shift.hpp"
#include "support/fu_harness.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

/// Run `n` random operations of a unit family through every skeleton and
/// check each acknowledged result against the ISA-level oracle.
class StatelessUnitSweep : public ::testing::TestWithParam<Skeleton> {};

FuRequest random_request(Xoshiro256& rng, isa::VarietyCode variety,
                         unsigned width) {
  FuRequest r;
  r.variety = variety;
  r.operand1 = rng.next() & bits::mask(width);
  r.operand2 = rng.next() & bits::mask(width);
  r.flags_in = static_cast<isa::FlagWord>(rng.below(32));
  r.dst_reg = static_cast<isa::RegNum>(rng.below(16));
  r.dst_flag_reg = static_cast<isa::RegNum>(rng.below(4));
  return r;
}

StatelessConfig config_for(Skeleton s, unsigned width) {
  StatelessConfig cfg;
  cfg.width = width;
  cfg.skeleton = s;
  cfg.execute_cycles = 2;
  cfg.pipeline_depth = 3;
  cfg.fifo_capacity = 6;
  return cfg;
}

TEST_P(StatelessUnitSweep, ArithmeticUnitMatchesOracle) {
  const unsigned width = 32;
  sim::Simulator sim;
  auto fu = make_arithmetic_unit(sim, config_for(GetParam(), width));
  FuDriver drv(sim, "drv", fu->ports, 3, 4, 11);
  ConformanceMonitor mon(sim, "mon", fu->ports);

  Xoshiro256 rng(2024);
  std::vector<FuRequest> sent;
  for (int i = 0; i < 200; ++i) {
    const auto op = isa::arith::kAllOps[rng.below(isa::arith::kAllOps.size())];
    FuRequest r = random_request(rng, isa::arith::variety(op), width);
    sent.push_back(r);
    drv.enqueue(r);
  }
  sim.run_until(
      [&] {
        // Ops with no data output still write flags, so every op produces
        // exactly one arbiter transaction.
        return drv.completions().size() == sent.size();
      },
      50000);

  for (std::size_t i = 0; i < sent.size(); ++i) {
    const FuRequest& q = sent[i];
    const FuResult& r = drv.completions()[i].result;
    const auto expect = isa::arith::evaluate(q.variety, q.operand1, q.operand2,
                                             q.flags_in, width);
    ASSERT_EQ(r.data & bits::mask(width),
              expect.write_data ? expect.value : r.data & bits::mask(width));
    if (expect.write_data) {
      ASSERT_EQ(r.data, expect.value) << "op " << i;
    }
    ASSERT_EQ(r.flags, expect.flags) << "op " << i;
    ASSERT_EQ(r.write_data, expect.write_data);
    ASSERT_TRUE(r.write_flags);
    ASSERT_EQ(r.dst_reg, q.dst_reg);
    ASSERT_EQ(r.dst_flag_reg, q.dst_flag_reg);
  }
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST_P(StatelessUnitSweep, LogicUnitMatchesOracle) {
  const unsigned width = 32;
  sim::Simulator sim;
  auto fu = make_logic_unit(sim, config_for(GetParam(), width));
  FuDriver drv(sim, "drv", fu->ports, 3, 4, 13);
  Xoshiro256 rng(99);
  std::vector<FuRequest> sent;
  for (int i = 0; i < 200; ++i) {
    const auto op = isa::logic::kAllOps[rng.below(isa::logic::kAllOps.size())];
    FuRequest r = random_request(rng, isa::logic::variety(op), width);
    sent.push_back(r);
    drv.enqueue(r);
  }
  sim.run_until([&] { return drv.completions().size() == sent.size(); },
                50000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const FuRequest& q = sent[i];
    const FuResult& r = drv.completions()[i].result;
    const auto expect =
        isa::logic::evaluate(q.variety, q.operand1, q.operand2, width);
    ASSERT_EQ(r.data, expect.value) << "op " << i;
    ASSERT_EQ(r.flags, expect.flags);
  }
}

TEST_P(StatelessUnitSweep, ShiftUnitMatchesOracle) {
  const unsigned width = 64;
  sim::Simulator sim;
  auto fu = make_shift_unit(sim, config_for(GetParam(), width));
  FuDriver drv(sim, "drv", fu->ports, 3, 4, 17);
  Xoshiro256 rng(7);
  std::vector<FuRequest> sent;
  for (int i = 0; i < 200; ++i) {
    const auto op = isa::shift::kAllOps[rng.below(isa::shift::kAllOps.size())];
    FuRequest r = random_request(rng, isa::shift::variety(op), width);
    sent.push_back(r);
    drv.enqueue(r);
  }
  sim.run_until([&] { return drv.completions().size() == sent.size(); },
                50000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const FuRequest& q = sent[i];
    const FuResult& r = drv.completions()[i].result;
    const auto expect =
        isa::shift::evaluate(q.variety, q.operand1, q.operand2, width);
    ASSERT_EQ(r.data, expect.value) << "op " << i;
    ASSERT_EQ(r.flags, expect.flags);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSkeletons, StatelessUnitSweep,
    ::testing::Values(Skeleton::kMinimal, Skeleton::kMinimalFwd, Skeleton::kFsm,
                      Skeleton::kPipelined),
    [](const ::testing::TestParamInfo<Skeleton>& pinfo) {
      switch (pinfo.param) {
        case Skeleton::kMinimal: return "Minimal";
        case Skeleton::kMinimalFwd: return "MinimalFwd";
        case Skeleton::kFsm: return "Fsm";
        case Skeleton::kPipelined: return "Pipelined";
      }
      return "Unknown";
    });

TEST(StatelessUnits, NarrowWidthMasksOperands) {
  // A 32-bit-configured unit must ignore upper operand bits entirely.
  sim::Simulator sim;
  auto fu = make_arithmetic_unit(sim, {.width = 32});
  FuDriver drv(sim, "drv", fu->ports);
  FuRequest r;
  r.variety = isa::arith::variety(isa::arith::Op::kAdd);
  r.operand1 = 0xffffffff00000001ULL;
  r.operand2 = 0x1234567800000001ULL;
  drv.enqueue(r);
  sim.run_until([&] { return drv.completions().size() == 1; }, 50);
  EXPECT_EQ(drv.completions().front().result.data, 2u);
}

}  // namespace
}  // namespace fpgafu::fu
