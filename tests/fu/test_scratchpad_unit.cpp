#include "fu/scratchpad_unit.hpp"

#include <gtest/gtest.h>

#include <map>

#include "fu/conformance.hpp"
#include "support/fu_harness.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

struct SpRig {
  sim::Simulator sim;
  ScratchpadUnit sp;
  FuDriver drv;

  explicit SpRig(std::size_t words, unsigned width = 32)
      : sp(sim, "sp", words, width), drv(sim, "drv", sp.ports) {}

  FuResult op(isa::VarietyCode v, isa::Word addr, isa::Word data = 0) {
    FuRequest r;
    r.variety = v;
    r.operand1 = addr;
    r.operand2 = data;
    r.dst_reg = 1;
    const std::size_t before = drv.completions().size();
    drv.enqueue(r);
    sim.run_until([&] { return drv.completions().size() == before + 1; },
                  1000);
    return drv.completions().back().result;
  }
};

bool err(const FuResult& r) { return bits::bit(r.flags, isa::flag::kError); }

TEST(ScratchpadUnit, WriteReadRoundTrip) {
  SpRig rig(64);
  rig.op(ScratchpadUnit::kWrite, 10, 1234);
  rig.op(ScratchpadUnit::kWrite, 63, 9999);
  EXPECT_EQ(rig.op(ScratchpadUnit::kRead, 10).data, 1234u);
  EXPECT_EQ(rig.op(ScratchpadUnit::kRead, 63).data, 9999u);
  EXPECT_EQ(rig.op(ScratchpadUnit::kRead, 11).data, 0u);
}

TEST(ScratchpadUnit, OutOfRangeSetsErrorFlag) {
  SpRig rig(16);
  EXPECT_TRUE(err(rig.op(ScratchpadUnit::kWrite, 16, 1)));
  EXPECT_TRUE(err(rig.op(ScratchpadUnit::kRead, 100)));
  EXPECT_FALSE(err(rig.op(ScratchpadUnit::kRead, 15)));
}

TEST(ScratchpadUnit, FillAndSize) {
  SpRig rig(8);
  EXPECT_EQ(rig.op(ScratchpadUnit::kSize, 0).data, 8u);
  rig.op(ScratchpadUnit::kFill, 0, 0x5a);
  for (std::size_t a = 0; a < 8; ++a) {
    EXPECT_EQ(rig.sp.peek(a), 0x5au);
  }
}

TEST(ScratchpadUnit, WidthMasksData) {
  SpRig rig(4, /*width=*/16);
  rig.op(ScratchpadUnit::kWrite, 0, 0x12345678);
  EXPECT_EQ(rig.op(ScratchpadUnit::kRead, 0).data, 0x5678u);
}

TEST(ScratchpadUnit, DifferentialAgainstStdMap) {
  SpRig rig(32);
  std::map<isa::Word, isa::Word> model;
  Xoshiro256 rng(777);
  for (int i = 0; i < 1500; ++i) {
    const isa::Word addr = rng.below(40);  // sometimes out of range
    if (rng.chance(1, 2)) {
      const isa::Word data = rng.next() & 0xffffffffu;
      const auto r = rig.op(ScratchpadUnit::kWrite, addr, data);
      if (addr < 32) {
        model[addr] = data;
        ASSERT_FALSE(err(r));
      } else {
        ASSERT_TRUE(err(r));
      }
    } else {
      const auto r = rig.op(ScratchpadUnit::kRead, addr);
      if (addr < 32) {
        const auto it = model.find(addr);
        ASSERT_EQ(r.data, it == model.end() ? 0 : it->second)
            << "addr " << addr;
      } else {
        ASSERT_TRUE(err(r));
      }
    }
  }
}

TEST(ScratchpadUnit, ConformsToProtocol) {
  sim::Simulator sim;
  ScratchpadUnit sp(sim, "sp", 16);
  FuDriver drv(sim, "drv", sp.ports, 2, 3, 44);
  ConformanceMonitor mon(sim, "mon", sp.ports);
  Xoshiro256 rng(4);
  for (int i = 0; i < 60; ++i) {
    FuRequest r;
    r.variety = rng.chance(1, 2) ? ScratchpadUnit::kWrite
                                 : ScratchpadUnit::kRead;
    r.operand1 = rng.below(16);
    r.operand2 = rng.next();
    drv.enqueue(r);
  }
  sim.run_until([&] { return drv.completions().size() == 60; }, 10000);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

}  // namespace
}  // namespace fpgafu::fu
