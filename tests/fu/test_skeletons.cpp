#include <gtest/gtest.h>

#include "fu/conformance.hpp"
#include "fu/fsm_fu.hpp"
#include "fu/minimal_fu.hpp"
#include "fu/pipelined_fu.hpp"
#include "support/fu_harness.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

/// A trivial core: value = operand1 + operand2 (no flags).
StatelessFn adder_core() {
  return [](isa::VarietyCode, isa::Word a, isa::Word b, isa::FlagWord) {
    return StatelessOut{a + b, 0, true, false};
  };
}

/// A core that produces no output at all (exercises the Fig. 6
/// "Completion / No output" edge).
StatelessFn silent_core() {
  return [](isa::VarietyCode, isa::Word, isa::Word, isa::FlagWord) {
    return StatelessOut{0, 0, false, false};
  };
}

FuRequest req(isa::Word a, isa::Word b, isa::RegNum dst = 1) {
  FuRequest r;
  r.operand1 = a;
  r.operand2 = b;
  r.dst_reg = dst;
  return r;
}

// ---------------------------------------------------------------------------
// Minimal skeleton (paper Fig. 5).

TEST(MinimalFu, ComputesAndRoutesResult) {
  sim::Simulator sim;
  MinimalFu fu(sim, "fu", adder_core());
  FuDriver drv(sim, "drv", fu.ports);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  drv.enqueue(req(40, 2, /*dst=*/5));
  sim.run_until([&] { return drv.completions().size() == 1; }, 50);
  const FuResult& r = drv.completions().front().result;
  EXPECT_EQ(r.data, 42u);
  EXPECT_EQ(r.dst_reg, 5);
  EXPECT_TRUE(r.write_data);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(MinimalFu, AcceptsEverySecondCycleWithoutForwarding) {
  // Thesis §3.2.2: "Due to their simple design they are able to accept an
  // instruction every second clock cycle."
  sim::Simulator sim;
  MinimalFu fu(sim, "fu", adder_core(), /*ack_forward=*/false);
  FuDriver drv(sim, "drv", fu.ports);
  for (int i = 0; i < 20; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 1));
  }
  sim.run_until([&] { return drv.completions().size() == 20; }, 200);
  const auto& d = drv.dispatch_cycles();
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_EQ(d[i] - d[i - 1], 2u) << "dispatch " << i;
  }
}

TEST(MinimalFu, ForwardingReachesOnePerCycle) {
  // "This could be improved to a theoretical maximum throughput of one
  // instruction every clock cycle by intelligent forwarding of the write
  // arbiter acknowledgement signals."
  sim::Simulator sim;
  MinimalFu fu(sim, "fu", adder_core(), /*ack_forward=*/true);
  FuDriver drv(sim, "drv", fu.ports);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  for (int i = 0; i < 20; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 1));
  }
  sim.run_until([&] { return drv.completions().size() == 20; }, 200);
  const auto& d = drv.dispatch_cycles();
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_EQ(d[i] - d[i - 1], 1u) << "dispatch " << i;
  }
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(MinimalFu, HoldsResultUntilAcknowledged) {
  sim::Simulator sim;
  MinimalFu fu(sim, "fu", adder_core());
  // Arbiter acknowledges only 1 cycle in 5.
  FuDriver drv(sim, "drv", fu.ports, 1, 5, 123);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  for (int i = 0; i < 10; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 100));
  }
  sim.run_until([&] { return drv.completions().size() == 10; }, 1000);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(drv.completions()[i].result.data, 100 + i);
  }
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

// ---------------------------------------------------------------------------
// FSM skeleton (paper Fig. 6).

TEST(FsmFu, SequencesIdleExecuteOutput) {
  sim::Simulator sim;
  FsmFu fu(sim, "fu", adder_core(), /*execute_cycles=*/3);
  FuDriver drv(sim, "drv", fu.ports);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  drv.enqueue(req(1, 2));
  EXPECT_EQ(fu.state(), FsmFu::State::kIdle);
  sim.step();  // dispatch accepted
  EXPECT_EQ(fu.state(), FsmFu::State::kExecute);
  sim.step();
  sim.step();
  EXPECT_EQ(fu.state(), FsmFu::State::kExecute);
  sim.step();  // third execute cycle completes
  EXPECT_EQ(fu.state(), FsmFu::State::kOutput);
  sim.step();  // acknowledged
  EXPECT_EQ(fu.state(), FsmFu::State::kIdle);
  ASSERT_EQ(drv.completions().size(), 1u);
  EXPECT_EQ(drv.completions().front().result.data, 3u);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(FsmFu, NoOutputOpsSkipOutputState) {
  sim::Simulator sim;
  FsmFu fu(sim, "fu", silent_core(), /*execute_cycles=*/1);
  FuDriver drv(sim, "drv", fu.ports);
  drv.enqueue(req(1, 2));
  drv.enqueue(req(3, 4));
  // Each op: 1 dispatch cycle + 1 execute cycle, never enters Output.
  sim.run_until([&] { return fu.completed() == 2; }, 20);
  EXPECT_LE(sim.cycle(), 6u);
  EXPECT_TRUE(drv.completions().empty());  // nothing ever offered to arbiter
}

TEST(FsmFu, ThroughputMatchesExecuteLatency) {
  sim::Simulator sim;
  FsmFu fu(sim, "fu", adder_core(), /*execute_cycles=*/2);
  FuDriver drv(sim, "drv", fu.ports);
  for (int i = 0; i < 10; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 0));
  }
  sim.run_until([&] { return drv.completions().size() == 10; }, 500);
  // Cycle cost per op: 1 (idle->execute) + 2 (execute) + 1 (output/ack).
  const auto& d = drv.dispatch_cycles();
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_EQ(d[i] - d[i - 1], 4u);
  }
}

// ---------------------------------------------------------------------------
// Pipelined skeleton (§2.3.4 performance-optimised).

TEST(PipelinedFu, OnePerCycleThroughput) {
  sim::Simulator sim;
  PipelinedFu fu(sim, "fu", adder_core(), /*depth=*/4, /*fifo=*/8);
  FuDriver drv(sim, "drv", fu.ports);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  for (int i = 0; i < 50; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 1000));
  }
  const auto cycles = sim.run_until(
      [&] { return drv.completions().size() == 50; }, 500);
  // 50 ops, depth-4 pipeline: ~50 + small drain, not 2x.
  EXPECT_LE(cycles, 60u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(drv.completions()[i].result.data, 1000 + i);
  }
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(PipelinedFu, InitiationIntervalLimitsIssueRate) {
  sim::Simulator sim;
  PipelinedFu fu(sim, "fu", adder_core(), /*depth=*/4, /*fifo=*/8,
                 /*initiation_interval=*/3);
  FuDriver drv(sim, "drv", fu.ports);
  for (int i = 0; i < 10; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 0));
  }
  sim.run_until([&] { return drv.completions().size() == 10; }, 500);
  const auto& d = drv.dispatch_cycles();
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_GE(d[i] - d[i - 1], 3u);
  }
}

TEST(PipelinedFu, StalledArbiterBackpressuresViaReservation) {
  sim::Simulator sim;
  PipelinedFu fu(sim, "fu", adder_core(), /*depth=*/2, /*fifo=*/4);
  FuDriver drv(sim, "drv", fu.ports, /*ack 1-in-8=*/1, 8, 55);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  for (int i = 0; i < 30; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 7));
  }
  for (int i = 0; i < 2000 && drv.completions().size() < 30; ++i) {
    sim.step();
    // The thesis invariant: FIFO occupancy plus in-flight never exceeds the
    // FIFO capacity, because slots are reserved at dispatch.
    ASSERT_LE(fu.buffered() + fu.in_flight(), 4u);
  }
  ASSERT_EQ(drv.completions().size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(drv.completions()[i].result.data, 7 + i);
  }
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(PipelinedFu, RejectsUndersizedFifo) {
  sim::Simulator sim;
  EXPECT_THROW(
      PipelinedFu(sim, "fu", adder_core(), /*depth=*/4, /*fifo=*/4),
      SimError);
  EXPECT_THROW(
      PipelinedFu(sim, "fu", adder_core(), /*depth=*/0, /*fifo=*/4),
      SimError);
}

TEST(PipelinedFu, LatencyIsPipelineDepth) {
  sim::Simulator sim;
  PipelinedFu fu(sim, "fu", adder_core(), /*depth=*/5, /*fifo=*/8);
  FuDriver drv(sim, "drv", fu.ports);
  drv.enqueue(req(20, 22));
  sim.run_until([&] { return drv.completions().size() == 1; }, 50);
  const auto dispatched = drv.dispatch_cycles().front();
  const auto completed = drv.completions().front().cycle;
  // depth cycles in the pipe + 1 cycle through the FIFO head.
  EXPECT_EQ(completed - dispatched, 6u);
  EXPECT_EQ(drv.completions().front().result.data, 42u);
}

// ---------------------------------------------------------------------------
// Cross-skeleton property: all three produce identical results for the same
// request sequence, differing only in timing.

TEST(Skeletons, AgreeOnResults) {
  std::vector<std::vector<isa::Word>> outputs;
  for (int variant = 0; variant < 4; ++variant) {
    sim::Simulator sim;
    std::unique_ptr<FunctionalUnit> fu;
    switch (variant) {
      case 0: fu = std::make_unique<MinimalFu>(sim, "m", adder_core()); break;
      case 1:
        fu = std::make_unique<MinimalFu>(sim, "mf", adder_core(), true);
        break;
      case 2:
        fu = std::make_unique<FsmFu>(sim, "f", adder_core(), 2);
        break;
      default:
        fu = std::make_unique<PipelinedFu>(sim, "p", adder_core(), 3, 6);
        break;
    }
    FuDriver drv(sim, "drv", fu->ports, 2, 3, 31);
    Xoshiro256 rng(4242);
    for (int i = 0; i < 40; ++i) {
      drv.enqueue(req(rng.below(1000), rng.below(1000)));
    }
    sim.run_until([&] { return drv.completions().size() == 40; }, 5000);
    std::vector<isa::Word> vals;
    for (const auto& c : drv.completions()) {
      vals.push_back(c.result.data);
    }
    outputs.push_back(std::move(vals));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_EQ(outputs[0], outputs[3]);
}

}  // namespace
}  // namespace fpgafu::fu
