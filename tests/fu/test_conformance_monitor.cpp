#include "fu/conformance.hpp"

#include <gtest/gtest.h>

#include "fu/functional_unit.hpp"
#include "support/fu_harness.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

/// A unit that violates the protocol on demand — verifies that the
/// conformance monitor actually catches what it claims to catch (testing
/// the verification tooling itself).
class MisbehavingFu : public FunctionalUnit {
 public:
  enum class Fault {
    kNone,
    kWithdrawReady,   ///< deasserts data_ready before acknowledgement (V1)
    kMutateResult,    ///< changes the result while pending (V2)
    kSwallowDispatch, ///< accepts a dispatch but never completes it (V3)
  };

  MisbehavingFu(sim::Simulator& sim, Fault fault)
      : FunctionalUnit(sim, "misbehaving"), fault_(fault) {}

  void eval() override {
    ports.idle.set(!pending_);
    // V1 fault: drop ready after two pending cycles.
    const bool ready =
        pending_ && !(fault_ == Fault::kWithdrawReady && pending_age_ >= 2);
    ports.data_ready.set(ready);
    FuResult r = out_;
    if (fault_ == Fault::kMutateResult && pending_age_ >= 2) {
      r.data ^= 0xff;  // V2 fault: result drifts while pending
    }
    ports.result.set(r);
  }

  void commit() override {
    if (pending_ || ports.dispatch.get()) {
      mark_active();  // pending_/pending_age_/out_ are plain members
    }
    if (pending_) {
      ++pending_age_;
    }
    if (pending_ && ports.data_acknowledge.get() &&
        ports.data_ready.get()) {
      pending_ = false;
      pending_age_ = 0;
      ++completed_;
    }
    if (ports.dispatch.get() && !pending_) {
      const FuRequest req = ports.request.get();
      if (fault_ == Fault::kSwallowDispatch) {
        return;  // V3 fault: dispatch vanishes
      }
      out_.data = req.operand1 + req.operand2;
      out_.dst_reg = req.dst_reg;
      out_.write_data = true;
      out_.write_flags = false;
      pending_ = true;
      pending_age_ = 0;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    pending_ = false;
    pending_age_ = 0;
    out_ = FuResult{};
  }

 private:
  Fault fault_;
  bool pending_ = false;
  int pending_age_ = 0;
  FuResult out_;
};

FuRequest req(isa::Word a, isa::Word b) {
  FuRequest r;
  r.operand1 = a;
  r.operand2 = b;
  r.dst_reg = 1;
  return r;
}

TEST(ConformanceMonitor, CleanUnitHasNoViolations) {
  sim::Simulator sim;
  MisbehavingFu fu(sim, MisbehavingFu::Fault::kNone);
  // Stalling arbiter so results sit pending for several cycles.
  FuDriver drv(sim, "drv", fu.ports, 1, 4, 3);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  for (int i = 0; i < 10; ++i) {
    drv.enqueue(req(static_cast<isa::Word>(i), 1));
  }
  sim.run_until([&] { return drv.completions().size() == 10; }, 2000);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty());
}

TEST(ConformanceMonitor, CatchesReadyWithdrawal) {
  sim::Simulator sim;
  MisbehavingFu fu(sim, MisbehavingFu::Fault::kWithdrawReady);
  FuDriver drv(sim, "drv", fu.ports, 1, 8, 5);  // slow acks expose the fault
  ConformanceMonitor mon(sim, "mon", fu.ports);
  drv.enqueue(req(1, 2));
  sim.run(40);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_NE(mon.violations().front().find("withdrawn"), std::string::npos);
}

TEST(ConformanceMonitor, CatchesResultMutation) {
  sim::Simulator sim;
  MisbehavingFu fu(sim, MisbehavingFu::Fault::kMutateResult);
  FuDriver drv(sim, "drv", fu.ports, 1, 8, 5);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  drv.enqueue(req(1, 2));
  sim.run(40);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_NE(mon.violations().front().find("result changed"),
            std::string::npos);
}

TEST(ConformanceMonitor, CatchesSwallowedDispatchAtDrain) {
  sim::Simulator sim;
  MisbehavingFu fu(sim, MisbehavingFu::Fault::kSwallowDispatch);
  FuDriver drv(sim, "drv", fu.ports);
  ConformanceMonitor mon(sim, "mon", fu.ports);
  drv.enqueue(req(1, 2));
  sim.run(20);
  mon.check_drained();
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_NE(mon.violations().front().find("1 dispatches but 0 completions"),
            std::string::npos);
}

}  // namespace
}  // namespace fpgafu::fu
