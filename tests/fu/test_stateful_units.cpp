#include <gtest/gtest.h>

#include <map>

#include "fu/cam_unit.hpp"
#include "fu/conformance.hpp"
#include "fu/prng_unit.hpp"
#include "support/fu_harness.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::fu {
namespace {

using fpgafu::testing::FuDriver;

FuRequest req(isa::VarietyCode variety, isa::Word op1 = 0, isa::Word op2 = 0) {
  FuRequest r;
  r.variety = variety;
  r.operand1 = op1;
  r.operand2 = op2;
  r.dst_reg = 1;
  return r;
}

// ---------------------------------------------------------------------------
// PRNG unit (paper §IV-B: "pseudorandom number generators").

TEST(PrngUnit, DeterministicSequenceFromSeed) {
  auto run_sequence = [](std::uint64_t seed, int n) {
    sim::Simulator sim;
    PrngUnit prng(sim, "prng", 32);
    FuDriver drv(sim, "drv", prng.ports);
    drv.enqueue(req(PrngUnit::kSeed, seed));
    for (int i = 0; i < n; ++i) {
      drv.enqueue(req(PrngUnit::kNext));
    }
    sim.run_until(
        [&] { return drv.completions().size() == static_cast<std::size_t>(n) + 1; },
        10000);
    std::vector<isa::Word> out;
    for (std::size_t i = 1; i < drv.completions().size(); ++i) {
      out.push_back(drv.completions()[i].result.data);
    }
    return out;
  };
  const auto a = run_sequence(42, 50);
  const auto b = run_sequence(42, 50);
  const auto c = run_sequence(43, 50);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Values fit the configured width.
  for (const auto v : a) {
    EXPECT_LE(v, bits::mask(32));
  }
}

TEST(PrngUnit, PeekDoesNotAdvance) {
  sim::Simulator sim;
  PrngUnit prng(sim, "prng", 32);
  FuDriver drv(sim, "drv", prng.ports);
  drv.enqueue(req(PrngUnit::kSeed, 7));
  drv.enqueue(req(PrngUnit::kPeek));
  drv.enqueue(req(PrngUnit::kPeek));
  drv.enqueue(req(PrngUnit::kNext));
  sim.run_until([&] { return drv.completions().size() == 4; }, 1000);
  EXPECT_EQ(drv.completions()[1].result.data, drv.completions()[2].result.data);
  EXPECT_NE(drv.completions()[2].result.data, drv.completions()[3].result.data);
}

TEST(PrngUnit, ZeroSeedIsRepaired) {
  // xorshift sticks at zero; the unit must substitute a nonzero seed.
  sim::Simulator sim;
  PrngUnit prng(sim, "prng", 32);
  FuDriver drv(sim, "drv", prng.ports);
  drv.enqueue(req(PrngUnit::kSeed, 0));
  drv.enqueue(req(PrngUnit::kNext));
  sim.run_until([&] { return drv.completions().size() == 2; }, 1000);
  EXPECT_NE(prng.state(), 0u);
}

TEST(PrngUnit, ConformsToProtocol) {
  sim::Simulator sim;
  PrngUnit prng(sim, "prng");
  FuDriver drv(sim, "drv", prng.ports, 1, 3, 77);  // stalling arbiter
  ConformanceMonitor mon(sim, "mon", prng.ports);
  for (int i = 0; i < 40; ++i) {
    drv.enqueue(req(PrngUnit::kNext));
  }
  sim.run_until([&] { return drv.completions().size() == 40; }, 5000);
  mon.check_drained();
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(PrngUnit, RoughUniformity) {
  sim::Simulator sim;
  PrngUnit prng(sim, "prng", 32);
  FuDriver drv(sim, "drv", prng.ports);
  const int n = 2000;
  drv.enqueue(req(PrngUnit::kSeed, 99));
  for (int i = 0; i < n; ++i) {
    drv.enqueue(req(PrngUnit::kNext));
  }
  sim.run_until(
      [&] { return drv.completions().size() == static_cast<std::size_t>(n) + 1; },
      100000);
  int buckets[4] = {0, 0, 0, 0};
  for (std::size_t i = 1; i < drv.completions().size(); ++i) {
    ++buckets[drv.completions()[i].result.data >> 30];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, n / 4, n / 8);
  }
}

// ---------------------------------------------------------------------------
// CAM unit (paper §IV-B: "associative memories").

struct CamRig {
  sim::Simulator sim;
  CamUnit cam;
  FuDriver drv;

  explicit CamRig(std::size_t capacity)
      : cam(sim, "cam", capacity), drv(sim, "drv", cam.ports) {}

  fu::FuResult op(isa::VarietyCode v, isa::Word key = 0, isa::Word value = 0) {
    const std::size_t before = drv.completions().size();
    drv.enqueue(req(v, key, value));
    sim.run_until([&] { return drv.completions().size() == before + 1; },
                  1000);
    return drv.completions().back().result;
  }
};

bool hit(const fu::FuResult& r) {
  return bits::bit(r.flags, isa::flag::kCarry);
}

TEST(CamUnit, InsertLookupErase) {
  CamRig rig(8);
  rig.op(CamUnit::kInsert, 100, 1111);
  rig.op(CamUnit::kInsert, 200, 2222);
  const auto l1 = rig.op(CamUnit::kLookup, 100);
  EXPECT_TRUE(hit(l1));
  EXPECT_EQ(l1.data, 1111u);
  const auto miss = rig.op(CamUnit::kLookup, 300);
  EXPECT_FALSE(hit(miss));
  EXPECT_TRUE(bits::bit(miss.flags, isa::flag::kZero));
  rig.op(CamUnit::kErase, 100);
  EXPECT_FALSE(hit(rig.op(CamUnit::kLookup, 100)));
  EXPECT_TRUE(hit(rig.op(CamUnit::kLookup, 200)));
}

TEST(CamUnit, InsertUpdatesExistingKey) {
  CamRig rig(2);
  rig.op(CamUnit::kInsert, 5, 50);
  rig.op(CamUnit::kInsert, 5, 51);  // update, not a second slot
  EXPECT_EQ(rig.op(CamUnit::kLookup, 5).data, 51u);
  EXPECT_EQ(rig.op(CamUnit::kCount).data, 1u);
}

TEST(CamUnit, FullTableSetsErrorFlag) {
  CamRig rig(2);
  rig.op(CamUnit::kInsert, 1, 10);
  rig.op(CamUnit::kInsert, 2, 20);
  const auto full = rig.op(CamUnit::kInsert, 3, 30);
  EXPECT_TRUE(bits::bit(full.flags, isa::flag::kError));
  // Existing contents untouched.
  EXPECT_EQ(rig.op(CamUnit::kLookup, 1).data, 10u);
  EXPECT_FALSE(hit(rig.op(CamUnit::kLookup, 3)));
  // Updating an existing key still works when full.
  EXPECT_FALSE(bits::bit(rig.op(CamUnit::kInsert, 2, 21).flags,
                         isa::flag::kError));
}

TEST(CamUnit, ClearEmptiesEverything) {
  CamRig rig(4);
  rig.op(CamUnit::kInsert, 1, 10);
  rig.op(CamUnit::kInsert, 2, 20);
  rig.op(CamUnit::kClear);
  EXPECT_EQ(rig.op(CamUnit::kCount).data, 0u);
  EXPECT_FALSE(hit(rig.op(CamUnit::kLookup, 1)));
}

TEST(CamUnit, LookupLatencyIndependentOfCapacity) {
  // The associative search is one cycle whatever the table size — the
  // circuit-parallelism property.
  auto lookup_cycles = [](std::size_t capacity) {
    CamRig rig(capacity);
    rig.op(CamUnit::kInsert, 42, 4242);
    const std::uint64_t before = rig.sim.cycle();
    rig.op(CamUnit::kLookup, 42);
    return rig.sim.cycle() - before;
  };
  EXPECT_EQ(lookup_cycles(4), lookup_cycles(4096));
}

TEST(CamUnit, DifferentialAgainstStdMap) {
  CamRig rig(64);
  std::map<isa::Word, isa::Word> model;
  Xoshiro256 rng(321);
  for (int i = 0; i < 2000; ++i) {
    const isa::Word key = rng.below(100);
    switch (rng.below(4)) {
      case 0: {
        const isa::Word value = rng.next();
        const auto r = rig.op(CamUnit::kInsert, key, value);
        if (model.size() < 64 || model.count(key) > 0) {
          model[key] = value;
          ASSERT_FALSE(bits::bit(r.flags, isa::flag::kError));
        } else {
          ASSERT_TRUE(bits::bit(r.flags, isa::flag::kError));
        }
        break;
      }
      case 1:
        rig.op(CamUnit::kErase, key);
        model.erase(key);
        break;
      case 2: {
        const auto r = rig.op(CamUnit::kLookup, key);
        const auto it = model.find(key);
        ASSERT_EQ(hit(r), it != model.end()) << "key " << key;
        if (it != model.end()) {
          ASSERT_EQ(r.data, it->second);
        }
        break;
      }
      default:
        ASSERT_EQ(rig.op(CamUnit::kCount).data, model.size());
        break;
    }
  }
}

}  // namespace
}  // namespace fpgafu::fu
