#include "codegen/vhdl.hpp"

#include <gtest/gtest.h>

namespace fpgafu::codegen {
namespace {

/// Rough structural sanity: every `entity X is` / `architecture Y of` has a
/// matching `end`, and port lists balance their parentheses.
void expect_balanced(const std::string& vhdl) {
  int paren = 0;
  for (const char c : vhdl) {
    paren += c == '(' ? 1 : c == ')' ? -1 : 0;
    ASSERT_GE(paren, 0);
  }
  EXPECT_EQ(paren, 0);
  auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = vhdl.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  // "end entity X;" itself contains "entity ", hence the doubling.
  EXPECT_EQ(count("entity "), 2 * count("end entity "));
  EXPECT_EQ(count("architecture "), 2 * count("end architecture "));
  EXPECT_EQ(count("process ("), count("end process"));
}

TEST(VhdlCodegen, GenericsPackageCarriesConfiguration) {
  rtm::RtmConfig cfg;
  cfg.word_width = 64;
  cfg.data_regs = 48;
  cfg.flag_regs = 16;
  cfg.encoder_depth = 6;
  cfg.round_robin_arbiter = true;
  const std::string pkg = rtm_generics_package(cfg, "my_config");
  EXPECT_NE(pkg.find("package my_config is"), std::string::npos);
  EXPECT_NE(pkg.find("WORD_WIDTH        : natural := 64"), std::string::npos);
  EXPECT_NE(pkg.find("DATA_REGS         : natural := 48"), std::string::npos);
  EXPECT_NE(pkg.find("DATA_REG_BITS     : natural := 6"), std::string::npos);
  EXPECT_NE(pkg.find("FLAG_REG_BITS     : natural := 4"), std::string::npos);
  EXPECT_NE(pkg.find("ARBITER_ROUND_ROBIN : boolean := true"),
            std::string::npos);
  EXPECT_NE(pkg.find("end package my_config;"), std::string::npos);
}

TEST(VhdlCodegen, MinimalSkeletonEntity) {
  const std::string vhdl =
      functional_unit_entity("my_unit", {.width = 32});
  expect_balanced(vhdl);
  EXPECT_NE(vhdl.find("entity my_unit is"), std::string::npos);
  EXPECT_NE(vhdl.find("data_input_1     : in  std_logic_vector(31 downto 0)"),
            std::string::npos);
  EXPECT_NE(vhdl.find("architecture minimal of my_unit"), std::string::npos);
  EXPECT_NE(vhdl.find("idle <= not reg_data_ready;"), std::string::npos);
  // Every protocol signal of Fig. 5 is present.
  for (const char* port :
       {"dispatch", "variety_code", "idle", "data_ready", "data_output",
        "data_acknowledge", "flags_output", "write_data"}) {
    EXPECT_NE(vhdl.find(port), std::string::npos) << port;
  }
}

TEST(VhdlCodegen, ForwardingVariantChangesIdleEquation) {
  const std::string vhdl = functional_unit_entity(
      "fwd_unit", {.width = 32, .skeleton = fu::Skeleton::kMinimalFwd});
  EXPECT_NE(vhdl.find("idle <= (not reg_data_ready) or data_acknowledge;"),
            std::string::npos);
}

TEST(VhdlCodegen, FsmSkeletonCarriesExecuteCycles) {
  const std::string vhdl = functional_unit_entity(
      "fsm_unit",
      {.width = 32, .skeleton = fu::Skeleton::kFsm, .execute_cycles = 12});
  expect_balanced(vhdl);
  EXPECT_NE(vhdl.find("to_unsigned(12, countdown'length)"), std::string::npos);
  EXPECT_NE(vhdl.find("st_idle, st_execute, st_output"), std::string::npos);
}

TEST(VhdlCodegen, PipelinedSkeletonCarriesGeometry) {
  const std::string vhdl = functional_unit_entity(
      "pipe_unit", {.width = 64,
                    .skeleton = fu::Skeleton::kPipelined,
                    .pipeline_depth = 5,
                    .fifo_capacity = 16});
  expect_balanced(vhdl);
  EXPECT_NE(vhdl.find("PIPE_DEPTH : natural := 5"), std::string::npos);
  EXPECT_NE(vhdl.find("FIFO_DEPTH : natural := 16"), std::string::npos);
  EXPECT_NE(vhdl.find("data_input_1     : in  std_logic_vector(63 downto 0)"),
            std::string::npos);
}

TEST(VhdlCodegen, XsortCellPortsMatchFig312) {
  const std::string vhdl =
      xsort_cell_entity({.cells = 64, .data_bits = 24, .interval_bits = 12});
  expect_balanced(vhdl);
  // Every cmd_* control signal of the schematic is present.
  for (const char* cmd :
       {"cmd_load", "cmd_save", "cmd_restore", "cmd_select_all",
        "cmd_select_imprecise", "cmd_match_data_lt", "cmd_match_data_eq",
        "cmd_match_data_gt", "cmd_match_lower_bound", "cmd_match_upper_bound",
        "cmd_match_lower_bound_i", "cmd_match_upper_bound_i",
        "cmd_set_lower_bound", "cmd_set_upper_bound", "cmd_set_bounds",
        "cmd_rank_selected"}) {
    EXPECT_NE(vhdl.find(cmd), std::string::npos) << cmd;
  }
  EXPECT_NE(vhdl.find("input_data             : in  std_logic_vector(23 downto 0)"),
            std::string::npos);
  EXPECT_NE(vhdl.find("lower_bound            : out std_logic_vector(11 downto 0)"),
            std::string::npos);
}

}  // namespace
}  // namespace fpgafu::codegen
