#include "top/system.hpp"

#include <gtest/gtest.h>

#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "support/program_gen.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::top {
namespace {

using host::Coprocessor;
using isa::Assembler;
using msg::Response;

TEST(System, EndToEndArithmetic) {
  System sys({});
  Coprocessor copro(sys);
  const auto responses = copro.call(Assembler::assemble(R"(
    PUT r1, #6
    PUT r2, #7
    ADD r3, r1, r2
    GET r3
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 13u);
}

TEST(System, RegisterAccessHelpers) {
  System sys({});
  Coprocessor copro(sys);
  copro.write_reg(4, 0x12345678);
  EXPECT_EQ(copro.read_reg(4), 0x12345678u);
  // CMP sets flags; read them back.
  isa::Program p = Assembler::assemble("CMP r4, r4, f1");
  copro.submit(p);
  copro.sync();
  const isa::FlagWord f = copro.read_flags(1);
  EXPECT_TRUE((f & (1u << isa::flag::kZero)) != 0);
}

TEST(System, SlowSerialLinkStillCorrect) {
  SystemConfig cfg;
  cfg.link_down = msg::kSerialLink.timing;
  cfg.link_up = msg::kSerialLink.timing;
  System sys(cfg);
  Coprocessor copro(sys);
  const auto start = sys.simulator().cycle();
  const auto responses = copro.call(Assembler::assemble(R"(
    PUT r1, #100
    PUT r2, #42
    SUB r3, r1, r2
    GET r3
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 58u);
  // 7 stream words (14 link words) down at a 32-cycle serial interval
  // dominate the runtime — the paper's "slow connection" observation.
  EXPECT_GT(sys.simulator().cycle() - start, 13u * 32u);
}

TEST(System, DifferentialAgainstReferenceThroughFullPath) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 16;
  rcfg.flag_regs = 4;
  for (const std::uint64_t seed : {400u, 401u, 402u}) {
    SystemConfig cfg;
    cfg.rtm = rcfg;
    System sys(cfg);
    Coprocessor copro(sys);
    fpgafu::testing::ProgramGenOptions opt;
    opt.instructions = 120;
    opt.include_errors = true;
    const isa::Program program =
        fpgafu::testing::random_program(rcfg, seed, opt);
    const auto hw = copro.call(program);
    host::ReferenceModel model(rcfg);
    const auto expect = model.run(program);
    ASSERT_EQ(hw.size(), expect.size()) << "seed " << seed;
    for (std::size_t i = 0; i < hw.size(); ++i) {
      ASSERT_EQ(hw[i], expect[i]) << "seed " << seed << " response " << i;
    }
  }
}

TEST(System, DifferentialUnderRandomLinkTimings) {
  // Fuzz the transceiver: arbitrary latency/interval in both directions
  // must never change architectural behaviour, only timing.
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 12;
  rcfg.flag_regs = 4;
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 6; ++trial) {
    SystemConfig cfg;
    cfg.rtm = rcfg;
    cfg.link_down = {static_cast<std::uint32_t>(rng.range(1, 20)),
                     static_cast<std::uint32_t>(rng.range(1, 12))};
    cfg.link_up = {static_cast<std::uint32_t>(rng.range(1, 20)),
                   static_cast<std::uint32_t>(rng.range(1, 12))};
    System sys(cfg);
    Coprocessor copro(sys);
    fpgafu::testing::ProgramGenOptions opt;
    opt.instructions = 60;
    const isa::Program program =
        fpgafu::testing::random_program(rcfg, 9000 + rng.next() % 1000, opt);
    const auto hw = copro.call(program);
    host::ReferenceModel model(rcfg);
    const auto expect = model.run(program);
    ASSERT_EQ(hw.size(), expect.size()) << "trial " << trial;
    for (std::size_t i = 0; i < hw.size(); ++i) {
      ASSERT_EQ(hw[i], expect[i]) << "trial " << trial << " response " << i;
    }
  }
}

TEST(System, TruncatedPutLeavesPipelineWaitingNotBroken) {
  // Failure injection: a PUT whose data word never arrives.  The decoder
  // waits (there is no timeout in hardware); the host-side watchdog is the
  // recovery mechanism.  Sending the missing word later completes the
  // operation normally.
  System sys({});
  Coprocessor copro(sys);
  isa::Instruction put;
  put.function = isa::fc::kRtm;
  put.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kPut);
  put.dst1 = 1;
  copro.submit_word(put.encode());  // ... and no payload
  sys.simulator().run(200);
  EXPECT_FALSE(sys.idle());  // decoder is holding the half-finished PUT
  // The host watchdog would fire here; instead, supply the payload.
  copro.submit_word(0xabcdef);
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 1;
  copro.submit_word(get.encode());
  const msg::Response r = copro.wait_response();
  EXPECT_EQ(r.payload, 0xabcdefu);
}

TEST(System, WallClockProjection) {
  SystemConfig cfg;
  cfg.clock_mhz = 50.0;  // the paper's Cyclone
  System sys(cfg);
  EXPECT_DOUBLE_EQ(sys.cycles_to_us(50), 1.0);
  EXPECT_DOUBLE_EQ(sys.cycles_to_us(5000), 100.0);
}

TEST(System, IdleReflectsInFlightWork) {
  System sys({});
  Coprocessor copro(sys);
  EXPECT_TRUE(sys.idle());
  copro.submit(Assembler::assemble("PUT r1, #5\nGET r1"));
  EXPECT_FALSE(sys.idle());  // words sit in the link
  copro.call(isa::Program{});  // drain
  while (copro.poll().has_value()) {
  }
  EXPECT_TRUE(sys.idle());
}

TEST(System, UserUnitAttachment) {
  // A user-defined "population count" unit on a custom function code,
  // exactly the framework's extension story.
  System sys({});
  fu::StatelessConfig ucfg;
  ucfg.width = 32;
  auto popcount_fn = [](isa::VarietyCode, isa::Word a, isa::Word,
                        isa::FlagWord) {
    return fu::StatelessOut{bits::popcount(a, 32), 0, true, true};
  };
  auto unit = fu::make_stateless_unit(sys.simulator(), "popcount",
                                      popcount_fn, ucfg);
  sys.attach(isa::fc::kUserBase, *unit);

  Coprocessor copro(sys);
  isa::Program p;
  p.emit_put(1, 0xf0f0f0f0);
  isa::Instruction pc;
  pc.function = isa::fc::kUserBase;
  pc.variety = 0;
  pc.dst1 = 2;
  pc.src1 = 1;
  p.emit(pc);
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 2;
  p.emit(get);
  const auto responses = copro.call(p);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 16u);
}

}  // namespace
}  // namespace fpgafu::top
