#include "host/multi_host.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "util/error.hpp"

namespace fpgafu::host {
namespace {

using isa::Assembler;

TEST(MultiHost, TwoSessionsGetTheirOwnResponses) {
  top::System sys({});
  MultiHost mux(sys);
  auto& a = mux.create_session();
  auto& b = mux.create_session();

  // Sessions partition the register file: A uses r1..r3, B uses r4..r6.
  a.submit(Assembler::assemble(R"(
    PUT r1, #10
    PUT r2, #20
    ADD r3, r1, r2
    GET r3
  )"));
  b.submit(Assembler::assemble(R"(
    PUT r4, #100
    PUT r5, #1
    SUB r6, r4, r5
    GET r6
  )"));

  sim::Simulator& sim = sys.simulator();
  std::optional<msg::Response> ra, rb;
  sim.run_until(
      [&] {
        mux.pump();
        if (!ra) ra = a.poll();
        if (!rb) rb = b.poll();
        return ra.has_value() && rb.has_value();
      },
      100000);
  EXPECT_EQ(ra->payload, 30u);
  EXPECT_EQ(rb->payload, 99u);
}

TEST(MultiHost, SessionCallBlocksForItsOwnResults) {
  top::System sys({});
  MultiHost mux(sys);
  auto& a = mux.create_session();
  auto& b = mux.create_session();

  // B has queued work; A's call must still complete (the pump interleaves
  // both fairly).
  b.submit(Assembler::assemble("PUT r8, #1\nPUT r9, #2\nADD r10, r8, r9"));
  const auto responses = a.call(Assembler::assemble(R"(
    PUT r1, #7
    GET r1
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].payload, 7u);
  // Drain B as well and verify its computation happened.
  const auto rb = b.call(Assembler::assemble("GET r10"));
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb[0].payload, 3u);
}

TEST(MultiHost, ManySessionsInterleaveWithoutCrosstalk) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 64;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  MultiHost mux(sys);

  constexpr int kSessions = 6;
  std::vector<MultiHost::Session*> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(&mux.create_session());
    // Session s owns registers 8s .. 8s+7.
    const int base = 8 * s;
    char src[256];
    std::snprintf(src, sizeof src,
                  "PUT r%d, #%d\nPUT r%d, #%d\nADD r%d, r%d, r%d\nGET r%d\n",
                  base, 1000 + s, base + 1, s, base + 2, base, base + 1,
                  base + 2);
    sessions.back()->submit(isa::Assembler::assemble(src));
  }

  std::vector<std::optional<msg::Response>> got(kSessions);
  sys.simulator().run_until(
      [&] {
        mux.pump();
        bool all = true;
        for (int s = 0; s < kSessions; ++s) {
          if (!got[static_cast<std::size_t>(s)]) {
            got[static_cast<std::size_t>(s)] =
                sessions[static_cast<std::size_t>(s)]->poll();
          }
          all = all && got[static_cast<std::size_t>(s)].has_value();
        }
        return all;
      },
      200000);
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(got[static_cast<std::size_t>(s)]->payload,
              static_cast<std::uint64_t>(1000 + 2 * s));
  }
}

TEST(MultiHost, FuzzedInterleavingPreservesPerSessionStreams) {
  // Property: whatever the interleaving, every session sees exactly its own
  // responses, in its own issue order.  Each session owns one register and
  // issues PUT/GET pairs with session-tagged values.
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 16;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  host::MultiHost mux(sys);

  constexpr std::size_t kSessions = 5;
  constexpr std::size_t kPairs = 40;
  std::vector<MultiHost::Session*> sessions;
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(&mux.create_session());
    isa::Program p;
    for (std::size_t i = 0; i < kPairs; ++i) {
      const isa::Word tagged = (s << 16) | i;
      p.emit_put(static_cast<isa::RegNum>(s + 1), tagged);
      isa::Instruction get;
      get.function = isa::fc::kRtm;
      get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
      get.src1 = static_cast<isa::RegNum>(s + 1);
      p.emit(get);
    }
    sessions[s]->submit(p);
  }

  std::vector<std::vector<isa::Word>> got(kSessions);
  sys.simulator().run_until(
      [&] {
        mux.pump();
        bool done = true;
        for (std::size_t s = 0; s < kSessions; ++s) {
          while (auto r = sessions[s]->poll()) {
            got[s].push_back(r->payload);
          }
          done = done && got[s].size() == kPairs;
        }
        return done;
      },
      1'000'000);
  for (std::size_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(got[s].size(), kPairs);
    for (std::size_t i = 0; i < kPairs; ++i) {
      ASSERT_EQ(got[s][i], (s << 16) | i)
          << "session " << s << " response " << i;
    }
  }
}

TEST(MultiHost, BoundedLinkRoundRobinStaysFair) {
  // Regression for the rotation bug: when a round ended early because the
  // downstream link was full, the next round resumed after the session the
  // round *intended* to reach, not after the last session actually served —
  // starving whichever loaded session sat just past the stall point.  With
  // a link that only fits one instruction at a time, two loaded sessions
  // must drain in lockstep.
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 8;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  cfg.link_down_capacity = 2;  // one GET (2 link words) fits at a time
  top::System sys(cfg);
  MultiHost mux(sys);
  auto& a = mux.create_session();
  auto& b = mux.create_session();  // stays empty: the skip must not unbalance
  auto& c = mux.create_session();

  constexpr std::size_t kGets = 24;
  auto gets = [](isa::RegNum reg) {
    isa::Program p;
    for (std::size_t i = 0; i < kGets; ++i) {
      isa::Instruction get;
      get.function = isa::fc::kRtm;
      get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
      get.src1 = reg;
      p.emit(get);
    }
    return p;
  };
  a.submit(gets(1));
  c.submit(gets(2));

  std::size_t a_got = 0, c_got = 0;
  sys.simulator().run_until(
      [&] {
        mux.pump();
        const std::size_t pa = a.pending_count();
        const std::size_t pc = c.pending_count();
        EXPECT_LE(pa > pc ? pa - pc : pc - pa, 1u)
            << "a=" << pa << " c=" << pc;
        while (a.poll()) ++a_got;
        while (b.poll()) ADD_FAILURE() << "response routed to idle session";
        while (c.poll()) ++c_got;
        return a_got == kGets && c_got == kGets;
      },
      100000);
  EXPECT_EQ(a_got, kGets);
  EXPECT_EQ(c_got, kGets);
}

TEST(MultiHost, SequenceWrapReleasesOwnershipEntries) {
  // Regression for the routing-table leak: owner entries were never
  // released, so after the 16-bit sequence counter wrapped, a stale or
  // duplicated response silently landed in whichever session owned that
  // number an epoch earlier.  Now the entry is freed once its predicted
  // responses have been routed, and the stale response trips the check.
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 8;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  MultiHost mux(sys);
  auto& s = mux.create_session();

  constexpr std::size_t kGets = 300;
  isa::Program p;
  for (std::size_t i = 0; i < kGets; ++i) {
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = 1;
    p.emit(get);
  }
  const auto responses = s.call(p, 2'000'000);
  ASSERT_EQ(responses.size(), kGets);  // seqs 0..299 routed and released

  // Push the host-side sequence counter through the full 16-bit space with
  // response-less NOPs (the link queue is unbounded, so pumping needs no
  // sim time).
  isa::Program nops;
  isa::Instruction nop;
  nop.function = isa::fc::kRtm;
  nop.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kNop);
  for (std::size_t i = 0; i < (std::size_t{1} << 16) - kGets; ++i) {
    nops.emit(nop);
  }
  s.submit(nops);
  while (s.has_pending_instructions()) {
    mux.pump();
  }

  // Forge a duplicate of response seq 150 from the first epoch.  Its owner
  // entry was released when the real response was routed, so the duplicate
  // must be detected rather than delivered.
  msg::Response dup;
  dup.type = msg::Response::Type::kData;
  dup.seq = 150;
  dup.payload = 0xdead;
  for (const msg::LinkWord w : dup.to_link_words()) {
    sys.link().inject_upstream(w);
  }
  EXPECT_THROW(mux.pump(), SimError);
}

TEST(MultiHost, ErrorResponsesRouteToTheFaultingSession) {
  rtm::RtmConfig rcfg;
  rcfg.data_regs = 8;
  top::SystemConfig cfg;
  cfg.rtm = rcfg;
  top::System sys(cfg);
  MultiHost mux(sys);
  auto& good = mux.create_session();
  auto& bad = mux.create_session();

  isa::Program bad_prog;
  isa::Instruction i;
  i.function = isa::fc::kRtm;
  i.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  i.src1 = 200;  // out of range
  bad_prog.emit(i);
  bad.submit(bad_prog);

  const auto responses = good.call(isa::Assembler::assemble(R"(
    PUT r1, #5
    GET r1
  )"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, msg::Response::Type::kData);

  std::optional<msg::Response> err;
  sys.simulator().run_until(
      [&] {
        mux.pump();
        if (!err) err = bad.poll();
        return err.has_value();
      },
      100000);
  EXPECT_EQ(err->type, msg::Response::Type::kError);
}

}  // namespace
}  // namespace fpgafu::host
