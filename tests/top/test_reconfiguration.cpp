#include <gtest/gtest.h>

#include "fu/stateless_units.hpp"
#include "host/coprocessor.hpp"
#include "isa/assembler.hpp"
#include "isa/logic.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"

namespace fpgafu::top {
namespace {

using host::Coprocessor;
using isa::Assembler;
using msg::Response;

/// Dynamic instruction sets via attach/detach — the model analogue of the
/// partial-reconfiguration systems the paper's related work discusses
/// (Wirthlin & Hutchings): the same function code is served by different
/// circuits over the program's lifetime.

TEST(Reconfiguration, DetachedCodeBecomesError) {
  System sys({});
  Coprocessor copro(sys);
  // Works while attached.
  auto r1 = copro.call(Assembler::assemble(R"(
    PUTI r1, 6
    PUTI r2, 7
    MUL r3, r1, r2
    GET r3
  )"));
  EXPECT_EQ(r1[0].payload, 42u);
  // Quiesce, then "reconfigure away" the mul/div unit.
  copro.sync();
  sys.detach(isa::fc::kMulDiv);
  auto r2 = copro.call(Assembler::assemble("MUL r3, r1, r2\nSYNC"));
  ASSERT_EQ(r2.size(), 2u);
  EXPECT_EQ(r2[0].type, Response::Type::kError);
  EXPECT_EQ(r2[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnknownFunction));
}

TEST(Reconfiguration, SwapUnitUnderSameFunctionCode) {
  // "Load a new instruction": replace the arithmetic unit's circuit with a
  // different implementation under the same code — here, the logic core,
  // so ADD's variety bits suddenly mean a LUT2 table.  The observable
  // point: the same instruction word is served by a different circuit.
  System sys({});
  Coprocessor copro(sys);
  copro.write_reg(1, 0b1100);
  copro.write_reg(2, 0b1010);
  const isa::Program add_prog = Assembler::assemble("ADD r3, r1, r2\nGET r3");
  EXPECT_EQ(copro.call(add_prog)[0].payload, 0b1100u + 0b1010u);

  copro.sync();
  sys.detach(isa::fc::kArith);
  fu::StatelessConfig cfg{.width = 32};
  auto replacement =
      fu::make_logic_unit(sys.simulator(), cfg, "arith_replacement");
  sys.attach(isa::fc::kArith, *replacement);

  // Same instruction word; ADD's variety (0b000100) as a LUT2 table is
  // table=0b0100 without the logic unit's output bit... it computes a&~b
  // but writes nothing.  Use an explicit logic-encoded word instead to
  // observe data: AND's variety under the logic interpretation.
  isa::Instruction inst;
  inst.function = isa::fc::kArith;  // the *code* is what got reconfigured
  inst.variety = isa::logic::variety(isa::logic::Op::kAnd);
  inst.dst1 = 3;
  inst.src1 = 1;
  inst.src2 = 2;
  isa::Program p;
  p.emit(inst);
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 3;
  p.emit(get);
  EXPECT_EQ(copro.call(p)[0].payload, 0b1000u);  // 1100 & 1010
}

TEST(Reconfiguration, DetachRefusedWhileWritesInFlight) {
  // A slow FSM-based unit holds its destination lock for many cycles; a
  // detach during that window must be refused.
  SystemConfig cfg;
  cfg.with_arithmetic = false;
  cfg.with_logic = false;
  cfg.with_shift = false;
  cfg.with_muldiv = false;
  cfg.with_float = false;
  System sys(cfg);
  fu::StatelessConfig slow{.width = 32,
                           .skeleton = fu::Skeleton::kFsm,
                           .execute_cycles = 200};
  auto unit = fu::make_arithmetic_unit(sys.simulator(), slow, "slow");
  sys.attach(isa::fc::kArith, *unit);
  Coprocessor copro(sys);
  copro.submit(Assembler::assemble(R"(
    PUTI r1, 1
    PUTI r2, 2
    ADD r3, r1, r2
  )"));
  // Run just far enough for the ADD to dispatch into the unit (it then
  // holds the lock on r3 until its 200-cycle execution retires).
  sys.simulator().run_until(
      [&] { return sys.rtm().counters().get("dispatch.unit") > 0; }, 1000);
  EXPECT_THROW(sys.detach(isa::fc::kArith), SimError);
  // After completion it is allowed.
  copro.sync();
  sys.detach(isa::fc::kArith);
}

TEST(Reconfiguration, SlotReuseKeepsOtherUnitsWorking) {
  System sys({});
  Coprocessor copro(sys);
  copro.sync();
  sys.detach(isa::fc::kLogic);
  // Other units unaffected.
  auto r = copro.call(Assembler::assemble(R"(
    PUTI r1, 9
    PUTI r2, 4
    SUB r3, r1, r2
    GET r3
  )"));
  EXPECT_EQ(r[0].payload, 5u);
  // Reattach into the freed slot.
  fu::StatelessConfig cfg{.width = 32};
  auto logic2 = fu::make_logic_unit(sys.simulator(), cfg, "logic2");
  sys.attach(isa::fc::kLogic, *logic2);
  auto r2 = copro.call(Assembler::assemble("XOR r4, r1, r2\nGET r4"));
  EXPECT_EQ(r2[0].payload, 13u);
}

TEST(Reconfiguration, DetachUnknownCodeThrows) {
  System sys({});
  EXPECT_THROW(sys.detach(0x7a), SimError);
}

TEST(Reconfiguration, DetachUnderStalledInstructionIsDetachBusy) {
  // The PR-1 quiescence bug, replayed against detach: an instruction can
  // sit *pre-dispatch* — stalled on a RAW hazard — with its target unit
  // holding zero locks.  The old detach only checked locks, so it would
  // yank the unit out from under an already-admitted instruction.  Set it
  // up: a slow MUL locks r1, then an ADD reading r1 stalls pre-dispatch
  // while the arithmetic unit is completely idle.
  System sys({});
  Coprocessor copro(sys);
  copro.submit(Assembler::assemble(R"(
    PUTI r2, 5
    PUTI r4, 3
    MUL r1, r2, r4
    ADD r3, r1, r2
  )"));
  sys.simulator().run_until(
      [&] {
        return sys.rtm().dispatcher().pending_function() == isa::fc::kArith;
      },
      10000);
  ASSERT_EQ(sys.rtm().dispatcher().pending_function(), isa::fc::kArith);
  // The arithmetic unit owns no locks, yet detach must refuse, typed.
  EXPECT_THROW(sys.detach(isa::fc::kArith), rtm::DetachBusy);
  // The mul/div unit has a write in flight: also DetachBusy.
  EXPECT_THROW(sys.detach(isa::fc::kMulDiv), rtm::DetachBusy);
  // Both still attached; the program completes normally afterwards.
  copro.sync();
  EXPECT_EQ(copro.read_reg(3), 15u + 5u);
  sys.detach(isa::fc::kArith);  // quiesced: allowed now
}

TEST(Reconfiguration, DrainProtocolDrainsStalledInstructionAsTypedError) {
  // Same stall, resolved the live-traffic way: begin_detach() makes the
  // dispatcher refuse the stalled ADD (it drains as a kUnitUnavailable
  // error response — retryable, unlike kUnknownFunction), the MUL's write
  // retires through the arbiter, and quiescent() is reached instead of
  // wedging on an instruction whose unit vanished.
  System sys({});
  Coprocessor copro(sys);
  copro.submit(Assembler::assemble(R"(
    PUTI r2, 5
    PUTI r4, 3
    MUL r1, r2, r4
    ADD r3, r1, r2
  )"));
  sys.simulator().run_until(
      [&] {
        return sys.rtm().dispatcher().pending_function() == isa::fc::kArith;
      },
      10000);
  ASSERT_EQ(sys.rtm().dispatcher().pending_function(), isa::fc::kArith);

  sys.begin_detach(isa::fc::kArith);
  // The stalled ADD drains as a typed error while the MUL still retires.
  const Response r = copro.wait_response();
  EXPECT_EQ(r.type, Response::Type::kError);
  EXPECT_EQ(r.code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnitUnavailable));
  sys.simulator().run_until([&] { return sys.idle(); }, 100000);
  EXPECT_TRUE(sys.rtm().quiescent()) << "drain must not wedge quiescent()";
  EXPECT_EQ(copro.read_reg(1), 15u) << "the in-flight MUL still retired";

  ASSERT_TRUE(sys.detach_drained(isa::fc::kArith));
  sys.finish_detach(isa::fc::kArith);
  // Post-drain the code stays *known*: kUnitUnavailable, not unknown.
  auto r2 = copro.call(Assembler::assemble("ADD r5, r2, r4\nSYNC"));
  ASSERT_EQ(r2.size(), 2u);
  EXPECT_EQ(r2[0].type, Response::Type::kError);
  EXPECT_EQ(r2[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnitUnavailable));
  // Reattaching makes the code dispatchable again (swap completed).
  fu::StatelessConfig cfg{.width = 32};
  auto unit2 = fu::make_arithmetic_unit(sys.simulator(), cfg, "arith2");
  sys.attach(isa::fc::kArith, *unit2);
  EXPECT_EQ(copro.call(Assembler::assemble("ADD r5, r2, r4\nGET r5"))[0]
                .payload,
            8u);
}

TEST(Reconfiguration, DeclaredUnavailableIsDistinctFromUnknown) {
  System sys({});
  Coprocessor copro(sys);
  copro.sync();
  sys.detach(isa::fc::kLogic);
  // Plain detach: unknown (nothing claims to ever serve the code again).
  auto r1 = copro.call(Assembler::assemble("AND r3, r1, r2\nSYNC"));
  EXPECT_EQ(r1[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnknownFunction));
  // Declared: a manager owns the code; instructions are retryable.
  sys.declare_unavailable(isa::fc::kLogic);
  auto r2 = copro.call(Assembler::assemble("AND r3, r1, r2\nSYNC"));
  EXPECT_EQ(r2[0].code,
            static_cast<std::uint8_t>(msg::ErrorCode::kUnitUnavailable));
}

}  // namespace
}  // namespace fpgafu::top
