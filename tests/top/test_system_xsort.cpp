#include <gtest/gtest.h>

#include <algorithm>

#include "host/xsort_system_engine.hpp"
#include "util/rng.hpp"
#include "xsort/algorithm.hpp"
#include "xsort/baseline.hpp"

namespace fpgafu::host {
namespace {

top::SystemConfig xsort_system(std::size_t cells) {
  top::SystemConfig cfg;
  cfg.with_xsort = true;
  cfg.xsort.cells = cells;
  cfg.xsort.interval_bits = 16;
  return cfg;
}

TEST(SystemXsort, SortsThroughTheFullSystemPath) {
  top::System sys(xsort_system(16));
  SystemXsortEngine eng(sys);
  xsort::XsortAlgorithm algo(eng);
  Xoshiro256 rng(8);
  std::vector<std::uint64_t> vals(16);
  for (auto& v : vals) {
    v = rng.below(1000);
  }
  const auto sorted = algo.sort(vals);
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(SystemXsort, SelectThroughTheFullSystemPath) {
  top::System sys(xsort_system(32));
  SystemXsortEngine eng(sys);
  xsort::XsortAlgorithm algo(eng);
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> vals(32);
  for (auto& v : vals) {
    v = rng.below(100);
  }
  algo.load(vals);
  EXPECT_EQ(algo.select(16), xsort::cpu_select(vals, 16));
}

TEST(SystemXsort, RequiresXsortEnabledSystem) {
  top::System sys({});
  EXPECT_THROW(SystemXsortEngine eng(sys), SimError);
}

TEST(SystemXsort, PerOpCostIsFlatInN) {
  // Even through the full interface path, per-op cycles are independent of
  // the array size (the interface cost is constant; the cell work is
  // parallel).
  auto cycles_per_op = [](std::size_t n) {
    top::System sys(xsort_system(n));
    SystemXsortEngine eng(sys);
    eng.op(xsort::XsortOp::kReset, n - 1);
    eng.reset_cost();
    for (int i = 0; i < 8; ++i) {
      eng.op(xsort::XsortOp::kCount);
    }
    return eng.cost_cycles() / 8;
  };
  EXPECT_EQ(cycles_per_op(8), cycles_per_op(512));
}

}  // namespace
}  // namespace fpgafu::host
