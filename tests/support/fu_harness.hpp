#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fu/ports.hpp"
#include "sim/component.hpp"
#include "util/rng.hpp"

namespace fpgafu::testing {

/// Standalone testbench driver for a functional unit: plays the roles of
/// both the dispatcher (issuing requests whenever the unit is idle) and the
/// write arbiter (acknowledging results, optionally with a stall pattern).
class FuDriver : public sim::Component {
 public:
  struct Completion {
    fu::FuResult result;
    std::uint64_t cycle;
  };

  FuDriver(sim::Simulator& sim, std::string name, fu::FuPorts& ports,
           std::uint64_t ack_duty_num = 1, std::uint64_t ack_duty_den = 1,
           std::uint64_t seed = 7)
      : Component(sim, std::move(name)),
        ports_(&ports),
        ack_num_(ack_duty_num),
        ack_den_(ack_duty_den),
        rng_(seed) {
    // The ack-duty RNG draws every cycle; keep in lock-step across kernels.
    make_always_active();
  }

  void enqueue(const fu::FuRequest& req) { queue_.push_back(req); }

  const std::vector<Completion>& completions() const { return completions_; }
  const std::vector<std::uint64_t>& dispatch_cycles() const {
    return dispatch_cycles_;
  }
  bool drained() const {
    return queue_.empty() && !ports_->data_ready.get();
  }

  void eval() override {
    if (!queue_.empty() && ports_->idle.get()) {
      ports_->dispatch.set(true);
      ports_->request.set(queue_.front());
    } else {
      ports_->dispatch.set(false);
    }
    ports_->data_acknowledge.set(ports_->data_ready.get() && ack_active_);
  }

  void commit() override {
    if (ports_->dispatch.get() && ports_->idle.get()) {
      queue_.pop_front();
      dispatch_cycles_.push_back(simulator().cycle());
    }
    if (ports_->data_ready.get() && ports_->data_acknowledge.get()) {
      completions_.push_back({ports_->result.get(), simulator().cycle()});
    }
    ack_active_ = rng_.chance(ack_num_, ack_den_);
  }

  void reset() override {
    queue_.clear();
    completions_.clear();
    dispatch_cycles_.clear();
    ack_active_ = true;
  }

 private:
  fu::FuPorts* ports_;
  std::deque<fu::FuRequest> queue_;
  std::vector<Completion> completions_;
  std::vector<std::uint64_t> dispatch_cycles_;
  std::uint64_t ack_num_, ack_den_;
  Xoshiro256 rng_;
  bool ack_active_ = true;
};

}  // namespace fpgafu::testing
