#pragma once

#include <cstdint>

#include "isa/arith.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "isa/trig.hpp"
#include "rtm/rtm.hpp"
#include "util/rng.hpp"

namespace fpgafu::testing {

/// Random-program generator for differential testing of the RTM against
/// the sequential reference model.
struct ProgramGenOptions {
  std::size_t instructions = 100;
  bool include_errors = false;   ///< sprinkle bad register numbers / codes
  bool include_sync = true;
  unsigned get_percent = 20;     ///< share of GET/GETF observation points
};

inline isa::Program random_program(const rtm::RtmConfig& cfg, std::uint64_t seed,
                                   const ProgramGenOptions& opt = {}) {
  Xoshiro256 rng(seed);
  isa::Program p;
  auto data_reg = [&] {
    return static_cast<isa::RegNum>(rng.below(cfg.data_regs));
  };
  auto flag_reg = [&] {
    return static_cast<isa::RegNum>(rng.below(cfg.flag_regs));
  };
  auto bad_data_reg = [&] {
    return static_cast<isa::RegNum>(cfg.data_regs + rng.below(4));
  };

  // Seed a few registers so early reads see non-zero data.
  for (int i = 0; i < 4; ++i) {
    p.emit_put(data_reg(), rng.next());
  }

  for (std::size_t i = 0; i < opt.instructions; ++i) {
    const std::uint64_t roll = rng.below(100);
    isa::Instruction inst;
    if (opt.include_errors && rng.chance(1, 17)) {
      // Fault injection: bad destination or unknown function code.
      if (rng.chance(1, 2)) {
        inst.function = isa::fc::kArith;
        inst.variety = isa::arith::variety(isa::arith::Op::kAdd);
        inst.dst1 = bad_data_reg();
        inst.src1 = data_reg();
        inst.src2 = data_reg();
      } else {
        inst.function = 0x5a;  // nothing attached here
        inst.dst1 = data_reg();
      }
      p.emit(inst);
      continue;
    }
    if (roll < opt.get_percent) {
      inst.function = isa::fc::kRtm;
      if (rng.chance(3, 5)) {
        inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
        inst.src1 = data_reg();
        p.emit(inst);
      } else if (rng.chance(1, 2)) {
        inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGetFlags);
        inst.src_flag = flag_reg();
        p.emit(inst);
      } else {
        // Burst read, sometimes deliberately running off the end of the
        // register file (per-subread error responses).
        const isa::RegNum base = data_reg();
        const auto count = static_cast<std::uint8_t>(rng.range(1, 6));
        p.emit_get_vec(base, count);
      }
    } else if (roll < opt.get_percent + 10) {
      if (rng.chance(1, 3)) {
        // Burst write of 1..6 words (kept within range unless fault
        // injection is on).
        std::vector<isa::Word> values(rng.range(1, 6));
        for (auto& v : values) {
          v = rng.next();
        }
        isa::RegNum base = data_reg();
        if (!opt.include_errors &&
            base + values.size() > cfg.data_regs) {
          base = 0;
        }
        p.emit_put_vec(base, values);
      } else {
        p.emit_put(data_reg(), rng.next());
      }
    } else if (roll < opt.get_percent + 20) {
      inst.function = isa::fc::kRtm;
      switch (rng.below(4)) {
        case 0:
          inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kCopy);
          inst.dst1 = data_reg();
          inst.src1 = data_reg();
          break;
        case 1:
          inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kCopyFlags);
          inst.dst_flag = flag_reg();
          inst.src_flag = flag_reg();
          break;
        case 2:
          inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kPutImm);
          inst.dst1 = data_reg();
          inst.aux = static_cast<std::uint8_t>(rng.below(256));
          break;
        default:
          inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kPutFlags);
          inst.dst_flag = flag_reg();
          inst.aux = static_cast<std::uint8_t>(rng.below(32));
          break;
      }
      p.emit(inst);
    } else if (opt.include_sync && roll < opt.get_percent + 23) {
      inst.function = isa::fc::kRtm;
      inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
      p.emit(inst);
    } else {
      // Functional-unit op: arithmetic, logic, shift, mul/div, float or trig.
      const std::uint64_t unit = rng.below(6);
      if (unit == 0) {
        inst.function = isa::fc::kArith;
        inst.variety = isa::arith::variety(
            isa::arith::kAllOps[rng.below(isa::arith::kAllOps.size())]);
      } else if (unit == 1) {
        inst.function = isa::fc::kLogic;
        inst.variety = isa::logic::variety(
            isa::logic::kAllOps[rng.below(isa::logic::kAllOps.size())]);
      } else if (unit == 2) {
        inst.function = isa::fc::kShift;
        inst.variety = isa::shift::variety(
            isa::shift::kAllOps[rng.below(isa::shift::kAllOps.size())]);
      } else if (unit == 3) {
        inst.function = isa::fc::kMulDiv;
        inst.variety = isa::muldiv::variety(
            isa::muldiv::kAllOps[rng.below(isa::muldiv::kAllOps.size())]);
        // DIVMOD's second destination travels in aux; sometimes collide it
        // with dst1 (a fault the dispatcher must report).
        inst.aux = static_cast<std::uint8_t>(data_reg());
      } else if (unit == 4) {
        inst.function = isa::fc::kFloat;
        inst.variety = isa::fp32::variety(
            isa::fp32::kAllOps[rng.below(isa::fp32::kAllOps.size())]);
      } else {
        inst.function = isa::fc::kTrig;
        inst.variety = isa::trig::variety(
            isa::trig::kAllOps[rng.below(isa::trig::kAllOps.size())]);
      }
      inst.dst1 = data_reg();
      inst.src1 = data_reg();
      inst.src2 = data_reg();
      inst.src_flag = flag_reg();
      inst.dst_flag = flag_reg();
      p.emit(inst);
    }
  }
  // Observe the final architectural state: read back every register.
  for (std::size_t r = 0; r < cfg.data_regs; ++r) {
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = static_cast<isa::RegNum>(r);
    p.emit(get);
  }
  for (std::size_t r = 0; r < cfg.flag_regs; ++r) {
    isa::Instruction getf;
    getf.function = isa::fc::kRtm;
    getf.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGetFlags);
    getf.src_flag = static_cast<isa::RegNum>(r);
    p.emit(getf);
  }
  return p;
}

}  // namespace fpgafu::testing
