#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "util/rng.hpp"

/// Reusable test fixtures for driving valid/ready handshake channels with
/// configurable stall patterns — the cycle-level equivalent of a VHDL
/// testbench stimulus process.  Both fixtures *bind* to a channel owned by
/// the device under test.
namespace fpgafu::testing {

/// Feeds a queue of items into a bound handshake channel.  `duty_num/den`
/// control a random valid-side stall pattern (1/1 = stream at full rate).
template <typename T>
class Producer : public sim::Component {
 public:
  Producer(sim::Simulator& sim, std::string name, std::vector<T> items,
           std::uint64_t duty_num = 1, std::uint64_t duty_den = 1,
           std::uint64_t seed = 1)
      : Component(sim, std::move(name)),
        items_(items.begin(), items.end()),
        duty_num_(duty_num),
        duty_den_(duty_den),
        rng_(seed) {
    // The duty-cycle RNG draws every cycle; demoting this component would
    // desynchronise the stall pattern across kernels.
    make_always_active();
  }

  sim::Handshake<T>* out = nullptr;

  void bind(sim::Handshake<T>& channel) { out = &channel; }
  void push(T item) { items_.push_back(std::move(item)); }
  bool done() const { return items_.empty(); }
  std::uint64_t sent() const { return sent_; }

  void eval() override {
    if (!items_.empty() && active_) {
      out->offer(items_.front());
    } else {
      out->withdraw();
    }
  }

  void commit() override {
    if (out->fire()) {
      items_.pop_front();
      ++sent_;
    }
    active_ = rng_.chance(duty_num_, duty_den_);
  }

  void reset() override {
    items_.clear();
    sent_ = 0;
    active_ = true;
  }

 private:
  std::deque<T> items_;
  std::uint64_t duty_num_, duty_den_;
  Xoshiro256 rng_;
  bool active_ = true;
  std::uint64_t sent_ = 0;
};

/// Collects items from a bound handshake channel with a random ready-side
/// stall pattern.
template <typename T>
class Consumer : public sim::Component {
 public:
  Consumer(sim::Simulator& sim, std::string name, std::uint64_t duty_num = 1,
           std::uint64_t duty_den = 1, std::uint64_t seed = 2)
      : Component(sim, std::move(name)),
        duty_num_(duty_num),
        duty_den_(duty_den),
        rng_(seed) {
    // Same as Producer: per-cycle RNG draw, keep in lock-step with the
    // reference kernels.
    make_always_active();
  }

  sim::Handshake<T>* in = nullptr;

  void bind(sim::Handshake<T>& channel) { in = &channel; }

  const std::vector<T>& received() const { return items_; }

  void eval() override { in->ready.set(active_); }

  void commit() override {
    if (in->fire()) {
      items_.push_back(in->data.get());
    }
    active_ = rng_.chance(duty_num_, duty_den_);
  }

  void reset() override {
    items_.clear();
    active_ = true;
  }

 private:
  std::vector<T> items_;
  std::uint64_t duty_num_, duty_den_;
  Xoshiro256 rng_;
  bool active_ = true;
};

}  // namespace fpgafu::testing
