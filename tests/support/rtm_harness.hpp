#pragma once

#include <memory>
#include <vector>

#include "fu/stateless_units.hpp"
#include "isa/program.hpp"
#include "msg/response.hpp"
#include "rtm/rtm.hpp"
#include "support/handshake_harness.hpp"

namespace fpgafu::testing {

/// A directly-driven RTM (no transceiver link): an instruction-word
/// producer feeds the decoder and a response consumer drains the encoder.
/// Used by RTM unit/property tests where link timing is irrelevant.
struct RtmRig {
  sim::Simulator sim;
  rtm::RtmConfig cfg;
  rtm::Rtm rtm;
  sim::Handshake<isa::Word> instr_ch;
  sim::Handshake<msg::Response> resp_ch;
  Producer<isa::Word> prod;
  Consumer<msg::Response> cons;
  std::vector<std::unique_ptr<fu::FunctionalUnit>> units;

  explicit RtmRig(const rtm::RtmConfig& config = {},
                  fu::Skeleton skeleton = fu::Skeleton::kMinimal,
                  bool attach_units = true)
      : cfg(config),
        rtm(sim, cfg),
        instr_ch(sim),
        resp_ch(sim),
        prod(sim, "host_tx", {}),
        cons(sim, "host_rx") {
    rtm.bind_input(instr_ch);
    rtm.bind_output(resp_ch);
    prod.bind(instr_ch);
    cons.bind(resp_ch);
    if (attach_units) {
      fu::StatelessConfig ucfg;
      ucfg.width = cfg.word_width;
      ucfg.skeleton = skeleton;
      units.push_back(fu::make_arithmetic_unit(sim, ucfg));
      units.push_back(fu::make_logic_unit(sim, ucfg));
      units.push_back(fu::make_shift_unit(sim, ucfg));
      rtm.attach(isa::fc::kArith, *units[0]);
      rtm.attach(isa::fc::kLogic, *units[1]);
      rtm.attach(isa::fc::kShift, *units[2]);
      // Extension units: multi-cycle mul/div (always FSM — only that
      // variant retires DIVMOD's two records), soft-float and CORDIC.
      fu::StatelessConfig mcfg = ucfg;
      mcfg.skeleton = fu::Skeleton::kFsm;
      mcfg.execute_cycles = 0;
      units.push_back(fu::make_muldiv_unit(sim, mcfg));
      units.push_back(fu::make_fp32_unit(sim, ucfg));
      units.push_back(fu::make_trig_unit(sim, mcfg));
      rtm.attach(isa::fc::kMulDiv, *units[3]);
      rtm.attach(isa::fc::kFloat, *units[4]);
      rtm.attach(isa::fc::kTrig, *units[5]);
    }
  }

  /// Feed the program and run until all expected responses arrived and the
  /// pipeline drained.  Returns the responses.
  std::vector<msg::Response> run_program(const isa::Program& program,
                                         std::uint64_t max_cycles = 200000) {
    for (const isa::Word w : program.words()) {
      prod.push(w);
    }
    sim.run_until(
        [&] {
          return cons.received().size() >= program.expected_responses() &&
                 prod.done() && rtm.quiescent();
        },
        max_cycles);
    return cons.received();
  }
};

}  // namespace fpgafu::testing
