#include "isa/trig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::trig {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr double kQ30 = 1073741824.0;  // 2^30

/// Reference: double-precision sin/cos of the BAM angle, in Q1.30 LSBs.
double ref_sin(std::uint32_t bam) {
  return std::sin(static_cast<double>(bam) / 4294967296.0 * kTwoPi) * kQ30;
}
double ref_cos(std::uint32_t bam) {
  return std::cos(static_cast<double>(bam) / 4294967296.0 * kTwoPi) * kQ30;
}

/// CORDIC with 30 iterations is accurate to a few Q1.30 LSBs.
constexpr double kTolLsb = 8.0;

TEST(Cordic, CardinalAngles) {
  const struct {
    std::uint32_t bam;
    double sin, cos;
  } cases[] = {
      {0x00000000u, 0.0, kQ30},    // 0
      {0x40000000u, kQ30, 0.0},    // 90 deg
      {0x80000000u, 0.0, -kQ30},   // 180 deg
      {0xc0000000u, -kQ30, 0.0},   // 270 deg
      {0x20000000u, kQ30 * std::sqrt(0.5), kQ30 * std::sqrt(0.5)},  // 45 deg
  };
  for (const auto& c : cases) {
    const SinCos sc = cordic_sincos(c.bam);
    EXPECT_NEAR(sc.sin, c.sin, kTolLsb) << "bam " << c.bam;
    EXPECT_NEAR(sc.cos, c.cos, kTolLsb) << "bam " << c.bam;
  }
}

TEST(Cordic, RandomAngleSweepAgainstLibm) {
  Xoshiro256 rng(606);
  for (int i = 0; i < 50000; ++i) {
    const auto bam = static_cast<std::uint32_t>(rng.next());
    const SinCos sc = cordic_sincos(bam);
    ASSERT_NEAR(sc.sin, ref_sin(bam), kTolLsb) << "bam " << bam;
    ASSERT_NEAR(sc.cos, ref_cos(bam), kTolLsb) << "bam " << bam;
  }
}

TEST(Cordic, PythagoreanIdentityHolds) {
  // sin^2 + cos^2 == 1 within the fixed-point tolerance (checks that the
  // gain compensation constant is right).
  Xoshiro256 rng(607);
  for (int i = 0; i < 5000; ++i) {
    const auto bam = static_cast<std::uint32_t>(rng.next());
    const SinCos sc = cordic_sincos(bam);
    const double norm = (static_cast<double>(sc.sin) * sc.sin +
                         static_cast<double>(sc.cos) * sc.cos) /
                        (kQ30 * kQ30);
    ASSERT_NEAR(norm, 1.0, 1e-7) << "bam " << bam;
  }
}

TEST(Cordic, SymmetryProperties) {
  Xoshiro256 rng(608);
  for (int i = 0; i < 5000; ++i) {
    const auto bam = static_cast<std::uint32_t>(rng.next());
    const SinCos a = cordic_sincos(bam);
    const SinCos b = cordic_sincos(static_cast<std::uint32_t>(-static_cast<std::int64_t>(bam)));
    // sin(-x) = -sin(x), cos(-x) = cos(x), up to CORDIC rounding.
    ASSERT_NEAR(a.sin, -b.sin, 2 * kTolLsb);
    ASSERT_NEAR(a.cos, b.cos, 2 * kTolLsb);
  }
}

TEST(TrigUnit, EvaluateRoutesOpsAndFlags) {
  const Result s = evaluate(variety(Op::kSin), 0x40000000u, 0);  // 90 deg
  EXPECT_TRUE(s.write_data);
  EXPECT_NEAR(static_cast<double>(static_cast<std::int32_t>(s.value)), kQ30,
              kTolLsb);
  const Result c = evaluate(variety(Op::kCos), 0x80000000u, 0);  // 180 deg
  EXPECT_TRUE(bits::bit(c.flags, flag::kNegative));
  // sin(0) lands within a couple of LSBs of zero (CORDIC's z-path ends on
  // a residual micro-rotation, so an exact zero is not guaranteed).
  const Result z = evaluate(variety(Op::kSin), 0, 0);
  EXPECT_LE(std::abs(static_cast<std::int32_t>(z.value)), 4);
}

}  // namespace
}  // namespace fpgafu::isa::trig
