#include "isa/muldiv.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::muldiv {
namespace {

bool error_flag(const Result& r) {
  return bits::bit(r.flags, flag::kError);
}

TEST(MulDiv, WideProductMatchesNative32) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t full = static_cast<std::uint64_t>(a) * b;
    const WideProduct p = umul_wide(a, b, 32);
    ASSERT_EQ(p.lo, full & 0xffffffffu);
    ASSERT_EQ(p.hi, full >> 32);
  }
}

TEST(MulDiv, WideProduct64KnownValues) {
  // Cross-checked values for the limb decomposition at full width.
  const WideProduct p1 = umul_wide(~Word{0}, ~Word{0}, 64);
  EXPECT_EQ(p1.lo, 1u);                      // (2^64-1)^2 mod 2^64
  EXPECT_EQ(p1.hi, ~Word{0} - 1);            // high word = 2^64 - 2
  const WideProduct p2 = umul_wide(0x123456789abcdef0ULL, 0x10, 64);
  EXPECT_EQ(p2.lo, 0x23456789abcdef00ULL);
  EXPECT_EQ(p2.hi, 0x1u);
  const WideProduct p3 = umul_wide(1ULL << 63, 2, 64);
  EXPECT_EQ(p3.lo, 0u);
  EXPECT_EQ(p3.hi, 1u);
}

class MulDivOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(MulDivOps, MatchesNativeSemantics) {
  const unsigned width = GetParam();
  const Word m = bits::mask(width);
  Xoshiro256 rng(width * 7);
  for (int i = 0; i < 3000; ++i) {
    const Word a = rng.next() & m;
    const Word b = rng.next() & m;
    const std::int64_t sa = bits::sign_extend(a, width);
    const std::int64_t sb = bits::sign_extend(b, width);

    // MUL low word: identical for signed and unsigned.
    ASSERT_EQ(evaluate(variety(Op::kMul), a, b, width).value,
              (a * b) & m);
    // MULH against the tested umul_wide.
    ASSERT_EQ(evaluate(variety(Op::kMulh), a, b, width).value,
              umul_wide(a, b, width).hi);
    if (b != 0) {
      ASSERT_EQ(evaluate(variety(Op::kDiv), a, b, width).value, a / b);
      ASSERT_EQ(evaluate(variety(Op::kRem), a, b, width).value, a % b);
      if (!(sa == bits::sign_extend(Word{1} << (width - 1), width) &&
            sb == -1)) {
        ASSERT_EQ(evaluate(variety(Op::kSdiv), a, b, width).value,
                  static_cast<Word>(sa / sb) & m)
            << "a=" << sa << " b=" << sb;
        ASSERT_EQ(evaluate(variety(Op::kSrem), a, b, width).value,
                  static_cast<Word>(sa % sb) & m);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MulDivOps, ::testing::Values(8u, 16u, 32u),
                         [](const ::testing::TestParamInfo<unsigned>& pinfo) {
                           return "w" + std::to_string(pinfo.param);
                         });

TEST(MulDiv, Width64SignedHighProduct) {
  // SMULH spot checks at full width (no native 128-bit oracle needed).
  EXPECT_EQ(evaluate(variety(Op::kSmulh), static_cast<Word>(-1),
                     static_cast<Word>(-1), 64)
                .value,
            0u);  // (-1) * (-1) = 1 -> high word 0
  EXPECT_EQ(evaluate(variety(Op::kSmulh), static_cast<Word>(-2), 3, 64).value,
            ~Word{0});  // -6 -> high word all ones
  EXPECT_EQ(evaluate(variety(Op::kSmulh), Word{1} << 62, 4, 64).value,
            1u);  // 2^64 -> high word 1
}

TEST(MulDiv, DivisionByZeroSetsErrorFlag) {
  // The thesis' flagship error case: "e.g. a division by zero.  If this
  // flag is set, the contents of the destination registers (if any) are
  // undefined by specification."
  for (const Op op : {Op::kDiv, Op::kRem, Op::kSdiv, Op::kSrem}) {
    const Result r = evaluate(variety(op), 123, 0, 32);
    EXPECT_TRUE(error_flag(r)) << to_string(op);
  }
  // Non-zero divisor: no error.
  EXPECT_FALSE(error_flag(evaluate(variety(Op::kDiv), 123, 7, 32)));
}

TEST(MulDiv, SignedOverflowMinDividedByMinusOne) {
  const Word min32 = Word{1} << 31;
  const Word minus1 = bits::mask(32);
  EXPECT_TRUE(error_flag(evaluate(variety(Op::kSdiv), min32, minus1, 32)));
  EXPECT_TRUE(error_flag(evaluate(variety(Op::kSrem), min32, minus1, 32)));
  // MIN / 1 is fine.
  EXPECT_FALSE(error_flag(evaluate(variety(Op::kSdiv), min32, 1, 32)));
}

TEST(MulDiv, RemainderTakesDividendSign) {
  // -7 srem 3 == -1 (C++ truncation semantics).
  const Word a = static_cast<Word>(-7) & bits::mask(32);
  const Result r = evaluate(variety(Op::kSrem), a, 3, 32);
  EXPECT_EQ(bits::sign_extend(r.value, 32), -1);
  // 7 srem -3 == 1.
  const Word b = static_cast<Word>(-3) & bits::mask(32);
  const Result r2 = evaluate(variety(Op::kSrem), 7, b, 32);
  EXPECT_EQ(bits::sign_extend(r2.value, 32), 1);
}

TEST(MulDiv, FlagsZeroAndNegative) {
  const Result z = evaluate(variety(Op::kMul), 0, 12345, 32);
  EXPECT_TRUE(bits::bit(z.flags, flag::kZero));
  const Word neg = static_cast<Word>(-4) & bits::mask(32);
  const Result n = evaluate(variety(Op::kSdiv), neg, 2, 32);
  EXPECT_TRUE(bits::bit(n.flags, flag::kNegative));
}

}  // namespace
}  // namespace fpgafu::isa::muldiv
