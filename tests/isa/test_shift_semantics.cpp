#include "isa/shift.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::shift {
namespace {

class ShiftOps : public ::testing::TestWithParam<Op> {};

TEST_P(ShiftOps, MatchesOracle) {
  const Op op = GetParam();
  for (const unsigned width : {8u, 32u, 64u}) {
    const Word m = bits::mask(width);
    Xoshiro256 rng(static_cast<std::uint64_t>(op) * 13 + width);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.next() & m;
      const Word amount = rng.below(2 * width);  // exercises the modulo
      const unsigned n = static_cast<unsigned>(amount % width);
      const Result r = evaluate(variety(op), a, amount, width);

      Word expect = 0;
      switch (op) {
        case Op::kShl: expect = (a << n) & m; break;
        case Op::kShr: expect = a >> n; break;
        case Op::kAsr: {
          const std::int64_t sa = bits::sign_extend(a, width);
          expect = static_cast<Word>(sa >> n) & m;
          break;
        }
        case Op::kRol:
          expect = n == 0 ? a : (((a << n) | (a >> (width - n))) & m);
          break;
        case Op::kRor:
          expect = n == 0 ? a : (((a >> n) | (a << (width - n))) & m);
          break;
      }
      ASSERT_EQ(r.value, expect)
          << to_string(op) << " a=" << a << " n=" << n << " w=" << width;
      ASSERT_EQ(bits::bit(r.flags, flag::kZero), expect == 0);
      ASSERT_TRUE(r.write_data);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ShiftOps, ::testing::ValuesIn(kAllOps),
                         [](const ::testing::TestParamInfo<Op>& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(Shift, ZeroAmountIsIdentity) {
  for (Op op : kAllOps) {
    EXPECT_EQ(evaluate(variety(op), 0xabcd, 0, 32).value, 0xabcdu);
    EXPECT_FALSE(
        bits::bit(evaluate(variety(op), 0xabcd, 0, 32).flags, flag::kCarry));
  }
}

TEST(Shift, ShlCarryIsLastBitOut) {
  // 0x80000000 << 1 (32-bit) shifts the MSB into carry.
  const Result r = evaluate(variety(Op::kShl), 0x80000000u, 1, 32);
  EXPECT_EQ(r.value, 0u);
  EXPECT_TRUE(bits::bit(r.flags, flag::kCarry));
}

TEST(Shift, AsrFillsSign) {
  const Result r = evaluate(variety(Op::kAsr), 0x80000000u, 4, 32);
  EXPECT_EQ(r.value, 0xf8000000u);
}

TEST(Shift, RotateRoundTrip) {
  // ROL by n then ROR by n restores the value.
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    const Word a = rng.next();
    const Word n = rng.below(64);
    const Word rolled = evaluate(variety(Op::kRol), a, n, 64).value;
    const Word back = evaluate(variety(Op::kRor), rolled, n, 64).value;
    ASSERT_EQ(back, a);
  }
}

}  // namespace
}  // namespace fpgafu::isa::shift
