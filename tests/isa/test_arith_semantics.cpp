#include "isa/arith.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::arith {
namespace {

FlagWord carry_flag(bool c) {
  return static_cast<FlagWord>(c ? (1u << flag::kCarry) : 0);
}

// ---------------------------------------------------------------------------
// Table 3.1 row structure: every instruction's variety code uses exactly the
// control bits the thesis documents.

TEST(ArithEncoding, Table31RowBits) {
  using namespace vc;
  auto has = [](Op op, unsigned bitpos) {
    return bits::bit(variety(op), bitpos);
  };
  // ADD: output only.
  EXPECT_EQ(variety(Op::kAdd), VarietyCode(1u << kOutputData));
  // ADC adds use-carry.
  EXPECT_TRUE(has(Op::kAdc, kUseCarry));
  EXPECT_FALSE(has(Op::kAdc, kFixedCarry));
  // SUB = complement second + fixed carry (two's complement subtract).
  EXPECT_TRUE(has(Op::kSub, kComplementSecond));
  EXPECT_TRUE(has(Op::kSub, kFixedCarry));
  // SBB = complement second + use carry.
  EXPECT_TRUE(has(Op::kSbb, kComplementSecond));
  EXPECT_TRUE(has(Op::kSbb, kUseCarry));
  // INC zeroes the second input and injects carry.
  EXPECT_TRUE(has(Op::kInc, kSecondZero));
  EXPECT_TRUE(has(Op::kInc, kFixedCarry));
  // DEC zeroes + complements the second input (adds ~0 = -1).
  EXPECT_TRUE(has(Op::kDec, kSecondZero));
  EXPECT_TRUE(has(Op::kDec, kComplementSecond));
  // NEG zeroes the FIRST input and negates the second.
  EXPECT_TRUE(has(Op::kNeg, kFirstZero));
  EXPECT_TRUE(has(Op::kNeg, kComplementSecond));
  EXPECT_TRUE(has(Op::kNeg, kFixedCarry));
  // Compares produce no data output.
  EXPECT_FALSE(has(Op::kCmp, kOutputData));
  EXPECT_FALSE(has(Op::kCmpb, kOutputData));
  // All nine rows are distinct encodings.
  for (Op a : kAllOps) {
    for (Op b : kAllOps) {
      if (a != b) {
        EXPECT_NE(variety(a), variety(b))
            << to_string(a) << " vs " << to_string(b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterised semantic sweep: each named op against a two's complement
// oracle, across widths and random operands.

class ArithOps : public ::testing::TestWithParam<std::tuple<Op, unsigned>> {};

TEST_P(ArithOps, MatchesTwosComplementOracle) {
  const auto [op, width] = GetParam();
  const Word wmask = bits::mask(width);
  Xoshiro256 rng(static_cast<std::uint64_t>(width) * 131 +
                 static_cast<std::uint64_t>(op));
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next() & wmask;
    const Word b = rng.next() & wmask;
    const bool cf = rng.chance(1, 2);
    const Result r = evaluate(variety(op), a, b, carry_flag(cf), width);

    // Oracle, expressed per-op via an independent add-with-carry helper.
    bits::AddResult o{0, false};
    switch (op) {
      case Op::kAdd: o = bits::add_with_carry(a, b, false, width); break;
      case Op::kAdc: o = bits::add_with_carry(a, b, cf, width); break;
      case Op::kSub:
      case Op::kCmp:
        o = bits::add_with_carry(a, ~b & wmask, true, width);
        break;
      case Op::kSbb:
      case Op::kCmpb:
        o = bits::add_with_carry(a, ~b & wmask, cf, width);
        break;
      case Op::kInc: o = bits::add_with_carry(a, 0, true, width); break;
      case Op::kDec: o = bits::add_with_carry(a, wmask, false, width); break;
      case Op::kNeg:
        o = bits::add_with_carry(0, ~b & wmask, true, width);
        break;
    }
    const Word expect = o.sum;
    const bool expect_carry = o.carry;

    EXPECT_EQ(r.value, expect) << to_string(op) << " a=" << a << " b=" << b;
    EXPECT_EQ(bits::bit(r.flags, flag::kCarry), expect_carry);
    EXPECT_EQ(bits::bit(r.flags, flag::kZero), expect == 0);
    EXPECT_EQ(bits::bit(r.flags, flag::kNegative),
              bits::bit(expect, width - 1));
    EXPECT_EQ(r.write_data, op != Op::kCmp && op != Op::kCmpb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllWidths, ArithOps,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(8u, 16u, 32u, 64u)),
    [](const ::testing::TestParamInfo<std::tuple<Op, unsigned>>& pinfo) {
      return std::string(to_string(std::get<0>(pinfo.param))) + "_w" +
             std::to_string(std::get<1>(pinfo.param));
    });

// ---------------------------------------------------------------------------
// Directed cases.

TEST(Arith, SubSetsCarryWhenNoBorrow) {
  // ARM convention: A - B sets carry iff A >= B.
  auto flags_of = [](Word a, Word b) {
    return evaluate(variety(Op::kSub), a, b, 0, 32).flags;
  };
  EXPECT_TRUE(bits::bit(flags_of(5, 3), flag::kCarry));
  EXPECT_TRUE(bits::bit(flags_of(3, 3), flag::kCarry));
  EXPECT_FALSE(bits::bit(flags_of(3, 5), flag::kCarry));
}

TEST(Arith, CmpEqualSetsZero) {
  const Result r = evaluate(variety(Op::kCmp), 1234, 1234, 0, 32);
  EXPECT_TRUE(bits::bit(r.flags, flag::kZero));
  EXPECT_FALSE(r.write_data);
}

TEST(Arith, SignedOverflowDetected) {
  // 0x7fffffff + 1 overflows signed 32-bit.
  const Result r = evaluate(variety(Op::kAdd), 0x7fffffff, 1, 0, 32);
  EXPECT_TRUE(bits::bit(r.flags, flag::kOverflow));
  EXPECT_TRUE(bits::bit(r.flags, flag::kNegative));
  // 1 + 1 does not.
  const Result r2 = evaluate(variety(Op::kAdd), 1, 1, 0, 32);
  EXPECT_FALSE(bits::bit(r2.flags, flag::kOverflow));
}

TEST(Arith, NegActsOnSecondOperand) {
  // "The negation instruction is applied to the second operand only, for
  // reasons of logic compactness."  The first operand must be ignored.
  const Result r = evaluate(variety(Op::kNeg), /*a=*/0xdeadbeef, /*b=*/5, 0, 32);
  EXPECT_EQ(r.value, 0xfffffffbu);  // -5 in 32-bit two's complement
}

TEST(Arith, MultiWordAdditionViaAdc) {
  // 64-bit addition decomposed into two 32-bit halves, carried through the
  // flag register — the thesis' "multi-word operation is supported through
  // an externally provided carry bit".
  const std::uint64_t x = 0x00000001ffffffffULL;
  const std::uint64_t y = 0x0000000200000001ULL;
  const Result lo = evaluate(variety(Op::kAdd), x & 0xffffffff, y & 0xffffffff,
                             0, 32);
  const Result hi =
      evaluate(variety(Op::kAdc), x >> 32, y >> 32, lo.flags, 32);
  const std::uint64_t sum = (static_cast<std::uint64_t>(hi.value) << 32) |
                            lo.value;
  EXPECT_EQ(sum, x + y);
}

TEST(Arith, MultiWordSubtractionViaSbb) {
  const std::uint64_t x = 0x0000000500000000ULL;
  const std::uint64_t y = 0x0000000200000001ULL;
  const Result lo = evaluate(variety(Op::kSub), x & 0xffffffff, y & 0xffffffff,
                             0, 32);
  const Result hi =
      evaluate(variety(Op::kSbb), x >> 32, y >> 32, lo.flags, 32);
  const std::uint64_t diff = (static_cast<std::uint64_t>(hi.value) << 32) |
                             lo.value;
  EXPECT_EQ(diff, x - y);
}

TEST(Arith, FullWidth64CarryOut) {
  const Result r = evaluate(variety(Op::kAdd), ~Word{0}, 1, 0, 64);
  EXPECT_EQ(r.value, 0u);
  EXPECT_TRUE(bits::bit(r.flags, flag::kCarry));
  EXPECT_TRUE(bits::bit(r.flags, flag::kZero));
}

}  // namespace
}  // namespace fpgafu::isa::arith
