#include "isa/fp32.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::fp32 {
namespace {

std::uint32_t f2u(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}
float u2f(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, 4);
  return f;
}

/// Native-FPU oracle (x86 single ops are IEEE-754 round-to-nearest-even).
/// NaN payloads are canonicalised on both sides before comparison.
std::uint32_t canon(std::uint32_t u) {
  const bool nan = (u & 0x7f800000u) == 0x7f800000u && (u & 0x007fffffu) != 0;
  return nan ? 0x7fc00000u : u;
}

void expect_bitexact(std::uint32_t got, std::uint32_t want,
                     std::uint32_t a, std::uint32_t b, const char* what) {
  ASSERT_EQ(canon(got), canon(want))
      << what << " a=0x" << std::hex << a << " b=0x" << b << " got=0x" << got
      << " want=0x" << want << std::dec << " (" << u2f(a) << ", " << u2f(b)
      << ")";
}

/// Interesting bit patterns: zeros, subnormals, normals near boundaries,
/// infinities, NaNs.
std::vector<std::uint32_t> edge_values() {
  return {
      0x00000000u, 0x80000000u,              // +-0
      0x00000001u, 0x80000001u,              // smallest subnormals
      0x007fffffu, 0x807fffffu,              // largest subnormals
      0x00800000u, 0x80800000u,              // smallest normals
      0x3f800000u, 0xbf800000u,              // +-1
      0x3f800001u, 0x3effffffu,              // near 1
      0x7f7fffffu, 0xff7fffffu,              // +-FLT_MAX
      0x7f800000u, 0xff800000u,              // +-inf
      0x7fc00000u, 0x7f800001u, 0xffc00000u, // NaNs
      0x34000000u, 0x4b000000u, 0x4b800000u, // ulp-interesting scales
      0x33800000u, 0x4effffffu, 0x5f000000u,
  };
}

TEST(Fp32, AddBitExactOnEdges) {
  for (const auto a : edge_values()) {
    for (const auto b : edge_values()) {
      expect_bitexact(soft_add(a, b), f2u(u2f(a) + u2f(b)), a, b, "add");
    }
  }
}

TEST(Fp32, MulBitExactOnEdges) {
  for (const auto a : edge_values()) {
    for (const auto b : edge_values()) {
      expect_bitexact(soft_mul(a, b), f2u(u2f(a) * u2f(b)), a, b, "mul");
    }
  }
}

TEST(Fp32, DivBitExactOnEdges) {
  for (const auto a : edge_values()) {
    for (const auto b : edge_values()) {
      expect_bitexact(soft_div(a, b), f2u(u2f(a) / u2f(b)), a, b, "div");
    }
  }
}

TEST(Fp32, AddBitExactRandomSweep) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 200000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    expect_bitexact(soft_add(a, b), f2u(u2f(a) + u2f(b)), a, b, "add");
  }
}

TEST(Fp32, MulBitExactRandomSweep) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 200000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    expect_bitexact(soft_mul(a, b), f2u(u2f(a) * u2f(b)), a, b, "mul");
  }
}

TEST(Fp32, DivBitExactRandomSweep) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 200000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    expect_bitexact(soft_div(a, b), f2u(u2f(a) / u2f(b)), a, b, "div");
  }
}

TEST(Fp32, RandomNearbyMagnitudes) {
  // Same-exponent subtraction stresses cancellation / renormalisation.
  Xoshiro256 rng(19);
  for (int i = 0; i < 50000; ++i) {
    const auto exp = static_cast<std::uint32_t>(rng.below(254) + 1) << 23;
    const auto a = static_cast<std::uint32_t>(
        exp | (rng.next() & 0x807fffffu));
    const auto b = static_cast<std::uint32_t>(
        exp | (rng.next() & 0x807fffffu));
    expect_bitexact(soft_add(a, b), f2u(u2f(a) + u2f(b)), a, b, "add-near");
  }
}

TEST(Fp32, SubViaEvaluate) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 50000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    const Result r = evaluate(variety(Op::kFsub), a, b);
    expect_bitexact(static_cast<std::uint32_t>(r.value),
                    f2u(u2f(a) - u2f(b)), a, b, "sub");
  }
}

TEST(Fp32, FlagSemantics) {
  // Overflow: FLT_MAX + FLT_MAX -> +inf with kOverflow.
  const Result ovf = evaluate(variety(Op::kFadd), 0x7f7fffffu, 0x7f7fffffu);
  EXPECT_TRUE(bits::bit(ovf.flags, flag::kOverflow));
  EXPECT_FALSE(bits::bit(ovf.flags, flag::kError));
  // Division by zero: error flag (the thesis' undefined-destination case).
  const Result dbz = evaluate(variety(Op::kFdiv), f2u(1.0f), f2u(0.0f));
  EXPECT_TRUE(bits::bit(dbz.flags, flag::kError));
  // 0/0 -> NaN: error flag.
  const Result nan = evaluate(variety(Op::kFdiv), 0, 0);
  EXPECT_TRUE(bits::bit(nan.flags, flag::kError));
  // Zero result: kZero.
  const Result z = evaluate(variety(Op::kFadd), f2u(1.0f), f2u(-1.0f));
  EXPECT_TRUE(bits::bit(z.flags, flag::kZero));
  // Negative result: kNegative.
  const Result n = evaluate(variety(Op::kFmul), f2u(2.0f), f2u(-3.0f));
  EXPECT_TRUE(bits::bit(n.flags, flag::kNegative));
}

TEST(Fp32, CompareFlags) {
  auto cmp = [](float a, float b) {
    return evaluate(variety(Op::kFcmp), f2u(a), f2u(b)).flags;
  };
  EXPECT_TRUE(bits::bit(cmp(1.0f, 1.0f), flag::kZero));
  EXPECT_TRUE(bits::bit(cmp(0.0f, -0.0f), flag::kZero));  // +-0 are equal
  EXPECT_TRUE(bits::bit(cmp(-2.0f, 1.0f), flag::kNegative));
  EXPECT_TRUE(bits::bit(cmp(-5.0f, -2.0f), flag::kNegative));
  EXPECT_FALSE(bits::bit(cmp(3.0f, 2.0f), flag::kNegative));
  const Result unordered = evaluate(variety(Op::kFcmp), 0x7fc00000u, 0);
  EXPECT_TRUE(bits::bit(unordered.flags, flag::kError));
  EXPECT_FALSE(unordered.write_data);
}

TEST(Fp32, CompareMatchesNativeOrderSweep) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 50000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    const float fa = u2f(a), fb = u2f(b);
    const Result r = evaluate(variety(Op::kFcmp), a, b);
    if (std::isnan(fa) || std::isnan(fb)) {
      ASSERT_TRUE(bits::bit(r.flags, flag::kError));
    } else {
      ASSERT_EQ(bits::bit(r.flags, flag::kZero), fa == fb);
      ASSERT_EQ(bits::bit(r.flags, flag::kNegative), fa < fb);
    }
  }
}

}  // namespace
}  // namespace fpgafu::isa::fp32
