#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/arith.hpp"
#include "isa/logic.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "util/error.hpp"

namespace fpgafu::isa {
namespace {

Instruction first_instruction(const std::string& line) {
  Program p;
  Assembler::assemble_line(line, p);
  EXPECT_EQ(p.instruction_count(), 1u);
  return Instruction::decode(p.words().front());
}

TEST(Assembler, AddEncodesOperands) {
  const Instruction i = first_instruction("ADD r3, r1, r2");
  EXPECT_EQ(i.function, fc::kArith);
  EXPECT_EQ(i.variety, arith::variety(arith::Op::kAdd));
  EXPECT_EQ(i.dst1, 3);
  EXPECT_EQ(i.src1, 1);
  EXPECT_EQ(i.src2, 2);
  EXPECT_EQ(i.dst_flag, 0);  // default flag destination
}

TEST(Assembler, AdcTakesSourceFlagAndOptionalDestFlag) {
  const Instruction i = first_instruction("ADC r3, r1, r2, f1, f2");
  EXPECT_EQ(i.variety, arith::variety(arith::Op::kAdc));
  EXPECT_EQ(i.src_flag, 1);
  EXPECT_EQ(i.dst_flag, 2);
  const Instruction j = first_instruction("ADC r3, r1, r2, f1");
  EXPECT_EQ(j.src_flag, 1);
  EXPECT_EQ(j.dst_flag, 0);
}

TEST(Assembler, NegUsesSecondOperandSlot) {
  const Instruction i = first_instruction("NEG r4, r9");
  EXPECT_EQ(i.variety, arith::variety(arith::Op::kNeg));
  EXPECT_EQ(i.dst1, 4);
  EXPECT_EQ(i.src2, 9);
  EXPECT_EQ(i.src1, 0);
}

TEST(Assembler, CmpHasNoDestination) {
  const Instruction i = first_instruction("CMP r1, r2, f3");
  EXPECT_EQ(i.variety, arith::variety(arith::Op::kCmp));
  EXPECT_EQ(i.src1, 1);
  EXPECT_EQ(i.src2, 2);
  EXPECT_EQ(i.dst_flag, 3);
  EXPECT_EQ(i.dst1, 0);
}

TEST(Assembler, PutEmitsInlineDataWord) {
  Program p;
  Assembler::assemble_line("PUT r5, #0xdeadbeefcafef00d", p);
  ASSERT_EQ(p.size_words(), 2u);
  EXPECT_EQ(p.instruction_count(), 1u);
  const Instruction i = Instruction::decode(p.words()[0]);
  EXPECT_EQ(i.function, fc::kRtm);
  EXPECT_EQ(static_cast<RtmOp>(i.variety), RtmOp::kPut);
  EXPECT_EQ(i.dst1, 5);
  EXPECT_EQ(p.words()[1], 0xdeadbeefcafef00dULL);
}

TEST(Assembler, RtmForms) {
  EXPECT_EQ(static_cast<RtmOp>(first_instruction("NOP").variety), RtmOp::kNop);
  EXPECT_EQ(static_cast<RtmOp>(first_instruction("SYNC").variety),
            RtmOp::kSync);
  const Instruction copy = first_instruction("COPY r7, r2");
  EXPECT_EQ(static_cast<RtmOp>(copy.variety), RtmOp::kCopy);
  EXPECT_EQ(copy.dst1, 7);
  EXPECT_EQ(copy.src1, 2);
  const Instruction copyf = first_instruction("COPYF f3, f1");
  EXPECT_EQ(copyf.dst_flag, 3);
  EXPECT_EQ(copyf.src_flag, 1);
  const Instruction puti = first_instruction("PUTI r2, 200");
  EXPECT_EQ(puti.aux, 200);
  const Instruction get = first_instruction("GET r9");
  EXPECT_EQ(get.src1, 9);
  const Instruction getf = first_instruction("GETF f4");
  EXPECT_EQ(getf.src_flag, 4);
}

TEST(Assembler, LogicAndShiftMnemonics) {
  EXPECT_EQ(first_instruction("AND r1, r2, r3").variety,
            logic::variety(logic::Op::kAnd));
  EXPECT_EQ(first_instruction("XNOR r1, r2, r3").variety,
            logic::variety(logic::Op::kXnor));
  EXPECT_EQ(first_instruction("NOT r1, r2").variety,
            logic::variety(logic::Op::kNot));
  EXPECT_EQ(first_instruction("CLEAR r1").variety,
            logic::variety(logic::Op::kClear));
  EXPECT_EQ(first_instruction("ROL r1, r2, r3").variety,
            shift::variety(shift::Op::kRol));
  EXPECT_EQ(first_instruction("ROL r1, r2, r3").function, fc::kShift);
}

TEST(Assembler, CaseInsensitiveMnemonicsAndComments) {
  Program p = Assembler::assemble(R"(
    ; multi-word add fragment
    put r1, #0xffffffff   # low word of x
    add r3, r1, r2, f0
    adc r4, r5, r6, f0, f0
    get r3
    get r4
  )");
  EXPECT_EQ(p.instruction_count(), 5u);
  EXPECT_EQ(p.size_words(), 6u);  // PUT carries one inline word
  EXPECT_EQ(p.expected_responses(), 2u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    Assembler::assemble("NOP\nFROB r1\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadOperands) {
  Program p;
  EXPECT_THROW(Assembler::assemble_line("ADD r1, r2", p), SimError);
  EXPECT_THROW(Assembler::assemble_line("ADD r1, r2, f3", p), SimError);
  EXPECT_THROW(Assembler::assemble_line("PUTI r1, 300", p), SimError);
  EXPECT_THROW(Assembler::assemble_line("PUT r1, 5", p), SimError);
  EXPECT_THROW(Assembler::assemble_line("COPY r1, r2, r3", p), SimError);
  EXPECT_THROW(Assembler::assemble_line("ADD r999, r1, r2", p), SimError);
}

TEST(Assembler, DisassembleRoundTrip) {
  const std::string source = R"(PUT r1, #0x12
PUTI r2, 7
ADD r3, r1, r2, f1
CMP r3, r1
GET r3
GETF f1
SYNC)";
  Program p = Assembler::assemble(source);
  const auto lines = disassemble(p.words());
  ASSERT_EQ(lines.size(), p.instruction_count());
  // Re-assembling the disassembly yields the identical word stream.
  std::string rejoined;
  for (const auto& line : lines) {
    rejoined += line + "\n";
  }
  Program p2 = Assembler::assemble(rejoined);
  EXPECT_EQ(p2.words(), p.words());
}

TEST(Assembler, DisassembleUnknownWordsAsRaw) {
  Instruction weird;
  weird.function = 0x73;  // no unit has this code
  const auto lines = disassemble({weird.encode()});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(".word", 0), 0u);
}

}  // namespace
}  // namespace fpgafu::isa
