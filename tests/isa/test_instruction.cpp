#include "isa/instruction.hpp"

#include <gtest/gtest.h>

#include "isa/types.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa {
namespace {

TEST(Instruction, EncodeMatchesFieldLayout) {
  Instruction inst;
  inst.function = 0x10;
  inst.variety = 0x25;
  inst.dst_flag = 3;
  inst.dst1 = 7;
  inst.src_flag = 1;
  inst.src2 = 9;
  inst.src1 = 4;
  inst.aux = 0xaa;
  const Word w = inst.encode();
  EXPECT_EQ(bits::field(w, 63, 56), 0x10u);
  EXPECT_EQ(bits::field(w, 55, 48), 0x25u);
  EXPECT_EQ(bits::field(w, 47, 40), 3u);
  EXPECT_EQ(bits::field(w, 39, 32), 7u);
  EXPECT_EQ(bits::field(w, 31, 24), 1u);
  EXPECT_EQ(bits::field(w, 23, 16), 9u);
  EXPECT_EQ(bits::field(w, 15, 8), 4u);
  EXPECT_EQ(bits::field(w, 7, 0), 0xaau);
}

TEST(Instruction, DecodeIsTotal) {
  // Every 64-bit word decodes without error; decode(encode(x)) == x.
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const Word w = rng.next();
    const Instruction inst = Instruction::decode(w);
    EXPECT_EQ(inst.encode(), w);
  }
}

TEST(Instruction, RoundTripFromStruct) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    Instruction inst;
    inst.function = static_cast<FunctionCode>(rng.below(256));
    inst.variety = static_cast<VarietyCode>(rng.below(256));
    inst.dst_flag = static_cast<RegNum>(rng.below(256));
    inst.dst1 = static_cast<RegNum>(rng.below(256));
    inst.src_flag = static_cast<RegNum>(rng.below(256));
    inst.src2 = static_cast<RegNum>(rng.below(256));
    inst.src1 = static_cast<RegNum>(rng.below(256));
    inst.aux = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(Instruction::decode(inst.encode()), inst);
  }
}

TEST(Instruction, DefaultIsAllZeroNop) {
  EXPECT_EQ(Instruction{}.encode(), 0u);
}

TEST(Instruction, ToStringMentionsFields) {
  Instruction inst;
  inst.function = fc::kArith;
  inst.dst1 = 3;
  const std::string s = to_string(inst);
  EXPECT_NE(s.find("fc=0x10"), std::string::npos);
  EXPECT_NE(s.find("dst=r3"), std::string::npos);
}

}  // namespace
}  // namespace fpgafu::isa
