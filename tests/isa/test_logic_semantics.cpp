#include "isa/logic.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace fpgafu::isa::logic {
namespace {

// Scalar oracle for each named op.
Word oracle(Op op, Word a, Word b, unsigned width) {
  const Word m = bits::mask(width);
  switch (op) {
    case Op::kAnd: return (a & b) & m;
    case Op::kOr: return (a | b) & m;
    case Op::kXor: return (a ^ b) & m;
    case Op::kNand: return ~(a & b) & m;
    case Op::kNor: return ~(a | b) & m;
    case Op::kXnor: return ~(a ^ b) & m;
    case Op::kNot: return ~b & m;
    case Op::kAndn: return (a & ~b) & m;
    case Op::kOrn: return (a | ~b) & m;
    case Op::kPass: return a & m;
    case Op::kClear: return 0;
    case Op::kSet: return m;
  }
  return 0;
}

class LogicOps : public ::testing::TestWithParam<Op> {};

TEST_P(LogicOps, MatchesOracleAcrossRandomOperands) {
  const Op op = GetParam();
  for (const unsigned width : {8u, 32u, 64u}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(op) * 7 + width);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.next() & bits::mask(width);
      const Word b = rng.next() & bits::mask(width);
      const Result r = evaluate(variety(op), a, b, width);
      const Word expect = oracle(op, a, b, width);
      ASSERT_EQ(r.value, expect)
          << to_string(op) << " a=" << a << " b=" << b << " w=" << width;
      ASSERT_EQ(bits::bit(r.flags, flag::kZero), expect == 0);
      ASSERT_EQ(bits::bit(r.flags, flag::kNegative),
                bits::bit(expect, width - 1));
      ASSERT_TRUE(r.write_data);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, LogicOps, ::testing::ValuesIn(kAllOps),
                         [](const ::testing::TestParamInfo<Op>& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(LogicEncoding, TruthTableIsTheEncoding) {
  // The variety code's low nibble *is* the LUT2 truth table: evaluating an
  // arbitrary nibble must behave as that boolean function.  This checks all
  // 16 functions exhaustively over all 4 input combinations, bit by bit.
  for (unsigned table = 0; table < 16; ++table) {
    const auto v = static_cast<VarietyCode>(table | (1u << vc::kOutputData));
    for (unsigned ab = 0; ab < 4; ++ab) {
      const Word a = (ab >> 1) & 1;
      const Word b = ab & 1;
      const Word expect = (table >> ab) & 1;
      EXPECT_EQ(evaluate(v, a, b, 1).value, expect)
          << "table=" << table << " a=" << a << " b=" << b;
    }
  }
}

TEST(LogicEncoding, NamedRowsAreDistinct) {
  for (Op a : kAllOps) {
    for (Op b : kAllOps) {
      if (a != b) {
        EXPECT_NE(variety(a), variety(b));
      }
    }
  }
}

TEST(Logic, NotUsesSecondOperand) {
  // Mirrors NEG's second-operand convention.
  const Result r = evaluate(variety(Op::kNot), /*a=*/0xffffffff, /*b=*/0, 32);
  EXPECT_EQ(r.value, 0xffffffffu);
}

}  // namespace
}  // namespace fpgafu::isa::logic
