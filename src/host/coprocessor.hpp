#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "isa/program.hpp"
#include "msg/response.hpp"
#include "sim/trace.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Host-side driver for a coprocessor System.
///
/// This is the software half of the paper's arrangement ("the main program
/// is written in C or any other programming language, and runs in one or
/// more CPUs which communicate via the interface with a set of functional
/// units").  It frames instruction streams onto the link, deframes
/// responses, and offers both an asynchronous submit/poll API and blocking
/// conveniences (call / read_reg / write_reg / sync).
///
/// The driver advances the simulator clock when it blocks — from the
/// software's point of view the coprocessor is "a fast I/O device" it
/// spins on.
///
/// Response deframing is checksum-verified: received link words accumulate
/// in a window and a response is only accepted when a full frame passes
/// `Response::frame_ok`.  A failing window slides forward one word at a
/// time (counted as `host.crc_resyncs`) until it realigns, so a dropped or
/// corrupted link word garbles one frame instead of every frame after it.
/// The driver also watches the simulator's reset generation: if the system
/// is reset under it (or a watchdog fires mid-call), any partially
/// deframed words are discarded instead of corrupting the next exchange.
class Coprocessor {
 public:
  explicit Coprocessor(top::System& system)
      : system_(&system),
        reset_generation_(system.simulator().reset_generation()),
        crc_resyncs_(stats_.handle("host.crc_resyncs")) {}

  // -- Asynchronous interface ----------------------------------------------
  /// Queue one 64-bit stream word for transmission (2 link words).  Blocks
  /// (stepping the clock) while the bounded downstream link buffer is full;
  /// arrived upstream words keep draining into the receive window during
  /// the wait, so a full-duplex exchange cannot deadlock.
  void submit_word(isa::Word word);

  /// Queue a whole program.
  void submit(const isa::Program& program);

  /// Non-blocking: return the next response whose complete frame has
  /// arrived and verified.
  std::optional<msg::Response> poll();

  /// Drop any partially deframed link words and restart framing from the
  /// next word to arrive.  Wired automatically to system reset and call
  /// watchdogs; harmless to call at any frame boundary.
  void reset();

  // -- Blocking conveniences -------------------------------------------------
  /// Submit a program and run the clock until all of its responses arrived
  /// (plus any extra error responses — collected until the system drains).
  std::vector<msg::Response> call(const isa::Program& program,
                                  std::uint64_t max_cycles = 10'000'000);

  /// Wait for the next single response.
  msg::Response wait_response(std::uint64_t max_cycles = 10'000'000);

  /// Register file access through PUT/GET round trips.
  void write_reg(isa::RegNum reg, isa::Word value);
  isa::Word read_reg(isa::RegNum reg);
  isa::FlagWord read_flags(isa::RegNum flag_reg);

  /// Burst register access through PUTV/GETV — one header word per burst
  /// instead of one instruction word per register.
  void write_regs(isa::RegNum base, const std::vector<isa::Word>& values);
  std::vector<isa::Word> read_regs(isa::RegNum base, std::uint8_t count);

  /// Issue a SYNC barrier and wait for its completion.
  void sync();

  /// Total responses received so far.
  std::uint64_t responses_received() const { return responses_received_; }

  /// Host-side framing statistics (host.crc_resyncs).
  const sim::Counters& counters() const { return stats_; }

  top::System& system() { return *system_; }
  const top::System& system() const { return *system_; }

 private:
  /// Discard stale framing state if the system was reset since last use.
  void sync_reset();
  /// Move every arrived upstream link word into the receive window.
  void pump_rx();
  /// Send one link word, spinning the clock while the link is full.
  void send_link_word(msg::LinkWord word);

  top::System* system_;
  std::deque<msg::LinkWord> rx_words_;  ///< deframing window
  std::uint64_t reset_generation_;
  std::uint64_t responses_received_ = 0;
  sim::Counters stats_;
  sim::Counters::Handle crc_resyncs_;
};

}  // namespace fpgafu::host
