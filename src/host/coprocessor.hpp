#pragma once

#include <array>
#include <optional>
#include <vector>

#include "isa/program.hpp"
#include "msg/response.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Host-side driver for a coprocessor System.
///
/// This is the software half of the paper's arrangement ("the main program
/// is written in C or any other programming language, and runs in one or
/// more CPUs which communicate via the interface with a set of functional
/// units").  It frames instruction streams onto the link, deframes
/// responses, and offers both an asynchronous submit/poll API and blocking
/// conveniences (call / read_reg / write_reg / sync).
///
/// The driver advances the simulator clock when it blocks — from the
/// software's point of view the coprocessor is "a fast I/O device" it
/// spins on.
class Coprocessor {
 public:
  explicit Coprocessor(top::System& system) : system_(&system) {}

  // -- Asynchronous interface ----------------------------------------------
  /// Queue one 64-bit stream word for transmission (2 link words).
  void submit_word(isa::Word word);

  /// Queue a whole program.
  void submit(const isa::Program& program);

  /// Non-blocking: reassemble and return the next response if its three
  /// link words have all arrived.
  std::optional<msg::Response> poll();

  // -- Blocking conveniences -------------------------------------------------
  /// Submit a program and run the clock until all of its responses arrived
  /// (plus any extra error responses — collected until the system drains).
  std::vector<msg::Response> call(const isa::Program& program,
                                  std::uint64_t max_cycles = 10'000'000);

  /// Wait for the next single response.
  msg::Response wait_response(std::uint64_t max_cycles = 10'000'000);

  /// Register file access through PUT/GET round trips.
  void write_reg(isa::RegNum reg, isa::Word value);
  isa::Word read_reg(isa::RegNum reg);
  isa::FlagWord read_flags(isa::RegNum flag_reg);

  /// Burst register access through PUTV/GETV — one header word per burst
  /// instead of one instruction word per register.
  void write_regs(isa::RegNum base, const std::vector<isa::Word>& values);
  std::vector<isa::Word> read_regs(isa::RegNum base, std::uint8_t count);

  /// Issue a SYNC barrier and wait for its completion.
  void sync();

  /// Total responses received so far.
  std::uint64_t responses_received() const { return responses_received_; }

  top::System& system() { return *system_; }
  const top::System& system() const { return *system_; }

 private:
  top::System* system_;
  std::array<msg::LinkWord, msg::kLinkWordsPerResponse> frame_{};
  unsigned frame_fill_ = 0;
  std::uint64_t responses_received_ = 0;
};

}  // namespace fpgafu::host
