#pragma once

#include <optional>
#include <vector>

#include "host/driver.hpp"
#include "isa/program.hpp"
#include "msg/response.hpp"
#include "sim/trace.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Host-side blocking convenience API for a coprocessor System.
///
/// This is the software half of the paper's arrangement ("the main program
/// is written in C or any other programming language, and runs in one or
/// more CPUs which communicate via the interface with a set of functional
/// units").  It is a thin façade over the host::Driver (the non-blocking
/// link state machine: tx queue + CRC-checked response deframing) and the
/// host::Pump (the one owner of clock advancement): every blocking call
/// here is "enqueue onto the Driver, then Pump until done or the Deadline
/// expires".  Callers that want to integrate with their own event loop can
/// use `driver()` / `pump()` directly.
///
/// From the software's point of view the coprocessor is "a fast I/O
/// device" it spins on; the spin itself lives in Pump, not here.
class Coprocessor {
 public:
  explicit Coprocessor(top::System& system)
      : driver_(system), pump_(system.simulator(), driver_) {}

  // -- Asynchronous interface ----------------------------------------------
  /// Queue one 64-bit stream word for transmission (2 link words).  Blocks
  /// (stepping the clock) while the bounded downstream link buffer is full;
  /// arrived upstream words keep draining into the receive window during
  /// the wait, so a full-duplex exchange cannot deadlock.
  void submit_word(isa::Word word);

  /// Queue a whole program.
  void submit(const isa::Program& program);

  /// Non-blocking: return the next response whose complete frame has
  /// arrived and verified.
  std::optional<msg::Response> poll() { return driver_.poll(); }

  /// Drop any partially deframed link words and restart framing from the
  /// next word to arrive.  Wired automatically to system reset and call
  /// watchdogs; harmless to call at any frame boundary.
  void reset() { driver_.reset(); }

  // -- Blocking conveniences -------------------------------------------------
  /// Submit a program and run the clock until all of its responses arrived
  /// (plus any extra error responses — collected until the system drains).
  std::vector<msg::Response> call(
      const isa::Program& program,
      std::uint64_t max_cycles = kDefaultCallBudgetCycles);

  /// Wait for the next single response.
  msg::Response wait_response(
      std::uint64_t max_cycles = kDefaultCallBudgetCycles);

  /// Register file access through PUT/GET round trips.
  void write_reg(isa::RegNum reg, isa::Word value);
  isa::Word read_reg(isa::RegNum reg);
  isa::FlagWord read_flags(isa::RegNum flag_reg);

  /// Burst register access through PUTV/GETV — one header word per burst
  /// instead of one instruction word per register.
  void write_regs(isa::RegNum base, const std::vector<isa::Word>& values);
  std::vector<isa::Word> read_regs(isa::RegNum base, std::uint8_t count);

  /// Issue a SYNC barrier and wait for its completion.
  void sync();

  /// Total responses received so far.
  std::uint64_t responses_received() const {
    return driver_.responses_received();
  }

  /// Host-side framing statistics (host.crc_resyncs).
  const sim::Counters& counters() const { return driver_.counters(); }

  top::System& system() { return driver_.system(); }
  const top::System& system() const { return driver_.system(); }

  /// The underlying non-blocking link state machine.
  Driver& driver() { return driver_; }
  /// The clock owner every blocking convenience above runs on.  Shared with
  /// ReliableTransport and MultiHost so one System has one pump.
  Pump& pump() { return pump_; }

 private:
  Driver driver_;
  Pump pump_;
};

}  // namespace fpgafu::host
