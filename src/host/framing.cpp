#include "host/framing.hpp"

#include "isa/rtm_ops.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

std::vector<InstructionGroup> split_groups(const isa::Program& program) {
  std::vector<InstructionGroup> groups;
  const auto& words = program.words();
  for (std::size_t i = 0; i < words.size(); ++i) {
    InstructionGroup group;
    group.words.push_back(words[i]);
    group.inst = isa::Instruction::decode(words[i]);
    if (group.inst.function == isa::fc::kRtm) {
      const auto op = static_cast<isa::RtmOp>(group.inst.variety);
      std::size_t payload_words = 0;
      if (op == isa::RtmOp::kPut) {
        payload_words = 1;
      } else if (op == isa::RtmOp::kPutVec) {
        payload_words = group.inst.aux;
      }
      check(i + payload_words < words.size(),
            "program ends inside a PUT/PUTV payload");
      for (std::size_t k = 0; k < payload_words; ++k) {
        group.words.push_back(words[++i]);
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

ResponsePrediction predict(const isa::Instruction& inst,
                           const rtm::RtmConfig& config,
                           const rtm::FunctionalUnitTable& table) {
  auto data_ok = [&](isa::RegNum r) { return r < config.data_regs; };
  auto flag_ok = [&](isa::RegNum r) { return r < config.flag_regs; };
  const ResponsePrediction one_error{1, true};

  using isa::RtmOp;
  if (inst.function == isa::fc::kRtm) {
    switch (static_cast<RtmOp>(inst.variety)) {
      case RtmOp::kNop:
        return {0, true};
      case RtmOp::kSync:
        return {1, true};
      case RtmOp::kCopy:
        return data_ok(inst.dst1) && data_ok(inst.src1)
                   ? ResponsePrediction{0, false}
                   : one_error;
      case RtmOp::kCopyFlags:
        return flag_ok(inst.dst_flag) && flag_ok(inst.src_flag)
                   ? ResponsePrediction{0, false}
                   : one_error;
      case RtmOp::kPut:
      case RtmOp::kPutImm:
        return data_ok(inst.dst1) ? ResponsePrediction{0, false} : one_error;
      case RtmOp::kPutVec:
        // A zero-length burst does nothing, even with an invalid base: the
        // decoder returns before validation can report.
        if (inst.aux == 0) {
          return {0, true};
        }
        return static_cast<unsigned>(inst.dst1) + inst.aux <= config.data_regs
                   ? ResponsePrediction{0, false}
                   : one_error;
      case RtmOp::kGetVec:
        // Every sub-read responds, in-range as data and out-of-range as an
        // error, so the count is always aux.
        return {inst.aux, true};
      case RtmOp::kPutFlags:
        return flag_ok(inst.dst_flag) ? ResponsePrediction{0, false}
                                      : one_error;
      case RtmOp::kGet:
        return {1, true};  // data or error, always exactly one
      case RtmOp::kGetFlags:
        return {1, true};
    }
    return one_error;  // unknown RTM variety -> kUnknownFunction response
  }

  // Functional-unit instruction: decoder validation first, then the
  // dispatcher's routing checks, in the same order.
  if (!data_ok(inst.dst1) || !data_ok(inst.src1) || !data_ok(inst.src2) ||
      !flag_ok(inst.dst_flag) || !flag_ok(inst.src_flag)) {
    return one_error;
  }
  fu::FunctionalUnit* unit = table.find(inst.function);
  if (unit == nullptr) {
    return one_error;  // unattached function code
  }
  if (unit->writes_second(inst.variety) &&
      (!data_ok(inst.aux) || inst.aux == inst.dst1)) {
    return one_error;  // dual-output destination fault
  }
  return {0, false};  // dispatched to the unit; results land in registers
}

GroupEffects group_effects(const isa::Instruction& inst,
                           const rtm::RtmConfig& config,
                           const rtm::FunctionalUnitTable& table) {
  auto data_ok = [&](isa::RegNum r) { return r < config.data_regs; };
  auto flag_ok = [&](isa::RegNum r) { return r < config.flag_regs; };
  GroupEffects e;
  e.exact = true;  // every early return below is a complete footprint

  using isa::RtmOp;
  if (inst.function == isa::fc::kRtm) {
    switch (static_cast<RtmOp>(inst.variety)) {
      case RtmOp::kNop:
      case RtmOp::kSync:
        return e;  // no register traffic; SYNC's echo is value-independent
      case RtmOp::kCopy:
        if (data_ok(inst.dst1) && data_ok(inst.src1)) {
          e.data_writes.set(inst.dst1);
        }
        return e;  // invalid -> error response, write never lands
      case RtmOp::kCopyFlags:
        if (flag_ok(inst.dst_flag) && flag_ok(inst.src_flag)) {
          e.flag_writes.set(inst.dst_flag);
        }
        return e;
      case RtmOp::kPut:
      case RtmOp::kPutImm:
        if (data_ok(inst.dst1)) {
          e.data_writes.set(inst.dst1);
        }
        return e;
      case RtmOp::kPutVec:
        if (inst.aux > 0 &&
            static_cast<unsigned>(inst.dst1) + inst.aux <= config.data_regs) {
          for (unsigned i = 0; i < inst.aux; ++i) {
            e.data_writes.set(inst.dst1 + i);
          }
        }
        return e;  // oversized burst is discarded whole (one error response)
      case RtmOp::kGetVec:
        // In-range sub-reads return register values; out-of-range ones
        // return value-independent errors and read nothing.
        for (unsigned i = 0; i < inst.aux; ++i) {
          const unsigned reg = static_cast<unsigned>(inst.src1) + i;
          if (reg < config.data_regs) {
            e.data_reads.set(reg);
          }
        }
        return e;
      case RtmOp::kPutFlags:
        if (flag_ok(inst.dst_flag)) {
          e.flag_writes.set(inst.dst_flag);
        }
        return e;
      case RtmOp::kGet:
        if (data_ok(inst.src1)) {
          e.data_reads.set(inst.src1);
        }
        return e;
      case RtmOp::kGetFlags:
        if (flag_ok(inst.src_flag)) {
          e.flag_reads.set(inst.src_flag);
        }
        return e;
    }
    return e;  // unknown variety -> value-independent kUnknownFunction
  }

  // Functional-unit instruction: same validation chain as predict().  A
  // group that dispatches writes dst1, the second destination when the
  // unit produces one, and dst_flag (conservatively: every dispatched FU
  // op retires a flag word).  Its *reads* (src1/src2/src_flag) do not
  // matter to the barrier — FU groups are never retried.
  if (!data_ok(inst.dst1) || !data_ok(inst.src1) || !data_ok(inst.src2) ||
      !flag_ok(inst.dst_flag) || !flag_ok(inst.src_flag)) {
    return e;
  }
  fu::FunctionalUnit* unit = table.find(inst.function);
  if (unit == nullptr) {
    return e;
  }
  const bool second = unit->writes_second(inst.variety);
  if (second && (!data_ok(inst.aux) || inst.aux == inst.dst1)) {
    return e;  // dual-output destination fault: predicted error, no writes
  }
  e.data_writes.set(inst.dst1);
  if (second) {
    e.data_writes.set(inst.aux);
  }
  e.flag_writes.set(inst.dst_flag);
  return e;
}

FrameLayout split_frame(const std::vector<const isa::Program*>& programs,
                        const rtm::RtmConfig& config,
                        const rtm::FunctionalUnitTable& table) {
  FrameLayout frame;
  for (const isa::Program* program : programs) {
    check(program != nullptr, "split_frame: null member program");
    FrameMember member;
    member.first_group = frame.groups.size();
    std::vector<InstructionGroup> groups = split_groups(*program);
    member.group_count = groups.size();
    for (InstructionGroup& g : groups) {
      const ResponsePrediction pred = predict(g.inst, config, table);
      member.response_count += pred.count;
      frame.predictions.push_back(pred);
      frame.effects.push_back(group_effects(g.inst, config, table));
      frame.groups.push_back(std::move(g));
    }
    frame.members.push_back(member);
  }
  return frame;
}

}  // namespace fpgafu::host
