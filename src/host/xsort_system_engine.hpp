#pragma once

#include "host/coprocessor.hpp"
#include "xsort/engine.hpp"

namespace fpgafu::host {

/// χ-sort engine that issues every operation through the complete system
/// path: host driver -> link -> message buffer -> RTM (decode, dispatch,
/// writeback) -> link -> host.  Per operation it executes the three-
/// instruction idiom
///
///   PUT  r_op, #operand
///   XOP  r_res, r_op          (function code fc::kXsort)
///   GET  r_res
///
/// so the measured cost includes every interface overhead the paper's
/// end-to-end discussion covers.  The System must have been built with
/// `with_xsort = true`.
class SystemXsortEngine : public xsort::XsortEngine {
 public:
  explicit SystemXsortEngine(top::System& system);

  std::uint64_t op(xsort::XsortOp o, std::uint64_t operand) override;
  using XsortEngine::op;

  std::size_t capacity() const override { return capacity_; }
  std::uint64_t cost_cycles() const override;
  void reset_cost() override;

  Coprocessor& coprocessor() { return copro_; }

 private:
  /// Register allocation for the idiom (any free registers work).
  static constexpr isa::RegNum kOperandReg = 1;
  static constexpr isa::RegNum kResultReg = 2;

  Coprocessor copro_;
  std::size_t capacity_;
  std::uint64_t cost_base_ = 0;
};

}  // namespace fpgafu::host
