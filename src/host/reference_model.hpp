#pragma once

#include <vector>

#include "isa/program.hpp"
#include "msg/response.hpp"
#include "rtm/rtm.hpp"

namespace fpgafu::host {

/// Golden sequential reference model of the coprocessor's architectural
/// semantics.
///
/// Executes an instruction stream the way a (bug-free) RTM must appear to
/// have executed it from the host's point of view: in program order, with
/// the stateless units' ISA-level semantics, producing the exact response
/// stream.  Because the hardware guarantees that out-of-order completion is
/// architecturally invisible ("the stream of results returned to the
/// processor will be consistent with the stream of instructions that were
/// issued"), the cycle-accurate model and this one-line-at-a-time model
/// must agree response-for-response — the property the randomized
/// integration tests check.
///
/// Stateful (user) functional units are outside its scope; attach unit
/// emulators via `set_unit_hook` if needed.
class ReferenceModel {
 public:
  explicit ReferenceModel(const rtm::RtmConfig& config);

  /// Run a whole instruction stream, returning the response sequence.
  std::vector<msg::Response> run(const isa::Program& program);

  /// Feed a single stream word (instructions and PUT payloads); responses
  /// accumulate in `responses()`.
  void feed(isa::Word word);

  const std::vector<msg::Response>& responses() const { return responses_; }
  isa::Word reg(isa::RegNum r) const { return regs_.at(r); }
  isa::FlagWord flag_reg(isa::RegNum r) const { return flags_.at(r); }
  void clear();

 private:
  void execute(const isa::Instruction& inst, std::uint16_t seq);

  rtm::RtmConfig config_;
  std::vector<isa::Word> regs_;
  std::vector<isa::FlagWord> flags_;
  std::vector<msg::Response> responses_;
  std::uint16_t seq_ = 0;
  bool awaiting_put_data_ = false;
  bool discard_put_data_ = false;
  isa::Instruction pending_put_;
  std::uint16_t vec_remaining_ = 0;  ///< outstanding PUTV payload words
  isa::RegNum vec_base_ = 0;
  std::uint8_t vec_index_ = 0;
  bool vec_discard_ = false;
};

}  // namespace fpgafu::host
