#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fu/functional_unit.hpp"
#include "host/coprocessor.hpp"
#include "isa/types.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace fpgafu::host {

/// A loadable "algorithm image": the unit of FPGA reconfiguration the
/// algorithm-on-demand manager schedules.  An image bundles one or more
/// functional units (one per declared function code) plus the modelled cost
/// of loading its partial bitstream, following the paper's observation that
/// "the functional unit approach lends itself to dynamic reconfiguration" —
/// the framework swaps algorithm circuits in and out of a fixed slot budget
/// at runtime instead of synthesising one monolithic design.
struct AlgorithmImage {
  /// Stable identity used by the replacement policy and the counters.
  std::string name;
  /// Function codes this image implements.  Each code occupies one physical
  /// slot while the image is resident; an image is loaded and evicted as a
  /// whole (a partial bitstream is indivisible).
  std::vector<isa::FunctionCode> codes;
  /// Modelled partial-reconfiguration latency in FPGA cycles, charged on
  /// the simulated clock through the FuLoader when the image is (re)loaded.
  /// Real PR times are tens of milliseconds — large enough that the
  /// scheduler must care, which is the point of modelling them.
  std::uint64_t load_cycles = 1000;
  /// Construct the functional unit for one of this image's codes, against
  /// the target system's simulator.  Called at most once per code: the
  /// manager caches constructed units (hardware analogue: the bitstream in
  /// host RAM) so eviction never destroys a sim::Component mid-simulation,
  /// while a reload still pays load_cycles.
  std::function<std::unique_ptr<fu::FunctionalUnit>(sim::Simulator&,
                                                    isa::FunctionCode)>
      factory;

  /// Slots this image occupies while resident.
  std::size_t slot_cost() const { return codes.size(); }
};

/// Victim-selection strategy for the manager's slot cache.  Policies see
/// load/hit/evict events and pick which resident image to displace; the
/// manager handles the mechanics (drain, detach, reload accounting).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual std::string name() const = 0;
  /// `now` is a monotonic touch tick supplied by the manager (NOT the
  /// simulated cycle: a cache hit does not move the clock, so cycle-stamped
  /// recency would tie a hit with the load right before it);
  /// `load_cycles` is the image's reload cost.
  virtual void on_load(const std::string& image, std::uint64_t now,
                       std::uint64_t load_cycles) = 0;
  virtual void on_hit(const std::string& image, std::uint64_t now,
                      std::uint64_t load_cycles) = 0;
  virtual void on_evict(const std::string& image) = 0;
  /// Choose the victim among `candidates` (resident images not needed by
  /// the in-progress request; never empty).
  virtual std::string victim(const std::vector<std::string>& candidates) = 0;
};

/// Classic least-recently-used: evict the image whose last touch is oldest.
/// Ignores reload cost — the control experiment the cost-aware policy is
/// measured against.
class LruPolicy final : public ReplacementPolicy {
 public:
  std::string name() const override { return "lru"; }
  void on_load(const std::string& image, std::uint64_t now,
               std::uint64_t) override {
    last_use_[image] = now;
  }
  void on_hit(const std::string& image, std::uint64_t now,
              std::uint64_t) override {
    last_use_[image] = now;
  }
  void on_evict(const std::string& image) override { last_use_.erase(image); }
  std::string victim(const std::vector<std::string>& candidates) override;

 private:
  std::map<std::string, std::uint64_t> last_use_;
};

/// GreedyDual cost-aware replacement: each resident image carries a
/// retention credit `H = L + load_cycles`, refreshed on every touch, where
/// `L` is the *aging level* — the credit of the last evicted image (the
/// classic GreedyDual "inflation" trick, kept as a running max so it never
/// moves backwards).  The victim is the minimum-H image, ties broken by
/// oldest touch.  Expensive-to-reload images (slow partial bitstreams)
/// survive longer than cheap ones at equal recency, but an expensive image
/// that stops being touched is eventually aged out: every eviction raises
/// L, so freshly touched cheap images overtake a stale dear one instead of
/// letting it squat on a slot forever.  When all costs match the ordering
/// reduces to exact LRU (credits tie, the touch-tick tie-break decides).
class CostAwarePolicy final : public ReplacementPolicy {
 public:
  std::string name() const override { return "cost"; }
  void on_load(const std::string& image, std::uint64_t now,
               std::uint64_t load_cycles) override {
    entries_[image] = Entry{level_ + load_cycles, now};
  }
  void on_hit(const std::string& image, std::uint64_t now,
              std::uint64_t load_cycles) override {
    entries_[image] = Entry{level_ + load_cycles, now};
  }
  void on_evict(const std::string& image) override {
    auto it = entries_.find(image);
    if (it != entries_.end()) {
      level_ = std::max(level_, it->second.credit);
      entries_.erase(it);
    }
  }
  std::string victim(const std::vector<std::string>& candidates) override;

 private:
  struct Entry {
    std::uint64_t credit = 0;  ///< L at touch time + load_cycles
    std::uint64_t touch = 0;   ///< touch tick, tie-break (older loses)
  };
  std::map<std::string, Entry> entries_;
  std::uint64_t level_ = 0;  ///< running max of evicted credits
};

/// The reconfiguration port, as a simulated hardware block: while a load is
/// in progress the loader is busy for the image's load_cycles, so swap
/// latency lands on the same clock as everything else — visible in cycle
/// counts, the counters and a VCD dump, not hidden in host bookkeeping.
class FuLoader final : public sim::Component {
 public:
  FuLoader(sim::Simulator& sim, std::string name)
      : sim::Component(sim, std::move(name)) {}

  /// Begin a load taking `cycles` clock cycles.  Only one load at a time
  /// (one reconfiguration port, like real PR controllers).
  void start(std::uint64_t cycles);
  bool busy() const { return remaining_ > 0; }

  void commit() override {
    if (remaining_ > 0) {
      --remaining_;
      mark_active();
    }
  }
  void reset() override { remaining_ = 0; }

 private:
  std::uint64_t remaining_ = 0;
};

struct FuManagerConfig {
  /// Physical slot budget: how many function codes can be resident at
  /// once.  The interesting regime is slots < union of the tenants'
  /// demands, which is what forces replacement.
  std::size_t slots = 4;
  /// Victim selection; defaults to LRU when null.
  std::shared_ptr<ReplacementPolicy> policy;
};

/// Algorithm-on-demand manager: a software-managed cache of functional
/// units over a bounded set of physical FU slots.
///
/// `register_image()` declares what *could* run (codes become typed
/// kUnitUnavailable instead of kUnknownFunction); `ensure_resident()` is
/// the cache probe — a hit refreshes the policy, a miss drains and evicts
/// victims via the RTM's hot-swap drain protocol, charges the image's
/// load latency on the simulated clock through the FuLoader, and attaches
/// the image's units.  Counters (algod.hits / misses / evictions / loads /
/// load_cycles / drain_cycles) quantify the cache behaviour the bench and
/// the multi-tenant soak assert on.
///
/// Thread discipline: a FuManager lives with its System on one shard
/// thread (the Farm's share-nothing rule); it is not itself thread-safe.
class FuManager {
 public:
  FuManager(Coprocessor& coproc, FuManagerConfig config);

  /// Register a loadable image and declare its codes known-but-unavailable
  /// (until first load, instructions for them error with kUnitUnavailable,
  /// which hosts treat as retryable).  Codes must not collide with another
  /// registered image or with a unit attached outside the manager; the
  /// image must fit the slot budget.
  void register_image(AlgorithmImage image);

  /// Make `name`'s image dispatchable, evicting victims and pumping the
  /// clock through drain + load as needed.  No-op (a recorded hit) when
  /// already resident.
  void ensure_resident(const std::string& name);

  /// Ensure every image in `names` is resident at once.  Orders misses
  /// after hits so a loaded image cannot be chosen as a victim for its
  /// co-scheduled peer.
  void ensure_resident_all(const std::vector<std::string>& names);

  bool resident(const std::string& name) const;
  bool registered(const std::string& name) const {
    return images_.count(name) != 0;
  }

  /// Cycles of load latency a request for `names` would have to pay right
  /// now (0 = all resident).  The Farm's affinity router uses this to pick
  /// the cheapest shard for a session's required set.
  std::uint64_t swap_cost(const std::vector<std::string>& names) const;

  /// Resident image names (unordered).
  std::vector<std::string> resident_images() const;

  std::size_t slots() const { return config_.slots; }
  std::size_t slots_used() const { return slots_used_; }

  const sim::Counters& counters() const { return stats_; }
  ReplacementPolicy& policy() { return *config_.policy; }

 private:
  /// Evict resident images until `cost` slots are free, never touching
  /// images named in `protect` (the request being satisfied).
  void make_room(std::size_t cost, const std::vector<std::string>& protect);
  /// Evict `name` through the drain protocol: begin_detach each code, pump
  /// until drained, finish_detach (leaves codes declared-unavailable).
  void evict(const std::string& name);
  /// Charge the image's load latency on the clock, then attach its units
  /// (constructing them on first load, reusing the cache after).
  void load(AlgorithmImage& image);

  Coprocessor* coproc_;
  FuManagerConfig config_;
  FuLoader loader_;
  std::map<std::string, AlgorithmImage> images_;
  std::map<std::string, bool> resident_;
  /// Constructed units, keyed "image\x1fcode": survive eviction so a
  /// sim::Component is never destroyed mid-simulation.
  std::map<std::string, std::unique_ptr<fu::FunctionalUnit>> unit_cache_;
  std::size_t slots_used_ = 0;
  /// Monotonic event counter fed to the policy as its recency clock.
  std::uint64_t touch_tick_ = 0;

  sim::Counters stats_;
  sim::Counters::Handle hits_;
  sim::Counters::Handle misses_;
  sim::Counters::Handle evictions_;
  sim::Counters::Handle loads_;
  sim::Counters::Handle load_cycles_;
  sim::Counters::Handle drain_cycles_;
};

}  // namespace fpgafu::host
