#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/types.hpp"
#include "sim/simulator.hpp"

namespace fpgafu::host::hpcc {

/// HPCC-style macro-workload suite for the simulated coprocessor.
///
/// Micro-benchmarks of the settle loop and the farm plumbing say nothing
/// about what the paper's coprocessor model is *for*; this module ports the
/// shape of the HPC Challenge suite (STREAM, RandomAccess, GEMM, b_eff —
/// the same workloads the HPCC_FPGA projects implement for real FPGAs)
/// onto the RTM as host programs plus functional units:
///
///  * STREAM     — copy/scale/add/triad over vectors in a ScratchpadUnit,
///                 all host<->FPGA data moving in PUTV/GETV bursts;
///  * RandomAccess — GUPS-style dependent read-modify-write updates with
///                 the LCG advanced *on the FPGA* (shift/arith/logic units),
///                 hammering the lock manager, register file and scratchpad;
///  * GEMM       — blocked matrix multiply on the pipelined fu::GemmUnit
///                 with a host-side blocking driver tiling panels through
///                 the link;
///  * b_eff      — link-efficiency sweep over message sizes (PUTV down,
///                 GETV echo up) through host::ReliableTransport, on a
///                 clean or fault-injecting link.
///
/// Every workload validates its results against a host-computed oracle (or
/// host::ReferenceModel for b_eff) and reports simulated cycles plus host
/// wall time, so the perf trajectory tracks *workloads* end to end.
///
/// Workload determinism: everything is seeded, and all randomness flows
/// through util::Xoshiro256 — a given (config, kernel) pair reproduces the
/// exact instruction stream, update sequence and results.

using Kernel = sim::Simulator::Kernel;

/// Outcome of one measured workload pass.
struct WorkloadResult {
  std::string name;      ///< e.g. "stream_triad", "random_access"
  std::string job_unit;  ///< what `jobs` counts: "word", "update", "mac"
  std::uint64_t jobs = 0;        ///< workload units completed
  std::uint64_t cycles = 0;      ///< simulated cycles of the measured pass
  double wall_ms = 0.0;          ///< host wall time of the measured pass
  std::uint64_t verified = 0;    ///< values checked against the oracle
  std::uint64_t mismatches = 0;  ///< oracle disagreements (0 == correct)

  bool ok() const { return mismatches == 0 && verified > 0; }
  double jobs_per_cycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(jobs) / static_cast<double>(cycles);
  }
  double jobs_per_second() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(jobs) * 1e3 / wall_ms;
  }
};

/// STREAM: four passes (copy c=a; scale b=q*c; add c=a+b; triad a=b+q*c)
/// over `elements`-long vectors living in one scratchpad, register-blocked
/// `block` elements at a time.  Returns one result per pass, in HPCC order.
struct StreamConfig {
  std::size_t elements = 256;  ///< vector length (multiple of `block`)
  std::size_t block = 8;       ///< register-block width, 1..8
  isa::Word scalar = 3;        ///< the STREAM `q`
  std::uint64_t seed = 0x57ea1155;
};
std::vector<WorkloadResult> run_stream(Kernel kernel,
                                       const StreamConfig& cfg = {});

/// RandomAccess: GUPS-style table updates `table[ran & (size-1)] ^= ran`
/// with the HPCC polynomial LCG `ran' = (ran << 1) ^ (msb(ran) ? 7 : 0)`
/// computed on the FPGA.  Every update is a dependent
/// shift/neg/and/shift/xor/and/read/xor/write chain through the register
/// file — the lock-manager stress case.
struct RandomAccessConfig {
  std::size_t table_words = 256;  ///< must be a power of two
  std::size_t updates = 512;
  std::size_t sample_every = 16;  ///< GET the LCG state every k updates
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< initial LCG state (0 -> 1)
  /// Append an out-of-range read and write probe after the updates and
  /// observe the scratchpad's error flag through GETF.
  bool probe_out_of_range = false;
};
struct RandomAccessOutcome {
  WorkloadResult result;
  /// LCG state sampled every `sample_every` updates (the update-sequence
  /// fingerprint the determinism test compares across runs).
  std::vector<isa::Word> sampled_state;
  std::vector<isa::Word> final_table;
  /// True iff the out-of-range probe came back with flag::kError set on
  /// both the read and the write (only meaningful with probe_out_of_range).
  bool error_flag_seen = false;
};
RandomAccessOutcome run_random_access(Kernel kernel,
                                      const RandomAccessConfig& cfg = {});

/// Blocked GEMM: C = A·B for n×n matrices, tiled into block×block panels
/// streamed through the pipelined fu::GemmUnit by a host-side blocking
/// driver (load panels via PUTV bursts, kStart sweeps, GETV the C block
/// back).  `jobs` counts multiply-accumulates (n³).
struct GemmConfig {
  std::size_t n = 16;     ///< matrix dimension (multiple of `block`)
  std::size_t block = 4;  ///< panel edge, 1..8
  std::uint64_t seed = 0x6e440110;
};
WorkloadResult run_gemm(Kernel kernel, const GemmConfig& cfg = {});

/// b_eff: effective link bandwidth vs message size.  One "exchange" sends
/// `message_words` 64-bit payload words downstream in PUTV bursts and
/// echoes them upstream as GETV data responses, through ReliableTransport
/// (so the faulty variant measures goodput including retries).  The
/// response stream is checked against host::ReferenceModel exactly.
struct BeffConfig {
  std::vector<std::size_t> message_words = {1, 2, 4, 8, 16, 32, 64, 128};
  unsigned repeats = 4;  ///< exchanges averaged per message size
  bool faulty = false;   ///< inject upstream drop/corrupt/duplicate + jitter
  std::uint32_t fault_ppm = 10000;  ///< per-word, per-class rate when faulty
  std::uint64_t seed = 0xbeef0042;
};
struct BeffPoint {
  std::size_t message_words = 0;
  std::uint64_t cycles = 0;  ///< total cycles over `repeats` exchanges
  /// Payload goodput: 2 * message_words * repeats / cycles (both
  /// directions count; framing, CRC words and retries are the overhead).
  double payload_words_per_cycle = 0.0;
};
struct BeffOutcome {
  WorkloadResult result;
  std::vector<BeffPoint> points;
  std::uint64_t transport_retries = 0;  ///< nonzero only on faulty runs
};
BeffOutcome run_beff(Kernel kernel, const BeffConfig& cfg = {});

/// Every pinned settle kernel, in calibration order (Simulator::kAllKernels).
std::vector<Kernel> all_kernels();
const char* kernel_name(Kernel kernel);

}  // namespace fpgafu::host::hpcc
