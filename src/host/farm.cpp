#include "host/farm.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace fpgafu::host {

namespace {
/// Tenant bucket for session-less submissions.  Round-robin fairness treats
/// all of them as one tenant; they are exempt from per-session bounds.
constexpr Farm::SessionId kNoSession = ~std::uint64_t{0};
/// Most recent per-shard job-latency samples kept for job_latency_samples()
/// (a bounded ring, so a long-lived farm's footprint stays flat).
constexpr std::size_t kLatencyRingCapacity = 65536;
}  // namespace

LatencyPercentiles latency_percentiles(std::vector<std::uint64_t> samples) {
  LatencyPercentiles p;
  p.samples = samples.size();
  if (samples.empty()) {
    return p;
  }
  std::sort(samples.begin(), samples.end());
  const auto rank = [&](double q) {
    std::size_t r = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    r = std::min(std::max<std::size_t>(r, 1), samples.size());
    return samples[r - 1];
  };
  p.p50 = rank(0.50);
  p.p95 = rank(0.95);
  p.p99 = rank(0.99);
  return p;
}

/// One farm job: the program, its budget, which tenant it counts against,
/// the algorithm images it requires resident, and exactly one completion
/// surface — a promise (submit), a callback (submit_async) or a
/// stream/done pair (submit_stream).
struct Farm::Job {
  isa::Program program;
  std::uint64_t budget = 0;
  SessionId session = kNoSession;
  /// Shard clock (sim_cycle_hint) at enqueue; the baseline of this job's
  /// simulated-cycle latency sample.
  std::uint64_t enqueue_cycle = 0;
  /// Image names the session declared at create_session(required); the
  /// worker ensures them resident (swapping on an empty window) before the
  /// job issues.  Empty = no requirement.
  std::vector<std::string> required;
  std::promise<std::vector<msg::Response>> promise;
  bool has_promise = false;
  Callback callback;
  ResponseFn stream;
  DoneFn done;
};

/// One shard: the bounded per-tenant job queues (the only cross-thread
/// state, under `m`), the published counter snapshot (under `stats_m`, so
/// readers never contend with producers on the queue mutex), and the
/// worker thread.  The simulated hardware itself (Engine) is *not* a
/// member: the worker constructs it on its own stack so the
/// thread-affinity rule — each System lives and dies on the thread that
/// drives it — holds by construction.
struct Farm::Shard {
  /// A shard's simulated hardware and its host stack, bundled so inline
  /// mode and worker threads build them identically.
  struct Engine {
    top::System system;
    Coprocessor copro;
    ReliableTransport transport;
    /// Algorithm-on-demand manager (null when FarmConfig::fu_images is
    /// empty).  Worker-thread-affine, like everything else in the engine.
    std::unique_ptr<FuManager> manager;

    explicit Engine(const FarmConfig& cfg)
        : system(cfg.system), copro(system), transport(copro, cfg.transport) {
      if (!cfg.fu_images.empty()) {
        FuManagerConfig mcfg;
        mcfg.slots = cfg.fu_slots;
        if (cfg.fu_policy) {
          mcfg.policy = cfg.fu_policy();
        }
        manager = std::make_unique<FuManager>(copro, mcfg);
        for (const AlgorithmImage& image : cfg.fu_images) {
          manager->register_image(image);
        }
      }
    }
  };

  std::size_t index = 0;
  const FarmConfig* cfg = nullptr;

  // -- Cross-thread state, under m -----------------------------------------
  std::mutex m;
  std::condition_variable cv_work;   ///< worker waits: job queued or stop
  std::condition_variable cv_space;  ///< producers wait: queue below capacity
  std::map<SessionId, std::deque<Job>> pending;  ///< per-tenant sub-queues
  std::deque<SessionId> rr;   ///< round-robin rotation of queued tenants
  std::size_t queued = 0;     ///< total queued jobs (bounded by capacity)
  std::map<SessionId, std::size_t> unresolved;  ///< per-session accounting
  bool stop = false;
  /// Lock-free mirror of `queued` so the worker's pump loop can notice new
  /// work without taking the queue mutex every cycle.
  std::atomic<std::size_t> queued_hint{0};
  /// Jobs refused with kOverload (producers bump it; never in snapshots —
  /// counters() reads it live).
  std::atomic<std::uint64_t> jobs_shed{0};
  /// Worker-published mirror of the shard's simulated clock, so producers
  /// can stamp jobs at enqueue without touching the thread-affine
  /// simulator.  Slightly stale (updated each pump quantum), which only
  /// makes latency samples conservative (never negative — recording clamps).
  std::atomic<std::uint64_t> sim_cycle_hint{0};

  // -- Published statistics, under stats_m ---------------------------------
  std::mutex stats_m;
  sim::Counters stats;  ///< latest snapshot, under stats_m
  std::vector<std::uint64_t> latency_snapshot;  ///< under stats_m

  // -- Worker-local (inline mode: submitting-thread-local) -----------------
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t resets = 0;
  std::uint64_t publishes = 0;
  std::uint64_t unpublished = 0;  ///< jobs resolved since the last snapshot
  std::vector<std::uint64_t> latency_ring;  ///< recent job latencies (cycles)
  std::size_t latency_next = 0;             ///< ring overwrite cursor

  std::thread thread;

  /// Inline mode only: engine owned by the calling thread, built lazily on
  /// first submit so the caller's thread is the simulator's owner thread.
  std::unique_ptr<Engine> inline_engine;
  /// Inline reentrancy guard: a submit from inside a callback queues the
  /// job for the outer drain loop instead of recursing.
  bool inline_active = false;

  // Queue primitives (m held by the caller).
  std::size_t unresolved_of(SessionId s) const {
    auto it = unresolved.find(s);
    return it == unresolved.end() ? 0 : it->second;
  }
  void push_locked(Job&& job) {
    if (job.session != kNoSession) {
      ++unresolved[job.session];
    }
    std::deque<Job>& q = pending[job.session];
    if (q.empty()) {
      rr.push_back(job.session);
    }
    q.push_back(std::move(job));
    ++queued;
    queued_hint.store(queued, std::memory_order_relaxed);
  }
  bool pop_locked(Job& out) {
    if (rr.empty()) {
      return false;
    }
    const SessionId tenant = rr.front();
    rr.pop_front();
    auto it = pending.find(tenant);
    out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      pending.erase(it);
    } else {
      rr.push_back(tenant);  // FIFO within a tenant, round-robin across
    }
    --queued;
    queued_hint.store(queued, std::memory_order_relaxed);
    return true;
  }

  // Job resolution (worker thread; inline mode: the submitting thread).
  void resolve_success(Job& job, std::vector<msg::Response>&& responses);
  void resolve_failure(Job& job, std::exception_ptr err);
  void finish_accounting(Job& job);

  void publish_stats(const Engine& engine, bool force);
  void fail_queued(const std::string& why);
  void recover(Engine& engine, const SimError& cause,
               std::deque<Job>* window_jobs);
  void worker(const FarmConfig& cfg);
  void drain_inline(Engine& engine);

  /// Make `job.required` resident (the caller guarantees the transport
  /// window is empty if a swap is needed).  On an unsatisfiable set —
  /// unregistered name, set larger than the slot budget — the job is
  /// resolved with the retryable FarmError{kUnitUnavailable} and false is
  /// returned; the shard stays healthy.
  bool ensure_required(Engine& engine, Job& job) {
    if (!engine.manager || job.required.empty()) {
      return true;
    }
    try {
      engine.manager->ensure_resident_all(job.required);
      return true;
    } catch (const SimError& e) {
      resolve_failure(job,
                      std::make_exception_ptr(FarmError(
                          FarmError::Kind::kUnitUnavailable, index,
                          "farm shard " + std::to_string(index) +
                              ": required FU set not satisfiable: " +
                              std::string(e.what()))));
      return false;
    }
  }

  /// True when the job must wait for an empty transport window before it
  /// can issue: one of its required images is not resident, so making it
  /// resident may drain/evict units that in-flight programs' response
  /// predictions still count on.
  bool needs_swap(const Engine& engine, const Job& job) const {
    if (!engine.manager || job.required.empty()) {
      return false;
    }
    for (const std::string& name : job.required) {
      if (!engine.manager->registered(name) ||
          !engine.manager->resident(name)) {
        return true;
      }
    }
    return false;
  }

  /// First kUnitUnavailable error among `responses`, if any: the job raced
  /// a hot swap (or used a code whose image was never made resident) — it
  /// fails typed and retryable instead of handing the caller a response
  /// vector with a buried error.
  static bool hit_unavailable(const std::vector<msg::Response>& responses) {
    for (const msg::Response& r : responses) {
      if (r.type == msg::Response::Type::kError &&
          static_cast<msg::ErrorCode>(r.code) ==
              msg::ErrorCode::kUnitUnavailable) {
        return true;
      }
    }
    return false;
  }

  /// Record one completed job's simulated-cycle latency (enqueue stamp to
  /// now) into the bounded ring behind Farm::job_latency_samples().
  void record_latency(const Engine& engine, const Job& job) {
    const std::uint64_t now = engine.system.simulator().cycle();
    const std::uint64_t lat = now - std::min(job.enqueue_cycle, now);
    if (latency_ring.size() < kLatencyRingCapacity) {
      latency_ring.push_back(lat);
    } else {
      latency_ring[latency_next] = lat;
      latency_next = (latency_next + 1) % kLatencyRingCapacity;
    }
  }

  /// Resolve a completed job: success normally, the typed retryable
  /// failure when a kUnitUnavailable error response surfaced mid-program.
  void resolve_completion(Job& job, std::vector<msg::Response>&& responses) {
    if (hit_unavailable(responses)) {
      resolve_failure(job,
                      std::make_exception_ptr(FarmError(
                          FarmError::Kind::kUnitUnavailable, index,
                          "farm shard " + std::to_string(index) +
                              ": a functional unit became unavailable "
                              "under this job (FU hot swap); retry")));
      return;
    }
    resolve_success(job, std::move(responses));
  }
};

void Farm::Shard::resolve_success(Job& job,
                                  std::vector<msg::Response>&& responses) {
  ++jobs_completed;
  ++unpublished;
  if (job.callback) {
    job.callback(std::move(responses), nullptr);
  } else if (job.done) {
    job.done(nullptr);
  } else {
    job.promise.set_value(std::move(responses));
  }
  finish_accounting(job);
}

void Farm::Shard::resolve_failure(Job& job, std::exception_ptr err) {
  ++jobs_failed;
  ++unpublished;
  if (job.callback) {
    job.callback({}, err);
  } else if (job.done) {
    job.done(err);
  } else {
    job.promise.set_exception(err);
  }
  finish_accounting(job);
}

void Farm::Shard::finish_accounting(Job& job) {
  if (job.session != kNoSession) {
    std::lock_guard<std::mutex> lk(m);
    auto it = unresolved.find(job.session);
    if (it != unresolved.end() && --(it->second) == 0) {
      unresolved.erase(it);
    }
  }
  cv_space.notify_all();
}

void Farm::Shard::publish_stats(const Engine& engine, bool force) {
  if (!force && unpublished < cfg->stats_publish_interval) {
    return;  // amortised: at most one snapshot per interval while busy
  }
  sim::Counters snap;
  snap.merge(engine.transport.counters());
  snap.merge(engine.copro.counters());
  if (engine.manager) {
    snap.merge(engine.manager->counters());
  }
  snap.bump("farm.jobs_completed", jobs_completed);
  snap.bump("farm.jobs_failed", jobs_failed);
  snap.bump("farm.shard_resets", resets);
  // The shard's simulated clock, so benches can report deterministic
  // cycles/job alongside wall-clock rates (sums across shards on merge).
  snap.bump("farm.shard_cycles", engine.system.simulator().cycle());
  ++publishes;
  snap.bump("farm.stats_publishes", publishes);
  unpublished = 0;
  std::lock_guard<std::mutex> lk(stats_m);
  stats = std::move(snap);
  latency_snapshot = latency_ring;
}

/// Fault recovery: reset the shard's hardware so later submissions run on
/// a clean machine, then fail the in-flight window and everything queued —
/// all of it was submitted against machine state the reset just destroyed.
/// Other shards never notice.
void Farm::Shard::recover(Engine& engine, const SimError& cause,
                          std::deque<Job>* window_jobs) {
  ++resets;
  engine.transport.abort_in_flight();
  engine.system.simulator().reset();
  engine.system.rtm().clear_state();
  // Snapshot the queue BEFORE resolving any window job: a producer can only
  // learn of the fault through a window job's failure, so anything it
  // submits after that must run on the recovered shard, not die as a
  // casualty of a fault that preceded it.
  std::deque<Job> casualties;
  {
    std::lock_guard<std::mutex> lk(m);
    for (auto& [tenant, q] : pending) {
      for (Job& j : q) {
        casualties.push_back(std::move(j));
      }
    }
    pending.clear();
    rr.clear();
    queued = 0;
    queued_hint.store(0, std::memory_order_relaxed);
  }
  cv_space.notify_all();
  const std::string why = "farm shard " + std::to_string(index) +
                          " fault: " + std::string(cause.what());
  if (window_jobs) {
    for (Job& j : *window_jobs) {
      resolve_failure(j, std::make_exception_ptr(FarmError(
                             FarmError::Kind::kShardFault, index, why)));
    }
    window_jobs->clear();
  }
  for (Job& j : casualties) {
    resolve_failure(
        j, std::make_exception_ptr(FarmError(
               FarmError::Kind::kShardFault, index,
               "farm shard " + std::to_string(index) +
                   " reset by an in-flight fault; queued job failed (its "
                   "register state is gone)")));
  }
}

void Farm::Shard::worker(const FarmConfig& config) {
  // The System is constructed *here*, on the worker thread, making this
  // thread the simulator's owner (sim::Simulator is thread-affine — see
  // its class comment; debug builds assert it in step()).
  std::unique_ptr<Engine> engine;
  std::string construct_error;
  try {
    engine = std::make_unique<Engine>(config);
  } catch (const std::exception& e) {
    construct_error = e.what();
  }

  const std::size_t window = config.transport.window;
  const std::size_t max_members =
      std::max<std::size_t>(1, config.coalesce_max_programs);
  const bool coalescing = max_members > 1;
  std::deque<Job> active;  // jobs in the transport window, submission order
  std::deque<ReliableTransport::ProgramId> active_ids;  // parallel to active
  /// Jobs popped from the queue but waiting to issue: the front needs an FU
  /// swap and the window is not empty yet.  Strict FIFO behind it — issuing
  /// a later job around a held one would reorder a session's register
  /// semantics.
  std::deque<Job> held;
  /// Coalescing only: the cycle a held *partial* frame must flush at.
  /// Armed when the worker first decides to keep the frame open for more
  /// arrivals; cleared on every frame submission.
  std::optional<std::uint64_t> flush_at;

  auto active_index = [&](ReliableTransport::ProgramId id) {
    for (std::size_t i = 0; i < active_ids.size(); ++i) {
      if (active_ids[i] == id) {
        return i;
      }
    }
    return active_ids.size();
  };

  for (;;) {
    std::deque<Job> batch;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lk(m);
      if (active.empty() && held.empty() && queued == 0 && !stop) {
        // Going idle: publish so the fleet view is exact while we sleep.
        if (engine && unpublished > 0) {
          lk.unlock();
          publish_stats(*engine, true);
          lk.lock();
        }
        cv_work.wait(lk, [&] { return stop || queued > 0; });
      }
      if (stop && queued == 0 && active.empty() && held.empty()) {
        break;
      }
      draining = stop;  // a stopping farm flushes partial frames at once
      Job j;
      while (active.size() + held.size() + batch.size() <
                 window * max_members &&
             pop_locked(j)) {
        batch.push_back(std::move(j));
      }
    }
    if (!batch.empty()) {
      cv_space.notify_all();
    }
    if (!engine) {
      for (Job& j : batch) {
        resolve_failure(j, std::make_exception_ptr(FarmError(
                               FarmError::Kind::kShardFault, index,
                               "farm shard " + std::to_string(index) +
                                   " failed to construct: " +
                                   construct_error)));
      }
      continue;
    }
    try {
      // New arrivals line up behind anything already held, then issue in
      // FIFO order.  A job whose required images are all resident issues
      // immediately; one that needs a swap waits for the window to drain
      // first — response predictions of in-flight programs were computed
      // against the current FU table, so the table must not change under
      // them.
      for (Job& j : batch) {
        held.push_back(std::move(j));
      }
      batch.clear();
      if (!coalescing) {
        while (!held.empty() && active.size() < window) {
          if (needs_swap(*engine, held.front())) {
            if (engine->transport.in_flight() > 0) {
              break;  // swap deferred until the window drains
            }
            if (!ensure_required(*engine, held.front())) {
              held.pop_front();  // unsatisfiable; job failed typed
              continue;
            }
          } else if (engine->manager && !held.front().required.empty()) {
            // All resident: record the hits so policy recency stays honest.
            engine->manager->ensure_resident_all(held.front().required);
          }
          active_ids.push_back(engine->transport.submit(
              held.front().program, held.front().budget,
              static_cast<bool>(held.front().stream)));
          active.push_back(std::move(held.front()));
          held.pop_front();
        }
      } else {
        // Coalescing: gather a FIFO prefix of `held` into one frame, cut at
        // the member cap, the word cap, or the first later job needing an
        // FU swap (swaps only happen at frame boundaries, on an empty
        // window).  A *partial* frame — one that took everything held and
        // could still grow — stays open up to coalesce_flush_cycles before
        // it flushes.
        while (!held.empty() &&
               engine->transport.in_flight() < window) {
          const bool front_swap = needs_swap(*engine, held.front());
          if (front_swap && engine->transport.in_flight() > 0) {
            break;  // swap deferred until the window drains
          }
          // The swap must land BEFORE co-members are gathered: their
          // needs_swap probes have to see the post-swap resident set, or a
          // member could ride a frame whose own front just evicted its
          // image.  A swap boundary also flushes immediately — no hold.
          if (front_swap && !ensure_required(*engine, held.front())) {
            held.pop_front();  // unsatisfiable; job failed typed
            flush_at.reset();
            continue;
          }
          std::size_t count = 1;
          std::size_t words = held.front().program.words().size();
          while (count < held.size() && count < max_members) {
            const Job& j = held[count];
            const std::size_t w = j.program.words().size();
            if (config.coalesce_max_words > 0 &&
                words + w > config.coalesce_max_words) {
              break;
            }
            if (needs_swap(*engine, j)) {
              break;  // swap point: this job starts the next frame
            }
            words += w;
            ++count;
          }
          const bool partial = count == held.size() && count < max_members;
          if (!front_swap && partial && config.coalesce_flush_cycles > 0 &&
              !draining) {
            if (!flush_at) {
              flush_at = engine->system.simulator().cycle() +
                         config.coalesce_flush_cycles;
            }
            if (engine->system.simulator().cycle() < *flush_at) {
              break;  // keep the frame open; the pump watches flush_at
            }
          }
          if (engine->manager) {
            // Record residency hits for every member the swap path did not
            // already account for, exactly one ensure per issued job.
            for (std::size_t i = front_swap ? 1 : 0; i < count; ++i) {
              if (!held[i].required.empty()) {
                engine->manager->ensure_resident_all(held[i].required);
              }
            }
          }
          std::vector<ReliableTransport::CoalescedItem> items;
          items.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            items.push_back({&held[i].program, held[i].budget,
                             static_cast<bool>(held[i].stream)});
          }
          const std::vector<ReliableTransport::ProgramId> ids =
              engine->transport.submit_coalesced(items);
          for (std::size_t i = 0; i < count; ++i) {
            active_ids.push_back(ids[i]);
            active.push_back(std::move(held.front()));
            held.pop_front();
          }
          flush_at.reset();
        }
        if (held.empty()) {
          flush_at.reset();
        }
      }
      if (active.empty() && held.empty()) {
        continue;
      }
      // Pump the shard's clock until there is something to act on: a
      // completion or stream event surfaced, the window has space and new
      // work is queued (queued_hint — no lock on the hot path), or the
      // window drained.  Job watchdogs live inside the transport
      // (per-program deadlines), so this loop itself is unbounded.
      std::deque<ReliableTransport::StreamEvent> events;
      std::deque<ReliableTransport::Completion> comps;
      Pump& pump = engine->copro.pump();
      pump.run_until(
          [&] {
            sim_cycle_hint.store(engine->system.simulator().cycle(),
                                 std::memory_order_relaxed);
            engine->transport.service();
            while (auto e = engine->transport.poll_stream()) {
              events.push_back(std::move(*e));
            }
            while (auto c = engine->transport.poll_completed()) {
              comps.push_back(std::move(*c));
            }
            if (!events.empty() || !comps.empty()) {
              return true;
            }
            if (flush_at) {
              // A partial frame is being held open: wake to grow it when
              // more work arrives, or to flush it when the timer expires.
              // Never exit on an empty window here — that would spin the
              // outer loop without advancing the clock toward flush_at.
              if (queued_hint.load(std::memory_order_relaxed) > 0) {
                return true;
              }
              return engine->system.simulator().cycle() >= *flush_at;
            }
            // Pull new queued work only while nothing is held: held jobs
            // issue strictly FIFO, so with a swap-blocked job at the front
            // there is nothing to do with more work except hold it too —
            // and returning here without stepping would spin the loop
            // without ever letting the in-flight window drain.
            if (held.empty() && engine->transport.in_flight() < window &&
                queued_hint.load(std::memory_order_relaxed) > 0) {
              return true;
            }
            return engine->transport.in_flight() == 0;
          },
          Deadline::unbounded(engine->system.simulator()),
          "Farm::shard window");
      for (ReliableTransport::StreamEvent& e : events) {
        const std::size_t i = active_index(e.id);
        if (i < active.size() && active[i].stream) {
          active[i].stream(e.response);
        }
      }
      for (ReliableTransport::Completion& c : comps) {
        const std::size_t i = active_index(c.id);
        if (i < active.size()) {
          record_latency(*engine, active[i]);
          resolve_completion(active[i], std::move(c.responses));
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
          active_ids.erase(active_ids.begin() +
                           static_cast<std::ptrdiff_t>(i));
        }
      }
      publish_stats(*engine, false);
    } catch (const SimError& e) {
      recover(*engine, e, &active);
      active_ids.clear();
      // Held jobs never issued, but the recovery reset destroyed the
      // register state their sessions depend on all the same.
      for (Job& j : held) {
        resolve_failure(j, std::make_exception_ptr(FarmError(
                               FarmError::Kind::kShardFault, index,
                               "farm shard " + std::to_string(index) +
                                   " reset by an in-flight fault; held job "
                                   "failed (its register state is gone)")));
      }
      held.clear();
      publish_stats(*engine, true);
    }
  }
  if (engine) {
    publish_stats(*engine, true);
  }
}

/// Inline mode: run every queued job to completion on the calling thread.
/// Reentrant submits (from inside a callback) land in the queue and are
/// drained by the outermost frame, preserving submission order.
void Farm::Shard::drain_inline(Engine& engine) {
  const std::size_t max_members =
      std::max<std::size_t>(1, cfg->coalesce_max_programs);
  if (max_members == 1) {
    for (;;) {
      Job job;
      {
        std::lock_guard<std::mutex> lk(m);
        if (!pop_locked(job)) {
          break;
        }
      }
      try {
        // Inline jobs run one at a time, so the window is always empty here
        // and a required-set swap is safe before every submit.
        if (!ensure_required(engine, job)) {
          continue;  // unsatisfiable; job already failed typed
        }
        engine.transport.submit(job.program, job.budget,
                                static_cast<bool>(job.stream));
        std::optional<ReliableTransport::Completion> done;
        engine.copro.pump().run_until(
            [&] {
              sim_cycle_hint.store(engine.system.simulator().cycle(),
                                   std::memory_order_relaxed);
              engine.transport.service();
              while (auto e = engine.transport.poll_stream()) {
                if (job.stream) {
                  job.stream(e->response);
                }
              }
              if (auto c = engine.transport.poll_completed()) {
                done = std::move(*c);
              }
              return done.has_value();
            },
            Deadline::unbounded(engine.system.simulator()), "Farm::inline");
        record_latency(engine, job);
        resolve_completion(job, std::move(done->responses));
      } catch (const SimError& e) {
        std::deque<Job> culprit;
        culprit.push_back(std::move(job));
        recover(engine, e, &culprit);
      }
      publish_stats(engine, false);
    }
    return;
  }
  // Coalescing inline drain: pack up to max_members queued jobs into one
  // frame per round.  A popped job that does not fit — word cap, or it
  // needs an FU swap (swaps happen only on an empty window) — carries over
  // to start the next frame instead of going back to the queue, so FIFO
  // order within a tenant is preserved.
  std::optional<Job> carry;
  for (;;) {
    std::deque<Job> frame;
    if (carry) {
      frame.push_back(std::move(*carry));
      carry.reset();
    } else {
      Job job;
      {
        std::lock_guard<std::mutex> lk(m);
        if (!pop_locked(job)) {
          break;
        }
      }
      frame.push_back(std::move(job));
    }
    try {
      if (!ensure_required(engine, frame.front())) {
        publish_stats(engine, false);
        continue;  // unsatisfiable; job already failed typed
      }
      std::size_t words = frame.front().program.words().size();
      while (frame.size() < max_members) {
        Job next;
        {
          std::lock_guard<std::mutex> lk(m);
          if (!pop_locked(next)) {
            break;
          }
        }
        const std::size_t w = next.program.words().size();
        if ((cfg->coalesce_max_words > 0 &&
             words + w > cfg->coalesce_max_words) ||
            needs_swap(engine, next)) {
          carry = std::move(next);
          break;
        }
        if (engine.manager && !next.required.empty()) {
          // Resident by construction (needs_swap was false); record hits.
          engine.manager->ensure_resident_all(next.required);
        }
        words += w;
        frame.push_back(std::move(next));
      }
      std::vector<ReliableTransport::CoalescedItem> items;
      items.reserve(frame.size());
      for (Job& j : frame) {
        items.push_back({&j.program, j.budget, static_cast<bool>(j.stream)});
      }
      const std::vector<ReliableTransport::ProgramId> ids =
          engine.transport.submit_coalesced(items);
      std::map<ReliableTransport::ProgramId, std::vector<msg::Response>> done;
      engine.copro.pump().run_until(
          [&] {
            sim_cycle_hint.store(engine.system.simulator().cycle(),
                                 std::memory_order_relaxed);
            engine.transport.service();
            while (auto e = engine.transport.poll_stream()) {
              for (std::size_t i = 0; i < ids.size(); ++i) {
                if (ids[i] == e->id && frame[i].stream) {
                  frame[i].stream(e->response);
                }
              }
            }
            while (auto c = engine.transport.poll_completed()) {
              done[c->id] = std::move(c->responses);
            }
            return done.size() == ids.size();
          },
          Deadline::unbounded(engine.system.simulator()), "Farm::inline");
      for (std::size_t i = 0; i < ids.size(); ++i) {
        record_latency(engine, frame[i]);
        resolve_completion(frame[i], std::move(done[ids[i]]));
      }
    } catch (const SimError& e) {
      if (carry) {
        frame.push_back(std::move(*carry));
        carry.reset();
      }
      recover(engine, e, &frame);
    }
    publish_stats(engine, false);
  }
}

Farm::Farm(FarmConfig config) : config_(std::move(config)) {
  // Surface configuration errors on the constructing thread, not as a
  // worker-thread construction failure N times over.
  config_.system.validate();
  config_.transport.validate();
  check(config_.queue_capacity > 0, "FarmConfig::queue_capacity must be > 0");
  check(config_.coalesce_max_programs > 0,
        "FarmConfig::coalesce_max_programs must be > 0");
  check(config_.stats_publish_interval > 0,
        "FarmConfig::stats_publish_interval must be > 0");
  // Surface image-set mistakes here instead of as N worker-thread
  // construction failures (register_image re-checks per shard).
  if (!config_.fu_images.empty()) {
    check(config_.fu_slots > 0,
          "FarmConfig::fu_slots must be > 0 when fu_images is set");
    for (std::size_t i = 0; i < config_.fu_images.size(); ++i) {
      const AlgorithmImage& image = config_.fu_images[i];
      check(!image.name.empty(), "FarmConfig::fu_images: image needs a name");
      check(!image.codes.empty(),
            "FarmConfig::fu_images: image '" + image.name +
                "' declares no function codes");
      check(static_cast<bool>(image.factory),
            "FarmConfig::fu_images: image '" + image.name +
                "' needs a factory");
      check(image.slot_cost() <= config_.fu_slots,
            "FarmConfig::fu_images: image '" + image.name +
                "' does not fit the fu_slots budget");
      for (std::size_t j = 0; j < i; ++j) {
        check(config_.fu_images[j].name != image.name,
              "FarmConfig::fu_images: duplicate image name '" + image.name +
                  "'");
      }
    }
  }
  const std::size_t n = config_.shards == 0 ? 1 : config_.shards;
  demand_.resize(n);
  placed_.assign(n, 0);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
    shards_.back()->cfg = &config_;
  }
  if (inline_mode()) {
    return;  // the caller's thread is shard 0's owner; engine built lazily
  }
  for (std::size_t i = 0; i < n; ++i) {
    Shard* shard = shards_[i].get();
    shard->thread = std::thread([this, shard] { shard->worker(config_); });
  }
}

Farm::~Farm() { shutdown(); }

void Farm::shutdown() {
  std::lock_guard<std::mutex> g(shutdown_m_);
  if (joined_) {
    return;
  }
  stopping_.store(true);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->m);
      shard->stop = true;
    }
    shard->cv_work.notify_all();
    shard->cv_space.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  if (inline_mode() && shards_[0]->inline_engine) {
    // Counters read only; the engine's simulator is not stepped here.
    shards_[0]->publish_stats(*shards_[0]->inline_engine, true);
  }
  joined_ = true;
}

std::size_t Farm::shard_count() const { return shards_.size(); }

Farm::SessionId Farm::create_session() {
  return next_session_.fetch_add(1);
}

Farm::SessionId Farm::create_session(std::vector<std::string> required) {
  check(!config_.fu_images.empty(),
        "Farm::create_session(required): the farm has no algorithm images "
        "(set FarmConfig::fu_images)");
  for (const std::string& name : required) {
    bool known = false;
    for (const AlgorithmImage& image : config_.fu_images) {
      known = known || image.name == name;
    }
    check(known, "Farm::create_session: unknown image '" + name + "'");
  }
  const SessionId id = next_session_.fetch_add(1);
  std::lock_guard<std::mutex> lk(placement_m_);
  // FU-affine placement: maximise overlap with demand already placed on a
  // shard (the host-side approximation of residency — the live managers
  // are worker-thread-affine), break ties toward the least-loaded shard.
  std::size_t best = 0;
  std::size_t best_overlap = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::size_t overlap = 0;
    for (const std::string& name : required) {
      if (demand_[s].count(name) != 0) {
        ++overlap;
      }
    }
    if (s == 0 || overlap > best_overlap ||
        (overlap == best_overlap && placed_[s] < best_load)) {
      best = s;
      best_overlap = overlap;
      best_load = placed_[s];
    }
  }
  for (const std::string& name : required) {
    ++demand_[best][name];
  }
  ++placed_[best];
  session_shard_[id] = best;
  session_required_[id] = std::move(required);
  return id;
}

std::size_t Farm::shard_of(SessionId session) const {
  {
    std::lock_guard<std::mutex> lk(placement_m_);
    const auto it = session_shard_.find(session);
    if (it != session_shard_.end()) {
      return it->second;
    }
  }
  return static_cast<std::size_t>(session % shards_.size());
}

std::vector<std::string> Farm::required_of(SessionId session) const {
  std::lock_guard<std::mutex> lk(placement_m_);
  const auto it = session_required_.find(session);
  return it == session_required_.end() ? std::vector<std::string>{}
                                       : it->second;
}

std::size_t Farm::in_flight(SessionId session) const {
  Shard& shard = *shards_[shard_of(session)];
  std::lock_guard<std::mutex> lk(shard.m);
  return shard.unresolved_of(session);
}

std::future<std::vector<msg::Response>> Farm::submit(
    isa::Program program, std::optional<std::uint64_t> budget_cycles) {
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.has_promise = true;
  std::future<std::vector<msg::Response>> fut = job.promise.get_future();
  enqueue(static_cast<std::size_t>(rr_next_.fetch_add(1) % shards_.size()),
          std::move(job));
  return fut;
}

std::future<std::vector<msg::Response>> Farm::submit(
    SessionId session, isa::Program program,
    std::optional<std::uint64_t> budget_cycles) {
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.session = session;
  job.required = required_of(session);
  job.has_promise = true;
  std::future<std::vector<msg::Response>> fut = job.promise.get_future();
  enqueue(shard_of(session), std::move(job));
  return fut;
}

void Farm::submit_async(isa::Program program, Callback done,
                        std::optional<std::uint64_t> budget_cycles) {
  check(static_cast<bool>(done), "Farm::submit_async requires a callback");
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.callback = std::move(done);
  enqueue(static_cast<std::size_t>(rr_next_.fetch_add(1) % shards_.size()),
          std::move(job));
}

void Farm::submit_async(SessionId session, isa::Program program, Callback done,
                        std::optional<std::uint64_t> budget_cycles) {
  check(static_cast<bool>(done), "Farm::submit_async requires a callback");
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.session = session;
  job.required = required_of(session);
  job.callback = std::move(done);
  enqueue(shard_of(session), std::move(job));
}

void Farm::submit_stream(isa::Program program, ResponseFn on_response,
                         DoneFn on_done,
                         std::optional<std::uint64_t> budget_cycles) {
  check(static_cast<bool>(on_response) && static_cast<bool>(on_done),
        "Farm::submit_stream requires both callbacks");
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.stream = std::move(on_response);
  job.done = std::move(on_done);
  enqueue(static_cast<std::size_t>(rr_next_.fetch_add(1) % shards_.size()),
          std::move(job));
}

void Farm::submit_stream(SessionId session, isa::Program program,
                         ResponseFn on_response, DoneFn on_done,
                         std::optional<std::uint64_t> budget_cycles) {
  check(static_cast<bool>(on_response) && static_cast<bool>(on_done),
        "Farm::submit_stream requires both callbacks");
  Job job;
  job.program = std::move(program);
  job.budget = budget_cycles.value_or(config_.job_budget_cycles);
  job.session = session;
  job.required = required_of(session);
  job.stream = std::move(on_response);
  job.done = std::move(on_done);
  enqueue(shard_of(session), std::move(job));
}

/// The admission front end, shared by both execution modes: typed
/// shutdown/overload refusals and per-session accounting happen here, so
/// inline and threaded farms reject identically.
void Farm::enqueue(std::size_t shard_index, Job job) {
  Shard& shard = *shards_[shard_index];
  const bool bounded =
      job.session != kNoSession && config_.max_inflight_per_session > 0;
  // Stamp the arrival against the worker-published clock mirror; slightly
  // stale is fine (latency samples only get conservative).
  job.enqueue_cycle =
      shard.sim_cycle_hint.load(std::memory_order_relaxed);

  {
    std::unique_lock<std::mutex> lk(shard.m);
    if (stopping_.load() || shard.stop) {
      throw FarmError(FarmError::Kind::kShutdown, shard.index,
                      "Farm::submit on a farm that is shutting down");
    }
    if (bounded &&
        shard.unresolved_of(job.session) >= config_.max_inflight_per_session) {
      shard.jobs_shed.fetch_add(1);
      throw FarmError(FarmError::Kind::kOverload, shard.index,
                      "Farm::submit: session " + std::to_string(job.session) +
                          " is at its in-flight bound (" +
                          std::to_string(config_.max_inflight_per_session) +
                          ")");
    }
    if (shard.queued >= config_.queue_capacity) {
      // Inline mode never blocks: there is no worker to free space, so a
      // full queue (only reachable through reentrant submits) sheds under
      // either policy.
      if (config_.admission == FarmConfig::Admission::kShed ||
          inline_mode()) {
        shard.jobs_shed.fetch_add(1);
        throw FarmError(FarmError::Kind::kOverload, shard.index,
                        "Farm::submit: shard " + std::to_string(shard.index) +
                            " queue is full (" +
                            std::to_string(config_.queue_capacity) + ")");
      }
      // Backpressure: block while the bounded queue is full.
      shard.cv_space.wait(lk, [&] {
        return shard.stop || shard.queued < config_.queue_capacity;
      });
      if (shard.stop) {
        throw FarmError(FarmError::Kind::kShutdown, shard.index,
                        "Farm::submit on a farm that is shutting down");
      }
      if (bounded && shard.unresolved_of(job.session) >=
                         config_.max_inflight_per_session) {
        shard.jobs_shed.fetch_add(1);
        throw FarmError(FarmError::Kind::kOverload, shard.index,
                        "Farm::submit: session " +
                            std::to_string(job.session) +
                            " reached its in-flight bound while waiting for "
                            "queue space");
      }
    }
    shard.push_locked(std::move(job));
  }

  if (!inline_mode()) {
    shard.cv_work.notify_one();
    return;
  }

  // Inline mode: execute synchronously on the calling thread.  A reentrant
  // submit (from inside a callback) just queues; the outermost frame's
  // drain loop runs it.
  if (shard.inline_active) {
    return;
  }
  shard.inline_active = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{shard.inline_active};
  if (!shard.inline_engine) {
    shard.inline_engine = std::make_unique<Shard::Engine>(config_);
  }
  shard.drain_inline(*shard.inline_engine);
}

sim::Counters Farm::counters() const {
  sim::Counters out;
  for (const auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->stats_m);
      out.merge(shard->stats);
    }
    out.bump("farm.jobs_shed", shard->jobs_shed.load());
  }
  return out;
}

std::vector<std::uint64_t> Farm::job_latency_samples() const {
  std::vector<std::uint64_t> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->stats_m);
    out.insert(out.end(), shard->latency_snapshot.begin(),
               shard->latency_snapshot.end());
  }
  return out;
}

}  // namespace fpgafu::host
