#include "host/farm.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace fpgafu::host {

/// One shard: the bounded job queue (the only cross-thread state, under
/// `m`), the published counter snapshot, and the worker thread.  The
/// simulated hardware itself (Engine) is *not* a member: the worker
/// constructs it on its own stack so the thread-affinity rule — each
/// System lives and dies on the thread that drives it — holds by
/// construction.
struct Farm::Shard {
  struct Job {
    isa::Program program;
    std::uint64_t budget = 0;
    std::promise<std::vector<msg::Response>> promise;
  };

  /// A shard's simulated hardware and its host stack, bundled so inline
  /// mode and worker threads build them identically.
  struct Engine {
    top::System system;
    Coprocessor copro;
    ReliableTransport transport;

    explicit Engine(const FarmConfig& cfg)
        : system(cfg.system), copro(system), transport(copro, cfg.transport) {}
  };

  std::size_t index = 0;

  std::mutex m;
  std::condition_variable cv_work;   ///< worker waits: job queued or stop
  std::condition_variable cv_space;  ///< producers wait: queue below capacity
  std::deque<Job> queue;             ///< under m
  bool stop = false;                 ///< under m
  sim::Counters stats;               ///< under m; published by the worker

  // Worker-local lifecycle tallies (only the owning thread touches these).
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t resets = 0;

  std::thread thread;

  /// Inline mode only: engine owned by the calling thread, built lazily on
  /// first submit so the caller's thread is the simulator's owner thread.
  std::unique_ptr<Engine> inline_engine;

  void run_job(Engine& engine, Job job);
  void publish_stats(const Engine& engine);
  void fail_job(Job& job, const std::string& why);
};

void Farm::Shard::fail_job(Job& job, const std::string& why) {
  ++jobs_failed;
  job.promise.set_exception(std::make_exception_ptr(
      FarmError(FarmError::Kind::kShardFault, index, why)));
}

void Farm::Shard::run_job(Engine& engine, Job job) {
  try {
    std::vector<msg::Response> responses =
        engine.transport.call(job.program, job.budget);
    ++jobs_completed;
    job.promise.set_value(std::move(responses));
  } catch (const SimError& e) {
    // Fault isolation: this job wedged (watchdog / retries exhausted).
    // Reset the shard's hardware so later submissions run on a clean
    // machine, and fail this job plus everything queued behind it — those
    // jobs were submitted against register state the reset just destroyed.
    // Other shards never notice.
    ++resets;
    engine.system.simulator().reset();
    engine.system.rtm().clear_state();
    fail_job(job, "farm shard " + std::to_string(index) +
                      " fault: " + std::string(e.what()));
    std::deque<Job> casualties;
    {
      std::lock_guard<std::mutex> lk(m);
      casualties.swap(queue);
    }
    cv_space.notify_all();
    for (Job& j : casualties) {
      fail_job(j, "farm shard " + std::to_string(index) +
                      " reset by an earlier job's fault; queued job failed "
                      "(its register state is gone)");
    }
  }
}

void Farm::Shard::publish_stats(const Engine& engine) {
  sim::Counters snap;
  snap.merge(engine.transport.counters());
  snap.merge(engine.copro.counters());
  snap.bump("farm.jobs_completed", jobs_completed);
  snap.bump("farm.jobs_failed", jobs_failed);
  snap.bump("farm.shard_resets", resets);
  std::lock_guard<std::mutex> lk(m);
  stats = std::move(snap);
}

Farm::Farm(FarmConfig config) : config_(std::move(config)) {
  // Surface configuration errors on the constructing thread, not as a
  // worker-thread construction failure N times over.
  config_.system.validate();
  check(config_.queue_capacity > 0, "FarmConfig::queue_capacity must be > 0");
  const std::size_t n = config_.shards == 0 ? 1 : config_.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }
  if (inline_mode()) {
    return;  // the caller's thread is shard 0's owner; engine built lazily
  }
  for (std::size_t i = 0; i < n; ++i) {
    Shard* shard = shards_[i].get();
    shard->thread = std::thread([this, shard] {
      // The System is constructed *here*, on the worker thread, making
      // this thread the simulator's owner (sim::Simulator is thread-affine
      // — see its class comment; debug builds assert it in step()).
      std::unique_ptr<Shard::Engine> engine;
      std::string construct_error;
      try {
        engine = std::make_unique<Shard::Engine>(config_);
      } catch (const std::exception& e) {
        construct_error = e.what();
      }
      for (;;) {
        Shard::Job job;
        {
          std::unique_lock<std::mutex> lk(shard->m);
          shard->cv_work.wait(
              lk, [&] { return shard->stop || !shard->queue.empty(); });
          if (shard->queue.empty()) {
            break;  // stop requested and the queue fully drained
          }
          job = std::move(shard->queue.front());
          shard->queue.pop_front();
        }
        shard->cv_space.notify_one();
        if (!engine) {
          shard->fail_job(job, "farm shard " + std::to_string(shard->index) +
                                   " failed to construct: " + construct_error);
          continue;
        }
        shard->run_job(*engine, std::move(job));
        shard->publish_stats(*engine);
      }
      if (engine) {
        shard->publish_stats(*engine);
      }
    });
  }
}

Farm::~Farm() { shutdown(); }

void Farm::shutdown() {
  std::lock_guard<std::mutex> g(shutdown_m_);
  if (joined_) {
    return;
  }
  stopping_.store(true);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->m);
      shard->stop = true;
    }
    shard->cv_work.notify_all();
    shard->cv_space.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  joined_ = true;
}

std::size_t Farm::shard_count() const { return shards_.size(); }

Farm::SessionId Farm::create_session() {
  return next_session_.fetch_add(1);
}

std::size_t Farm::shard_of(SessionId session) const {
  return static_cast<std::size_t>(session % shards_.size());
}

std::future<std::vector<msg::Response>> Farm::submit(
    isa::Program program, std::optional<std::uint64_t> budget_cycles) {
  const std::size_t shard =
      static_cast<std::size_t>(rr_next_.fetch_add(1) % shards_.size());
  return enqueue(shard, std::move(program),
                 budget_cycles.value_or(config_.job_budget_cycles));
}

std::future<std::vector<msg::Response>> Farm::submit(
    SessionId session, isa::Program program,
    std::optional<std::uint64_t> budget_cycles) {
  return enqueue(shard_of(session), std::move(program),
                 budget_cycles.value_or(config_.job_budget_cycles));
}

std::future<std::vector<msg::Response>> Farm::enqueue(
    std::size_t shard_index, isa::Program program, std::uint64_t budget) {
  Shard& shard = *shards_[shard_index];
  Shard::Job job;
  job.program = std::move(program);
  job.budget = budget;
  std::future<std::vector<msg::Response>> fut = job.promise.get_future();

  if (inline_mode()) {
    if (stopping_.load()) {
      throw FarmError(FarmError::Kind::kShutdown, shard.index,
                      "Farm::submit on a farm that is shutting down");
    }
    if (!shard.inline_engine) {
      shard.inline_engine = std::make_unique<Shard::Engine>(config_);
    }
    shard.run_job(*shard.inline_engine, std::move(job));
    shard.publish_stats(*shard.inline_engine);
    return fut;
  }

  {
    std::unique_lock<std::mutex> lk(shard.m);
    // Backpressure: block while the bounded queue is full.
    shard.cv_space.wait(lk, [&] {
      return shard.stop || shard.queue.size() < config_.queue_capacity;
    });
    if (shard.stop) {
      throw FarmError(FarmError::Kind::kShutdown, shard.index,
                      "Farm::submit on a farm that is shutting down");
    }
    shard.queue.push_back(std::move(job));
  }
  shard.cv_work.notify_one();
  return fut;
}

sim::Counters Farm::counters() const {
  sim::Counters out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->m);
    out.merge(shard->stats);
  }
  return out;
}

}  // namespace fpgafu::host
