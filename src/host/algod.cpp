#include "host/algod.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace fpgafu::host {

namespace {

/// Unit-cache key: image and code, separated by a byte no image name uses.
std::string cache_key(const std::string& image, isa::FunctionCode code) {
  return image + '\x1f' + std::to_string(static_cast<unsigned>(code));
}

}  // namespace

std::string LruPolicy::victim(const std::vector<std::string>& candidates) {
  check(!candidates.empty(), "lru: no eviction candidates");
  const std::string* best = &candidates.front();
  std::uint64_t best_use = std::numeric_limits<std::uint64_t>::max();
  for (const auto& c : candidates) {
    const auto it = last_use_.find(c);
    const std::uint64_t use = it == last_use_.end() ? 0 : it->second;
    if (use < best_use) {
      best_use = use;
      best = &c;
    }
  }
  return *best;
}

std::string CostAwarePolicy::victim(
    const std::vector<std::string>& candidates) {
  check(!candidates.empty(), "cost: no eviction candidates");
  const std::string* best = &candidates.front();
  std::uint64_t best_credit = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_touch = std::numeric_limits<std::uint64_t>::max();
  for (const auto& c : candidates) {
    const auto it = entries_.find(c);
    const std::uint64_t credit = it == entries_.end() ? 0 : it->second.credit;
    const std::uint64_t touch = it == entries_.end() ? 0 : it->second.touch;
    // Minimum credit wins; at equal credit the older touch is evicted, so
    // equal-cost workloads order exactly like LRU.
    if (credit < best_credit ||
        (credit == best_credit && touch < best_touch)) {
      best_credit = credit;
      best_touch = touch;
      best = &c;
    }
  }
  return *best;
}

void FuLoader::start(std::uint64_t cycles) {
  check(remaining_ == 0,
        "fu_loader: a partial reconfiguration is already in progress (the "
        "model has one reconfiguration port)");
  remaining_ = cycles;
  wake();
}

FuManager::FuManager(Coprocessor& coproc, FuManagerConfig config)
    : coproc_(&coproc),
      config_(std::move(config)),
      loader_(coproc.system().simulator(), "fu_loader"),
      hits_(stats_.handle("algod.hits")),
      misses_(stats_.handle("algod.misses")),
      evictions_(stats_.handle("algod.evictions")),
      loads_(stats_.handle("algod.loads")),
      load_cycles_(stats_.handle("algod.load_cycles")),
      drain_cycles_(stats_.handle("algod.drain_cycles")) {
  check(config_.slots > 0, "FuManagerConfig::slots must be > 0");
  if (!config_.policy) {
    config_.policy = std::make_shared<LruPolicy>();
  }
}

void FuManager::register_image(AlgorithmImage image) {
  check(!image.name.empty(), "algod: image needs a name");
  check(!image.codes.empty(), "algod: image declares no function codes");
  check(static_cast<bool>(image.factory), "algod: image needs a factory");
  check(image.slot_cost() <= config_.slots,
        "algod: image '" + image.name + "' needs " +
            std::to_string(image.slot_cost()) + " slots but the budget is " +
            std::to_string(config_.slots));
  check(images_.count(image.name) == 0,
        "algod: image '" + image.name + "' already registered");
  auto& rtm = coproc_->system().rtm();
  for (const auto code : image.codes) {
    for (const auto& [other_name, other] : images_) {
      check(std::find(other.codes.begin(), other.codes.end(), code) ==
                other.codes.end(),
            "algod: function code already declared by image '" + other_name +
                "'");
    }
    check(!rtm.table().attached(code),
          "algod: function code is attached outside the manager");
    // From registration on, the code is *known*: instructions for it error
    // with the retryable kUnitUnavailable, not kUnknownFunction.
    coproc_->system().declare_unavailable(code);
  }
  const std::string name = image.name;
  images_.emplace(name, std::move(image));
  resident_[name] = false;
}

bool FuManager::resident(const std::string& name) const {
  const auto it = resident_.find(name);
  return it != resident_.end() && it->second;
}

std::vector<std::string> FuManager::resident_images() const {
  std::vector<std::string> out;
  for (const auto& [name, is_resident] : resident_) {
    if (is_resident) {
      out.push_back(name);
    }
  }
  return out;
}

std::uint64_t FuManager::swap_cost(
    const std::vector<std::string>& names) const {
  std::uint64_t cost = 0;
  for (const auto& name : names) {
    const auto it = images_.find(name);
    check(it != images_.end(), "algod: image '" + name + "' not registered");
    if (!resident(name)) {
      cost += it->second.load_cycles;
    }
  }
  return cost;
}

void FuManager::ensure_resident(const std::string& name) {
  ensure_resident_all({name});
}

void FuManager::ensure_resident_all(const std::vector<std::string>& names) {
  std::vector<std::string> missing;
  std::size_t missing_cost = 0;
  for (const auto& name : names) {
    const auto it = images_.find(name);
    check(it != images_.end(), "algod: image '" + name + "' not registered");
    if (resident(name)) {
      stats_.bump(hits_);
      config_.policy->on_hit(name, ++touch_tick_, it->second.load_cycles);
    } else if (std::find(missing.begin(), missing.end(), name) ==
               missing.end()) {
      missing.push_back(name);
      missing_cost += it->second.slot_cost();
    }
  }
  if (missing.empty()) {
    return;
  }
  check(missing_cost <= config_.slots,
        "algod: request needs " + std::to_string(missing_cost) +
            " free slots but the budget is " + std::to_string(config_.slots));
  make_room(missing_cost, names);
  for (const auto& name : missing) {
    stats_.bump(misses_);
    load(images_.at(name));
  }
}

void FuManager::make_room(std::size_t cost,
                          const std::vector<std::string>& protect) {
  while (config_.slots - slots_used_ < cost) {
    std::vector<std::string> candidates;
    for (const auto& [name, is_resident] : resident_) {
      if (is_resident && std::find(protect.begin(), protect.end(), name) ==
                             protect.end()) {
        candidates.push_back(name);
      }
    }
    check(!candidates.empty(),
          "algod: cannot make room — every resident image is part of the "
          "request (slot budget too small for the required set)");
    evict(config_.policy->victim(candidates));
  }
}

void FuManager::evict(const std::string& name) {
  AlgorithmImage& image = images_.at(name);
  auto& system = coproc_->system();
  for (const auto code : image.codes) {
    system.begin_detach(code);
  }
  // Drain: in-flight writes keep retiring through the arbiter; stalled or
  // new instructions for the codes become kUnitUnavailable responses.  In
  // the Farm path the transport window is already empty, so this usually
  // completes without stepping; under direct use it pumps until quiesced.
  const std::uint64_t spent = coproc_->pump().run_until(
      [&] {
        return std::all_of(image.codes.begin(), image.codes.end(),
                           [&](isa::FunctionCode code) {
                             return system.detach_drained(code);
                           });
      },
      Deadline(system.simulator(), kDefaultCallBudgetCycles),
      "algod: drain '" + name + "'");
  stats_.bump(drain_cycles_, spent);
  for (const auto code : image.codes) {
    system.finish_detach(code);
  }
  resident_[name] = false;
  slots_used_ -= image.slot_cost();
  stats_.bump(evictions_);
  config_.policy->on_evict(name);
}

void FuManager::load(AlgorithmImage& image) {
  auto& system = coproc_->system();
  // Charge the partial-reconfiguration latency on the simulated clock: the
  // loader stays busy for load_cycles, so the swap shows up in cycle
  // counts (and in a VCD dump) exactly where it happens.
  if (image.load_cycles > 0) {
    loader_.start(image.load_cycles);
    const std::uint64_t spent = coproc_->pump().run_until(
        [&] { return !loader_.busy(); },
        Deadline(system.simulator(), kDefaultCallBudgetCycles),
        "algod: load '" + image.name + "'");
    stats_.bump(load_cycles_, spent);
  }
  for (const auto code : image.codes) {
    const std::string key = cache_key(image.name, code);
    auto it = unit_cache_.find(key);
    if (it == unit_cache_.end()) {
      it = unit_cache_
               .emplace(key, image.factory(system.simulator(), code))
               .first;
      check(it->second != nullptr,
            "algod: factory for image '" + image.name + "' returned null");
    }
    system.attach(code, *it->second);
  }
  resident_[image.name] = true;
  slots_used_ += image.slot_cost();
  stats_.bump(loads_);
  config_.policy->on_load(image.name, ++touch_tick_, image.load_cycles);
}

}  // namespace fpgafu::host
