#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/framing.hpp"

namespace fpgafu::host {

/// Multi-CPU front end (paper Fig. 1: "one or more CPUs communicate via the
/// interface with a set of functional units").
///
/// Several host sessions share one coprocessor link.  The multiplexer
/// interleaves whole instructions (a PUT travels with its inline data word)
/// round-robin onto the stream, remembers which session issued each
/// instruction sequence number, and routes arriving responses back to the
/// issuing session's inbox.  Because the RTM returns results in issue
/// order, per-session response order equals per-session issue order.
///
/// Each sequence-number table entry is released once the predicted number
/// of responses has been routed, so after the 16-bit sequence counter wraps
/// a duplicate or stale response trips the "unknown sequence owner" check
/// instead of being misrouted to whichever session owned the number an
/// epoch ago.
///
/// Note the isolation caveat this inherits from the hardware: sessions
/// share the register files.  Sessions must partition registers among
/// themselves (as threads partition memory), which the examples demonstrate.
class MultiHost {
 public:
  class Session {
   public:
    /// Queue a program for interleaved submission.
    void submit(const isa::Program& program);

    /// Pop the next response routed to this session, if any.
    std::optional<msg::Response> poll();

    /// Submit and block (pumping the multiplexer and the clock) until this
    /// session's expected responses arrive.
    std::vector<msg::Response> call(
        const isa::Program& program,
        std::uint64_t max_cycles = kDefaultCallBudgetCycles);

    std::size_t id() const { return id_; }
    bool has_pending_instructions() const { return !pending_.empty(); }
    /// Instruction groups queued but not yet interleaved onto the link.
    std::size_t pending_count() const { return pending_.size(); }

   private:
    friend class MultiHost;
    Session(MultiHost* owner, std::size_t id) : owner_(owner), id_(id) {}

    MultiHost* owner_;
    std::size_t id_;
    /// Instruction groups awaiting interleave.
    std::deque<InstructionGroup> pending_;
    std::deque<msg::Response> inbox_;
  };

  explicit MultiHost(top::System& system) : copro_(system) {
    seq_owner_.assign(std::size_t{1} << 16, SeqOwner{});
  }

  /// Create a new session; references remain valid for the MultiHost's
  /// lifetime.
  Session& create_session();

  /// One multiplexer round: interleave up to one instruction per session
  /// onto the link (round-robin, resuming after the last session actually
  /// served), then route any arrived responses.  With a bounded downstream
  /// link the round stops early rather than blocking mid-instruction.
  void pump();

  /// True when no session holds unsent instructions.
  bool all_submitted() const;

  Coprocessor& coprocessor() { return copro_; }

 private:
  static constexpr std::size_t kNobody = ~std::size_t{0};

  /// Who issued a live sequence number, and how many of its responses are
  /// still due.  `session` returns to kNobody when the count hits zero.
  struct SeqOwner {
    std::size_t session = kNobody;
    std::uint16_t remaining = 0;
  };

  void route_responses();

  Coprocessor copro_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<SeqOwner> seq_owner_;  ///< seq -> issuing session ring
  std::uint16_t next_seq_ = 0;       ///< mirrors the decoder's counter
  std::size_t rr_next_ = 0;
};

}  // namespace fpgafu::host
