#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "host/coprocessor.hpp"

namespace fpgafu::host {

/// Multi-CPU front end (paper Fig. 1: "one or more CPUs communicate via the
/// interface with a set of functional units").
///
/// Several host sessions share one coprocessor link.  The multiplexer
/// interleaves whole instructions (a PUT travels with its inline data word)
/// round-robin onto the stream, remembers which session issued each
/// instruction sequence number, and routes arriving responses back to the
/// issuing session's inbox.  Because the RTM returns results in issue
/// order, per-session response order equals per-session issue order.
///
/// Note the isolation caveat this inherits from the hardware: sessions
/// share the register files.  Sessions must partition registers among
/// themselves (as threads partition memory), which the examples demonstrate.
class MultiHost {
 public:
  class Session {
   public:
    /// Queue a program for interleaved submission.
    void submit(const isa::Program& program);

    /// Pop the next response routed to this session, if any.
    std::optional<msg::Response> poll();

    /// Submit and block (pumping the multiplexer and the clock) until this
    /// session's expected responses arrive.
    std::vector<msg::Response> call(const isa::Program& program,
                                    std::uint64_t max_cycles = 10'000'000);

    std::size_t id() const { return id_; }
    bool has_pending_instructions() const { return !pending_.empty(); }

   private:
    friend class MultiHost;
    Session(MultiHost* owner, std::size_t id) : owner_(owner), id_(id) {}

    MultiHost* owner_;
    std::size_t id_;
    /// Instruction groups awaiting interleave: each entry is one
    /// instruction plus any inline data words.
    std::deque<std::vector<isa::Word>> pending_;
    std::deque<msg::Response> inbox_;
  };

  explicit MultiHost(top::System& system) : copro_(system) {
    seq_owner_.assign(1u << 16, kNobody);
  }

  /// Create a new session; references remain valid for the MultiHost's
  /// lifetime.
  Session& create_session();

  /// One multiplexer round: interleave up to one instruction per session
  /// onto the link (round-robin), then route any arrived responses.
  void pump();

  /// True when no session holds unsent instructions.
  bool all_submitted() const;

  Coprocessor& coprocessor() { return copro_; }

 private:
  static constexpr std::size_t kNobody = ~std::size_t{0};

  void route_responses();

  Coprocessor copro_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::size_t> seq_owner_;  ///< seq -> session id ring
  std::uint16_t next_seq_ = 0;          ///< mirrors the decoder's counter
  std::size_t rr_next_ = 0;
};

}  // namespace fpgafu::host
