#include "host/multi_host.hpp"

#include "isa/instruction.hpp"
#include "isa/rtm_ops.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

void MultiHost::Session::submit(const isa::Program& program) {
  const auto& words = program.words();
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::vector<isa::Word> group{words[i]};
    const isa::Instruction inst = isa::Instruction::decode(words[i]);
    if (inst.function == isa::fc::kRtm) {
      const auto op = static_cast<isa::RtmOp>(inst.variety);
      std::size_t payload_words = 0;
      if (op == isa::RtmOp::kPut) {
        payload_words = 1;
      } else if (op == isa::RtmOp::kPutVec) {
        payload_words = inst.aux;
      }
      check(i + payload_words < words.size(),
            "program ends inside a PUT/PUTV payload");
      for (std::size_t k = 0; k < payload_words; ++k) {
        group.push_back(words[++i]);
      }
    }
    pending_.push_back(std::move(group));
  }
}

std::optional<msg::Response> MultiHost::Session::poll() {
  if (inbox_.empty()) {
    return std::nullopt;
  }
  const msg::Response r = inbox_.front();
  inbox_.pop_front();
  return r;
}

std::vector<msg::Response> MultiHost::Session::call(
    const isa::Program& program, std::uint64_t max_cycles) {
  submit(program);
  std::vector<msg::Response> responses;
  sim::Simulator& sim = owner_->copro_.system().simulator();
  sim.run_until(
      [&] {
        owner_->pump();
        while (auto r = poll()) {
          responses.push_back(*r);
        }
        return responses.size() >= program.expected_responses() &&
               pending_.empty();
      },
      max_cycles);
  return responses;
}

MultiHost::Session& MultiHost::create_session() {
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(this, sessions_.size())));
  return *sessions_.back();
}

bool MultiHost::all_submitted() const {
  for (const auto& s : sessions_) {
    if (!s->pending_.empty()) {
      return false;
    }
  }
  return true;
}

void MultiHost::pump() {
  // Round-robin: one instruction group per session per round, starting
  // after the last session served (fairness across pumps).
  const std::size_t n = sessions_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Session& s = *sessions_[(rr_next_ + k) % n];
    if (s.pending_.empty()) {
      continue;
    }
    const std::vector<isa::Word>& group = s.pending_.front();
    for (const isa::Word w : group) {
      copro_.submit_word(w);
    }
    seq_owner_[next_seq_] = s.id_;
    ++next_seq_;  // uint16 wraps with the decoder's counter
    s.pending_.pop_front();
  }
  rr_next_ = n == 0 ? 0 : (rr_next_ + 1) % n;
  route_responses();
}

void MultiHost::route_responses() {
  while (auto r = copro_.poll()) {
    const std::size_t owner = seq_owner_[r->seq];
    check(owner != kNobody && owner < sessions_.size(),
          "response with unknown sequence owner");
    sessions_[owner]->inbox_.push_back(*r);
  }
}

}  // namespace fpgafu::host
