#include "host/multi_host.hpp"

#include "util/error.hpp"

namespace fpgafu::host {

void MultiHost::Session::submit(const isa::Program& program) {
  for (InstructionGroup& g : split_groups(program)) {
    pending_.push_back(std::move(g));
  }
}

std::optional<msg::Response> MultiHost::Session::poll() {
  if (inbox_.empty()) {
    return std::nullopt;
  }
  const msg::Response r = inbox_.front();
  inbox_.pop_front();
  return r;
}

std::vector<msg::Response> MultiHost::Session::call(
    const isa::Program& program, std::uint64_t max_cycles) {
  submit(program);
  std::vector<msg::Response> responses;
  // Blocks on the shared Pump (the coprocessor's clock owner): one
  // multiplexer round per cycle, with the uniform Deadline watchdog.
  owner_->copro_.pump().run_until(
      [&] {
        owner_->pump();
        while (auto r = poll()) {
          responses.push_back(*r);
        }
        return responses.size() >= program.expected_responses() &&
               pending_.empty();
      },
      Deadline(owner_->copro_.system().simulator(), max_cycles),
      "MultiHost::Session::call");
  return responses;
}

MultiHost::Session& MultiHost::create_session() {
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(this, sessions_.size())));
  return *sessions_.back();
}

bool MultiHost::all_submitted() const {
  for (const auto& s : sessions_) {
    if (!s->pending_.empty()) {
      return false;
    }
  }
  return true;
}

void MultiHost::pump() {
  // Round-robin: one instruction group per session per round, resuming
  // after the last session actually served — if a round stops early (full
  // link), the sessions it skipped are first in line next round.
  const std::size_t n = sessions_.size();
  const rtm::Rtm& rtm = copro_.system().rtm();
  bool served_any = false;
  std::size_t last_served = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (rr_next_ + k) % n;
    Session& s = *sessions_[idx];
    if (s.pending_.empty()) {
      continue;
    }
    const InstructionGroup& group = s.pending_.front();
    // A group that does not fit the downstream link buffer would block
    // mid-instruction inside submit_word; end the round instead.
    if (copro_.system().link().host_space() <
        group.words.size() * msg::kLinkWordsPerStreamWord) {
      break;
    }
    const ResponsePrediction pred =
        predict(group.inst, rtm.config(), rtm.table());
    for (const isa::Word w : group.words) {
      copro_.submit_word(w);
    }
    // Response-less instructions still consume a sequence number; keep the
    // owner entry live (released only by overwrite an epoch later) so a
    // response that "cannot happen" is routed somewhere diagnosable.
    seq_owner_[next_seq_] = {
        s.id_, static_cast<std::uint16_t>(pred.count > 0 ? pred.count : 1)};
    ++next_seq_;  // uint16 wraps with the decoder's counter
    s.pending_.pop_front();
    served_any = true;
    last_served = idx;
  }
  if (served_any) {
    rr_next_ = (last_served + 1) % n;
  }
  route_responses();
}

void MultiHost::route_responses() {
  while (auto r = copro_.poll()) {
    SeqOwner& owner = seq_owner_[r->seq];
    check(owner.session != kNobody && owner.session < sessions_.size(),
          "response with unknown sequence owner");
    sessions_[owner.session]->inbox_.push_back(*r);
    // Release the entry once every due response has been routed, so a
    // post-wrap duplicate trips the check above instead of misrouting.
    if (--owner.remaining == 0) {
      owner.session = kNobody;
    }
  }
}

}  // namespace fpgafu::host
