#pragma once

#include <bitset>
#include <cstddef>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "rtm/fu_table.hpp"
#include "rtm/rtm.hpp"

namespace fpgafu::host {

/// One instruction plus any inline payload words (a PUT travels with its
/// data word, a PUTV with its burst) — the unit of interleaving for
/// MultiHost and the unit of retry for ReliableTransport.
struct InstructionGroup {
  std::vector<isa::Word> words;  ///< instruction word, then payload words
  isa::Instruction inst;         ///< decoded copy of words[0]
};

/// Split a program into instruction groups.  Throws SimError when the
/// program ends inside a PUT/PUTV payload.
std::vector<InstructionGroup> split_groups(const isa::Program& program);

/// What one instruction group will send back, predicted host-side.
struct ResponsePrediction {
  /// Responses the group produces (a GETV yields `aux`, most writes zero).
  std::size_t count = 0;
  /// True when re-submitting the group cannot change architectural state —
  /// reads, SYNC, and faulting instructions (whose writes never land).  In
  /// this ISA every response-producing group is retriable, because writes
  /// are response-less; the field still travels with the prediction so the
  /// transport's failure handling states its assumption explicitly.
  bool retriable = false;
};

/// Host-side mirror of the decoder's validation and the dispatcher's
/// routing: predicts exactly how many responses (data, flags, sync or
/// error) one instruction will generate on the given RTM configuration
/// with the given attached-unit table.
ResponsePrediction predict(const isa::Instruction& inst,
                           const rtm::RtmConfig& config,
                           const rtm::FunctionalUnitTable& table);

/// Register footprint of one instruction group, host-side — what the
/// transport's *frame-granularity* write barrier reasons about.  For a
/// retriable (read-class) group the read sets name every register whose
/// VALUE its responses depend on: a retried GET returns the same bytes iff
/// nothing wrote its source register in between.  Error-predicted groups,
/// SYNC and out-of-range sub-reads have empty read sets — their responses
/// are functions of the instruction encoding and the configuration, not of
/// register state, so a retry is always byte-identical.  For a write group
/// the write sets name every register it can mutate (FU destinations are
/// taken conservatively: dst1, aux when the unit writes a second result,
/// and dst_flag always).  Data and flag registers are disjoint namespaces.
struct GroupEffects {
  /// One bit per register number (isa::RegNum is 8-bit, so 256 covers any
  /// RtmConfig).
  using RegSet = std::bitset<256>;
  RegSet data_reads;
  RegSet data_writes;
  RegSet flag_reads;
  RegSet flag_writes;
  /// False = footprint unknown (a group the host never analysed); the
  /// barrier must treat it as conflicting with everything.
  bool exact = false;

  /// Would issuing this group as a *write* while `reader` is outstanding
  /// let a retry of `reader` observe a newer value?  Conservative (true)
  /// whenever either footprint is not exact.
  bool writes_conflict_with_reads_of(const GroupEffects& reader) const {
    if (!exact || !reader.exact) {
      return true;
    }
    return (data_writes & reader.data_reads).any() ||
           (flag_writes & reader.flag_reads).any();
  }
};

/// Compute the register footprint of one instruction (see GroupEffects).
/// Mirrors the same validation order as predict(): a group predicted to
/// error never lands its writes and its error responses are
/// value-independent, so it gets empty sets.
GroupEffects group_effects(const isa::Instruction& inst,
                           const rtm::RtmConfig& config,
                           const rtm::FunctionalUnitTable& table);

/// One member program's sub-range inside a coalesced frame.
struct FrameMember {
  std::size_t first_group = 0;  ///< index into FrameLayout::groups
  std::size_t group_count = 0;
  std::size_t response_count = 0;  ///< predicted responses, summed
};

/// Frame-level framing: several member programs concatenated into one
/// submission frame.  `groups` is the concatenation of each member's
/// split_groups() output (one contiguous wire transmission); predictions
/// and register effects are per group, and `members` records each
/// program's sub-range so the transport can demultiplex responses back
/// into per-program completions.
struct FrameLayout {
  std::vector<InstructionGroup> groups;
  std::vector<ResponsePrediction> predictions;
  std::vector<GroupEffects> effects;
  std::vector<FrameMember> members;
};

/// Split and predict a whole frame of member programs.  Throws SimError
/// when any member ends inside a PUT/PUTV payload.  An empty member is
/// legal: it contributes zero groups and completes immediately.
FrameLayout split_frame(const std::vector<const isa::Program*>& programs,
                        const rtm::RtmConfig& config,
                        const rtm::FunctionalUnitTable& table);

}  // namespace fpgafu::host
