#pragma once

#include <cstddef>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "rtm/fu_table.hpp"
#include "rtm/rtm.hpp"

namespace fpgafu::host {

/// One instruction plus any inline payload words (a PUT travels with its
/// data word, a PUTV with its burst) — the unit of interleaving for
/// MultiHost and the unit of retry for ReliableTransport.
struct InstructionGroup {
  std::vector<isa::Word> words;  ///< instruction word, then payload words
  isa::Instruction inst;         ///< decoded copy of words[0]
};

/// Split a program into instruction groups.  Throws SimError when the
/// program ends inside a PUT/PUTV payload.
std::vector<InstructionGroup> split_groups(const isa::Program& program);

/// What one instruction group will send back, predicted host-side.
struct ResponsePrediction {
  /// Responses the group produces (a GETV yields `aux`, most writes zero).
  std::size_t count = 0;
  /// True when re-submitting the group cannot change architectural state —
  /// reads, SYNC, and faulting instructions (whose writes never land).  In
  /// this ISA every response-producing group is retriable, because writes
  /// are response-less; the field still travels with the prediction so the
  /// transport's failure handling states its assumption explicitly.
  bool retriable = false;
};

/// Host-side mirror of the decoder's validation and the dispatcher's
/// routing: predicts exactly how many responses (data, flags, sync or
/// error) one instruction will generate on the given RTM configuration
/// with the given attached-unit table.
ResponsePrediction predict(const isa::Instruction& inst,
                           const rtm::RtmConfig& config,
                           const rtm::FunctionalUnitTable& table);

}  // namespace fpgafu::host
