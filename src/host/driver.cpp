#include "host/driver.hpp"

#include <array>

#include "util/error.hpp"

namespace fpgafu::host {

void Deadline::enforce(const std::string& what) const {
  if (expired()) {
    throw SimError(what + ": watchdog expired after " +
                   std::to_string(budget_) + " cycles");
  }
}

void Driver::sync_reset() {
  const std::uint64_t gen = system_->simulator().reset_generation();
  if (gen != reset_generation_) {
    reset_generation_ = gen;
    rx_words_.clear();
    tx_words_.clear();
  }
}

void Driver::enqueue_word(isa::Word word) {
  // Fold in any external simulator reset *before* appending, so the stale
  // pre-reset queue is discarded but this word survives.
  sync_reset();
  tx_words_.push_back(static_cast<msg::LinkWord>(word >> 32));
  tx_words_.push_back(static_cast<msg::LinkWord>(word & 0xffffffffu));
}

void Driver::enqueue(const isa::Program& program) {
  for (const isa::Word w : program.words()) {
    enqueue_word(w);
  }
}

void Driver::service() {
  sync_reset();
  while (!tx_words_.empty() && system_->link().host_send(tx_words_.front())) {
    tx_words_.pop_front();
  }
  while (auto w = system_->link().host_receive()) {
    rx_words_.push_back(*w);
  }
}

std::optional<msg::Response> Driver::poll() {
  service();
  while (rx_words_.size() >= msg::kLinkWordsPerResponse) {
    std::array<msg::LinkWord, msg::kLinkWordsPerResponse> frame;
    for (unsigned i = 0; i < msg::kLinkWordsPerResponse; ++i) {
      frame[i] = rx_words_[i];
    }
    if (msg::Response::frame_ok(frame)) {
      rx_words_.erase(rx_words_.begin(),
                      rx_words_.begin() + msg::kLinkWordsPerResponse);
      ++responses_received_;
      return msg::Response::from_link_words(frame);
    }
    // Misaligned or corrupted: slide one word and retry.  The bad frame is
    // lost (the transport layer's job to recover); framing realigns.
    rx_words_.pop_front();
    stats_.bump(crc_resyncs_);
  }
  return std::nullopt;
}

void Driver::reset() {
  rx_words_.clear();
  tx_words_.clear();
}

std::uint64_t Pump::run_until(const std::function<bool()>& done,
                              Deadline deadline, const std::string& what) {
  std::uint64_t cycles = 0;
  for (;;) {
    driver_->service();
    if (done()) {
      return cycles;
    }
    deadline.observe();
    deadline.enforce(what);
    sim_->step();
    ++cycles;
  }
}

void Pump::flush(Deadline deadline, const std::string& what) {
  run_until([this] { return driver_->tx_drained(); }, deadline, what);
}

}  // namespace fpgafu::host
