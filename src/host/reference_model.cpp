#include "host/reference_model.hpp"

#include "isa/arith.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "isa/trig.hpp"
#include "util/bits.hpp"

namespace fpgafu::host {

ReferenceModel::ReferenceModel(const rtm::RtmConfig& config)
    : config_(config),
      regs_(config.data_regs, 0),
      flags_(config.flag_regs, 0) {}

void ReferenceModel::clear() {
  regs_.assign(regs_.size(), 0);
  flags_.assign(flags_.size(), 0);
  responses_.clear();
  seq_ = 0;
  awaiting_put_data_ = false;
  discard_put_data_ = false;
  vec_remaining_ = 0;
  vec_base_ = 0;
  vec_index_ = 0;
  vec_discard_ = false;
}

std::vector<msg::Response> ReferenceModel::run(const isa::Program& program) {
  for (const isa::Word w : program.words()) {
    feed(w);
  }
  return responses_;
}

void ReferenceModel::feed(isa::Word word) {
  if (awaiting_put_data_) {
    awaiting_put_data_ = false;
    if (!discard_put_data_) {
      regs_.at(pending_put_.dst1) = word & bits::mask(config_.word_width);
    }
    return;
  }
  if (vec_remaining_ > 0) {
    if (!vec_discard_) {
      regs_.at(static_cast<isa::RegNum>(vec_base_ + vec_index_)) =
          word & bits::mask(config_.word_width);
    }
    ++vec_index_;
    --vec_remaining_;
    return;
  }
  const isa::Instruction inst = isa::Instruction::decode(word);
  const std::uint16_t seq = seq_++;
  execute(inst, seq);
}

void ReferenceModel::execute(const isa::Instruction& inst, std::uint16_t seq) {
  using isa::RtmOp;
  auto error = [&](msg::ErrorCode code) {
    msg::Response r;
    r.type = msg::Response::Type::kError;
    r.code = static_cast<std::uint8_t>(code);
    r.seq = seq;
    r.payload = inst.encode();
    responses_.push_back(r);
  };
  auto data_ok = [&](isa::RegNum r) { return r < regs_.size(); };
  auto flag_ok = [&](isa::RegNum r) { return r < flags_.size(); };

  if (inst.function == isa::fc::kRtm) {
    switch (static_cast<RtmOp>(inst.variety)) {
      case RtmOp::kNop:
        return;
      case RtmOp::kSync: {
        msg::Response r;
        r.type = msg::Response::Type::kSyncDone;
        r.seq = seq;
        responses_.push_back(r);
        return;
      }
      case RtmOp::kCopy:
        if (!data_ok(inst.dst1) || !data_ok(inst.src1)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        regs_[inst.dst1] = regs_[inst.src1];
        return;
      case RtmOp::kCopyFlags:
        if (!flag_ok(inst.dst_flag) || !flag_ok(inst.src_flag)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        flags_[inst.dst_flag] = flags_[inst.src_flag];
        return;
      case RtmOp::kPut:
        if (!data_ok(inst.dst1)) {
          // The data word still follows in the stream; consume and discard
          // it (the hardware decoder does the same for a faulting PUT).
          error(msg::ErrorCode::kBadRegister);
          pending_put_ = inst;
          awaiting_put_data_ = true;
          discard_put_data_ = true;
          return;
        }
        pending_put_ = inst;
        awaiting_put_data_ = true;
        discard_put_data_ = false;
        return;
      case RtmOp::kPutImm:
        if (!data_ok(inst.dst1)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        regs_[inst.dst1] = inst.aux;
        return;
      case RtmOp::kPutVec: {
        if (inst.aux == 0) {
          return;
        }
        vec_remaining_ = inst.aux;
        vec_base_ = inst.dst1;
        vec_index_ = 0;
        vec_discard_ =
            static_cast<unsigned>(inst.dst1) + inst.aux > regs_.size();
        if (vec_discard_) {
          error(msg::ErrorCode::kBadRegister);
        }
        return;
      }
      case RtmOp::kGetVec:
        for (std::uint8_t i = 0; i < inst.aux; ++i) {
          const unsigned reg = static_cast<unsigned>(inst.src1) + i;
          if (reg < regs_.size()) {
            msg::Response r;
            r.type = msg::Response::Type::kData;
            r.seq = seq;
            r.burst = i;
            r.payload = regs_[reg];
            responses_.push_back(r);
          } else {
            // Each out-of-range sub-read yields its own error response;
            // the payload carries the synthesized GET's encoding, exactly
            // as the hardware decoder emits it.
            isa::Instruction sub;
            sub.function = isa::fc::kRtm;
            sub.variety = static_cast<isa::VarietyCode>(RtmOp::kGet);
            sub.src1 = static_cast<isa::RegNum>(reg);
            msg::Response r;
            r.type = msg::Response::Type::kError;
            r.code = static_cast<std::uint8_t>(msg::ErrorCode::kBadRegister);
            r.seq = seq;
            r.burst = i;
            r.payload = sub.encode();
            responses_.push_back(r);
          }
        }
        return;
      case RtmOp::kPutFlags:
        if (!flag_ok(inst.dst_flag)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        flags_[inst.dst_flag] = static_cast<isa::FlagWord>(inst.aux);
        return;
      case RtmOp::kGet: {
        if (!data_ok(inst.src1)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        msg::Response r;
        r.type = msg::Response::Type::kData;
        r.seq = seq;
        r.payload = regs_[inst.src1];
        responses_.push_back(r);
        return;
      }
      case RtmOp::kGetFlags: {
        if (!flag_ok(inst.src_flag)) {
          return error(msg::ErrorCode::kBadRegister);
        }
        msg::Response r;
        r.type = msg::Response::Type::kFlags;
        r.seq = seq;
        r.code = flags_[inst.src_flag];
        responses_.push_back(r);
        return;
      }
    }
    return error(msg::ErrorCode::kUnknownFunction);
  }

  // Stateless functional-unit instruction.
  if (!data_ok(inst.dst1) || !data_ok(inst.src1) || !data_ok(inst.src2) ||
      !flag_ok(inst.dst_flag) || !flag_ok(inst.src_flag)) {
    return error(msg::ErrorCode::kBadRegister);
  }
  const unsigned width = config_.word_width;
  const isa::Word a = regs_[inst.src1];
  const isa::Word b = regs_[inst.src2];
  const isa::FlagWord f = flags_[inst.src_flag];
  if (inst.function == isa::fc::kArith) {
    const auto r = isa::arith::evaluate(inst.variety, a, b, f, width);
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  if (inst.function == isa::fc::kLogic) {
    const auto r = isa::logic::evaluate(inst.variety, a, b, width);
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  if (inst.function == isa::fc::kShift) {
    const auto r = isa::shift::evaluate(inst.variety, a, b, width);
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  if (inst.function == isa::fc::kMulDiv) {
    const auto r = isa::muldiv::evaluate(inst.variety, a, b, width);
    if (r.has_second) {
      // Dual-output operation: the second destination (aux) must exist and
      // differ from dst1, mirroring the dispatcher's check.
      if (inst.aux >= regs_.size() || inst.aux == inst.dst1) {
        return error(msg::ErrorCode::kBadRegister);
      }
      regs_[inst.aux] = r.value2 & bits::mask(width);
    }
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  if (inst.function == isa::fc::kFloat) {
    const auto r = isa::fp32::evaluate(inst.variety, a, b);
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  if (inst.function == isa::fc::kTrig) {
    const auto r = isa::trig::evaluate(inst.variety, a, b);
    if (r.write_data) {
      regs_[inst.dst1] = r.value;
    }
    flags_[inst.dst_flag] = r.flags;
    return;
  }
  return error(msg::ErrorCode::kUnknownFunction);
}

}  // namespace fpgafu::host
