#include "host/expr.hpp"

#include <algorithm>
#include <unordered_map>

#include "host/coprocessor.hpp"
#include "isa/arith.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

struct Expr::Node {
  enum class Kind { kConst, kInput, kOp };
  Kind kind;
  isa::Word value = 0;                 // kConst
  std::string name;                    // kInput
  isa::FunctionCode function = 0;      // kOp
  isa::VarietyCode variety = 0;        // kOp
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

Expr Expr::constant(isa::Word value) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kConst;
  n->value = value;
  return Expr(std::move(n));
}

Expr Expr::input(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kInput;
  n->name = std::move(name);
  return Expr(std::move(n));
}

Expr Expr::binary(isa::FunctionCode function, isa::VarietyCode variety,
                  const Expr& a, const Expr& b) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kOp;
  n->function = function;
  n->variety = variety;
  n->lhs = a.node_;
  n->rhs = b.node_;
  return Expr(std::move(n));
}

Expr operator+(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kArith,
                      isa::arith::variety(isa::arith::Op::kAdd), a, b);
}
Expr operator-(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kArith,
                      isa::arith::variety(isa::arith::Op::kSub), a, b);
}
Expr operator*(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kMulDiv,
                      isa::muldiv::variety(isa::muldiv::Op::kMul), a, b);
}
Expr operator&(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kLogic,
                      isa::logic::variety(isa::logic::Op::kAnd), a, b);
}
Expr operator|(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kLogic,
                      isa::logic::variety(isa::logic::Op::kOr), a, b);
}
Expr operator^(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kLogic,
                      isa::logic::variety(isa::logic::Op::kXor), a, b);
}
Expr operator<<(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kShift,
                      isa::shift::variety(isa::shift::Op::kShl), a, b);
}
Expr operator>>(const Expr& a, const Expr& b) {
  return Expr::binary(isa::fc::kShift,
                      isa::shift::variety(isa::shift::Op::kShr), a, b);
}
Expr Expr::udiv(const Expr& divisor) const {
  return binary(isa::fc::kMulDiv, isa::muldiv::variety(isa::muldiv::Op::kDiv),
                *this, divisor);
}
Expr Expr::urem(const Expr& divisor) const {
  return binary(isa::fc::kMulDiv, isa::muldiv::variety(isa::muldiv::Op::kRem),
                *this, divisor);
}
Expr Expr::fadd(const Expr& a, const Expr& b) {
  return binary(isa::fc::kFloat, isa::fp32::variety(isa::fp32::Op::kFadd), a,
                b);
}
Expr Expr::fsub(const Expr& a, const Expr& b) {
  return binary(isa::fc::kFloat, isa::fp32::variety(isa::fp32::Op::kFsub), a,
                b);
}
Expr Expr::fmul(const Expr& a, const Expr& b) {
  return binary(isa::fc::kFloat, isa::fp32::variety(isa::fp32::Op::kFmul), a,
                b);
}
Expr Expr::fdiv(const Expr& a, const Expr& b) {
  return binary(isa::fc::kFloat, isa::fp32::variety(isa::fp32::Op::kFdiv), a,
                b);
}

// ---------------------------------------------------------------------------
// Compilation.

namespace {

using Node = Expr::Node;
using NodePtr = std::shared_ptr<const Node>;

/// Structural key for hash-consing (CSE).
struct NodeKey {
  int kind;
  isa::Word value;
  std::string name;
  int function;
  int variety;
  const void* lhs;
  const void* rhs;

  bool operator==(const NodeKey&) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::size_t h = std::hash<int>()(k.kind);
    h = h * 31 + std::hash<isa::Word>()(k.value);
    h = h * 31 + std::hash<std::string>()(k.name);
    h = h * 31 + std::hash<int>()(k.function * 256 + k.variety);
    h = h * 31 + std::hash<const void*>()(k.lhs);
    h = h * 31 + std::hash<const void*>()(k.rhs);
    return h;
  }
};

}  // namespace

CompiledExpr ExprCompiler::compile(const Expr& root) const {
  check(root.node() != nullptr, "compile: empty expression");

  // 1. Deduplicate structurally identical subtrees (bottom-up): map every
  //    node to a canonical representative.
  std::unordered_map<const Node*, const Node*> canon;
  std::unordered_map<NodeKey, const Node*, NodeKeyHash> interned;
  std::vector<const Node*> order;  // canonical nodes, topologically sorted
  std::vector<NodePtr> keep_alive;

  // Iterative postorder over the DAG.
  std::vector<std::pair<const Node*, bool>> stack{{root.node().get(), false}};
  keep_alive.push_back(root.node());
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (canon.count(n) != 0) {
      continue;
    }
    if (!expanded) {
      stack.push_back({n, true});
      if (n->kind == Node::Kind::kOp) {
        stack.push_back({n->rhs.get(), false});
        stack.push_back({n->lhs.get(), false});
      }
      continue;
    }
    NodeKey key;
    key.kind = static_cast<int>(n->kind);
    key.value = n->kind == Node::Kind::kConst ? n->value : 0;
    key.name = n->kind == Node::Kind::kInput ? n->name : std::string();
    key.function = n->kind == Node::Kind::kOp ? n->function : 0;
    key.variety = n->kind == Node::Kind::kOp ? n->variety : 0;
    key.lhs = n->kind == Node::Kind::kOp ? canon.at(n->lhs.get()) : nullptr;
    key.rhs = n->kind == Node::Kind::kOp ? canon.at(n->rhs.get()) : nullptr;
    const auto [it, inserted] = interned.emplace(key, n);
    canon[n] = it->second;
    if (inserted) {
      order.push_back(n);
    }
  }

  // 2. Use counts over canonical edges (the root counts as one use).
  std::unordered_map<const Node*, int> uses;
  uses[canon.at(root.node().get())] += 1;
  for (const Node* n : order) {
    if (n->kind == Node::Kind::kOp) {
      uses[canon.at(n->lhs.get())] += 1;
      uses[canon.at(n->rhs.get())] += 1;
    }
  }

  // 3. Schedule in topological order with liveness-based register reuse.
  CompiledExpr out;
  std::vector<isa::RegNum> free_regs;
  isa::RegNum next_reg = 1;  // r0 stays zero by convention
  const std::size_t limit = config_.data_regs;
  auto alloc = [&]() -> isa::RegNum {
    if (!free_regs.empty()) {
      const isa::RegNum r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    check(next_reg < limit,
          "expression needs more live registers than the RTM provides");
    return next_reg++;
  };

  std::unordered_map<const Node*, isa::RegNum> reg_of;
  std::unordered_map<const Node*, int> remaining = uses;
  auto consume = [&](const Node* n) {
    if (--remaining.at(n) == 0) {
      free_regs.push_back(reg_of.at(n));
    }
  };

  for (const Node* n : order) {
    const isa::RegNum r = alloc();
    reg_of[n] = r;
    CompiledExpr::Step step;
    step.dst = r;
    switch (n->kind) {
      case Node::Kind::kConst:
        step.kind = CompiledExpr::Step::Kind::kPutConst;
        step.value = n->value;
        break;
      case Node::Kind::kInput:
        step.kind = CompiledExpr::Step::Kind::kPutInput;
        step.input_name = n->name;
        if (std::find(out.input_names_.begin(), out.input_names_.end(),
                      n->name) == out.input_names_.end()) {
          out.input_names_.push_back(n->name);
        }
        break;
      case Node::Kind::kOp: {
        const Node* a = canon.at(n->lhs.get());
        const Node* b = canon.at(n->rhs.get());
        step.kind = CompiledExpr::Step::Kind::kOp;
        step.function = n->function;
        step.variety = n->variety;
        step.src1 = reg_of.at(a);
        step.src2 = reg_of.at(b);
        ++out.op_count_;
        consume(a);
        consume(b);
        break;
      }
    }
    out.steps_.push_back(std::move(step));
  }
  out.registers_used_ = next_reg - 1;  // r1 .. r(next_reg-1) were touched
  out.result_reg_ = reg_of.at(canon.at(root.node().get()));
  return out;
}

isa::Program CompiledExpr::program(
    const std::map<std::string, isa::Word>& inputs) const {
  isa::Program p;
  for (const Step& step : steps_) {
    switch (step.kind) {
      case Step::Kind::kPutConst:
        p.emit_put(step.dst, step.value);
        break;
      case Step::Kind::kPutInput: {
        const auto it = inputs.find(step.input_name);
        check(it != inputs.end(),
              "unbound expression input '" + step.input_name + "'");
        p.emit_put(step.dst, it->second);
        break;
      }
      case Step::Kind::kOp: {
        isa::Instruction inst;
        inst.function = step.function;
        inst.variety = step.variety;
        inst.dst1 = step.dst;
        inst.src1 = step.src1;
        inst.src2 = step.src2;
        p.emit(inst);
        break;
      }
    }
  }
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = result_reg_;
  p.emit(get);
  return p;
}

isa::Word CompiledExpr::run(
    Coprocessor& copro, const std::map<std::string, isa::Word>& inputs) const {
  const auto responses = copro.call(program(inputs));
  check(responses.size() == 1 &&
            responses.front().type == msg::Response::Type::kData,
        "expression run: unexpected response stream");
  return responses.front().payload;
}

}  // namespace fpgafu::host
