#include "host/xsort_system_engine.hpp"

#include "isa/rtm_ops.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

SystemXsortEngine::SystemXsortEngine(top::System& system)
    : copro_(system), capacity_(system.config().xsort.cells) {
  check(system.xsort_unit() != nullptr,
        "SystemXsortEngine requires a System built with with_xsort = true");
}

std::uint64_t SystemXsortEngine::op(xsort::XsortOp o, std::uint64_t operand) {
  isa::Program p;
  p.emit_put(kOperandReg, operand);

  isa::Instruction xop;
  xop.function = isa::fc::kXsort;
  xop.variety = static_cast<isa::VarietyCode>(o);
  xop.src1 = kOperandReg;
  xop.dst1 = kResultReg;
  p.emit(xop);

  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = kResultReg;
  p.emit(get);

  const auto responses = copro_.call(p);
  check(responses.size() == 1 &&
            responses.front().type == msg::Response::Type::kData,
        "xsort system op: unexpected response stream");
  ++ops_;
  return responses.front().payload;
}

std::uint64_t SystemXsortEngine::cost_cycles() const {
  return copro_.system().simulator().cycle() - cost_base_;
}

void SystemXsortEngine::reset_cost() {
  cost_base_ = copro_.system().simulator().cycle();
  ops_ = 0;
}

}  // namespace fpgafu::host
