#include "host/reliable_transport.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace fpgafu::host {

void TransportConfig::validate() const {
  check(response_timeout > 0, "TransportConfig::response_timeout must be > 0");
  check(max_attempts > 0, "TransportConfig::max_attempts must be > 0");
  check(backoff_multiplier > 0,
        "TransportConfig::backoff_multiplier must be > 0");
  check(max_backoff_factor > 0,
        "TransportConfig::max_backoff_factor must be > 0");
  check(window > 0, "TransportConfig::window must be > 0");
  // Outstanding groups are matched by 16-bit wire sequence number; a window
  // anywhere near the sequence space would make matches ambiguous.
  check(window <= 4096, "TransportConfig::window must be <= 4096");
}

std::uint64_t backoff_timeout(const TransportConfig& config,
                              unsigned attempts) {
  std::uint64_t factor = 1;
  for (unsigned a = 1; a < attempts; ++a) {
    factor *= config.backoff_multiplier;
    if (factor >= config.max_backoff_factor) {
      factor = config.max_backoff_factor;
      break;
    }
  }
  return config.response_timeout * factor;
}

ReliableTransport::ReliableTransport(Coprocessor& copro,
                                     TransportConfig config)
    : copro_(&copro),
      config_(config),
      reset_generation_(copro.system().simulator().reset_generation()),
      retries_(stats_.handle("transport.retries")),
      timeouts_(stats_.handle("transport.timeouts")),
      gap_retries_(stats_.handle("transport.gap_retries")),
      dup_dropped_(stats_.handle("transport.dup_dropped")),
      stale_dropped_(stats_.handle("transport.stale_dropped")),
      failures_(stats_.handle("transport.failures")) {
  config_.validate();
}

ReliableTransport::Flight* ReliableTransport::flight(ProgramId id) {
  for (Flight& f : window_) {
    if (f.id == id) {
      return &f;
    }
  }
  return nullptr;
}

void ReliableTransport::sync_generation() {
  const std::uint64_t gen = copro_->system().simulator().reset_generation();
  if (gen != reset_generation_) {
    reset_generation_ = gen;
    next_wire_seq_ = 0;  // the decoder's counter restarted too
  }
}

void ReliableTransport::push_frame(Flight&& f) {
  window_.push_back(std::move(f));
  unissued_ = true;
  emit_pending_ = true;  // a pure-write frame may already be complete
}

ReliableTransport::ProgramId ReliableTransport::submit(
    const isa::Program& program, std::optional<std::uint64_t> budget_cycles,
    bool stream) {
  check(!window_full(), "ReliableTransport::submit: window is full (" +
                            std::to_string(config_.window) +
                            " programs in flight)");
  if (window_.empty() && outstanding_.empty()) {
    // A new exchange may follow an external reset; re-mirror the decoder.
    sync_generation();
  }
  const rtm::Rtm& rtm = copro_->system().rtm();
  Flight f;
  f.id = next_program_id_++;
  f.groups = split_groups(program);
  f.slots.resize(f.groups.size());
  for (std::size_t i = 0; i < f.groups.size(); ++i) {
    f.slots[i].pred = predict(f.groups[i].inst, rtm.config(), rtm.table());
    f.slots[i].program_seq = static_cast<std::uint16_t>(i);
    f.slots[i].done = f.slots[i].pred.count == 0;
  }
  Member m;
  m.id = f.id;
  m.first_slot = 0;
  m.slot_count = f.slots.size();
  m.stream = stream;
  f.members.push_back(std::move(m));
  f.budget = budget_cycles.value_or(config_.max_cycles);
  push_frame(std::move(f));
  return window_.back().id;
}

std::vector<ReliableTransport::ProgramId> ReliableTransport::submit_coalesced(
    const std::vector<CoalescedItem>& items) {
  check(!items.empty(), "ReliableTransport::submit_coalesced: empty frame");
  check(!window_full(),
        "ReliableTransport::submit_coalesced: window is full (" +
            std::to_string(config_.window) + " frames in flight)");
  if (window_.empty() && outstanding_.empty()) {
    sync_generation();
  }
  const rtm::Rtm& rtm = copro_->system().rtm();
  std::vector<const isa::Program*> programs;
  programs.reserve(items.size());
  for (const CoalescedItem& item : items) {
    check(item.program != nullptr,
          "ReliableTransport::submit_coalesced: null member program");
    programs.push_back(item.program);
  }
  FrameLayout layout = split_frame(programs, rtm.config(), rtm.table());

  Flight f;
  f.coalesced = true;
  f.groups = std::move(layout.groups);
  f.slots.resize(f.groups.size());
  std::vector<ProgramId> ids;
  ids.reserve(items.size());
  for (std::size_t k = 0; k < items.size(); ++k) {
    Member m;
    m.id = next_program_id_++;
    m.first_slot = layout.members[k].first_group;
    m.slot_count = layout.members[k].group_count;
    m.stream = items[k].stream;
    for (std::size_t i = 0; i < m.slot_count; ++i) {
      GroupSlot& s = f.slots[m.first_slot + i];
      s.pred = layout.predictions[m.first_slot + i];
      s.effects = layout.effects[m.first_slot + i];
      s.program_seq = static_cast<std::uint16_t>(i);  // member-relative
      s.done = s.pred.count == 0;
    }
    // One frame, one watchdog: the frame deadline is the laxest member's.
    f.budget = std::max(f.budget,
                        items[k].budget_cycles.value_or(config_.max_cycles));
    ids.push_back(m.id);
    f.members.push_back(std::move(m));
  }
  f.id = f.members.front().id;
  push_frame(std::move(f));
  return ids;
}

void ReliableTransport::transmit(Flight& f, std::size_t slot_index,
                                 unsigned attempts) {
  const std::uint16_t wire = next_wire_seq_++;
  for (const isa::Word w : f.groups[slot_index].words) {
    copro_->submit_word(w);
  }
  if (f.slots[slot_index].pred.count > 0) {
    // Partial burst progress is kept across retries: the group is
    // read-only (the write barrier holds back anything that could change
    // what it reads), so the re-sent sub-responses it already has are
    // byte-identical duplicates and the missing tail extends `got`.
    const bool was_empty = outstanding_.empty();
    outstanding_.push_back({f.id, slot_index, wire, attempts, 0});
    if (was_empty) {
      arm_front();
    }
  }
}

void ReliableTransport::arm_front() {
  if (outstanding_.empty()) {
    return;
  }
  Outstanding& o = outstanding_.front();
  std::uint64_t t = backoff_timeout(config_, o.attempts);
  // Clamp to the owning program's remaining watchdog budget: a backed-off
  // retry chain must keep probing inside the budget, never out-wait it.
  if (const Flight* f = flight(o.program); f && f->deadline) {
    t = std::max<std::uint64_t>(1, std::min(t, f->deadline->remaining()));
  }
  o.deadline = copro_->system().simulator().cycle() + t;
}

void ReliableTransport::retry_front(sim::Counters::Handle reason) {
  const Outstanding o = outstanding_.front();
  outstanding_.pop_front();
  arm_front();
  stats_.bump(reason);
  Flight* f = flight(o.program);
  check(f != nullptr, "ReliableTransport: outstanding entry for a program "
                      "that is no longer in flight");
  GroupSlot& s = f->slots[o.slot];
  if (!s.pred.retriable) {
    // Cannot safely re-submit: report the loss as a transport error in
    // the group's program-order position.
    stats_.bump(failures_);
    msg::Response r;
    r.type = msg::Response::Type::kError;
    r.code = static_cast<std::uint8_t>(msg::ErrorCode::kTransport);
    r.seq = s.program_seq;
    s.got.assign(1, r);
    s.done = true;
    emit_pending_ = true;
    return;
  }
  if (o.attempts >= config_.max_attempts) {
    stats_.bump(failures_);
    copro_->reset();
    throw SimError("ReliableTransport: program " + std::to_string(o.program) +
                   " group " + std::to_string(o.slot) + " exhausted " +
                   std::to_string(config_.max_attempts) + " attempts");
  }
  stats_.bump(retries_);
  transmit(*f, o.slot, o.attempts + 1);
}

void ReliableTransport::handle_response(const msg::Response& r) {
  // Locate the outstanding entry this response belongs to.
  std::size_t match = outstanding_.size();
  for (std::size_t j = 0; j < outstanding_.size(); ++j) {
    if (outstanding_[j].wire_seq == r.seq) {
      match = j;
      break;
    }
  }
  if (match == outstanding_.size()) {
    // A duplicate of an already-completed group or a late response from a
    // superseded attempt.
    stats_.bump(stale_dropped_);
    return;
  }
  // In-order delivery: a response for entry `match` proves entries before
  // it lost their remaining responses.  Retry them (they re-enter at the
  // tail under fresh sequence numbers).
  for (std::size_t j = 0; j < match; ++j) {
    retry_front(gap_retries_);
  }
  Outstanding& o = outstanding_.front();
  Flight* f = flight(o.program);
  check(f != nullptr, "ReliableTransport: response for a program that is no "
                      "longer in flight");
  GroupSlot& s = f->slots[o.slot];
  if (r.burst < s.got.size()) {
    stats_.bump(dup_dropped_);  // duplicated sub-response within a burst
    return;
  }
  if (r.burst > s.got.size()) {
    // A sub-response inside the burst went missing; re-read the whole
    // group (sub-responses share one sequence number, so a partial retry
    // could not be told apart from the lost originals).
    retry_front(gap_retries_);
    return;
  }
  s.got.push_back(r);
  if (s.got.size() >= s.pred.count) {
    s.done = true;
    emit_pending_ = true;
    outstanding_.pop_front();
    arm_front();
  } else {
    // Progress: the attempt counter tracks consecutive attempts that
    // delivered nothing, so a long burst is not charged for earlier
    // losses it has already recovered from.
    o.attempts = 1;
    arm_front();
  }
}

void ReliableTransport::emit_ready() {
  for (auto it = window_.begin(); it != window_.end();) {
    Flight& f = *it;
    // The member owning the emit cursor (members are contiguous in slot
    // order, so this advances monotonically with the cursor).
    std::size_t owner = 0;
    while (owner < f.members.size() &&
           f.emit_cursor >=
               f.members[owner].first_slot + f.members[owner].slot_count) {
      ++owner;
    }
    while (f.emit_cursor < f.slots.size() && f.slots[f.emit_cursor].done) {
      while (f.emit_cursor >=
             f.members[owner].first_slot + f.members[owner].slot_count) {
        ++owner;  // skip empty members sitting at this boundary
      }
      GroupSlot& s = f.slots[f.emit_cursor];
      Member& m = f.members[owner];
      for (msg::Response r : s.got) {
        r.seq = s.program_seq;  // renumber wire order back to program order
        if (m.stream) {
          stream_events_.push_back({m.id, r});
        }
        m.out.push_back(r);
      }
      s.got.clear();
      ++f.emit_cursor;
    }
    // Members complete individually, in member order: one is done when all
    // its groups reached the wire and all its slots emitted.  (Write slots
    // are born done, so the issue condition is the binding one for
    // pure-write members.)
    bool all_emitted = true;
    for (Member& m : f.members) {
      const std::size_t end = m.first_slot + m.slot_count;
      if (!m.emitted && f.emit_cursor >= end && f.next_group >= end) {
        m.emitted = true;
        completed_.push_back({m.id, std::move(m.out)});
      }
      all_emitted = all_emitted && m.emitted;
    }
    if (all_emitted) {
      it = window_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ReliableTransport::write_conflicts(const GroupEffects& writer) const {
  for (const Outstanding& o : outstanding_) {
    const Flight* f = nullptr;
    for (const Flight& w : window_) {
      if (w.id == o.program) {
        f = &w;
        break;
      }
    }
    // An outstanding entry always belongs to a live flight; be conservative
    // if that invariant were ever violated.
    if (f == nullptr ||
        writer.writes_conflict_with_reads_of(f->slots[o.slot].effects)) {
      return true;
    }
  }
  return false;
}

void ReliableTransport::issue_pending() {
  sim::Simulator& sim = copro_->system().simulator();
  // Groups issue in strict submission order — the first flight with
  // unissued groups is the only one allowed to transmit, so a later
  // program can never overtake an earlier one on the wire.  Groups that
  // mutate state additionally wait behind the write barrier (nothing
  // outstanding anywhere) so no retry can ever observe a newer value.
  // Inside a *coalesced* frame the barrier is per register: a member's
  // write may overtake outstanding reads whose footprints it cannot touch
  // (host::GroupEffects), so register-disjoint members pipeline instead of
  // paying one round trip each.  Plain flights keep the conservative rule
  // bit-for-bit (and their slots' default effects make any coalesced write
  // crossing them stall, keeping mixed windows safe).
  bool stalled = false;
  for (Flight& f : window_) {
    while (f.next_group < f.groups.size()) {
      const GroupSlot& s = f.slots[f.next_group];
      if (s.pred.count == 0 && !s.pred.retriable && !outstanding_.empty() &&
          (!f.coalesced || write_conflicts(s.effects))) {
        break;  // write barrier
      }
      if (!f.deadline) {
        // The per-program watchdog arms when the program reaches the wire.
        f.deadline.emplace(sim, f.budget);
        watchdog_due_ = 0;
      }
      transmit(f, f.next_group, 1);
      ++f.next_group;
      emit_pending_ = true;  // a fully issued pure-write flight completes
    }
    if (f.next_group < f.groups.size()) {
      stalled = true;
      break;  // stalled on the barrier; later programs must wait behind it
    }
  }
  unissued_ = stalled;
}

void ReliableTransport::check_watchdogs() {
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  const std::uint64_t now = copro_->system().simulator().cycle();
  std::uint64_t due = kNever;
  for (Flight& f : window_) {
    if (!f.deadline) {
      continue;
    }
    f.deadline->observe();
    if (f.deadline->expired()) {
      copro_->reset();
      const std::string what =
          f.members.size() > 1
              ? "frame " + std::to_string(f.id) + " (" +
                    std::to_string(f.members.size()) + " members)"
              : "program " + std::to_string(f.id);
      throw SimError("ReliableTransport: " + what +
                     " watchdog expired after " + std::to_string(f.budget) +
                     " cycles");
    }
    due = std::min(due, now + f.deadline->remaining());
  }
  // 0 marks the cache dirty; an unarmed-only window re-checks next quantum
  // (transient: flights arm on their first transmit).
  watchdog_due_ = due == kNever ? 0 : due;
}

void ReliableTransport::service() {
  sim::Simulator& sim = copro_->system().simulator();

  if (unissued_) {
    issue_pending();
  }

  while (auto r = copro_->poll()) {
    handle_response(*r);
  }

  if (!outstanding_.empty() && sim.cycle() >= outstanding_.front().deadline) {
    retry_front(timeouts_);
  }

  // Per-program watchdogs, checked lazily at the cached earliest-expiry
  // cycle.  Deadline::spent() reads the live cycle counter, so a lazy
  // check loses no precision; rewinds cannot happen while flights are in
  // the window (every reset path poisons the window first).
  if (!window_.empty() && (watchdog_due_ == 0 || sim.cycle() >= watchdog_due_)) {
    check_watchdogs();
  }

  if (emit_pending_) {
    emit_pending_ = false;
    emit_ready();
  }
}

std::optional<ReliableTransport::Completion>
ReliableTransport::poll_completed() {
  if (completed_.empty()) {
    return std::nullopt;
  }
  Completion c = std::move(completed_.front());
  completed_.pop_front();
  return c;
}

std::optional<ReliableTransport::StreamEvent> ReliableTransport::poll_stream() {
  if (stream_events_.empty()) {
    return std::nullopt;
  }
  StreamEvent e = stream_events_.front();
  stream_events_.pop_front();
  return e;
}

void ReliableTransport::abort_in_flight() {
  window_.clear();
  outstanding_.clear();
  completed_.clear();
  stream_events_.clear();
  unissued_ = false;
  emit_pending_ = false;
  watchdog_due_ = 0;
  copro_->reset();
}

std::vector<msg::Response> ReliableTransport::call(
    const isa::Program& program, std::optional<std::uint64_t> budget_cycles) {
  check(window_.empty(),
        "ReliableTransport::call with pipelined programs in flight");
  const std::uint64_t budget = budget_cycles.value_or(config_.max_cycles);
  submit(program, budget);
  sim::Simulator& sim = copro_->system().simulator();
  Pump& pump = copro_->pump();
  std::optional<Completion> done;
  try {
    pump.run_until(
        [&] {
          service();
          if (auto c = poll_completed()) {
            done = std::move(*c);
          }
          return done.has_value();
        },
        Deadline(sim, budget), "ReliableTransport::call");
  } catch (const SimError&) {
    // Watchdog (or max-attempts give-up) aborted mid-exchange; drop the
    // poisoned window and realign the deframer so the next call starts
    // clean.
    abort_in_flight();
    throw;
  }

  // Let trailing writes and stale duplicates drain so the system is idle
  // for the caller (any response arriving now belongs to no live group).
  pump.run_until(
      [&] {
        while (copro_->poll()) {
          stats_.bump(stale_dropped_);
        }
        return copro_->system().idle();
      },
      Deadline(sim, budget), "ReliableTransport::drain");

  return std::move(done->responses);
}

}  // namespace fpgafu::host
