#include "host/reliable_transport.hpp"

#include <deque>

#include "util/error.hpp"

namespace fpgafu::host {

ReliableTransport::ReliableTransport(Coprocessor& copro,
                                     TransportConfig config)
    : copro_(&copro),
      config_(config),
      reset_generation_(copro.system().simulator().reset_generation()),
      retries_(stats_.handle("transport.retries")),
      timeouts_(stats_.handle("transport.timeouts")),
      gap_retries_(stats_.handle("transport.gap_retries")),
      dup_dropped_(stats_.handle("transport.dup_dropped")),
      stale_dropped_(stats_.handle("transport.stale_dropped")),
      failures_(stats_.handle("transport.failures")) {}

void ReliableTransport::sync_generation() {
  const std::uint64_t gen = copro_->system().simulator().reset_generation();
  if (gen != reset_generation_) {
    reset_generation_ = gen;
    next_wire_seq_ = 0;  // the decoder's counter restarted too
  }
}

std::vector<msg::Response> ReliableTransport::call(
    const isa::Program& program, std::optional<std::uint64_t> budget_cycles) {
  sync_generation();
  const std::uint64_t budget = budget_cycles.value_or(config_.max_cycles);
  const std::vector<InstructionGroup> groups = split_groups(program);
  const rtm::Rtm& rtm = copro_->system().rtm();

  /// Per-group progress.  program_seq is the sequence number the reference
  /// model assigns — the group index in program order (mod 2^16).
  struct Slot {
    ResponsePrediction pred;
    std::uint16_t program_seq = 0;
    std::vector<msg::Response> got;
    bool done = false;
  };
  std::vector<Slot> slots(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    slots[i].pred = predict(groups[i].inst, rtm.config(), rtm.table());
    slots[i].program_seq = static_cast<std::uint16_t>(i);
    slots[i].done = slots[i].pred.count == 0;
  }

  /// Response-producing groups in flight, oldest first (wire order).
  struct Outstanding {
    std::size_t slot;
    std::uint16_t wire_seq;
    unsigned attempts;
    std::uint64_t deadline;  ///< armed only while this entry is the front
  };
  std::deque<Outstanding> outstanding;

  sim::Simulator& sim = copro_->system().simulator();

  auto timeout_for = [&](unsigned attempts) {
    std::uint64_t t = config_.response_timeout;
    // Cap the backoff at 64x so a long retry chain keeps probing instead
    // of out-waiting the watchdog.
    for (unsigned a = 1; a < attempts && a < 7; ++a) {
      t *= config_.backoff_multiplier;
    }
    return t;
  };
  auto arm_front = [&] {
    if (!outstanding.empty()) {
      outstanding.front().deadline =
          sim.cycle() + timeout_for(outstanding.front().attempts);
    }
  };

  /// Send a group's words and (when it responds) enqueue it for tracking.
  auto transmit = [&](std::size_t si, unsigned attempts) {
    const std::uint16_t wire = next_wire_seq_++;
    for (const isa::Word w : groups[si].words) {
      copro_->submit_word(w);
    }
    if (slots[si].pred.count > 0) {
      // Partial burst progress is kept across retries: the group is
      // read-only (the write barrier holds back anything that could change
      // what it reads), so the re-sent sub-responses it already has are
      // byte-identical duplicates and the missing tail extends `got`.
      const bool was_empty = outstanding.empty();
      outstanding.push_back({si, wire, attempts, 0});
      if (was_empty) {
        arm_front();
      }
    }
  };

  /// Give up on (or re-submit) the front outstanding entry.
  auto retry_entry = [&](sim::Counters::Handle reason) {
    const Outstanding o = outstanding.front();
    outstanding.pop_front();
    arm_front();
    stats_.bump(reason);
    Slot& s = slots[o.slot];
    if (!s.pred.retriable) {
      // Cannot safely re-submit: report the loss as a transport error in
      // the group's program-order position.
      stats_.bump(failures_);
      msg::Response r;
      r.type = msg::Response::Type::kError;
      r.code = static_cast<std::uint8_t>(msg::ErrorCode::kTransport);
      r.seq = s.program_seq;
      s.got.assign(1, r);
      s.done = true;
      return;
    }
    if (o.attempts >= config_.max_attempts) {
      stats_.bump(failures_);
      copro_->reset();
      throw SimError("ReliableTransport: group " +
                     std::to_string(o.slot) + " exhausted " +
                     std::to_string(config_.max_attempts) + " attempts");
    }
    stats_.bump(retries_);
    transmit(o.slot, o.attempts + 1);
  };

  auto handle_response = [&](const msg::Response& r) {
    // Locate the outstanding entry this response belongs to.
    std::size_t match = outstanding.size();
    for (std::size_t j = 0; j < outstanding.size(); ++j) {
      if (outstanding[j].wire_seq == r.seq) {
        match = j;
        break;
      }
    }
    if (match == outstanding.size()) {
      // A duplicate of an already-completed group or a late response from a
      // superseded attempt.
      stats_.bump(stale_dropped_);
      return;
    }
    // In-order delivery: a response for entry `match` proves entries before
    // it lost their remaining responses.  Retry them (they re-enter at the
    // tail under fresh sequence numbers).
    for (std::size_t j = 0; j < match; ++j) {
      retry_entry(gap_retries_);
    }
    Outstanding& o = outstanding.front();
    Slot& s = slots[o.slot];
    if (r.burst < s.got.size()) {
      stats_.bump(dup_dropped_);  // duplicated sub-response within a burst
      return;
    }
    if (r.burst > s.got.size()) {
      // A sub-response inside the burst went missing; re-read the whole
      // group (sub-responses share one sequence number, so a partial retry
      // could not be told apart from the lost originals).
      retry_entry(gap_retries_);
      return;
    }
    s.got.push_back(r);
    if (s.got.size() >= s.pred.count) {
      s.done = true;
      outstanding.pop_front();
      arm_front();
    } else {
      // Progress: the attempt counter tracks consecutive attempts that
      // delivered nothing, so a long burst is not charged for earlier
      // losses it has already recovered from.
      o.attempts = 1;
      o.deadline = sim.cycle() + timeout_for(o.attempts);
    }
  };

  // The retry state machine, driven by the shared Pump: one service
  // quantum per clock cycle, with the overall watchdog expressed as a
  // Deadline instead of a hand-rolled cycle-arithmetic spin.
  std::size_t next_group = 0;
  Pump& pump = copro_->pump();
  try {
    pump.run_until(
        [&] {
          // Submission phase.  Groups that mutate state wait behind the
          // write barrier so no retry can ever observe a newer value.
          while (next_group < groups.size()) {
            const Slot& s = slots[next_group];
            if (s.pred.count == 0 && !s.pred.retriable &&
                !outstanding.empty()) {
              break;  // write barrier
            }
            transmit(next_group, 1);
            ++next_group;
          }
          while (auto r = copro_->poll()) {
            handle_response(*r);
          }
          if (!outstanding.empty() &&
              sim.cycle() >= outstanding.front().deadline) {
            retry_entry(timeouts_);
          }
          return next_group >= groups.size() && outstanding.empty();
        },
        Deadline(sim, budget), "ReliableTransport::call");
  } catch (const SimError&) {
    // Watchdog (or max-attempts give-up) aborted mid-exchange; realign the
    // deframer so the next call starts clean.
    copro_->reset();
    throw;
  }

  // Let trailing writes and stale duplicates drain so the system is idle
  // for the caller (any response arriving now belongs to no live group).
  pump.run_until(
      [&] {
        while (copro_->poll()) {
          stats_.bump(stale_dropped_);
        }
        return copro_->system().idle();
      },
      Deadline(sim, budget), "ReliableTransport::drain");

  std::vector<msg::Response> out;
  for (Slot& s : slots) {
    for (msg::Response r : s.got) {
      r.seq = s.program_seq;  // renumber wire order back to program order
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace fpgafu::host
