#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>

#include "isa/program.hpp"
#include "msg/response.hpp"
#include "sim/trace.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Default clock budget for one blocking host call.  Shared by every
/// blocking façade (Coprocessor::call / wait_response, MultiHost::Session::
/// call, host::Farm submissions) so "how long may a call spin before the
/// watchdog declares the hardware wedged" is one policy, not three magic
/// numbers.
inline constexpr std::uint64_t kDefaultCallBudgetCycles = 10'000'000;

/// A cycle-count watchdog: "this operation may consume at most `budget`
/// cycles, measured from now".  Deadlines are the uniform timeout policy of
/// the host layer — every blocking loop checks one Deadline instead of
/// hand-rolling its own `cycle - start >= max` arithmetic.
///
/// A Deadline survives a simulator reset underneath it: expiry is tracked
/// as a remaining-budget count re-anchored whenever the cycle counter jumps
/// backwards, so a watchdog cannot be disarmed by the rewind.
class Deadline {
 public:
  /// Arm a deadline `budget` cycles from the simulator's current cycle.
  Deadline(const sim::Simulator& sim, std::uint64_t budget)
      : sim_(&sim), budget_(budget), anchor_(sim.cycle()), spent_(0) {}

  /// A deadline that never expires (legacy unbounded spins, e.g. the
  /// submit path, which is bounded by the link draining instead).
  static Deadline unbounded(const sim::Simulator& sim) {
    return Deadline(sim, std::numeric_limits<std::uint64_t>::max());
  }

  bool unlimited() const {
    return budget_ == std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t budget() const { return budget_; }

  /// Cycles consumed since the deadline was armed (reset-proof).
  std::uint64_t spent() const {
    const std::uint64_t now = sim_->cycle();
    if (now >= anchor_) {
      return spent_ + (now - anchor_);
    }
    // The simulator was reset (cycle counter rewound) while this deadline
    // was armed; the budget already consumed stays consumed.
    return spent_;
  }

  std::uint64_t remaining() const {
    const std::uint64_t used = spent();
    return used >= budget_ ? 0 : budget_ - used;
  }

  bool expired() const { return !unlimited() && spent() >= budget_; }

  /// Throw SimError("<what>: watchdog expired after N cycles") when
  /// expired.  `what` names the operation for the diagnostic.
  void enforce(const std::string& what) const;

  /// Fold elapsed cycles into the consumed-budget count and re-anchor at
  /// the current cycle.  The Pump calls this every iteration, so a reset
  /// that rewinds the cycle counter mid-loop cannot disarm the watchdog:
  /// budget consumed before the rewind stays consumed.
  void observe() {
    spent_ = spent();
    anchor_ = sim_->cycle();
  }

 private:
  const sim::Simulator* sim_;
  std::uint64_t budget_;
  std::uint64_t anchor_;  ///< cycle() when (re-)anchored
  std::uint64_t spent_;   ///< cycles consumed before the last re-anchor
};

/// Non-blocking host-side link state machine.
///
/// The Driver owns everything about *talking on the link* and nothing about
/// *advancing simulated time*: it keeps a bounded-link transmit queue and
/// the CRC-checked response deframing window, and exposes `service()` as
/// its single non-blocking quantum — push queued words while the downstream
/// buffer has space, drain arrived upstream words into the window.  Callers
/// that need to block (Coprocessor's conveniences, ReliableTransport,
/// MultiHost, Farm workers) pair a Driver with a Pump; callers integrating
/// into their own event loop call `service()`/`poll()` directly and step
/// the clock themselves.
///
/// Deframing is checksum-verified: a response is only accepted when a full
/// frame passes `Response::frame_ok`; a failing window slides forward one
/// word at a time (counted as `host.crc_resyncs`) until it realigns.  The
/// Driver watches the simulator's reset generation: if the system is reset
/// under it, partially deframed words and unsent queued words are discarded
/// instead of corrupting the next exchange.
class Driver {
 public:
  explicit Driver(top::System& system)
      : system_(&system),
        reset_generation_(system.simulator().reset_generation()),
        crc_resyncs_(stats_.handle("host.crc_resyncs")) {}

  // -- Transmit side ---------------------------------------------------------
  /// Queue one 64-bit stream word (2 link words) for transmission.  Never
  /// blocks; the words leave on subsequent service() quanta as the link
  /// accepts them.
  void enqueue_word(isa::Word word);

  /// Queue a whole program.
  void enqueue(const isa::Program& program);

  /// Link words queued but not yet accepted by the link.
  std::size_t tx_pending() const { return tx_words_.size(); }
  bool tx_drained() const { return tx_words_.empty(); }

  // -- Receive side ----------------------------------------------------------
  /// Non-blocking: return the next response whose complete frame has
  /// arrived and verified (services the link first).
  std::optional<msg::Response> poll();

  // -- State machine ---------------------------------------------------------
  /// One non-blocking quantum: discard stale state if the system was reset,
  /// push queued tx words while the link has space, move every arrived
  /// upstream word into the deframing window.  Idempotent within a cycle.
  void service();

  /// Drop any partially deframed link words and any queued unsent words,
  /// restarting framing from the next word to arrive.  Wired to system
  /// reset and call watchdogs; harmless at any frame boundary.
  void reset();

  /// Total responses received so far.
  std::uint64_t responses_received() const { return responses_received_; }

  /// Host-side framing statistics (host.crc_resyncs).
  const sim::Counters& counters() const { return stats_; }

  top::System& system() { return *system_; }
  const top::System& system() const { return *system_; }

 private:
  /// Discard stale framing state if the system was reset since last use.
  void sync_reset();

  top::System* system_;
  std::deque<msg::LinkWord> tx_words_;  ///< queued, not yet on the link
  std::deque<msg::LinkWord> rx_words_;  ///< deframing window
  std::uint64_t reset_generation_;
  std::uint64_t responses_received_ = 0;
  sim::Counters stats_;
  sim::Counters::Handle crc_resyncs_;
};

/// The one owner of clock advancement in the host layer.
///
/// Every blocking host-side loop is the same shape: service the driver,
/// check a completion predicate, check the watchdog, step the clock.  The
/// Pump is that shape, written once — Coprocessor, ReliableTransport,
/// MultiHost and Farm no longer touch `Simulator::step`/`run_until`
/// directly, so "who advances time" has exactly one answer and exactly one
/// deadline policy.
class Pump {
 public:
  Pump(sim::Simulator& sim, Driver& driver) : sim_(&sim), driver_(&driver) {}

  /// Service the driver and evaluate `done`; while false, step the clock,
  /// enforcing `deadline` before every step (diagnostics name `what`).
  /// Returns the number of cycles consumed.  `done` may throw; the clock
  /// stops where it was.
  std::uint64_t run_until(const std::function<bool()>& done,
                          Deadline deadline, const std::string& what);

  /// Block until the driver's transmit queue has fully drained into the
  /// link (the bounded-buffer backpressure path).
  void flush(Deadline deadline, const std::string& what);

  sim::Simulator& simulator() { return *sim_; }
  Driver& driver() { return *driver_; }

 private:
  sim::Simulator* sim_;
  Driver* driver_;
};

}  // namespace fpgafu::host
