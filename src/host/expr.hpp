#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "rtm/rtm.hpp"

namespace fpgafu::host {

class Coprocessor;

/// A tiny expression compiler for the coprocessor: the usability layer the
/// paper's conclusion gestures at ("our results do not make the use of
/// hardware accelerators as easy as ordinary programming ... the work
/// presented here does make the task significantly easier").
///
/// Build an expression DAG over named inputs, compile it once (common
/// subexpressions are shared, registers allocated by liveness), then run it
/// against the coprocessor with different input bindings:
///
/// ```cpp
///   using host::Expr;
///   Expr x = Expr::input("x"), y = Expr::input("y");
///   Expr e = (x + y) * (x - y) + Expr::constant(7);
///   host::CompiledExpr c = host::ExprCompiler(system.rtm().config()).compile(e);
///   isa::Word v = c.run(copro, {{"x", 20}, {"y", 5}});  // (25*15)+7
/// ```
///
/// Integer operators use the arithmetic/logic/shift/muldiv units; the f*
/// factory functions build IEEE-754 single-precision operations on the
/// float unit.
class Expr {
 public:
  /// Leaves.
  static Expr constant(isa::Word value);
  static Expr input(std::string name);

  /// Integer operations (32/64-bit two's complement, per the RTM width).
  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator*(const Expr& a, const Expr& b);  ///< low product word
  friend Expr operator&(const Expr& a, const Expr& b);
  friend Expr operator|(const Expr& a, const Expr& b);
  friend Expr operator^(const Expr& a, const Expr& b);
  friend Expr operator<<(const Expr& a, const Expr& b);
  friend Expr operator>>(const Expr& a, const Expr& b);  ///< logical
  Expr udiv(const Expr& divisor) const;
  Expr urem(const Expr& divisor) const;

  /// IEEE-754 single-precision operations (operands are raw bit patterns).
  static Expr fadd(const Expr& a, const Expr& b);
  static Expr fsub(const Expr& a, const Expr& b);
  static Expr fmul(const Expr& a, const Expr& b);
  static Expr fdiv(const Expr& a, const Expr& b);

  struct Node;
  const std::shared_ptr<const Node>& node() const { return node_; }

 private:
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Expr binary(isa::FunctionCode function, isa::VarietyCode variety,
                     const Expr& a, const Expr& b);

  std::shared_ptr<const Node> node_;
};

/// A compiled expression: an RTM program template plus its input layout.
class CompiledExpr {
 public:
  /// Emit the full program for one evaluation with the given bindings.
  /// Every named input must be bound.
  isa::Program program(const std::map<std::string, isa::Word>& inputs) const;

  /// Convenience: emit, call, and return the root value.
  isa::Word run(Coprocessor& copro,
                const std::map<std::string, isa::Word>& inputs) const;

  /// Compilation statistics.
  std::size_t operation_count() const { return op_count_; }
  std::size_t registers_used() const { return registers_used_; }
  const std::vector<std::string>& input_names() const { return input_names_; }

 private:
  friend class ExprCompiler;

  /// One scheduled step.  Because registers are reused across the
  /// schedule, steps must be emitted in exactly this order — a PUT into a
  /// recycled register belongs between the operations around it.
  struct Step {
    enum class Kind { kPutConst, kPutInput, kOp };
    Kind kind;
    isa::RegNum dst = 0;
    isa::Word value = 0;          // kPutConst
    std::string input_name;       // kPutInput
    isa::FunctionCode function = 0;  // kOp
    isa::VarietyCode variety = 0;    // kOp
    isa::RegNum src1 = 0;
    isa::RegNum src2 = 0;
  };

  std::vector<Step> steps_;
  std::size_t op_count_ = 0;
  isa::RegNum result_reg_ = 0;
  std::size_t registers_used_ = 0;
  std::vector<std::string> input_names_;
};

/// Compiles expression DAGs: hash-consed common-subexpression elimination,
/// topological scheduling, and liveness-based register reuse.  Throws
/// SimError if the expression needs more live registers than the RTM
/// configuration provides (there is no spill path — the register file is
/// the only on-FPGA storage the framework gives programs).
class ExprCompiler {
 public:
  explicit ExprCompiler(const rtm::RtmConfig& config) : config_(config) {}

  CompiledExpr compile(const Expr& root) const;

 private:
  rtm::RtmConfig config_;
};

}  // namespace fpgafu::host
