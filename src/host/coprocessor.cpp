#include "host/coprocessor.hpp"

#include "isa/rtm_ops.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

void Coprocessor::submit_word(isa::Word word) {
  driver_.enqueue_word(word);
  // The submit path has no cycle budget of its own (it is bounded by the
  // link draining, exactly as the historical per-word spin was); a wedged
  // link below a blocking call is caught by that call's Deadline instead.
  pump_.flush(Deadline::unbounded(system().simulator()),
              "Coprocessor::submit_word");
}

void Coprocessor::submit(const isa::Program& program) {
  driver_.enqueue(program);
  pump_.flush(Deadline::unbounded(system().simulator()),
              "Coprocessor::submit");
}

std::vector<msg::Response> Coprocessor::call(const isa::Program& program,
                                             std::uint64_t max_cycles) {
  submit(program);
  std::vector<msg::Response> responses;
  try {
    pump_.run_until(
        [&] {
          while (auto r = poll()) {
            responses.push_back(*r);
          }
          // Done when the expected responses arrived and nothing is still in
          // flight (extra error responses drain before idle turns true).
          return responses.size() >= program.expected_responses() &&
                 system().idle();
        },
        Deadline(system().simulator(), max_cycles), "Coprocessor::call");
  } catch (const SimError&) {
    // Watchdog fired with an unknown amount of a frame consumed; drop the
    // partial words so the next exchange starts aligned.
    reset();
    throw;
  }
  return responses;
}

msg::Response Coprocessor::wait_response(std::uint64_t max_cycles) {
  std::optional<msg::Response> got;
  try {
    pump_.run_until(
        [&] {
          if (!got.has_value()) {
            got = poll();
          }
          return got.has_value();
        },
        Deadline(system().simulator(), max_cycles),
        "Coprocessor::wait_response");
  } catch (const SimError&) {
    reset();
    throw;
  }
  return *got;
}

void Coprocessor::write_reg(isa::RegNum reg, isa::Word value) {
  isa::Program p;
  p.emit_put(reg, value);
  submit(p);
}

isa::Word Coprocessor::read_reg(isa::RegNum reg) {
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = reg;
  submit_word(get.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kData,
        "read_reg received unexpected response: " + msg::to_string(r));
  return r.payload;
}

isa::FlagWord Coprocessor::read_flags(isa::RegNum flag_reg) {
  isa::Instruction getf;
  getf.function = isa::fc::kRtm;
  getf.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGetFlags);
  getf.src_flag = flag_reg;
  submit_word(getf.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kFlags,
        "read_flags received unexpected response: " + msg::to_string(r));
  return r.code;
}

void Coprocessor::write_regs(isa::RegNum base,
                             const std::vector<isa::Word>& values) {
  isa::Program p;
  p.emit_put_vec(base, values);
  submit(p);
}

std::vector<isa::Word> Coprocessor::read_regs(isa::RegNum base,
                                              std::uint8_t count) {
  isa::Program p;
  p.emit_get_vec(base, count);
  const auto responses = call(p);
  std::vector<isa::Word> out;
  out.reserve(count);
  for (const msg::Response& r : responses) {
    check(r.type == msg::Response::Type::kData,
          "read_regs received unexpected response: " + msg::to_string(r));
    out.push_back(r.payload);
  }
  return out;
}

void Coprocessor::sync() {
  isa::Instruction s;
  s.function = isa::fc::kRtm;
  s.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  submit_word(s.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kSyncDone,
        "sync received unexpected response: " + msg::to_string(r));
}

}  // namespace fpgafu::host
