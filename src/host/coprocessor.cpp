#include "host/coprocessor.hpp"

#include <array>

#include "isa/rtm_ops.hpp"
#include "util/error.hpp"

namespace fpgafu::host {

void Coprocessor::sync_reset() {
  const std::uint64_t gen = system_->simulator().reset_generation();
  if (gen != reset_generation_) {
    reset_generation_ = gen;
    rx_words_.clear();
  }
}

void Coprocessor::pump_rx() {
  while (auto w = system_->link().host_receive()) {
    rx_words_.push_back(*w);
  }
}

void Coprocessor::send_link_word(msg::LinkWord word) {
  sync_reset();
  while (!system_->link().host_send(word)) {
    // Bounded downstream buffer is full: let the FPGA drain a word.  Keep
    // pulling arrived responses off the link meanwhile so a bounded
    // upstream buffer cannot deadlock the exchange.
    system_->simulator().step();
    pump_rx();
  }
}

void Coprocessor::submit_word(isa::Word word) {
  send_link_word(static_cast<msg::LinkWord>(word >> 32));
  send_link_word(static_cast<msg::LinkWord>(word & 0xffffffffu));
}

void Coprocessor::submit(const isa::Program& program) {
  for (const isa::Word w : program.words()) {
    submit_word(w);
  }
}

std::optional<msg::Response> Coprocessor::poll() {
  sync_reset();
  pump_rx();
  while (rx_words_.size() >= msg::kLinkWordsPerResponse) {
    std::array<msg::LinkWord, msg::kLinkWordsPerResponse> frame;
    for (unsigned i = 0; i < msg::kLinkWordsPerResponse; ++i) {
      frame[i] = rx_words_[i];
    }
    if (msg::Response::frame_ok(frame)) {
      rx_words_.erase(rx_words_.begin(),
                      rx_words_.begin() + msg::kLinkWordsPerResponse);
      ++responses_received_;
      return msg::Response::from_link_words(frame);
    }
    // Misaligned or corrupted: slide one word and retry.  The bad frame is
    // lost (the transport layer's job to recover); framing realigns.
    rx_words_.pop_front();
    stats_.bump(crc_resyncs_);
  }
  return std::nullopt;
}

void Coprocessor::reset() { rx_words_.clear(); }

std::vector<msg::Response> Coprocessor::call(const isa::Program& program,
                                             std::uint64_t max_cycles) {
  submit(program);
  std::vector<msg::Response> responses;
  sim::Simulator& sim = system_->simulator();
  try {
    sim.run_until(
        [&] {
          while (auto r = poll()) {
            responses.push_back(*r);
          }
          // Done when the expected responses arrived and nothing is still in
          // flight (extra error responses drain before idle turns true).
          return responses.size() >= program.expected_responses() &&
                 system_->idle();
        },
        max_cycles);
  } catch (const SimError&) {
    // Watchdog fired with an unknown amount of a frame consumed; drop the
    // partial words so the next exchange starts aligned.
    reset();
    throw;
  }
  return responses;
}

msg::Response Coprocessor::wait_response(std::uint64_t max_cycles) {
  std::optional<msg::Response> got;
  try {
    system_->simulator().run_until(
        [&] {
          if (!got.has_value()) {
            got = poll();
          }
          return got.has_value();
        },
        max_cycles);
  } catch (const SimError&) {
    reset();
    throw;
  }
  return *got;
}

void Coprocessor::write_reg(isa::RegNum reg, isa::Word value) {
  isa::Program p;
  p.emit_put(reg, value);
  submit(p);
}

isa::Word Coprocessor::read_reg(isa::RegNum reg) {
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = reg;
  submit_word(get.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kData,
        "read_reg received unexpected response: " + msg::to_string(r));
  return r.payload;
}

isa::FlagWord Coprocessor::read_flags(isa::RegNum flag_reg) {
  isa::Instruction getf;
  getf.function = isa::fc::kRtm;
  getf.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGetFlags);
  getf.src_flag = flag_reg;
  submit_word(getf.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kFlags,
        "read_flags received unexpected response: " + msg::to_string(r));
  return r.code;
}

void Coprocessor::write_regs(isa::RegNum base,
                             const std::vector<isa::Word>& values) {
  isa::Program p;
  p.emit_put_vec(base, values);
  submit(p);
}

std::vector<isa::Word> Coprocessor::read_regs(isa::RegNum base,
                                              std::uint8_t count) {
  isa::Program p;
  p.emit_get_vec(base, count);
  const auto responses = call(p);
  std::vector<isa::Word> out;
  out.reserve(count);
  for (const msg::Response& r : responses) {
    check(r.type == msg::Response::Type::kData,
          "read_regs received unexpected response: " + msg::to_string(r));
    out.push_back(r.payload);
  }
  return out;
}

void Coprocessor::sync() {
  isa::Instruction s;
  s.function = isa::fc::kRtm;
  s.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  submit_word(s.encode());
  const msg::Response r = wait_response();
  check(r.type == msg::Response::Type::kSyncDone,
        "sync received unexpected response: " + msg::to_string(r));
}

}  // namespace fpgafu::host
