#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/framing.hpp"
#include "sim/trace.hpp"

namespace fpgafu::host {

/// Tuning knobs for ReliableTransport.
struct TransportConfig {
  /// Cycles the oldest outstanding instruction may go unanswered before its
  /// group is re-submitted (scaled by backoff on every further attempt).
  std::uint64_t response_timeout = 2000;
  /// Submission attempts per group before giving up.
  unsigned max_attempts = 10;
  /// Timeout multiplier applied per retry attempt.
  std::uint64_t backoff_multiplier = 2;
  /// Overall watchdog for one call() (2x the default call budget: the
  /// transport is expected to out-wait retries a plain call would not).
  std::uint64_t max_cycles = 2 * kDefaultCallBudgetCycles;
};

/// Reliable request/response layer over an unreliable upstream link.
///
/// Wraps a Coprocessor and recovers from lost, corrupted and duplicated
/// *response* frames (the CRC-checked deframer in Coprocessor::poll turns
/// corruption into loss; this layer turns loss into retries).  Loss on the
/// downstream path is out of scope: instruction words carry no check codes,
/// so a dropped downstream word shifts the 64-bit stream pairing for the
/// rest of the run and no host-side protocol can detect it (docs/PROTOCOL.md
/// discusses the limitation).
///
/// Mechanics (see docs/PROTOCOL.md for the full state machine):
///  * the program is split into instruction groups; each group's response
///    count is predicted host-side (host::predict), and the wire sequence
///    number the decoder will assign is mirrored in next_wire_seq_;
///  * response-producing groups enter an outstanding FIFO; because the RTM
///    answers in issue order, a response matching a *later* entry proves
///    every earlier entry's remaining responses were lost — they are
///    re-submitted under fresh sequence numbers (gap detection);
///  * within a GETV burst the `burst` index spots duplicated sub-responses
///    (dropped) and intra-burst gaps (whole group re-submitted);
///  * the oldest entry is also guarded by a timeout with exponential
///    backoff, catching the tail case where nothing arrives at all;
///  * groups that produce no responses (register writes) are submitted only
///    once nothing is outstanding, so every prior read was confirmed before
///    state mutates and re-submitting a read can never observe a newer
///    write (write barrier);
///  * results are re-numbered to *program-order* sequence numbers before
///    being returned, so the output is bit-comparable with
///    host::ReferenceModel::run on the same program.
///
/// The transport mirrors the decoder's sequence counter, so it must be the
/// only submitter on its system (construct it before any traffic and route
/// everything through it).  A system reset re-synchronises both counters.
class ReliableTransport {
 public:
  explicit ReliableTransport(Coprocessor& copro, TransportConfig config = {});

  /// Submit `program` and block until every expected response has been
  /// received (retrying as needed).  Returns responses renumbered to
  /// program order.  Throws SimError when a retriable group exhausts
  /// max_attempts or the overall watchdog fires.  `budget_cycles`, when
  /// given, overrides config().max_cycles for this one call (the Farm uses
  /// it for per-job deadlines).
  std::vector<msg::Response> call(
      const isa::Program& program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// transport.{retries,timeouts,gap_retries,dup_dropped,stale_dropped,
  /// failures} statistics.
  const sim::Counters& counters() const { return stats_; }

  const TransportConfig& config() const { return config_; }
  Coprocessor& coprocessor() { return *copro_; }

 private:
  /// Re-sync the mirrored sequence counter after a system reset.
  void sync_generation();

  Coprocessor* copro_;
  TransportConfig config_;
  std::uint16_t next_wire_seq_ = 0;  ///< mirrors the decoder's seq counter
  std::uint64_t reset_generation_;
  sim::Counters stats_;
  sim::Counters::Handle retries_;
  sim::Counters::Handle timeouts_;
  sim::Counters::Handle gap_retries_;
  sim::Counters::Handle dup_dropped_;
  sim::Counters::Handle stale_dropped_;
  sim::Counters::Handle failures_;
};

}  // namespace fpgafu::host
