#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/framing.hpp"
#include "sim/trace.hpp"

namespace fpgafu::host {

/// Tuning knobs for ReliableTransport.
struct TransportConfig {
  /// Cycles the oldest outstanding instruction may go unanswered before its
  /// group is re-submitted (scaled by backoff on every further attempt).
  std::uint64_t response_timeout = 2000;
  /// Submission attempts per group before giving up.
  unsigned max_attempts = 10;
  /// Timeout multiplier applied per retry attempt.
  std::uint64_t backoff_multiplier = 2;
  /// Cap on the accumulated backoff: an armed retry timeout never exceeds
  /// `response_timeout * max_backoff_factor`, whatever the multiplier, so a
  /// long retry chain keeps probing instead of out-waiting the watchdog.
  /// (The cap used to be "seven doublings", which only matched the
  /// documented 64x when backoff_multiplier == 2.)
  std::uint64_t max_backoff_factor = 64;
  /// Overall watchdog for one call() (2x the default call budget: the
  /// transport is expected to out-wait retries a plain call would not).
  std::uint64_t max_cycles = 2 * kDefaultCallBudgetCycles;
  /// Submission frames the pipelined interface keeps in flight at once.  A
  /// frame is one program (submit) or several coalesced member programs
  /// (submit_coalesced) — either way it occupies one window slot.  1 is
  /// call-and-wait; larger windows overlap one frame's tail with the next
  /// frame's issue (the RTM pipelines instructions and answers in order,
  /// so the wire protocol needs no changes).  submit() refuses to exceed
  /// the window; host::Farm sizes its worker loop from it.
  std::size_t window = 1;

  /// Throw SimError on nonsensical settings (zero attempts/multiplier/
  /// window...).  ReliableTransport and host::Farm run this on
  /// construction so misconfiguration surfaces on the caller's thread.
  void validate() const;
};

/// The capped exponential backoff schedule: the timeout armed for a group's
/// `attempts`-th consecutive unanswered attempt.  Exposed as a free
/// function so tests can pin the formula directly:
///   min(response_timeout * backoff_multiplier^(attempts-1),
///       response_timeout * max_backoff_factor)
std::uint64_t backoff_timeout(const TransportConfig& config,
                              unsigned attempts);

/// Reliable request/response layer over an unreliable upstream link.
///
/// Wraps a Coprocessor and recovers from lost, corrupted and duplicated
/// *response* frames (the CRC-checked deframer in Coprocessor::poll turns
/// corruption into loss; this layer turns loss into retries).  Loss on the
/// downstream path is out of scope: instruction words carry no check codes,
/// so a dropped downstream word shifts the 64-bit stream pairing for the
/// rest of the run and no host-side protocol can detect it (docs/PROTOCOL.md
/// discusses the limitation).
///
/// Mechanics (see docs/PROTOCOL.md for the full state machine):
///  * the program is split into instruction groups; each group's response
///    count is predicted host-side (host::predict), and the wire sequence
///    number the decoder will assign is mirrored in next_wire_seq_;
///  * response-producing groups enter an outstanding FIFO; because the RTM
///    answers in issue order, a response matching a *later* entry proves
///    every earlier entry's remaining responses were lost — they are
///    re-submitted under fresh sequence numbers (gap detection);
///  * within a GETV burst the `burst` index spots duplicated sub-responses
///    (dropped) and intra-burst gaps (whole group re-submitted);
///  * the oldest entry is also guarded by a timeout with exponential
///    backoff, capped at `max_backoff_factor` and clamped to the program's
///    remaining watchdog budget, catching the tail case where nothing
///    arrives at all;
///  * groups that produce no responses (register writes) are submitted only
///    once nothing is outstanding, so every prior read was confirmed before
///    state mutates and re-submitting a read can never observe a newer
///    write (write barrier — it spans *programs*: a later program's groups
///    never overtake an earlier program's unsubmitted write);
///  * results are re-numbered to *program-order* sequence numbers before
///    being returned, so the output is bit-comparable with
///    host::ReferenceModel::run on the same program.
///
/// Two interfaces share that state machine:
///  * `call()` — submit one program and block until it completes
///    (call-and-wait, the historical interface);
///  * the *pipelined window* — `submit()` up to `config().window` programs,
///    drive `service()` from a pump loop, and consume results via
///    `poll_completed()` (whole programs) and `poll_stream()` (per-response
///    streaming in program order, for long GETV bursts).  Programs issue
///    strictly in submission order; completions surface as each program's
///    last response lands, so one program's round-trip tail overlaps the
///    next program's issue.  A retry give-up or a per-program watchdog
///    expiry aborts the *whole* window (the recovery reset destroys the
///    machine state every in-flight program depends on): service() throws
///    and the caller is expected to abort_in_flight() and re-submit or
///    fail upwards (host::Farm fails the window as shard casualties).
///
/// On top of the window, submit_coalesced() packs several small programs
/// into ONE frame — one window slot, one contiguous transmission, one
/// watchdog — demultiplexed into per-member completions, with the write
/// barrier relaxed to per-register conflict tracking inside the frame
/// (docs/PROTOCOL.md, "Coalesced frames").
///
/// The transport mirrors the decoder's sequence counter, so it must be the
/// only submitter on its system (construct it before any traffic and route
/// everything through it).  A system reset re-synchronises both counters.
class ReliableTransport {
 public:
  /// Ticket for one pipelined program; unique per transport.
  using ProgramId = std::uint64_t;

  /// A completed pipelined program: every response, renumbered to program
  /// order (bit-comparable with host::ReferenceModel::run).
  struct Completion {
    ProgramId id = 0;
    std::vector<msg::Response> responses;
  };

  /// One streamed response of a program submitted with stream = true,
  /// delivered in program order as its group completes — a long GETV burst
  /// surfaces incrementally instead of only at program completion.
  struct StreamEvent {
    ProgramId id = 0;
    msg::Response response;
  };

  explicit ReliableTransport(Coprocessor& copro, TransportConfig config = {});

  /// Submit `program` and block until every expected response has been
  /// received (retrying as needed).  Returns responses renumbered to
  /// program order.  Throws SimError when a retriable group exhausts
  /// max_attempts or the overall watchdog fires.  `budget_cycles`, when
  /// given, overrides config().max_cycles for this one call (the Farm uses
  /// it for per-job deadlines).  Requires an empty window (call-and-wait
  /// and pipelined submission do not mix within one exchange).
  std::vector<msg::Response> call(
      const isa::Program& program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  // -- Pipelined window ------------------------------------------------------
  /// Enqueue a program into the in-flight window (throws SimError when the
  /// window is full — poll capacity with window_full()).  Its instructions
  /// issue, in submission order, as service() runs; its per-program
  /// watchdog (`budget_cycles`, default config().max_cycles) arms when its
  /// first group reaches the wire.  With stream = true every response is
  /// additionally delivered through poll_stream() as soon as its group
  /// completes.
  ProgramId submit(const isa::Program& program,
                   std::optional<std::uint64_t> budget_cycles = std::nullopt,
                   bool stream = false);

  /// One member program of a coalesced frame (see submit_coalesced).
  struct CoalescedItem {
    const isa::Program* program = nullptr;
    /// Per-member watchdog wish; the frame's single watchdog arms at the
    /// maximum over its members (one frame, one deadline).
    std::optional<std::uint64_t> budget_cycles;
    bool stream = false;
  };

  /// Enqueue several small programs as ONE submission frame occupying one
  /// window slot: their instruction groups are concatenated into a single
  /// sequence-numbered transmission with one watchdog and one prediction
  /// table carrying per-member sub-ranges (host::split_frame), and the
  /// return path demultiplexes responses back into one Completion (and
  /// stream events) per member, in member order.  Returns one ProgramId
  /// per member.
  ///
  /// Retry/poison semantics are frame-granular: individual read groups
  /// still retry under backoff exactly as in a plain flight, members
  /// complete individually as their sub-range finishes, but a give-up or
  /// the frame watchdog poisons the whole window — every member of every
  /// in-flight frame fails together (same contract as the windowed path,
  /// at frame scope).
  ///
  /// Inside a coalesced frame the cross-program write barrier is re-derived
  /// per register (host::GroupEffects): a member's write group may overtake
  /// another member's outstanding read iff their footprints are disjoint,
  /// so register-disjoint tiny programs issue back-to-back instead of
  /// serialising on one round trip each.  Groups of *plain* flights keep
  /// the conservative whole-window barrier, which keeps the uncoalesced
  /// path bit-identical to the pre-coalescing transport.
  std::vector<ProgramId> submit_coalesced(
      const std::vector<CoalescedItem>& items);

  /// One service quantum of the retry state machine: issue groups (window
  /// order, write barrier permitting), consume arrived responses, run gap/
  /// timeout retries, surface completions.  Never advances the clock —
  /// drive it from a Pump loop.  Throws SimError on a retry give-up or a
  /// per-program watchdog expiry; the window is then poisoned and must be
  /// cleared with abort_in_flight().
  void service();

  /// Submission frames in the window (a coalesced frame counts once,
  /// however many member programs it carries).
  std::size_t in_flight() const { return window_.size(); }
  bool window_full() const { return window_.size() >= config_.window; }

  /// Next completed program, if any (completion order).
  std::optional<Completion> poll_completed();

  /// Next streamed response, if any (program order within each program).
  std::optional<StreamEvent> poll_stream();

  /// Drop every in-flight program, pending completion and stream event,
  /// and realign the driver.  The recovery path after service() threw —
  /// in-flight results are unrecoverable (the reset destroyed the machine
  /// state behind them); the caller owns failing them upwards.
  void abort_in_flight();

  /// transport.{retries,timeouts,gap_retries,dup_dropped,stale_dropped,
  /// failures} statistics.
  const sim::Counters& counters() const { return stats_; }

  const TransportConfig& config() const { return config_; }
  Coprocessor& coprocessor() { return *copro_; }

 private:
  /// Per-group progress.  program_seq is the sequence number the reference
  /// model assigns — the group index in *member* program order (mod 2^16);
  /// for a plain one-program flight that is just the group index.
  struct GroupSlot {
    ResponsePrediction pred;
    std::uint16_t program_seq = 0;
    std::vector<msg::Response> got;
    bool done = false;
    /// Register footprint, exact only for coalesced frames (plain flights
    /// never consult it; the default conservatively conflicts with
    /// everything, which is what a coalesced write crossing a plain
    /// flight's outstanding reads must assume).
    GroupEffects effects;
  };

  /// One member program of a frame: its contiguous slot sub-range and its
  /// demultiplexed output.  A plain submit() makes a one-member frame.
  struct Member {
    ProgramId id = 0;
    std::size_t first_slot = 0;
    std::size_t slot_count = 0;
    std::vector<msg::Response> out;  ///< renumbered responses, program order
    bool stream = false;
    bool emitted = false;  ///< completion surfaced to poll_completed()
  };

  /// One submission frame in the window: the concatenated groups of its
  /// members, one watchdog, one slot in the window.
  struct Flight {
    ProgramId id = 0;  ///< frame id (the first member's ProgramId)
    std::vector<InstructionGroup> groups;
    std::vector<GroupSlot> slots;
    std::vector<Member> members;
    std::size_t next_group = 0;    ///< next group to put on the wire
    std::size_t emit_cursor = 0;   ///< slots already emitted in frame order
    std::uint64_t budget = 0;
    std::optional<Deadline> deadline;  ///< armed at first transmission
    /// True for submit_coalesced frames: the write barrier relaxes to
    /// per-register conflict tracking for this frame's write groups.
    bool coalesced = false;
  };

  /// Response-producing groups in flight, oldest first (wire order).
  struct Outstanding {
    ProgramId program = 0;
    std::size_t slot = 0;
    std::uint16_t wire_seq = 0;
    unsigned attempts = 0;
    std::uint64_t deadline = 0;  ///< armed only while this entry is the front
  };

  Flight* flight(ProgramId id);
  /// Re-sync the mirrored sequence counter after a system reset.
  void sync_generation();
  /// Common tail of submit()/submit_coalesced().
  void push_frame(Flight&& f);
  /// Would issuing `writer` now let a retry of any outstanding read observe
  /// a newer register value?  (The relaxed, per-register barrier used for
  /// coalesced frames.)
  bool write_conflicts(const GroupEffects& writer) const;
  /// Send a group's words and (when it responds) enqueue it for tracking.
  void transmit(Flight& f, std::size_t slot_index, unsigned attempts);
  /// (Re-)arm the front outstanding entry's retry deadline, capped by the
  /// backoff schedule and clamped to its program's remaining budget.
  void arm_front();
  /// Give up on (or re-submit) the front outstanding entry.
  void retry_front(sim::Counters::Handle reason);
  void handle_response(const msg::Response& r);
  /// The strict-order submission phase: put groups on the wire in window
  /// order, write barrier permitting.  Maintains unissued_.
  void issue_pending();
  /// Check every armed per-program watchdog (throws on expiry) and cache
  /// the earliest cycle one could next fire in watchdog_due_.
  void check_watchdogs();
  /// Advance a flight's program-order emit cursor over completed slots,
  /// then surface it as a Completion if it is fully issued and emitted.
  void emit_ready();

  Coprocessor* copro_;
  TransportConfig config_;
  std::uint16_t next_wire_seq_ = 0;  ///< mirrors the decoder's seq counter
  std::uint64_t reset_generation_;
  ProgramId next_program_id_ = 1;
  std::deque<Flight> window_;
  std::deque<Outstanding> outstanding_;
  std::deque<Completion> completed_;
  std::deque<StreamEvent> stream_events_;
  // service() runs once per simulated cycle, so its quiet-cycle cost must
  // stay O(1) in the window depth (a deep window would otherwise pay for
  // its own bookkeeping faster than the pipelining saves wire time).
  // These caches skip the O(window) phases until an event re-arms them.
  bool unissued_ = false;       ///< some flight has groups not yet issued
  bool emit_pending_ = false;   ///< a slot completed since the last emit scan
  std::uint64_t watchdog_due_ = 0;  ///< earliest watchdog expiry (0 = dirty)
  sim::Counters stats_;
  sim::Counters::Handle retries_;
  sim::Counters::Handle timeouts_;
  sim::Counters::Handle gap_retries_;
  sim::Counters::Handle dup_dropped_;
  sim::Counters::Handle stale_dropped_;
  sim::Counters::Handle failures_;
};

}  // namespace fpgafu::host
