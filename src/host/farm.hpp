#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "host/reliable_transport.hpp"
#include "isa/program.hpp"
#include "msg/response.hpp"
#include "sim/trace.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Typed failure for farm jobs: carries which shard failed and why, so a
/// caller can distinguish "my program wedged shard 3" from "the farm was
/// shut down under me" without string-matching.
class FarmError : public SimError {
 public:
  enum class Kind {
    kShardFault,  ///< the shard's watchdog tripped (or retries exhausted);
                  ///< the shard was reset and this job's result is lost
    kShutdown,    ///< submitted against a farm that is shutting down
  };

  FarmError(Kind kind, std::size_t shard, const std::string& what)
      : SimError(what), kind_(kind), shard_(shard) {}

  Kind kind() const { return kind_; }
  std::size_t shard() const { return shard_; }

 private:
  Kind kind_;
  std::size_t shard_;
};

/// Configuration of a coprocessor farm.
struct FarmConfig {
  /// Worker shards.  Each shard is an independent top::System +
  /// ReliableTransport owned by one worker thread.  0 means *inline*: no
  /// threads, one shard owned by the calling thread, submit() executes
  /// synchronously — the degenerate farm, bit-identical to a plain
  /// Coprocessor/ReliableTransport call (tests pin this).
  std::size_t shards = 1;
  /// Per-shard system configuration (every shard is identical).
  top::SystemConfig system;
  /// Per-shard transport tuning.
  TransportConfig transport;
  /// Bounded submission queue depth per shard.  When a shard's queue is
  /// full, submit() blocks the caller — backpressure instead of unbounded
  /// memory growth.
  std::size_t queue_capacity = 64;
  /// Default per-job clock budget (overridable per submit).
  std::uint64_t job_budget_cycles = kDefaultCallBudgetCycles;
};

/// A multi-System coprocessor farm: N independent shards, each one whole
/// `top::System` + `host::ReliableTransport` driven by its own worker
/// thread (the paper's "one or more CPUs communicate via the interface
/// with a set of functional units", scaled out to a pool of functional-unit
/// fabrics the way ThreadPoolComposer-style toolchains expose FPGAs to a
/// software thread pool).
///
/// **Ownership rule.**  The sim::Simulator is thread-affine (see its class
/// comment): each shard's System is constructed *on* its worker thread and
/// never touched by any other thread.  The only cross-thread traffic is
/// the job queue (mutex-protected) and counter snapshots — never live
/// simulator state.
///
/// **Affinity.**  Registers live per shard, so work that depends on
/// register state across jobs must stay on one shard: create_session()
/// returns an id with a sticky session→shard mapping, and
/// submit(session, ...) always lands on that shard.  Session-less
/// submit() round-robins across shards and must treat each job as
/// self-contained.
///
/// **Backpressure.**  Each shard's queue is bounded
/// (FarmConfig::queue_capacity); submit() blocks while the target queue is
/// full.
///
/// **Failure semantics.**  A job that trips the shard's watchdog (or
/// exhausts transport retries) fails its own future *and* every job queued
/// on that shard at that moment with FarmError{kShardFault} — those jobs
/// were submitted against register state the recovery reset has destroyed.
/// The shard resets its System and keeps serving later submissions; other
/// shards never notice (fault isolation).
///
/// **Shutdown.**  Destruction (or shutdown()) stops intake, lets every
/// worker drain the jobs already queued, then joins — queued futures
/// complete normally; only *new* submissions are refused with
/// FarmError{kShutdown}.
class Farm {
 public:
  using SessionId = std::uint64_t;

  explicit Farm(FarmConfig config);
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Submit a self-contained program; round-robins across shards.
  std::future<std::vector<msg::Response>> submit(
      isa::Program program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// Submit on `session`'s shard (sticky affinity: register state persists
  /// across this session's jobs, shard faults permitting).
  std::future<std::vector<msg::Response>> submit(
      SessionId session, isa::Program program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// New session id with a sticky shard assignment (round-robin over
  /// shards at creation).
  SessionId create_session();

  /// The shard a session's jobs run on.
  std::size_t shard_of(SessionId session) const;

  /// Shards serving jobs (1 for an inline farm — FarmConfig::shards == 0).
  std::size_t shard_count() const;
  /// True when the farm runs inline on the caller's thread (shards == 0).
  bool inline_mode() const { return config_.shards == 0; }

  /// Aggregated fleet statistics: every shard's transport.*, host.* and
  /// farm.* counters merged (sim::Counters::merge) into one snapshot.
  /// farm.jobs_completed / farm.jobs_failed / farm.shard_resets count the
  /// farm's own lifecycle events.
  sim::Counters counters() const;

  /// Stop intake, drain queued jobs, join workers.  Idempotent; called by
  /// the destructor.
  void shutdown();

  const FarmConfig& config() const { return config_; }

 private:
  struct Shard;

  std::future<std::vector<msg::Response>> enqueue(std::size_t shard_index,
                                                  isa::Program program,
                                                  std::uint64_t budget);

  FarmConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_session_{0};
  std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_m_;
  bool joined_ = false;  ///< under shutdown_m_
};

}  // namespace fpgafu::host
