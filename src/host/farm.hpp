#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "host/algod.hpp"
#include "host/reliable_transport.hpp"
#include "isa/program.hpp"
#include "msg/response.hpp"
#include "sim/trace.hpp"
#include "top/system.hpp"

namespace fpgafu::host {

/// Nearest-rank percentiles over simulated-cycle job latencies (see
/// Farm::job_latency_samples).
struct LatencyPercentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::size_t samples = 0;
};

/// Compute nearest-rank p50/p95/p99 over `samples` (order irrelevant;
/// zeros for an empty set).
LatencyPercentiles latency_percentiles(std::vector<std::uint64_t> samples);

/// Typed failure for farm jobs: carries which shard failed and why, so a
/// caller can distinguish "my program wedged shard 3" from "the farm was
/// shut down under me" without string-matching.
class FarmError : public SimError {
 public:
  enum class Kind {
    kShardFault,  ///< the shard's watchdog tripped (or retries exhausted);
                  ///< the shard was reset and this job's result is lost
    kShutdown,    ///< submitted against a farm that is shutting down
    kOverload,    ///< load shed: the shard's queue is full (Admission::kShed)
                  ///< or the session is at its in-flight bound
    kUnitUnavailable,  ///< a required functional unit could not be made (or
                       ///< did not stay) resident — an unregistered or
                       ///< oversized required set, or an eviction racing
                       ///< in-flight work.  Retryable: the shard is healthy
                       ///< and its register state is intact
  };

  FarmError(Kind kind, std::size_t shard, const std::string& what)
      : SimError(what), kind_(kind), shard_(shard) {}

  Kind kind() const { return kind_; }
  std::size_t shard() const { return shard_; }

 private:
  Kind kind_;
  std::size_t shard_;
};

/// Configuration of a coprocessor farm.
struct FarmConfig {
  /// What submit() does when a shard's bounded queue is full.
  enum class Admission {
    kBlock,  ///< block the producer until space frees (backpressure)
    kShed,   ///< fail fast with FarmError{kOverload} (load shedding)
  };

  /// Worker shards.  Each shard is an independent top::System +
  /// ReliableTransport owned by one worker thread.  0 means *inline*: no
  /// threads, one shard owned by the calling thread, submit() executes
  /// synchronously — the degenerate farm, bit-identical to a plain
  /// Coprocessor/ReliableTransport call (tests pin this).
  std::size_t shards = 1;
  /// Per-shard system configuration (every shard is identical).
  top::SystemConfig system;
  /// Per-shard transport tuning.  `transport.window` also sizes the worker
  /// loop: with window > 1 each shard keeps that many programs in flight
  /// at once (pipelined issue, in-order responses) instead of one
  /// call-and-wait round trip per job.
  TransportConfig transport;
  /// Bounded submission queue depth per shard (jobs waiting for a window
  /// slot; in-flight jobs are not counted against it).
  std::size_t queue_capacity = 64;
  /// Full-queue policy: block the producer (default, backpressure) or
  /// reject with FarmError{kOverload} (load shedding for latency-sensitive
  /// front ends that would rather drop than queue).
  Admission admission = Admission::kBlock;
  /// Per-session cap on unresolved jobs (queued + in flight + resolving).
  /// A session at its bound is refused with FarmError{kOverload} — under
  /// either admission policy — so one tenant cannot monopolise a shard's
  /// queue.  0 = unbounded.  Session-less submissions are never counted.
  std::size_t max_inflight_per_session = 0;
  /// Default per-job clock budget (overridable per submit).
  std::uint64_t job_budget_cycles = kDefaultCallBudgetCycles;
  /// Jobs a worker resolves between counter-snapshot publications.  The
  /// fleet view (counters()) lags by at most this many jobs while a shard
  /// is busy; it is exact whenever a shard goes idle and after shutdown().
  /// 1 restores publish-after-every-job.
  std::size_t stats_publish_interval = 16;

  // -- Program coalescing ----------------------------------------------------
  /// Member programs a worker packs into one submission frame
  /// (ReliableTransport::submit_coalesced): a frame occupies one window
  /// slot, pays one watchdog and one transmission, and its
  /// register-disjoint members skip the per-program write-barrier round
  /// trip.  1 (the default) disables coalescing — the worker issues one
  /// program per frame through exactly the pre-coalescing path.
  std::size_t coalesce_max_programs = 1;
  /// Cap on one frame's total instruction-stream words; a frame closes
  /// early when the next member would push it past the cap.  0 = no cap.
  std::size_t coalesce_max_words = 256;
  /// Simulated cycles a worker holds a *partial* frame open waiting for
  /// more arrivals before flushing it (latency bound on batching).  0 =
  /// flush immediately with whatever was gathered.
  std::uint64_t coalesce_flush_cycles = 0;

  // -- Algorithm-on-demand ---------------------------------------------------
  /// Loadable algorithm images, registered on every shard's FuManager (each
  /// shard constructs its own units via the image factories; the factories
  /// are only ever invoked on the owning worker thread).  Empty = no
  /// manager: the farm serves exactly the units SystemConfig attaches, as
  /// before.
  std::vector<AlgorithmImage> fu_images;
  /// Per-shard physical FU slot budget (codes resident at once).  The
  /// multi-tenant regime of interest is fu_slots < the union of the
  /// tenants' demands, which forces replacement traffic.
  std::size_t fu_slots = 4;
  /// Per-shard replacement-policy factory (each shard needs its own policy
  /// instance — policies are stateful and shards are share-nothing).  Null
  /// = LRU.
  std::function<std::shared_ptr<ReplacementPolicy>()> fu_policy;
};

/// A multi-System coprocessor farm: N independent shards, each one whole
/// `top::System` + `host::ReliableTransport` driven by its own worker
/// thread (the paper's "one or more CPUs communicate via the interface
/// with a set of functional units", scaled out to a pool of functional-unit
/// fabrics the way ThreadPoolComposer-style toolchains expose FPGAs to a
/// software thread pool).
///
/// **Ownership rule.**  The sim::Simulator is thread-affine (see its class
/// comment): each shard's System is constructed *on* its worker thread and
/// never touched by any other thread.  The only cross-thread traffic is
/// the job queue (mutex-protected) and counter snapshots — never live
/// simulator state.
///
/// **Affinity.**  Registers live per shard, so work that depends on
/// register state across jobs must stay on one shard: create_session()
/// returns an id with a sticky session→shard mapping, and
/// submit(session, ...) always lands on that shard.  Session-less
/// submit() round-robins across shards and must treat each job as
/// self-contained.
///
/// **Windowed pipelining.**  With `transport.window > 1` a worker keeps up
/// to that many jobs in flight on its shard at once: the transport issues
/// them in submission order over one wire (so session register semantics
/// are preserved — a later job's reads still execute after an earlier
/// job's writes) and completes each as its last response lands.  Jobs of
/// *different* sessions interleave freely inside a window.
///
/// **Coalescing.**  With `coalesce_max_programs > 1` a worker gathers up
/// to that many queued jobs (possibly from different sessions — the
/// round-robin dequeue keeps its fairness) into ONE submission frame, up
/// to `coalesce_max_words` stream words, holding a partial frame open for
/// at most `coalesce_flush_cycles` before flushing.  Members complete
/// individually; FU swaps still only happen at frame boundaries on an
/// empty window (a job whose required images are not resident cuts the
/// frame before it).  Disabled (the default), the worker takes the
/// pre-coalescing path bit for bit.
///
/// **Admission.**  Each shard's queue is bounded
/// (FarmConfig::queue_capacity).  A full queue blocks the producer
/// (Admission::kBlock) or sheds the job with FarmError{kOverload}
/// (Admission::kShed).  Sessions are optionally capped at
/// `max_inflight_per_session` unresolved jobs — exceeding the cap is
/// refused with kOverload under either policy.  Queued jobs are dequeued
/// *round-robin across sessions* (FIFO within a session), so one tenant's
/// burst cannot starve the others.
///
/// **Failure semantics.**  A job that trips its watchdog (or exhausts
/// transport retries) fails *and* takes the window with it: every job in
/// flight on that shard and every job queued there at that moment fails
/// with FarmError{kShardFault} — the recovery reset destroys the machine
/// state all of them depend on.  The shard resets its System and keeps
/// serving later submissions; other shards never notice (fault isolation).
///
/// **Shutdown.**  Destruction (or shutdown()) stops intake, lets every
/// worker drain the jobs already queued, then joins — queued futures
/// complete normally, producers blocked in submit() are woken and refused
/// with FarmError{kShutdown}; only *new* submissions are refused.
class Farm {
 public:
  using SessionId = std::uint64_t;
  /// Completion callback for submit_async: exactly one of (responses,
  /// error) is meaningful — error is nullptr on success.  Runs on the
  /// shard's worker thread (inline mode: the submitting thread); it must
  /// not block and must not throw.  It may submit follow-up jobs.
  using Callback =
      std::function<void(std::vector<msg::Response>, std::exception_ptr)>;
  /// Streaming consumer for submit_stream: invoked once per response, in
  /// program order, as each instruction group (e.g. one GETV burst)
  /// completes — a long read streams out while the program's tail is
  /// still executing.  Same threading rules as Callback.
  using ResponseFn = std::function<void(const msg::Response&)>;
  /// End-of-stream for submit_stream: nullptr on success, the failure
  /// otherwise.  No ResponseFn invocation follows it.
  using DoneFn = std::function<void(std::exception_ptr)>;

  explicit Farm(FarmConfig config);
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Submit a self-contained program; round-robins across shards.
  std::future<std::vector<msg::Response>> submit(
      isa::Program program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// Submit on `session`'s shard (sticky affinity: register state persists
  /// across this session's jobs, shard faults permitting).
  std::future<std::vector<msg::Response>> submit(
      SessionId session, isa::Program program,
      std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// Callback flavours of the two submits: `done` fires on the worker
  /// thread instead of resolving a future — the completion-driven surface
  /// for event-loop hosts (no thread parked in future::get, admission
  /// errors still throw from submit_async itself).
  void submit_async(isa::Program program, Callback done,
                    std::optional<std::uint64_t> budget_cycles = std::nullopt);
  void submit_async(SessionId session, isa::Program program, Callback done,
                    std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// Streaming flavour: `on_response` receives every response in program
  /// order as its group completes (GETV bursts stream incrementally),
  /// then `on_done` fires exactly once.
  void submit_stream(isa::Program program, ResponseFn on_response,
                     DoneFn on_done,
                     std::optional<std::uint64_t> budget_cycles = std::nullopt);
  void submit_stream(SessionId session, isa::Program program,
                     ResponseFn on_response, DoneFn on_done,
                     std::optional<std::uint64_t> budget_cycles = std::nullopt);

  /// New session id with a sticky shard assignment (round-robin over
  /// shards at creation).
  SessionId create_session();

  /// New session declaring the algorithm images its jobs require (by
  /// registered image name; requires FarmConfig::fu_images).  Placement is
  /// FU-affine: the session lands on the shard whose already-placed demand
  /// overlaps its required set most (an eviction-avoiding approximation of
  /// residency — the live FuManagers are worker-thread-affine and cannot
  /// be queried here), load-balanced across ties.  Every job submitted on
  /// the session ensures the set is resident before it issues; a set that
  /// cannot be satisfied fails jobs with FarmError{kUnitUnavailable}.
  SessionId create_session(std::vector<std::string> required);

  /// The shard a session's jobs run on.
  std::size_t shard_of(SessionId session) const;

  /// Unresolved jobs (queued + in flight + resolving) of a session — the
  /// quantity max_inflight_per_session bounds.
  std::size_t in_flight(SessionId session) const;

  /// Shards serving jobs (1 for an inline farm — FarmConfig::shards == 0).
  std::size_t shard_count() const;
  /// True when the farm runs inline on the caller's thread (shards == 0).
  bool inline_mode() const { return config_.shards == 0; }

  /// Aggregated fleet statistics: every shard's transport.*, host.* and
  /// farm.* counters merged (sim::Counters::merge) into one snapshot.
  /// farm.jobs_completed / farm.jobs_failed / farm.jobs_shed /
  /// farm.shard_resets count the farm's own lifecycle events;
  /// farm.stats_publishes counts snapshot publications (amortised to one
  /// per stats_publish_interval jobs while a shard stays busy).
  sim::Counters counters() const;

  /// Simulated-cycle latencies (enqueue to resolution) of recently
  /// completed jobs, merged across shards — the raw samples behind
  /// latency_percentiles().  Each shard keeps a bounded ring of the most
  /// recent samples (so a long-lived farm's memory stays flat) and
  /// publishes it with its counter snapshots: the view lags a busy shard
  /// by at most stats_publish_interval jobs and is exact after shutdown().
  /// Enqueue stamps come from a worker-published clock hint, so a sample
  /// includes queue wait measured on the shard's own simulated clock.
  std::vector<std::uint64_t> job_latency_samples() const;

  /// Stop intake, drain queued jobs, join workers.  Idempotent; called by
  /// the destructor.
  void shutdown();

  const FarmConfig& config() const { return config_; }

 private:
  struct Shard;
  struct Job;

  void enqueue(std::size_t shard_index, Job job);
  /// Required image set a session declared (empty for plain sessions).
  std::vector<std::string> required_of(SessionId session) const;

  FarmConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_session_{0};
  std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_m_;
  bool joined_ = false;  ///< under shutdown_m_

  // -- FU-affine session placement, under placement_m_ -----------------------
  mutable std::mutex placement_m_;
  /// Sessions created with a required set; absent sessions use the modulo
  /// mapping (back-compat for create_session()).
  std::map<SessionId, std::size_t> session_shard_;
  std::map<SessionId, std::vector<std::string>> session_required_;
  /// Per-shard demand tally: how many placed sessions require each image.
  /// The placement heuristic's residency approximation.
  std::vector<std::map<std::string, std::size_t>> demand_;
  /// Sessions placed per shard (load-balance tie-break).
  std::vector<std::size_t> placed_;
};

}  // namespace fpgafu::host
