#include "host/hpcc.hpp"

#include <chrono>
#include <utility>

#include "fu/gemm_unit.hpp"
#include "fu/scratchpad_unit.hpp"
#include "host/coprocessor.hpp"
#include "host/reference_model.hpp"
#include "host/reliable_transport.hpp"
#include "isa/arith.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "top/system.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fpgafu::host::hpcc {
namespace {

/// Function codes the suite attaches its units under.
constexpr isa::FunctionCode kVecRamCode = isa::fc::kUserBase;
constexpr isa::FunctionCode kGemmCode = isa::fc::kUserBase + 1;

/// One 64-bit-word system shared by all workloads: wide registers so the
/// LCG/GEMM arithmetic is native, and enough of them for 8-wide register
/// blocking with three live blocks.
top::SystemConfig suite_system_config() {
  top::SystemConfig cfg;
  cfg.rtm.word_width = 64;
  cfg.rtm.data_regs = 64;
  cfg.with_float = false;  // the suite is integer-only; keep the fabric lean
  cfg.with_trig = false;
  return cfg;
}

isa::Instruction fu_op(isa::FunctionCode f, isa::VarietyCode v, isa::RegNum dst,
                       isa::RegNum src1, isa::RegNum src2,
                       isa::RegNum dst_flag) {
  isa::Instruction inst;
  inst.function = f;
  inst.variety = v;
  inst.dst1 = dst;
  inst.src1 = src1;
  inst.src2 = src2;
  inst.dst_flag = dst_flag;
  return inst;
}

isa::Instruction rtm_op(isa::RtmOp op) {
  isa::Instruction inst;
  inst.function = isa::fc::kRtm;
  inst.variety = static_cast<isa::VarietyCode>(op);
  return inst;
}

isa::Instruction get_reg(isa::RegNum src) {
  isa::Instruction inst = rtm_op(isa::RtmOp::kGet);
  inst.src1 = src;
  return inst;
}

isa::Instruction get_flags(isa::RegNum src_flag) {
  isa::Instruction inst = rtm_op(isa::RtmOp::kGetFlags);
  inst.src_flag = src_flag;
  return inst;
}

/// Cycles every FU op's flag destination through the flag file so
/// independent operations do not serialise on one flag-register lock.
class FlagCycler {
 public:
  explicit FlagCycler(std::size_t flag_regs) : flag_regs_(flag_regs) {}
  isa::RegNum next() {
    return static_cast<isa::RegNum>(counter_++ % flag_regs_);
  }

 private:
  std::size_t flag_regs_;
  std::size_t counter_ = 0;
};

class Stopwatch {
 public:
  double ms() const {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
};

/// Extract the kData payloads of a response stream, in order.
std::vector<isa::Word> data_payloads(const std::vector<msg::Response>& rs) {
  std::vector<isa::Word> out;
  for (const auto& r : rs) {
    if (r.type == msg::Response::Type::kData) {
      out.push_back(r.payload);
    }
  }
  return out;
}

/// Read `count` scratchpad words starting at `base` back to the host:
/// register-blocked reads followed by one GETV burst per block.
std::vector<isa::Word> read_back_ram(Coprocessor& copro, isa::Word base,
                                     std::size_t count, FlagCycler& fl) {
  constexpr std::size_t kWindow = 8;
  constexpr isa::RegNum kBlockBase = 8;
  std::vector<isa::Word> out;
  out.reserve(count);
  for (std::size_t off = 0; off < count; off += kWindow) {
    const std::size_t chunk = std::min(kWindow, count - off);
    isa::Program p;
    for (std::size_t i = 0; i < chunk; ++i) {
      p.emit_put(1, base + off + i);
      p.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kRead,
                   static_cast<isa::RegNum>(kBlockBase + i), 1, 0, fl.next()));
    }
    p.emit_get_vec(kBlockBase, static_cast<std::uint8_t>(chunk));
    for (isa::Word w : data_payloads(copro.call(p))) {
      out.push_back(w);
    }
  }
  return out;
}

void verify_vector(const std::vector<isa::Word>& got,
                   const std::vector<isa::Word>& expect, WorkloadResult& r) {
  r.verified += expect.size();
  if (got.size() != expect.size()) {
    r.mismatches += expect.size();
    return;
  }
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (got[i] != expect[i]) {
      ++r.mismatches;
    }
  }
}

}  // namespace

std::vector<Kernel> all_kernels() {
  return std::vector<Kernel>(sim::Simulator::kAllKernels.begin(),
                             sim::Simulator::kAllKernels.end());
}

const char* kernel_name(Kernel kernel) {
  return sim::Simulator::kernel_name(kernel);
}

// ---------------------------------------------------------------------------
// STREAM
// ---------------------------------------------------------------------------

std::vector<WorkloadResult> run_stream(Kernel kernel, const StreamConfig& cfg) {
  check(cfg.block >= 1 && cfg.block <= 8,
        "StreamConfig::block must be 1..8 (register window r8..r15)");
  check(cfg.elements >= cfg.block && cfg.elements % cfg.block == 0,
        "StreamConfig::elements must be a positive multiple of block");

  const std::size_t n = cfg.elements;
  const std::size_t blk = cfg.block;
  // Vector bases inside the scratchpad.
  const isa::Word kA = 0;
  const isa::Word kB = static_cast<isa::Word>(n);
  const isa::Word kC = static_cast<isa::Word>(2 * n);
  // Register map: r1 address, r2 write sink, r3 scalar q, r8../r16../r24..
  // the three register blocks.
  constexpr isa::RegNum kRx = 8, kRy = 16, kRz = 24;

  const top::SystemConfig scfg = suite_system_config();
  top::System sys(scfg);
  sys.simulator().set_kernel(kernel);
  fu::ScratchpadUnit ram(sys.simulator(), "vec_ram", 3 * n, 64);
  sys.attach(kVecRamCode, ram);
  Coprocessor copro(sys);
  FlagCycler fl(scfg.rtm.flag_regs);

  // Host mirrors of the three vectors; the oracle passes below advance them
  // in lock-step with the measured passes.
  Xoshiro256 rng(cfg.seed);
  std::vector<isa::Word> a(n), b(n), c(n, 0);
  for (auto& v : a) {
    v = rng.below(std::uint64_t{1} << 20);
  }
  for (auto& v : b) {
    v = rng.below(std::uint64_t{1} << 20);
  }

  // Setup (unmeasured): q, then a and b streamed in — every host->FPGA data
  // word rides a PUTV burst into the register window, then spills to RAM.
  isa::Program load;
  load.emit_put(3, cfg.scalar);
  const auto load_vec = [&](isa::Word base, const std::vector<isa::Word>& v) {
    for (std::size_t off = 0; off < n; off += blk) {
      load.emit_put_vec(kRx, std::vector<isa::Word>(v.begin() + static_cast<std::ptrdiff_t>(off),
                                                    v.begin() + static_cast<std::ptrdiff_t>(off + blk)));
      for (std::size_t i = 0; i < blk; ++i) {
        load.emit_put(1, base + off + i);
        load.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kWrite, 2, 1,
                        static_cast<isa::RegNum>(kRx + i), fl.next()));
      }
    }
  };
  load_vec(kA, a);
  load_vec(kB, b);
  copro.submit(load);
  copro.sync();

  // Per-block program fragments for the four passes.
  const auto read_block = [&](isa::Program& p, isa::Word base, std::size_t off,
                              isa::RegNum dst_base) {
    for (std::size_t i = 0; i < blk; ++i) {
      p.emit_put(1, base + off + i);
      p.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kRead,
                   static_cast<isa::RegNum>(dst_base + i), 1, 0, fl.next()));
    }
  };
  const auto write_block = [&](isa::Program& p, isa::Word base, std::size_t off,
                               isa::RegNum src_base) {
    for (std::size_t i = 0; i < blk; ++i) {
      p.emit_put(1, base + off + i);
      p.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kWrite, 2, 1,
                   static_cast<isa::RegNum>(src_base + i), fl.next()));
    }
  };
  const auto alu_block = [&](isa::Program& p, isa::FunctionCode f,
                             isa::VarietyCode v, isa::RegNum dst_base,
                             isa::RegNum s1_base, isa::RegNum s2_base,
                             bool s2_scalar) {
    for (std::size_t i = 0; i < blk; ++i) {
      p.emit(fu_op(f, v, static_cast<isa::RegNum>(dst_base + i),
                   static_cast<isa::RegNum>(s1_base + i),
                   s2_scalar ? isa::RegNum{3}
                             : static_cast<isa::RegNum>(s2_base + i),
                   fl.next()));
    }
  };
  const isa::VarietyCode kAdd = isa::arith::variety(isa::arith::Op::kAdd);
  const isa::VarietyCode kMul = isa::muldiv::variety(isa::muldiv::Op::kMul);

  const auto measure = [&](const char* name, std::uint64_t words,
                           const isa::Program& p) {
    WorkloadResult r;
    r.name = name;
    r.job_unit = "word";
    r.jobs = words;
    const std::uint64_t c0 = sys.simulator().cycle();
    const Stopwatch sw;
    copro.call(p);
    r.wall_ms = sw.ms();
    r.cycles = sys.simulator().cycle() - c0;
    return r;
  };

  std::vector<WorkloadResult> results;

  // copy: c[i] = a[i]
  {
    isa::Program p;
    for (std::size_t off = 0; off < n; off += blk) {
      read_block(p, kA, off, kRx);
      write_block(p, kC, off, kRx);
    }
    p.emit(rtm_op(isa::RtmOp::kSync));
    results.push_back(measure("stream_copy", 2 * n, p));
    c = a;
    verify_vector(read_back_ram(copro, kC, n, fl), c, results.back());
  }
  // scale: b[i] = q * c[i]
  {
    isa::Program p;
    for (std::size_t off = 0; off < n; off += blk) {
      read_block(p, kC, off, kRx);
      alu_block(p, isa::fc::kMulDiv, kMul, kRy, kRx, 0, true);
      write_block(p, kB, off, kRy);
    }
    p.emit(rtm_op(isa::RtmOp::kSync));
    results.push_back(measure("stream_scale", 2 * n, p));
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = cfg.scalar * c[i];
    }
    verify_vector(read_back_ram(copro, kB, n, fl), b, results.back());
  }
  // add: c[i] = a[i] + b[i]
  {
    isa::Program p;
    for (std::size_t off = 0; off < n; off += blk) {
      read_block(p, kA, off, kRx);
      read_block(p, kB, off, kRy);
      alu_block(p, isa::fc::kArith, kAdd, kRz, kRx, kRy, false);
      write_block(p, kC, off, kRz);
    }
    p.emit(rtm_op(isa::RtmOp::kSync));
    results.push_back(measure("stream_add", 3 * n, p));
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = a[i] + b[i];
    }
    verify_vector(read_back_ram(copro, kC, n, fl), c, results.back());
  }
  // triad: a[i] = b[i] + q * c[i]
  {
    isa::Program p;
    for (std::size_t off = 0; off < n; off += blk) {
      read_block(p, kB, off, kRx);
      read_block(p, kC, off, kRy);
      alu_block(p, isa::fc::kMulDiv, kMul, kRz, kRy, 0, true);
      alu_block(p, isa::fc::kArith, kAdd, kRz, kRx, kRz, false);
      write_block(p, kA, off, kRz);
    }
    p.emit(rtm_op(isa::RtmOp::kSync));
    results.push_back(measure("stream_triad", 3 * n, p));
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = b[i] + cfg.scalar * c[i];
    }
    verify_vector(read_back_ram(copro, kA, n, fl), a, results.back());
  }
  return results;
}

// ---------------------------------------------------------------------------
// RandomAccess
// ---------------------------------------------------------------------------

RandomAccessOutcome run_random_access(Kernel kernel,
                                      const RandomAccessConfig& cfg) {
  check(cfg.table_words >= 2 &&
            (cfg.table_words & (cfg.table_words - 1)) == 0,
        "RandomAccessConfig::table_words must be a power of two >= 2");
  check(cfg.updates >= 1, "RandomAccessConfig::updates must be >= 1");
  check(cfg.sample_every >= 1,
        "RandomAccessConfig::sample_every must be >= 1");

  const std::size_t tw = cfg.table_words;
  // Register map: r1 index, r2 write sink, r3 POLY, r4 index mask, r5 LCG
  // state, r6 sign/mask temp, r7 poly temp, r8 table value, r9 shifted
  // state, r10/r11 shift amounts 63/1.
  const isa::Word poly = 7;
  const isa::Word ran0 = cfg.seed == 0 ? 1 : cfg.seed;

  const top::SystemConfig scfg = suite_system_config();
  top::System sys(scfg);
  sys.simulator().set_kernel(kernel);
  fu::ScratchpadUnit ram(sys.simulator(), "gups_table", tw, 64);
  sys.attach(kVecRamCode, ram);
  Coprocessor copro(sys);
  FlagCycler fl(scfg.rtm.flag_regs);

  // Setup (unmeasured): constants and the HPCC table init table[i] = i.
  isa::Program init;
  init.emit_put(3, poly);
  init.emit_put(4, static_cast<isa::Word>(tw - 1));
  init.emit_put(5, ran0);
  init.emit_put(10, 63);
  init.emit_put(11, 1);
  for (std::size_t i = 0; i < tw; ++i) {
    init.emit_put(1, static_cast<isa::Word>(i));
    init.emit_put(8, static_cast<isa::Word>(i));
    init.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kWrite, 2, 1, 8,
                    fl.next()));
  }
  copro.submit(init);
  copro.sync();

  // Host oracle, advanced exactly like the FPGA program below.
  std::vector<isa::Word> table(tw);
  for (std::size_t i = 0; i < tw; ++i) {
    table[i] = static_cast<isa::Word>(i);
  }
  isa::Word ran = ran0;
  std::vector<isa::Word> expected_samples;

  const isa::VarietyCode kShr = isa::shift::variety(isa::shift::Op::kShr);
  const isa::VarietyCode kShl = isa::shift::variety(isa::shift::Op::kShl);
  const isa::VarietyCode kNeg = isa::arith::variety(isa::arith::Op::kNeg);
  const isa::VarietyCode kAnd = isa::logic::variety(isa::logic::Op::kAnd);
  const isa::VarietyCode kXor = isa::logic::variety(isa::logic::Op::kXor);

  isa::Program p;
  for (std::size_t u = 0; u < cfg.updates; ++u) {
    // ran = (ran << 1) ^ (msb(ran) ? POLY : 0), computed on the FPGA:
    p.emit(fu_op(isa::fc::kShift, kShr, 6, 5, 10, fl.next()));  // r6 = ran>>63
    p.emit(fu_op(isa::fc::kArith, kNeg, 6, 0, 6, fl.next()));   // r6 = -r6
    p.emit(fu_op(isa::fc::kLogic, kAnd, 7, 6, 3, fl.next()));   // r7 = r6&POLY
    p.emit(fu_op(isa::fc::kShift, kShl, 9, 5, 11, fl.next()));  // r9 = ran<<1
    p.emit(fu_op(isa::fc::kLogic, kXor, 5, 9, 7, fl.next()));   // ran' = r9^r7
    // table[ran & (tw-1)] ^= ran:
    p.emit(fu_op(isa::fc::kLogic, kAnd, 1, 5, 4, fl.next()));   // r1 = index
    p.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kRead, 8, 1, 0, fl.next()));
    p.emit(fu_op(isa::fc::kLogic, kXor, 8, 8, 5, fl.next()));
    p.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kWrite, 2, 1, 8, fl.next()));
    if ((u + 1) % cfg.sample_every == 0) {
      p.emit(get_reg(5));
    }
    // Oracle.
    ran = (ran << 1) ^ ((ran >> 63) != 0 ? poly : 0);
    const std::size_t idx = static_cast<std::size_t>(ran & (tw - 1));
    table[idx] ^= ran;
    if ((u + 1) % cfg.sample_every == 0) {
      expected_samples.push_back(ran);
    }
  }
  p.emit(rtm_op(isa::RtmOp::kSync));

  RandomAccessOutcome out;
  out.result.name = "random_access";
  out.result.job_unit = "update";
  out.result.jobs = cfg.updates;
  const std::uint64_t c0 = sys.simulator().cycle();
  const Stopwatch sw;
  const auto responses = copro.call(p);
  out.result.wall_ms = sw.ms();
  out.result.cycles = sys.simulator().cycle() - c0;

  out.sampled_state = data_payloads(responses);
  verify_vector(out.sampled_state, expected_samples, out.result);

  // Out-of-range probe (unmeasured): a read and a write one past the end
  // must both come back with the error flag set and leave the table alone.
  if (cfg.probe_out_of_range) {
    isa::Program probe;
    probe.emit_put(1, static_cast<isa::Word>(tw));
    probe.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kRead, 8, 1, 0, 6));
    probe.emit(get_flags(6));
    probe.emit_put(9, 0xdecade);
    probe.emit(fu_op(kVecRamCode, fu::ScratchpadUnit::kWrite, 2, 1, 9, 7));
    probe.emit(get_flags(7));
    const auto pr = copro.call(probe);
    unsigned errors_seen = 0;
    for (const auto& r : pr) {
      if (r.type == msg::Response::Type::kFlags &&
          bits::bit(r.code, isa::flag::kError)) {
        ++errors_seen;
      }
    }
    out.error_flag_seen = errors_seen == 2;
  }

  // Full-table readback: proves the update stream landed exactly (and that
  // the out-of-range probe corrupted nothing).
  out.final_table = read_back_ram(copro, 0, tw, fl);
  verify_vector(out.final_table, table, out.result);
  return out;
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

WorkloadResult run_gemm(Kernel kernel, const GemmConfig& cfg) {
  check(cfg.block >= 1 && cfg.block <= 8,
        "GemmConfig::block must be 1..8 (register window r8..r15)");
  check(cfg.n >= cfg.block && cfg.n % cfg.block == 0,
        "GemmConfig::n must be a positive multiple of block");

  const std::size_t n = cfg.n;
  const std::size_t bb = cfg.block;
  const std::size_t tiles = n / bb;

  const top::SystemConfig scfg = suite_system_config();
  top::System sys(scfg);
  sys.simulator().set_kernel(kernel);
  fu::GemmUnit gemm(sys.simulator(), "gemm", bb, bb, bb,
                    /*pipeline_depth=*/4, /*fifo_capacity=*/16, 64);
  sys.attach(kGemmCode, gemm);
  Coprocessor copro(sys);
  FlagCycler fl(scfg.rtm.flag_regs);

  Xoshiro256 rng(cfg.seed);
  std::vector<isa::Word> a(n * n), b(n * n);
  for (auto& v : a) {
    v = rng.below(std::uint64_t{1} << 16);
  }
  for (auto& v : b) {
    v = rng.below(std::uint64_t{1} << 16);
  }
  // Host oracle: C = A * B with native 64-bit wraparound.
  std::vector<isa::Word> expect(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 0; p < n; ++p) {
      const isa::Word ap = a[i * n + p];
      for (std::size_t j = 0; j < n; ++j) {
        expect[i * n + j] += ap * b[p * n + j];
      }
    }
  }

  // Setup (unmeasured): select the active block shape.
  isa::Program setup;
  setup.emit_put(1, fu::GemmUnit::config_word(bb, bb, bb));
  setup.emit(fu_op(kGemmCode, fu::GemmUnit::kConfig, 2, 1, 0, fl.next()));
  copro.submit(setup);
  copro.sync();

  // Stream one block×block panel into the unit: one PUTV burst per row
  // into the register window, then a load command per element.
  constexpr isa::RegNum kWin = 8;
  const auto load_panel = [&](isa::Program& p, isa::VarietyCode load_op,
                              const std::vector<isa::Word>& src,
                              std::size_t row0, std::size_t col0) {
    for (std::size_t r = 0; r < bb; ++r) {
      std::vector<isa::Word> row(bb);
      for (std::size_t ccol = 0; ccol < bb; ++ccol) {
        row[ccol] = src[(row0 + r) * n + col0 + ccol];
      }
      p.emit_put_vec(kWin, row);
      for (std::size_t ccol = 0; ccol < bb; ++ccol) {
        p.emit_put(1, static_cast<isa::Word>(r * bb + ccol));
        p.emit(fu_op(kGemmCode, load_op, 2, 1,
                     static_cast<isa::RegNum>(kWin + ccol), fl.next()));
      }
    }
  };

  WorkloadResult result;
  result.name = "gemm";
  result.job_unit = "mac";
  result.jobs = static_cast<std::uint64_t>(n) * n * n;

  std::vector<isa::Word> got(n * n, 0);
  const std::uint64_t c0 = sys.simulator().cycle();
  const Stopwatch sw;
  // Host-side blocking driver: C(I,J) = Σ_K A(I,K)·B(K,J), one call per
  // output tile (clear accumulator, stream panels, sweep, read back).
  for (std::size_t ti = 0; ti < tiles; ++ti) {
    for (std::size_t tj = 0; tj < tiles; ++tj) {
      isa::Program p;
      p.emit(fu_op(kGemmCode, fu::GemmUnit::kClearC, 2, 0, 0, fl.next()));
      for (std::size_t tk = 0; tk < tiles; ++tk) {
        load_panel(p, fu::GemmUnit::kLoadA, a, ti * bb, tk * bb);
        load_panel(p, fu::GemmUnit::kLoadB, b, tk * bb, tj * bb);
        p.emit(fu_op(kGemmCode, fu::GemmUnit::kStart, 2, 0, 0, fl.next()));
      }
      for (std::size_t r = 0; r < bb; ++r) {
        for (std::size_t ccol = 0; ccol < bb; ++ccol) {
          p.emit_put(1, static_cast<isa::Word>(r * bb + ccol));
          p.emit(fu_op(kGemmCode, fu::GemmUnit::kReadC,
                       static_cast<isa::RegNum>(kWin + ccol), 1, 0,
                       fl.next()));
        }
        p.emit_get_vec(kWin, static_cast<std::uint8_t>(bb));
      }
      const auto tile = data_payloads(copro.call(p));
      for (std::size_t r = 0; r < bb; ++r) {
        for (std::size_t ccol = 0; ccol < bb; ++ccol) {
          if (r * bb + ccol < tile.size()) {
            got[(ti * bb + r) * n + tj * bb + ccol] = tile[r * bb + ccol];
          }
        }
      }
    }
  }
  result.wall_ms = sw.ms();
  result.cycles = sys.simulator().cycle() - c0;
  verify_vector(got, expect, result);
  return result;
}

// ---------------------------------------------------------------------------
// b_eff
// ---------------------------------------------------------------------------

BeffOutcome run_beff(Kernel kernel, const BeffConfig& cfg) {
  check(!cfg.message_words.empty(),
        "BeffConfig::message_words must name at least one size");
  check(cfg.repeats >= 1, "BeffConfig::repeats must be >= 1");

  top::SystemConfig scfg = suite_system_config();
  if (cfg.faulty) {
    msg::FaultConfig fc;
    fc.seed = cfg.seed;
    // Upstream word loss/corruption/duplication is what the transport can
    // recover; downstream loss is undetectable by design (docs/PROTOCOL.md)
    // so the downstream direction only jitters.
    fc.up.drop_ppm = cfg.fault_ppm;
    fc.up.corrupt_ppm = cfg.fault_ppm;
    fc.up.duplicate_ppm = cfg.fault_ppm;
    fc.up.jitter_max = 2;
    fc.down.jitter_max = 2;
    scfg.link_faults = fc;
  }
  top::System sys(scfg);
  sys.simulator().set_kernel(kernel);
  Coprocessor copro(sys);
  ReliableTransport transport(copro);

  Xoshiro256 rng(cfg.seed);
  constexpr std::size_t kWindow = 16;  // r8..r23 echo window
  constexpr isa::RegNum kWin = 8;

  BeffOutcome out;
  out.result.name = cfg.faulty ? "b_eff_faulty" : "b_eff_clean";
  out.result.job_unit = "word";

  for (const std::size_t m : cfg.message_words) {
    check(m >= 1, "b_eff message size must be >= 1");
    BeffPoint point;
    point.message_words = m;
    for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
      isa::Program p;
      for (std::size_t off = 0; off < m; off += kWindow) {
        const std::size_t chunk = std::min(kWindow, m - off);
        std::vector<isa::Word> payload(chunk);
        for (auto& w : payload) {
          w = rng.next();
        }
        p.emit_put_vec(kWin, payload);
        p.emit_get_vec(kWin, static_cast<std::uint8_t>(chunk));
      }
      const auto expected = ReferenceModel(scfg.rtm).run(p);
      const std::uint64_t c0 = sys.simulator().cycle();
      const Stopwatch sw;
      const auto got = transport.call(p);
      out.result.wall_ms += sw.ms();
      point.cycles += sys.simulator().cycle() - c0;
      out.result.verified += expected.size();
      if (got != expected) {
        ++out.result.mismatches;
      }
      out.result.jobs += 2 * m;  // payload words, both directions
    }
    point.payload_words_per_cycle =
        point.cycles == 0
            ? 0.0
            : static_cast<double>(2 * m * cfg.repeats) /
                  static_cast<double>(point.cycles);
    out.result.cycles += point.cycles;
    out.points.push_back(point);
  }
  out.transport_retries = transport.counters().get("transport.retries");
  return out;
}

}  // namespace fpgafu::host::hpcc
