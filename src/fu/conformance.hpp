#pragma once

#include <string>
#include <vector>

#include "fu/ports.hpp"
#include "sim/component.hpp"

namespace fpgafu::fu {

/// Protocol conformance monitor: watches a functional unit's port bundle
/// every cycle and records violations of the framework's signal protocol.
///
/// Checked invariants (the rules a unit must satisfy to be attachable to
/// the dispatcher and write arbiter):
///  * V1: `data_ready`, once asserted, stays asserted until the cycle it is
///        acknowledged (no spontaneous withdrawal).
///  * V2: `result` is stable while `data_ready` is asserted and
///        unacknowledged.
///  * V3: an acknowledged result's destination matches a request that was
///        dispatched earlier (no spurious completions), and every dispatch
///        is eventually matched (checked via counters at drain time).
///  * V4: after reset the unit is idle with no pending data.
///
/// Attach it alongside any unit — including user-defined ones — as the
/// framework's equivalent of an interface assertion checker.
class ConformanceMonitor : public sim::Component {
 public:
  ConformanceMonitor(sim::Simulator& sim, std::string name, FuPorts& ports)
      : Component(sim, std::move(name)), ports_(&ports) {
    // A protocol monitor must observe every cycle (it tracks prev-cycle
    // port state), independent of event-kernel scheduling.
    make_always_active();
  }

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t completions() const { return completions_; }

  /// Call when the testbench believes the unit has drained: checks V3's
  /// counting half.
  void check_drained();

  void commit() override;
  void reset() override;

 private:
  void violation(const std::string& what);

  FuPorts* ports_;
  std::vector<std::string> violations_;
  bool prev_ready_ = false;
  bool prev_acked_ = false;
  FuResult prev_result_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t completions_ = 0;
};

}  // namespace fpgafu::fu
