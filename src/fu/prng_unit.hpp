#pragma once

#include <string>

#include "fu/functional_unit.hpp"
#include "util/bits.hpp"

namespace fpgafu::fu {

/// Pseudorandom-number-generator functional unit — one of the paper's
/// named stateful examples ("examples of stateful functional units are
/// histogram calculators, pseudorandom number generators, and associative
/// memories", §IV-B).
///
/// The persistent state is a 64-bit xorshift64 register (three shift-XOR
/// stages — exactly the LFSR-style datapath an FPGA implementation would
/// use).  Operations (variety code):
///   kSeed — state <- operand1 (0 is replaced by a fixed nonzero constant);
///   kNext — advance and return the new state masked to `width` bits;
///   kPeek — return the current state without advancing.
class PrngUnit : public FunctionalUnit {
 public:
  static constexpr isa::VarietyCode kSeed = 0x01;
  static constexpr isa::VarietyCode kNext = 0x02;
  static constexpr isa::VarietyCode kPeek = 0x03;

  PrngUnit(sim::Simulator& sim, std::string name, unsigned width = 32)
      : FunctionalUnit(sim, std::move(name)), width_(width) {}

  void eval() override {
    ports.idle.set(!pending_);
    ports.data_ready.set(pending_);
    ports.result.set(out_);
  }

  void commit() override {
    if (pending_ || ports.dispatch.get()) {
      mark_active();  // pending_/out_/state_ are plain clocked state
    }
    if (pending_ && ports.data_acknowledge.get()) {
      pending_ = false;
      ++completed_;
    }
    if (ports.dispatch.get() && !pending_) {
      const FuRequest req = ports.request.get();
      isa::Word value = 0;
      bool error = false;
      switch (req.variety) {
        case kSeed:
          state_ = req.operand1 != 0 ? req.operand1 : kDefaultSeed;
          value = 0;
          break;
        case kNext:
          state_ ^= state_ << 13;
          state_ ^= state_ >> 7;
          state_ ^= state_ << 17;
          value = state_ & bits::mask(width_);
          break;
        case kPeek:
          value = state_ & bits::mask(width_);
          break;
        default:
          error = true;
          break;
      }
      out_.data = value;
      out_.flags = 0;
      if (value == 0) {
        out_.flags |= isa::FlagWord{1} << isa::flag::kZero;
      }
      if (error) {
        out_.flags |= isa::FlagWord{1} << isa::flag::kError;
      }
      out_.dst_reg = req.dst_reg;
      out_.dst_flag_reg = req.dst_flag_reg;
      out_.write_data = true;
      out_.write_flags = true;
      pending_ = true;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    state_ = kDefaultSeed;
    pending_ = false;
    out_ = FuResult{};
  }

  std::uint64_t state() const { return state_; }

 private:
  static constexpr std::uint64_t kDefaultSeed = 0x2545f4914f6cdd1dULL;

  unsigned width_;
  std::uint64_t state_ = kDefaultSeed;
  bool pending_ = false;
  FuResult out_;
};

}  // namespace fpgafu::fu
