#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "fu/functional_unit.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::fu {

/// Blocked matrix-multiply functional unit built on the thesis §2.3.4
/// *performance-optimised* (pipelined) skeleton: an in-order command
/// pipeline in front of an output FIFO, with destination bookkeeping
/// reserved at dispatch time so the FIFO can never overflow and the
/// datapath never stalls.
///
/// The unit holds three block-RAM panels — A (m×k), B (k×n) and a C
/// accumulator (m×n) — sized at construction.  A host-side blocking driver
/// streams panels in, triggers a compute sweep, and reads the C block back,
/// tiling a larger GEMM out of these block operations (the shape of the
/// HPC Challenge GEMM kernel on an FPGA with limited on-chip memory).
///
/// Operations (variety code; address in operand1, data in operand2):
///   kConfig — set the active block dims from operand1
///             (m = bits [23:16], n = [15:8], k = [7:0]); error when a dim
///             is zero or exceeds the constructed capacity;
///   kLoadA  — A[addr] <- data (row-major m×k);   result = data;
///   kLoadB  — B[addr] <- data (row-major k×n);   result = data;
///   kStart  — C[i][j] += Σ_p A[i][p]·B[p][j] over the active dims;
///             result = the number of MACs performed (m·n·k);
///   kReadC  — result = C[addr];
///   kClearC — every C word <- 0 (hardware clear);  result = 0.
/// Out-of-range addresses and unknown varieties set the error flag
/// (destination contents undefined).
///
/// Timing: the command pipeline has `pipeline_depth` register stages and
/// initiation interval 1, so loads/reads stream at one per cycle after the
/// fill.  kStart occupies the MAC pipeline for `pipeline_depth + m·n·k`
/// cycles — a fully pipelined multiply-accumulate datapath retiring one
/// MAC per clock after the fill.  Commands retire strictly in order, so a
/// load issued behind a kStart mutates its panel only after the sweep has
/// used the old contents (sequential consistency for the host driver).
class GemmUnit : public FunctionalUnit {
 public:
  static constexpr isa::VarietyCode kConfig = 0x01;
  static constexpr isa::VarietyCode kLoadA = 0x02;
  static constexpr isa::VarietyCode kLoadB = 0x03;
  static constexpr isa::VarietyCode kStart = 0x04;
  static constexpr isa::VarietyCode kReadC = 0x05;
  static constexpr isa::VarietyCode kClearC = 0x06;

  /// Pack block dims into a kConfig operand1 word.
  static constexpr isa::Word config_word(std::size_t m, std::size_t n,
                                         std::size_t k) {
    return (static_cast<isa::Word>(m & 0xff) << 16) |
           (static_cast<isa::Word>(n & 0xff) << 8) |
           static_cast<isa::Word>(k & 0xff);
  }

  GemmUnit(sim::Simulator& sim, std::string name, std::size_t max_m,
           std::size_t max_n, std::size_t max_k,
           std::uint32_t pipeline_depth = 4, std::size_t fifo_capacity = 8,
           unsigned width = 64)
      : FunctionalUnit(sim, std::move(name)),
        a_(max_m * max_k, 0),
        b_(max_k * max_n, 0),
        c_(max_m * max_n, 0),
        max_m_(max_m),
        max_n_(max_n),
        max_k_(max_k),
        m_(max_m),
        n_(max_n),
        k_(max_k),
        depth_(pipeline_depth),
        width_(width),
        fifo_(fifo_capacity) {
    check(max_m >= 1 && max_n >= 1 && max_k >= 1,
          "GEMM block capacities must all be >= 1");
    check(max_m <= 255 && max_n <= 255 && max_k <= 255,
          "GEMM block capacities must fit the 8-bit kConfig dim fields");
    check(pipeline_depth >= 1, "pipeline depth must be >= 1");
    check(fifo_capacity > pipeline_depth,
          "FIFO must hold more elements than there are pipeline stages "
          "(thesis 2.3.4 sizing rule)");
  }

  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  std::size_t in_flight() const { return pipe_.size(); }
  std::size_t buffered() const { return fifo_.size(); }

  /// Direct test/debug access (the host path goes through instructions).
  isa::Word peek_a(std::size_t addr) const { return a_.at(addr); }
  isa::Word peek_b(std::size_t addr) const { return b_.at(addr); }
  isa::Word peek_c(std::size_t addr) const { return c_.at(addr); }

  void eval() override {
    // Reserved slots: results already buffered plus commands that will land
    // in the FIFO when they retire from the pipeline (reserved at dispatch,
    // the pipelined skeleton's no-overflow invariant).
    const std::size_t reserved = fifo_.size() + pipe_.size();
    ports.idle.set(reserved < fifo_.capacity());
    ports.data_ready.set(!fifo_.empty());
    if (!fifo_.empty()) {
      ports.result.set(fifo_.front());
    }
  }

  void commit() override {
    if (!pipe_.empty() || !fifo_.empty() || ports.dispatch.get()) {
      mark_active();  // pipe_/fifo_/panel state are plain clocked state
    }
    // Drain: the arbiter acknowledged the head result.
    if (!fifo_.empty() && ports.data_acknowledge.get()) {
      fifo_.pop();
      ++completed_;
    }
    // Advance the pipeline.  Stages have heterogeneous latency (a kStart
    // sweep occupies the MAC pipeline far longer than a load), so each
    // counts down independently but retirement stays strictly in order.
    for (auto& stage : pipe_) {
      if (stage.remaining > 0) {
        --stage.remaining;
      }
    }
    while (!pipe_.empty() && pipe_.front().remaining == 0) {
      fifo_.push(retire(pipe_.front().request));
      pipe_.pop_front();
    }
    // Accept a new command (the dispatcher honoured `idle`).
    const std::size_t reserved = fifo_.size() + pipe_.size();
    if (ports.dispatch.get() && reserved < fifo_.capacity()) {
      pipe_.push_back({ports.request.get(), latency(ports.request.get())});
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    a_.assign(a_.size(), 0);
    b_.assign(b_.size(), 0);
    c_.assign(c_.size(), 0);
    m_ = max_m_;
    n_ = max_n_;
    k_ = max_k_;
    pipe_.clear();
    fifo_.clear();
  }

 private:
  struct Stage {
    FuRequest request;
    std::uint64_t remaining;
  };

  std::uint64_t latency(const FuRequest& req) const {
    if (req.variety == kStart) {
      // Pipelined MAC datapath: fill + one MAC retired per clock.
      return depth_ + static_cast<std::uint64_t>(m_) * n_ * k_;
    }
    return depth_;
  }

  /// Execute a command at retirement.  All architectural state (panels,
  /// accumulator, active dims) mutates here, in retirement order.
  FuResult retire(const FuRequest& req) {
    const isa::Word addr = req.operand1;
    const isa::Word data = req.operand2 & bits::mask(width_);
    isa::Word result = 0;
    bool error = false;
    switch (req.variety) {
      case kConfig: {
        const std::size_t m = static_cast<std::size_t>((addr >> 16) & 0xff);
        const std::size_t n = static_cast<std::size_t>((addr >> 8) & 0xff);
        const std::size_t k = static_cast<std::size_t>(addr & 0xff);
        if (m >= 1 && n >= 1 && k >= 1 && m <= max_m_ && n <= max_n_ &&
            k <= max_k_) {
          m_ = m;
          n_ = n;
          k_ = k;
          result = config_word(m, n, k);
        } else {
          error = true;  // active dims unchanged
        }
        break;
      }
      case kLoadA:
        if (addr < m_ * k_) {
          a_[addr] = data;
          result = data;
        } else {
          error = true;
        }
        break;
      case kLoadB:
        if (addr < k_ * n_) {
          b_[addr] = data;
          result = data;
        } else {
          error = true;
        }
        break;
      case kStart: {
        const std::uint64_t msk = bits::mask(width_);
        for (std::size_t i = 0; i < m_; ++i) {
          for (std::size_t j = 0; j < n_; ++j) {
            isa::Word acc = c_[i * n_ + j];
            for (std::size_t p = 0; p < k_; ++p) {
              acc = (acc + a_[i * k_ + p] * b_[p * n_ + j]) & msk;
            }
            c_[i * n_ + j] = acc;
          }
        }
        result = static_cast<isa::Word>(m_) * n_ * k_;
        break;
      }
      case kReadC:
        if (addr < m_ * n_) {
          result = c_[addr];
        } else {
          error = true;
        }
        break;
      case kClearC:
        c_.assign(c_.size(), 0);
        result = 0;
        break;
      default:
        error = true;
        break;
    }
    FuResult r;
    r.data = result;
    r.flags = 0;
    if (result == 0) {
      r.flags |= isa::FlagWord{1} << isa::flag::kZero;
    }
    if (error) {
      r.flags |= isa::FlagWord{1} << isa::flag::kError;
    }
    r.dst_reg = req.dst_reg;
    r.dst_flag_reg = req.dst_flag_reg;
    r.write_data = true;
    r.write_flags = true;
    return r;
  }

  std::vector<isa::Word> a_;
  std::vector<isa::Word> b_;
  std::vector<isa::Word> c_;
  std::size_t max_m_;
  std::size_t max_n_;
  std::size_t max_k_;
  std::size_t m_;
  std::size_t n_;
  std::size_t k_;
  std::uint32_t depth_;
  unsigned width_;
  std::deque<Stage> pipe_;
  RingBuffer<FuResult> fifo_;
};

}  // namespace fpgafu::fu
