#pragma once

#include <memory>
#include <string>

#include "fu/functional_unit.hpp"

namespace fpgafu::fu {

/// Which §2.3.4 skeleton a stateless unit is built from.
enum class Skeleton {
  kMinimal,        ///< combinational + output register (Fig. 5)
  kMinimalFwd,     ///< minimal with combinational ack forwarding
  kFsm,            ///< explicit FSM, area optimised (Fig. 6)
  kPipelined,      ///< fully pipelined with FIFOs (performance optimised)
};

/// Construction parameters for a stateless unit.
struct StatelessConfig {
  unsigned width = 32;                 ///< datapath width in bits
  Skeleton skeleton = Skeleton::kMinimal;
  std::uint32_t execute_cycles = 1;    ///< kFsm: datapath iteration count
  std::uint32_t pipeline_depth = 3;    ///< kPipelined
  std::size_t fifo_capacity = 8;       ///< kPipelined
  std::uint32_t initiation_interval = 1;  ///< kPipelined
};

/// The combinational cores of the case-study units (thesis §3.2.2), bound
/// to a datapath width.  Exposed so custom units can reuse them.
StatelessFn arithmetic_core(unsigned width);
StatelessFn logic_core(unsigned width);
StatelessFn shift_core(unsigned width);
StatelessFn muldiv_core(unsigned width);
StatelessFn fp32_core();
StatelessFn trig_core();

/// Factories: the thesis' arithmetic unit (Table 3.1), logic unit
/// (Table 3.2) and the shift-unit extension, each wrapped in the chosen
/// protocol skeleton.
std::unique_ptr<FunctionalUnit> make_arithmetic_unit(sim::Simulator& sim,
                                                     const StatelessConfig& cfg,
                                                     std::string name = "arith");
std::unique_ptr<FunctionalUnit> make_logic_unit(sim::Simulator& sim,
                                                const StatelessConfig& cfg,
                                                std::string name = "logic");
std::unique_ptr<FunctionalUnit> make_shift_unit(sim::Simulator& sim,
                                                const StatelessConfig& cfg,
                                                std::string name = "shift");

/// Multiply/divide unit.  This is the canonical *multi-cycle* unit: a
/// sequential shift-add multiplier / restoring divider iterating one bit
/// per clock.  When built on the FSM skeleton, `execute_cycles` defaults to
/// the datapath width to model that iteration.
std::unique_ptr<FunctionalUnit> make_muldiv_unit(sim::Simulator& sim,
                                                 StatelessConfig cfg,
                                                 std::string name = "muldiv");

/// IEEE-754 single-precision floating-point unit (soft-float core).
std::unique_ptr<FunctionalUnit> make_fp32_unit(sim::Simulator& sim,
                                               const StatelessConfig& cfg,
                                               std::string name = "fp32");

/// CORDIC trigonometric unit (sin/cos; the paper's "trigonometric function
/// calculators").  On the FSM skeleton, `execute_cycles` defaults to the
/// CORDIC iteration count — one micro-rotation per clock.
std::unique_ptr<FunctionalUnit> make_trig_unit(sim::Simulator& sim,
                                               StatelessConfig cfg,
                                               std::string name = "trig");

/// Wrap an arbitrary combinational core in the chosen skeleton.
std::unique_ptr<FunctionalUnit> make_stateless_unit(sim::Simulator& sim,
                                                    std::string name,
                                                    StatelessFn fn,
                                                    const StatelessConfig& cfg);

}  // namespace fpgafu::fu
