#pragma once

#include <cstdint>
#include <string>

#include "fu/functional_unit.hpp"
#include "sim/signal.hpp"

namespace fpgafu::fu {

/// The thesis' *area-optimised configuration*: an explicit finite state
/// machine (Fig. 6) sequencing Idle -> Execute -> Output -> Idle.
///
/// The skeleton reuses the datapath for several cycles instead of
/// replicating it (hence "area optimised"): `execute_cycles` models a
/// multi-cycle operation iterating on shared hardware.  Operations whose
/// variety produces no output (e.g. a compare whose flags are disabled)
/// take the Fig. 6 "Completion / No output" edge straight back to Idle.
class FsmFu : public FunctionalUnit {
 public:
  enum class State : std::uint8_t { kIdle, kExecute, kOutput };

  FsmFu(sim::Simulator& sim, std::string name, StatelessFn fn,
        std::uint32_t execute_cycles = 1)
      : FunctionalUnit(sim, std::move(name)),
        fn_(std::move(fn)),
        execute_cycles_(execute_cycles) {}

  State state() const { return state_.q(); }

  void eval() override {
    ports.idle.set(state_.q() == State::kIdle);
    ports.data_ready.set(state_.q() == State::kOutput);
    ports.result.set(out_.q());
  }

  void commit() override {
    State next = state_.q();
    switch (state_.q()) {
      case State::kIdle:
        if (ports.dispatch.get()) {
          const FuRequest req = ports.request.get();
          pending_req_.set_d(req);
          countdown_.set_d(execute_cycles_);
          next = State::kExecute;
        }
        break;
      case State::kExecute:
        if (countdown_.q() <= 1) {
          // Completion: latch the datapath result.
          const FuRequest req = pending_req_.q();
          const StatelessOut o =
              fn_(req.variety, req.operand1, req.operand2, req.flags_in);
          FuResult r;
          r.data = o.value;
          r.flags = o.flags;
          r.dst_reg = req.dst_reg;
          r.dst_flag_reg = req.dst_flag_reg;
          r.write_data = o.write_data;
          r.write_flags = o.write_flags;
          if (!r.write_data && !r.write_flags) {
            // Fig. 6 "Completion / No output" edge.
            ++completed_;
            next = State::kIdle;
          } else {
            out_.set_d(r);
            next = State::kOutput;
          }
        } else {
          countdown_.set_d(countdown_.q() - 1);
        }
        break;
      case State::kOutput:
        if (ports.data_acknowledge.get()) {
          ++completed_;
          next = State::kIdle;
        }
        break;
    }
    state_.set_d(next);
    state_.tick();
    pending_req_.tick();
    countdown_.tick();
    out_.tick();
  }

  void reset() override {
    FunctionalUnit::reset();
    state_.reset();
    pending_req_.reset();
    countdown_.reset();
    out_.reset();
  }

 private:
  StatelessFn fn_;
  std::uint32_t execute_cycles_;
  sim::Reg<State> state_{*this, State::kIdle};
  sim::Reg<FuRequest> pending_req_{*this};
  sim::Reg<std::uint32_t> countdown_{*this, 0};
  sim::Reg<FuResult> out_{*this};
};

}  // namespace fpgafu::fu
