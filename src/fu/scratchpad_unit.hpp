#pragma once

#include <string>
#include <vector>

#include "fu/functional_unit.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::fu {

/// On-FPGA scratchpad memory functional unit: a block-RAM buffer the host
/// program addresses through instructions.
///
/// The paper's interface "can collect data from the processor, buffer it,
/// run the functional units, obtain their results"; the register file is
/// that buffer for a handful of words.  Real workloads (matrices, signal
/// blocks) need more on-chip state than registers — this unit is the
/// natural BRAM-backed extension, and another canonical stateful unit in
/// the §IV-B sense ("smart memory" without the smartness: plain addressed
/// storage).
///
/// Operations (variety code; address in operand1, data in operand2):
///   kWrite — mem[addr] <- data; result = data;
///   kRead  — result = mem[addr];
///   kFill  — every word <- data (a hardware clear/fill, one dispatch);
///   kSize  — result = capacity in words.
/// Out-of-range addresses set the error flag (destination undefined).
///
/// Timing: one cycle per operation (single-ported BRAM); kFill is also one
/// dispatch (hardware fill logic), which the model preserves.
class ScratchpadUnit : public FunctionalUnit {
 public:
  static constexpr isa::VarietyCode kWrite = 0x01;
  static constexpr isa::VarietyCode kRead = 0x02;
  static constexpr isa::VarietyCode kFill = 0x03;
  static constexpr isa::VarietyCode kSize = 0x04;

  ScratchpadUnit(sim::Simulator& sim, std::string name, std::size_t words,
                 unsigned width = 32)
      : FunctionalUnit(sim, std::move(name)), mem_(words, 0), width_(width) {
    check(words >= 1, "scratchpad needs at least one word");
  }

  std::size_t capacity() const { return mem_.size(); }

  /// Direct test/debug access (the host path goes through instructions).
  isa::Word peek(std::size_t addr) const { return mem_.at(addr); }

  void eval() override {
    ports.idle.set(!pending_);
    ports.data_ready.set(pending_);
    ports.result.set(out_);
  }

  void commit() override {
    if (pending_ || ports.dispatch.get()) {
      mark_active();  // pending_/out_/mem_ are plain clocked state
    }
    if (pending_ && ports.data_acknowledge.get()) {
      pending_ = false;
      ++completed_;
    }
    if (ports.dispatch.get() && !pending_) {
      const FuRequest req = ports.request.get();
      const isa::Word addr = req.operand1;
      const isa::Word data = req.operand2 & bits::mask(width_);
      isa::Word result = 0;
      bool error = false;
      switch (req.variety) {
        case kWrite:
          if (addr < mem_.size()) {
            mem_[addr] = data;
            result = data;
          } else {
            error = true;
          }
          break;
        case kRead:
          if (addr < mem_.size()) {
            result = mem_[addr];
          } else {
            error = true;
          }
          break;
        case kFill:
          mem_.assign(mem_.size(), data);
          result = data;
          break;
        case kSize:
          result = mem_.size();
          break;
        default:
          error = true;
          break;
      }
      out_.data = result;
      out_.flags = 0;
      if (result == 0) {
        out_.flags |= isa::FlagWord{1} << isa::flag::kZero;
      }
      if (error) {
        out_.flags |= isa::FlagWord{1} << isa::flag::kError;
      }
      out_.dst_reg = req.dst_reg;
      out_.dst_flag_reg = req.dst_flag_reg;
      out_.write_data = true;
      out_.write_flags = true;
      pending_ = true;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    mem_.assign(mem_.size(), 0);
    pending_ = false;
    out_ = FuResult{};
  }

 private:
  std::vector<isa::Word> mem_;
  unsigned width_;
  bool pending_ = false;
  FuResult out_;
};

}  // namespace fpgafu::fu
