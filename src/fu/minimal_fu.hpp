#pragma once

#include <string>

#include "fu/functional_unit.hpp"
#include "sim/signal.hpp"

namespace fpgafu::fu {

/// The thesis' *minimal configuration* of a functional unit (§2.3.4,
/// Fig. 5): combinational logic followed by an output register array.
///
/// `dispatch` acts as a clock enable that samples the operation's result
/// and destination register into the output registers and sets a registered
/// data-ready flag; the flag holds until the write arbiter acknowledges.
///
/// With `ack_forward` disabled the unit accepts an instruction every
/// *second* cycle (the §3.2.2 case-study behaviour); enabling it forwards
/// the arbiter's acknowledgement combinationally into `idle`, reaching one
/// instruction per cycle at the cost of a longer combinational path —
/// exactly the trade-off the thesis describes.
class MinimalFu : public FunctionalUnit {
 public:
  MinimalFu(sim::Simulator& sim, std::string name, StatelessFn fn,
            bool ack_forward = false)
      : FunctionalUnit(sim, std::move(name)),
        fn_(std::move(fn)),
        ack_forward_(ack_forward) {}

  void eval() override {
    // idle: no output pending, or pending output acknowledged this cycle
    // (the combinational forward mechanism).
    const bool pending = ready_.q();
    const bool acked = pending && ports.data_acknowledge.get();
    ports.idle.set(!pending || (ack_forward_ && acked));
    ports.data_ready.set(pending);
    ports.result.set(out_.q());
  }

  void commit() override {
    const bool pending = ready_.q();
    const bool acked = pending && ports.data_acknowledge.get();
    const bool idle_now = !pending || (ack_forward_ && acked);
    const bool accept = ports.dispatch.get() && idle_now;
    if (accept) {
      const FuRequest req = ports.request.get();
      const StatelessOut o =
          fn_(req.variety, req.operand1, req.operand2, req.flags_in);
      FuResult r;
      r.data = o.value;
      r.flags = o.flags;
      r.dst_reg = req.dst_reg;
      r.dst_flag_reg = req.dst_flag_reg;
      r.write_data = o.write_data;
      r.write_flags = o.write_flags;
      out_.set_d(r);
      ready_.set_d(true);
    } else {
      out_.set_d(out_.q());
      ready_.set_d(acked ? false : pending);
    }
    if (acked) {
      ++completed_;
    }
    if (accept || acked) {
      // completed_ can advance without any register changing value (ack of
      // a result identical to the previous one, with ack_forward re-accept).
      mark_active();
    }
    out_.tick();
    ready_.tick();
  }

  void reset() override {
    FunctionalUnit::reset();
    out_.reset();
    ready_.reset();
  }

 private:
  StatelessFn fn_;
  bool ack_forward_;
  sim::Reg<FuResult> out_{*this};
  sim::Reg<bool> ready_{*this, false};
};

}  // namespace fpgafu::fu
