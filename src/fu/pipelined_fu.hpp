#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "fu/functional_unit.hpp"
#include "util/error.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::fu {

/// The thesis' *performance-optimised configuration* (§2.3.4): a fully
/// pipelined datapath in front of output FIFO buffers.
///
/// Key property reproduced from the thesis: destination bookkeeping is
/// enqueued *at dispatch time*, so the unit's occupancy is
/// `fifo contents + instructions still in the pipeline`, and `idle` is
/// computed from that reservation count — the pipeline itself never stalls,
/// and the FIFO can never overflow because a slot was reserved when the
/// instruction entered.  The thesis recommends "FIFO buffers able to hold
/// more data elements than there are pipeline stages"; the constructor
/// enforces it.
///
/// `initiation_interval` models a pipeline that accepts a new instruction
/// "at least every kth clock cycle".
class PipelinedFu : public FunctionalUnit {
 public:
  PipelinedFu(sim::Simulator& sim, std::string name, StatelessFn fn,
              std::uint32_t pipeline_depth, std::size_t fifo_capacity,
              std::uint32_t initiation_interval = 1)
      : FunctionalUnit(sim, std::move(name)),
        fn_(std::move(fn)),
        depth_(pipeline_depth),
        interval_(initiation_interval),
        fifo_(fifo_capacity) {
    check(pipeline_depth >= 1, "pipeline depth must be >= 1");
    check(initiation_interval >= 1, "initiation interval must be >= 1");
    check(fifo_capacity > pipeline_depth,
          "FIFO must hold more elements than there are pipeline stages "
          "(thesis 2.3.4 sizing rule)");
  }

  std::size_t in_flight() const { return pipe_.size(); }
  std::size_t buffered() const { return fifo_.size(); }

  void eval() override {
    // Reserved slots: results already buffered plus instructions that will
    // land in the FIFO when they drain from the pipeline.
    const std::size_t reserved = fifo_.size() + pipe_.size();
    const bool slot_free = reserved < fifo_.capacity();
    const bool issue_ok = since_issue_.q() + 1 >= interval_;
    ports.idle.set(slot_free && issue_ok);
    ports.data_ready.set(!fifo_.empty());
    if (!fifo_.empty()) {
      ports.result.set(fifo_.front());
    }
  }

  void commit() override {
    // Anything in flight means clocked state (pipe_, fifo_, the issue
    // spacing register) advances this cycle; a fresh dispatch starts it.
    if (!pipe_.empty() || !fifo_.empty() || ports.dispatch.get() ||
        since_issue_.q() < interval_) {
      mark_active();
    }
    // Drain: the arbiter acknowledged the head result.
    if (!fifo_.empty() && ports.data_acknowledge.get()) {
      fifo_.pop();
      ++completed_;
    }
    // Advance the pipeline: results whose latency elapsed enter the FIFO
    // (slot was reserved at dispatch, so push cannot overflow).
    for (auto& stage : pipe_) {
      --stage.remaining;
    }
    while (!pipe_.empty() && pipe_.front().remaining == 0) {
      fifo_.push(compute(pipe_.front().request));
      pipe_.pop_front();
    }
    // Accept a new instruction (the dispatcher honoured `idle`).
    const std::size_t reserved = fifo_.size() + pipe_.size();
    const bool issue_ok = since_issue_.q() + 1 >= interval_;
    if (ports.dispatch.get() && issue_ok &&
        reserved < fifo_.capacity()) {
      pipe_.push_back({ports.request.get(), depth_});
      since_issue_.set_d(0);
    } else {
      since_issue_.set_d(since_issue_.q() >= interval_ ? since_issue_.q()
                                                       : since_issue_.q() + 1);
    }
    since_issue_.tick();
  }

  void reset() override {
    FunctionalUnit::reset();
    pipe_.clear();
    fifo_.clear();
    since_issue_.reset();
  }

 private:
  struct Stage {
    FuRequest request;
    std::uint32_t remaining;
  };

  FuResult compute(const FuRequest& req) const {
    const StatelessOut o =
        fn_(req.variety, req.operand1, req.operand2, req.flags_in);
    FuResult r;
    r.data = o.value;
    r.flags = o.flags;
    r.dst_reg = req.dst_reg;
    r.dst_flag_reg = req.dst_flag_reg;
    r.write_data = o.write_data;
    r.write_flags = o.write_flags;
    return r;
  }

  StatelessFn fn_;
  std::uint32_t depth_;
  std::uint32_t interval_;
  std::deque<Stage> pipe_;
  RingBuffer<FuResult> fifo_;
  sim::Reg<std::uint32_t> since_issue_{*this, ~std::uint32_t{0} / 2};
};

}  // namespace fpgafu::fu
