#pragma once

#include <string>
#include <vector>

#include "fu/functional_unit.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::fu {

/// Associative-memory (content-addressable memory) functional unit — the
/// third stateful example the paper names (§IV-B).
///
/// The persistent state is a table of {key, value, valid} entries.  In
/// hardware every entry compares its key against the broadcast search key
/// simultaneously, so a lookup costs one cycle *regardless of capacity* —
/// the same circuit-parallelism story as the χ-sort cell array; the model
/// preserves that single-cycle timing.
///
/// Operations (variety code; key in operand1, value in operand2):
///   kClear  — invalidate every entry;
///   kInsert — update the entry matching the key, or claim a free slot;
///             sets kError (and changes nothing) when the table is full;
///   kErase  — invalidate the entry matching the key (a miss is a no-op
///             with kZero cleared);
///   kLookup — return the value for the key; kCarry = hit, kZero = miss;
///   kCount  — return the number of valid entries (a population-count
///             tree in hardware).
class CamUnit : public FunctionalUnit {
 public:
  static constexpr isa::VarietyCode kClear = 0x01;
  static constexpr isa::VarietyCode kInsert = 0x02;
  static constexpr isa::VarietyCode kErase = 0x03;
  static constexpr isa::VarietyCode kLookup = 0x04;
  static constexpr isa::VarietyCode kCount = 0x05;

  CamUnit(sim::Simulator& sim, std::string name, std::size_t capacity)
      : FunctionalUnit(sim, std::move(name)), entries_(capacity) {
    check(capacity >= 1, "CAM needs at least one entry");
  }

  std::size_t capacity() const { return entries_.size(); }

  void eval() override {
    ports.idle.set(!pending_);
    ports.data_ready.set(pending_);
    ports.result.set(out_);
  }

  void commit() override {
    if (pending_ || ports.dispatch.get()) {
      mark_active();  // pending_/out_/entries_ are plain clocked state
    }
    if (pending_ && ports.data_acknowledge.get()) {
      pending_ = false;
      ++completed_;
    }
    if (ports.dispatch.get() && !pending_) {
      const FuRequest req = ports.request.get();
      execute(req);
      pending_ = true;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    for (Entry& e : entries_) {
      e = Entry{};
    }
    pending_ = false;
    out_ = FuResult{};
  }

 private:
  struct Entry {
    isa::Word key = 0;
    isa::Word value = 0;
    bool valid = false;
  };

  void execute(const FuRequest& req) {
    isa::Word value = 0;
    bool hit = false;
    bool error = false;
    switch (req.variety) {
      case kClear:
        for (Entry& e : entries_) {
          e.valid = false;
        }
        break;
      case kInsert: {
        Entry* slot = find(req.operand1);
        if (slot == nullptr) {
          for (Entry& e : entries_) {
            if (!e.valid) {
              slot = &e;
              break;
            }
          }
        }
        if (slot == nullptr) {
          error = true;  // table full: destination undefined by convention
        } else {
          slot->key = req.operand1;
          slot->value = req.operand2;
          slot->valid = true;
          hit = true;
        }
        break;
      }
      case kErase:
        if (Entry* e = find(req.operand1)) {
          e->valid = false;
          hit = true;
        }
        break;
      case kLookup:
        if (const Entry* e = find(req.operand1)) {
          value = e->value;
          hit = true;
        }
        break;
      case kCount:
        for (const Entry& e : entries_) {
          value += e.valid ? 1 : 0;
        }
        hit = value != 0;
        break;
      default:
        error = true;
        break;
    }
    out_.data = value;
    out_.flags = 0;
    if (!hit) {
      out_.flags |= isa::FlagWord{1} << isa::flag::kZero;  // miss
    } else {
      out_.flags |= isa::FlagWord{1} << isa::flag::kCarry;  // hit
    }
    if (error) {
      out_.flags |= isa::FlagWord{1} << isa::flag::kError;
    }
    out_.dst_reg = req.dst_reg;
    out_.dst_flag_reg = req.dst_flag_reg;
    out_.write_data = true;
    out_.write_flags = true;
  }

  Entry* find(isa::Word key) {
    for (Entry& e : entries_) {
      if (e.valid && e.key == key) {
        return &e;
      }
    }
    return nullptr;
  }

  std::vector<Entry> entries_;
  bool pending_ = false;
  FuResult out_;
};

}  // namespace fpgafu::fu
