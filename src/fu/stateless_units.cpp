#include "fu/stateless_units.hpp"

#include "fu/dual_fsm_fu.hpp"
#include "fu/fsm_fu.hpp"
#include "fu/minimal_fu.hpp"
#include "fu/pipelined_fu.hpp"
#include "isa/arith.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/shift.hpp"
#include "isa/trig.hpp"
#include "util/bits.hpp"

namespace fpgafu::fu {

StatelessFn arithmetic_core(unsigned width) {
  return [width](isa::VarietyCode v, isa::Word a, isa::Word b,
                 isa::FlagWord f) {
    const isa::arith::Result r = isa::arith::evaluate(v, a, b, f, width);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

StatelessFn logic_core(unsigned width) {
  return [width](isa::VarietyCode v, isa::Word a, isa::Word b, isa::FlagWord) {
    const isa::logic::Result r = isa::logic::evaluate(v, a, b, width);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

StatelessFn shift_core(unsigned width) {
  return [width](isa::VarietyCode v, isa::Word a, isa::Word b, isa::FlagWord) {
    const isa::shift::Result r = isa::shift::evaluate(v, a, b, width);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

std::unique_ptr<FunctionalUnit> make_stateless_unit(sim::Simulator& sim,
                                                    std::string name,
                                                    StatelessFn fn,
                                                    const StatelessConfig& cfg) {
  switch (cfg.skeleton) {
    case Skeleton::kMinimal:
      return std::make_unique<MinimalFu>(sim, std::move(name), std::move(fn),
                                         /*ack_forward=*/false);
    case Skeleton::kMinimalFwd:
      return std::make_unique<MinimalFu>(sim, std::move(name), std::move(fn),
                                         /*ack_forward=*/true);
    case Skeleton::kFsm:
      return std::make_unique<FsmFu>(sim, std::move(name), std::move(fn),
                                     cfg.execute_cycles);
    case Skeleton::kPipelined:
      return std::make_unique<PipelinedFu>(sim, std::move(name), std::move(fn),
                                           cfg.pipeline_depth,
                                           cfg.fifo_capacity,
                                           cfg.initiation_interval);
  }
  throw SimError("unknown skeleton");
}

std::unique_ptr<FunctionalUnit> make_arithmetic_unit(sim::Simulator& sim,
                                                     const StatelessConfig& cfg,
                                                     std::string name) {
  return make_stateless_unit(sim, std::move(name), arithmetic_core(cfg.width),
                             cfg);
}

std::unique_ptr<FunctionalUnit> make_logic_unit(sim::Simulator& sim,
                                                const StatelessConfig& cfg,
                                                std::string name) {
  return make_stateless_unit(sim, std::move(name), logic_core(cfg.width), cfg);
}

std::unique_ptr<FunctionalUnit> make_shift_unit(sim::Simulator& sim,
                                                const StatelessConfig& cfg,
                                                std::string name) {
  return make_stateless_unit(sim, std::move(name), shift_core(cfg.width), cfg);
}

StatelessFn muldiv_core(unsigned width) {
  return [width](isa::VarietyCode v, isa::Word a, isa::Word b, isa::FlagWord) {
    const isa::muldiv::Result r = isa::muldiv::evaluate(v, a, b, width);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

StatelessFn fp32_core() {
  return [](isa::VarietyCode v, isa::Word a, isa::Word b, isa::FlagWord) {
    const isa::fp32::Result r = isa::fp32::evaluate(v, a, b);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

std::unique_ptr<FunctionalUnit> make_muldiv_unit(sim::Simulator& sim,
                                                 StatelessConfig cfg,
                                                 std::string name) {
  if (cfg.skeleton == Skeleton::kFsm) {
    if (cfg.execute_cycles <= 1) {
      // One quotient/product bit per clock: the sequential datapath.
      cfg.execute_cycles = cfg.width;
    }
    // The FSM variant supports the dual-output DIVMOD (thesis Fig. 2.18's
    // two-record completion); the restoring divider has both results ready.
    const unsigned width = cfg.width;
    auto dual_fn = [width](isa::VarietyCode v, isa::Word a, isa::Word b,
                           isa::FlagWord) {
      const isa::muldiv::Result r = isa::muldiv::evaluate(v, a, b, width);
      DualOut o;
      o.first = StatelessOut{r.value, r.flags, r.write_data, true};
      o.second = r.value2;
      o.has_second = r.has_second;
      return o;
    };
    auto second_pred = [](isa::VarietyCode v) {
      return static_cast<isa::muldiv::Op>(
                 bits::field(v, isa::muldiv::vc::kOpHi,
                             isa::muldiv::vc::kOpLo)) ==
             isa::muldiv::Op::kDivMod;
    };
    return std::make_unique<DualFsmFu>(sim, std::move(name),
                                       std::move(dual_fn),
                                       std::move(second_pred),
                                       cfg.execute_cycles);
  }
  // Other skeletons carry the single-output subset (DIVMOD's second result
  // is dropped there; use the FSM variant for dual output).
  return make_stateless_unit(sim, std::move(name), muldiv_core(cfg.width),
                             cfg);
}

std::unique_ptr<FunctionalUnit> make_fp32_unit(sim::Simulator& sim,
                                               const StatelessConfig& cfg,
                                               std::string name) {
  return make_stateless_unit(sim, std::move(name), fp32_core(), cfg);
}

StatelessFn trig_core() {
  return [](isa::VarietyCode v, isa::Word a, isa::Word b, isa::FlagWord) {
    const isa::trig::Result r = isa::trig::evaluate(v, a, b);
    return StatelessOut{r.value, r.flags, r.write_data, /*write_flags=*/true};
  };
}

std::unique_ptr<FunctionalUnit> make_trig_unit(sim::Simulator& sim,
                                               StatelessConfig cfg,
                                               std::string name) {
  if (cfg.skeleton == Skeleton::kFsm && cfg.execute_cycles <= 1) {
    cfg.execute_cycles = isa::trig::kIterations;  // one rotation per clock
  }
  return make_stateless_unit(sim, std::move(name), trig_core(), cfg);
}

}  // namespace fpgafu::fu
