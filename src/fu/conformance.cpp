#include "fu/conformance.hpp"

namespace fpgafu::fu {

void ConformanceMonitor::violation(const std::string& what) {
  violations_.push_back("cycle " + std::to_string(simulator().cycle()) + ": " +
                        what);
}

void ConformanceMonitor::commit() {
  const bool ready = ports_->data_ready.get();
  const bool ack = ports_->data_acknowledge.get();
  const bool dispatch = ports_->dispatch.get();
  const bool idle = ports_->idle.get();

  if (dispatch) {
    if (!idle) {
      violation("dispatch asserted while unit not idle");
    }
    ++dispatches_;
  }
  if (ready && ack) {
    ++completions_;
  }

  // V1: ready was pending (asserted, unacknowledged) last cycle => it must
  // still be asserted now.
  if (prev_ready_ && !prev_acked_ && !ready) {
    violation("data_ready withdrawn before acknowledgement");
  }
  // V2: while pending, the result bundle must not change.
  if (prev_ready_ && !prev_acked_ && ready &&
      !(ports_->result.get() == prev_result_)) {
    violation("result changed while data_ready pending");
  }

  prev_ready_ = ready;
  prev_acked_ = ready && ack;
  prev_result_ = ports_->result.get();
}

void ConformanceMonitor::check_drained() {
  if (completions_ != dispatches_) {
    violation("drained with " + std::to_string(dispatches_) +
              " dispatches but " + std::to_string(completions_) +
              " completions");
  }
  // Note: we deliberately check the *observed* pending state, not the live
  // data_ready wire — after the simulator stops, wires hold the values of
  // the last settled cycle, which may predate the final register update.
  if (prev_ready_ && !prev_acked_) {
    violation("drained but a result is still pending unacknowledged");
  }
}

void ConformanceMonitor::reset() {
  violations_.clear();
  prev_ready_ = false;
  prev_acked_ = false;
  prev_result_ = FuResult{};
  dispatches_ = 0;
  completions_ = 0;
}

}  // namespace fpgafu::fu
