#pragma once

#include <functional>
#include <string>

#include "fu/ports.hpp"
#include "sim/component.hpp"

namespace fpgafu::fu {

/// Data-path output of a stateless operation (before destination routing).
struct StatelessOut {
  isa::Word value = 0;
  isa::FlagWord flags = 0;
  bool write_data = false;
  bool write_flags = true;
};

/// The combinational core of a stateless functional unit: a pure function
/// of variety code, two operands and an input flag vector — the "black box
/// circuit" of paper Fig. 5.
using StatelessFn =
    std::function<StatelessOut(isa::VarietyCode, isa::Word, isa::Word,
                               isa::FlagWord)>;

/// Base class for every functional unit: a simulated hardware block with
/// the framework's standard port bundle.
class FunctionalUnit : public sim::Component {
 public:
  FunctionalUnit(sim::Simulator& sim, std::string name)
      : Component(sim, std::move(name)), ports(sim) {}

  FuPorts ports;

  /// True when the given operation writes a *second* data register
  /// (request.dst_reg2) through an additional arbiter transaction — the
  /// thesis Fig. 2.18 "Send Data 1 / Send Data 2" sequence.  The
  /// dispatcher locks dst_reg2 for such operations.
  virtual bool writes_second(isa::VarietyCode) const { return false; }

  /// Number of operations this unit has completed (acknowledged writes).
  std::uint64_t completed() const { return completed_; }

  void reset() override {
    ports.reset();
    completed_ = 0;
  }

 protected:
  std::uint64_t completed_ = 0;
};

}  // namespace fpgafu::fu
