#pragma once

#include "isa/types.hpp"
#include "sim/signal.hpp"

namespace fpgafu::fu {

/// The operand bundle the dispatcher presents to a functional unit on a
/// dispatch cycle — the paper Fig. 5 input signals (`variety_code`,
/// `data_input`, `data_output_reg`, plus the flag inputs of the full
/// framework).
struct FuRequest {
  isa::VarietyCode variety = 0;
  isa::Word operand1 = 0;
  isa::Word operand2 = 0;
  isa::FlagWord flags_in = 0;
  isa::RegNum dst_reg = 0;
  isa::RegNum dst_flag_reg = 0;
  /// Second data destination for dual-output operations (thesis Fig. 2.18's
  /// "Send Data 1 / Send Data 2" path); carried in the instruction's aux
  /// field.  Ignored by single-output units.
  isa::RegNum dst_reg2 = 0;

  bool operator==(const FuRequest&) const = default;
};

/// The completion bundle a functional unit presents to the write arbiter —
/// Fig. 5's `data_output` / `data_output_reg` plus the flag outputs.
struct FuResult {
  isa::Word data = 0;
  isa::FlagWord flags = 0;
  isa::RegNum dst_reg = 0;
  isa::RegNum dst_flag_reg = 0;
  bool write_data = false;   ///< write `data` to dst_reg
  bool write_flags = false;  ///< write `flags` to dst_flag_reg
  /// The write arbiter releases dst_reg's lock on every transaction, and
  /// dst_flag_reg's only when this is set.  A dual-output operation's
  /// second transaction (the thesis' "Send Data 2") clears it, because the
  /// flag lock was already released with the first record.
  bool unlock_flag_reg = true;

  bool operator==(const FuResult&) const = default;
};

/// The standard signal protocol between the controller and every functional
/// unit (paper §II: "Each functional unit is designed to interact with the
/// central interface using a standard signal protocol, which is defined by
/// the framework").
///
/// Cycle semantics:
///  * The dispatcher may assert `dispatch` (with `request` valid) only on a
///    cycle where the unit asserts `idle`.
///  * The unit asserts `data_ready` (with `result` valid) when it has a
///    completion pending for the write arbiter; it must hold both stable
///    until the arbiter pulses `data_acknowledge`.
///  * `idle` may depend combinationally on `data_acknowledge` (the thesis'
///    forwarding trick that allows accepting one instruction per cycle, at
///    the cost of critical-path length).
struct FuPorts {
  explicit FuPorts(sim::Simulator& sim)
      : dispatch(sim),
        request(sim),
        idle(sim),
        data_ready(sim),
        result(sim),
        data_acknowledge(sim) {}

  // Dispatcher -> unit.
  sim::Wire<bool> dispatch;
  sim::Wire<FuRequest> request;
  // Unit -> dispatcher.
  sim::Wire<bool> idle;
  // Unit -> write arbiter.
  sim::Wire<bool> data_ready;
  sim::Wire<FuResult> result;
  // Write arbiter -> unit.
  sim::Wire<bool> data_acknowledge;

  void reset() {
    dispatch.reset();
    request.reset();
    idle.reset();
    data_ready.reset();
    result.reset();
    data_acknowledge.reset();
  }
};

}  // namespace fpgafu::fu
