#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fu/functional_unit.hpp"
#include "sim/signal.hpp"

namespace fpgafu::fu {

/// Output of a dual-result operation.
struct DualOut {
  StatelessOut first;        ///< primary result (dst_reg) + flags
  isa::Word second = 0;      ///< secondary result (dst_reg2)
  bool has_second = false;   ///< whether the Send-Data-2 transaction occurs
};

using DualFn = std::function<DualOut(isa::VarietyCode, isa::Word, isa::Word,
                                     isa::FlagWord)>;

/// FSM skeleton with the thesis Fig. 2.18 two-record completion path:
/// Idle -> Execute(k) -> Send Data 1 (+flags) -> [Send Data 2] -> Idle.
///
/// Operations whose DualOut reports `has_second` retire through two
/// sequential write-arbiter transactions; the first carries the flags and
/// releases the flag-register lock, the second carries only dst_reg2.
/// The `second_pred` predicate mirrors `has_second` for the dispatcher
/// (which must lock dst_reg2 before the operands are even computed).
class DualFsmFu : public FunctionalUnit {
 public:
  using SecondPredicate = std::function<bool(isa::VarietyCode)>;

  DualFsmFu(sim::Simulator& sim, std::string name, DualFn fn,
            SecondPredicate second_pred, std::uint32_t execute_cycles = 1)
      : FunctionalUnit(sim, std::move(name)),
        fn_(std::move(fn)),
        second_pred_(std::move(second_pred)),
        execute_cycles_(execute_cycles) {}

  bool writes_second(isa::VarietyCode variety) const override {
    return second_pred_(variety);
  }

  void eval() override {
    ports.idle.set(state_ == State::kIdle);
    ports.data_ready.set(state_ == State::kOutput1 ||
                         state_ == State::kOutput2);
    ports.result.set(state_ == State::kOutput2 ? out2_ : out1_);
  }

  void commit() override {
    // All clocked state here is plain fields: self-report activity whenever
    // the FSM is (or is about to be) off the idle state.
    if (state_ != State::kIdle || ports.dispatch.get()) {
      mark_active();
    }
    switch (state_) {
      case State::kIdle:
        if (ports.dispatch.get()) {
          pending_req_ = ports.request.get();
          countdown_ = execute_cycles_;
          state_ = State::kExecute;
        }
        break;
      case State::kExecute:
        if (countdown_ <= 1) {
          const FuRequest& req = pending_req_;
          const DualOut o =
              fn_(req.variety, req.operand1, req.operand2, req.flags_in);
          out1_.data = o.first.value;
          out1_.flags = o.first.flags;
          out1_.dst_reg = req.dst_reg;
          out1_.dst_flag_reg = req.dst_flag_reg;
          out1_.write_data = o.first.write_data;
          out1_.write_flags = o.first.write_flags;
          out1_.unlock_flag_reg = true;
          if (o.has_second) {
            out2_.data = o.second;
            out2_.flags = 0;
            out2_.dst_reg = req.dst_reg2;
            out2_.dst_flag_reg = req.dst_flag_reg;
            out2_.write_data = true;
            out2_.write_flags = false;
            out2_.unlock_flag_reg = false;
            have_second_ = true;
          } else {
            have_second_ = false;
          }
          state_ = State::kOutput1;
        } else {
          --countdown_;
        }
        break;
      case State::kOutput1:
        if (ports.data_acknowledge.get()) {
          if (have_second_) {
            state_ = State::kOutput2;
          } else {
            ++completed_;
            state_ = State::kIdle;
          }
        }
        break;
      case State::kOutput2:
        if (ports.data_acknowledge.get()) {
          ++completed_;
          state_ = State::kIdle;
        }
        break;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    state_ = State::kIdle;
    countdown_ = 0;
    have_second_ = false;
    out1_ = FuResult{};
    out2_ = FuResult{};
  }

 private:
  enum class State : std::uint8_t { kIdle, kExecute, kOutput1, kOutput2 };

  DualFn fn_;
  SecondPredicate second_pred_;
  std::uint32_t execute_cycles_;
  State state_ = State::kIdle;
  FuRequest pending_req_;
  std::uint32_t countdown_ = 0;
  bool have_second_ = false;
  FuResult out1_;
  FuResult out2_;
};

}  // namespace fpgafu::fu
