#pragma once

#include <cstddef>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/types.hpp"

namespace fpgafu::isa {

/// A host-to-coprocessor instruction stream: 64-bit words, where a PUT
/// instruction is followed inline by its data word (this is the "packets of
/// data" stream the host sends; the message buffer feeds it to the decoder
/// word by word).
class Program {
 public:
  /// Append an instruction word.
  void emit(const Instruction& inst);

  /// Append a PUT instruction plus its inline data word.
  void emit_put(RegNum dst, Word value);

  /// Append a vector PUT: one header word plus values.size() data words
  /// loading registers base .. base+values.size()-1.  At most 255 values.
  void emit_put_vec(RegNum base, const std::vector<Word>& values);

  /// Append a vector GET of `count` registers starting at `base` (`count`
  /// data responses).
  void emit_get_vec(RegNum base, std::uint8_t count);

  /// Append a raw word (used by the assembler for inline data).
  void emit_raw(Word word);

  const std::vector<Word>& words() const { return words_; }
  std::size_t size_words() const { return words_.size(); }

  /// Number of *instructions* (inline data words excluded).
  std::size_t instruction_count() const { return instructions_; }

  /// Number of responses this program will generate (GET/GETF/SYNC each
  /// produce exactly one).  The host driver uses this to know how many
  /// responses to collect.
  std::size_t expected_responses() const { return responses_; }

  void clear();

 private:
  std::vector<Word> words_;
  std::size_t instructions_ = 0;
  std::size_t responses_ = 0;
};

}  // namespace fpgafu::isa
