#include "isa/instruction.hpp"

#include <cstdio>

#include "util/bits.hpp"

namespace fpgafu::isa {

Word Instruction::encode() const {
  using namespace ifield;
  Word w = 0;
  w = bits::with_field(w, kFunctionHi, kFunctionLo, function);
  w = bits::with_field(w, kVarietyHi, kVarietyLo, variety);
  w = bits::with_field(w, kDstFlagHi, kDstFlagLo, dst_flag);
  w = bits::with_field(w, kDst1Hi, kDst1Lo, dst1);
  w = bits::with_field(w, kSrcFlagHi, kSrcFlagLo, src_flag);
  w = bits::with_field(w, kSrc2Hi, kSrc2Lo, src2);
  w = bits::with_field(w, kSrc1Hi, kSrc1Lo, src1);
  w = bits::with_field(w, kAuxHi, kAuxLo, aux);
  return w;
}

Instruction Instruction::decode(Word word) {
  using namespace ifield;
  Instruction inst;
  inst.function = static_cast<FunctionCode>(bits::field(word, kFunctionHi, kFunctionLo));
  inst.variety = static_cast<VarietyCode>(bits::field(word, kVarietyHi, kVarietyLo));
  inst.dst_flag = static_cast<RegNum>(bits::field(word, kDstFlagHi, kDstFlagLo));
  inst.dst1 = static_cast<RegNum>(bits::field(word, kDst1Hi, kDst1Lo));
  inst.src_flag = static_cast<RegNum>(bits::field(word, kSrcFlagHi, kSrcFlagLo));
  inst.src2 = static_cast<RegNum>(bits::field(word, kSrc2Hi, kSrc2Lo));
  inst.src1 = static_cast<RegNum>(bits::field(word, kSrc1Hi, kSrc1Lo));
  inst.aux = static_cast<std::uint8_t>(bits::field(word, kAuxHi, kAuxLo));
  return inst;
}

std::string to_string(const Instruction& inst) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "fc=0x%02x vc=0x%02x dst=r%u f%u src=r%u,r%u f%u aux=%u",
                inst.function, inst.variety, inst.dst1, inst.dst_flag,
                inst.src1, inst.src2, inst.src_flag, inst.aux);
  return buf;
}

}  // namespace fpgafu::isa
