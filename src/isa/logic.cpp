#include "isa/logic.hpp"

#include "util/bits.hpp"

namespace fpgafu::isa::logic {

Result evaluate(VarietyCode variety, Word a, Word b, unsigned width) {
  const Word wmask = bits::mask(width);
  const std::uint8_t table =
      static_cast<std::uint8_t>(bits::field(variety, vc::kTableHi, vc::kTableLo));

  // Bitwise LUT2: expand the four truth-table entries into mask algebra so
  // the evaluation is word-parallel (this is also how a synthesiser would
  // fold the LUT into AND/OR terms).
  Word result = 0;
  if (bits::bit(table, 0)) result |= ~a & ~b;  // a=0 b=0
  if (bits::bit(table, 1)) result |= ~a & b;   // a=0 b=1
  if (bits::bit(table, 2)) result |= a & ~b;   // a=1 b=0
  if (bits::bit(table, 3)) result |= a & b;    // a=1 b=1
  result &= wmask;

  Result r;
  r.value = result;
  r.write_data = bits::bit(variety, vc::kOutputData);
  r.flags = 0;
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kZero, result == 0));
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kNegative, bits::bit(result, width - 1)));
  return r;
}

}  // namespace fpgafu::isa::logic
