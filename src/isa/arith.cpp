#include "isa/arith.hpp"

#include "util/bits.hpp"

namespace fpgafu::isa::arith {

Result evaluate(VarietyCode variety, Word a, Word b, FlagWord flags_in,
                unsigned width) {
  const Word wmask = bits::mask(width);

  // Input muxing (thesis Table 3.1 control columns).
  Word in1 = bits::bit(variety, vc::kFirstZero) ? 0 : (a & wmask);
  Word in2 = bits::bit(variety, vc::kSecondZero) ? 0 : (b & wmask);
  if (bits::bit(variety, vc::kComplementSecond)) {
    in2 = ~in2 & wmask;
  }
  Word carry_in = 0;
  if (bits::bit(variety, vc::kUseCarry)) {
    carry_in = bits::bit(flags_in, flag::kCarry) ? 1 : 0;
  } else if (bits::bit(variety, vc::kFixedCarry)) {
    carry_in = 1;
  }

  // One adder, width+1 bits of significance for the carry out.
  const auto [sum, carry_out] =
      bits::add_with_carry(in1, in2, carry_in != 0, width);

  const bool msb1 = bits::bit(in1, width - 1);
  const bool msb2 = bits::bit(in2, width - 1);
  const bool msbr = bits::bit(sum, width - 1);

  Result r;
  r.value = sum;
  r.write_data = bits::bit(variety, vc::kOutputData);
  r.flags = 0;
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kCarry, carry_out));
  r.flags = static_cast<FlagWord>(bits::with_bit(r.flags, flag::kZero, sum == 0));
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kNegative, msbr));
  // Signed overflow: both addends share a sign that differs from the sum's.
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kOverflow, msb1 == msb2 && msbr != msb1));
  return r;
}

}  // namespace fpgafu::isa::arith
