#include "isa/trig.hpp"

#include <array>
#include <cmath>

#include "util/bits.hpp"

namespace fpgafu::isa::trig {
namespace {

/// Sub-BAM angle precision: the z accumulator carries 16 bits below one
/// BAM unit (turn = 2^48), so thirty rounded ROM entries accumulate far
/// less than one output LSB of angle error.
constexpr unsigned kAngleGuardBits = 16;

/// Arctangent ROM: atan(2^-i) in guarded BAM units (turn * 2^48).
/// Computed once at start-up — this models the synthesised ROM contents;
/// the datapath itself is integer-only.
const std::array<std::int64_t, kIterations>& atan_rom() {
  static const auto rom = [] {
    std::array<std::int64_t, kIterations> t{};
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    for (unsigned i = 0; i < kIterations; ++i) {
      const double atan_val = std::atan(std::ldexp(1.0, -static_cast<int>(i)));
      t[i] = static_cast<std::int64_t>(std::llround(
          atan_val / kTwoPi *
          std::ldexp(1.0, 32 + static_cast<int>(kAngleGuardBits))));
    }
    return t;
  }();
  return rom;
}

/// Internal x/y precision: Q1.40 (10 guard bits below the Q1.30 result, so
/// per-iteration truncation stays well under one output LSB).
constexpr unsigned kGuardBits = 10;

/// CORDIC gain compensation: K = prod(1/sqrt(1 + 2^-2i)), pre-loaded into
/// the initial x so no multiplier is needed.  Q1.40.
std::int64_t initial_x() {
  static const std::int64_t x0 = [] {
    double k = 1.0;
    for (unsigned i = 0; i < kIterations; ++i) {
      k /= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
    }
    return static_cast<std::int64_t>(
        std::llround(k * std::ldexp(1.0, 30 + static_cast<int>(kGuardBits))));
  }();
  return x0;
}

/// Round a Q1.40 value to Q1.30.
std::int32_t round_q30(std::int64_t v) {
  return static_cast<std::int32_t>((v + (std::int64_t{1} << (kGuardBits - 1)))
                                   >> kGuardBits);
}

}  // namespace

SinCos cordic_sincos(std::uint32_t bam_angle) {
  // Quadrant reduction to [-quarter, +quarter] turn: rotation-mode CORDIC
  // converges for |angle| <= ~99.9 degrees.
  auto z = static_cast<std::int64_t>(static_cast<std::int32_t>(bam_angle))
           << kAngleGuardBits;
  constexpr std::int64_t kQuarter = std::int64_t{1}
                                    << (30 + kAngleGuardBits);  // 90 degrees
  constexpr std::int64_t kHalf = std::int64_t{1}
                                 << (31 + kAngleGuardBits);  // 180 degrees
  bool negate = false;
  if (z > kQuarter) {
    z -= kHalf;
    negate = true;  // sin/cos(theta) = -sin/cos(theta - 180 deg)
  } else if (z < -kQuarter) {
    z += kHalf;
    negate = true;
  }

  std::int64_t x = initial_x();
  std::int64_t y = 0;
  const auto& rom = atan_rom();
  for (unsigned i = 0; i < kIterations; ++i) {
    const std::int64_t xs = x >> i;  // arithmetic shifts: the barrel wires
    const std::int64_t ys = y >> i;
    if (z >= 0) {
      x -= ys;
      y += xs;
      z -= rom[i];
    } else {
      x += ys;
      y -= xs;
      z += rom[i];
    }
  }
  if (negate) {
    x = -x;
    y = -y;
  }
  return {round_q30(y), round_q30(x)};
}

Result evaluate(VarietyCode v, Word a, Word /*b*/) {
  const auto angle = static_cast<std::uint32_t>(a & 0xffffffffu);
  const auto op = static_cast<Op>(bits::field(v, vc::kOpHi, vc::kOpLo));
  const SinCos sc = cordic_sincos(angle);
  const std::int32_t value = op == Op::kSin ? sc.sin : sc.cos;

  Result r;
  r.value = static_cast<std::uint32_t>(value);
  r.write_data = bits::bit(v, vc::kOutputData);
  r.flags = 0;
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kZero, value == 0));
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kNegative, value < 0));
  return r;
}

}  // namespace fpgafu::isa::trig
