#include "isa/program.hpp"

#include "util/error.hpp"

namespace fpgafu::isa {

void Program::emit(const Instruction& inst) {
  words_.push_back(inst.encode());
  ++instructions_;
  if (inst.function == fc::kRtm) {
    const auto op = static_cast<RtmOp>(inst.variety);
    if (op == RtmOp::kGet || op == RtmOp::kGetFlags || op == RtmOp::kSync) {
      ++responses_;
    } else if (op == RtmOp::kGetVec) {
      responses_ += inst.aux;
    }
  }
}

void Program::emit_put_vec(RegNum base, const std::vector<Word>& values) {
  check(values.size() <= 255, "PUTV bursts carry at most 255 words");
  Instruction putv;
  putv.function = fc::kRtm;
  putv.variety = static_cast<VarietyCode>(RtmOp::kPutVec);
  putv.dst1 = base;
  putv.aux = static_cast<std::uint8_t>(values.size());
  emit(putv);
  for (const Word v : values) {
    emit_raw(v);
  }
}

void Program::emit_get_vec(RegNum base, std::uint8_t count) {
  Instruction getv;
  getv.function = fc::kRtm;
  getv.variety = static_cast<VarietyCode>(RtmOp::kGetVec);
  getv.src1 = base;
  getv.aux = count;
  emit(getv);  // emit() accounts for the aux responses
}

void Program::emit_put(RegNum dst, Word value) {
  Instruction put;
  put.function = fc::kRtm;
  put.variety = static_cast<VarietyCode>(RtmOp::kPut);
  put.dst1 = dst;
  emit(put);
  emit_raw(value);
}

void Program::emit_raw(Word word) { words_.push_back(word); }

void Program::clear() {
  words_.clear();
  instructions_ = 0;
  responses_ = 0;
}

}  // namespace fpgafu::isa
