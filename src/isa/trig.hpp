#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::trig {

/// Trigonometric unit (function code fc::kTrig) — the paper's third named
/// stateless example ("examples of stateless functional units are
/// arithmetic units, trigonometric function calculators, etc.", §IV-A).
///
/// The datapath is a classic CORDIC rotator: shift-and-add iterations, one
/// arctangent ROM entry per iteration, no multiplier — precisely the
/// structure an FPGA implementation uses, and another natural resident of
/// the FSM skeleton (one iteration per clock).
///
/// Fixed-point conventions (hardware-friendly, no floating point anywhere):
///  * Angles are *binary angular measurement* (BAM): the low 32 bits of the
///    operand are an unsigned turn fraction, full circle = 2^32.  Angle
///    wrap-around is free.
///  * Results are signed Q1.30 in the low 32 bits: sin/cos in [-1, 1]
///    map to [-2^30, 2^30].
namespace vc {
inline constexpr unsigned kOpLo = 0;  ///< bits [2:0]: operation select
inline constexpr unsigned kOpHi = 2;
inline constexpr unsigned kOutputData = 4;
}  // namespace vc

enum class Op : std::uint8_t {
  kSin = 0,  ///< Q1.30 sine of the BAM angle in operand1
  kCos = 1,  ///< Q1.30 cosine
};

inline constexpr std::array<Op, 2> kAllOps = {Op::kSin, Op::kCos};

constexpr VarietyCode variety(Op op) {
  return static_cast<VarietyCode>(static_cast<std::uint8_t>(op) |
                                  (1u << vc::kOutputData));
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kSin: return "SIN";
    case Op::kCos: return "COS";
  }
  return "?";
}

/// Number of CORDIC iterations (one clock each on the FSM skeleton).
inline constexpr unsigned kIterations = 30;

struct Result {
  Word value = 0;  ///< signed Q1.30 in the low 32 bits
  FlagWord flags = 0;
  bool write_data = false;
};

/// Reference semantics: integer-only CORDIC.
Result evaluate(VarietyCode variety, Word a, Word b);

/// Raw kernel, exposed for the tests: sine and cosine (Q1.30) of a BAM
/// angle.
struct SinCos {
  std::int32_t sin;
  std::int32_t cos;
};
SinCos cordic_sincos(std::uint32_t bam_angle);

}  // namespace fpgafu::isa::trig
