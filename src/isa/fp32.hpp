#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::fp32 {

/// IEEE-754 single-precision floating-point unit (function code
/// fc::kFloat).
///
/// The paper's introduction names floating point as the canonical
/// hardware-accelerated operation ("one example of this is to provide
/// floating point operations in hardware, rather than performing them in
/// software").  This unit is a complete soft-float core built from integer
/// operations only — the same datapath an FPGA implementation would
/// synthesise: unpack, align/normalise shifts, a 24-bit significand
/// adder/multiplier/divider, and round-to-nearest-even with guard/sticky
/// logic.  Results are bit-exact IEEE-754 (including subnormals, signed
/// zeros, infinities and NaN propagation), which the tests verify against
/// the host FPU.
///
/// Flag outputs: kZero (result is ±0), kNegative (sign bit), kOverflow
/// (finite operands produced an infinity), kError (invalid operation or
/// division by zero — the thesis' undefined-destination convention).
namespace vc {
inline constexpr unsigned kOpLo = 0;  ///< bits [2:0]: operation select
inline constexpr unsigned kOpHi = 2;
inline constexpr unsigned kOutputData = 4;
}  // namespace vc

enum class Op : std::uint8_t {
  kFadd = 0,
  kFsub = 1,
  kFmul = 2,
  kFdiv = 3,
  kFcmp = 4,  ///< flags only: kZero = equal, kNegative = a < b, kError = unordered
};

inline constexpr std::array<Op, 5> kAllOps = {Op::kFadd, Op::kFsub, Op::kFmul,
                                              Op::kFdiv, Op::kFcmp};

constexpr VarietyCode variety(Op op) {
  const bool writes = op != Op::kFcmp;
  return static_cast<VarietyCode>(static_cast<std::uint8_t>(op) |
                                  (writes ? (1u << vc::kOutputData) : 0u));
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kFadd: return "FADD";
    case Op::kFsub: return "FSUB";
    case Op::kFmul: return "FMUL";
    case Op::kFdiv: return "FDIV";
    case Op::kFcmp: return "FCMP";
  }
  return "?";
}

struct Result {
  Word value = 0;  ///< raw IEEE-754 bit pattern in the low 32 bits
  FlagWord flags = 0;
  bool write_data = false;
};

/// Evaluate one operation on raw IEEE-754 bit patterns (low 32 bits of the
/// operands).
Result evaluate(VarietyCode variety, Word a, Word b);

// Low-level soft-float primitives, exposed for the tests.
std::uint32_t soft_add(std::uint32_t a, std::uint32_t b);
std::uint32_t soft_mul(std::uint32_t a, std::uint32_t b);
std::uint32_t soft_div(std::uint32_t a, std::uint32_t b);

}  // namespace fpgafu::isa::fp32
