#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::logic {

/// Variety code of the logic unit (reconstruction of thesis Table 3.2).
///
/// The unit applies one 2-input boolean function bitwise across the
/// operands.  In the spirit of the arithmetic unit's derived encoding —
/// and of the FPGA itself — the function is encoded *directly as its truth
/// table* in the low nibble of the variety code: result bit i is
/// `table[(a_i << 1) | b_i]`, exactly an FPGA LUT2 INIT vector.  All 16
/// two-input functions therefore exist; Table 3.2's named operations are
/// particular rows.
namespace vc {
inline constexpr unsigned kTableLo = 0;    ///< bits [3:0]: LUT2 truth table
inline constexpr unsigned kTableHi = 3;
inline constexpr unsigned kOutputData = 4; ///< write result to destination reg
}  // namespace vc

/// Named rows of the reconstructed Table 3.2.
enum class Op : std::uint8_t {
  kAnd,    ///< a & b          table 0b1000
  kOr,     ///< a | b          table 0b1110
  kXor,    ///< a ^ b          table 0b0110
  kNand,   ///< ~(a & b)       table 0b0111
  kNor,    ///< ~(a | b)       table 0b0001
  kXnor,   ///< ~(a ^ b)       table 0b1001
  kNot,    ///< ~b  (second operand, matching NEG's convention) table 0b0101
  kAndn,   ///< a & ~b         table 0b0010  (bit clear)
  kOrn,    ///< a | ~b         table 0b1011
  kPass,   ///< a              table 0b1100  (move through the unit)
  kClear,  ///< 0              table 0b0000
  kSet,    ///< all ones       table 0b1111
};

inline constexpr std::array<Op, 12> kAllOps = {
    Op::kAnd, Op::kOr,  Op::kXor,  Op::kNand, Op::kNor,   Op::kXnor,
    Op::kNot, Op::kAndn, Op::kOrn, Op::kPass, Op::kClear, Op::kSet};

/// Truth table (LUT2 INIT) for a named operation.  Index = (a << 1) | b.
constexpr std::uint8_t truth_table(Op op) {
  switch (op) {
    case Op::kAnd: return 0b1000;
    case Op::kOr: return 0b1110;
    case Op::kXor: return 0b0110;
    case Op::kNand: return 0b0111;
    case Op::kNor: return 0b0001;
    case Op::kXnor: return 0b1001;
    case Op::kNot: return 0b0101;
    case Op::kAndn: return 0b0100;
    case Op::kOrn: return 0b1101;
    case Op::kPass: return 0b1100;
    case Op::kClear: return 0b0000;
    case Op::kSet: return 0b1111;
  }
  return 0;
}

constexpr VarietyCode variety(Op op) {
  return static_cast<VarietyCode>(truth_table(op) | (1u << vc::kOutputData));
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kAnd: return "AND";
    case Op::kOr: return "OR";
    case Op::kXor: return "XOR";
    case Op::kNand: return "NAND";
    case Op::kNor: return "NOR";
    case Op::kXnor: return "XNOR";
    case Op::kNot: return "NOT";
    case Op::kAndn: return "ANDN";
    case Op::kOrn: return "ORN";
    case Op::kPass: return "PASS";
    case Op::kClear: return "CLEAR";
    case Op::kSet: return "SET";
  }
  return "?";
}

struct Result {
  Word value = 0;
  FlagWord flags = 0;  ///< zero / negative
  bool write_data = false;
};

/// Reference semantics: bitwise LUT2 application plus zero/negative flags.
Result evaluate(VarietyCode variety, Word a, Word b, unsigned width);

}  // namespace fpgafu::isa::logic
