#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::muldiv {

/// Multiply/divide unit (function code fc::kMulDiv).
///
/// The thesis motivates the error flag with exactly this unit's hazard:
/// "... condition, e.g. a division by zero.  If this flag is set, the
/// contents of the destination registers (if any) are undefined by
/// specification" (§3.2.1).  Division by zero — and the signed-overflow
/// case MIN/-1 — set flag::kError and leave an unspecified result.
///
/// Hardware-wise the unit is the canonical *multi-cycle* stateless unit:
/// a sequential shift-add multiplier / restoring divider iterating one bit
/// per clock, i.e. the FSM skeleton with `execute_cycles = width`.
namespace vc {
inline constexpr unsigned kOpLo = 0;  ///< bits [2:0]: operation select
inline constexpr unsigned kOpHi = 2;
inline constexpr unsigned kOutputData = 4;
}  // namespace vc

enum class Op : std::uint8_t {
  kMul = 0,   ///< low word of a * b (unsigned; low word equals signed too)
  kMulh = 1,  ///< high word of unsigned a * b
  kSmulh = 2, ///< high word of signed a * b
  kDiv = 3,   ///< unsigned quotient a / b
  kRem = 4,   ///< unsigned remainder a % b
  kSdiv = 5,  ///< signed quotient (truncated toward zero)
  kSrem = 6,  ///< signed remainder (sign of the dividend)
  /// Dual-output divide: quotient to dst1, remainder to the second
  /// destination (aux field) — the restoring divider produces both anyway,
  /// and the thesis' Fig. 2.18 FSM has the "Send Data 1 / Send Data 2"
  /// path to retire them.  Requires dst1 != dst2.
  kDivMod = 7,
};

inline constexpr std::array<Op, 8> kAllOps = {
    Op::kMul, Op::kMulh, Op::kSmulh, Op::kDiv,
    Op::kRem, Op::kSdiv,  Op::kSrem, Op::kDivMod};

constexpr VarietyCode variety(Op op) {
  return static_cast<VarietyCode>(static_cast<std::uint8_t>(op) |
                                  (1u << vc::kOutputData));
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kMul: return "MUL";
    case Op::kMulh: return "MULH";
    case Op::kSmulh: return "SMULH";
    case Op::kDiv: return "DIV";
    case Op::kRem: return "REM";
    case Op::kSdiv: return "SDIV";
    case Op::kSrem: return "SREM";
    case Op::kDivMod: return "DIVMOD";
  }
  return "?";
}

struct Result {
  Word value = 0;
  FlagWord flags = 0;  ///< zero / negative / error (divide-by-zero, MIN/-1)
  bool write_data = false;
  Word value2 = 0;          ///< second result (kDivMod's remainder)
  bool has_second = false;  ///< whether value2 is produced
};

/// Reference semantics.  The 64x64 -> 128 bit products are built from
/// 32-bit limbs (no compiler extensions), the same decomposition the
/// sequential hardware uses.
Result evaluate(VarietyCode variety, Word a, Word b, unsigned width);

/// Full product of two width-bit unsigned values: {low word, high word}.
struct WideProduct {
  Word lo;
  Word hi;
};
WideProduct umul_wide(Word a, Word b, unsigned width);

}  // namespace fpgafu::isa::muldiv
