#pragma once

#include <cstdint>

/// Fundamental ISA-level types shared by the RTM, the functional units and
/// the host driver.
namespace fpgafu::isa {

/// Register-file data word.  The paper's register file word size is
/// configurable in multiples of 32 bits; this model carries words in a
/// 64-bit container and supports configured widths of 32 and 64 bits
/// (wider words would need a multi-word container and are out of scope —
/// see DESIGN.md §2).
using Word = std::uint64_t;

/// A flag-register word: a small vector of condition flags (the paper's
/// secondary register file "holding vectors of flags").
using FlagWord = std::uint8_t;

/// Register number within the main or flag register file.
using RegNum = std::uint8_t;

/// Function code: selects the functional unit (or the RTM itself) that
/// executes an instruction.  Occupies instruction bits [63:56].
using FunctionCode = std::uint8_t;

/// Variety code: per-unit operation modifier bits, instruction bits [55:48].
/// For the arithmetic unit these are the Table 3.1 control columns; for the
/// logic unit the low nibble is the 2-input truth table (an FPGA LUT2 init).
using VarietyCode = std::uint8_t;

/// Flag bit positions within a FlagWord.
namespace flag {
inline constexpr unsigned kCarry = 0;     ///< carry out (ARM convention: subtract sets carry when no borrow)
inline constexpr unsigned kZero = 1;      ///< result == 0
inline constexpr unsigned kNegative = 2;  ///< result MSB
inline constexpr unsigned kOverflow = 3;  ///< signed overflow
inline constexpr unsigned kError = 4;     ///< unit-defined error (destination contents undefined when set)
}  // namespace flag

/// Well-known function codes.  User-defined units occupy kUserBase and up.
namespace fc {
inline constexpr FunctionCode kRtm = 0x00;    ///< executed directly in the RTM main pipeline
inline constexpr FunctionCode kArith = 0x10;  ///< stateless arithmetic unit (thesis Table 3.1)
inline constexpr FunctionCode kLogic = 0x11;  ///< stateless logic unit (thesis Table 3.2)
inline constexpr FunctionCode kShift = 0x12;  ///< stateless shift/rotate unit (extension)
inline constexpr FunctionCode kMulDiv = 0x13; ///< multi-cycle multiply/divide unit
inline constexpr FunctionCode kFloat = 0x14;  ///< IEEE-754 single-precision unit
inline constexpr FunctionCode kTrig = 0x15;   ///< CORDIC trigonometric unit
inline constexpr FunctionCode kXsort = 0x20;  ///< stateful chi-sort SIMD engine (thesis §3.3)
inline constexpr FunctionCode kUserBase = 0x40;
}  // namespace fc

}  // namespace fpgafu::isa
