#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>
#include <optional>

#include "isa/arith.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/shift.hpp"
#include "isa/trig.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::isa {
namespace {

/// Which instruction field an operand slot fills.
enum class Slot {
  kDst,       // rN -> dst1
  kDst2,      // rN -> aux (second data destination of dual-output ops)
  kSrc1,      // rN -> src1
  kSrc2,      // rN -> src2
  kSrcFlag,   // fN -> src_flag
  kDstFlag,   // fN -> dst_flag
  kImmAux,    // imm8 -> aux
  kImmWord,   // #imm64 -> inline data word
};

struct Signature {
  FunctionCode function;
  VarietyCode variety;
  std::vector<Slot> required;
  std::vector<Slot> optional;  // may be present as a trailing suffix
};

const std::map<std::string, Signature, std::less<>>& mnemonic_table() {
  static const auto* table = [] {
    auto* t = new std::map<std::string, Signature, std::less<>>;
    auto rtm = [&](std::string name, RtmOp op, std::vector<Slot> req) {
      (*t)[std::move(name)] =
          Signature{fc::kRtm, static_cast<VarietyCode>(op), std::move(req), {}};
    };
    rtm("NOP", RtmOp::kNop, {});
    rtm("SYNC", RtmOp::kSync, {});
    rtm("COPY", RtmOp::kCopy, {Slot::kDst, Slot::kSrc1});
    rtm("COPYF", RtmOp::kCopyFlags, {Slot::kDstFlag, Slot::kSrcFlag});
    rtm("PUT", RtmOp::kPut, {Slot::kDst, Slot::kImmWord});
    rtm("PUTI", RtmOp::kPutImm, {Slot::kDst, Slot::kImmAux});
    rtm("PUTF", RtmOp::kPutFlags, {Slot::kDstFlag, Slot::kImmAux});
    rtm("GET", RtmOp::kGet, {Slot::kSrc1});
    rtm("GETF", RtmOp::kGetFlags, {Slot::kSrcFlag});
    rtm("PUTV", RtmOp::kPutVec, {Slot::kDst, Slot::kImmAux});
    rtm("GETV", RtmOp::kGetVec, {Slot::kSrc1, Slot::kImmAux});

    auto unit = [&](std::string name, FunctionCode function, VarietyCode v,
                    std::vector<Slot> req) {
      (*t)[std::move(name)] =
          Signature{function, v, std::move(req), {Slot::kDstFlag}};
    };
    using arith::Op;
    const std::vector<Slot> dab = {Slot::kDst, Slot::kSrc1, Slot::kSrc2};
    const std::vector<Slot> dabf = {Slot::kDst, Slot::kSrc1, Slot::kSrc2,
                                    Slot::kSrcFlag};
    unit("ADD", fc::kArith, arith::variety(Op::kAdd), dab);
    unit("ADC", fc::kArith, arith::variety(Op::kAdc), dabf);
    unit("SUB", fc::kArith, arith::variety(Op::kSub), dab);
    unit("SBB", fc::kArith, arith::variety(Op::kSbb), dabf);
    unit("INC", fc::kArith, arith::variety(Op::kInc), {Slot::kDst, Slot::kSrc1});
    unit("DEC", fc::kArith, arith::variety(Op::kDec), {Slot::kDst, Slot::kSrc1});
    unit("NEG", fc::kArith, arith::variety(Op::kNeg), {Slot::kDst, Slot::kSrc2});
    unit("CMP", fc::kArith, arith::variety(Op::kCmp), {Slot::kSrc1, Slot::kSrc2});
    unit("CMPB", fc::kArith, arith::variety(Op::kCmpb),
         {Slot::kSrc1, Slot::kSrc2, Slot::kSrcFlag});

    for (logic::Op op : logic::kAllOps) {
      std::vector<Slot> req;
      switch (op) {
        case logic::Op::kNot:
          req = {Slot::kDst, Slot::kSrc2};
          break;
        case logic::Op::kPass:
          req = {Slot::kDst, Slot::kSrc1};
          break;
        case logic::Op::kClear:
        case logic::Op::kSet:
          req = {Slot::kDst};
          break;
        default:
          req = dab;
          break;
      }
      unit(std::string(logic::to_string(op)), fc::kLogic, logic::variety(op),
           std::move(req));
    }
    for (shift::Op op : shift::kAllOps) {
      unit(std::string(shift::to_string(op)), fc::kShift, shift::variety(op),
           dab);
    }
    for (muldiv::Op op : muldiv::kAllOps) {
      unit(std::string(muldiv::to_string(op)), fc::kMulDiv,
           muldiv::variety(op),
           op == muldiv::Op::kDivMod
               // DIVMOD rQ, rR, rA, rB: quotient, remainder, dividend,
               // divisor (the remainder register travels in aux).
               ? std::vector<Slot>{Slot::kDst, Slot::kDst2, Slot::kSrc1,
                                   Slot::kSrc2}
               : dab);
    }
    for (fp32::Op op : fp32::kAllOps) {
      unit(std::string(fp32::to_string(op)), fc::kFloat, fp32::variety(op),
           op == fp32::Op::kFcmp
               ? std::vector<Slot>{Slot::kSrc1, Slot::kSrc2}
               : dab);
    }
    for (trig::Op op : trig::kAllOps) {
      unit(std::string(trig::to_string(op)), fc::kTrig, trig::variety(op),
           {Slot::kDst, Slot::kSrc1});
    }
    return t;
  }();
  return *table;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t parse_number(std::string_view token, const std::string& ctx) {
  token = trim(token);
  check(!token.empty(), ctx + ": empty numeric literal");
  int base = 10;
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    token.remove_prefix(2);
    base = 16;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, base);
  check(ec == std::errc{} && ptr == token.data() + token.size(),
        ctx + ": bad numeric literal");
  return value;
}

RegNum parse_reg(std::string_view token, char prefix, const std::string& ctx) {
  token = trim(token);
  check(token.size() >= 2 && (token[0] == prefix ||
                              token[0] == std::toupper(prefix)),
        ctx + ": expected '" + prefix + "N' operand, got '" +
            std::string(token) + "'");
  const std::uint64_t n = parse_number(token.substr(1), ctx);
  check(n <= 0xff, ctx + ": register number out of range");
  return static_cast<RegNum>(n);
}

std::vector<std::string_view> split_operands(std::string_view rest) {
  std::vector<std::string_view> out;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    out.push_back(trim(rest.substr(0, comma)));
    if (comma == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(comma + 1);
  }
  // A trailing comma or doubled comma yields an empty token -> error later.
  return out;
}

}  // namespace

void Assembler::assemble_line(std::string_view line, Program& program) {
  // Strip comments: ';' always starts one; '#' does too unless it begins a
  // numeric literal (e.g. `PUT r1, #0xff`).
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == ';' ||
        (c == '#' && (i + 1 >= line.size() ||
                      !std::isdigit(static_cast<unsigned char>(line[i + 1]))))) {
      line = line.substr(0, i);
      break;
    }
  }
  line = trim(line);
  if (line.empty()) {
    return;
  }

  // Mnemonic = leading word, uppercased.
  std::size_t sp = 0;
  while (sp < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[sp]))) {
    ++sp;
  }
  std::string mnemonic(line.substr(0, sp));
  std::transform(mnemonic.begin(), mnemonic.end(), mnemonic.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // `.word #imm64` emits a raw data word (PUTV burst payloads).
  if (mnemonic == ".WORD") {
    std::string_view t = trim(line.substr(sp));
    check(!t.empty() && t[0] == '#', ".word: literal must start with '#'");
    t.remove_prefix(1);
    program.emit_raw(parse_number(t, ".word"));
    return;
  }
  const auto& table = mnemonic_table();
  const auto it = table.find(mnemonic);
  check(it != table.end(), "unknown mnemonic '" + mnemonic + "'");
  const Signature& sig = it->second;

  const auto operands = split_operands(trim(line.substr(sp)));
  check(operands.size() >= sig.required.size() &&
            operands.size() <= sig.required.size() + sig.optional.size(),
        mnemonic + ": expected " + std::to_string(sig.required.size()) +
            (sig.optional.empty()
                 ? ""
                 : ".." + std::to_string(sig.required.size() +
                                         sig.optional.size())) +
            " operands, got " + std::to_string(operands.size()));

  Instruction inst;
  inst.function = sig.function;
  inst.variety = sig.variety;
  std::optional<Word> inline_word;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    const Slot slot = i < sig.required.size()
                          ? sig.required[i]
                          : sig.optional[i - sig.required.size()];
    const std::string_view tok = operands[i];
    switch (slot) {
      case Slot::kDst:
        inst.dst1 = parse_reg(tok, 'r', mnemonic);
        break;
      case Slot::kDst2:
        inst.aux = parse_reg(tok, 'r', mnemonic);
        break;
      case Slot::kSrc1:
        inst.src1 = parse_reg(tok, 'r', mnemonic);
        break;
      case Slot::kSrc2:
        inst.src2 = parse_reg(tok, 'r', mnemonic);
        break;
      case Slot::kSrcFlag:
        inst.src_flag = parse_reg(tok, 'f', mnemonic);
        break;
      case Slot::kDstFlag:
        inst.dst_flag = parse_reg(tok, 'f', mnemonic);
        break;
      case Slot::kImmAux: {
        const std::uint64_t v = parse_number(tok, mnemonic);
        check(v <= 0xff, mnemonic + ": immediate exceeds 8 bits");
        inst.aux = static_cast<std::uint8_t>(v);
        break;
      }
      case Slot::kImmWord: {
        std::string_view t = tok;
        check(!t.empty() && t[0] == '#',
              mnemonic + ": 64-bit literal must start with '#'");
        t.remove_prefix(1);
        inline_word = parse_number(t, mnemonic);
        break;
      }
    }
  }
  program.emit(inst);
  if (inline_word.has_value()) {
    program.emit_raw(*inline_word);
  }
}

Program Assembler::assemble(std::string_view source) {
  Program program;
  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) {
      end = source.size();
    }
    try {
      assemble_line(source.substr(start, end - start), program);
    } catch (const SimError& e) {
      throw SimError("line " + std::to_string(line_no) + ": " + e.what());
    }
    start = end + 1;
    ++line_no;
  }
  return program;
}

namespace {

/// Find a named operation matching a decoded variety code.
std::string unit_mnemonic(const Instruction& inst) {
  if (inst.function == fc::kArith) {
    for (arith::Op op : arith::kAllOps) {
      if (arith::variety(op) == inst.variety) {
        return std::string(arith::to_string(op));
      }
    }
  } else if (inst.function == fc::kLogic) {
    for (logic::Op op : logic::kAllOps) {
      if (logic::variety(op) == inst.variety) {
        return std::string(logic::to_string(op));
      }
    }
  } else if (inst.function == fc::kShift) {
    for (shift::Op op : shift::kAllOps) {
      if (shift::variety(op) == inst.variety) {
        return std::string(shift::to_string(op));
      }
    }
  } else if (inst.function == fc::kMulDiv) {
    for (muldiv::Op op : muldiv::kAllOps) {
      if (muldiv::variety(op) == inst.variety) {
        return std::string(muldiv::to_string(op));
      }
    }
  } else if (inst.function == fc::kFloat) {
    for (fp32::Op op : fp32::kAllOps) {
      if (fp32::variety(op) == inst.variety) {
        return std::string(fp32::to_string(op));
      }
    }
  } else if (inst.function == fc::kTrig) {
    for (trig::Op op : trig::kAllOps) {
      if (trig::variety(op) == inst.variety) {
        return std::string(trig::to_string(op));
      }
    }
  }
  return {};
}

/// Render one operand slot from a decoded instruction.
std::string render_slot(Slot slot, const Instruction& inst) {
  char buf[16];
  switch (slot) {
    case Slot::kDst:
      std::snprintf(buf, sizeof buf, "r%u", inst.dst1);
      break;
    case Slot::kDst2:
      std::snprintf(buf, sizeof buf, "r%u", inst.aux);
      break;
    case Slot::kSrc1:
      std::snprintf(buf, sizeof buf, "r%u", inst.src1);
      break;
    case Slot::kSrc2:
      std::snprintf(buf, sizeof buf, "r%u", inst.src2);
      break;
    case Slot::kSrcFlag:
      std::snprintf(buf, sizeof buf, "f%u", inst.src_flag);
      break;
    case Slot::kDstFlag:
      std::snprintf(buf, sizeof buf, "f%u", inst.dst_flag);
      break;
    case Slot::kImmAux:
      std::snprintf(buf, sizeof buf, "%u", inst.aux);
      break;
    case Slot::kImmWord:
      return "#<next-word>";
  }
  return buf;
}

}  // namespace

std::string disassemble_one(const Instruction& inst) {
  std::string name;
  if (inst.function == fc::kRtm) {
    bool known = false;
    switch (static_cast<RtmOp>(inst.variety)) {
      case RtmOp::kNop:
      case RtmOp::kCopy:
      case RtmOp::kCopyFlags:
      case RtmOp::kPut:
      case RtmOp::kPutFlags:
      case RtmOp::kPutImm:
      case RtmOp::kGet:
      case RtmOp::kGetFlags:
      case RtmOp::kSync:
      case RtmOp::kPutVec:
      case RtmOp::kGetVec:
        known = true;
        break;
    }
    if (known) {
      name = std::string(to_string(static_cast<RtmOp>(inst.variety)));
    }
  } else {
    name = unit_mnemonic(inst);
  }
  if (name.empty()) {
    return ".word " + to_string(inst);
  }
  // Render operands following the mnemonic's own signature, so that
  // re-assembling the output reproduces the identical encoding.
  const Signature& sig = mnemonic_table().at(name);
  std::string out = name;
  bool first = true;
  auto append = [&](Slot slot) {
    out += first ? " " : ", ";
    first = false;
    out += render_slot(slot, inst);
  };
  for (const Slot slot : sig.required) {
    append(slot);
  }
  for (const Slot slot : sig.optional) {
    append(slot);
  }
  return out;
}

std::vector<std::string> disassemble(const std::vector<Word>& words) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const Instruction inst = Instruction::decode(words[i]);
    if (inst.function == fc::kRtm &&
        static_cast<RtmOp>(inst.variety) == RtmOp::kPut) {
      check(i + 1 < words.size(), "PUT at end of stream has no data word");
      char buf[64];
      std::snprintf(buf, sizeof buf, "PUT r%u, #0x%llx", inst.dst1,
                    static_cast<unsigned long long>(words[i + 1]));
      out.emplace_back(buf);
      ++i;
      continue;
    }
    if (inst.function == fc::kRtm &&
        static_cast<RtmOp>(inst.variety) == RtmOp::kPutVec) {
      check(i + inst.aux < words.size(),
            "PUTV burst truncated at end of stream");
      out.push_back(disassemble_one(inst));
      char buf[48];
      for (unsigned k = 0; k < inst.aux; ++k) {
        std::snprintf(buf, sizeof buf, ".word #0x%llx",
                      static_cast<unsigned long long>(words[i + 1 + k]));
        out.emplace_back(buf);
      }
      i += inst.aux;
      continue;
    }
    out.push_back(disassemble_one(inst));
  }
  return out;
}

}  // namespace fpgafu::isa
