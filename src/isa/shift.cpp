#include "isa/shift.hpp"

#include "util/bits.hpp"

namespace fpgafu::isa::shift {

Result evaluate(VarietyCode variety, Word a, Word amount, unsigned width) {
  const Word wmask = bits::mask(width);
  const unsigned n =
      static_cast<unsigned>(amount % width);  // barrel shifter wraps
  const Word value = a & wmask;
  const auto op = static_cast<Op>(bits::field(variety, vc::kOpHi, vc::kOpLo));

  Word result = 0;
  bool carry = false;  // last bit shifted out (0 for n == 0 shifts)
  switch (op) {
    case Op::kShl:
      result = (value << n) & wmask;
      carry = n > 0 && bits::bit(value, width - n);
      break;
    case Op::kShr:
      result = value >> n;
      carry = n > 0 && bits::bit(value, n - 1);
      break;
    case Op::kAsr: {
      const Word sign_fill =
          bits::bit(value, width - 1) && n > 0
              ? (bits::mask(n) << (width - n)) & wmask
              : 0;
      result = (value >> n) | sign_fill;
      carry = n > 0 && bits::bit(value, n - 1);
      break;
    }
    case Op::kRol:
      result = n == 0 ? value
                      : (((value << n) | (value >> (width - n))) & wmask);
      carry = n > 0 && bits::bit(result, 0);
      break;
    case Op::kRor:
      result = n == 0 ? value
                      : (((value >> n) | (value << (width - n))) & wmask);
      carry = n > 0 && bits::bit(result, width - 1);
      break;
  }

  Result r;
  r.value = result;
  r.write_data = bits::bit(variety, vc::kOutputData);
  r.flags = 0;
  r.flags = static_cast<FlagWord>(bits::with_bit(r.flags, flag::kCarry, carry));
  r.flags =
      static_cast<FlagWord>(bits::with_bit(r.flags, flag::kZero, result == 0));
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kNegative, bits::bit(result, width - 1)));
  return r;
}

}  // namespace fpgafu::isa::shift
