#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::shift {

/// Shift/rotate unit (an *extension* beyond the thesis case studies; the
/// paper's framework explicitly invites adding further stateless units, and
/// a barrel shifter is the canonical third one).  The shift amount comes
/// from the low bits of the second source operand, modulo the word width.
namespace vc {
inline constexpr unsigned kOpLo = 0;       ///< bits [2:0]: operation select
inline constexpr unsigned kOpHi = 2;
inline constexpr unsigned kOutputData = 4;
}  // namespace vc

enum class Op : std::uint8_t {
  kShl = 0,  ///< logical shift left
  kShr = 1,  ///< logical shift right
  kAsr = 2,  ///< arithmetic shift right (sign fills)
  kRol = 3,  ///< rotate left
  kRor = 4,  ///< rotate right
};

inline constexpr std::array<Op, 5> kAllOps = {Op::kShl, Op::kShr, Op::kAsr,
                                              Op::kRol, Op::kRor};

constexpr VarietyCode variety(Op op) {
  return static_cast<VarietyCode>(static_cast<std::uint8_t>(op) |
                                  (1u << vc::kOutputData));
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kShl: return "SHL";
    case Op::kShr: return "SHR";
    case Op::kAsr: return "ASR";
    case Op::kRol: return "ROL";
    case Op::kRor: return "ROR";
  }
  return "?";
}

struct Result {
  Word value = 0;
  FlagWord flags = 0;  ///< zero / negative / carry (last bit shifted out)
  bool write_data = false;
};

/// Reference semantics of the barrel shifter.
Result evaluate(VarietyCode variety, Word a, Word amount, unsigned width);

}  // namespace fpgafu::isa::shift
