#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hpp"

namespace fpgafu::isa {

/// Text assembler / disassembler for the RTM instruction set.
///
/// The thesis programs the controller by hand-encoding instruction words;
/// this assembler is the usability layer a released framework would ship.
/// Grammar (one statement per line, `;` or `#` start a comment):
///
/// ```
/// NOP | SYNC
/// COPY  rD, rA            ; register copy
/// COPYF fD, fS            ; flag register copy
/// PUT   rD, #imm64        ; load 64-bit literal (emits an inline data word)
/// PUTI  rD, imm8          ; load small immediate
/// PUTF  fD, imm8          ; load flag immediate
/// GET   rA                ; send register to host
/// GETF  fS                ; send flag register to host
/// ADD   rD, rA, rB [, fD]     SUB, AND, OR, XOR, NAND, NOR, XNOR, ANDN,
///                             ORN, SHL, SHR, ASR, ROL, ROR likewise
/// ADC   rD, rA, rB, fS [, fD] SBB likewise
/// INC   rD, rA [, fD]         DEC likewise;  PASS rD, rA [, fD]
/// NEG   rD, rB [, fD]         NOT rD, rB [, fD]   (second-operand ops)
/// CMP   rA, rB [, fD]         CMPB rA, rB, fS [, fD]
/// CLEAR rD [, fD]             SET rD [, fD]
/// ```
///
/// `fD` defaults to flag register 0 when omitted.
class Assembler {
 public:
  /// Assemble a full source text.  Throws SimError with a line-numbered
  /// message on any syntax error.
  static Program assemble(std::string_view source);

  /// Assemble a single statement into an instruction (+ optional inline
  /// data word appended to `program`).
  static void assemble_line(std::string_view line, Program& program);
};

/// Disassemble an instruction stream back to one mnemonic statement per
/// instruction (PUT statements re-absorb their inline data words).
std::vector<std::string> disassemble(const std::vector<Word>& words);

/// Disassemble a single instruction (no inline-data context).
std::string disassemble_one(const Instruction& inst);

}  // namespace fpgafu::isa
