#pragma once

#include <string>

#include "isa/types.hpp"

namespace fpgafu::isa {

/// One decoded 64-bit RTM instruction word.
///
/// Field layout (inclusive bit ranges; see DESIGN.md §4 — a clean
/// reconstruction of the thesis Table 3.1 format, preserving the documented
/// structure: up to three source operands and up to two destinations):
///
/// ```
/// [63:56] function code    [55:48] variety code
/// [47:40] dst flag reg     [39:32] dst reg #1
/// [31:24] src flag reg     [23:16] src reg #2
/// [15:8]  src reg #1       [7:0]   aux / small immediate
/// ```
struct Instruction {
  FunctionCode function = 0;
  VarietyCode variety = 0;
  RegNum dst_flag = 0;
  RegNum dst1 = 0;
  RegNum src_flag = 0;
  RegNum src2 = 0;
  RegNum src1 = 0;
  std::uint8_t aux = 0;

  /// Pack into the 64-bit instruction word.
  Word encode() const;

  /// Unpack from a 64-bit instruction word.  Total: every word decodes.
  static Instruction decode(Word word);

  bool operator==(const Instruction&) const = default;
};

/// Bit positions of the instruction fields, exported so the benchmark
/// harness can regenerate the encoding tables and tests can cross-check
/// encode() against first principles.
namespace ifield {
inline constexpr unsigned kFunctionHi = 63, kFunctionLo = 56;
inline constexpr unsigned kVarietyHi = 55, kVarietyLo = 48;
inline constexpr unsigned kDstFlagHi = 47, kDstFlagLo = 40;
inline constexpr unsigned kDst1Hi = 39, kDst1Lo = 32;
inline constexpr unsigned kSrcFlagHi = 31, kSrcFlagLo = 24;
inline constexpr unsigned kSrc2Hi = 23, kSrc2Lo = 16;
inline constexpr unsigned kSrc1Hi = 15, kSrc1Lo = 8;
inline constexpr unsigned kAuxHi = 7, kAuxLo = 0;
}  // namespace ifield

/// Render an instruction for logs/disassembly, e.g.
/// `fc=0x10 vc=0x07 dst=r3 f2 src=r1,r2 f0 aux=0`.
std::string to_string(const Instruction& inst);

}  // namespace fpgafu::isa
