#include "isa/muldiv.hpp"

#include "util/bits.hpp"

namespace fpgafu::isa::muldiv {

WideProduct umul_wide(Word a, Word b, unsigned width) {
  const Word m = bits::mask(width);
  a &= m;
  b &= m;
  if (width <= 32) {
    const Word p = a * b;  // fits in 64 bits
    return {p & m, (p >> width) & m};
  }
  // 64x64 -> 128 via 32-bit limbs.
  const Word a_lo = a & 0xffffffffu, a_hi = a >> 32;
  const Word b_lo = b & 0xffffffffu, b_hi = b >> 32;
  const Word p0 = a_lo * b_lo;
  const Word p1 = a_lo * b_hi;
  const Word p2 = a_hi * b_lo;
  const Word p3 = a_hi * b_hi;
  // Sum the middle terms with carry tracking.
  const Word mid = (p0 >> 32) + (p1 & 0xffffffffu) + (p2 & 0xffffffffu);
  const Word lo = (p0 & 0xffffffffu) | (mid << 32);
  const Word hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
  return {lo, hi};
}

namespace {

/// Arithmetic negate within `width` bits.
Word negate(Word v, unsigned width) {
  return (~v + 1) & bits::mask(width);
}

bool is_negative(Word v, unsigned width) { return bits::bit(v, width - 1); }

}  // namespace

Result evaluate(VarietyCode v, Word a, Word b, unsigned width) {
  const Word m = bits::mask(width);
  a &= m;
  b &= m;
  const auto op = static_cast<Op>(bits::field(v, vc::kOpHi, vc::kOpLo));

  Result r;
  r.write_data = bits::bit(v, vc::kOutputData);
  bool error = false;
  Word value = 0;

  switch (op) {
    case Op::kMul:
      value = umul_wide(a, b, width).lo;
      break;
    case Op::kMulh:
      value = umul_wide(a, b, width).hi;
      break;
    case Op::kSmulh: {
      // |a| * |b| then negate the 2w-bit product if signs differ.
      const bool na = is_negative(a, width), nb = is_negative(b, width);
      const Word ua = na ? negate(a, width) : a;
      const Word ub = nb ? negate(b, width) : b;
      WideProduct p = umul_wide(ua, ub, width);
      if (na != nb) {
        // Two's complement negate of the double-width value {hi, lo}.
        p.lo = negate(p.lo, width);
        p.hi = (~p.hi + (p.lo == 0 ? 1 : 0)) & m;
      }
      value = p.hi;
      break;
    }
    case Op::kDiv:
    case Op::kRem:
      if (b == 0) {
        error = true;
        value = m;  // "undefined by specification" — the model picks all-ones
      } else {
        value = op == Op::kDiv ? a / b : a % b;
      }
      break;
    case Op::kDivMod:
      r.has_second = true;
      if (b == 0) {
        error = true;
        value = m;
        r.value2 = m;
      } else {
        value = a / b;
        r.value2 = a % b;
      }
      break;
    case Op::kSdiv:
    case Op::kSrem: {
      const Word min = Word{1} << (width - 1);
      if (b == 0 || (a == min && b == m /* -1 */)) {
        error = true;
        value = m;
      } else {
        const bool na = is_negative(a, width), nb = is_negative(b, width);
        const Word ua = na ? negate(a, width) : a;
        const Word ub = nb ? negate(b, width) : b;
        const Word q = ua / ub;
        const Word rem = ua % ub;
        if (op == Op::kSdiv) {
          value = (na != nb) ? negate(q, width) : q;
        } else {
          value = na ? negate(rem, width) : rem;  // remainder takes the
                                                  // dividend's sign
        }
      }
      break;
    }
  }

  r.value = value & m;
  r.flags = 0;
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kZero, r.value == 0));
  r.flags = static_cast<FlagWord>(
      bits::with_bit(r.flags, flag::kNegative, is_negative(r.value, width)));
  r.flags =
      static_cast<FlagWord>(bits::with_bit(r.flags, flag::kError, error));
  return r;
}

}  // namespace fpgafu::isa::muldiv
