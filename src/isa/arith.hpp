#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa::arith {

/// Variety-code control bits of the arithmetic unit, exactly the control
/// columns of thesis Table 3.1.  Every one of the nine instructions is a
/// *derived* combination of these bits around a single adder — the unit
/// contains no per-instruction cases.
namespace vc {
inline constexpr unsigned kUseCarry = 0;     ///< carry-in taken from source flag register
inline constexpr unsigned kFixedCarry = 1;   ///< carry-in forced to 1 (when kUseCarry clear)
inline constexpr unsigned kOutputData = 2;   ///< write the sum to destination register #1
inline constexpr unsigned kFirstZero = 3;    ///< first adder input forced to zero
inline constexpr unsigned kSecondZero = 4;   ///< second adder input forced to zero
inline constexpr unsigned kComplementSecond = 5;  ///< bitwise-complement second adder input
}  // namespace vc

/// The nine instructions of thesis Table 3.1.
enum class Op : std::uint8_t {
  kAdd,   ///< dst = src1 + src2
  kAdc,   ///< dst = src1 + src2 + carry(srcFlag)
  kSub,   ///< dst = src1 - src2              (= src1 + ~src2 + 1)
  kSbb,   ///< dst = src1 + ~src2 + carry(srcFlag)  (ARM borrow convention)
  kInc,   ///< dst = src1 + 1                 (second input zeroed)
  kDec,   ///< dst = src1 - 1                 (second input zeroed + complemented)
  kNeg,   ///< dst = -src2                    (applied to the SECOND operand,
          ///<                                 "for reasons of logic compactness")
  kCmp,   ///< flags of src1 - src2, no data output
  kCmpb,  ///< flags of src1 + ~src2 + carry, no data output
};

inline constexpr std::array<Op, 9> kAllOps = {
    Op::kAdd, Op::kAdc, Op::kSub, Op::kSbb, Op::kInc,
    Op::kDec, Op::kNeg, Op::kCmp, Op::kCmpb};

/// Variety code for each instruction (the row of Table 3.1).
constexpr VarietyCode variety(Op op) {
  auto b = [](unsigned pos) { return VarietyCode(1u << pos); };
  switch (op) {
    case Op::kAdd:
      return b(vc::kOutputData);
    case Op::kAdc:
      return VarietyCode(b(vc::kOutputData) | b(vc::kUseCarry));
    case Op::kSub:
      return VarietyCode(b(vc::kOutputData) | b(vc::kComplementSecond) |
                         b(vc::kFixedCarry));
    case Op::kSbb:
      return VarietyCode(b(vc::kOutputData) | b(vc::kComplementSecond) |
                         b(vc::kUseCarry));
    case Op::kInc:
      return VarietyCode(b(vc::kOutputData) | b(vc::kSecondZero) |
                         b(vc::kFixedCarry));
    case Op::kDec:
      return VarietyCode(b(vc::kOutputData) | b(vc::kSecondZero) |
                         b(vc::kComplementSecond));
    case Op::kNeg:
      return VarietyCode(b(vc::kOutputData) | b(vc::kFirstZero) |
                         b(vc::kComplementSecond) | b(vc::kFixedCarry));
    case Op::kCmp:
      return VarietyCode(b(vc::kComplementSecond) | b(vc::kFixedCarry));
    case Op::kCmpb:
      return VarietyCode(b(vc::kComplementSecond) | b(vc::kUseCarry));
  }
  return 0;
}

constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kAdd: return "ADD";
    case Op::kAdc: return "ADC";
    case Op::kSub: return "SUB";
    case Op::kSbb: return "SBB";
    case Op::kInc: return "INC";
    case Op::kDec: return "DEC";
    case Op::kNeg: return "NEG";
    case Op::kCmp: return "CMP";
    case Op::kCmpb: return "CMPB";
  }
  return "?";
}

/// Result of evaluating the arithmetic datapath for one instruction.
struct Result {
  Word value = 0;        ///< adder output (masked to the configured width)
  FlagWord flags = 0;    ///< carry/zero/negative/overflow
  bool write_data = false;  ///< kOutputData was set
};

/// Reference semantics of the arithmetic datapath: a single `width`-bit
/// adder fed through the variety-code input muxing.  This is both the
/// golden oracle used by the tests and the combinational core reused by the
/// hardware ArithmeticUnit component.
Result evaluate(VarietyCode variety, Word a, Word b, FlagWord flags_in,
                unsigned width);

}  // namespace fpgafu::isa::arith
