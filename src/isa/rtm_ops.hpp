#pragma once

#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::isa {

/// RTM-internal primitives ("general management primitives, e.g. copying
/// data from one register to another, are provided by the framework and
/// executed directly in the main pipeline" — thesis §1.3.1).  Selected by
/// the variety code when the function code is fc::kRtm.
enum class RtmOp : VarietyCode {
  kNop = 0x00,
  /// dst1 <- src1 (register-to-register copy in the execution stage).
  kCopy = 0x01,
  /// flag dst_flag <- flag src_flag.
  kCopyFlags = 0x02,
  /// dst1 <- the next 64-bit word in the instruction stream (the message
  /// buffer delivers it; this is how the host "sends packets of data").
  kPut = 0x03,
  /// flag dst_flag <- low bits of aux (single-word immediate form).
  kPutFlags = 0x04,
  /// dst1 <- zero-extended aux (small immediate; convenience primitive).
  kPutImm = 0x05,
  /// Send register src1 to the host as a data-record response.
  kGet = 0x06,
  /// Send flag register src_flag to the host as a flag-vector response.
  kGetFlags = 0x07,
  /// Barrier: stall until every functional unit is idle and no register
  /// lock is held, then send a sync-done response.
  kSync = 0x08,
  /// Vector PUT ("packets of data"): the next `aux` stream words load into
  /// registers dst1, dst1+1, ..., dst1+aux-1.  The decoder expands the
  /// burst into per-register transfers, so hazard tracking still works per
  /// register.  One header word moves aux words — half the link traffic of
  /// aux separate PUTs.
  kPutVec = 0x09,
  /// Vector GET: registers src1 .. src1+aux-1 return as `aux` data-record
  /// responses (all carrying this instruction's sequence number).
  kGetVec = 0x0a,
};

constexpr std::string_view to_string(RtmOp op) {
  switch (op) {
    case RtmOp::kNop: return "NOP";
    case RtmOp::kCopy: return "COPY";
    case RtmOp::kCopyFlags: return "COPYF";
    case RtmOp::kPut: return "PUT";
    case RtmOp::kPutFlags: return "PUTF";
    case RtmOp::kPutImm: return "PUTI";
    case RtmOp::kGet: return "GET";
    case RtmOp::kGetFlags: return "GETF";
    case RtmOp::kSync: return "SYNC";
    case RtmOp::kPutVec: return "PUTV";
    case RtmOp::kGetVec: return "GETV";
  }
  return "RTM?";
}

}  // namespace fpgafu::isa
