#include "isa/fp32.hpp"

#include "util/bits.hpp"

namespace fpgafu::isa::fp32 {
namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kExpMask = 0x7f800000u;
constexpr std::uint32_t kFracMask = 0x007fffffu;
constexpr std::uint32_t kImplicit = 0x00800000u;  // 1 << 23
constexpr std::uint32_t kQuietNan = 0x7fc00000u;

struct Unpacked {
  bool sign;
  std::int32_t exp;        // biased exponent field
  std::uint32_t frac;      // raw fraction field
};

Unpacked unpack(std::uint32_t v) {
  return {(v & kSignMask) != 0, static_cast<std::int32_t>((v >> 23) & 0xff),
          v & kFracMask};
}

bool is_nan(std::uint32_t v) {
  return (v & kExpMask) == kExpMask && (v & kFracMask) != 0;
}
bool is_inf(std::uint32_t v) {
  return (v & kExpMask) == kExpMask && (v & kFracMask) == 0;
}
bool is_zero(std::uint32_t v) { return (v & ~kSignMask) == 0; }

std::uint32_t make_inf(bool sign) {
  return (sign ? kSignMask : 0u) | kExpMask;
}
std::uint32_t make_zero(bool sign) { return sign ? kSignMask : 0u; }

/// Significand with the implicit bit materialised, plus the *unbiased*
/// exponent of that 1.23-format significand.  Subnormals are normalised
/// (significand shifted up until bit 23 is set).  Requires a finite,
/// non-zero input.
struct Sig {
  std::uint32_t mant;  // in [2^23, 2^24)
  std::int32_t e;      // value = mant * 2^(e-23)
};

Sig normalise(const Unpacked& u) {
  if (u.exp == 0) {
    // Subnormal: weight 2^-126, no implicit bit.
    std::uint32_t m = u.frac;
    std::int32_t e = -126;
    while ((m & kImplicit) == 0) {
      m <<= 1;
      --e;
    }
    return {m, e};
  }
  return {u.frac | kImplicit, u.exp - 127};
}

/// Round-to-nearest-even and pack.  `mant` is a 1.23 significand in
/// [2^23, 2^24); `e` its unbiased exponent; `g` the guard bit just below
/// the LSB; `s` the OR of everything below the guard.  Handles subnormal
/// underflow and infinity overflow.  `overflowed` reports finite->inf.
std::uint32_t round_pack(bool sign, std::int32_t e, std::uint32_t mant,
                         bool g, bool s, bool* overflowed) {
  std::int32_t biased = e + 127;

  if (biased <= 0) {
    // Subnormal (or zero): shift right until the exponent field is 0,
    // folding shifted-out bits into guard/sticky.
    const std::int32_t shift = 1 - biased;
    if (shift > 25) {
      // Entirely below the smallest subnormal: rounds to zero (RNE cannot
      // reach halfway with a leading significand this small... except the
      // exact halfway of the smallest subnormal, handled by shift == 25).
      return make_zero(sign);
    }
    for (std::int32_t i = 0; i < shift; ++i) {
      s = s || g;
      g = (mant & 1) != 0;
      mant >>= 1;
    }
    biased = 1;  // mant now has weight 2^-126 * 2^-23 per LSB
    // Round.
    if (g && (s || (mant & 1))) {
      ++mant;
    }
    if (mant & kImplicit) {
      // Rounded back up into the normal range.
      return (sign ? kSignMask : 0u) | (1u << 23) | (mant & kFracMask);
    }
    return (sign ? kSignMask : 0u) | mant;
  }

  // Normal range: round, possibly carry out of the significand.
  if (g && (s || (mant & 1))) {
    ++mant;
    if (mant == (kImplicit << 1)) {
      mant >>= 1;
      ++biased;
    }
  }
  if (biased >= 255) {
    if (overflowed != nullptr) {
      *overflowed = true;
    }
    return make_inf(sign);
  }
  return (sign ? kSignMask : 0u) |
         (static_cast<std::uint32_t>(biased) << 23) | (mant & kFracMask);
}

std::uint32_t add_core(std::uint32_t a, std::uint32_t b, bool* overflowed) {
  if (is_nan(a) || is_nan(b)) {
    return kQuietNan;
  }
  const bool sa = (a & kSignMask) != 0;
  const bool sb = (b & kSignMask) != 0;
  if (is_inf(a) || is_inf(b)) {
    if (is_inf(a) && is_inf(b) && sa != sb) {
      return kQuietNan;  // inf - inf
    }
    return is_inf(a) ? a : b;
  }
  if (is_zero(a) && is_zero(b)) {
    // RNE: +0 + -0 = +0; equal signs keep the sign.
    return make_zero(sa && sb);
  }
  if (is_zero(a)) {
    return b;
  }
  if (is_zero(b)) {
    return a;
  }

  Sig x = normalise(unpack(a));
  Sig y = normalise(unpack(b));
  bool sx = sa, sy = sb;
  // Make x the operand with the larger exponent (tie: larger significand),
  // so the result's provisional sign is x's.
  if (y.e > x.e || (y.e == x.e && y.mant > x.mant)) {
    std::swap(x, y);
    std::swap(sx, sy);
  }

  // Work in 64-bit with 3 extra low bits (guard, round, sticky room).
  std::uint64_t mx = static_cast<std::uint64_t>(x.mant) << 3;
  std::uint64_t my = static_cast<std::uint64_t>(y.mant) << 3;
  const std::int32_t diff = x.e - y.e;
  if (diff >= 27) {
    my = 1;  // pure sticky
  } else if (diff > 0) {
    const std::uint64_t lost = my & bits::mask(static_cast<unsigned>(diff));
    my >>= diff;
    if (lost != 0) {
      my |= 1;
    }
  }

  std::uint64_t sum;
  const bool effective_sub = sx != sy;
  if (effective_sub) {
    sum = mx - my;
    if (sum == 0) {
      return make_zero(false);  // exact cancellation: +0 under RNE
    }
  } else {
    sum = mx + my;
  }

  // Normalise `sum` to a 1.23 significand at bit offset 3.
  std::int32_t e = x.e;
  bool sticky = false;
  while (sum >= (static_cast<std::uint64_t>(kImplicit) << 4)) {
    sticky = sticky || (sum & 1) != 0;
    sum >>= 1;
    ++e;
  }
  while (sum < (static_cast<std::uint64_t>(kImplicit) << 3)) {
    sum <<= 1;
    --e;
  }
  const auto mant = static_cast<std::uint32_t>(sum >> 3);
  const bool g = (sum & 0x4) != 0;
  const bool s = (sum & 0x3) != 0 || sticky;
  return round_pack(sx, e, mant, g, s, overflowed);
}

std::uint32_t mul_core(std::uint32_t a, std::uint32_t b, bool* overflowed) {
  if (is_nan(a) || is_nan(b)) {
    return kQuietNan;
  }
  const bool sign = ((a ^ b) & kSignMask) != 0;
  if (is_inf(a) || is_inf(b)) {
    if (is_zero(a) || is_zero(b)) {
      return kQuietNan;  // inf * 0
    }
    return make_inf(sign);
  }
  if (is_zero(a) || is_zero(b)) {
    return make_zero(sign);
  }
  const Sig x = normalise(unpack(a));
  const Sig y = normalise(unpack(b));
  // 24x24 -> 48-bit product; value = p * 2^(ex+ey-46).
  std::uint64_t p = static_cast<std::uint64_t>(x.mant) * y.mant;
  std::int32_t e = x.e + y.e;
  // p is in [2^46, 2^48): bring the leading 1 to bit 47 (1.47 format).
  if (p & (std::uint64_t{1} << 47)) {
    ++e;
  } else {
    p <<= 1;
  }
  // 24-bit significand = bits [47:24]; guard = bit 23; sticky = the rest.
  const auto mant = static_cast<std::uint32_t>(p >> 24);
  const bool g = (p & (std::uint64_t{1} << 23)) != 0;
  const bool s = (p & bits::mask(23)) != 0;
  return round_pack(sign, e, mant, g, s, overflowed);
}

std::uint32_t div_core(std::uint32_t a, std::uint32_t b, bool* overflowed,
                       bool* div_by_zero) {
  if (is_nan(a) || is_nan(b)) {
    return kQuietNan;
  }
  const bool sign = ((a ^ b) & kSignMask) != 0;
  if (is_inf(a)) {
    return is_inf(b) ? kQuietNan : make_inf(sign);
  }
  if (is_inf(b)) {
    return make_zero(sign);
  }
  if (is_zero(b)) {
    if (is_zero(a)) {
      return kQuietNan;  // 0/0: invalid
    }
    if (div_by_zero != nullptr) {
      *div_by_zero = true;
    }
    return make_inf(sign);
  }
  if (is_zero(a)) {
    return make_zero(sign);
  }
  Sig x = normalise(unpack(a));
  const Sig y = normalise(unpack(b));
  std::int32_t e = x.e - y.e;
  std::uint64_t num = x.mant;
  if (num < y.mant) {
    num <<= 1;
    --e;
  }
  // 26-bit quotient: leading 1 at bit 25, 23 fraction bits, 1 guard bit.
  num <<= 25;
  const std::uint64_t q = num / y.mant;
  const std::uint64_t rem = num % y.mant;
  const auto mant = static_cast<std::uint32_t>(q >> 2);
  const bool g = (q & 0x2) != 0;
  const bool s = (q & 0x1) != 0 || rem != 0;
  return round_pack(sign, e, mant, g, s, overflowed);
}

FlagWord flags_for(std::uint32_t result, bool overflowed, bool invalid) {
  FlagWord f = 0;
  f = static_cast<FlagWord>(
      bits::with_bit(f, flag::kZero, is_zero(result)));
  f = static_cast<FlagWord>(
      bits::with_bit(f, flag::kNegative, (result & kSignMask) != 0));
  f = static_cast<FlagWord>(bits::with_bit(f, flag::kOverflow, overflowed));
  f = static_cast<FlagWord>(
      bits::with_bit(f, flag::kError, invalid || is_nan(result)));
  return f;
}

}  // namespace

std::uint32_t soft_add(std::uint32_t a, std::uint32_t b) {
  return add_core(a, b, nullptr);
}
std::uint32_t soft_mul(std::uint32_t a, std::uint32_t b) {
  return mul_core(a, b, nullptr);
}
std::uint32_t soft_div(std::uint32_t a, std::uint32_t b) {
  return div_core(a, b, nullptr, nullptr);
}

Result evaluate(VarietyCode v, Word a64, Word b64) {
  const auto a = static_cast<std::uint32_t>(a64 & 0xffffffffu);
  const auto b = static_cast<std::uint32_t>(b64 & 0xffffffffu);
  const auto op = static_cast<Op>(bits::field(v, vc::kOpHi, vc::kOpLo));

  Result r;
  r.write_data = bits::bit(v, vc::kOutputData);
  bool overflowed = false;
  bool hard_error = false;

  switch (op) {
    case Op::kFadd:
      r.value = add_core(a, b, &overflowed);
      break;
    case Op::kFsub:
      r.value = add_core(a, b ^ kSignMask, &overflowed);
      break;
    case Op::kFmul:
      r.value = mul_core(a, b, &overflowed);
      break;
    case Op::kFdiv:
      r.value = div_core(a, b, &overflowed, &hard_error);
      break;
    case Op::kFcmp: {
      // Flags only: kError = unordered, kZero = equal, kNegative = a < b.
      FlagWord f = 0;
      if (is_nan(a) || is_nan(b)) {
        f = static_cast<FlagWord>(bits::with_bit(f, flag::kError, true));
      } else if (is_zero(a) && is_zero(b)) {
        f = static_cast<FlagWord>(bits::with_bit(f, flag::kZero, true));
      } else if (a == b) {
        f = static_cast<FlagWord>(bits::with_bit(f, flag::kZero, true));
      } else {
        // Order by sign, then magnitude (flipped for negatives).
        const bool sa = (a & kSignMask) != 0, sb = (b & kSignMask) != 0;
        bool less;
        if (sa != sb) {
          less = sa;
        } else if (!sa) {
          less = a < b;
        } else {
          less = a > b;
        }
        f = static_cast<FlagWord>(bits::with_bit(f, flag::kNegative, less));
      }
      r.flags = f;
      return r;
    }
  }
  r.flags = flags_for(static_cast<std::uint32_t>(r.value), overflowed,
                      hard_error);
  return r;
}

}  // namespace fpgafu::isa::fp32
