#include "sim/vcd.hpp"

#include "util/error.hpp"

namespace fpgafu::sim {
namespace {

/// VCD identifier alphabet: printable ASCII, shortest-first.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(Simulator& sim, std::ostream& os, unsigned timescale_ns)
    : Component(sim, "vcd_writer"), os_(&os), timescale_ns_(timescale_ns) {
  // A waveform probe must sample every cycle regardless of scheduler
  // activity, or the dump depends on the kernel.
  make_always_active();
}

void VcdWriter::probe(const std::string& name, unsigned width,
                      std::function<std::uint64_t()> getter) {
  check(!header_written_, "VcdWriter: probes must be added before tracing");
  check(width >= 1 && width <= 64, "VcdWriter: width must be in [1, 64]");
  Probe p;
  p.name = name;
  p.width = width;
  p.getter = std::move(getter);
  p.id = vcd_id(probes_.size());
  probes_.push_back(std::move(p));
}

void VcdWriter::write_header() {
  *os_ << "$timescale " << timescale_ns_ << "ns $end\n";
  *os_ << "$scope module fpgafu $end\n";
  for (const Probe& p : probes_) {
    *os_ << "$var wire " << p.width << ' ' << p.id << ' ' << p.name
         << " $end\n";
  }
  *os_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::emit_value(const Probe& p, std::uint64_t value) {
  if (p.width == 1) {
    *os_ << (value & 1) << p.id << '\n';
  } else {
    *os_ << 'b';
    bool leading = true;
    for (unsigned i = p.width; i-- > 0;) {
      const bool bit = ((value >> i) & 1) != 0;
      if (bit) {
        leading = false;
      }
      if (!leading || i == 0) {
        *os_ << (bit ? '1' : '0');
      }
    }
    *os_ << ' ' << p.id << '\n';
  }
  ++changes_;
}

void VcdWriter::commit() {
  if (!header_written_) {
    write_header();
  }
  bool stamped = false;
  for (Probe& p : probes_) {
    const std::uint64_t v = p.getter();
    if (!p.has_last || v != p.last) {
      if (!stamped) {
        *os_ << '#' << simulator().cycle() << '\n';
        stamped = true;
      }
      emit_value(p, v);
      p.last = v;
      p.has_last = true;
    }
  }
}

void VcdWriter::reset() {
  for (Probe& p : probes_) {
    p.has_last = false;
  }
}

}  // namespace fpgafu::sim
