#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fpgafu::sim {

class Component;
class WireBase;

/// Synchronous cycle-accurate simulation kernel.
///
/// The kernel stands in for the FPGA fabric: it advances a single global
/// clock, which matches the paper's system (the framework runs in one clock
/// domain; functional units *may* contain other domains internally, which in
/// this model is expressed as multi-cycle behaviour inside a component).
///
/// Each cycle is executed in two phases:
///   1. *Settle*: component `eval()` (combinational logic) runs until no
///      Wire changes value — a fixed-point evaluation that handles arbitrary
///      acyclic combinational topologies without a static schedule.  A
///      genuine combinational loop fails to converge and raises SimError,
///      the moral equivalent of the synthesis error it would produce in
///      VHDL.
///   2. *Commit*: every component's `commit()` (clocked logic) runs once;
///      commits read Wires and the component's own pre-commit state only, so
///      commit order is immaterial — all registers update "simultaneously"
///      exactly as flip-flops do on a clock edge.
///
/// Two settle kernels implement phase 1 (see `Kernel`):
///
///   * `kSensitivity` (default): the first pass of each cycle evaluates
///     every component (registered state may have changed at the previous
///     commit), and Wire reads made during any `eval()` are recorded as
///     sensitivities.  Subsequent passes re-evaluate only the components
///     whose input wires actually changed — a dirty work-queue, the same
///     idea as an event-driven HDL simulator's sensitivity lists.  Because
///     `eval()` is required to be a pure function of wires + registered
///     state, skipping a component whose recorded inputs are unchanged
///     cannot alter the fixed point.
///   * `kBruteForce`: the original kernel — every pass re-runs every
///     component until a pass changes nothing.  Kept as the reference
///     implementation; the differential tests pin the two kernels to
///     bit-identical architectural behaviour.
///
/// **Thread affinity.**  A Simulator — and everything built on it: every
/// Component, the whole top::System — belongs to exactly one thread, the
/// one that constructed it (or the last one `rebind_owner()` was called
/// from).  Nothing here is synchronised: wires, the dirty queue and every
/// component's registers are plain data, which is what makes the settle
/// loop fast.  Concurrency lives *above* the simulator — host::Farm runs N
/// Systems on N threads, one simulator per thread, and never shares one.
/// `step()` asserts the rule in debug builds; the TSan CI job enforces it
/// for the multi-threaded code paths.
class Simulator {
 public:
  enum class Kernel {
    kSensitivity,  ///< dirty-queue scheduled settle (default)
    kBruteForce,   ///< evaluate every component every pass (reference)
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a component.  The simulator does not own components; it must
  /// outlive them (Component's ctor/dtor register/unregister automatically).
  void add(Component& component);
  void remove(Component& component);

  /// Assert reset on every component, rewind the cycle counter and drop any
  /// pending dirty state (stray Wire writes between reset() and the first
  /// step() must not leak into the first settle pass).
  void reset();

  /// Advance one clock cycle (settle + commit).
  void step();

  /// Advance `n` cycles.
  void run(std::uint64_t n);

  /// Step until `done()` returns true, at most `max_cycles` cycles.
  /// Returns the number of cycles consumed.  Throws SimError on timeout —
  /// this is the watchdog used to detect e.g. a functional unit that never
  /// acknowledges.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles since construction or last reset().
  std::uint64_t cycle() const { return cycle_; }

  /// Incremented by every reset().  Host-side software (which holds state
  /// *outside* the component tree, e.g. partially deframed responses)
  /// compares this against a remembered value to notice that the hardware
  /// was reset underneath it.
  std::uint64_t reset_generation() const { return reset_generation_; }

  /// Select the settle kernel.  Call only at a cycle boundary (between
  /// steps); the dirty queue of a half-settled cycle does not transfer.
  void set_kernel(Kernel kernel) { kernel_ = kernel; }
  Kernel kernel() const { return kernel_; }

  /// Largest number of settle iterations any cycle has needed so far.
  /// Exposed so tests can assert the model contains no pathological
  /// combinational chains (see DESIGN.md §6).
  unsigned max_settle_iterations() const { return max_settle_; }

  /// Upper bound on settle iterations before declaring a combinational loop.
  void set_settle_limit(unsigned limit) { settle_limit_ = limit; }

  /// Components currently queued for re-evaluation.  Zero at every cycle
  /// boundary and after reset() — tests assert this invariant.
  std::size_t pending_reevals() const { return queue_.size(); }

  /// The thread this simulator is affine to (see the class comment).
  std::thread::id owner_thread() const { return owner_; }

  /// Transfer ownership to the calling thread.  Legal only at a quiescent
  /// hand-off — the previous owner must have stopped touching the simulator
  /// (and everything built on it) before the new owner starts.
  void rebind_owner() { owner_ = std::this_thread::get_id(); }

  /// Total component eval() calls across all settle passes (both kernels).
  /// The sensitivity kernel's win is visible as a lower count for the same
  /// cycle count; bench_sim_kernel reports the ratio.
  std::uint64_t evals_performed() const { return evals_; }

  /// Called on any Wire value change; marks the settle pass dirty and, under
  /// the sensitivity kernel, queues the wire's recorded readers.
  void wire_changed(WireBase& wire);

  /// Legacy entry point for code that signals a change without a WireBase
  /// (kept for custom components); forces the conservative path: the pass is
  /// marked dirty and, under the sensitivity kernel, every component is
  /// re-evaluated next pass.
  void note_change();

 private:
  friend class Component;
  friend class WireBase;

  void register_wire(WireBase& wire);
  void unregister_wire(WireBase& wire);
  void enqueue(Component& component);
  void clear_queue();
  void settle_sensitivity();
  void settle_brute_force();

  std::vector<Component*> components_;
  std::vector<WireBase*> wires_;
  std::vector<Component*> queue_;  ///< components to re-evaluate next pass
  std::vector<Component*> work_;   ///< pass currently being drained
  Component* reading_ = nullptr;   ///< component whose eval() is running
  std::thread::id owner_ = std::this_thread::get_id();
  std::uint64_t cycle_ = 0;
  std::uint64_t reset_generation_ = 0;
  std::uint64_t evals_ = 0;
  bool changed_ = false;
  bool requeue_all_ = false;  ///< set by note_change(): untracked change
  Kernel kernel_ = Kernel::kSensitivity;
  unsigned settle_limit_ = 64;
  unsigned max_settle_ = 0;
};

}  // namespace fpgafu::sim
