#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fpgafu::sim {

class Component;
class WireBase;

/// Synchronous cycle-accurate simulation kernel.
///
/// The kernel stands in for the FPGA fabric: it advances a single global
/// clock, which matches the paper's system (the framework runs in one clock
/// domain; functional units *may* contain other domains internally, which in
/// this model is expressed as multi-cycle behaviour inside a component).
///
/// Each cycle is executed in two phases:
///   1. *Settle*: component `eval()` (combinational logic) runs until no
///      Wire changes value — a fixed-point evaluation that handles arbitrary
///      acyclic combinational topologies without a static schedule.  A
///      genuine combinational loop fails to converge and raises SimError,
///      the moral equivalent of the synthesis error it would produce in
///      VHDL.
///   2. *Commit*: component `commit()` (clocked logic) runs once per
///      committed component; commits read Wires and the component's own
///      pre-commit state only, so commit order is immaterial — all registers
///      update "simultaneously" exactly as flip-flops do on a clock edge.
///
/// Three settle/commit kernels implement the cycle (see `Kernel`):
///
///   * `kSensitivity` (default): the first settle pass of each cycle
///     evaluates every component (registered state may have changed at the
///     previous commit), and Wire reads made during any `eval()` are
///     recorded as sensitivities.  Subsequent passes re-evaluate only the
///     components whose input wires actually changed — a dirty work-queue,
///     the same idea as an event-driven HDL simulator's sensitivity lists.
///     Because `eval()` is required to be a pure function of wires +
///     registered state, skipping a component whose recorded inputs are
///     unchanged cannot alter the fixed point.  Every `commit()` runs every
///     cycle.
///   * `kEvent`: activity tracking carried *across* the clock edge.  The
///     first settle pass evaluates only components in the persistent wake
///     set — woken by a Wire change during the previous cycle, by an
///     explicit `Component::wake()`, or by `note_change()`'s conservative
///     requeue; subsequent passes drain the same dirty queue as
///     `kSensitivity`.  The commit phase runs only "clocked-active"
///     components: a component whose last `commit()` reported no activity
///     (no bound-`Reg` change, no `mark_active()`) is demoted from the
///     commit set and re-promoted when any wire it was observed reading —
///     in `eval()` *or* `commit()` — changes, or when it is woken.  Sound
///     because `commit()` is a pure function of wires + registered state:
///     re-running it with neither changed is the identity.  Idle hardware
///     costs zero host cycles.
///   * `kLevelized`: the event kernel's cross-cycle wake/commit tracking
///     plus a *statically scheduled* first settle pass.  At elaboration
///     (lazily, whenever the observed combinational graph changes) the
///     components are topologically levelized from the recorded
///     reader/writer wire edges into flat per-level buckets, slot-ordered
///     so same-type components batch back-to-back for cache locality.
///     Each settle sweeps the woken subset once in level order: a wire
///     change simply drops its readers into their (later) level's bucket —
///     no dirty-queue bookkeeping on the hot path.  Backward or
///     not-yet-observed edges fall back to the sensitivity drain after the
///     sweep, which keeps the kernel sound while the schedule is still
///     warming up (and turns a genuine combinational loop into the same
///     SimError).  Wide levels can optionally be partitioned across a
///     small thread pool (`set_settle_threads`) with one barrier per
///     level; all shared scheduler state is updated through per-lane
///     deferred scratch, applied serially at the barrier.
///   * `kBruteForce`: the original kernel — every settle pass re-runs every
///     component until a pass changes nothing, and every commit runs every
///     cycle.  Kept as the reference implementation; differential tests pin
///     all kernels to bit-identical architectural behaviour.
///
/// The environment variable `FPGAFU_KERNEL` (`brute` | `sensitivity` |
/// `event` | `levelized`) overrides the construction-time default — used by
/// CI to run the whole suite under a non-default kernel.  An unrecognised
/// value raises SimError at the first Simulator construction
/// (`kernel_from_env`), instead of silently falling back to the default.
///
/// **Thread affinity.**  A Simulator — and everything built on it: every
/// Component, the whole top::System — belongs to exactly one thread, the
/// one that constructed it (or the last one `rebind_owner()` was called
/// from).  Nothing here is synchronised: wires, the dirty queue and every
/// component's registers are plain data, which is what makes the settle
/// loop fast.  Concurrency lives *above* the simulator — host::Farm runs N
/// Systems on N threads, one simulator per thread, and never shares one.
/// `step()` asserts the rule in debug builds; the TSan CI job enforces it
/// for the multi-threaded code paths.
class Simulator {
 public:
  enum class Kernel {
    kSensitivity,  ///< dirty-queue scheduled settle (default)
    kBruteForce,   ///< evaluate every component every pass (reference)
    kEvent,        ///< cross-cycle wake/commit sets: skip idle components
    kLevelized,    ///< statically levelized sweep over the wake set
  };

  /// Every kernel, reference implementation first.  The single source of
  /// truth for "all kernels" loops — differential tests, the fuzzer and the
  /// bench iterate this, so a fifth kernel is a one-line addition here.
  static constexpr std::array<Kernel, 4> kAllKernels = {
      Kernel::kBruteForce,
      Kernel::kSensitivity,
      Kernel::kEvent,
      Kernel::kLevelized,
  };

  /// Canonical name of a kernel — the same spelling `FPGAFU_KERNEL` and
  /// `parse_kernel` accept.
  static const char* kernel_name(Kernel kernel);

  /// Parse a kernel name (`brute` | `sensitivity` | `event` | `levelized`).
  /// Throws SimError naming the unknown value and the accepted spellings.
  static Kernel parse_kernel(std::string_view name);

  /// The `FPGAFU_KERNEL` environment-variable policy: null (unset) selects
  /// the default kernel, anything else must parse.  Factored out of the
  /// construction path so the typed-error contract is unit-testable.
  static Kernel kernel_from_env(const char* value);

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a component.  The simulator does not own components; it must
  /// outlive them (Component's ctor/dtor register/unregister automatically).
  void add(Component& component);
  void remove(Component& component);

  /// Assert reset on every component, rewind the cycle counter and drop any
  /// pending dirty state (stray Wire writes between reset() and the first
  /// step() must not leak into the first settle pass).  All cross-cycle
  /// activity state is dropped too: after reset every component is woken and
  /// commit-armed, so the event kernel cannot start from a stale quiet set.
  void reset();

  /// Advance one clock cycle (settle + commit).
  void step();

  /// Advance `n` cycles.
  void run(std::uint64_t n);

  /// Step until `done()` returns true, at most `max_cycles` cycles.
  /// Returns the number of cycles consumed.  Throws SimError on timeout —
  /// this is the watchdog used to detect e.g. a functional unit that never
  /// acknowledges.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles since construction or last reset().
  std::uint64_t cycle() const { return cycle_; }

  /// Incremented by every reset().  Host-side software (which holds state
  /// *outside* the component tree, e.g. partially deframed responses)
  /// compares this against a remembered value to notice that the hardware
  /// was reset underneath it.
  std::uint64_t reset_generation() const { return reset_generation_; }

  /// Select the settle kernel.  Call only at a cycle boundary (between
  /// steps); the dirty queue of a half-settled cycle does not transfer.
  /// Switching wakes every component so the event kernel never inherits a
  /// quiet set it did not build itself.
  void set_kernel(Kernel kernel);
  Kernel kernel() const { return kernel_; }

  /// Opt-in intra-System settle parallelism for the levelized kernel:
  /// levels with at least `kParallelLevelThreshold` scheduled components
  /// are partitioned across `threads` lanes (the owner thread plus a small
  /// persistent pool) with one barrier per level.  `threads <= 1` disables
  /// the pool (the default).  Only the levelized kernel consults this; the
  /// other kernels stay strictly single-threaded.  Call between cycles.
  ///
  /// Parallel lanes never touch shared scheduler state directly: wire
  /// writes, new subscriptions, wakes and note_change() are collected in
  /// per-lane scratch and applied serially at the level barrier, so the
  /// architectural result is identical to the single-threaded sweep.
  void set_settle_threads(unsigned threads);
  unsigned settle_threads() const { return settle_threads_; }

  /// Minimum bucket width before a level is worth farming out to the pool.
  static constexpr std::size_t kParallelLevelThreshold = 8;

  /// Largest number of settle iterations any cycle has needed so far.
  /// Exposed so tests can assert the model contains no pathological
  /// combinational chains (see DESIGN.md §6).
  unsigned max_settle_iterations() const { return max_settle_; }

  /// Upper bound on settle iterations before declaring a combinational loop.
  void set_settle_limit(unsigned limit) { settle_limit_ = limit; }

  /// Components currently queued for re-evaluation *within* a settle.  Zero
  /// at every cycle boundary and after reset() — tests assert this
  /// invariant.  (The event kernel's cross-cycle wake set is intentionally
  /// not included: a pending wake is normal between-cycle state.)
  std::size_t pending_reevals() const { return queue_.size(); }

  /// Event-kernel introspection: components in the cross-cycle wake set
  /// (will be evaluated on the next cycle's first settle pass) and in the
  /// commit set (will have commit() run next cycle).
  std::size_t wake_set_size() const { return wake_set_.size(); }
  std::size_t commit_set_size() const { return commit_set_.size(); }

  /// The thread this simulator is affine to (see the class comment).
  std::thread::id owner_thread() const { return owner_; }

  /// Transfer ownership to the calling thread.  Legal only at a quiescent
  /// hand-off — the previous owner must have stopped touching the simulator
  /// (and everything built on it) before the new owner starts.
  void rebind_owner() { owner_ = std::this_thread::get_id(); }

  /// Total component eval() calls across all settle passes (all kernels).
  /// A scheduled kernel's win is visible as a lower count for the same
  /// cycle count; bench_sim_kernel reports the ratio.
  std::uint64_t evals_performed() const { return evals_; }

  /// Called on any Wire value change; marks the settle pass dirty and, under
  /// the scheduled kernels, queues/wakes the wire's recorded readers (under
  /// kEvent their commits are re-armed too).
  void wire_changed(WireBase& wire);

  /// Legacy entry point for code that signals a change without a WireBase
  /// (kept for custom components); forces the conservative path: the pass is
  /// marked dirty and every component is re-evaluated next pass (under
  /// kEvent, every component is also woken and commit-armed).
  void note_change();

  /// Schedule `component` for evaluation and arm its commit (see
  /// Component::wake()).  During a settle this re-queues it into the current
  /// fixed-point search; between cycles it joins the next cycle's wake set.
  void wake(Component& component);

 private:
  friend class Component;
  friend class WireBase;

  void register_wire(WireBase& wire);
  void unregister_wire(WireBase& wire);
  void enqueue(Component& component);
  void clear_queue();
  void arm_commit(Component& component);
  void wake_all();
  void run_eval(Component& component);
  void settle_sensitivity();
  void settle_brute_force();
  void settle_event();
  void settle_levelized();
  void drain_dirty_queue(unsigned& iterations);
  void commit_scheduled();

  /// The observed combinational graph changed shape (new reader/writer
  /// edge, component added/removed, wire destroyed): the levelized schedule
  /// is stale and will be rebuilt at the next levelized settle.
  void graph_changed() { ++graph_epoch_; }
  void rebuild_schedule();
  void record_writer(WireBase& wire);
  void run_level_parallel(std::vector<Component*>& bucket);

  /// Per-lane deferred mutations collected while a level runs in parallel;
  /// applied serially (in lane order) at the level barrier.
  struct ParallelScratch {
    /// (writer, apply) pairs: Wire::set calls captured with their driving
    /// component so writer edges are still recorded at apply time.
    std::vector<std::pair<Component*, std::function<void()>>> writes;
    std::vector<std::pair<WireBase*, Component*>> reads;
    std::vector<Component*> wakes;
    std::uint64_t evals = 0;
    bool note_change = false;
  };
  class SettlePool;
  void parallel_on_read(const WireBase& wire);
  void parallel_defer_write(std::function<void()> apply);

  /// Lane-local state of a parallel level: the component this lane is
  /// evaluating (stands in for reading_) and its deferral scratch.
  /// Thread-local rather than per-simulator so a host::Farm of simulators,
  /// each with its own pool, can never alias another shard's lanes.
  static thread_local Component* tl_reading_;
  static thread_local ParallelScratch* tl_scratch_;

  /// The component whose reads should currently be recorded as
  /// subscriptions: the eval() being settled, or — under kEvent only — the
  /// commit() being run (commit-time reads must re-arm commits).
  Component* recording_reader() const {
    return reading_ != nullptr ? reading_ : committing_;
  }

  std::vector<Component*> components_;
  std::vector<WireBase*> wires_;
  std::vector<Component*> queue_;  ///< components to re-evaluate next pass
  std::vector<Component*> work_;   ///< pass currently being drained
  std::vector<Component*> wake_set_;     ///< kEvent/kLevelized: eval next cycle
  std::vector<Component*> commit_set_;   ///< kEvent/kLevelized: commit next
  std::vector<Component*> commit_work_;  ///< scheduled commits being run
  /// kLevelized: per-level buckets of the sweep currently being seeded or
  /// executed.  Sized by rebuild_schedule(); all empty between cycles.
  std::vector<std::vector<Component*>> buckets_;
  std::vector<ParallelScratch> scratch_;  ///< one per parallel lane
  std::unique_ptr<SettlePool> pool_;      ///< non-null iff settle_threads_>1
  Component* reading_ = nullptr;    ///< component whose eval() is running
  Component* committing_ = nullptr;  ///< kEvent: component whose commit() runs
  std::thread::id owner_ = std::this_thread::get_id();
  std::uint64_t cycle_ = 0;
  std::uint64_t next_order_ = 0;  ///< registration ordinals for Components
  std::uint64_t reset_generation_ = 0;
  std::uint64_t evals_ = 0;
  /// Bumped before every recorded eval()/commit() invocation; wires stamp it
  /// on first read so repeat reads in the same invocation are O(1) no-ops.
  std::uint64_t sub_epoch_ = 0;
  /// kLevelized: monotonically bumped by graph_changed(); the schedule is
  /// rebuilt when it disagrees with schedule_epoch_.  Starts ahead so the
  /// first levelized settle always elaborates.
  std::uint64_t graph_epoch_ = 1;
  std::uint64_t schedule_epoch_ = 0;
  std::size_t current_level_ = 0;  ///< kLevelized: level being swept
  bool changed_ = false;
  bool requeue_all_ = false;  ///< set by note_change(): untracked change
  bool settling_ = false;     ///< inside a settle (wake() targets this cycle)
  bool in_sweep_ = false;     ///< inside the levelized level-order sweep
  /// A level is currently being evaluated on multiple lanes: scheduler
  /// mutations must divert to the per-lane scratch (see ParallelScratch).
  bool parallel_phase_ = false;
  Kernel kernel_ = Kernel::kSensitivity;
  unsigned settle_limit_ = 64;
  unsigned max_settle_ = 0;
  unsigned settle_threads_ = 0;
};

}  // namespace fpgafu::sim
