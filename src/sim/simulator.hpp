#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fpgafu::sim {

class Component;

/// Synchronous cycle-accurate simulation kernel.
///
/// The kernel stands in for the FPGA fabric: it advances a single global
/// clock, which matches the paper's system (the framework runs in one clock
/// domain; functional units *may* contain other domains internally, which in
/// this model is expressed as multi-cycle behaviour inside a component).
///
/// Each cycle is executed in two phases:
///   1. *Settle*: every component's `eval()` (combinational logic) runs
///      repeatedly until no Wire changes value — a fixed-point evaluation
///      that handles arbitrary acyclic combinational topologies without a
///      static schedule.  A genuine combinational loop fails to converge and
///      raises SimError, the moral equivalent of the synthesis error it
///      would produce in VHDL.
///   2. *Commit*: every component's `commit()` (clocked logic) runs once;
///      commits read Wires and the component's own pre-commit state only, so
///      commit order is immaterial — all registers update "simultaneously"
///      exactly as flip-flops do on a clock edge.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a component.  The simulator does not own components; it must
  /// outlive them (Component's ctor/dtor register/unregister automatically).
  void add(Component& component);
  void remove(Component& component);

  /// Assert reset on every component and rewind the cycle counter.
  void reset();

  /// Advance one clock cycle (settle + commit).
  void step();

  /// Advance `n` cycles.
  void run(std::uint64_t n);

  /// Step until `done()` returns true, at most `max_cycles` cycles.
  /// Returns the number of cycles consumed.  Throws SimError on timeout —
  /// this is the watchdog used to detect e.g. a functional unit that never
  /// acknowledges.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles since construction or last reset().
  std::uint64_t cycle() const { return cycle_; }

  /// Called by Wire writes; marks the current settle pass dirty.
  void note_change() { changed_ = true; }

  /// Largest number of settle iterations any cycle has needed so far.
  /// Exposed so tests can assert the model contains no pathological
  /// combinational chains (see DESIGN.md §6).
  unsigned max_settle_iterations() const { return max_settle_; }

  /// Upper bound on settle iterations before declaring a combinational loop.
  void set_settle_limit(unsigned limit) { settle_limit_ = limit; }

 private:
  std::vector<Component*> components_;
  std::uint64_t cycle_ = 0;
  bool changed_ = false;
  unsigned settle_limit_ = 64;
  unsigned max_settle_ = 0;
};

}  // namespace fpgafu::sim
