#include "sim/simulator.hpp"

#include <algorithm>

#include "sim/component.hpp"
#include "sim/signal.hpp"

namespace fpgafu::sim {

void Simulator::add(Component& component) { components_.push_back(&component); }

void Simulator::remove(Component& component) {
  components_.erase(
      std::remove(components_.begin(), components_.end(), &component),
      components_.end());
  // The component may sit in the dirty queue and on sensitivity lists of
  // wires it does not own; purge both so no dangling pointer survives it.
  queue_.erase(std::remove(queue_.begin(), queue_.end(), &component),
               queue_.end());
  for (WireBase* w : wires_) {
    w->readers_.erase(
        std::remove(w->readers_.begin(), w->readers_.end(), &component),
        w->readers_.end());
  }
}

void Simulator::register_wire(WireBase& wire) { wires_.push_back(&wire); }

void Simulator::unregister_wire(WireBase& wire) {
  wires_.erase(std::remove(wires_.begin(), wires_.end(), &wire), wires_.end());
}

void Simulator::enqueue(Component& component) {
  if (!component.queued_) {
    component.queued_ = true;
    queue_.push_back(&component);
  }
}

void Simulator::clear_queue() {
  for (Component* c : queue_) {
    c->queued_ = false;
  }
  queue_.clear();
  requeue_all_ = false;
}

void Simulator::wire_changed(WireBase& wire) {
  changed_ = true;
  if (kernel_ == Kernel::kSensitivity) {
    for (Component* reader : wire.readers_) {
      enqueue(*reader);
    }
  }
}

void Simulator::note_change() {
  changed_ = true;
  requeue_all_ = true;
}

void Simulator::reset() {
  for (Component* c : components_) {
    c->reset();
  }
  cycle_ = 0;
  ++reset_generation_;
  max_settle_ = 0;
  // Drop dirty state so a stray Wire::set between reset() and the first
  // step() cannot leak a stale flag or queue entry into the first settle.
  changed_ = false;
  clear_queue();
}

/// Sensitivity-scheduled settle: pass 1 evaluates every component (their
/// registered state may have changed at the previous commit, which the wire
/// tracker cannot see); every further pass drains only the components whose
/// recorded input wires changed in the pass before.  Both kernels count a
/// pass the same way, so `settle_limit_` and `max_settle_iterations()` keep
/// their meaning, and a combinational loop keeps re-queueing its components
/// until the limit trips exactly as the brute-force kernel would.
void Simulator::settle_sensitivity() {
  // Stray dirty state from between cycles (direct Wire::set by a test or
  // host) is fully absorbed by the full first pass.
  clear_queue();
  unsigned iterations = 1;
  changed_ = false;
  for (Component* c : components_) {
    reading_ = c;
    c->eval();
    ++evals_;
  }
  reading_ = nullptr;
  while (!queue_.empty() || requeue_all_) {
    if (++iterations > settle_limit_) {
      clear_queue();
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
    const bool evaluate_all = requeue_all_;
    requeue_all_ = false;
    changed_ = false;
    if (evaluate_all) {
      // An untracked note_change(): fall back to a full pass.
      clear_queue();
      for (Component* c : components_) {
        reading_ = c;
        c->eval();
        ++evals_;
      }
    } else {
      work_.clear();
      work_.swap(queue_);
      for (Component* c : work_) {
        c->queued_ = false;
      }
      for (Component* c : work_) {
        reading_ = c;
        c->eval();
        ++evals_;
      }
    }
    reading_ = nullptr;
  }
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::settle_brute_force() {
  unsigned iterations = 0;
  do {
    changed_ = false;
    for (Component* c : components_) {
      c->eval();
      ++evals_;
    }
    ++iterations;
    if (iterations > settle_limit_) {
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
  } while (changed_);
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::step() {
  // Thread-affinity contract (see the class comment): only the owning
  // thread may advance the clock.  host::Farm satisfies this by
  // constructing each shard's System on its worker thread.
  assert(std::this_thread::get_id() == owner_ &&
         "sim::Simulator is thread-affine: step() called off the owner "
         "thread (construct the System on the thread that drives it, or "
         "rebind_owner() at a quiescent hand-off)");
  if (kernel_ == Kernel::kSensitivity) {
    settle_sensitivity();
  } else {
    settle_brute_force();
  }
  for (Component* c : components_) {
    c->commit();
  }
  ++cycle_;
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step();
  }
}

std::uint64_t Simulator::run_until(const std::function<bool()>& done,
                                   std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (done()) {
      return i;
    }
    step();
  }
  if (done()) {
    return max_cycles;
  }
  throw SimError("watchdog: condition not reached within " +
                 std::to_string(max_cycles) + " cycles");
}

}  // namespace fpgafu::sim
