#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <typeindex>
#include <typeinfo>

#include "sim/component.hpp"
#include "sim/signal.hpp"

namespace fpgafu::sim {

namespace {

Simulator::Kernel default_kernel() {
  // Cached: getenv once per process.  `FPGAFU_KERNEL` lets CI run the whole
  // suite under a non-default kernel without touching every test.
  static const Simulator::Kernel kernel =
      Simulator::kernel_from_env(std::getenv("FPGAFU_KERNEL"));
  return kernel;
}

}  // namespace

thread_local Component* Simulator::tl_reading_ = nullptr;
thread_local Simulator::ParallelScratch* Simulator::tl_scratch_ = nullptr;

const char* Simulator::kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kBruteForce: return "brute";
    case Kernel::kSensitivity: return "sensitivity";
    case Kernel::kEvent: return "event";
    case Kernel::kLevelized: return "levelized";
  }
  return "?";
}

Simulator::Kernel Simulator::parse_kernel(std::string_view name) {
  for (const Kernel k : kAllKernels) {
    if (name == kernel_name(k)) {
      return k;
    }
  }
  throw SimError("unknown settle kernel '" + std::string(name) +
                 "' (expected brute, sensitivity, event or levelized)");
}

Simulator::Kernel Simulator::kernel_from_env(const char* value) {
  if (value == nullptr) {
    return Kernel::kSensitivity;
  }
  try {
    return parse_kernel(value);
  } catch (const SimError& e) {
    // Re-raise with the variable named, so a typo'd CI line fails with a
    // diagnosis instead of silently running the default kernel.
    throw SimError("FPGAFU_KERNEL: " + std::string(e.what()));
  }
}

/// A tiny persistent worker pool for parallel levels.  Lane 0 is the
/// simulator's owner thread (it participates in every level); lanes 1..N-1
/// are pool threads that sleep between levels.  One condition-variable
/// handoff in, one barrier out, work claimed by atomic index — nothing else
/// is shared, which is what keeps the levelized parallel path TSan-clean.
class Simulator::SettlePool {
 public:
  explicit SettlePool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  ~SettlePool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  unsigned lanes() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Run fn(item, lane) for every item in [0, n), partitioned dynamically
  /// across all lanes; returns only after every item completed and every
  /// worker has quiesced (a full barrier).
  void run(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn) {
    {
      std::lock_guard<std::mutex> lock(m_);
      fn_ = &fn;
      n_ = n;
      next_.store(0, std::memory_order_relaxed);
      active_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    cv_.notify_all();
    drain(0);
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    fn_ = nullptr;
  }

 private:
  void drain(unsigned lane) {
    const auto& fn = *fn_;
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_) {
        break;
      }
      fn(i, lane);
    }
  }

  void worker_loop(unsigned lane) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) {
          return;
        }
        seen = generation_;
      }
      drain(lane);
      {
        std::lock_guard<std::mutex> lock(m_);
        if (--active_ == 0) {
          done_cv_.notify_one();
        }
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, unsigned)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  unsigned active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

Simulator::Simulator() : kernel_(default_kernel()) {}

Simulator::~Simulator() = default;

void Simulator::set_settle_threads(unsigned threads) {
  settle_threads_ = threads;
  if (threads <= 1) {
    pool_.reset();
    scratch_.clear();
    return;
  }
  pool_ = std::make_unique<SettlePool>(threads - 1);
  scratch_.assign(threads, ParallelScratch{});
}

void Simulator::add(Component& component) {
  component.order_ = next_order_++;
  // Until the next schedule rebuild the newcomer sweeps at level 0 in
  // registration order; graph_changed() forces that rebuild.
  component.slot_ = component.order_;
  components_.push_back(&component);
  graph_changed();
  // A freshly constructed component has never run: wake it and arm its
  // commit so the event kernel evaluates and commits it at least once.
  wake(component);
}

void Simulator::remove(Component& component) {
  components_.erase(
      std::remove(components_.begin(), components_.end(), &component),
      components_.end());
  // The component may sit in the dirty queue, the cross-cycle wake/commit
  // sets, the levelized sweep buckets, and on sensitivity/writer lists of
  // wires it does not own; purge all so no dangling pointer survives it.
  queue_.erase(std::remove(queue_.begin(), queue_.end(), &component),
               queue_.end());
  wake_set_.erase(std::remove(wake_set_.begin(), wake_set_.end(), &component),
                  wake_set_.end());
  commit_set_.erase(
      std::remove(commit_set_.begin(), commit_set_.end(), &component),
      commit_set_.end());
  commit_work_.erase(
      std::remove(commit_work_.begin(), commit_work_.end(), &component),
      commit_work_.end());
  for (std::vector<Component*>& bucket : buckets_) {
    bucket.erase(std::remove(bucket.begin(), bucket.end(), &component),
                 bucket.end());
  }
  for (WireBase* w : wires_) {
    w->readers_.erase(
        std::remove(w->readers_.begin(), w->readers_.end(), &component),
        w->readers_.end());
    w->writers_.erase(
        std::remove(w->writers_.begin(), w->writers_.end(), &component),
        w->writers_.end());
  }
  graph_changed();
}

void Simulator::register_wire(WireBase& wire) { wires_.push_back(&wire); }

void Simulator::unregister_wire(WireBase& wire) {
  // Readers hold this wire in their O(1) membership sets; drop it there too
  // so a later wire at the same address cannot alias a stale subscription.
  for (Component* reader : wire.readers_) {
    reader->subscribed_.erase(&wire);
  }
  wires_.erase(std::remove(wires_.begin(), wires_.end(), &wire), wires_.end());
  graph_changed();
}

void Simulator::enqueue(Component& component) {
  if (!component.queued_) {
    component.queued_ = true;
    queue_.push_back(&component);
  }
}

void Simulator::clear_queue() {
  for (Component* c : queue_) {
    c->queued_ = false;
  }
  queue_.clear();
  requeue_all_ = false;
}

void Simulator::arm_commit(Component& component) {
  if (!component.commit_armed_) {
    component.commit_armed_ = true;
    commit_set_.push_back(&component);
  }
}

void Simulator::wake(Component& component) {
  if (parallel_phase_) {
    // A lane may not touch the shared scheduler; apply at the barrier.
    tl_scratch_->wakes.push_back(&component);
    return;
  }
  if (in_sweep_ && component.level_ > current_level_ &&
      component.level_ < buckets_.size()) {
    // Mid-sweep forward edge: the component's level has not been swept yet,
    // so just drop it into its bucket — it will be evaluated exactly once,
    // after everything that feeds it.  This is the levelized hot path.
    if (!component.sweep_pending_) {
      component.sweep_pending_ = true;
      buckets_[component.level_].push_back(&component);
    }
  } else if (settling_) {
    // Mid-settle (or a backward/stale edge mid-sweep): fold the component
    // into the current fixed-point search.
    enqueue(component);
  } else if (!component.woken_) {
    component.woken_ = true;
    wake_set_.push_back(&component);
  }
  arm_commit(component);
}

void Simulator::wake_all() {
  for (Component* c : components_) {
    wake(*c);
  }
}

/// Record `reading_` as a driver of `wire` — the writer half of the edge
/// set the levelized schedule is built from.  Recorded under every kernel
/// (the data is cheap and makes a later switch to kLevelized start warm).
void Simulator::record_writer(WireBase& wire) {
  Component* writer = reading_;
  if (writer == nullptr) {
    return;  // host code or a commit() wrote the wire: not a settle edge
  }
  for (Component* known : wire.writers_) {
    if (known == writer) {
      return;  // one driver per wire: a single compare in the steady state
    }
  }
  wire.writers_.push_back(writer);
  graph_changed();
}

void Simulator::wire_changed(WireBase& wire) {
  changed_ = true;
  record_writer(wire);
  if (kernel_ == Kernel::kSensitivity) {
    for (Component* reader : wire.readers_) {
      enqueue(*reader);
    }
  } else if (kernel_ == Kernel::kEvent || kernel_ == Kernel::kLevelized) {
    // Re-schedule the readers' evals (into the running sweep or settle if
    // we are inside one, next cycle's wake set otherwise) and re-promote
    // their commits: a recorded input changed, so a demoted commit may now
    // act.
    for (Component* reader : wire.readers_) {
      wake(*reader);
    }
  }
}

void Simulator::note_change() {
  if (parallel_phase_) {
    tl_scratch_->note_change = true;
    return;
  }
  changed_ = true;
  requeue_all_ = true;
  if (kernel_ == Kernel::kEvent || kernel_ == Kernel::kLevelized) {
    // Untracked change: conservatively wake + commit-arm everything.  Inside
    // a settle, requeue_all_ already forces a full eval pass; the wake_all()
    // covers the commit set (and, between cycles, the next first pass).
    wake_all();
  }
}

void Simulator::set_kernel(Kernel kernel) {
  kernel_ = kernel;
  // The event kernel must never inherit a quiet set built by another kernel
  // (which does not maintain one): start from everything-active.
  wake_all();
}

void Simulator::reset() {
  for (Component* c : components_) {
    c->reset();
  }
  cycle_ = 0;
  ++reset_generation_;
  max_settle_ = 0;
  // Drop dirty state so a stray Wire::set between reset() and the first
  // step() cannot leak a stale flag or queue entry into the first settle.
  changed_ = false;
  clear_queue();
  // Drop all cross-cycle activity state and rebuild it as everything-active:
  // after a reset the event kernel must re-observe the whole design.
  wake_set_.clear();
  commit_set_.clear();
  // Levelized transient state is dropped the same way: no component stays
  // pre-placed in a sweep bucket across a reset.  The schedule itself (the
  // level/slot assignment) survives — the graph topology did not change.
  for (std::vector<Component*>& bucket : buckets_) {
    bucket.clear();
  }
  in_sweep_ = false;
  for (Component* c : components_) {
    c->woken_ = false;
    c->commit_armed_ = false;
    c->sweep_pending_ = false;
  }
  wake_all();
}

void Simulator::run_eval(Component& component) {
  reading_ = &component;
  ++sub_epoch_;
  component.eval();
  ++evals_;
}

/// Sensitivity-scheduled settle: pass 1 evaluates every component (their
/// registered state may have changed at the previous commit, which the wire
/// tracker cannot see); every further pass drains only the components whose
/// recorded input wires changed in the pass before.  All kernels count a
/// pass the same way, so `settle_limit_` and `max_settle_iterations()` keep
/// their meaning, and a combinational loop keeps re-queueing its components
/// until the limit trips exactly as the brute-force kernel would.
void Simulator::settle_sensitivity() {
  // Stray dirty state from between cycles (direct Wire::set by a test or
  // host) is fully absorbed by the full first pass.
  clear_queue();
  settling_ = true;
  unsigned iterations = 1;
  changed_ = false;
  for (Component* c : components_) {
    run_eval(*c);
  }
  reading_ = nullptr;
  while (!queue_.empty() || requeue_all_) {
    if (++iterations > settle_limit_) {
      clear_queue();
      settling_ = false;
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
    const bool evaluate_all = requeue_all_;
    requeue_all_ = false;
    changed_ = false;
    if (evaluate_all) {
      // An untracked note_change(): fall back to a full pass.
      clear_queue();
      for (Component* c : components_) {
        run_eval(*c);
      }
    } else {
      work_.clear();
      work_.swap(queue_);
      for (Component* c : work_) {
        c->queued_ = false;
      }
      for (Component* c : work_) {
        run_eval(*c);
      }
    }
    reading_ = nullptr;
  }
  settling_ = false;
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::settle_brute_force() {
  unsigned iterations = 0;
  do {
    changed_ = false;
    for (Component* c : components_) {
      c->eval();
      ++evals_;
    }
    ++iterations;
    if (iterations > settle_limit_) {
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
  } while (changed_);
  max_settle_ = std::max(max_settle_, iterations);
}

/// Event-driven settle: the first pass evaluates only the cross-cycle wake
/// set — components woken by a wire change since the previous settle, an
/// explicit wake(), a commit that reported activity, or reset()/add().
/// Subsequent passes are the same dirty-queue drain as settle_sensitivity.
/// Sound by the same induction as the sensitivity kernel, extended across
/// the clock edge: a quiet component's eval() output can only change after
/// one of its recorded inputs changes or its own registered state changes
/// (which its previous commit reported as activity) — and each such event
/// wakes it.
void Simulator::settle_event() {
  clear_queue();
  settling_ = true;
  unsigned iterations = 1;
  changed_ = false;
  work_.clear();
  work_.swap(wake_set_);
  for (Component* c : work_) {
    c->woken_ = false;
  }
  for (Component* c : work_) {
    run_eval(*c);
  }
  reading_ = nullptr;
  drain_dirty_queue(iterations);
  settling_ = false;
  max_settle_ = std::max(max_settle_, iterations);
}

/// Shared fixed-point tail of the scheduled cross-cycle kernels (kEvent's
/// later passes; kLevelized's fallback after the level-order sweep): drain
/// the dirty queue until nothing re-queues, counting passes against
/// settle_limit_.  On the combinational-loop throw a recoverable scheduler
/// state is left behind (everything woken), so the caller may raise the
/// limit and continue stepping.
void Simulator::drain_dirty_queue(unsigned& iterations) {
  while (!queue_.empty() || requeue_all_) {
    if (++iterations > settle_limit_) {
      clear_queue();
      settling_ = false;
      wake_all();
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
    const bool evaluate_all = requeue_all_;
    requeue_all_ = false;
    changed_ = false;
    if (evaluate_all) {
      clear_queue();
      for (Component* c : components_) {
        run_eval(*c);
      }
    } else {
      work_.clear();
      work_.swap(queue_);
      for (Component* c : work_) {
        c->queued_ = false;
      }
      for (Component* c : work_) {
        run_eval(*c);
      }
    }
    reading_ = nullptr;
  }
}

/// Rebuild the levelized schedule from the recorded reader/writer wire
/// edges: longest-path levels by iterative relaxation (rounds capped so a
/// combinational cycle clamps instead of spinning — the settle-time
/// fallback drain still detects it against settle_limit_), then a global
/// slot order of (level, concrete type, registration) so each level's
/// bucket, sorted by slot, evaluates same-type components back-to-back.
void Simulator::rebuild_schedule() {
  schedule_epoch_ = graph_epoch_;
  for (Component* c : components_) {
    c->level_ = 0;
  }
  const std::uint32_t cap =
      static_cast<std::uint32_t>(components_.size()) + 1;
  bool grew = true;
  std::uint32_t rounds = 0;
  while (grew && rounds++ < cap) {
    grew = false;
    for (WireBase* w : wires_) {
      if (w->writers_.empty() || w->readers_.empty()) {
        continue;
      }
      for (Component* writer : w->writers_) {
        const std::uint32_t need = writer->level_ + 1;
        if (need >= cap) {
          continue;  // cyclic: clamp, the fallback drain raises SimError
        }
        for (Component* reader : w->readers_) {
          if (reader != writer && reader->level_ < need) {
            reader->level_ = need;
            grew = true;
          }
        }
      }
    }
  }
  std::uint32_t max_level = 0;
  for (Component* c : components_) {
    max_level = std::max(max_level, c->level_);
  }
  for (std::vector<Component*>& bucket : buckets_) {
    bucket.clear();  // paranoia: buckets are empty between cycles
  }
  buckets_.resize(static_cast<std::size_t>(max_level) + 1);
  std::vector<Component*> order(components_);
  std::sort(order.begin(), order.end(),
            [](const Component* a, const Component* b) {
              if (a->level_ != b->level_) {
                return a->level_ < b->level_;
              }
              const std::type_index ta(typeid(*a));
              const std::type_index tb(typeid(*b));
              if (ta != tb) {
                return ta < tb;
              }
              return a->order_ < b->order_;
            });
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i]->slot_ = i;
  }
}

void Simulator::parallel_on_read(const WireBase& wire) {
  Component* reader = tl_reading_;
  if (reader == nullptr || reader->subscribed_.count(&wire) != 0) {
    return;  // already subscribed: nothing mutates subscribed_ mid-level
  }
  tl_scratch_->reads.emplace_back(const_cast<WireBase*>(&wire), reader);
}

void Simulator::parallel_defer_write(std::function<void()> apply) {
  tl_scratch_->writes.emplace_back(tl_reading_, std::move(apply));
}

/// Evaluate one wide level across the pool lanes, then apply every lane's
/// deferred mutations serially.  Within the level all lanes read the
/// pre-level wire values (writes are deferred), so a same-level read of a
/// same-level driver's output simply sees the old value and is re-scheduled
/// when the write applies — the fixed point is unchanged.
void Simulator::run_level_parallel(std::vector<Component*>& bucket) {
  for (Component* c : bucket) {
    c->sweep_pending_ = false;
  }
  parallel_phase_ = true;
  pool_->run(bucket.size(), [&](std::size_t i, unsigned lane) {
    ParallelScratch& scratch = scratch_[lane];
    tl_scratch_ = &scratch;
    tl_reading_ = bucket[i];
    bucket[i]->eval();
    ++scratch.evals;
    tl_reading_ = nullptr;
  });
  parallel_phase_ = false;
  for (ParallelScratch& scratch : scratch_) {
    evals_ += scratch.evals;
    scratch.evals = 0;
    for (auto& [wire, reader] : scratch.reads) {
      wire->subscribe(reader);
    }
    scratch.reads.clear();
    for (auto& [writer, apply] : scratch.writes) {
      // Attribute the write to its driving lane component so the writer
      // edge is recorded exactly as in the serial path.
      reading_ = writer;
      apply();
    }
    reading_ = nullptr;
    scratch.writes.clear();
    for (Component* c : scratch.wakes) {
      wake(*c);
    }
    scratch.wakes.clear();
    if (scratch.note_change) {
      scratch.note_change = false;
      note_change();
    }
  }
}

/// Levelized settle: seed the per-level buckets from the cross-cycle wake
/// set, sweep the levels in order (each woken component evaluated exactly
/// once, after everything that feeds it), then drain whatever fell back to
/// the dirty queue — backward edges, components whose level is stale, the
/// warm-up cycles before the schedule has observed the graph.
void Simulator::settle_levelized() {
  clear_queue();
  if (schedule_epoch_ != graph_epoch_) {
    rebuild_schedule();
  }
  settling_ = true;
  unsigned iterations = 1;
  changed_ = false;
  try {
    in_sweep_ = true;
    for (Component* c : wake_set_) {
      c->woken_ = false;
      if (c->sweep_pending_) {
        continue;
      }
      if (c->level_ < buckets_.size()) {
        c->sweep_pending_ = true;
        buckets_[c->level_].push_back(c);
      } else {
        enqueue(*c);  // stale level (schedule shrank): fallback path
      }
    }
    wake_set_.clear();
    for (std::size_t level = 0; level < buckets_.size(); ++level) {
      current_level_ = level;
      std::vector<Component*>& bucket = buckets_[level];
      if (bucket.empty()) {
        continue;
      }
      std::sort(bucket.begin(), bucket.end(),
                [](const Component* a, const Component* b) {
                  return a->slot_ < b->slot_;
                });
      if (pool_ != nullptr && bucket.size() >= kParallelLevelThreshold) {
        run_level_parallel(bucket);
      } else {
        for (Component* c : bucket) {
          c->sweep_pending_ = false;
          run_eval(*c);
        }
        reading_ = nullptr;
      }
      bucket.clear();
    }
    in_sweep_ = false;
    drain_dirty_queue(iterations);
  } catch (...) {
    // Leave a recoverable scheduler state behind any throw (combinational
    // loop from the drain, a SimError out of a component's eval mid-sweep):
    // buckets emptied, flags consistent, everything woken for next cycle.
    for (std::vector<Component*>& bucket : buckets_) {
      for (Component* c : bucket) {
        c->sweep_pending_ = false;
      }
      bucket.clear();
    }
    in_sweep_ = false;
    reading_ = nullptr;
    clear_queue();
    settling_ = false;
    wake_all();
    throw;
  }
  settling_ = false;
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::step() {
  // Thread-affinity contract (see the class comment): only the owning
  // thread may advance the clock.  host::Farm satisfies this by
  // constructing each shard's System on its worker thread.
  assert(std::this_thread::get_id() == owner_ &&
         "sim::Simulator is thread-affine: step() called off the owner "
         "thread (construct the System on the thread that drives it, or "
         "rebind_owner() at a quiescent hand-off)");
  switch (kernel_) {
    case Kernel::kSensitivity:
      settle_sensitivity();
      break;
    case Kernel::kBruteForce:
      settle_brute_force();
      break;
    case Kernel::kEvent:
      settle_event();
      break;
    case Kernel::kLevelized:
      settle_levelized();
      break;
  }
  if (kernel_ == Kernel::kEvent || kernel_ == Kernel::kLevelized) {
    commit_scheduled();
  } else {
    for (Component* c : components_) {
      c->commit();
    }
  }
  ++cycle_;
}

/// Commit phase of the cross-cycle scheduled kernels (kEvent, kLevelized):
/// run only armed commits.  Each component is provisionally demoted; it
/// stays in the (fresh) commit set only if its commit reported activity
/// (bound Reg change or mark_active(), both of which wake()), a wire it
/// read gets changed later, someone wakes it, or it opted out of demotion.
/// Commit-time wire reads are recorded (recording_reader()) so conditional
/// commit read sets stay conservative, exactly like eval sensitivities.
void Simulator::commit_scheduled() {
  commit_work_.clear();
  commit_work_.swap(commit_set_);
  // Registration order, so the armed subsequence commits in exactly the
  // order the full-commit kernels would (skipped components are by
  // definition unchanged): probes reading non-wire state mid-commit see
  // kernel-independent values.
  std::sort(commit_work_.begin(), commit_work_.end(),
            [](const Component* a, const Component* b) {
              return a->order_ < b->order_;
            });
  for (Component* c : commit_work_) {
    c->commit_armed_ = false;
    committing_ = c;
    ++sub_epoch_;
    c->commit();
    if (c->always_active_) {
      wake(*c);
    }
  }
  committing_ = nullptr;
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step();
  }
}

std::uint64_t Simulator::run_until(const std::function<bool()>& done,
                                   std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (done()) {
      return i;
    }
    step();
  }
  if (done()) {
    return max_cycles;
  }
  throw SimError("watchdog: condition not reached within " +
                 std::to_string(max_cycles) + " cycles");
}

}  // namespace fpgafu::sim
