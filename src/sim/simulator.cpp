#include "sim/simulator.hpp"

#include <algorithm>

#include "sim/component.hpp"

namespace fpgafu::sim {

void Simulator::add(Component& component) { components_.push_back(&component); }

void Simulator::remove(Component& component) {
  components_.erase(
      std::remove(components_.begin(), components_.end(), &component),
      components_.end());
}

void Simulator::reset() {
  for (Component* c : components_) {
    c->reset();
  }
  cycle_ = 0;
  max_settle_ = 0;
}

void Simulator::step() {
  unsigned iterations = 0;
  do {
    changed_ = false;
    for (Component* c : components_) {
      c->eval();
    }
    ++iterations;
    if (iterations > settle_limit_) {
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
  } while (changed_);
  max_settle_ = std::max(max_settle_, iterations);
  for (Component* c : components_) {
    c->commit();
  }
  ++cycle_;
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step();
  }
}

std::uint64_t Simulator::run_until(const std::function<bool()>& done,
                                   std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (done()) {
      return i;
    }
    step();
  }
  if (done()) {
    return max_cycles;
  }
  throw SimError("watchdog: condition not reached within " +
                 std::to_string(max_cycles) + " cycles");
}

}  // namespace fpgafu::sim
