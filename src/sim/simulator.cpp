#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "sim/component.hpp"
#include "sim/signal.hpp"

namespace fpgafu::sim {

namespace {

Simulator::Kernel default_kernel() {
  // Cached: getenv once per process.  `FPGAFU_KERNEL` lets CI run the whole
  // suite under a non-default kernel without touching every test.
  static const Simulator::Kernel kernel = [] {
    const char* env = std::getenv("FPGAFU_KERNEL");
    if (env == nullptr) {
      return Simulator::Kernel::kSensitivity;
    }
    const std::string_view v(env);
    if (v == "brute") {
      return Simulator::Kernel::kBruteForce;
    }
    if (v == "event") {
      return Simulator::Kernel::kEvent;
    }
    return Simulator::Kernel::kSensitivity;
  }();
  return kernel;
}

}  // namespace

Simulator::Simulator() : kernel_(default_kernel()) {}

void Simulator::add(Component& component) {
  component.order_ = next_order_++;
  components_.push_back(&component);
  // A freshly constructed component has never run: wake it and arm its
  // commit so the event kernel evaluates and commits it at least once.
  wake(component);
}

void Simulator::remove(Component& component) {
  components_.erase(
      std::remove(components_.begin(), components_.end(), &component),
      components_.end());
  // The component may sit in the dirty queue, the cross-cycle wake/commit
  // sets, and on sensitivity lists of wires it does not own; purge all so no
  // dangling pointer survives it.
  queue_.erase(std::remove(queue_.begin(), queue_.end(), &component),
               queue_.end());
  wake_set_.erase(std::remove(wake_set_.begin(), wake_set_.end(), &component),
                  wake_set_.end());
  commit_set_.erase(
      std::remove(commit_set_.begin(), commit_set_.end(), &component),
      commit_set_.end());
  commit_work_.erase(
      std::remove(commit_work_.begin(), commit_work_.end(), &component),
      commit_work_.end());
  for (WireBase* w : wires_) {
    w->readers_.erase(
        std::remove(w->readers_.begin(), w->readers_.end(), &component),
        w->readers_.end());
  }
}

void Simulator::register_wire(WireBase& wire) { wires_.push_back(&wire); }

void Simulator::unregister_wire(WireBase& wire) {
  // Readers hold this wire in their O(1) membership sets; drop it there too
  // so a later wire at the same address cannot alias a stale subscription.
  for (Component* reader : wire.readers_) {
    reader->subscribed_.erase(&wire);
  }
  wires_.erase(std::remove(wires_.begin(), wires_.end(), &wire), wires_.end());
}

void Simulator::enqueue(Component& component) {
  if (!component.queued_) {
    component.queued_ = true;
    queue_.push_back(&component);
  }
}

void Simulator::clear_queue() {
  for (Component* c : queue_) {
    c->queued_ = false;
  }
  queue_.clear();
  requeue_all_ = false;
}

void Simulator::arm_commit(Component& component) {
  if (!component.commit_armed_) {
    component.commit_armed_ = true;
    commit_set_.push_back(&component);
  }
}

void Simulator::wake(Component& component) {
  if (settling_) {
    // Mid-settle: fold the component into the current fixed-point search.
    enqueue(component);
  } else if (!component.woken_) {
    component.woken_ = true;
    wake_set_.push_back(&component);
  }
  arm_commit(component);
}

void Simulator::wake_all() {
  for (Component* c : components_) {
    wake(*c);
  }
}

void Simulator::wire_changed(WireBase& wire) {
  changed_ = true;
  if (kernel_ == Kernel::kSensitivity) {
    for (Component* reader : wire.readers_) {
      enqueue(*reader);
    }
  } else if (kernel_ == Kernel::kEvent) {
    // Re-schedule the readers' evals (this settle if we are inside one,
    // next cycle otherwise) and re-promote their commits: a recorded input
    // changed, so a demoted commit may now act.
    for (Component* reader : wire.readers_) {
      wake(*reader);
    }
  }
}

void Simulator::note_change() {
  changed_ = true;
  requeue_all_ = true;
  if (kernel_ == Kernel::kEvent) {
    // Untracked change: conservatively wake + commit-arm everything.  Inside
    // a settle, requeue_all_ already forces a full eval pass; the wake_all()
    // covers the commit set (and, between cycles, the next first pass).
    wake_all();
  }
}

void Simulator::set_kernel(Kernel kernel) {
  kernel_ = kernel;
  // The event kernel must never inherit a quiet set built by another kernel
  // (which does not maintain one): start from everything-active.
  wake_all();
}

void Simulator::reset() {
  for (Component* c : components_) {
    c->reset();
  }
  cycle_ = 0;
  ++reset_generation_;
  max_settle_ = 0;
  // Drop dirty state so a stray Wire::set between reset() and the first
  // step() cannot leak a stale flag or queue entry into the first settle.
  changed_ = false;
  clear_queue();
  // Drop all cross-cycle activity state and rebuild it as everything-active:
  // after a reset the event kernel must re-observe the whole design.
  wake_set_.clear();
  commit_set_.clear();
  for (Component* c : components_) {
    c->woken_ = false;
    c->commit_armed_ = false;
  }
  wake_all();
}

void Simulator::run_eval(Component& component) {
  reading_ = &component;
  ++sub_epoch_;
  component.eval();
  ++evals_;
}

/// Sensitivity-scheduled settle: pass 1 evaluates every component (their
/// registered state may have changed at the previous commit, which the wire
/// tracker cannot see); every further pass drains only the components whose
/// recorded input wires changed in the pass before.  All kernels count a
/// pass the same way, so `settle_limit_` and `max_settle_iterations()` keep
/// their meaning, and a combinational loop keeps re-queueing its components
/// until the limit trips exactly as the brute-force kernel would.
void Simulator::settle_sensitivity() {
  // Stray dirty state from between cycles (direct Wire::set by a test or
  // host) is fully absorbed by the full first pass.
  clear_queue();
  settling_ = true;
  unsigned iterations = 1;
  changed_ = false;
  for (Component* c : components_) {
    run_eval(*c);
  }
  reading_ = nullptr;
  while (!queue_.empty() || requeue_all_) {
    if (++iterations > settle_limit_) {
      clear_queue();
      settling_ = false;
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
    const bool evaluate_all = requeue_all_;
    requeue_all_ = false;
    changed_ = false;
    if (evaluate_all) {
      // An untracked note_change(): fall back to a full pass.
      clear_queue();
      for (Component* c : components_) {
        run_eval(*c);
      }
    } else {
      work_.clear();
      work_.swap(queue_);
      for (Component* c : work_) {
        c->queued_ = false;
      }
      for (Component* c : work_) {
        run_eval(*c);
      }
    }
    reading_ = nullptr;
  }
  settling_ = false;
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::settle_brute_force() {
  unsigned iterations = 0;
  do {
    changed_ = false;
    for (Component* c : components_) {
      c->eval();
      ++evals_;
    }
    ++iterations;
    if (iterations > settle_limit_) {
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
  } while (changed_);
  max_settle_ = std::max(max_settle_, iterations);
}

/// Event-driven settle: the first pass evaluates only the cross-cycle wake
/// set — components woken by a wire change since the previous settle, an
/// explicit wake(), a commit that reported activity, or reset()/add().
/// Subsequent passes are the same dirty-queue drain as settle_sensitivity.
/// Sound by the same induction as the sensitivity kernel, extended across
/// the clock edge: a quiet component's eval() output can only change after
/// one of its recorded inputs changes or its own registered state changes
/// (which its previous commit reported as activity) — and each such event
/// wakes it.
void Simulator::settle_event() {
  clear_queue();
  settling_ = true;
  unsigned iterations = 1;
  changed_ = false;
  work_.clear();
  work_.swap(wake_set_);
  for (Component* c : work_) {
    c->woken_ = false;
  }
  for (Component* c : work_) {
    run_eval(*c);
  }
  reading_ = nullptr;
  while (!queue_.empty() || requeue_all_) {
    if (++iterations > settle_limit_) {
      clear_queue();
      settling_ = false;
      // Leave a recoverable scheduler state behind the throw: the caller
      // may raise the limit and continue stepping.
      wake_all();
      throw SimError("combinational loop: signals did not settle within " +
                     std::to_string(settle_limit_) + " iterations");
    }
    const bool evaluate_all = requeue_all_;
    requeue_all_ = false;
    changed_ = false;
    if (evaluate_all) {
      clear_queue();
      for (Component* c : components_) {
        run_eval(*c);
      }
    } else {
      work_.clear();
      work_.swap(queue_);
      for (Component* c : work_) {
        c->queued_ = false;
      }
      for (Component* c : work_) {
        run_eval(*c);
      }
    }
    reading_ = nullptr;
  }
  settling_ = false;
  max_settle_ = std::max(max_settle_, iterations);
}

void Simulator::step() {
  // Thread-affinity contract (see the class comment): only the owning
  // thread may advance the clock.  host::Farm satisfies this by
  // constructing each shard's System on its worker thread.
  assert(std::this_thread::get_id() == owner_ &&
         "sim::Simulator is thread-affine: step() called off the owner "
         "thread (construct the System on the thread that drives it, or "
         "rebind_owner() at a quiescent hand-off)");
  switch (kernel_) {
    case Kernel::kSensitivity:
      settle_sensitivity();
      break;
    case Kernel::kBruteForce:
      settle_brute_force();
      break;
    case Kernel::kEvent:
      settle_event();
      break;
  }
  if (kernel_ == Kernel::kEvent) {
    // Run only armed commits.  Each component is provisionally demoted; it
    // stays in the (fresh) commit set only if its commit reported activity
    // (bound Reg change or mark_active(), both of which wake()), a wire it
    // read gets changed later, someone wakes it, or it opted out of
    // demotion.  Commit-time wire reads are recorded (recording_reader())
    // so conditional commit read sets stay conservative, exactly like
    // eval sensitivities.
    commit_work_.clear();
    commit_work_.swap(commit_set_);
    // Registration order, so the armed subsequence commits in exactly the
    // order the full-commit kernels would (skipped components are by
    // definition unchanged): probes reading non-wire state mid-commit see
    // kernel-independent values.
    std::sort(commit_work_.begin(), commit_work_.end(),
              [](const Component* a, const Component* b) {
                return a->order_ < b->order_;
              });
    for (Component* c : commit_work_) {
      c->commit_armed_ = false;
      committing_ = c;
      ++sub_epoch_;
      c->commit();
      if (c->always_active_) {
        wake(*c);
      }
    }
    committing_ = nullptr;
  } else {
    for (Component* c : components_) {
      c->commit();
    }
  }
  ++cycle_;
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step();
  }
}

std::uint64_t Simulator::run_until(const std::function<bool()>& done,
                                   std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (done()) {
      return i;
    }
    step();
  }
  if (done()) {
    return max_cycles;
  }
  throw SimError("watchdog: condition not reached within " +
                 std::to_string(max_cycles) + " cycles");
}

}  // namespace fpgafu::sim
