#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fpgafu::sim {

/// Lightweight signal/event trace, the debugging stand-in for a VHDL
/// waveform dump.  Components call `event()` when something interesting
/// happens (a handshake fires, an FSM changes state); tests can assert on
/// the recorded sequence and developers can print it.
class EventTrace {
 public:
  struct Entry {
    std::uint64_t cycle;
    std::string signal;
    std::uint64_t value;
  };

  explicit EventTrace(std::size_t max_entries = 1u << 20)
      : max_entries_(max_entries) {}

  void event(std::uint64_t cycle, std::string signal, std::uint64_t value) {
    if (entries_.size() < max_entries_) {
      entries_.push_back({cycle, std::move(signal), value});
    } else {
      ++dropped_;
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    entries_.clear();
    dropped_ = 0;
  }

  void print(std::ostream& os) const;

 private:
  std::vector<Entry> entries_;
  std::size_t max_entries_;
  std::uint64_t dropped_ = 0;
};

/// Named monotonically increasing counters for cycle statistics
/// (instructions dispatched, stalls, arbiter conflicts, ...).  Benchmarks
/// read these to report utilisation the way the paper discusses pipeline
/// behaviour.
///
/// Names are interned: `handle()` resolves a name to a dense index once,
/// and `bump(Handle)` is a plain vector increment.  Per-cycle code (the
/// dispatcher's stall accounting, the write arbiter's retirement counters)
/// interns its handles at construction so the hot path never hashes a
/// string.  The string overloads remain for cold paths and tests.
class Counters {
 public:
  using Handle = std::uint32_t;

  /// Intern `name`, creating the counter at zero if new.  Handles stay
  /// valid for the lifetime of this Counters object (clear() zeroes values
  /// but keeps the name table).
  Handle handle(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
    const Handle h = static_cast<Handle>(values_.size());
    names_.emplace_back(name);
    values_.push_back(0);
    index_.emplace(names_.back(), h);
    return h;
  }

  void bump(Handle h, std::uint64_t by = 1) { values_[h] += by; }
  void bump(const std::string& name, std::uint64_t by = 1) {
    bump(handle(name), by);
  }

  std::uint64_t get(Handle h) const { return values_[h]; }
  std::uint64_t get(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
  }

  const std::string& name(Handle h) const { return names_[h]; }
  std::size_t size() const { return values_.size(); }

  /// Materialised name -> value view (sorted, zero entries included).
  std::map<std::string, std::uint64_t> all() const {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      out.emplace(names_[i], values_[i]);
    }
    return out;
  }

  /// Add every counter from `other` into this one, matching by name and
  /// creating counters that do not exist here yet.  Handles interned on
  /// this object before the merge remain valid and keep their names: a
  /// merge only appends to the name table, never reorders it.  This is how
  /// host::Farm aggregates per-shard statistics into one fleet-wide view.
  void merge(const Counters& other) {
    for (std::size_t i = 0; i < other.values_.size(); ++i) {
      bump(handle(other.names_[i]), other.values_[i]);
    }
  }

  /// An independent by-value copy.  Counter owners hand snapshots across
  /// thread boundaries (under their own locking) instead of sharing live
  /// objects; the copy's handles are its own.
  Counters snapshot() const { return *this; }

  /// Zero every counter.  Interned handles remain valid.
  void clear() { values_.assign(values_.size(), 0); }

 private:
  /// Heterogeneous lookup so get(string_view) does not allocate.
  std::map<std::string, Handle, std::less<>> index_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> values_;
};

}  // namespace fpgafu::sim
