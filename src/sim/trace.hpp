#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fpgafu::sim {

/// Lightweight signal/event trace, the debugging stand-in for a VHDL
/// waveform dump.  Components call `event()` when something interesting
/// happens (a handshake fires, an FSM changes state); tests can assert on
/// the recorded sequence and developers can print it.
class EventTrace {
 public:
  struct Entry {
    std::uint64_t cycle;
    std::string signal;
    std::uint64_t value;
  };

  explicit EventTrace(std::size_t max_entries = 1u << 20)
      : max_entries_(max_entries) {}

  void event(std::uint64_t cycle, std::string signal, std::uint64_t value) {
    if (entries_.size() < max_entries_) {
      entries_.push_back({cycle, std::move(signal), value});
    } else {
      ++dropped_;
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    entries_.clear();
    dropped_ = 0;
  }

  void print(std::ostream& os) const;

 private:
  std::vector<Entry> entries_;
  std::size_t max_entries_;
  std::uint64_t dropped_ = 0;
};

/// Named monotonically increasing counters for cycle statistics
/// (instructions dispatched, stalls, arbiter conflicts, ...).  Benchmarks
/// read these to report utilisation the way the paper discusses pipeline
/// behaviour.
class Counters {
 public:
  void bump(const std::string& name, std::uint64_t by = 1) {
    values_[name] += by;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return values_; }
  void clear() { values_.clear(); }

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace fpgafu::sim
