#pragma once

#include <cstddef>

#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::sim {

/// Clocked hardware FIFO with handshaked input and output sides.
///
/// Models the on-chip SRAM FIFOs the thesis uses inside performance-
/// optimised functional units (§2.3.4): one push and one pop per cycle,
/// first-word fall-through (the head is visible combinationally the cycle
/// after it is enqueued).
///
/// `combinational_forward` mirrors the thesis' remark that forwarding the
/// write-arbiter acknowledgement combinationally lets a unit accept a new
/// item every cycle even when full, at the cost of a longer combinational
/// path: when enabled, `in.ready` is asserted if the FIFO is full but the
/// consumer is taking the head this very cycle.
template <typename T>
class HwFifo : public Component {
 public:
  HwFifo(Simulator& sim, std::string name, std::size_t capacity,
         bool combinational_forward = false)
      : Component(sim, std::move(name)),
        in(sim),
        out(sim),
        storage_(capacity),
        forward_(combinational_forward) {}

  Handshake<T> in;
  Handshake<T> out;

  void eval() override {
    const bool popping = !storage_.empty() && out.ready.get();
    in.ready.set(!storage_.full() || (forward_ && popping));
    if (!storage_.empty()) {
      out.offer(storage_.front());
    } else {
      out.withdraw();
    }
  }

  void commit() override {
    const bool do_pop = out.fire();
    const bool do_push = in.fire();
    if (do_pop) {
      storage_.pop();
    }
    if (do_push) {
      storage_.push(in.data.get());
    }
    if (do_pop || do_push) {
      mark_active();  // storage_ is clocked state the tracker cannot see
    }
  }

  void reset() override {
    storage_.clear();
    in.reset();
    out.reset();
  }

  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return storage_.capacity(); }
  bool empty() const { return storage_.empty(); }
  bool full() const { return storage_.full(); }

 private:
  RingBuffer<T> storage_;
  bool forward_;
};

}  // namespace fpgafu::sim
