#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/simulator.hpp"

namespace fpgafu::sim {

/// Untyped part of a Wire: identity, the owning simulator, and the
/// sensitivity list — the set of components observed reading this wire from
/// their `eval()` (and, under the event kernel, from their `commit()`: a
/// commit-time read must re-arm the reader's commit when the wire changes).
///
/// The list is populated automatically: while a component's `eval()` runs,
/// every `Wire::get()` records that component as a reader.  Recording
/// happens on every pass (not just the first), so a component whose read set
/// is conditional subscribes to a wire the first time any of its evaluations
/// actually reads it.  Subscriptions are conservative and permanent: a stale
/// subscription costs at most a redundant re-evaluation, which is harmless
/// because `eval()` is idempotent for fixed inputs.  Components with reads
/// the tracker cannot see (e.g. data fetched through a non-Wire side
/// channel) can subscribe explicitly with `sensitive_to()`.
///
/// Recording is O(1) per read: the simulator bumps a global epoch before
/// every recorded eval()/commit() invocation and the wire stamps it on first
/// read, so repeat reads within one invocation dedupe on a single integer
/// compare (plus a kept back-slot fast path); cross-invocation membership is
/// an O(1) expected hash-set probe on the reader (`Component::subscribed_`)
/// instead of the old O(readers) linear scan of the wire's list.
class WireBase {
 public:
  WireBase(const WireBase&) = delete;
  WireBase& operator=(const WireBase&) = delete;

  /// Explicitly subscribe `component` for re-evaluation whenever this wire
  /// changes, as if it had been observed reading it.
  void sensitive_to(Component& component) { subscribe(&component); }

 protected:
  explicit WireBase(Simulator& sim) : sim_(&sim) { sim_->register_wire(*this); }
  ~WireBase() { sim_->unregister_wire(*this); }

  /// Record the currently evaluating (or, under kEvent, committing)
  /// component as a reader.
  void on_read() const {
    if (sim_->parallel_phase_) {
      // Mid-parallel-level: the epoch/back-slot fast paths are not
      // thread-safe; new subscriptions are deferred to per-lane scratch
      // and applied at the level barrier.
      sim_->parallel_on_read(*this);
      return;
    }
    Component* reader = sim_->recording_reader();
    if (reader == nullptr) {
      return;  // read from a test, host code, or an untracked commit()
    }
    // O(1) dedup: only one component runs per subscription epoch, so a
    // matching stamp means this exact read was already processed.
    if (last_sub_epoch_ == sim_->sub_epoch_) {
      return;
    }
    last_sub_epoch_ = sim_->sub_epoch_;
    // Fast path: the most recent subscriber reading again on a later pass.
    if (!readers_.empty() && readers_.back() == reader) {
      return;
    }
    const_cast<WireBase*>(this)->subscribe(reader);
  }

  /// The value changed: mark the pass dirty and queue/wake the readers.
  void on_change() { sim_->wire_changed(*this); }

  /// True while the simulator is running a level across multiple lanes;
  /// typed Wire subclasses divert their writes through defer_write() then.
  bool parallel_phase() const { return sim_->parallel_phase_; }

  /// Queue a write for serial application at the current level barrier,
  /// attributed to the lane's evaluating component (the wire's driver).
  void defer_write(std::function<void()> apply) const {
    sim_->parallel_defer_write(std::move(apply));
  }

 private:
  friend class Simulator;

  void subscribe(Component* reader) {
    if (reader->subscribed_.insert(this).second) {
      readers_.push_back(reader);
      // A new reader edge can raise the reader's topological level.
      sim_->graph_changed();
    }
  }

  Simulator* sim_;
  std::vector<Component*> readers_;
  /// Components observed *driving* this wire from their eval() — the
  /// writer half of the edge set the levelized schedule is built from.
  /// Recorded by Simulator::wire_changed (one driver per wire in practice,
  /// so the dedup scan is a single compare).
  std::vector<Component*> writers_;
  /// Last sub_epoch_ in which a read of this wire was recorded (see class
  /// comment); mutable because get() is logically const.
  mutable std::uint64_t last_sub_epoch_ = ~std::uint64_t{0};
};

/// A combinational signal (a VHDL wire / unregistered std_logic_vector).
///
/// Exactly one component should drive a Wire (from its `eval()`); any number
/// may read it.  Writes are change-detecting so the kernel's fixed-point
/// settling knows when the net has stabilised, and reads made from an
/// `eval()` are recorded on the sensitivity list (see WireBase).
template <typename T>
class Wire : public WireBase {
 public:
  explicit Wire(Simulator& sim, T initial = T{})
      : WireBase(sim), value_(std::move(initial)), reset_value_(value_) {}

  const T& get() const {
    on_read();
    return value_;
  }

  /// Read without recording a sensitivity — for monitors and assertions
  /// that must not schedule their host component.
  const T& peek() const { return value_; }

  void set(const T& v) {
    if (parallel_phase()) {
      // One driver per wire, so only this lane's component writes value_;
      // other lanes may be reading it concurrently, which is why the
      // mutation itself is deferred to the level barrier (every lane sees
      // pre-level values; the change then propagates via the scheduler).
      if (!(value_ == v)) {
        defer_write([this, v] { set(v); });
      }
      return;
    }
    if (!(value_ == v)) {
      value_ = v;
      on_change();
    }
  }

  /// Restore the power-on value (drivers re-assert during the next settle).
  /// Routed through change detection so a reset mid-activity wakes the
  /// readers — the event kernel must never resume from a stale quiet set.
  void reset() {
    if (!(value_ == reset_value_)) {
      value_ = reset_value_;
      on_change();
    }
  }

 private:
  T value_;
  T reset_value_;
};

/// A register (flip-flop array).  `q()` is the visible value; `set_d()`
/// stages the next value and `tick()` commits it.  Components call `set_d`
/// and `tick` from their `commit()`; keeping the d/q split explicit makes
/// multi-read-modify-write commit code obviously order-safe.
///
/// A Reg that lives inside a Component must be *bound* to it with the
/// two-argument constructor: `tick()` then performs change detection and
/// reports a real q-value change as commit activity (`mark_active()`), which
/// is what lets the event kernel demote components whose registers went
/// quiet.  The unbound constructor remains for standalone use (tests,
/// host-side modelling) where no scheduling is involved.
template <typename T>
class Reg {
 public:
  explicit Reg(T initial = T{})
      : q_(initial), d_(initial), reset_value_(std::move(initial)) {}

  /// Bind to the owning component (see class comment).
  explicit Reg(Component& owner, T initial = T{})
      : q_(initial),
        d_(initial),
        reset_value_(std::move(initial)),
        owner_(&owner) {}

  const T& q() const { return q_; }
  void set_d(T v) { d_ = std::move(v); }

  void tick() {
    if (owner_ != nullptr && !(q_ == d_)) {
      owner_->mark_active();
    }
    q_ = d_;
  }

  void reset() {
    q_ = reset_value_;
    d_ = reset_value_;
  }

 private:
  T q_;
  T d_;
  T reset_value_;
  Component* owner_ = nullptr;
};

}  // namespace fpgafu::sim
