#pragma once

#include <utility>

#include "sim/simulator.hpp"

namespace fpgafu::sim {

/// A combinational signal (a VHDL wire / unregistered std_logic_vector).
///
/// Exactly one component should drive a Wire (from its `eval()`); any number
/// may read it.  Writes are change-detecting so the kernel's fixed-point
/// settling knows when the net has stabilised.
template <typename T>
class Wire {
 public:
  explicit Wire(Simulator& sim, T initial = T{})
      : sim_(&sim), value_(std::move(initial)), reset_value_(value_) {}

  const T& get() const { return value_; }

  void set(const T& v) {
    if (!(value_ == v)) {
      value_ = v;
      sim_->note_change();
    }
  }

  /// Restore the power-on value (drivers re-assert during the next settle).
  void reset() { value_ = reset_value_; }

 private:
  Simulator* sim_;
  T value_;
  T reset_value_;
};

/// A register (flip-flop array).  `q()` is the visible value; `set_d()`
/// stages the next value and `tick()` commits it.  Components call `set_d`
/// and `tick` from their `commit()`; keeping the d/q split explicit makes
/// multi-read-modify-write commit code obviously order-safe.
template <typename T>
class Reg {
 public:
  explicit Reg(T initial = T{})
      : q_(initial), d_(initial), reset_value_(std::move(initial)) {}

  const T& q() const { return q_; }
  void set_d(T v) { d_ = std::move(v); }
  void tick() { q_ = d_; }

  void reset() {
    q_ = reset_value_;
    d_ = reset_value_;
  }

 private:
  T q_;
  T d_;
  T reset_value_;
};

}  // namespace fpgafu::sim
