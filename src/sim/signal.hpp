#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace fpgafu::sim {

/// Untyped part of a Wire: identity, the owning simulator, and the
/// sensitivity list — the set of components observed reading this wire from
/// their `eval()`.  The sensitivity kernel re-evaluates exactly these
/// components when the wire's value changes during a settle.
///
/// The list is populated automatically: while a component's `eval()` runs,
/// every `Wire::get()` records that component as a reader.  Recording
/// happens on every pass (not just the first), so a component whose read set
/// is conditional subscribes to a wire the first time any of its evaluations
/// actually reads it.  Subscriptions are conservative and permanent: a stale
/// subscription costs at most a redundant re-evaluation, which is harmless
/// because `eval()` is idempotent for fixed inputs.  Components with reads
/// the tracker cannot see (e.g. data fetched through a non-Wire side
/// channel) can subscribe explicitly with `sensitive_to()`.
class WireBase {
 public:
  WireBase(const WireBase&) = delete;
  WireBase& operator=(const WireBase&) = delete;

  /// Explicitly subscribe `component` for re-evaluation whenever this wire
  /// changes, as if it had been observed reading it.
  void sensitive_to(Component& component) { subscribe(&component); }

 protected:
  explicit WireBase(Simulator& sim) : sim_(&sim) { sim_->register_wire(*this); }
  ~WireBase() { sim_->unregister_wire(*this); }

  /// Record the currently evaluating component (if any) as a reader.
  void on_read() const {
    Component* reader = sim_->reading_;
    if (reader == nullptr) {
      return;  // read from commit(), a test, or host code: not a sensitivity
    }
    // Fast path: repeated gets from the same eval() hit the back slot.
    if (!readers_.empty() && readers_.back() == reader) {
      return;
    }
    const_cast<WireBase*>(this)->subscribe(reader);
  }

  /// The value changed: mark the pass dirty and queue the readers.
  void on_change() { sim_->wire_changed(*this); }

 private:
  friend class Simulator;

  void subscribe(Component* reader) {
    if (std::find(readers_.begin(), readers_.end(), reader) ==
        readers_.end()) {
      readers_.push_back(reader);
    }
  }

  Simulator* sim_;
  std::vector<Component*> readers_;
};

/// A combinational signal (a VHDL wire / unregistered std_logic_vector).
///
/// Exactly one component should drive a Wire (from its `eval()`); any number
/// may read it.  Writes are change-detecting so the kernel's fixed-point
/// settling knows when the net has stabilised, and reads made from an
/// `eval()` are recorded on the sensitivity list (see WireBase).
template <typename T>
class Wire : public WireBase {
 public:
  explicit Wire(Simulator& sim, T initial = T{})
      : WireBase(sim), value_(std::move(initial)), reset_value_(value_) {}

  const T& get() const {
    on_read();
    return value_;
  }

  /// Read without recording a sensitivity — for monitors and assertions
  /// that must not schedule their host component.
  const T& peek() const { return value_; }

  void set(const T& v) {
    if (!(value_ == v)) {
      value_ = v;
      on_change();
    }
  }

  /// Restore the power-on value (drivers re-assert during the next settle).
  void reset() { value_ = reset_value_; }

 private:
  T value_;
  T reset_value_;
};

/// A register (flip-flop array).  `q()` is the visible value; `set_d()`
/// stages the next value and `tick()` commits it.  Components call `set_d`
/// and `tick` from their `commit()`; keeping the d/q split explicit makes
/// multi-read-modify-write commit code obviously order-safe.
template <typename T>
class Reg {
 public:
  explicit Reg(T initial = T{})
      : q_(initial), d_(initial), reset_value_(std::move(initial)) {}

  const T& q() const { return q_; }
  void set_d(T v) { d_ = std::move(v); }
  void tick() { q_ = d_; }

  void reset() {
    q_ = reset_value_;
    d_ = reset_value_;
  }

 private:
  T q_;
  T d_;
  T reset_value_;
};

}  // namespace fpgafu::sim
