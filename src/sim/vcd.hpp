#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/component.hpp"

namespace fpgafu::sim {

/// Value-change-dump (VCD) waveform writer — the debugging workflow a VHDL
/// user expects from a simulator.  Probes are registered with a name, a
/// width and a getter; after every clock cycle the writer emits the changed
/// values in standard VCD format, loadable by GTKWave and friends.
///
/// Usage:
/// ```cpp
///   std::ofstream os("trace.vcd");
///   sim::VcdWriter vcd(simulator, os, /*timescale_ns=*/20);  // 50 MHz
///   vcd.probe("decoder.valid", 1, [&] { return dec.out.valid.get(); });
///   vcd.probe("regs.r3", 32, [&] { return rtm.regs().read(3); });
///   simulator.run(100);   // waveform accumulates
/// ```
///
/// The writer is itself a Component: it samples in commit(), i.e. it sees
/// the settled wire values of each cycle.
class VcdWriter : public Component {
 public:
  VcdWriter(Simulator& sim, std::ostream& os, unsigned timescale_ns = 10);

  /// Register a signal probe.  Must be called before the first cycle is
  /// traced (the VCD header is written lazily on the first sample).
  void probe(const std::string& name, unsigned width,
             std::function<std::uint64_t()> getter);

  /// Number of value changes written so far (for tests).
  std::uint64_t changes_written() const { return changes_; }

  void commit() override;
  void reset() override;

 private:
  struct Probe {
    std::string name;
    unsigned width;
    std::function<std::uint64_t()> getter;
    std::string id;           // VCD short identifier
    std::uint64_t last = 0;
    bool has_last = false;
  };

  void write_header();
  void emit_value(const Probe& p, std::uint64_t value);

  std::ostream* os_;
  unsigned timescale_ns_;
  std::vector<Probe> probes_;
  bool header_written_ = false;
  std::uint64_t changes_ = 0;
};

}  // namespace fpgafu::sim
