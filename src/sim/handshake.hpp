#pragma once

#include "sim/signal.hpp"

namespace fpgafu::sim {

/// Valid/ready handshake channel — the point-to-point connection used
/// between every pair of pipeline stages in the paper's RTM ("Handshaking is
/// used to control transmission of data between pipeline stages.  This
/// allows local control to stall the transmission when necessary; there is
/// no global control for stalling the pipeline.").
///
/// The producer drives `valid` and `data` from its eval(); the consumer
/// drives `ready` from its eval(); a transfer occurs ("fires") on a clock
/// edge where both are asserted, and both sides observe this in commit().
template <typename T>
struct Handshake {
  explicit Handshake(Simulator& sim) : valid(sim), data(sim), ready(sim) {}

  Wire<bool> valid;
  Wire<T> data;
  Wire<bool> ready;

  /// True on a clock edge where both sides agree.  Uses get(), not peek():
  /// when called from commit() under the event kernel the reads are recorded
  /// so a later flip of either net re-arms the caller's demoted commit.
  /// (Short-circuit is fine — `ready` unread while `valid` is low cannot
  /// change the outcome, and the read is recorded as soon as it matters.)
  bool fire() const { return valid.get() && ready.get(); }

  /// Subscribe `component` to all three nets explicitly (see
  /// WireBase::sensitive_to).  Components whose eval() reads this channel
  /// are recorded automatically; this is for monitors or adapters that
  /// observe the channel through peek() or a side channel and must still be
  /// re-evaluated when it moves.
  void sensitive_to(Component& component) {
    valid.sensitive_to(component);
    data.sensitive_to(component);
    ready.sensitive_to(component);
  }

  /// Producer-side helpers.
  void offer(const T& v) {
    valid.set(true);
    data.set(v);
  }
  void withdraw() { valid.set(false); }

  void reset() {
    valid.reset();
    data.reset();
    ready.reset();
  }
};

}  // namespace fpgafu::sim
