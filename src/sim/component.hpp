#pragma once

#include <string>

#include "sim/simulator.hpp"

namespace fpgafu::sim {

/// Base class for every simulated hardware block.
///
/// A Component mirrors a VHDL entity: `eval()` models its combinational
/// processes and `commit()` its clocked processes.  Rules (enforced by
/// convention and by the kernel's fixed-point check):
///
///  * `eval()` must be a pure function of Wire values and the component's
///    registered (pre-commit) state — re-running it with unchanged inputs
///    must drive identical outputs.
///  * `commit()` may read Wires and its own state and may update its own
///    state; it must not read another component's members directly and must
///    not write Wires (drive outputs from `eval()` instead).
///  * `reset()` restores power-on state, like an asserted reset line.
class Component {
 public:
  Component(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {
    sim_.add(*this);
  }
  virtual ~Component() { sim_.remove(*this); }
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void eval() {}
  virtual void commit() {}
  virtual void reset() {}

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }

 private:
  friend class Simulator;

  Simulator& sim_;
  std::string name_;
  /// Scheduling state of the sensitivity kernel: true while this component
  /// sits in the simulator's dirty queue awaiting re-evaluation.
  bool queued_ = false;
};

}  // namespace fpgafu::sim
