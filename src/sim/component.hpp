#pragma once

#include <string>
#include <unordered_set>

#include "sim/simulator.hpp"

namespace fpgafu::sim {

/// Base class for every simulated hardware block.
///
/// A Component mirrors a VHDL entity: `eval()` models its combinational
/// processes and `commit()` its clocked processes.  Rules (enforced by
/// convention and by the kernel's fixed-point check):
///
///  * `eval()` must be a pure function of Wire values and the component's
///    registered (pre-commit) state — re-running it with unchanged inputs
///    must drive identical outputs.
///  * `commit()` may read Wires and its own state and may update its own
///    state; it must not read another component's members directly and must
///    not write Wires (drive outputs from `eval()` instead).
///  * `reset()` restores power-on state, like an asserted reset line.
///
/// The event kernel (`Simulator::Kernel::kEvent`) additionally relies on the
/// *activity contract* (docs/SIMULATOR.md): any state change a `commit()`
/// makes must be visible to the scheduler.  Registers bound to their owner
/// (`Reg(Component&, ...)`) report changes automatically from `tick()`; every
/// other clocked side effect — ring buffers, deques, plain FSM fields,
/// counter bumps, trace events — must be announced with `mark_active()`.
/// Components whose behaviour depends on something the tracker cannot see at
/// all (free-running RNGs, per-cycle monitors, wall-clock style time checks)
/// opt out of demotion entirely with `make_always_active()`.
class Component {
 public:
  Component(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {
    sim_.add(*this);
  }
  virtual ~Component() { sim_.remove(*this); }
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void eval() {}
  virtual void commit() {}
  virtual void reset() {}

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }

  /// Schedule this component for evaluation and arm its commit.  Call when
  /// state that `eval()`/`commit()` depends on changed through a non-Wire
  /// side channel (host code poking a queue, a shared table mutation, ...).
  /// Idempotent and cheap; safe to call at any time, from any phase.
  void wake() { sim_.wake(*this); }

  /// True if this component opted out of event-kernel demotion.
  bool always_active() const { return always_active_; }

 protected:
  /// Announce from `commit()` that clocked state changed (or that a clocked
  /// side effect — counter bump, trace event, buffer mutation — happened),
  /// so the event kernel keeps this component in next cycle's wake/commit
  /// sets.  Bound `Reg`s call this automatically on a real q-value change.
  void mark_active() { sim_.wake(*this); }

  /// Opt out of event-kernel demotion: eval and commit every cycle, exactly
  /// as under the sensitivity kernel.  For free-running components whose
  /// behaviour is a function of *time* or of per-cycle RNG draws rather than
  /// of wires + registered state (monitors, VCD probes, duty-cycle drivers).
  void make_always_active() {
    always_active_ = true;
    sim_.wake(*this);
  }

 private:
  friend class Simulator;
  friend class WireBase;
  template <typename T>
  friend class Reg;

  Simulator& sim_;
  std::string name_;
  /// Scheduling state of the sensitivity kernel: true while this component
  /// sits in the simulator's dirty queue awaiting re-evaluation.
  bool queued_ = false;
  /// Event-kernel scheduling state: member of the cross-cycle wake set
  /// (evaluate on the next cycle's first settle pass)?
  bool woken_ = false;
  /// Event-kernel scheduling state: member of the commit set?
  bool commit_armed_ = false;
  /// Levelized-kernel scheduling state: already placed in a level bucket of
  /// the settle sweep currently being executed?
  bool sweep_pending_ = false;
  /// Exempt from event-kernel demotion (see make_always_active()).
  bool always_active_ = false;
  /// Levelized-kernel schedule: topological level of this component in the
  /// observed combinational graph (0 = no recorded wire-driving
  /// predecessor), assigned by Simulator::rebuild_schedule().
  std::uint32_t level_ = 0;
  /// Levelized-kernel schedule: global sweep slot.  Orders components by
  /// (level, concrete type, registration), so a level's bucket — sorted by
  /// slot — batches same-type components back-to-back for cache locality.
  std::uint64_t slot_ = 0;
  /// Registration ordinal, assigned by Simulator::add().  The event kernel
  /// sorts its commit set by this so its commit sequence is a subsequence
  /// of the full-commit kernels' registration-order sequence — any probe
  /// or monitor reading other components' clocked state mid-commit then
  /// observes identical values under every kernel.
  std::uint64_t order_ = 0;
  /// Wires this component is on the sensitivity list of — the O(1)
  /// membership side of WireBase's epoch-stamped subscription.
  std::unordered_set<const WireBase*> subscribed_;
};

}  // namespace fpgafu::sim
