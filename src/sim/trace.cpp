#include "sim/trace.hpp"

namespace fpgafu::sim {

void EventTrace::print(std::ostream& os) const {
  for (const Entry& e : entries_) {
    os << e.cycle << "  " << e.signal << " = " << e.value << '\n';
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " events dropped)\n";
  }
}

}  // namespace fpgafu::sim
