#pragma once

#include <memory>

#include "sim/simulator.hpp"
#include "xsort/engine.hpp"
#include "xsort/unit.hpp"

namespace fpgafu::xsort {

/// χ-sort engine backed by the cycle-accurate hardware unit, driven
/// directly over the functional-unit port protocol (the unit-level view;
/// the examples and system benchmarks additionally drive the same unit
/// through the full RTM + link path).
///
/// `cost_cycles()` is the number of simulated FPGA clock cycles consumed —
/// fixed per operation, independent of the array size.
class HwXsortEngine : public XsortEngine {
 public:
  explicit HwXsortEngine(const XsortConfig& config);
  ~HwXsortEngine() override;

  std::uint64_t op(XsortOp o, std::uint64_t operand) override;
  using XsortEngine::op;

  std::size_t capacity() const override;
  std::uint64_t cost_cycles() const override;
  void reset_cost() override;

  const XsortUnit& unit() const { return *unit_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator sim_;
  std::unique_ptr<XsortUnit> unit_;
  class Driver;
  std::unique_ptr<Driver> driver_;
  std::uint64_t cost_base_ = 0;
};

}  // namespace fpgafu::xsort
