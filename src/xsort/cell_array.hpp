#pragma once

#include <cstdint>
#include <vector>

#include "xsort/tree.hpp"
#include "xsort/types.hpp"

namespace fpgafu::xsort {

/// The array of SIMD cells plus its interior-node tree (paper Fig. 8/9).
///
/// Each cell holds one datum, its index interval <lower, upper>, a
/// selection flag and a saved selection state; all cells execute the same
/// command in one clock cycle ("this capability enables the χ-sort
/// algorithm to recalculate the index interval of every data item in
/// parallel, at clock speeds").
///
/// Modelling note: the cells are stored vectorised in one object rather
/// than as n simulator components; the XsortUnit applies exactly one
/// command per clock cycle, so cycle-level behaviour is identical while
/// large arrays stay fast to simulate (DESIGN.md §2).  The tree queries are
/// combinational within the cycle, matching the thesis' single-cycle
/// log-depth folds.
class CellArray {
 public:
  explicit CellArray(const XsortConfig& config);

  std::size_t size() const { return data_.size(); }
  const XsortConfig& config() const { return config_; }

  /// Apply one cycle's command to every cell.  `broadcast` is the value on
  /// the shared broadcast bus (operand, pivot, or microcode literal).
  void apply(const CellCmd& cmd, std::uint64_t broadcast);

  // --- Tree queries (combinational; see tree.hpp) -------------------------
  std::uint64_t count_selected() const;
  std::uint64_t count_imprecise() const;
  /// Leftmost selected cell (valid=false when none).
  Leftmost first_selected() const;
  /// Leftmost cell with an imprecise interval (the thesis' pivot choice).
  Leftmost first_imprecise() const;
  /// Depth of the fold tree — exposed for the area/latency model.
  unsigned tree_depth() const;

  // --- Introspection for tests --------------------------------------------
  std::uint64_t data(std::size_t i) const { return data_.at(i); }
  std::uint64_t lower(std::size_t i) const { return lower_.at(i); }
  std::uint64_t upper(std::size_t i) const { return upper_.at(i); }
  bool selected(std::size_t i) const { return selected_.at(i) != 0; }
  bool saved(std::size_t i) const { return saved_.at(i) != 0; }

  void reset();

 private:
  XsortConfig config_;
  std::uint64_t data_mask_;
  std::uint64_t interval_mask_;
  std::vector<std::uint64_t> data_;
  std::vector<std::uint64_t> lower_;
  std::vector<std::uint64_t> upper_;
  std::vector<std::uint8_t> selected_;
  std::vector<std::uint8_t> saved_;
};

}  // namespace fpgafu::xsort
