#pragma once

#include <string>

#include "fu/functional_unit.hpp"
#include "sim/signal.hpp"
#include "xsort/cell_array.hpp"
#include "xsort/microcode.hpp"

namespace fpgafu::xsort {

/// The χ-sort stateful functional unit: the SIMD cell array + tree network
/// (paper Fig. 8), the microcoded controller with its Idle/Run FSM (thesis
/// Fig. 3.10), and the functional-unit adapter that speaks the framework's
/// dispatch/idle/data_ready/data_acknowledge protocol (thesis §3.3.4).
///
/// Timing: an operation costs 1 cycle to dispatch, `rom.length(op)` cycles
/// of microprogram execution, and 1 cycle to hand the result to the write
/// arbiter — fixed regardless of the number of cells, which is the paper's
/// core claim for circuit-parallel stateful units.
///
/// Every operation returns a result word (queries return the captured tree
/// output; commands return the post-command selected count, a convenient
/// status for host-side loops) and a flag vector (kZero when the result is
/// zero, kError for undefined variety codes).
class XsortUnit : public fu::FunctionalUnit {
 public:
  XsortUnit(sim::Simulator& sim, std::string name, const XsortConfig& config)
      : FunctionalUnit(sim, std::move(name)), cells_(config) {}

  const CellArray& cells() const { return cells_; }
  const MicrocodeRom& rom() const { return rom_; }

  /// Total microinstructions executed (for the benchmarks' cycle accounting).
  std::uint64_t micro_ops_executed() const { return micro_ops_; }

  void eval() override {
    ports.idle.set(state_ == State::kIdle);
    ports.data_ready.set(state_ == State::kOutput);
    ports.result.set(out_);
  }

  void commit() override {
    // The controller FSM, the microprogram counter and the cell array are
    // all plain clocked state: self-report whenever the unit is running.
    if (state_ != State::kIdle || ports.dispatch.get()) {
      mark_active();
    }
    switch (state_) {
      case State::kIdle:
        if (ports.dispatch.get()) {
          const fu::FuRequest req = ports.request.get();
          variety_ = req.variety;
          operand_ = req.operand1;
          dst_reg_ = req.dst_reg;
          dst_flag_reg_ = req.dst_flag_reg;
          pc_ = 0;
          if (!rom_.defined(variety_)) {
            finish(/*result=*/0, /*error=*/true);
          } else {
            state_ = State::kRun;
          }
        }
        break;
      case State::kRun: {
        const MicroProgram& prog = rom_.lookup(variety_);
        const MicroOp& u = prog[pc_];
        if (wait_ == 0) {
          // Microinstruction cost: 1 cycle, plus the registered tree's
          // latency for query steps when the tree is pipelined.
          wait_ = 1;
          if (cells_.config().pipelined_tree &&
              u.capture != MicroOp::Capture::kNone) {
            wait_ += cells_.tree_depth();
          }
        }
        if (--wait_ == 0) {
          execute(u);
          ++micro_ops_;
          if (++pc_ >= prog.size()) {
            finish(result_acc_, /*error=*/false);
          }
        }
        break;
      }
      case State::kOutput:
        if (ports.data_acknowledge.get()) {
          ++completed_;
          state_ = State::kIdle;
        }
        break;
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    cells_.reset();
    state_ = State::kIdle;
    pc_ = 0;
    wait_ = 0;
    micro_ops_ = 0;
    result_acc_ = 0;
    out_ = fu::FuResult{};
  }

 private:
  enum class State { kIdle, kRun, kOutput };

  void execute(const MicroOp& u) {
    if (u.cmd.any()) {
      const std::uint64_t bcast = u.broadcast == MicroOp::Broadcast::kOperand
                                      ? operand_
                                      : u.literal;
      cells_.apply(u.cmd, bcast);
    }
    switch (u.capture) {
      case MicroOp::Capture::kNone:
        // Commands leave the running status: the selected count.
        result_acc_ = cells_.count_selected();
        break;
      case MicroOp::Capture::kCountSelected:
        result_acc_ = cells_.count_selected();
        break;
      case MicroOp::Capture::kCountImprecise:
        result_acc_ = cells_.count_imprecise();
        break;
      case MicroOp::Capture::kFirstSelectedData:
        result_acc_ = cells_.first_selected().data;
        break;
      case MicroOp::Capture::kFirstImpreciseData:
        result_acc_ = cells_.first_imprecise().data;
        break;
      case MicroOp::Capture::kFirstImpreciseLower:
        result_acc_ = cells_.first_imprecise().lower;
        break;
      case MicroOp::Capture::kFirstImpreciseUpper:
        result_acc_ = cells_.first_imprecise().upper;
        break;
    }
  }

  void finish(std::uint64_t result, bool error) {
    out_.data = result;
    out_.flags = 0;
    if (result == 0) {
      out_.flags |= isa::FlagWord{1} << isa::flag::kZero;
    }
    if (error) {
      out_.flags |= isa::FlagWord{1} << isa::flag::kError;
    }
    out_.dst_reg = dst_reg_;
    out_.dst_flag_reg = dst_flag_reg_;
    out_.write_data = true;
    out_.write_flags = true;
    state_ = State::kOutput;
  }

  CellArray cells_;
  MicrocodeRom rom_;
  State state_ = State::kIdle;
  isa::VarietyCode variety_ = 0;
  std::uint64_t operand_ = 0;
  isa::RegNum dst_reg_ = 0;
  isa::RegNum dst_flag_reg_ = 0;
  std::size_t pc_ = 0;
  std::uint32_t wait_ = 0;
  std::uint64_t result_acc_ = 0;
  std::uint64_t micro_ops_ = 0;
  fu::FuResult out_;
};

}  // namespace fpgafu::xsort
