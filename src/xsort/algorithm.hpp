#pragma once

#include <cstdint>
#include <vector>

#include "xsort/engine.hpp"

namespace fpgafu::xsort {

/// Operation/round statistics of one algorithm run.
struct XsortStats {
  std::uint64_t ops = 0;     ///< χ-sort instructions issued
  std::uint64_t rounds = 0;  ///< partition-refinement rounds
};

/// Host-side driver of the χ-sort algorithm (thesis §3.3, [11]):
/// selection and sorting over an array represented with index intervals.
///
/// Every element carries an interval <lower, upper> of positions it may
/// occupy in the sorted order; initially <0, n-1> ("the complete lack of
/// knowledge of where the elements belong").  Each refinement round picks
/// the leftmost imprecise partition, broadcasts a pivot from it, and in a
/// **fixed number of clock cycles** splits the partition three ways —
/// less-than keeps <p, p+lt-1>, the equal group receives its final ranks
/// through the scan network, greater-than keeps <p+lt+eq, q>.  A round's
/// cost is independent of n; software needs Θ(n) per round.
class XsortAlgorithm {
 public:
  explicit XsortAlgorithm(XsortEngine& engine) : engine_(&engine) {}

  /// Reset the array and shift-load `values`.  The array must be exactly
  /// full: values.size() == engine.capacity().  (To sort fewer values, pad
  /// with a sentinel larger than every real value and ignore the top
  /// ranks, as sort_padded does.)
  void load(const std::vector<std::uint64_t>& values);

  /// Refine until every interval is precise.  Returns the number of rounds.
  std::uint64_t run_sort_rounds();

  /// Read the sorted sequence back (rank by rank).
  std::vector<std::uint64_t> unload();

  /// Convenience: load + refine + unload.
  std::vector<std::uint64_t> sort(const std::vector<std::uint64_t>& values);

  /// Sort values.size() <= capacity values by padding with the sentinel
  /// (all-ones in the data width); requires every value < sentinel.
  std::vector<std::uint64_t> sort_padded(
      const std::vector<std::uint64_t>& values, unsigned data_bits);

  /// k-th smallest (0-based) of the loaded array, by interval refinement of
  /// only the partition containing k — expected O(log n) rounds, each a
  /// fixed number of cycles.  Must be called right after load().
  std::uint64_t select(std::uint64_t k);

  /// The k smallest values in ascending order, refining only partitions
  /// that intersect ranks [0, k): expected O(k + log n) rounds instead of a
  /// full sort's ~n.  Must be called right after load().
  std::vector<std::uint64_t> partial_sort(std::uint64_t k);

  /// Number of loaded elements strictly less than `value` (the rank the
  /// value would insert at) — three fixed-cycle operations, versus a Θ(n)
  /// scan in software.  Selection state is clobbered.
  std::uint64_t rank_of(std::uint64_t value);

  /// Smallest / largest element: selection specialisations.
  std::uint64_t min() { return select(0); }
  std::uint64_t max() { return select(engine_->capacity() - 1); }

  const XsortStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  /// Split the partition <p, q> (which must be selected exactly by its
  /// bounds) around `pivot`; returns {lt, eq} group sizes.
  struct Split {
    std::uint64_t lt;
    std::uint64_t eq;
  };
  Split split_partition(std::uint64_t p, std::uint64_t q, std::uint64_t pivot);

  std::uint64_t issue(XsortOp op, std::uint64_t operand = 0) {
    ++stats_.ops;
    return engine_->op(op, operand);
  }

  XsortEngine* engine_;
  XsortStats stats_;
};

}  // namespace fpgafu::xsort
