#pragma once

#include <cstdint>

#include "xsort/types.hpp"

namespace fpgafu::xsort {

/// Abstract χ-sort execution engine: issue one operation, obtain its result
/// word.  The algorithm driver (algorithm.hpp) runs against this interface,
/// so exactly the same host-side code exercises
///  * the simulated hardware unit (HwXsortEngine — fixed cycles per op),
///  * the full coprocessor system through the RTM and the link
///    (host::Coprocessor-based engine in the examples/benchmarks), and
///  * the software emulation (SoftXsortEngine — Θ(n) work per op),
/// which is precisely the paper's hardware/software comparison axis.
class XsortEngine {
 public:
  virtual ~XsortEngine() = default;

  /// Issue one operation and return its result word.
  virtual std::uint64_t op(XsortOp op, std::uint64_t operand) = 0;
  std::uint64_t op(XsortOp o) { return op(o, 0); }

  /// Number of cells in the engine's array.
  virtual std::size_t capacity() const = 0;

  /// Accumulated cost in (modelled or simulated) clock cycles.
  virtual std::uint64_t cost_cycles() const = 0;
  virtual void reset_cost() = 0;

  /// Operations issued since construction or reset_cost().
  std::uint64_t ops_issued() const { return ops_; }

 protected:
  std::uint64_t ops_ = 0;
};

}  // namespace fpgafu::xsort
