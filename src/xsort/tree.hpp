#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace fpgafu::xsort {

/// Balanced-binary-tree fold, mirroring the interior-node network of paper
/// Fig. 8: "a logarithmic height tree is used to compute the count of SIMD
/// cells whose selection flag register is set and to select a pivot element
/// having an imprecise interval.  Both operations are associative and can
/// therefore be realised with logarithmic delay in hardware."
///
/// The model evaluates the same tree shape a synthesiser would build —
/// pairwise combination over ceil(log2 n) levels — so associativity bugs
/// (a combine that silently depends on fold order) surface in tests, and
/// the depth is available for the area/latency model.
template <typename T, typename Combine>
T tree_fold(const std::vector<T>& leaves, T identity, Combine combine,
            unsigned* depth_out = nullptr) {
  if (leaves.empty()) {
    if (depth_out != nullptr) {
      *depth_out = 0;
    }
    return identity;
  }
  std::vector<T> level = leaves;
  unsigned depth = 0;
  while (level.size() > 1) {
    std::vector<T> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
    ++depth;
  }
  if (depth_out != nullptr) {
    *depth_out = depth;
  }
  return level.front();
}

/// Leaf payload for "leftmost matching cell" selections: the tree keeps the
/// left operand whenever it is valid, so the root holds the leftmost match.
struct Leftmost {
  bool valid = false;
  std::size_t index = 0;
  std::uint64_t data = 0;
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};

inline Leftmost leftmost_combine(const Leftmost& a, const Leftmost& b) {
  return a.valid ? a : b;
}

}  // namespace fpgafu::xsort
