#pragma once

#include "xsort/cell_array.hpp"
#include "xsort/engine.hpp"
#include "xsort/microcode.hpp"

namespace fpgafu::xsort {

/// Cost model of a conventional CPU executing one χ-sort primitive in
/// software.  The paper: "with a CPU each operation requires an iteration
/// that takes time proportional to the number of data elements."
struct CpuCostModel {
  std::uint64_t cycles_per_element = 3;  ///< per element, per microstep
  std::uint64_t cycles_per_op = 20;      ///< call/loop overhead per op
};

/// Software emulation of the χ-sort engine: the same cell/tree semantics,
/// but every operation walks the whole array — the Θ(n)-per-operation
/// baseline the paper compares against.  `cost_cycles()` reports the
/// modelled CPU cycle count; the benchmarks additionally measure real
/// wall-clock time of this engine.
class SoftXsortEngine : public XsortEngine {
 public:
  explicit SoftXsortEngine(const XsortConfig& config,
                           const CpuCostModel& model = {})
      : cells_(config), model_(model) {}

  std::uint64_t op(XsortOp o, std::uint64_t operand) override;
  using XsortEngine::op;

  std::size_t capacity() const override { return cells_.size(); }
  std::uint64_t cost_cycles() const override { return cost_; }
  void reset_cost() override {
    cost_ = 0;
    ops_ = 0;
  }

  const CellArray& cells() const { return cells_; }

 private:
  CellArray cells_;
  MicrocodeRom rom_;
  CpuCostModel model_;
  std::uint64_t cost_ = 0;
};

}  // namespace fpgafu::xsort
