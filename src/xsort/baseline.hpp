#pragma once

#include <cstdint>
#include <vector>

namespace fpgafu::xsort {

/// Conventional-CPU baselines for the χ-sort experiments: the comparison
/// targets are (a) the same interval algorithm run in software (see
/// SoftXsortEngine) and (b) the best conventional sequential algorithms,
/// with operation counting so results can be converted into modelled CPU
/// cycles alongside real wall-clock measurements.
struct BaselineStats {
  std::uint64_t comparisons = 0;
  std::uint64_t moves = 0;
};

/// std::sort wrapper (wall-clock baseline).
std::vector<std::uint64_t> cpu_sort(std::vector<std::uint64_t> values);

/// std::nth_element wrapper: k-th smallest, 0-based.
std::uint64_t cpu_select(std::vector<std::uint64_t> values, std::uint64_t k);

/// Instrumented quicksort (median-of-three), counting comparisons/moves.
std::vector<std::uint64_t> counted_quicksort(std::vector<std::uint64_t> values,
                                             BaselineStats& stats);

/// Instrumented quickselect, counting comparisons/moves.
std::uint64_t counted_quickselect(std::vector<std::uint64_t> values,
                                  std::uint64_t k, BaselineStats& stats);

}  // namespace fpgafu::xsort
