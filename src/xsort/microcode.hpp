#pragma once

#include <cstdint>
#include <vector>

#include "xsort/types.hpp"

namespace fpgafu::xsort {

/// One microinstruction of the χ-sort controller (thesis §3.3.3: "a ROM
/// storing microcode programs controlling the SIMD cells").  Each
/// microinstruction occupies exactly one clock cycle: it may drive a cell
/// command with a chosen broadcast-bus source, and/or capture one of the
/// tree network's outputs into the unit's result register.
struct MicroOp {
  enum class Broadcast : std::uint8_t {
    kOperand,   ///< the dispatched instruction's operand
    kLiteral,   ///< a constant from the ROM word
  };
  enum class Capture : std::uint8_t {
    kNone,
    kCountSelected,
    kCountImprecise,
    kFirstSelectedData,
    kFirstImpreciseData,
    kFirstImpreciseLower,
    kFirstImpreciseUpper,
  };

  CellCmd cmd;
  Broadcast broadcast = Broadcast::kOperand;
  std::uint64_t literal = 0;
  Capture capture = Capture::kNone;
};

/// A microprogram: the ROM row for one XsortOp.
using MicroProgram = std::vector<MicroOp>;

/// The microcode ROM.  Every operation's program has a fixed length, so
/// every χ-sort instruction costs a fixed number of cycles regardless of
/// the array size — the property benchmarked in experiment E5.
class MicrocodeRom {
 public:
  MicrocodeRom();

  /// Program for an op; empty when the variety code is undefined (the unit
  /// reports an error flag for those).
  const MicroProgram& lookup(isa::VarietyCode variety) const;

  /// Cycle count (= microprogram length) of an op.
  std::size_t length(XsortOp op) const;

  bool defined(isa::VarietyCode variety) const;

 private:
  std::vector<MicroProgram> programs_;  // indexed by variety code
  MicroProgram empty_;
};

}  // namespace fpgafu::xsort
