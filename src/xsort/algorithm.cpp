#include "xsort/algorithm.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::xsort {

void XsortAlgorithm::load(const std::vector<std::uint64_t>& values) {
  check(values.size() == engine_->capacity(),
        "xsort: value count must equal the cell-array capacity "
        "(use sort_padded for partial arrays)");
  issue(XsortOp::kReset, engine_->capacity() - 1);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    // Loading shifts existing contents toward higher cells; feeding in
    // reverse leaves values[0] in cell 0 (cosmetic — the algorithm is
    // order-agnostic, but tests read nicer).
    issue(XsortOp::kLoad, *it);
  }
}

XsortAlgorithm::Split XsortAlgorithm::split_partition(std::uint64_t p,
                                                      std::uint64_t q,
                                                      std::uint64_t pivot) {
  // Select the partition: exactly the cells whose interval is <p, q>.
  issue(XsortOp::kSelectAll);
  issue(XsortOp::kMatchLower, p);
  issue(XsortOp::kMatchUpper, q);
  issue(XsortOp::kSave);

  // Less-than group keeps the sub-interval <p, p+lt-1>.
  const std::uint64_t lt = issue(XsortOp::kMatchLt, pivot);
  issue(XsortOp::kSetLower, p);
  issue(XsortOp::kSetUpper, p + lt - 1);  // no-op when lt == 0 (none selected)

  // Equal group: final ranks handed out by the scan network in one op.
  issue(XsortOp::kRestore);
  const std::uint64_t eq = issue(XsortOp::kMatchEq, pivot);
  issue(XsortOp::kRankSelected, p + lt);

  // Greater-than group keeps <p+lt+eq, q>.
  issue(XsortOp::kRestore);
  issue(XsortOp::kMatchGt, pivot);
  issue(XsortOp::kSetLower, p + lt + eq);
  issue(XsortOp::kSetUpper, q);

  return {lt, eq};
}

std::uint64_t XsortAlgorithm::run_sort_rounds() {
  std::uint64_t rounds = 0;
  while (issue(XsortOp::kCountImprecise) != 0) {
    const std::uint64_t pivot = issue(XsortOp::kPivotData);
    const std::uint64_t p = issue(XsortOp::kPivotLower);
    const std::uint64_t q = issue(XsortOp::kPivotUpper);
    split_partition(p, q, pivot);
    ++rounds;
    ++stats_.rounds;
  }
  return rounds;
}

std::vector<std::uint64_t> XsortAlgorithm::unload() {
  std::vector<std::uint64_t> out;
  out.reserve(engine_->capacity());
  for (std::uint64_t rank = 0; rank < engine_->capacity(); ++rank) {
    out.push_back(issue(XsortOp::kReadRank, rank));
  }
  return out;
}

std::vector<std::uint64_t> XsortAlgorithm::sort(
    const std::vector<std::uint64_t>& values) {
  load(values);
  run_sort_rounds();
  return unload();
}

std::vector<std::uint64_t> XsortAlgorithm::sort_padded(
    const std::vector<std::uint64_t>& values, unsigned data_bits) {
  const std::uint64_t sentinel = bits::mask(data_bits);
  check(values.size() <= engine_->capacity(), "more values than cells");
  for (const auto v : values) {
    check(v < sentinel, "sort_padded requires values below the sentinel");
  }
  std::vector<std::uint64_t> padded = values;
  padded.resize(engine_->capacity(), sentinel);
  std::vector<std::uint64_t> sorted = sort(padded);
  sorted.resize(values.size());
  return sorted;
}

std::vector<std::uint64_t> XsortAlgorithm::partial_sort(std::uint64_t k) {
  check(k <= engine_->capacity(), "partial_sort: k out of range");
  // Refine like the full sort, but any partition that lies entirely at
  // ranks >= k is *discarded* instead of split: its cells receive arbitrary
  // (but distinct, in-range) precise ranks from the scan network in a
  // single operation.  Ranks below k are still globally correct; the
  // discarded region's internal order is never read.
  while (issue(XsortOp::kCountImprecise) != 0) {
    const std::uint64_t p = issue(XsortOp::kPivotLower);
    const std::uint64_t q = issue(XsortOp::kPivotUpper);
    if (p >= k) {
      // Collapse: hand out ranks p, p+1, ..., q in cell order.
      issue(XsortOp::kSelectAll);
      issue(XsortOp::kMatchLower, p);
      issue(XsortOp::kMatchUpper, q);
      issue(XsortOp::kRankSelected, p);
    } else {
      const std::uint64_t pivot = issue(XsortOp::kPivotData);
      split_partition(p, q, pivot);
    }
    ++stats_.rounds;
  }
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t rank = 0; rank < k; ++rank) {
    out.push_back(issue(XsortOp::kReadRank, rank));
  }
  return out;
}

std::uint64_t XsortAlgorithm::rank_of(std::uint64_t value) {
  issue(XsortOp::kSelectAll);
  return issue(XsortOp::kMatchLt, value);
}

std::uint64_t XsortAlgorithm::select(std::uint64_t k) {
  check(k < engine_->capacity(), "selection rank out of range");
  std::uint64_t p = 0;
  std::uint64_t q = engine_->capacity() - 1;
  while (p != q) {
    // Pivot: the leftmost cell of the current partition (selected by its
    // exact interval — after selection the tree reads its data).
    issue(XsortOp::kSelectAll);
    issue(XsortOp::kMatchLower, p);
    issue(XsortOp::kMatchUpper, q);
    const std::uint64_t pivot = issue(XsortOp::kReadFirst);
    const Split s = split_partition(p, q, pivot);
    ++stats_.rounds;
    if (k < p + s.lt) {
      q = p + s.lt - 1;
    } else if (k < p + s.lt + s.eq) {
      return pivot;  // k landed in the equal group
    } else {
      p = p + s.lt + s.eq;
    }
  }
  // Partition of one imprecise... p == q means the rank is already final.
  return issue(XsortOp::kReadRank, p);
}

}  // namespace fpgafu::xsort
