#include "xsort/hw_engine.hpp"

#include <optional>

#include "sim/component.hpp"
#include "util/error.hpp"

namespace fpgafu::xsort {

/// Testbench-style driver: plays dispatcher and write arbiter for the
/// standalone unit, one blocking operation at a time.
class HwXsortEngine::Driver : public sim::Component {
 public:
  Driver(sim::Simulator& sim, fu::FuPorts& ports)
      : Component(sim, "xsort_driver"), ports_(&ports) {}

  /// Issue one request and run the simulator until it completes.
  fu::FuResult issue(const fu::FuRequest& req) {
    pending_ = req;
    result_.reset();
    // Host-side mutation between cycles: schedule ourselves so the event
    // kernel re-evaluates the dispatch drive.
    wake();
    simulator().run_until([&] { return result_.has_value(); }, 100000);
    return *result_;
  }

  void eval() override {
    if (pending_.has_value() && ports_->idle.get()) {
      ports_->dispatch.set(true);
      ports_->request.set(*pending_);
    } else {
      ports_->dispatch.set(false);
    }
    ports_->data_acknowledge.set(ports_->data_ready.get());
  }

  void commit() override {
    if (ports_->dispatch.get() && ports_->idle.get()) {
      pending_.reset();
      mark_active();  // pending_ feeds eval()'s dispatch drive
    }
    if (ports_->data_ready.get() && ports_->data_acknowledge.get()) {
      result_ = ports_->result.get();
      mark_active();
    }
  }

  void reset() override {
    pending_.reset();
    result_.reset();
  }

 private:
  fu::FuPorts* ports_;
  std::optional<fu::FuRequest> pending_;
  std::optional<fu::FuResult> result_;
};

HwXsortEngine::HwXsortEngine(const XsortConfig& config)
    : unit_(std::make_unique<XsortUnit>(sim_, "xsort", config)),
      driver_(std::make_unique<Driver>(sim_, unit_->ports)) {}

HwXsortEngine::~HwXsortEngine() = default;

std::uint64_t HwXsortEngine::op(XsortOp o, std::uint64_t operand) {
  fu::FuRequest req;
  req.variety = static_cast<isa::VarietyCode>(o);
  req.operand1 = operand;
  const fu::FuResult r = driver_->issue(req);
  check((r.flags & (isa::FlagWord{1} << isa::flag::kError)) == 0,
        "xsort unit reported an error flag");
  ++ops_;
  return r.data;
}

std::size_t HwXsortEngine::capacity() const { return unit_->cells().size(); }

std::uint64_t HwXsortEngine::cost_cycles() const {
  return sim_.cycle() - cost_base_;
}

void HwXsortEngine::reset_cost() {
  cost_base_ = sim_.cycle();
  ops_ = 0;
}

}  // namespace fpgafu::xsort
