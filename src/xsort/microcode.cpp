#include "xsort/microcode.hpp"

namespace fpgafu::xsort {
namespace {

MicroOp cell_op(CellCmd cmd,
                MicroOp::Broadcast b = MicroOp::Broadcast::kOperand,
                std::uint64_t literal = 0) {
  MicroOp u;
  u.cmd = cmd;
  u.broadcast = b;
  u.literal = literal;
  return u;
}

MicroOp capture_op(MicroOp::Capture what) {
  MicroOp u;
  u.capture = what;
  return u;
}

}  // namespace

MicrocodeRom::MicrocodeRom() : programs_(256) {
  auto def = [&](XsortOp op, MicroProgram prog) {
    programs_[static_cast<isa::VarietyCode>(op)] = std::move(prog);
  };
  using B = MicroOp::Broadcast;
  using C = MicroOp::Capture;

  // Reset: select everything, then widen every interval to <0, operand>
  // (the host passes n-1).  select_all must commit before the set commands
  // sample the selection flags, hence three microinstructions.
  def(XsortOp::kReset, {
    cell_op({.select_all = true}),
    cell_op({.set_lower = true}, B::kLiteral, 0),
    cell_op({.set_upper = true}, B::kOperand),
  });
  def(XsortOp::kLoad, {cell_op({.load = true})});
  def(XsortOp::kSelectAll, {cell_op({.select_all = true})});
  def(XsortOp::kSelectImprecise, {cell_op({.select_imprecise = true})});
  def(XsortOp::kMatchLt, {cell_op({.match_data_lt = true})});
  def(XsortOp::kMatchEq, {cell_op({.match_data_eq = true})});
  def(XsortOp::kMatchGt, {cell_op({.match_data_gt = true})});
  def(XsortOp::kMatchLower, {cell_op({.match_lower = true})});
  def(XsortOp::kMatchUpper, {cell_op({.match_upper = true})});
  def(XsortOp::kMatchLowerI, {cell_op({.match_lower_i = true})});
  def(XsortOp::kMatchUpperI, {cell_op({.match_upper_i = true})});
  def(XsortOp::kSetLower, {cell_op({.set_lower = true})});
  def(XsortOp::kSetUpper, {cell_op({.set_upper = true})});
  def(XsortOp::kSetBounds, {cell_op({.set_bounds = true})});
  def(XsortOp::kSave, {cell_op({.save = true})});
  def(XsortOp::kRestore, {cell_op({.restore = true})});
  def(XsortOp::kCount, {capture_op(C::kCountSelected)});
  def(XsortOp::kCountImprecise, {capture_op(C::kCountImprecise)});
  def(XsortOp::kReadFirst, {capture_op(C::kFirstSelectedData)});
  def(XsortOp::kPivotData, {capture_op(C::kFirstImpreciseData)});
  def(XsortOp::kPivotLower, {capture_op(C::kFirstImpreciseLower)});
  def(XsortOp::kPivotUpper, {capture_op(C::kFirstImpreciseUpper)});
  // ReadRank: narrow the selection to the cell holding rank `operand`, then
  // read it through the tree.
  def(XsortOp::kReadRank, {
    cell_op({.select_all = true}),
    cell_op({.match_lower = true}, B::kOperand),
    capture_op(C::kFirstSelectedData),
  });
  def(XsortOp::kLoadSelected, {cell_op({.load_selected = true})});
  def(XsortOp::kRankSelected, {cell_op({.rank_selected = true})});
}

const MicroProgram& MicrocodeRom::lookup(isa::VarietyCode variety) const {
  return programs_[variety];
}

bool MicrocodeRom::defined(isa::VarietyCode variety) const {
  return !programs_[variety].empty();
}

std::size_t MicrocodeRom::length(XsortOp op) const {
  return programs_[static_cast<isa::VarietyCode>(op)].size();
}

}  // namespace fpgafu::xsort
