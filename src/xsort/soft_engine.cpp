#include "xsort/soft_engine.hpp"

#include "util/error.hpp"

namespace fpgafu::xsort {

std::uint64_t SoftXsortEngine::op(XsortOp o, std::uint64_t operand) {
  const auto variety = static_cast<isa::VarietyCode>(o);
  check(rom_.defined(variety), "undefined xsort op");
  const MicroProgram& prog = rom_.lookup(variety);
  std::uint64_t result = 0;
  for (const MicroOp& u : prog) {
    if (u.cmd.any()) {
      const std::uint64_t bcast = u.broadcast == MicroOp::Broadcast::kOperand
                                      ? operand
                                      : u.literal;
      cells_.apply(u.cmd, bcast);
    }
    switch (u.capture) {
      case MicroOp::Capture::kNone:
        result = cells_.count_selected();
        break;
      case MicroOp::Capture::kCountSelected:
        result = cells_.count_selected();
        break;
      case MicroOp::Capture::kCountImprecise:
        result = cells_.count_imprecise();
        break;
      case MicroOp::Capture::kFirstSelectedData:
        result = cells_.first_selected().data;
        break;
      case MicroOp::Capture::kFirstImpreciseData:
        result = cells_.first_imprecise().data;
        break;
      case MicroOp::Capture::kFirstImpreciseLower:
        result = cells_.first_imprecise().lower;
        break;
      case MicroOp::Capture::kFirstImpreciseUpper:
        result = cells_.first_imprecise().upper;
        break;
    }
    // Every microstep visits all n elements in software.
    cost_ += model_.cycles_per_element * cells_.size();
  }
  cost_ += model_.cycles_per_op;
  ++ops_;
  return result;
}

}  // namespace fpgafu::xsort
