#include "xsort/cell_array.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::xsort {

CellArray::CellArray(const XsortConfig& config)
    : config_(config),
      data_mask_(bits::mask(config.data_bits)),
      interval_mask_(bits::mask(config.interval_bits)),
      data_(config.cells, 0),
      lower_(config.cells, 0),
      upper_(config.cells, 0),
      selected_(config.cells, 0),
      saved_(config.cells, 0) {
  check(config.cells >= 1, "cell array needs at least one cell");
  check(config.data_bits >= 1 && config.data_bits <= 64,
        "data_bits must be in [1, 64]");
  check(config.interval_bits >= 1 && config.interval_bits <= 32,
        "interval_bits must be in [1, 32]");
  check(bits::fits_unsigned(config.cells - 1, config.interval_bits),
        "interval_bits too narrow to index every cell");
}

void CellArray::reset() {
  data_.assign(data_.size(), 0);
  lower_.assign(lower_.size(), 0);
  upper_.assign(upper_.size(), 0);
  selected_.assign(selected_.size(), 0);
  saved_.assign(saved_.size(), 0);
}

void CellArray::apply(const CellCmd& cmd, std::uint64_t broadcast) {
  const std::uint64_t bcast_data = broadcast & data_mask_;
  const std::uint64_t bcast_ivl = broadcast & interval_mask_;
  const std::size_t n = data_.size();

  // Shift-load first: "load a single value received from the functional
  // unit adapter into the first SIMD cell, at the same time shifting the
  // data of all SIMD cells to the respective following cell" (thesis
  // §3.3.3).  Bounds and flags do not shift; loading happens before the
  // array is partitioned.
  if (cmd.load) {
    for (std::size_t i = n; i-- > 1;) {
      data_[i] = data_[i - 1];
    }
    data_[0] = bcast_data;
  }

  // Scan-based rank distribution: the interior nodes compute, for every
  // selected cell, the number of selected cells to its left (a parallel
  // prefix sum — paper Fig. 8's "parallel scans"); the cell then latches
  // base+prefix as its precise final position.  The model's running counter
  // is the sequential view of that scan.
  if (cmd.rank_selected) {
    std::uint64_t prefix = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (selected_[i] != 0) {
        const std::uint64_t rank = (bcast_ivl + prefix) & interval_mask_;
        lower_[i] = rank;
        upper_[i] = rank;
        ++prefix;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Selection network.
    bool sel = selected_[i] != 0;
    if (cmd.select_all) {
      sel = true;
    }
    if (cmd.restore) {
      sel = saved_[i] != 0;
    }
    if (cmd.select_imprecise) {
      sel = lower_[i] != upper_[i];
    }
    if (cmd.match_data_lt) {
      sel = sel && data_[i] < bcast_data;
    }
    if (cmd.match_data_eq) {
      sel = sel && data_[i] == bcast_data;
    }
    if (cmd.match_data_gt) {
      sel = sel && data_[i] > bcast_data;
    }
    if (cmd.match_lower) {
      sel = sel && lower_[i] == bcast_ivl;
    }
    if (cmd.match_upper) {
      sel = sel && upper_[i] == bcast_ivl;
    }
    if (cmd.match_lower_i) {
      sel = sel && lower_[i] != bcast_ivl;
    }
    if (cmd.match_upper_i) {
      sel = sel && upper_[i] != bcast_ivl;
    }

    // Datapath writes gated by the (pre-update) selection flag, as in the
    // schematic: the registers' enables are driven from the current
    // reg_selected output.
    const bool enabled = selected_[i] != 0;
    if (cmd.set_lower && enabled) {
      lower_[i] = bcast_ivl;
    }
    if (cmd.set_upper && enabled) {
      upper_[i] = bcast_ivl;
    }
    if (cmd.set_bounds && enabled) {
      lower_[i] = bcast_ivl;
      upper_[i] = bcast_ivl;
    }
    if (cmd.load_selected && enabled) {
      data_[i] = bcast_data;
    }
    if (cmd.save) {
      saved_[i] = selected_[i];
    }

    selected_[i] = sel ? 1 : 0;
  }
}

std::uint64_t CellArray::count_selected() const {
  std::vector<std::uint64_t> leaves(selected_.begin(), selected_.end());
  return tree_fold<std::uint64_t>(
      leaves, 0, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t CellArray::count_imprecise() const {
  std::vector<std::uint64_t> leaves(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    leaves[i] = lower_[i] != upper_[i] ? 1 : 0;
  }
  return tree_fold<std::uint64_t>(
      leaves, 0, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

Leftmost CellArray::first_selected() const {
  std::vector<Leftmost> leaves(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    leaves[i] = {selected_[i] != 0, i, data_[i], lower_[i], upper_[i]};
  }
  return tree_fold<Leftmost>(leaves, Leftmost{}, leftmost_combine);
}

Leftmost CellArray::first_imprecise() const {
  std::vector<Leftmost> leaves(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    leaves[i] = {lower_[i] != upper_[i], i, data_[i], lower_[i], upper_[i]};
  }
  return tree_fold<Leftmost>(leaves, Leftmost{}, leftmost_combine);
}

unsigned CellArray::tree_depth() const {
  unsigned depth = 0;
  std::vector<std::uint64_t> leaves(data_.size(), 0);
  tree_fold<std::uint64_t>(
      leaves, 0, [](std::uint64_t a, std::uint64_t b) { return a + b; },
      &depth);
  return depth;
}

}  // namespace fpgafu::xsort
