#pragma once

#include <cstdint>
#include <string_view>

#include "isa/types.hpp"

namespace fpgafu::xsort {

/// Geometry of the SIMD cell array (the generics of thesis Fig. 3.12:
/// `data_bits` and `interval_bits`).
struct XsortConfig {
  std::size_t cells = 64;      ///< number of SIMD cells (array capacity)
  unsigned data_bits = 32;     ///< width of the stored data words
  unsigned interval_bits = 16; ///< width of the index-interval bounds

  /// Tree timing ablation (DESIGN.md §6).  The thesis evaluates the fold/
  /// scan tree combinationally within one cycle — its log-depth gate chain
  /// then sits on the clock's critical path.  Setting this registers every
  /// tree level instead: each *query* microinstruction costs an extra
  /// ceil(log2 cells) cycles, but the critical path (and therefore the
  /// achievable clock) no longer grows with the array size.
  bool pipelined_tree = false;
};

/// Operations of the χ-sort functional unit, carried in the instruction's
/// variety code.  Each op executes a microprogram from the unit's ROM; its
/// cycle count is *fixed* — independent of the number of cells — which is
/// the paper's headline property for stateful units.
///
/// The names mirror the cmd_* control signals of the cell schematic
/// (thesis Fig. 3.12).
enum class XsortOp : isa::VarietyCode {
  kReset = 0x01,       ///< all cells: selected, interval <- <0, operand>
  kLoad = 0x02,        ///< shift-load operand into cell 0 (others shift on)
  kSelectAll = 0x03,
  kSelectImprecise = 0x04,  ///< selected <- (lower != upper)
  kMatchLt = 0x05,     ///< selected &= data <  operand
  kMatchEq = 0x06,     ///< selected &= data == operand
  kMatchGt = 0x07,     ///< selected &= data >  operand
  kMatchLower = 0x08,  ///< selected &= lower == operand
  kMatchUpper = 0x09,  ///< selected &= upper == operand
  kMatchLowerI = 0x0a, ///< selected &= lower != operand (inverted match)
  kMatchUpperI = 0x0b, ///< selected &= upper != operand
  kSetLower = 0x0c,    ///< selected cells: lower <- operand
  kSetUpper = 0x0d,    ///< selected cells: upper <- operand
  kSetBounds = 0x0e,   ///< selected cells: lower, upper <- operand (precise)
  kSave = 0x0f,        ///< saved_state <- selected
  kRestore = 0x10,     ///< selected <- saved_state
  kCount = 0x11,       ///< result <- number of selected cells (tree fold)
  kCountImprecise = 0x12,  ///< result <- number of imprecise cells
  kReadFirst = 0x13,   ///< result <- data of leftmost selected cell
  kPivotData = 0x14,   ///< result <- data of leftmost imprecise cell
  kPivotLower = 0x15,  ///< result <- its lower bound
  kPivotUpper = 0x16,  ///< result <- its upper bound
  kReadRank = 0x17,    ///< result <- data of the cell with lower == operand
  kLoadSelected = 0x18, ///< selected cells: data <- operand
  /// Parallel scan (paper Fig. 8: interior nodes "implement parallel scans
  /// and folds"): the i-th selected cell (left to right) gets the precise
  /// interval <operand+i, operand+i> — used to hand out consecutive final
  /// ranks to a group of equal elements in one fixed-cycle operation.
  kRankSelected = 0x19,
};

constexpr std::string_view to_string(XsortOp op) {
  switch (op) {
    case XsortOp::kReset: return "XRESET";
    case XsortOp::kLoad: return "XLOAD";
    case XsortOp::kSelectAll: return "XSELALL";
    case XsortOp::kSelectImprecise: return "XSELIMP";
    case XsortOp::kMatchLt: return "XMLT";
    case XsortOp::kMatchEq: return "XMEQ";
    case XsortOp::kMatchGt: return "XMGT";
    case XsortOp::kMatchLower: return "XMLO";
    case XsortOp::kMatchUpper: return "XMUP";
    case XsortOp::kMatchLowerI: return "XMLOI";
    case XsortOp::kMatchUpperI: return "XMUPI";
    case XsortOp::kSetLower: return "XSLO";
    case XsortOp::kSetUpper: return "XSUP";
    case XsortOp::kSetBounds: return "XSB";
    case XsortOp::kSave: return "XSAVE";
    case XsortOp::kRestore: return "XREST";
    case XsortOp::kCount: return "XCNT";
    case XsortOp::kCountImprecise: return "XCNTI";
    case XsortOp::kReadFirst: return "XRDF";
    case XsortOp::kPivotData: return "XPVD";
    case XsortOp::kPivotLower: return "XPVL";
    case XsortOp::kPivotUpper: return "XPVU";
    case XsortOp::kReadRank: return "XRDR";
    case XsortOp::kLoadSelected: return "XLDS";
    case XsortOp::kRankSelected: return "XRNK";
  }
  return "X?";
}

/// Per-cell control signals (the cmd_* inputs of thesis Fig. 3.12), decoded
/// from a microinstruction.  All asserted commands act in the same clock
/// cycle; the schematic's priority network resolves combinations, which the
/// cell model mirrors.
struct CellCmd {
  bool load = false;
  bool load_selected = false;
  bool save = false;
  bool restore = false;
  bool select_all = false;
  bool select_imprecise = false;
  bool match_data_lt = false;
  bool match_data_eq = false;
  bool match_data_gt = false;
  bool match_lower = false;
  bool match_upper = false;
  bool match_lower_i = false;
  bool match_upper_i = false;
  bool set_lower = false;
  bool set_upper = false;
  bool set_bounds = false;
  bool rank_selected = false;  ///< scan: i-th selected cell gets rank base+i

  bool any() const {
    return load || load_selected || save || restore || select_all ||
           select_imprecise || match_data_lt || match_data_eq ||
           match_data_gt || match_lower || match_upper || match_lower_i ||
           match_upper_i || set_lower || set_upper || set_bounds ||
           rank_selected;
  }
};

}  // namespace fpgafu::xsort
