#include "xsort/baseline.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace fpgafu::xsort {
namespace {

using Vec = std::vector<std::uint64_t>;

std::size_t median3(const Vec& v, std::size_t lo, std::size_t hi,
                    BaselineStats& stats) {
  const std::size_t mid = lo + (hi - lo) / 2;
  stats.comparisons += 3;
  const std::uint64_t a = v[lo], b = v[mid], c = v[hi];
  if ((a <= b && b <= c) || (c <= b && b <= a)) return mid;
  if ((b <= a && a <= c) || (c <= a && a <= b)) return lo;
  return hi;
}

/// Hoare partition; returns the final pivot slot ranges [lt_end, gt_begin).
std::pair<std::size_t, std::size_t> partition3(Vec& v, std::size_t lo,
                                               std::size_t hi,
                                               BaselineStats& stats) {
  const std::size_t pi = median3(v, lo, hi, stats);
  const std::uint64_t pivot = v[pi];
  // Dutch national flag three-way partition.
  std::size_t i = lo, lt = lo, gt = hi + 1;
  while (i < gt) {
    ++stats.comparisons;
    if (v[i] < pivot) {
      std::swap(v[i], v[lt]);
      stats.moves += 3;
      ++i;
      ++lt;
    } else if (v[i] > pivot) {
      --gt;
      std::swap(v[i], v[gt]);
      stats.moves += 3;
    } else {
      ++i;
    }
  }
  return {lt, gt};
}

void qsort_rec(Vec& v, std::size_t lo, std::size_t hi, BaselineStats& stats) {
  while (lo < hi) {
    const auto [lt, gt] = partition3(v, lo, hi, stats);
    // Recurse into the smaller side first to bound the stack.
    if (lt > lo && (lt - lo) < (hi - gt + 1)) {
      qsort_rec(v, lo, lt - 1, stats);
      lo = gt;
    } else {
      if (gt <= hi) {
        qsort_rec(v, gt, hi, stats);
      }
      if (lt == lo) {
        break;
      }
      hi = lt - 1;
    }
  }
}

}  // namespace

Vec cpu_sort(Vec values) {
  std::sort(values.begin(), values.end());
  return values;
}

std::uint64_t cpu_select(Vec values, std::uint64_t k) {
  check(k < values.size(), "selection rank out of range");
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[k];
}

Vec counted_quicksort(Vec values, BaselineStats& stats) {
  if (!values.empty()) {
    qsort_rec(values, 0, values.size() - 1, stats);
  }
  return values;
}

std::uint64_t counted_quickselect(Vec values, std::uint64_t k,
                                  BaselineStats& stats) {
  check(k < values.size(), "selection rank out of range");
  std::size_t lo = 0, hi = values.size() - 1;
  while (lo < hi) {
    const auto [lt, gt] = partition3(values, lo, hi, stats);
    if (k < lt) {
      hi = lt - 1;
    } else if (k >= gt) {
      lo = gt;
    } else {
      return values[k];
    }
  }
  return values[lo];
}

}  // namespace fpgafu::xsort
