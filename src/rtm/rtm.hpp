#pragma once

#include <memory>
#include <string>

#include "rtm/decoder.hpp"
#include "rtm/dispatcher.hpp"
#include "rtm/execution.hpp"
#include "rtm/fu_table.hpp"
#include "rtm/lock_manager.hpp"
#include "rtm/message_encoder.hpp"
#include "rtm/register_file.hpp"
#include "rtm/write_arbiter.hpp"

namespace fpgafu::rtm {

/// Typed refusal from Rtm::detach: the unit cannot be removed *right now*
/// because work for it is still in the pipeline — a write in flight, or an
/// instruction stalled pre-dispatch that was admitted while the unit was
/// attached.  Callers that want to remove the unit under live traffic use
/// the drain protocol instead (begin_detach / detach_drained /
/// finish_detach) rather than catch-and-spin on this.
class DetachBusy : public SimError {
 public:
  using SimError::SimError;
};

/// Configuration generics of the register transfer machine — the VHDL-style
/// size parameters the paper's controller exposes ("the architecture of the
/// controller is specified as a set of generics in VHDL").
struct RtmConfig {
  unsigned word_width = 32;      ///< register word size, multiple of 32 bits
  std::size_t data_regs = 32;    ///< main register file entries
  std::size_t flag_regs = 8;     ///< flag register file entries
  std::size_t encoder_depth = 4; ///< response elasticity buffer
  bool round_robin_arbiter = false;  ///< write-arbiter grant policy
};

/// The register transfer machine: the paper's central controller (Fig. 4),
/// assembled from its pipeline stages.
///
/// External connections:
///  * `instruction_in()` — bind the message buffer's 64-bit stream output
///    here (Rtm::bind_input).
///  * `response_out()` — the encoder drives the message serialiser's input
///    (Rtm::bind_output).
///  * `attach()` — register functional units under their function codes.
class Rtm {
 public:
  Rtm(sim::Simulator& sim, const RtmConfig& config)
      : config_(config),
        regs_(config.data_regs, config.word_width),
        flags_(config.flag_regs),
        locks_(config.data_regs, config.flag_regs),
        decoder_(sim, "decoder", regs_, flags_),
        dispatcher_(sim, "dispatcher", regs_, flags_, locks_, table_,
                    counters_),
        execution_(sim, "execution"),
        arbiter_(sim, "write_arbiter", regs_, flags_, locks_, table_,
                 execution_, counters_, config.round_robin_arbiter),
        encoder_(sim, "message_encoder", config.encoder_depth) {
    dispatcher_.bind(decoder_.out);
    execution_.bind(dispatcher_.to_exec);
    encoder_.bind_in(execution_.resp_out);
    // The dispatcher's eval() reads the lock manager and both register
    // files through plain member access; wake it whenever they mutate so
    // the event kernel's wire tracker cannot miss the side channel.
    locks_.set_observer(&dispatcher_);
    regs_.set_observer(&dispatcher_);
    flags_.set_observer(&dispatcher_);
  }

  /// Attach a functional unit under an instruction function code.
  void attach(isa::FunctionCode code, fu::FunctionalUnit& unit) {
    table_.attach(code, unit);
    // Both the dispatcher and the arbiter iterate the table in eval();
    // reconfiguration is a non-Wire change they must observe.
    dispatcher_.wake();
    arbiter_.wake();
    unit.wake();
  }

  /// Detach the unit under `code` — the partial-reconfiguration analogue
  /// (paper related work [7]): later instructions with this code become
  /// error responses until something else is attached.  Refuses with the
  /// typed DetachBusy while the unit still owns register locks (writes in
  /// flight) *or* an instruction for this code sits stalled pre-dispatch
  /// (the same blind spot as the PR-1 quiescence bug: that instruction was
  /// admitted under the attached contract and nothing else accounts for
  /// it).  The caller should quiesce first (e.g. a SYNC), or use the drain
  /// protocol below to remove a unit under live traffic.
  void detach(isa::FunctionCode code) {
    const std::uint32_t index = table_.index_of(code);
    if (unit_writes_in_flight(index)) {
      throw DetachBusy("detach: unit still has a write in flight");
    }
    if (dispatcher_.pending_function() == code) {
      throw DetachBusy(
          "detach: an instruction for this code is stalled pre-dispatch; "
          "drain it first (begin_detach) or quiesce with a SYNC");
    }
    table_.detach(code);
    dispatcher_.wake();
    arbiter_.wake();
  }

  // -- Hot-swap drain protocol ----------------------------------------------
  /// Start removing `code` under live traffic: the dispatcher stops
  /// routing instructions to the unit — new (and stalled) instructions for
  /// the code drain as typed kUnitUnavailable error responses — while
  /// in-flight writes keep retiring through the arbiter.  Poll
  /// detach_drained() while advancing the clock, then finish_detach().
  void begin_detach(isa::FunctionCode code) {
    table_.set_draining(code, true);
    dispatcher_.wake();
    arbiter_.wake();
  }

  /// True when a draining unit has fully quiesced: no register locks owned
  /// by it and no instruction for its code pending pre-dispatch.
  bool detach_drained(isa::FunctionCode code) const {
    return !unit_writes_in_flight(table_.index_of(code)) &&
           dispatcher_.pending_function() != code;
  }

  /// Complete a begin_detach(): remove the unit from the table and declare
  /// the code unavailable (subsequent instructions keep yielding
  /// kUnitUnavailable — the slot is empty but the code is still known).
  /// Requires detach_drained(code).
  void finish_detach(isa::FunctionCode code) {
    check(detach_drained(code),
          "finish_detach: unit has not drained (writes in flight or an "
          "instruction stalled pre-dispatch)");
    table_.detach(code);
    table_.mark_unavailable(code);
    dispatcher_.wake();
    arbiter_.wake();
  }

  /// Declare a detached code known-but-unavailable (a hot-swap manager
  /// registered it; its image is not loaded yet): instructions for it
  /// yield kUnitUnavailable instead of kUnknownFunction.
  void declare_unavailable(isa::FunctionCode code) {
    table_.mark_unavailable(code);
    dispatcher_.wake();
  }

  /// Bind the instruction-stream input (message buffer output).
  void bind_input(sim::Handshake<isa::Word>& stream) { decoder_.bind(stream); }

  /// Bind the response output (message serialiser input).
  void bind_output(sim::Handshake<msg::Response>& serializer_in) {
    encoder_.bind_out(serializer_in);
  }

  /// True when no instruction is anywhere in the pipeline and every
  /// register write has retired (responses may still sit in the link or
  /// serialiser downstream of the encoder).
  ///
  /// Each stage answers for itself: the decoder (buffered words and burst
  /// expansion), the dispatcher (an instruction offered but not yet
  /// routed), the execution stage, outstanding register locks (in-flight
  /// functional-unit writes), and buffered responses.  The dispatcher term
  /// closes a hole: an instruction stalled pre-dispatch on a busy unit
  /// with zero locks held is invisible to every other term unless the
  /// upstream stage happens to buffer it.
  bool quiescent() const {
    return !decoder_.busy() && !dispatcher_.busy() && !execution_.busy() &&
           locks_.held() == 0 && encoder_.buffered() == 0;
  }

  /// Clear architectural state (register files and locks).  The simulator's
  /// reset() restores the pipeline components; this restores the RAMs,
  /// which in hardware are not touched by the reset line.
  void clear_state() {
    regs_.clear();
    flags_.clear();
    locks_.clear();
  }

  const RtmConfig& config() const { return config_; }
  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }
  FlagRegisterFile& flags() { return flags_; }
  const FlagRegisterFile& flags() const { return flags_; }
  const LockManager& locks() const { return locks_; }
  const Dispatcher& dispatcher() const { return dispatcher_; }
  const FunctionalUnitTable& table() const { return table_; }
  sim::Counters& counters() { return counters_; }
  const sim::Counters& counters() const { return counters_; }

  /// Attach an event trace recording dispatches and writebacks — the
  /// controller-level waveform a VHDL user would inspect.  Pass nullptr to
  /// detach.
  void set_trace(sim::EventTrace* trace) {
    dispatcher_.set_trace(trace);
    arbiter_.set_trace(trace);
  }
  std::uint64_t instructions_decoded() const {
    return decoder_.decoded_count();
  }

 private:
  /// True while the unit at table `index` still owns any register lock —
  /// i.e. a dispatched instruction's writeback has not retired yet.
  bool unit_writes_in_flight(std::uint32_t index) const {
    for (std::size_t r = 0; r < regs_.size(); ++r) {
      if (locks_.data_locked(static_cast<isa::RegNum>(r)) &&
          locks_.data_owner(static_cast<isa::RegNum>(r)) == index) {
        return true;
      }
    }
    for (std::size_t r = 0; r < flags_.size(); ++r) {
      if (locks_.flag_locked(static_cast<isa::RegNum>(r)) &&
          locks_.flag_owner(static_cast<isa::RegNum>(r)) == index) {
        return true;
      }
    }
    return false;
  }

  RtmConfig config_;
  RegisterFile regs_;
  FlagRegisterFile flags_;
  LockManager locks_;
  FunctionalUnitTable table_;
  sim::Counters counters_;
  Decoder decoder_;
  Dispatcher dispatcher_;
  Execution execution_;
  WriteArbiter arbiter_;
  MessageEncoder encoder_;
};

}  // namespace fpgafu::rtm
