#pragma once

#include <string>

#include "rtm/decoded.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "sim/signal.hpp"

namespace fpgafu::rtm {

/// A register or flag write requested by the execution stage on the write
/// arbiter's dedicated high-priority port (paper Fig. 4).
struct HighPriorityWrite {
  bool write_data = false;
  isa::RegNum dst_reg = 0;
  isa::Word data = 0;
  bool write_flags = false;
  isa::RegNum dst_flag_reg = 0;
  isa::FlagWord flags = 0;

  bool operator==(const HighPriorityWrite&) const = default;
};

/// Execution pipeline stage (paper §III): "Instructions that operate on the
/// state of the RTM are executed" here.  Register/flag writes go to the
/// write arbiter's high-priority port (always granted, one per cycle);
/// host-visible results (GET/GETF/SYNC/errors) become responses offered to
/// the message encoder, in instruction order.
class Execution : public sim::Component {
 public:
  Execution(sim::Simulator& sim, std::string name)
      : Component(sim, std::move(name)), resp_out(sim), hp(sim) {}

  sim::Handshake<ExecPacket>* in = nullptr;  ///< from the dispatcher
  sim::Handshake<msg::Response> resp_out;    ///< to the message encoder
  sim::Wire<HighPriorityWrite> hp;           ///< to the write arbiter (no backpressure)

  void bind(sim::Handshake<ExecPacket>& dispatcher_out) {
    in = &dispatcher_out;
  }

  std::uint64_t executed() const { return executed_; }

  /// True while an instruction is held in this stage.
  bool busy() const { return have_; }

  void eval() override {
    HighPriorityWrite w;
    bool completing = false;
    if (have_) {
      const Action a = action_for(held_);
      w = a.write;
      if (a.respond) {
        resp_out.offer(a.response);
        completing = resp_out.ready.get();
      } else {
        resp_out.withdraw();
        completing = true;  // high-priority writes are always granted
      }
    } else {
      resp_out.withdraw();
    }
    hp.set(w);
    completing_ = completing;
    in->ready.set(!have_ || completing);
  }

  void commit() override {
    if (have_ || in->fire()) {
      mark_active();  // have_/held_/executed_ are plain clocked state
    }
    if (have_ && completing_) {
      have_ = false;
      ++executed_;
    }
    if (in->fire()) {
      held_ = in->data.get();
      have_ = true;
    }
  }

  void reset() override {
    have_ = false;
    held_ = ExecPacket{};
    executed_ = 0;
    resp_out.reset();
    hp.reset();
  }

 private:
  struct Action {
    HighPriorityWrite write;
    bool respond = false;
    msg::Response response;
  };

  Action action_for(const ExecPacket& p) const {
    using isa::RtmOp;
    Action a;
    const isa::Instruction& inst = p.di.inst;
    if (p.di.error != msg::ErrorCode::kNone) {
      a.respond = true;
      a.response.type = msg::Response::Type::kError;
      a.response.code = static_cast<std::uint8_t>(p.di.error);
      a.response.seq = p.di.seq;
      a.response.burst = p.di.burst;
      a.response.payload = inst.encode();
      return a;
    }
    switch (static_cast<RtmOp>(inst.variety)) {
      case RtmOp::kNop:
      case RtmOp::kPutVec:  // expanded in the decoder; header is inert here
      case RtmOp::kGetVec:
        break;
      case RtmOp::kCopy:
        a.write.write_data = true;
        a.write.dst_reg = inst.dst1;
        a.write.data = p.src1_value;
        break;
      case RtmOp::kCopyFlags:
        a.write.write_flags = true;
        a.write.dst_flag_reg = inst.dst_flag;
        a.write.flags = p.src_flag_value;
        break;
      case RtmOp::kPut:
        a.write.write_data = true;
        a.write.dst_reg = inst.dst1;
        a.write.data = p.di.inline_data;
        break;
      case RtmOp::kPutImm:
        a.write.write_data = true;
        a.write.dst_reg = inst.dst1;
        a.write.data = inst.aux;
        break;
      case RtmOp::kPutFlags:
        a.write.write_flags = true;
        a.write.dst_flag_reg = inst.dst_flag;
        a.write.flags = static_cast<isa::FlagWord>(inst.aux);
        break;
      case RtmOp::kGet:
        a.respond = true;
        a.response.type = msg::Response::Type::kData;
        a.response.seq = p.di.seq;
        a.response.burst = p.di.burst;
        a.response.payload = p.src1_value;
        break;
      case RtmOp::kGetFlags:
        a.respond = true;
        a.response.type = msg::Response::Type::kFlags;
        a.response.seq = p.di.seq;
        a.response.code = p.src_flag_value;
        break;
      case RtmOp::kSync:
        a.respond = true;
        a.response.type = msg::Response::Type::kSyncDone;
        a.response.seq = p.di.seq;
        break;
    }
    return a;
  }

  ExecPacket held_;
  bool have_ = false;
  bool completing_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace fpgafu::rtm
